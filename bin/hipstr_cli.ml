(* The HIPStR command-line front end.

   Subcommands:
     run        — execute a workload natively / under PSR / under HIPStR
     gadgets    — Galileo gadget-mining summary for a workload image
     attack     — deliver the execve ROP exploit against httpd
     experiment — regenerate one of the paper's tables/figures (or all)
     disasm     — disassemble a function from a workload's fat binary
     list       — workloads and experiments *)

open Cmdliner
module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Galileo = Hipstr_galileo.Galileo
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module Registry = Hipstr_experiments.Registry
module Rop = Hipstr_attacks.Rop
module Obs = Hipstr_obs.Obs

let isa_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "cisc" | "x86" -> Ok Desc.Cisc
        | "risc" | "arm" -> Ok Desc.Risc
        | _ -> Error (`Msg "isa must be cisc/x86 or risc/arm")),
      fun ppf w -> Format.pp_print_string ppf (match w with Desc.Cisc -> "cisc" | Desc.Risc -> "risc") )

let mode_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "native" -> Ok System.Native
        | "psr" -> Ok System.Psr_only
        | "hipstr" -> Ok System.Hipstr
        | _ -> Error (`Msg "mode must be native, psr or hipstr")),
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with System.Native -> "native" | System.Psr_only -> "psr" | System.Hipstr -> "hipstr") )

let workload_arg =
  let doc = "Workload name (see `list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let isa_arg = Arg.(value & opt isa_conv Desc.Cisc & info [ "isa" ] ~doc:"ISA/core to start on.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Randomization seed.")

let outcome_string = function
  | System.Finished c -> Printf.sprintf "finished (exit %d)" c
  | System.Shell_spawned -> "SHELL SPAWNED (attack succeeded)"
  | System.Killed m -> "killed: " ^ m
  | System.Out_of_fuel -> "out of fuel"

(* --metrics / --trace are shared by `run' and `run-file'. *)
let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the observability counter/histogram snapshot after the run.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream structured observability events to stderr as they happen.")

let make_obs ~trace =
  Obs.create ~sink:(if trace then Obs.Sink.stderr else Obs.Sink.null) ()

let print_metrics sys =
  let snap = System.metrics sys in
  Printf.printf "metrics (non-zero):\n";
  List.iter
    (fun (n, v) -> if v > 0 then Printf.printf "  %-44s %d\n" n v)
    snap.Obs.Metrics.snap_counters;
  List.iter
    (fun (n, (h : Obs.Metrics.histogram_summary)) ->
      if h.hs_count > 0 then
        Printf.printf "  %-44s n=%d mean=%.1f min=%.0f max=%.0f\n" n h.hs_count h.hs_mean h.hs_min
          h.hs_max)
    snap.Obs.Metrics.snap_histograms;
  let tr = Obs.trace (System.obs sys) in
  Printf.printf "  %-44s %d (ring keeps last %d, dropped %d)\n" "trace.events"
    (Obs.Trace.emitted tr) (Obs.Trace.capacity tr) (Obs.Trace.dropped tr)

let run_cmd =
  let mode_arg =
    Arg.(value & opt mode_conv System.Hipstr & info [ "mode" ] ~doc:"native, psr or hipstr.")
  in
  let opt_arg = Arg.(value & opt int 3 & info [ "opt" ] ~doc:"PSR optimization level (0-3).") in
  let action name mode isa seed opt_level metrics trace =
    match Workloads.find name with
    | exception Not_found ->
      Printf.eprintf "unknown workload %s\n" name;
      exit 1
    | w ->
      let cfg = { Config.default with opt_level } in
      let obs = make_obs ~trace in
      let sys = System.of_fatbin ~obs ~cfg ~seed ~start_isa:isa ~mode (Workloads.fatbin w) in
      let outcome = System.run sys ~fuel:(3 * w.w_fuel) in
      Printf.printf "%s [%s]: %s\n" w.w_name w.w_description (outcome_string outcome);
      Printf.printf "output: %s\n"
        (String.concat " " (List.map string_of_int (System.output sys)));
      Printf.printf "instructions: %d  cycles: %.0f  simulated time: %.3f ms\n"
        (System.instructions sys) (System.cycles sys) (1000. *. System.seconds sys);
      if mode <> System.Native then begin
        let vm = System.vm sys isa in
        let st = Hipstr_psr.Vm.stats vm in
        Printf.printf
          "translations: %d  source instrs: %d -> emitted: %d  traps: %d  suspicious: %d\n"
          st.translations st.source_instrs st.emitted_instrs st.traps st.suspicious;
        if mode = System.Hipstr then
          Printf.printf "migrations: %d security + %d forced\n" (System.security_migrations sys)
            (System.forced_migrations sys)
      end;
      if metrics then print_metrics sys
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the simulated heterogeneous-ISA CMP.")
    Term.(
      const action $ workload_arg $ mode_arg $ isa_arg $ seed_arg $ opt_arg $ metrics_arg
      $ trace_arg)

let gadgets_cmd =
  let action name isa =
    match Workloads.find name with
    | exception Not_found ->
      Printf.eprintf "unknown workload %s\n" name;
      exit 1
    | w ->
      let fb = Workloads.fatbin w in
      let mem = Mem.create Hipstr_machine.Layout.mem_size in
      Fatbin.load fb mem;
      let gadgets = Galileo.mine_program mem fb isa in
      let rets = List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget) gadgets in
      let sp = (match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc).sp in
      let viable = List.filter (fun g -> Galileo.is_viable (Galileo.classify ~sp g)) rets in
      Printf.printf "%s (%s): %d return gadgets, %d JOP gadgets, %d viable, %d unintentional\n"
        w.w_name
        (match isa with Desc.Cisc -> "cisc" | Desc.Risc -> "risc")
        (List.length rets)
        (Galileo.count gadgets Galileo.Jop_gadget)
        (List.length viable)
        (List.length (List.filter (fun g -> not g.Galileo.g_aligned) rets));
      List.iteri
        (fun i g ->
          if i < 10 then
            Printf.printf "  0x%x: %s\n" g.Galileo.g_addr
              (String.concat " ; "
                 (List.map
                    (Minstr.to_string
                       ~reg_name:
                         (Desc.reg_name
                            (match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | _ -> Hipstr_risc.Isa.desc)))
                    g.Galileo.g_instrs)))
        viable
  in
  Cmd.v
    (Cmd.info "gadgets" ~doc:"Mine a workload image with the Galileo algorithm.")
    Term.(const action $ workload_arg $ isa_arg)

let attack_cmd =
  let mode_arg =
    Arg.(value & opt mode_conv System.Native & info [ "mode" ] ~doc:"Defense to attack.")
  in
  let action mode seed =
    let fb = Workloads.fatbin Workloads.httpd in
    let mem = Mem.create Hipstr_machine.Layout.mem_size in
    Fatbin.load fb mem;
    match Rop.build_chain mem fb Desc.Cisc ~victim_func:"handle_request" with
    | None ->
      Printf.eprintf "could not construct an execve chain\n";
      exit 1
    | Some chain ->
      Printf.printf "execve chain: %d payload words, return slot at word %d\n"
        (List.length chain.Rop.c_payload) chain.Rop.c_ret_index;
      List.iter
        (fun s ->
          Printf.printf "  gadget 0x%x pops r%d := %d\n" s.Rop.s_gadget s.Rop.s_reg s.Rop.s_value)
        chain.Rop.c_steps;
      Printf.printf "  final return into syscall at 0x%x\n" chain.Rop.c_syscall_addr;
      let cfg = { Config.default with migrate_prob = 1.0 } in
      let sys = System.of_fatbin ~cfg ~seed ~start_isa:Desc.Cisc ~mode fb in
      (match Rop.deliver sys chain ~fuel:4_000_000 with
      | Rop.Shell -> Printf.printf "result: SHELL SPAWNED — the exploit won\n"
      | Rop.Crashed m -> Printf.printf "result: process killed (%s)\n" m
      | Rop.Survived -> Printf.printf "result: overflow silently absorbed; program completed\n")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Deliver the ROP exploit against httpd.")
    Term.(const action $ mode_arg $ seed_arg)

let experiment_cmd =
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id or 'all'.") in
  let action id =
    if id = "all" then List.iter Registry.run_and_print Registry.all
    else
      match Registry.find id with
      | Some e -> Registry.run_and_print e
      | None ->
        Printf.eprintf "unknown experiment %s (see `list')\n" id;
        exit 1
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a table/figure from the paper.") Term.(const action $ id_arg)

let disasm_cmd =
  let func_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNC" ~doc:"Function name.") in
  let action name func isa =
    match Workloads.find name with
    | exception Not_found ->
      Printf.eprintf "unknown workload %s\n" name;
      exit 1
    | w -> (
      let fb = Workloads.fatbin w in
      match Fatbin.find_func fb func with
      | exception Not_found ->
        Printf.eprintf "no function %s\n" func;
        exit 1
      | fs ->
        let im = Fatbin.image fs isa in
        let mem = Mem.create Hipstr_machine.Layout.mem_size in
        Fatbin.load fb mem;
        let desc = match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc in
        let pos = ref im.im_entry in
        let stop = im.im_entry + im.im_size in
        let continue_ = ref true in
        while !continue_ && !pos < stop do
          match Hipstr_machine.Exec.decode isa mem !pos with
          | None -> continue_ := false
          | Some (i, len) ->
            Printf.printf "0x%x: %s\n" !pos (Minstr.to_string ~reg_name:(Desc.reg_name desc) i);
            pos := !pos + len
        done)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a function from a workload's fat binary.")
    Term.(const action $ workload_arg $ func_arg $ isa_arg)

let run_file_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.") in
  let mode_arg =
    Arg.(value & opt mode_conv System.Hipstr & info [ "mode" ] ~doc:"native, psr or hipstr.")
  in
  let fuel_arg = Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
  let action file mode isa seed fuel metrics trace =
    let src = In_channel.with_open_text file In_channel.input_all in
    let obs = make_obs ~trace in
    match System.create ~obs ~seed ~start_isa:isa ~mode ~src () with
    | exception Hipstr_compiler.Compile.Error m ->
      Printf.eprintf "%s: %s\n" file m;
      exit 1
    | sys ->
      let outcome = System.run sys ~fuel in
      Printf.printf "%s: %s\n" file (outcome_string outcome);
      Printf.printf "output: %s\n" (String.concat " " (List.map string_of_int (System.output sys)));
      Printf.printf "instructions: %d  cycles: %.0f  simulated time: %.3f ms\n"
        (System.instructions sys) (System.cycles sys) (1000. *. System.seconds sys);
      if metrics then print_metrics sys
  in
  Cmd.v
    (Cmd.info "run-file" ~doc:"Compile and run a MiniC source file.")
    Term.(
      const action $ file_arg $ mode_arg $ isa_arg $ seed_arg $ fuel_arg $ metrics_arg
      $ trace_arg)

let list_cmd =
  let action () =
    Printf.printf "workloads:\n";
    List.iter
      (fun n ->
        let w = Workloads.find n in
        Printf.printf "  %-12s %s (%s)\n" w.w_name w.w_description w.w_paper_name)
      Workloads.names;
    Printf.printf "\nexperiments:\n";
    List.iter (fun e -> Printf.printf "  %-8s %s\n" e.Registry.ex_id e.Registry.ex_title) Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and experiments.") Term.(const action $ const ())

let () =
  let info =
    Cmd.info "hipstr"
      ~doc:"HIPStR: heterogeneous-ISA program state relocation (ASPLOS 2016 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; run_file_cmd; gadgets_cmd; attack_cmd; experiment_cmd; disasm_cmd; list_cmd ]))
