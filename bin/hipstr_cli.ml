(* The HIPStR command-line front end.

   Subcommands:
     run        — execute a workload natively / under PSR / under HIPStR
     cmp-run    — time-slice several workloads across a mixed-ISA CMP
     gadgets    — Galileo gadget-mining summary for a workload image
     attack     — deliver the execve ROP exploit against httpd
     experiment — regenerate paper tables/figures (comma ids or 'all'; -j fans
                  them across domains)
     disasm     — disassemble a function from a workload's fat binary
     list       — workloads and experiments

   Argument hygiene: workload/experiment names, seeds, probabilities,
   optimization levels, job counts and core specs are all validated by
   cmdliner converters, so a bad invocation dies with a usage error
   before any simulation starts. *)

open Cmdliner
module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Galileo = Hipstr_galileo.Galileo
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module Registry = Hipstr_experiments.Registry
module Rop = Hipstr_attacks.Rop
module Obs = Hipstr_obs.Obs
module Cmp = Hipstr_cmp.Cmp
module Process = Hipstr_cmp.Process
module Code_cache = Hipstr_psr.Code_cache
module Traffic = Hipstr_fleet.Traffic
module Fleet = Hipstr_fleet.Fleet
module Snapshot = Hipstr_snapshot.Snapshot
module Wire = Hipstr_util.Wire

let isa_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "cisc" | "x86" -> Ok Desc.Cisc
        | "risc" | "arm" -> Ok Desc.Risc
        | _ -> Error (`Msg "isa must be cisc/x86 or risc/arm")),
      fun ppf w -> Format.pp_print_string ppf (match w with Desc.Cisc -> "cisc" | Desc.Risc -> "risc") )

let mode_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "native" -> Ok System.Native
        | "psr" -> Ok System.Psr_only
        | "hipstr" -> Ok System.Hipstr
        | _ -> Error (`Msg "mode must be native, psr or hipstr")),
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with System.Native -> "native" | System.Psr_only -> "psr" | System.Hipstr -> "hipstr") )

(* ------------------------------------------------------------------ *)
(* Validated converters: a bad workload name, seed, probability or
   core spec is a usage error at parse time, never a crash (or worse,
   a silently wrong run) minutes into a simulation. *)

let workload_conv =
  Arg.conv
    ( (fun s ->
        match Workloads.find s with
        | w -> Ok w
        | exception Not_found ->
          Error
            (`Msg
               (Printf.sprintf "unknown workload '%s' (expected one of: %s)" s
                  (String.concat ", " Workloads.names)))),
      fun ppf (w : Workloads.t) -> Format.pp_print_string ppf w.w_name )

let bounded_int_conv ~what ~lo ?hi () =
  let expected =
    match hi with
    | Some h -> Printf.sprintf "%s must be an integer in [%d, %d]" what lo h
    | None -> Printf.sprintf "%s must be an integer >= %d" what lo
  in
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when n >= lo && (match hi with None -> true | Some h -> n <= h) -> Ok n
        | _ -> Error (`Msg (Printf.sprintf "%s (got '%s')" expected s))),
      Format.pp_print_int )

let seed_conv = bounded_int_conv ~what:"seed" ~lo:0 ()
let opt_conv = bounded_int_conv ~what:"optimization level" ~lo:0 ~hi:3 ()
let fuel_conv = bounded_int_conv ~what:"fuel" ~lo:1 ()
let jobs_conv = bounded_int_conv ~what:"jobs" ~lo:1 ()
let quantum_conv = bounded_int_conv ~what:"quantum" ~lo:1 ()
let cc_capacity_conv = bounded_int_conv ~what:"code-cache capacity (bytes)" ~lo:4096 ()

let cc_policy_conv =
  Arg.conv
    ( (fun s ->
        match Code_cache.policy_of_string s with
        | Some p -> Ok p
        | None -> Error (`Msg (Printf.sprintf "unknown cache policy '%s' (flush, fifo or clock)" s))),
      fun ppf p -> Format.pp_print_string ppf (Code_cache.policy_name p) )

let prob_conv =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok p
        | _ -> Error (`Msg (Printf.sprintf "probability must be in [0.0, 1.0] (got '%s')" s))),
      fun ppf p -> Format.fprintf ppf "%g" p )

let policy_conv =
  Arg.conv
    ( (fun s ->
        match Cmp.policy_of_string s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown policy '%s' (round-robin, load-balance or security-first)"
                  s))),
      fun ppf p -> Format.pp_print_string ppf (Cmp.policy_name p) )

(* --cores takes either a core count N (tiling the paper's cisc/risc
   pair) or an explicit comma list like "cisc,risc,risc". *)
let cores_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 && n <= 64 ->
      Ok (List.init n (fun i -> if i mod 2 = 0 then Desc.Cisc else Desc.Risc))
    | Some _ -> Error (`Msg (Printf.sprintf "core count must be in [1, 64] (got '%s')" s))
    | None ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match String.lowercase_ascii (String.trim p) with
          | "cisc" | "x86" -> go (Desc.Cisc :: acc) rest
          | "risc" | "arm" -> go (Desc.Risc :: acc) rest
          | other ->
            Error
              (`Msg
                 (Printf.sprintf
                    "bad core '%s': expected a core count or a comma list of cisc/risc" other)))
      in
      go [] (String.split_on_char ',' s)
  in
  let print ppf cores =
    Format.pp_print_string ppf
      (String.concat "," (List.map (function Desc.Cisc -> "cisc" | Desc.Risc -> "risc") cores))
  in
  Arg.conv (parse, print)

(* The experiment positional: one id, a comma list of ids, or 'all'. *)
let experiments_conv =
  let all_ids () = String.concat ", " (List.map (fun e -> e.Registry.ex_id) Registry.all) in
  let parse s =
    if String.lowercase_ascii s = "all" then Ok Registry.all
    else
      let ids =
        List.filter (fun x -> x <> "") (List.map String.trim (String.split_on_char ',' s))
      in
      if ids = [] then Error (`Msg "no experiment ids given")
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | id :: rest -> (
            match Registry.find id with
            | Some e -> go (e :: acc) rest
            | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown experiment '%s' (expected 'all' or one of: %s)" id
                      (all_ids ()))))
        in
        go [] ids
  in
  Arg.conv
    ( parse,
      fun ppf es ->
        Format.pp_print_string ppf (String.concat "," (List.map (fun e -> e.Registry.ex_id) es))
    )

let workload_arg =
  let doc = "Workload name (see `list')." in
  Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD" ~doc)

let isa_arg = Arg.(value & opt isa_conv Desc.Cisc & info [ "isa" ] ~doc:"ISA/core to start on.")

let seed_arg = Arg.(value & opt seed_conv 1 & info [ "seed" ] ~doc:"Randomization seed (>= 0).")

let no_dcache_arg =
  Arg.(
    value & flag
    & info [ "no-decode-cache" ]
        ~doc:
          "Disable the host-side predecoded-basic-block cache and re-decode every instruction \
           (escape hatch; simulation results are bit-identical either way, only slower).")

let no_chain_arg =
  Arg.(
    value & flag
    & info [ "no-chain" ]
        ~doc:
          "Disable block-to-block chaining and the indirect-branch inline caches on top of the \
           predecoded-block cache (escape hatch; simulation results are bit-identical either \
           way, only slower). Implied by $(b,--no-decode-cache).")

let no_packed_arg =
  Arg.(
    value & flag
    & info [ "no-packed" ]
        ~doc:
          "Retire cached blocks from their boxed decoded-instruction arrays instead of the \
           packed flat int-array form (escape hatch and differential oracle; simulation \
           results are bit-identical either way, only slower and with more host allocation). \
           Implied by $(b,--no-decode-cache).")

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Domains to fan independent simulations across. Results are bit-identical to $(b,-j 1);\
           only the wall clock changes.")

let migrate_prob_arg =
  Arg.(
    value
    & opt (some prob_conv) None
    & info [ "migrate-prob" ]
        ~doc:"Probability of migrating on a suspicious code-cache miss (0.0-1.0; hipstr mode).")

(* --cc-capacity / --cc-policy are shared by run, run-file and cmp-run. *)
let cc_capacity_arg =
  Arg.(
    value
    & opt (some cc_capacity_conv) None
    & info [ "cc-capacity" ] ~docv:"BYTES"
        ~doc:"Per-ISA code-cache capacity in bytes (>= 4096; default 2 MiB).")

let cc_policy_arg =
  Arg.(
    value
    & opt (some cc_policy_conv) None
    & info [ "cc-policy" ] ~docv:"POLICY"
        ~doc:
          "Code-cache capacity policy: $(b,flush) (wholesale flush on shortfall), $(b,fifo) or \
           $(b,clock) (block-granular eviction with translation memo).")

let apply_cc_args cfg cc_capacity cc_policy =
  let cfg =
    match cc_capacity with None -> cfg | Some b -> { cfg with Config.cache_bytes = b }
  in
  match cc_policy with None -> cfg | Some p -> { cfg with Config.cc_policy = p }

let outcome_string = function
  | System.Finished c -> Printf.sprintf "finished (exit %d)" c
  | System.Shell_spawned -> "SHELL SPAWNED (attack succeeded)"
  | System.Killed m -> "killed: " ^ m
  | System.Out_of_fuel -> "out of fuel"

(* --metrics / --trace are shared by `run' and `run-file'. *)
let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the observability counter/histogram snapshot after the run.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream structured observability events to stderr as they happen.")

let make_obs ~trace =
  Obs.create ~sink:(if trace then Obs.Sink.stderr else Obs.Sink.null) ()

let print_obs obs =
  let snap = Obs.snapshot obs in
  Printf.printf "metrics (non-zero):\n";
  List.iter
    (fun (n, v) -> if v > 0 then Printf.printf "  %-44s %d\n" n v)
    snap.Obs.Metrics.snap_counters;
  List.iter
    (fun (n, (h : Obs.Metrics.histogram_summary)) ->
      if h.hs_count > 0 then
        Printf.printf "  %-44s n=%d sum=%.0f mean=%.1f min=%.0f max=%.0f p50=%.0f p95=%.0f p99=%.0f\n"
          n h.hs_count h.hs_sum h.hs_mean h.hs_min h.hs_max (Obs.Metrics.p50 h)
          (Obs.Metrics.p95 h) (Obs.Metrics.p99 h))
    snap.Obs.Metrics.snap_histograms;
  List.iter
    (fun (n, count, cycles) ->
      Printf.printf "  %-44s n=%d cycles=%.0f\n" ("span." ^ n) count cycles)
    (Obs.Export.span_rollup obs);
  let au = Obs.audit obs in
  if Obs.Audit.length au > 0 then begin
    let label_count l =
      Obs.Audit.count au (fun e -> Obs.Audit.kind_label e.Obs.Audit.au_kind = l)
    in
    Printf.printf "  %-44s %d (suspicious=%d decisions=%d migrations=%d faults=%d sched=%d)\n"
      "audit.entries" (Obs.Audit.length au) (label_count "suspicious") (label_count "decision")
      (label_count "migration") (label_count "fault") (label_count "sched-migrate")
  end;
  let tr = Obs.trace obs in
  Printf.printf "  %-44s %d (ring keeps last %d, dropped %d)\n" "trace.events"
    (Obs.Trace.emitted tr) (Obs.Trace.capacity tr) (Obs.Trace.dropped tr)

let print_metrics sys = print_obs (System.obs sys)

(* ------------------------------------------------------------------ *)
(* Snapshot plumbing shared by run, cmp-run, checkpoint and restore. *)

let read_binary path = In_channel.with_open_bin path In_channel.input_all

let write_binary path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* Canonical end-state dump: everything the determinism contract
   covers, in a stable text form — two runs are equivalent iff their
   dumps are byte-identical (cycle floats and histogram moments go in
   as IEEE bits, so "equal" never means "approximately"). The
   migrate-smoke target diffs these across checkpoint/restore. *)
let write_state_dump path sys outcome =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "outcome: %s\n" (outcome_string outcome);
  add "output: %s\n" (String.concat " " (List.map string_of_int (System.output sys)));
  add "instructions: %d\n" (System.instructions sys);
  add "cycle_bits: %Lx\n" (Int64.bits_of_float (System.cycles sys));
  let snap = Obs.Metrics.snapshot (Obs.metrics (System.obs sys)) in
  List.iter (fun (n, v) -> add "counter %s %d\n" n v) snap.Obs.Metrics.snap_counters;
  List.iter
    (fun (n, (h : Obs.Metrics.histogram_summary)) ->
      add "histogram %s n=%d sum=%Lx min=%Lx max=%Lx\n" n h.hs_count
        (Int64.bits_of_float h.hs_sum)
        (Int64.bits_of_float h.hs_min)
        (Int64.bits_of_float h.hs_max))
    snap.Obs.Metrics.snap_histograms;
  write_binary path (Buffer.contents buf);
  Printf.printf "wrote state dump: %s\n" path

let state_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-out" ] ~docv:"FILE"
        ~doc:
          "Write a canonical end-state dump (outcome, output, instruction count, cycle bits, \
           metrics) to $(docv). Two runs are equivalent under the determinism contract iff \
           their dumps are byte-identical.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some (bounded_int_conv ~what:"checkpoint-every" ~lo:1 ())) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Checkpoint periodically (for $(b,run): every $(docv) instructions; for \
           $(b,cmp-run): every $(docv) scheduling rounds) into files named from \
           $(b,--checkpoint-out). The run continues after each checkpoint.")

let checkpoint_out_arg default =
  Arg.(
    value
    & opt string default
    & info [ "checkpoint-out" ] ~docv:"PREFIX"
        ~doc:"Filename prefix for $(b,--checkpoint-every) images.")

let memo_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "memo-in" ] ~docv:"FILE"
        ~doc:
          "Warm-start: load a translation-memo artifact (from $(b,--memo-out)) before the run, \
           so previously translated units re-install at memo cost instead of re-translating. \
           Only consulted under an evicting $(b,--cc-policy) (fifo/clock). The artifact is \
           pinned to the binary, mode and config; a mismatch is a hard error.")

let memo_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "memo-out" ] ~docv:"FILE"
        ~doc:"Write the run's translation-memo warm-start artifact to $(docv) after the run.")

let corrupt_exit what = function
  | Wire.Corrupt m ->
    Printf.eprintf "%s: rejected: %s\n" what m;
    exit 1
  | e -> raise e

(* Host-side decode-cache statistics for the starting core, including
   the chaining and inline-cache counters. Silent when the cache is
   disabled (--no-decode-cache). *)
let print_decode_cache_stats sys isa =
  match Hipstr_machine.Machine.decode_cache_stats (System.machine sys) isa with
  | None -> ()
  | Some st ->
    let open Hipstr_machine.Decode_cache in
    Printf.printf "host decode cache: hits=%d misses=%d invalidations=%d flushes=%d\n" st.hits
      st.misses st.invalidations st.flushes;
    Printf.printf "host chaining: follows=%d breaks=%d patches=%d  ic: mono=%d poly=%d misses=%d\n"
      st.chain_follows st.chain_breaks st.chain_patches st.ic_mono_hits st.ic_poly_hits
      st.ic_misses

(* ------------------------------------------------------------------ *)
(* Export flags shared by run, run-file, cmp-run and experiment: the
   machine-readable side of the observability layer. *)

let export_args =
  let out name docv doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv ~doc)
  in
  let trace_out =
    out "trace-out" "FILE.json"
      "Write the phase timeline as Chrome trace_event JSON (load in Perfetto or \
       chrome://tracing) to $(docv)."
  in
  let profile_out =
    out "profile-out" "FILE.folded"
      "Write a folded-stack cycle profile (flamegraph.pl / speedscope ready) to $(docv)."
  in
  let metrics_out =
    out "metrics-out" "FILE"
      "Write the full metrics dump to $(docv): Prometheus text if the name ends in .prom, \
       pretty JSON otherwise."
  in
  let audit_out =
    out "audit-out" "FILE.jsonl"
      "Write the security audit log (one JSON object per entry) to $(docv)."
  in
  Term.(
    const (fun a b c d -> (a, b, c, d)) $ trace_out $ profile_out $ metrics_out $ audit_out)

let write_exports ?timeline ~obs (trace_out, profile_out, metrics_out, audit_out) =
  let write path what render =
    match path with
    | None -> ()
    | Some path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (render obs));
      Printf.printf "wrote %s: %s\n" what path
  in
  write trace_out "trace" (Obs.Export.trace_json ?timeline);
  write profile_out "profile" Obs.Export.folded;
  write metrics_out "metrics"
    (match metrics_out with
    | Some p when Filename.check_suffix p ".prom" -> Obs.Export.metrics_prom
    | _ -> Obs.Export.metrics_json);
  write audit_out "audit" Obs.Export.audit_jsonl

(* ------------------------------------------------------------------ *)
(* Timeline / SLO / hostprof flags. The timeline rides the guest
   clock and stays inside the byte-identity contract; hostprof output
   is host-side Gc accounting and explicitly does not. *)

let timeline_args =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-out" ] ~docv:"FILE.json"
          ~doc:
            "Write the windowed timeline (schema $(b,hipstr-timeline/1): per-window counter \
             deltas and latency-histogram percentiles on the guest clock) to $(docv). \
             Deterministic: bit-identical across $(b,-j) values.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-csv" ] ~docv:"FILE.csv"
          ~doc:"Write the windowed timeline as long-format CSV (window,series,stat,value) to $(docv).")
  in
  let window =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"timeline window (cycles)" ~lo:1 ()) 50_000
      & info [ "timeline-window" ] ~docv:"CYCLES"
          ~doc:"Timeline window width in guest cycles (default 50000).")
  in
  Term.(const (fun a b c -> (a, b, c)) $ out $ csv $ window)

let make_timeline ?(force = false) (out, csv, window) =
  if force || out <> None || csv <> None then
    Some (Obs.Timeline.create ~window:(float_of_int window) ())
  else None

let write_timeline ?slo ?hostprof timeline (out, csv, _window) =
  match timeline with
  | None -> ()
  | Some tl ->
    let write path what render =
      match path with
      | None -> ()
      | Some path ->
        Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (render tl));
        Printf.printf "wrote %s: %s\n" what path
    in
    write out "timeline" (Obs.Export.timeline_json ?slo ?hostprof);
    write csv "timeline csv" Obs.Export.timeline_csv

let print_timeline_summary timeline =
  match timeline with
  | None -> ()
  | Some tl ->
    Printf.printf "timeline: %d windows of %.0f cycles%s\n" (Obs.Timeline.window_count tl)
      (Obs.Timeline.window_cycles tl)
      (match Obs.Timeline.span tl with
      | None -> ""
      | Some (lo, hi) -> Printf.sprintf " (indices %d..%d)" lo hi)

let hostprof_arg =
  Arg.(
    value & flag
    & info [ "hostprof" ]
        ~doc:
          "Profile host-side allocation: Gc minor-word deltas at span boundaries (per-phase \
           table) and quick_stat deltas over the whole run, from which \
           minor-words-per-retired-instruction is derived. Host-dependent and \
           $(b,non-deterministic) — excluded from the -j byte-identity contract; do not \
           combine with exports you intend to diff.")

let start_hostprof ~obs enabled =
  if not enabled then None
  else begin
    let hp = Obs.Hostprof.create () in
    Obs.set_hostprof obs hp;
    Obs.Hostprof.start_run hp;
    Some hp
  end

let print_hostprof = function
  | None -> ()
  | Some hp ->
    Printf.printf "host allocation profile (non-deterministic):\n";
    (match Obs.Hostprof.run hp with
    | None -> ()
    | Some rd ->
      Printf.printf
        "  minor=%.0f words promoted=%.0f major=%.0f collections: minor=%d major=%d instrs=%d\n"
        rd.Obs.Hostprof.hd_minor_words rd.hd_promoted_words rd.hd_major_words
        rd.hd_minor_collections rd.hd_major_collections rd.hd_instructions;
      match Obs.Hostprof.minor_words_per_instr hp with
      | Some w -> Printf.printf "  minor words per retired instruction: %.3f\n" w
      | None -> ());
    List.iter
      (fun (name, spans, words) ->
        Printf.printf "  phase %-28s spans=%-7d minor-words=%.0f\n" name spans words)
      (Obs.Hostprof.phases hp)

let assert_alloc_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "assert-alloc" ] ~docv:"WORDS"
        ~doc:
          "With $(b,--hostprof): exit non-zero unless host minor words allocated per retired \
           instruction stayed at or below $(docv). The alloc-smoke CI gate drives this to pin \
           the allocation-free hot path.")

(* The CI allocation gate: --hostprof measures, this enforces. *)
let check_alloc hp limit =
  match limit with
  | None -> ()
  | Some limit -> (
    match hp with
    | None ->
      prerr_endline "--assert-alloc requires --hostprof";
      exit 2
    | Some hp -> (
      match Obs.Hostprof.minor_words_per_instr hp with
      | None ->
        prerr_endline "--assert-alloc: no retired instructions measured";
        exit 2
      | Some w ->
        if w > limit then begin
          Printf.eprintf "alloc gate: %.3f minor words/instr exceeds the %.3f budget\n" w limit;
          exit 1
        end
        else Printf.printf "alloc gate: %.3f minor words/instr <= %.3f budget\n" w limit))

let run_cmd =
  let mode_arg =
    Arg.(value & opt mode_conv System.Hipstr & info [ "mode" ] ~doc:"native, psr or hipstr.")
  in
  let opt_arg = Arg.(value & opt opt_conv 3 & info [ "opt" ] ~doc:"PSR optimization level (0-3).") in
  let action (w : Workloads.t) mode isa seed opt_level migrate_prob cc_capacity cc_policy
      no_dcache no_chain no_packed metrics trace hostprof assert_alloc checkpoint_every
      checkpoint_out memo_in memo_out state_out exports =
    let cfg =
      let base = { Config.default with opt_level } in
      let base =
        match migrate_prob with None -> base | Some p -> { base with migrate_prob = p }
      in
      apply_cc_args base cc_capacity cc_policy
    in
    let obs = make_obs ~trace in
    let hp = start_hostprof ~obs hostprof in
    let sys =
      System.of_fatbin ~obs ~cfg ~seed ~start_isa:isa ~decode_cache:(not no_dcache)
        ~chain:(not no_chain) ~packed:(not no_packed) ~mode (Workloads.fatbin w)
    in
    (match memo_in with
    | None -> ()
    | Some path -> (
      match Snapshot.load_memo sys (read_binary path) with
      | () -> Printf.printf "loaded memo: %s\n" path
      | exception e -> corrupt_exit ("memo " ^ path) e));
    let fuel = 3 * w.w_fuel in
    (* rebaseline so words/instr measures the run itself, not the
       compile/link/boot allocations that precede it *)
    Option.iter Obs.Hostprof.start_run hp;
    let outcome =
      match checkpoint_every with
      | None -> System.run sys ~fuel
      | Some n ->
        (* run in checkpoint-sized instruction steps; each image lands
           in its own PREFIX.<instrs>.snap so a crashed run can resume
           from the latest one *)
        let rec go target =
          match System.run sys ~fuel:(min target fuel) with
          | System.Out_of_fuel when target < fuel ->
            let image = Snapshot.checkpoint ~workload:w.w_name sys in
            let path = Printf.sprintf "%s.%d.snap" checkpoint_out (System.instructions sys) in
            write_binary path image;
            Printf.printf "checkpoint: %s (%d bytes at %d instructions)\n" path
              (String.length image) (System.instructions sys);
            go (target + n)
          | o -> o
        in
        go n
    in
    Option.iter (fun hp -> Obs.Hostprof.stop_run hp ~instructions:(System.instructions sys)) hp;
    Printf.printf "%s [%s]: %s\n" w.w_name w.w_description (outcome_string outcome);
    Printf.printf "output: %s\n" (String.concat " " (List.map string_of_int (System.output sys)));
    Printf.printf "instructions: %d  cycles: %.0f  simulated time: %.3f ms\n"
      (System.instructions sys) (System.cycles sys) (1000. *. System.seconds sys);
    print_decode_cache_stats sys isa;
    if mode <> System.Native then begin
      let vm = System.vm sys isa in
      let st = Hipstr_psr.Vm.stats vm in
      Printf.printf
        "translations: %d  source instrs: %d -> emitted: %d  traps: %d  suspicious: %d\n"
        st.translations st.source_instrs st.emitted_instrs st.traps st.suspicious;
      Printf.printf "cache: flushes=%d evictions=%d memo-installs=%d retranslate-cycles=%.0f\n"
        (System.cache_flushes sys) (System.cache_evictions sys) (System.memo_installs sys)
        (System.retranslate_cycles sys);
      if mode = System.Hipstr then
        Printf.printf "migrations: %d security + %d forced\n" (System.security_migrations sys)
          (System.forced_migrations sys)
    end;
    if metrics then print_metrics sys;
    print_hostprof hp;
    check_alloc hp assert_alloc;
    (match memo_out with
    | None -> ()
    | Some path ->
      let memo = Snapshot.save_memo sys in
      write_binary path memo;
      Printf.printf "wrote memo: %s (%d bytes)\n" path (String.length memo));
    Option.iter (fun path -> write_state_dump path sys outcome) state_out;
    write_exports ~obs exports
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the simulated heterogeneous-ISA CMP.")
    Term.(
      const action $ workload_arg $ mode_arg $ isa_arg $ seed_arg $ opt_arg $ migrate_prob_arg
      $ cc_capacity_arg $ cc_policy_arg $ no_dcache_arg $ no_chain_arg $ no_packed_arg
      $ metrics_arg $ trace_arg $ hostprof_arg $ assert_alloc_arg $ checkpoint_every_arg
      $ checkpoint_out_arg "checkpoint"
      $ memo_in_arg $ memo_out_arg $ state_out_arg $ export_args)

(* ------------------------------------------------------------------ *)
(* checkpoint / restore: one-shot image plumbing around lib/snapshot.
   `checkpoint` runs a workload to an instruction point and writes the
   image; `restore` rebuilds the system from an image (resolving the
   fat binary from the manifest's workload name) and runs it to
   completion. Restore-then-run is bit-identical to the checkpointing
   run continuing — the migrate-smoke target diffs --state-out dumps
   from both sides. *)

let checkpoint_cmd =
  let mode_arg =
    Arg.(value & opt mode_conv System.Hipstr & info [ "mode" ] ~doc:"native, psr or hipstr.")
  in
  let opt_arg = Arg.(value & opt opt_conv 3 & info [ "opt" ] ~doc:"PSR optimization level (0-3).") in
  let at_arg =
    Arg.(
      required
      & opt (some fuel_conv) None
      & info [ "at" ] ~docv:"INSTRUCTIONS" ~doc:"Instruction count to checkpoint at (> 0).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "checkpoint.snap"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Where to write the image.")
  in
  let action (w : Workloads.t) mode isa seed opt_level migrate_prob cc_capacity cc_policy at out =
    let cfg =
      let base = { Config.default with opt_level } in
      let base =
        match migrate_prob with None -> base | Some p -> { base with migrate_prob = p }
      in
      apply_cc_args base cc_capacity cc_policy
    in
    let obs = make_obs ~trace:false in
    let sys = System.of_fatbin ~obs ~cfg ~seed ~start_isa:isa ~mode (Workloads.fatbin w) in
    match System.run sys ~fuel:at with
    | System.Out_of_fuel ->
      let image = Snapshot.checkpoint ~workload:w.w_name sys in
      write_binary out image;
      Printf.printf "checkpoint: %s (%d bytes)\n" out (String.length image);
      Printf.printf "  workload=%s mode=%s seed=%d at %d instructions, %.0f cycles\n" w.w_name
        (match mode with System.Native -> "native" | System.Psr_only -> "psr" | System.Hipstr -> "hipstr")
        seed (System.instructions sys) (System.cycles sys)
    | o ->
      Printf.eprintf "%s finished before --at %d (%s); nothing to checkpoint\n" w.w_name at
        (outcome_string o);
      exit 1
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Run a workload to an instruction point and write a versioned snapshot image. The \
          image carries the memory delta, machine and PSR VM state; translated code \
          re-materializes on restore.")
    Term.(
      const action $ workload_arg $ mode_arg $ isa_arg $ seed_arg $ opt_arg $ migrate_prob_arg
      $ cc_capacity_arg $ cc_policy_arg $ at_arg $ out_arg)

let restore_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE" ~doc:"Snapshot image file.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some fuel_conv) None
      & info [ "fuel" ]
          ~doc:"Instruction budget for the resumed run (default: 3x the workload's nominal fuel).")
  in
  let info_arg =
    Arg.(
      value & flag
      & info [ "info" ] ~doc:"Print the image manifest and exit without running anything.")
  in
  let action file fuel only_info metrics state_out exports =
    let image = read_binary file in
    let mf =
      try Snapshot.manifest_of image with e -> corrupt_exit ("image " ^ file) e
    in
    let mode_label =
      match mf.Snapshot.mf_mode with
      | System.Native -> "native"
      | System.Psr_only -> "psr"
      | System.Hipstr -> "hipstr"
    in
    Printf.printf "%s: workload=%s mode=%s seed=%d pid=%d at %d instructions, %.0f cycles\n" file
      mf.Snapshot.mf_workload mode_label mf.Snapshot.mf_seed mf.Snapshot.mf_pid
      mf.Snapshot.mf_instructions mf.Snapshot.mf_cycles;
    if not only_info then begin
      let w =
        match Workloads.find mf.Snapshot.mf_workload with
        | w -> w
        | exception Not_found ->
          Printf.eprintf
            "image names workload '%s', which this build does not know — cannot resolve the fat \
             binary\n"
            mf.Snapshot.mf_workload;
          exit 1
      in
      let obs = make_obs ~trace:false in
      let sys, _ =
        try Snapshot.restore ~obs ~fatbin:(Workloads.fatbin w) image
        with e -> corrupt_exit ("image " ^ file) e
      in
      let fuel = match fuel with Some f -> f | None -> 3 * w.w_fuel in
      let outcome = System.run sys ~fuel in
      Printf.printf "%s [resumed]: %s\n" w.w_name (outcome_string outcome);
      Printf.printf "output: %s\n" (String.concat " " (List.map string_of_int (System.output sys)));
      Printf.printf "instructions: %d  cycles: %.0f  simulated time: %.3f ms\n"
        (System.instructions sys) (System.cycles sys) (1000. *. System.seconds sys);
      if metrics then print_metrics sys;
      Option.iter (fun path -> write_state_dump path sys outcome) state_out;
      write_exports ~obs exports
    end
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Restore a snapshot image and run it to completion. Bit-identical to the checkpointing \
          run continuing uninterrupted (compare --state-out dumps). Truncated, version-skewed or \
          wrong-binary images are rejected loudly.")
    Term.(
      const action $ file_arg $ fuel_arg $ info_arg $ metrics_arg $ state_out_arg $ export_args)

let gadgets_cmd =
  let action (w : Workloads.t) isa =
      let fb = Workloads.fatbin w in
      let mem = Mem.create Hipstr_machine.Layout.mem_size in
      Fatbin.load fb mem;
      let gadgets = Galileo.mine_program mem fb isa in
      let rets = List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget) gadgets in
      let sp = (match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc).sp in
      let viable = List.filter (fun g -> Galileo.is_viable (Galileo.classify ~sp g)) rets in
      Printf.printf "%s (%s): %d return gadgets, %d JOP gadgets, %d viable, %d unintentional\n"
        w.w_name
        (match isa with Desc.Cisc -> "cisc" | Desc.Risc -> "risc")
        (List.length rets)
        (Galileo.count gadgets Galileo.Jop_gadget)
        (List.length viable)
        (List.length (List.filter (fun g -> not g.Galileo.g_aligned) rets));
      List.iteri
        (fun i g ->
          if i < 10 then
            Printf.printf "  0x%x: %s\n" g.Galileo.g_addr
              (String.concat " ; "
                 (List.map
                    (Minstr.to_string
                       ~reg_name:
                         (Desc.reg_name
                            (match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | _ -> Hipstr_risc.Isa.desc)))
                    g.Galileo.g_instrs)))
        viable
  in
  Cmd.v
    (Cmd.info "gadgets" ~doc:"Mine a workload image with the Galileo algorithm.")
    Term.(const action $ workload_arg $ isa_arg)

let attack_cmd =
  let mode_arg =
    Arg.(value & opt mode_conv System.Native & info [ "mode" ] ~doc:"Defense to attack.")
  in
  let action mode seed =
    let fb = Workloads.fatbin Workloads.httpd in
    let mem = Mem.create Hipstr_machine.Layout.mem_size in
    Fatbin.load fb mem;
    match Rop.build_chain mem fb Desc.Cisc ~victim_func:"handle_request" with
    | None ->
      Printf.eprintf "could not construct an execve chain\n";
      exit 1
    | Some chain ->
      Printf.printf "execve chain: %d payload words, return slot at word %d\n"
        (List.length chain.Rop.c_payload) chain.Rop.c_ret_index;
      List.iter
        (fun s ->
          Printf.printf "  gadget 0x%x pops r%d := %d\n" s.Rop.s_gadget s.Rop.s_reg s.Rop.s_value)
        chain.Rop.c_steps;
      Printf.printf "  final return into syscall at 0x%x\n" chain.Rop.c_syscall_addr;
      let cfg = { Config.default with migrate_prob = 1.0 } in
      let sys = System.of_fatbin ~cfg ~seed ~start_isa:Desc.Cisc ~mode fb in
      (match Rop.deliver sys chain ~fuel:4_000_000 with
      | Rop.Shell -> Printf.printf "result: SHELL SPAWNED — the exploit won\n"
      | Rop.Crashed m -> Printf.printf "result: process killed (%s)\n" m
      | Rop.Survived -> Printf.printf "result: overflow silently absorbed; program completed\n")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Deliver the ROP exploit against httpd.")
    Term.(const action $ mode_arg $ seed_arg)

let experiment_cmd =
  let ids_arg =
    Arg.(
      required
      & pos 0 (some experiments_conv) None
      & info [] ~docv:"IDS" ~doc:"Experiment id, comma list of ids, or 'all'.")
  in
  let action es jobs exports =
    List.iter print_string (Registry.run_many ~jobs es);
    (* experiments report into the ambient global context *)
    write_exports ~obs:Obs.global exports
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:
         "Regenerate tables/figures from the paper. With -j N, independent experiments run on N \
          domains; output is printed in registry order and is bit-identical to -j 1.")
    Term.(const action $ ids_arg $ jobs_arg $ export_args)

let disasm_cmd =
  let func_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNC" ~doc:"Function name.") in
  let action (w : Workloads.t) func isa =
    (
      let fb = Workloads.fatbin w in
      match Fatbin.find_func fb func with
      | exception Not_found ->
        Printf.eprintf "no function %s\n" func;
        exit 1
      | fs ->
        let im = Fatbin.image fs isa in
        let mem = Mem.create Hipstr_machine.Layout.mem_size in
        Fatbin.load fb mem;
        let desc = match isa with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc in
        let pos = ref im.im_entry in
        let stop = im.im_entry + im.im_size in
        let continue_ = ref true in
        while !continue_ && !pos < stop do
          match Hipstr_machine.Exec.decode isa mem !pos with
          | None -> continue_ := false
          | Some (i, len) ->
            Printf.printf "0x%x: %s\n" !pos (Minstr.to_string ~reg_name:(Desc.reg_name desc) i);
            pos := !pos + len
        done)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a function from a workload's fat binary.")
    Term.(const action $ workload_arg $ func_arg $ isa_arg)

let run_file_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.") in
  let mode_arg =
    Arg.(value & opt mode_conv System.Hipstr & info [ "mode" ] ~doc:"native, psr or hipstr.")
  in
  let fuel_arg = Arg.(value & opt fuel_conv 10_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
  let action file mode isa seed fuel cc_capacity cc_policy no_dcache no_chain no_packed metrics
      trace exports =
    let src = In_channel.with_open_text file In_channel.input_all in
    let obs = make_obs ~trace in
    let cfg = apply_cc_args Config.default cc_capacity cc_policy in
    match
      System.create ~obs ~cfg ~seed ~start_isa:isa ~decode_cache:(not no_dcache)
        ~chain:(not no_chain) ~packed:(not no_packed) ~mode ~src ()
    with
    | exception Hipstr_compiler.Compile.Error m ->
      Printf.eprintf "%s: %s\n" file m;
      exit 1
    | sys ->
      let outcome = System.run sys ~fuel in
      Printf.printf "%s: %s\n" file (outcome_string outcome);
      Printf.printf "output: %s\n" (String.concat " " (List.map string_of_int (System.output sys)));
      Printf.printf "instructions: %d  cycles: %.0f  simulated time: %.3f ms\n"
        (System.instructions sys) (System.cycles sys) (1000. *. System.seconds sys);
      print_decode_cache_stats sys isa;
      if metrics then print_metrics sys;
      write_exports ~obs exports
  in
  Cmd.v
    (Cmd.info "run-file" ~doc:"Compile and run a MiniC source file.")
    Term.(
      const action $ file_arg $ mode_arg $ isa_arg $ seed_arg $ fuel_arg $ cc_capacity_arg
      $ cc_policy_arg $ no_dcache_arg $ no_chain_arg $ no_packed_arg $ metrics_arg $ trace_arg
      $ export_args)

(* ------------------------------------------------------------------ *)
(* cmp-run: boot K workloads as processes and time-slice them across
   a mixed-ISA CMP. Start ISAs follow the core list, so pinned
   (native/psr) processes always have a home core; hipstr processes
   may be placed cross-ISA by the policy and migrate at equivalence
   points. --verify re-runs every process standalone with the same
   seed and demands identical outcome, output and shell state — the
   scheduler must be semantically invisible. *)
let cmp_run_cmd =
  let workloads_arg =
    Arg.(
      non_empty & pos_all workload_conv []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workloads to boot as processes (repeat a name to run several copies).")
  in
  let mode_arg =
    Arg.(
      value
      & opt mode_conv System.Hipstr
      & info [ "mode" ]
          ~doc:"Process mode: native, psr or hipstr (only hipstr processes migrate across ISAs).")
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Cmp.Security_first
      & info [ "policy" ] ~doc:"Scheduling policy: round-robin, load-balance or security-first.")
  in
  let cores_arg =
    Arg.(
      value
      & opt cores_conv Cmp.default_cores
      & info [ "cores" ]
          ~doc:"Core count (tiling cisc/risc pairs) or an explicit list like 'cisc,risc,risc'.")
  in
  let quantum_arg =
    Arg.(value & opt quantum_conv 20_000 & info [ "quantum" ] ~doc:"Slice length in instructions.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some fuel_conv) None
      & info [ "fuel" ]
          ~doc:"Per-process instruction budget (default: 3x the workload's nominal fuel).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-run every process standalone with the same seed and check that outcome, output \
             and shell state are identical — scheduling must not change program semantics.")
  in
  let sched_arg =
    Arg.(value & flag & info [ "trace-schedule" ] ~doc:"Print every scheduling slice.")
  in
  let isa_label = function Desc.Cisc -> "cisc" | Desc.Risc -> "risc" in
  let action ws mode policy cores quantum fuel seed migrate_prob cc_capacity cc_policy no_dcache
      no_chain no_packed jobs metrics sched verify checkpoint_every checkpoint_out tl_args exports =
    let cfg =
      let base =
        match migrate_prob with
        | None -> Config.default
        | Some p -> { Config.default with migrate_prob = p }
      in
      apply_cc_args base cc_capacity cc_policy
    in
    let core_arr = Array.of_list cores in
    let start_isa i = core_arr.(i mod Array.length core_arr) in
    let budget (w : Workloads.t) = match fuel with Some f -> f | None -> 3 * w.w_fuel in
    let obs = Obs.create () in
    let procs =
      List.mapi
        (fun i (w : Workloads.t) ->
          Process.create ~obs ~cfg ~seed:(seed + i) ~start_isa:(start_isa i)
            ~decode_cache:(not no_dcache) ~chain:(not no_chain) ~packed:(not no_packed) ~mode
            ~pid:i ~name:w.w_name
            ~fuel:(budget w) (Workloads.fatbin w))
        ws
    in
    let cmp = Cmp.create ~obs ~policy ~quantum ~cores procs in
    let timeline = make_timeline tl_args in
    (match checkpoint_every with
    | None -> Cmp.run ~jobs ?timeline cmp
    | Some n ->
      (* drive the scheduler round by round; every n rounds write the
         latest process image per live pid (PREFIX.pidK.snap), the
         files a cross-pool restore re-injects from *)
      let rounds = ref 0 in
      while Cmp.runnable_count cmp > 0 do
        ignore (Cmp.step ~jobs ?timeline cmp);
        incr rounds;
        if !rounds mod n = 0 then
          List.iter
            (fun p ->
              if Process.runnable p then begin
                let image = Snapshot.checkpoint_process ~workload:(Process.name p) p in
                let path = Printf.sprintf "%s.pid%d.snap" checkpoint_out (Process.pid p) in
                write_binary path image;
                Printf.printf "checkpoint: %s (%d bytes, round %d, %d instructions)\n" path
                  (String.length image) !rounds (Process.instructions p)
              end)
            (Cmp.processes cmp)
      done);
    let m = Cmp.metrics cmp in
    Printf.printf "cmp-run: %d processes on %d cores [%s], policy %s, quantum %d\n"
      (List.length ws) (Array.length core_arr)
      (String.concat "," (List.map isa_label cores))
      (Cmp.policy_name policy) quantum;
    List.iter
      (fun (pm : Cmp.proc_metrics) ->
        let p = Cmp.proc cmp pm.pm_pid in
        Printf.printf
          "  pid %d %-10s %-28s instrs=%-9d slices=%-4d migrations: sched=%d sec=%d forced=%d \
           cache: flush=%d evict=%d memo=%d host: chain=%d ic=%d\n"
          pm.pm_pid pm.pm_name
          (match pm.pm_outcome with Some o -> outcome_string o | None -> "runnable?")
          pm.pm_instructions pm.pm_slices pm.pm_sched_migrations pm.pm_security_migrations
          pm.pm_forced_migrations pm.pm_cache_flushes pm.pm_cache_evictions pm.pm_memo_installs
          pm.pm_chain_follows pm.pm_ic_hits;
        Printf.printf "    output: %s\n"
          (String.concat " " (List.map string_of_int (System.output (Process.sys p)))))
      m.m_procs;
    List.iter
      (fun (cm : Cmp.core_metrics) ->
        Printf.printf "  core %d (%s): instrs=%-9d cycles=%-11.0f slices=%-4d cold-switches=%d\n"
          cm.cm_id (isa_label cm.cm_isa) cm.cm_instructions cm.cm_cycles cm.cm_slices
          cm.cm_switches)
      m.m_cores;
    Printf.printf
      "rounds=%d slices=%d context-switches=%d migrations: security-policy=%d load-policy=%d\n"
      m.m_rounds m.m_slices m.m_context_switches m.m_migrations_security_policy
      m.m_migrations_load_policy;
    if sched then print_string (Cmp.schedule_to_string cmp);
    if metrics then print_obs obs;
    if verify then begin
      let failures = ref 0 in
      List.iteri
        (fun i (w : Workloads.t) ->
          let p = Cmp.proc cmp i in
          (* deliberately created with the *default* decode-cache,
             chaining and packing settings: under --no-decode-cache,
             --no-chain or --no-packed this doubles as an end-to-end
             differential check of the corresponding fast path *)
          let alone =
            System.of_fatbin ~obs:Obs.disabled ~cfg ~seed:(seed + i) ~start_isa:(start_isa i)
              ~mode (Workloads.fatbin w)
          in
          let alone_outcome = System.run alone ~fuel:(budget w) in
          let sys = Process.sys p in
          let ok =
            Process.outcome p = Some alone_outcome
            && System.output sys = System.output alone
            && System.shell sys = System.shell alone
          in
          if ok then Printf.printf "  verify pid %d (%s): OK\n" i w.w_name
          else begin
            incr failures;
            Printf.printf "  verify pid %d (%s): MISMATCH\n    cmp:   %s / %s\n    alone: %s / %s\n"
              i w.w_name
              (match Process.outcome p with Some o -> outcome_string o | None -> "runnable")
              (String.concat " " (List.map string_of_int (System.output sys)))
              (outcome_string alone_outcome)
              (String.concat " " (List.map string_of_int (System.output alone)))
          end)
        ws;
      if !failures > 0 then begin
        Printf.eprintf "verify: %d of %d processes diverged from their standalone runs\n" !failures
          (List.length ws);
        exit 1
      end
      else
        Printf.printf "verify: all %d processes match their standalone runs exactly\n"
          (List.length ws)
    end;
    print_timeline_summary timeline;
    write_exports ?timeline ~obs exports;
    write_timeline timeline tl_args
  in
  Cmd.v
    (Cmd.info "cmp-run"
       ~doc:"Time-slice several workloads across a simulated mixed-ISA chip multiprocessor.")
    Term.(
      const action $ workloads_arg $ mode_arg $ policy_arg $ cores_arg $ quantum_arg $ fuel_arg
      $ seed_arg $ migrate_prob_arg $ cc_capacity_arg $ cc_policy_arg $ no_dcache_arg
      $ no_chain_arg $ no_packed_arg $ jobs_arg $ metrics_arg $ sched_arg $ verify_arg
      $ checkpoint_every_arg
      $ checkpoint_out_arg "cmp" $ timeline_args $ export_args)

(* ------------------------------------------------------------------ *)
(* fleet-run: serve an open-loop trace of staged httpd connections
   across a sharded pool of CMPs and report tail latency. The whole
   run is named by (--seed, --procs, --arrival, --mix): -j N output
   is bit-identical to -j 1, stealing or not. *)
let fleet_run_cmd =
  let arrival_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Traffic.arrival_of_string s)),
        fun ppf a -> Format.pp_print_string ppf (Traffic.arrival_name a) )
  in
  let mix_conv =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (Traffic.mix_of_string s)),
        fun ppf m -> Format.pp_print_string ppf (Traffic.mix_name m) )
  in
  let procs_arg =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"procs" ~lo:1 ~hi:100_000 ()) 200
      & info [ "procs" ] ~doc:"Connections to generate (each one is a staged httpd process).")
  in
  let arrival_arg =
    Arg.(
      value
      & opt arrival_conv (Traffic.Poisson 50.)
      & info [ "arrival" ] ~docv:"MODEL"
          ~doc:
            "Arrival process: $(b,poisson:RATE) or $(b,bursty:RATE:BURST), RATE in requests per \
             million guest cycles.")
  in
  let mix_arg =
    Arg.(
      value
      & opt mix_conv Traffic.default_mix
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Request mix weights as $(b,V,O,M,A) or \
             $(b,valid=V,oversized=O,malformed=M,attack=A).")
  in
  let policy_arg =
    Arg.(
      value
      & opt policy_conv Cmp.Round_robin
      & info [ "policy" ] ~doc:"Per-shard scheduling policy: round-robin, load-balance or security-first.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"shards" ~lo:1 ~hi:1024 ()) Fleet.default.Fleet.fl_shards
      & info [ "shards" ] ~doc:"CMPs in the fleet (connection $(i,i) lands on shard $(i,i) mod shards).")
  in
  let cores_arg =
    Arg.(
      value
      & opt cores_conv Cmp.default_cores
      & info [ "cores" ]
          ~doc:"Cores per shard: a count (tiling cisc/risc pairs) or a list like 'cisc,risc,risc'.")
  in
  let quantum_arg =
    Arg.(
      value
      & opt quantum_conv Fleet.default.Fleet.fl_quantum
      & info [ "quantum" ] ~doc:"Slice length in instructions.")
  in
  let mode_arg =
    Arg.(
      value
      & opt mode_conv System.Hipstr
      & info [ "mode" ] ~doc:"Server mode: native, psr or hipstr.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt fuel_conv Hipstr_fleet.Traffic.default_fuel
      & info [ "fuel" ] ~doc:"Per-connection instruction budget.")
  in
  let max_live_arg =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"max-live" ~lo:1 ()) Fleet.default.Fleet.fl_max_live
      & info [ "max-live" ] ~doc:"Admission cap: live connections per shard (excess arrivals queue).")
  in
  let tenants_arg =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"tenants" ~lo:1 ()) 4
      & info [ "tenants" ] ~doc:"Tenants the connections tile across (per-tenant metric namespaces).")
  in
  let no_steal_arg =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:
            "Use a static shard partition instead of deterministic work stealing (results are \
             bit-identical either way; only the wall clock changes).")
  in
  let migrate_every_arg =
    Arg.(
      value
      & opt (bounded_int_conv ~what:"migrate-every" ~lo:0 ()) 0
      & info [ "migrate-every" ] ~docv:"WAVES"
          ~doc:
            "Live migration: every $(docv) waves, checkpoint one runnable process off the \
             most-loaded shard and restore it on the least-loaded one (0 disables). \
             Deterministic: the rebalance schedule is decided after the wave barrier.")
  in
  let slo_target_arg =
    Arg.(
      value
      & opt (some (bounded_int_conv ~what:"slo target (cycles)" ~lo:1 ())) None
      & info [ "slo-target" ] ~docv:"CYCLES"
          ~doc:
            "Latency objective: target sojourn latency in guest cycles. Enables the timeline's \
             SLO section: per-window burn rate, cumulative error-budget remaining and \
             time-to-exhaustion over $(b,fleet.latency_cycles).")
  in
  let slo_budget_arg =
    let budget_conv =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some p when p > 0.0 && p < 1.0 -> Ok p
            | _ ->
              Error
                (`Msg (Printf.sprintf "slo budget must be a fraction in (0, 1) (got '%s')" s))),
          fun ppf p -> Format.fprintf ppf "%g" p )
    in
    Arg.(
      value
      & opt budget_conv 0.1
      & info [ "slo-budget" ] ~docv:"FRACTION"
          ~doc:"Error budget: fraction of requests allowed over the SLO target (default 0.1).")
  in
  let action procs arrival mix policy shards cores quantum mode fuel max_live tenants no_steal
      migrate_every seed migrate_prob jobs metrics trace hostprof tl_args slo_target slo_budget
      exports =
    let cfg =
      match (mode, migrate_prob) with
      | System.Hipstr, Some p -> Some { Config.default with migrate_prob = p }
      | _ -> None
    in
    let fleet_cfg =
      {
        Fleet.fl_shards = shards;
        fl_cores = cores;
        fl_policy = policy;
        fl_quantum = quantum;
        fl_mode = mode;
        fl_cfg = cfg;
        fl_seed = seed;
        fl_fuel = fuel;
        fl_max_live = max_live;
        fl_steal = not no_steal;
        fl_migrate_every = migrate_every;
      }
    in
    let conns = Traffic.generate ~tenants ~seed ~procs ~arrival ~mix () in
    let obs = make_obs ~trace in
    let timeline = make_timeline ~force:(slo_target <> None) tl_args in
    let hp = start_hostprof ~obs hostprof in
    let r = Fleet.run ~jobs ~obs ?timeline fleet_cfg conns in
    Option.iter
      (fun hp ->
        Obs.Hostprof.stop_run hp
          ~instructions:
            (List.fold_left (fun acc rr -> acc + rr.Fleet.rr_instructions) 0 r.Fleet.r_records))
      hp;
    Printf.printf "fleet-run: %d conns on %d shards x %d cores, policy %s, mode %s\n" procs shards
      (List.length cores) (Cmp.policy_name policy)
      (match mode with System.Native -> "native" | System.Psr_only -> "psr" | System.Hipstr -> "hipstr");
    Printf.printf "traffic: %s, mix %s, seed %d\n" (Traffic.arrival_name arrival)
      (Traffic.mix_name mix) seed;
    Printf.printf
      "served %d: completed=%d killed=%d shell=%d out-of-fuel=%d in %d waves, makespan %.0f cycles\n"
      (List.length r.Fleet.r_records) r.Fleet.r_completed r.Fleet.r_killed r.Fleet.r_shell
      r.Fleet.r_out_of_fuel r.Fleet.r_waves r.Fleet.r_makespan;
    if migrate_every > 0 then Printf.printf "live migrations: %d\n" r.Fleet.r_live_migrations;
    Printf.printf "throughput: %.3f completed/Mcycle\n" (Fleet.throughput r);
    (if r.Fleet.r_records = [] then
       (* zero admitted requests: percentiles are undefined
          (Fleet.latency_percentile raises), say so instead *)
       Printf.printf "latency cycles: n/a (no requests served)\n"
     else
       Printf.printf "latency cycles: p50=%.0f p95=%.0f p99=%.0f max=%.0f\n"
         (Fleet.latency_percentile r 50.) (Fleet.latency_percentile r 95.)
         (Fleet.latency_percentile r 99.) (Fleet.latency_percentile r 100.));
    List.iter
      (fun (k, total, completed, killed) ->
        if total > 0 then
          Printf.printf "  %-10s total=%-5d completed=%-5d killed=%d\n" (Traffic.kind_name k) total
            completed killed)
      (Fleet.by_kind r);
    let slo =
      match (slo_target, timeline) with
      | Some target, Some tl ->
        let obj = Obs.Slo.objective ~target:(float_of_int target) ~budget:slo_budget in
        Some (obj, Obs.Slo.evaluate obj ~latency:"fleet.latency_cycles" tl)
      | _ -> None
    in
    print_timeline_summary timeline;
    (match slo with
    | None -> ()
    | Some (obj, reports) -> (
      match List.rev reports with
      | [] -> Printf.printf "slo: no windows recorded\n"
      | (last : Obs.Slo.window_report) :: _ ->
        let exhausted_at =
          List.find_opt (fun (sw : Obs.Slo.window_report) -> sw.Obs.Slo.sw_exhausted) reports
        in
        Printf.printf
          "slo: target=%.0f cycles budget=%g: %.1f violations / %d requests, budget remaining \
           %.1f%s\n"
          obj.Obs.Slo.slo_target obj.Obs.Slo.slo_budget last.Obs.Slo.sw_cum_violations
          last.Obs.Slo.sw_cum_requests last.Obs.Slo.sw_budget_remaining
          (match exhausted_at with
          | Some sw -> Printf.sprintf " (EXHAUSTED from window %d)" sw.Obs.Slo.sw_index
          | None -> "")));
    if metrics then print_obs obs;
    print_hostprof hp;
    write_exports ?timeline ~obs exports;
    write_timeline ?slo ?hostprof:hp timeline tl_args
  in
  Cmd.v
    (Cmd.info "fleet-run"
       ~doc:
         "Serve an open-loop httpd traffic trace across a sharded fleet of heterogeneous-ISA \
          CMPs and report throughput and tail latency. Deterministic: -j N is bit-identical to \
          -j 1.")
    Term.(
      const action $ procs_arg $ arrival_arg $ mix_arg $ policy_arg $ shards_arg $ cores_arg
      $ quantum_arg $ mode_arg $ fuel_arg $ max_live_arg $ tenants_arg $ no_steal_arg
      $ migrate_every_arg $ seed_arg $ migrate_prob_arg $ jobs_arg $ metrics_arg $ trace_arg
      $ hostprof_arg $ timeline_args $ slo_target_arg $ slo_budget_arg $ export_args)

let list_cmd =
  let action () =
    Printf.printf "workloads:\n";
    List.iter
      (fun n ->
        let w = Workloads.find n in
        Printf.printf "  %-12s %s (%s)\n" w.w_name w.w_description w.w_paper_name)
      Workloads.names;
    Printf.printf "\nexperiments:\n";
    List.iter (fun e -> Printf.printf "  %-8s %s\n" e.Registry.ex_id e.Registry.ex_title) Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and experiments.") Term.(const action $ const ())

let () =
  let info =
    Cmd.info "hipstr"
      ~doc:"HIPStR: heterogeneous-ISA program state relocation (ASPLOS 2016 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            run_file_cmd;
            checkpoint_cmd;
            restore_cmd;
            cmp_run_cmd;
            fleet_run_cmd;
            gadgets_cmd;
            attack_cmd;
            experiment_cmd;
            disasm_cmd;
            list_cmd;
          ]))
