(* Differential fuzzing: randomly generated MiniC programs must
   produce identical print traces on every execution configuration —
   native CISC, native RISC, PSR (multiple seeds), and HIPStR with
   forced migration probability 1. This is the strongest correctness
   property the system has: the whole pipeline (parser, compiler, both
   backends, interpreter, PSR translator, relocation maps, migration)
   sits under it. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config

let fuel = 4_000_000

let run_config ?cfg ?chain ?packed src ~mode ~isa ~seed =
  match System.create ?cfg ?chain ?packed ~seed ~start_isa:isa ~mode ~src () with
  | exception Hipstr_compiler.Compile.Error m -> Error ("compile: " ^ m)
  | sys -> (
    match System.run sys ~fuel with
    | System.Finished _ -> Ok (System.output sys)
    | System.Killed m -> Error ("killed: " ^ m)
    | System.Shell_spawned -> Error "shell"
    | System.Out_of_fuel -> Error "fuel")

(* HIPSTR_FUZZ_CHAIN flips the *default* chaining setting of every
   config below (the explicit chained/unchained contrast pair keeps
   its settings regardless): "0"/"off" fuzzes the whole matrix with
   block chaining disabled, anything else (or unset) with it on.
   Running the suite once per value covers both dispatch paths with
   the full config matrix. *)
let fuzz_chain () =
  match Sys.getenv_opt "HIPSTR_FUZZ_CHAIN" with
  | None | Some "" | Some "1" | Some "on" -> true
  | Some "0" | Some "off" -> false
  | Some s -> failwith ("bad HIPSTR_FUZZ_CHAIN: " ^ s)

(* HIPSTR_FUZZ_PACKED likewise flips the *default* packed-dispatch
   setting of every config: "0"/"off" fuzzes the whole matrix on the
   boxed decoded-instruction path (the [--no-packed] oracle). The
   explicit packed/unpacked contrast pair below keeps its settings
   regardless. *)
let fuzz_packed () =
  match Sys.getenv_opt "HIPSTR_FUZZ_PACKED" with
  | None | Some "" | Some "1" | Some "on" -> true
  | Some "0" | Some "off" -> false
  | Some s -> failwith ("bad HIPSTR_FUZZ_PACKED: " ^ s)

let always_migrate = { Config.default with migrate_prob = 1.0 }
let sometimes_migrate = { Config.default with migrate_prob = 0.5 }

(* HIPSTR_FUZZ_CC_CAPACITY shrinks the code cache for the eviction
   configs below, so fuzzed programs exercise wrap-around, victim
   invalidation and the translation memo under real capacity
   pressure. The floor is Config.validate's 4096. *)
let fuzz_cc_capacity () =
  match Sys.getenv_opt "HIPSTR_FUZZ_CC_CAPACITY" with
  | None | Some "" -> 8192
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 4096 -> n
    | _ -> failwith ("bad HIPSTR_FUZZ_CC_CAPACITY: " ^ s))

let tiny_fifo =
  { Config.default with cache_bytes = fuzz_cc_capacity (); cc_policy = Hipstr_psr.Code_cache.Fifo }

let tiny_clock =
  {
    Config.default with
    cache_bytes = fuzz_cc_capacity ();
    cc_policy = Hipstr_psr.Code_cache.Clock;
  }

let tiny_flush = { Config.default with cache_bytes = fuzz_cc_capacity () }

let check_program seed =
  let src = Progen.generate seed in
  let dflt = fuzz_chain () in
  let dpk = fuzz_packed () in
  let configs =
    [
      ("native-cisc", System.Native, Desc.Cisc, 1, None, dflt, dpk);
      ("native-risc", System.Native, Desc.Risc, 1, None, dflt, dpk);
      ("psr-cisc-a", System.Psr_only, Desc.Cisc, 1 + (seed * 7), None, dflt, dpk);
      ("psr-cisc-b", System.Psr_only, Desc.Cisc, 2 + (seed * 13), None, dflt, dpk);
      ("psr-risc", System.Psr_only, Desc.Risc, 3 + seed, None, dflt, dpk);
      ("hipstr", System.Hipstr, Desc.Cisc, 4 + seed, Some always_migrate, dflt, dpk);
      ("hipstr-risc", System.Hipstr, Desc.Risc, 5 + (seed * 3), Some always_migrate, dflt, dpk);
      ("hipstr-mid", System.Hipstr, Desc.Cisc, 6 + (seed * 11), Some sometimes_migrate, dflt, dpk);
      ("psr-tiny-flush", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_flush, dflt, dpk);
      ("psr-tiny-fifo", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo, dflt, dpk);
      ("psr-tiny-clock", System.Psr_only, Desc.Risc, 8 + (seed * 9), Some tiny_clock, dflt, dpk);
      ("hipstr-tiny-fifo", System.Hipstr, Desc.Cisc, 9 + (seed * 17),
       Some { tiny_fifo with migrate_prob = 1.0 }, dflt, dpk);
      (* explicit chained/unchained contrast on the churniest config:
         same seed, same tiny eviction cache, only the host dispatch
         differs — a per-program chaining differential *)
      ("psr-tiny-fifo-chain", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo, true,
       dpk);
      ("psr-tiny-fifo-nochain", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo,
       false, dpk);
      (* and the packed/unpacked contrast on the same churny config:
         only the retirement representation differs — a per-program
         packed-dispatch differential *)
      ("psr-tiny-fifo-packed", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo, dflt,
       true);
      ("psr-tiny-fifo-nopacked", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo,
       dflt, false);
    ]
  in
  let results =
    List.map
      (fun (label, mode, isa, s, cfg, chain, packed) ->
        (label, run_config ?cfg ~chain ~packed src ~mode ~isa ~seed:s))
      configs
  in
  match results with
  | (_, Ok reference) :: rest ->
    List.iter
      (fun (label, r) ->
        match r with
        | Ok out ->
          if out <> reference then
            Alcotest.failf "seed %d: %s diverged\nprogram:\n%s\nexpected %s got %s" seed label src
              (String.concat "," (List.map string_of_int reference))
              (String.concat "," (List.map string_of_int out))
        | Error e -> Alcotest.failf "seed %d: %s failed (%s)\nprogram:\n%s" seed label e src)
      rest
  | (_, Error e) :: _ -> Alcotest.failf "seed %d: reference run failed (%s)\nprogram:\n%s" seed e src
  | [] -> ()

(* HIPSTR_FUZZ_JOBS > 1 fans the seeds of a batch across domains via
   the deterministic pool; each seed is fully independent (own
   compile, own machines), so the only shared state is the
   domain-safe Obs.global the systems default to. *)
let fuzz_jobs () =
  match Sys.getenv_opt "HIPSTR_FUZZ_JOBS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> failwith ("bad HIPSTR_FUZZ_JOBS: " ^ s))

let test_fuzz_batch lo hi () =
  let seeds = List.init (hi - lo + 1) (fun i -> lo + i) in
  ignore (Hipstr_cmp.Pool.map ~jobs:(fuzz_jobs ()) check_program seeds)

let test_generated_programs_nontrivial () =
  (* sanity on the generator itself: programs compile and do work *)
  let sizes = ref [] in
  for seed = 1 to 10 do
    let src = Progen.generate seed in
    sizes := String.length src :: !sizes;
    match run_config src ~mode:System.Native ~isa:Desc.Cisc ~seed:1 with
    | Ok out -> Alcotest.(check int) "prints two values" 2 (List.length out)
    | Error e -> Alcotest.failf "seed %d failed: %s" seed e
  done;
  Alcotest.(check bool) "programs vary in size" true
    (List.length (List.sort_uniq compare !sizes) > 3)

(* HIPSTR_FUZZ_SEEDS overrides the seed range: "N" means 1-N, "LO-HI"
   an explicit range. CI uses it to trade coverage for wall clock. *)
let seed_range () =
  match Sys.getenv_opt "HIPSTR_FUZZ_SEEDS" with
  | None | Some "" -> (1, 100)
  | Some s -> (
    match String.index_opt s '-' with
    | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some lo, Some hi when lo >= 1 && hi >= lo -> (lo, hi)
      | _ -> failwith ("bad HIPSTR_FUZZ_SEEDS: " ^ s))
    | None -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> (1, n)
      | _ -> failwith ("bad HIPSTR_FUZZ_SEEDS: " ^ s)))

let () =
  let lo, hi = seed_range () in
  (* batches of 25 seeds; everything past the second batch is `Slow so
     the default alcotest run stays quick *)
  let batches =
    let rec go i acc =
      if i > hi then List.rev acc
      else
        let j = min hi (i + 24) in
        let speed = if i - lo >= 50 then `Slow else `Quick in
        let case =
          Alcotest.test_case (Printf.sprintf "programs %d-%d" i j) speed (test_fuzz_batch i j)
        in
        go (j + 1) (case :: acc)
    in
    go lo []
  in
  Alcotest.run "fuzz"
    [
      ( "differential",
        Alcotest.test_case "generator sanity" `Quick test_generated_programs_nontrivial :: batches
      );
    ]
