(* White-box tests of the PSR machinery: relocation-map invariants
   (property-based), translator structural properties, code cache and
   configuration validation. *)

module Config = Hipstr_psr.Config
module Reloc_map = Hipstr_psr.Reloc_map
module Code_cache = Hipstr_psr.Code_cache
module Translator = Hipstr_psr.Translator
module Vm = Hipstr_psr.Vm
module Rng = Hipstr_util.Rng
module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module Compile = Hipstr_compiler.Compile
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Machine = Hipstr_machine.Machine
module System = Hipstr.System
module Workloads = Hipstr_workloads.Workloads

let sample_fb =
  lazy
    (Compile.to_fatbin
       {| int helper(int a, int b, int c) {
            int arr[6];
            int i;
            for (i = 0; i < 6; i = i + 1) { arr[i] = a * i + b; }
            return arr[c % 6];
          }
          int main() {
            int total = 0;
            int i;
            for (i = 0; i < 10; i = i + 1) { total = total + helper(i, i + 1, i + 2); }
            print(total);
            return 0;
          } |})

let gen_map ?(cfg = Config.default) ~seed which fname =
  let fb = Lazy.force sample_fb in
  let fs = Fatbin.find_func fb fname in
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc in
  (Reloc_map.generate cfg (Rng.create seed) desc fs ~hot_regs:[], fs)

(* --- relocation-map properties --- *)

let prop_locations_distinct =
  QCheck.Test.make ~count:60 ~name:"relocated locations distinct and in range"
    QCheck.(int_range 1 100000)
    (fun seed ->
      let map, fs = gen_map ~seed Desc.Cisc "helper" in
      let locs = Reloc_map.randomized_locations map in
      let frame' = Reloc_map.padded_frame map in
      List.for_all (fun off -> off >= 0 && off < frame' - 4 && off mod 4 = 0) locs
      && List.length (List.sort_uniq compare locs) = List.length locs
      && frame' = fs.Fatbin.fs_frame.frame_bytes + Config.default.pad_bytes)

let prop_reg_map_injective =
  QCheck.Test.make ~count:60 ~name:"register relocation injective"
    QCheck.(int_range 1 100000)
    (fun seed ->
      let map, _ = gen_map ~seed Desc.Cisc "helper" in
      let desc = Hipstr_cisc.Isa.desc in
      let targets =
        List.filter_map
          (fun r ->
            match Reloc_map.map_reg map r with
            | Reloc_map.Lreg r' -> Some (`R r')
            | Reloc_map.Lpad off -> Some (`P off))
          desc.allocatable
      in
      List.length (List.sort_uniq compare targets) = List.length targets)

let prop_register_bias =
  QCheck.Test.make ~count:60 ~name:"O3 keeps at least three registers in registers"
    QCheck.(int_range 1 100000)
    (fun seed ->
      let map, _ = gen_map ~seed Desc.Cisc "helper" in
      Reloc_map.regs_in_registers map >= 3)

let prop_map_slot_total =
  QCheck.Test.make ~count:200 ~name:"slot mapping total and in range"
    QCheck.(pair (int_range 1 1000) (int_range (-200) 70000))
    (fun (seed, off) ->
      let map, _ = gen_map ~seed Desc.Cisc "helper" in
      let off' = Reloc_map.map_slot map off in
      off' >= 0 && off' < Reloc_map.padded_frame map)

let prop_map_slot_deterministic =
  QCheck.Test.make ~count:100 ~name:"slot mapping deterministic within an epoch"
    QCheck.(pair (int_range 1 1000) (int_range 0 40000))
    (fun (seed, off) ->
      let map, _ = gen_map ~seed Desc.Cisc "helper" in
      Reloc_map.map_slot map off = Reloc_map.map_slot map off)

let prop_maps_differ_across_seeds =
  QCheck.Test.make ~count:30 ~name:"different seeds give different maps"
    QCheck.(int_range 1 100000)
    (fun seed ->
      let m1, _ = gen_map ~seed Desc.Cisc "helper" in
      let m2, _ = gen_map ~seed:(seed + 1) Desc.Cisc "helper" in
      Reloc_map.ret_off m1 <> Reloc_map.ret_off m2
      || Reloc_map.randomized_locations m1 <> Reloc_map.randomized_locations m2)

let test_sp_and_scratch_identity () =
  let map, _ = gen_map ~seed:5 Desc.Cisc "helper" in
  Alcotest.(check bool) "sp identity" true (Reloc_map.map_reg map 7 = Reloc_map.Lreg 7);
  (* scratches are not in the allocatable set and stay put *)
  Alcotest.(check bool) "scratch identity" true (Reloc_map.map_reg map 6 = Reloc_map.Lreg 6)

let test_entropy_bits () =
  Alcotest.(check (float 0.01)) "8 KB pad, word slots: 11 bits" 11.
    (Reloc_map.entropy_bits_per_param Config.default);
  Alcotest.(check (float 0.01)) "64 KB pad: 14 bits" 14.
    (Reloc_map.entropy_bits_per_param { Config.default with pad_bytes = 65536 })

(* --- translator structural properties --- *)

let translate_entry ~seed which fname =
  let fb = Lazy.force sample_fb in
  let fs = Fatbin.find_func fb fname in
  let mem = Mem.create Layout.mem_size in
  Fatbin.load fb mem;
  let read a = try Mem.read8 mem a with Mem.Fault _ -> -1 in
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc in
  let map = ref None in
  let map_of fs' =
    match !map with
    | Some (name, m) when name = fs'.Fatbin.fs_name -> m
    | _ ->
      let m = Reloc_map.generate Config.default (Rng.create seed) desc fs' ~hot_regs:[] in
      map := Some (fs'.Fatbin.fs_name, m);
      m
  in
  let entry = (Fatbin.image fs which).im_entry in
  Translator.translate Config.default desc ~read ~fatbin:fb ~map_of ~src:entry
    ~base:(Layout.cache_base which)

let test_translated_unit_decodes () =
  List.iter
    (fun which ->
      let u = translate_entry ~seed:3 which "helper" in
      Alcotest.(check bool) "bytes emitted" true (u.Translator.u_size > 0);
      (* decode the emitted bytes linearly: they must all be valid *)
      let read i =
        if i - Layout.cache_base which < 0 || i - Layout.cache_base which >= u.u_size then -1
        else Char.code u.u_bytes.[i - Layout.cache_base which]
      in
      let decode a =
        match which with
        | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read a
        | Desc.Risc -> Hipstr_risc.Isa.decode ~read a
      in
      let pos = ref (Layout.cache_base which) in
      let stop = Layout.cache_base which + u.u_size in
      while !pos < stop do
        match decode !pos with
        | Some (_, len) -> pos := !pos + len
        | None -> Alcotest.failf "undecodable translated byte at +%d" (!pos - Layout.cache_base which)
      done)
    [ Desc.Cisc; Desc.Risc ]

let test_translated_unit_has_exits () =
  let u = translate_entry ~seed:3 Desc.Cisc "main" in
  Alcotest.(check bool) "has exit stubs or ends in return"
    true
    (u.Translator.u_stubs <> [] || u.u_emitted > 0);
  Alcotest.(check bool) "consumed source instructions" true (u.u_instrs > 0);
  Alcotest.(check bool) "expansion factor sane" true
    (u.u_emitted >= u.u_instrs && u.u_emitted < 12 * u.u_instrs)

let test_trap_patchability () =
  Alcotest.(check bool) "cisc jmp/trap same size" true (Translator.jmp_same_size Hipstr_cisc.Isa.desc);
  Alcotest.(check bool) "risc jmp/trap same size" true (Translator.jmp_same_size Hipstr_risc.Isa.desc)

let test_wild_address_raises () =
  let fb = Lazy.force sample_fb in
  let mem = Mem.create Layout.mem_size in
  Fatbin.load fb mem;
  let read a = try Mem.read8 mem a with Mem.Fault _ -> -1 in
  match
    Translator.translate Config.default Hipstr_cisc.Isa.desc ~read ~fatbin:fb
      ~map_of:(fun _ -> assert false)
      ~src:0x5000 ~base:Layout.cisc_cache_base
  with
  | exception Translator.Wild 0x5000 -> ()
  | _ -> Alcotest.fail "expected Wild"

(* --- code cache --- *)

let test_code_cache () =
  let cc = Code_cache.create ~base:0x1000 ~capacity:1024 () in
  Alcotest.(check bool) "room initially" true (Code_cache.has_room cc ~align:1 ~size:512);
  let a, ev = Code_cache.alloc cc ~src:0x100 ~func:"f" ~size:100 ~src_spans:[ (0x100, 20) ] () in
  Alcotest.(check int) "first at base" 0x1000 a;
  Alcotest.(check int) "nothing displaced" 0 (List.length ev);
  Alcotest.(check (option int)) "lookup" (Some 0x1000) (Code_cache.lookup cc 0x100);
  let b, _ = Code_cache.alloc cc ~align:64 ~src:0x200 ~func:"g" ~size:100 ~src_spans:[] () in
  Alcotest.(check int) "aligned" 0 (b mod 64);
  Alcotest.(check int) "alloc follows next_addr" b (Code_cache.next_addr cc ~align:64 - 128);
  Alcotest.(check int) "two blocks" 2 (List.length (Code_cache.blocks cc));
  Code_cache.flush cc;
  Alcotest.(check (option int)) "flushed" None (Code_cache.lookup cc 0x100);
  Alcotest.(check int) "flush counted" 1 (Code_cache.flushes cc);
  Alcotest.(check int) "cursor reset" 0 (Code_cache.used_bytes cc)

(* has_room and alloc must agree through the one align_up path: after
   a 10-byte block, an align-128 request for 950 bytes of a 1024-byte
   cache must be refused up front (the old size-only check with its
   magic +64 slack said yes, then alloc raised). *)
let test_code_cache_align_boundary () =
  let cc = Code_cache.create ~base:0x1000 ~capacity:1024 () in
  ignore (Code_cache.alloc cc ~src:0x100 ~func:"f" ~size:10 ~src_spans:[] ());
  Alcotest.(check bool) "aligned request refused" false
    (Code_cache.has_room cc ~align:128 ~size:950);
  Alcotest.(check bool) "unaligned request accepted" true
    (Code_cache.has_room cc ~align:1 ~size:1014);
  (* exact fit to the last byte, on an alignment boundary *)
  let b, _ = Code_cache.alloc cc ~align:128 ~src:0x200 ~func:"g" ~size:(1024 - 0x80) ~src_spans:[] () in
  ignore b;
  Alcotest.(check bool) "cache exactly full" false (Code_cache.has_room cc ~align:1 ~size:1);
  Alcotest.(check int) "no slack left" 1024 (Code_cache.used_bytes cc)

let test_code_cache_exact_headroom () =
  (* a unit of exactly unit_headroom bytes in a unit_headroom-sized
     cache: has_room true must guarantee alloc succeeds *)
  let cap = 4096 in
  let cc = Code_cache.create ~base:0x1000 ~capacity:cap () in
  Alcotest.(check bool) "exact-capacity unit fits" true (Code_cache.has_room cc ~align:64 ~size:cap);
  let a, _ = Code_cache.alloc cc ~align:64 ~src:0x100 ~func:"f" ~size:cap ~src_spans:[] () in
  Alcotest.(check int) "placed at base" 0x1000 a

let test_code_cache_duplicate_src_dropped () =
  (* re-allocating a live src without an intervening flush must not
     leave a stale duplicate in the block list *)
  let cc = Code_cache.create ~base:0x1000 ~capacity:4096 () in
  ignore (Code_cache.alloc cc ~src:0x100 ~func:"f" ~size:100 ~src_spans:[] ());
  let a2, ev = Code_cache.alloc cc ~src:0x100 ~func:"f" ~size:120 ~src_spans:[] () in
  Alcotest.(check int) "stale block returned" 1 (List.length ev);
  Alcotest.(check int) "stale block was the old one" 0x1000
    (List.hd ev).Code_cache.cb_cache;
  Alcotest.(check int) "one live block" 1 (List.length (Code_cache.blocks cc));
  Alcotest.(check (option int)) "lookup follows the new block" (Some a2)
    (Code_cache.lookup cc 0x100)

let test_code_cache_fifo_eviction () =
  let cc = Code_cache.create ~policy:Code_cache.Fifo ~base:0x1000 ~capacity:256 () in
  let alloc src size =
    Code_cache.alloc cc ~src ~func:"f" ~size ~src_spans:[] ()
  in
  ignore (alloc 0x100 100);
  ignore (alloc 0x200 100);
  (* 56 bytes left: the next 100-byte block wraps and displaces the
     oldest block only *)
  let a3, ev = alloc 0x300 100 in
  Alcotest.(check int) "wrapped to base" 0x1000 a3;
  Alcotest.(check (list int)) "evicted exactly the first block" [ 0x100 ]
    (List.map (fun b -> b.Code_cache.cb_src) ev);
  Alcotest.(check (option int)) "victim unmapped" None (Code_cache.lookup cc 0x100);
  Alcotest.(check (option int)) "survivor intact" (Some (0x1000 + 100))
    (Code_cache.lookup cc 0x200);
  Alcotest.(check int) "eviction counted" 1 (Code_cache.evictions cc);
  Alcotest.(check int) "no flushes" 0 (Code_cache.flushes cc);
  (* a block can land flush against the capacity edge *)
  let edge, _ = Code_cache.alloc cc ~align:64 ~src:0x400 ~func:"g" ~size:0x40 ~src_spans:[] () in
  Alcotest.(check int) "aligned claim" 0 (edge mod 64)

let test_code_cache_clock_second_chance () =
  let cc = Code_cache.create ~policy:Code_cache.Clock ~base:0x1000 ~capacity:256 () in
  let alloc src size = Code_cache.alloc cc ~src ~func:"f" ~size ~src_spans:[] () in
  ignore (alloc 0x100 100);
  ignore (alloc 0x200 100);
  (* touch the oldest block: clock must spare it once and take the
     next victim instead *)
  ignore (Code_cache.lookup cc 0x100);
  let a3, ev = alloc 0x300 100 in
  Alcotest.(check (list int)) "referenced block spared" [ 0x200 ]
    (List.map (fun b -> b.Code_cache.cb_src) ev);
  Alcotest.(check int) "claim skipped past the spared block" (0x1000 + 100) a3;
  Alcotest.(check (option int)) "spared block still live" (Some 0x1000)
    (Code_cache.lookup cc 0x100)

let test_config_validation () =
  Alcotest.(check bool) "default valid" true (Config.validate Config.default = Ok ());
  let check_err cfg = Alcotest.(check bool) "invalid" true (Config.validate cfg <> Ok ()) in
  check_err { Config.default with opt_level = 5 };
  check_err { Config.default with pad_bytes = 100 };
  check_err { Config.default with migrate_prob = 1.5 };
  check_err { Config.default with rat_capacity = 0 };
  check_err { Config.default with cache_bytes = 100 }

(* --- VM-level counters --- *)

let test_vm_counters () =
  let w = Workloads.find "bzip2" in
  let sys = System.of_fatbin ~seed:4 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  ignore (System.run sys ~fuel:(3 * w.w_fuel));
  let st = Vm.stats (System.vm sys Desc.Cisc) in
  Alcotest.(check bool) "translations happened" true (st.translations > 5);
  Alcotest.(check bool) "instruction expansion >= 1" true (st.emitted_instrs >= st.source_instrs);
  Alcotest.(check bool) "compulsory misses counted" true (st.compulsory_misses > 0);
  Alcotest.(check bool) "patches happened (unit chaining)" true (st.patches > 0)

let test_hot_regs () =
  let w = Workloads.find "bzip2" in
  let sys = System.of_fatbin ~seed:4 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  let fb = System.fatbin sys in
  let vm = System.vm sys Desc.Cisc in
  let hot = Vm.hot_regs vm (Fatbin.find_func fb "rle") in
  Alcotest.(check bool) "some hot registers found" true (List.length hot >= 1);
  List.iter
    (fun r ->
      if not (List.mem r Hipstr_cisc.Isa.desc.allocatable) then
        Alcotest.failf "non-allocatable hot register %d" r)
    hot

let () =
  Alcotest.run "psr-internals"
    [
      ( "reloc-map",
        [
          QCheck_alcotest.to_alcotest prop_locations_distinct;
          QCheck_alcotest.to_alcotest prop_reg_map_injective;
          QCheck_alcotest.to_alcotest prop_register_bias;
          QCheck_alcotest.to_alcotest prop_map_slot_total;
          QCheck_alcotest.to_alcotest prop_map_slot_deterministic;
          QCheck_alcotest.to_alcotest prop_maps_differ_across_seeds;
          Alcotest.test_case "sp and scratch identity" `Quick test_sp_and_scratch_identity;
          Alcotest.test_case "entropy bits" `Quick test_entropy_bits;
        ] );
      ( "translator",
        [
          Alcotest.test_case "translated units decode" `Quick test_translated_unit_decodes;
          Alcotest.test_case "units have exits" `Quick test_translated_unit_has_exits;
          Alcotest.test_case "trap patchability" `Quick test_trap_patchability;
          Alcotest.test_case "wild addresses" `Quick test_wild_address_raises;
        ] );
      ( "cache-and-vm",
        [
          Alcotest.test_case "code cache" `Quick test_code_cache;
          Alcotest.test_case "align boundary" `Quick test_code_cache_align_boundary;
          Alcotest.test_case "exact headroom fit" `Quick test_code_cache_exact_headroom;
          Alcotest.test_case "duplicate src dropped" `Quick test_code_cache_duplicate_src_dropped;
          Alcotest.test_case "fifo eviction" `Quick test_code_cache_fifo_eviction;
          Alcotest.test_case "clock second chance" `Quick test_code_cache_clock_second_chance;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "vm counters" `Quick test_vm_counters;
          Alcotest.test_case "hot regs" `Quick test_hot_regs;
        ] );
    ]
