(* The observability layer: counter monotonicity, ring-buffer bounds
   under overflow, snapshot stability across System.run re-entry, the
   event stream of a real PSR run, and the metric invariants that tie
   the migration counters to the paper's trigger rule (a migration
   happens only on a suspicious code-cache miss, and with
   migrate_prob = 1 on *every* one). *)

module Obs = Hipstr_obs.Obs
module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads

(* --- Metrics --- *)

let test_counters_monotonic () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "x" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.Metrics.value c);
  (match Obs.Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  Alcotest.(check int) "unchanged after rejection" 42 (Obs.Metrics.value c);
  (* find-or-create returns the same handle *)
  Obs.Metrics.incr (Obs.Metrics.counter m "x");
  Alcotest.(check int) "same counter by name" 43 (Obs.Metrics.value c);
  (* name collisions across kinds are programming errors *)
  match Obs.Metrics.histogram m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histogram registered over a counter"

let test_histogram_summary () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.; 2.; 3.; 10. ];
  let snap = Obs.Metrics.snapshot m in
  match List.assoc_opt "lat" snap.Obs.Metrics.snap_histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    Alcotest.(check int) "count" 4 s.Obs.Metrics.hs_count;
    Alcotest.(check (float 1e-9)) "sum" 16. s.Obs.Metrics.hs_sum;
    Alcotest.(check (float 1e-9)) "min" 1. s.Obs.Metrics.hs_min;
    Alcotest.(check (float 1e-9)) "max" 10. s.Obs.Metrics.hs_max;
    Alcotest.(check (float 1e-9)) "mean" 4. s.Obs.Metrics.hs_mean;
    Alcotest.(check int) "bucketed everything" 4
      (Array.fold_left ( + ) 0 s.Obs.Metrics.hs_buckets)

let summary_of values =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) values;
  let snap = Obs.Metrics.snapshot m in
  List.assoc "lat" snap.Obs.Metrics.snap_histograms

let test_histogram_quantiles () =
  (* empty histogram: all quantiles are 0 *)
  let empty = summary_of [] in
  Alcotest.(check (float 1e-9)) "empty p50" 0. (Obs.Metrics.p50 empty);
  (* a single sample: every quantile is that sample (clamped to
     [min, max], not the bucket boundary) *)
  let one = summary_of [ 5. ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) "single-sample quantile" 5. (Obs.Metrics.quantile one q))
    [ 0.; 0.5; 0.95; 1. ];
  (* uniform 1..100: within-bucket interpolation lands p50 on 51
     (rank 50 is 19/32 of the way through the [32, 64) bucket) *)
  let u = summary_of (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 1e-9)) "uniform p50" 51. (Obs.Metrics.p50 u);
  let p50 = Obs.Metrics.p50 u and p95 = Obs.Metrics.p95 u and p99 = Obs.Metrics.p99 u in
  Alcotest.(check bool) "quantiles are monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "quantiles clamp into [min, max]" true
    (p50 >= u.Obs.Metrics.hs_min && p99 <= u.Obs.Metrics.hs_max);
  (* a tail-heavy distribution separates the median from the tail *)
  let t = summary_of (List.init 100 (fun i -> if i < 95 then 10. else 5000.)) in
  Alcotest.(check bool) "p50 stays in the body" true (Obs.Metrics.p50 t < 20.);
  Alcotest.(check bool) "p99 reaches the tail" true (Obs.Metrics.p99 t > 1000.);
  match Obs.Metrics.quantile u 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0, 1] accepted"

(* --- Trace ring --- *)

let test_quantile_edge_cases () =
  (* empty histogram: every quantile is 0, not NaN and not a crash *)
  let empty = summary_of [] in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) "empty-histogram quantile" 0. (Obs.Metrics.quantile empty q))
    [ 0.; 0.5; 0.99; 1. ];
  (* every sample in one bucket ([4, 8)): quantiles interpolate inside
     the [min, max] span of that bucket, never out to its boundaries *)
  let one_bucket = summary_of [ 4.; 5.; 6.; 7. ] in
  Alcotest.(check int) "single-bucket count" 4 one_bucket.Obs.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "q0 is min" 4. (Obs.Metrics.quantile one_bucket 0.);
  Alcotest.(check (float 1e-9)) "q1 is max" 7. (Obs.Metrics.quantile one_bucket 1.);
  List.iter
    (fun q ->
      let v = Obs.Metrics.quantile one_bucket q in
      Alcotest.(check bool) "single-bucket quantile within [min, max]" true (v >= 4. && v <= 7.))
    [ 0.25; 0.5; 0.75; 0.95 ];
  Alcotest.(check bool) "single-bucket quantiles monotone" true
    (Obs.Metrics.quantile one_bucket 0.25 <= Obs.Metrics.quantile one_bucket 0.75)

let test_count_above () =
  let empty = summary_of [] in
  Alcotest.(check (float 1e-9)) "empty" 0. (Obs.Metrics.count_above empty 10.);
  (* one populated bucket [4, 8), min 4, max 7 *)
  let h = summary_of [ 4.; 5.; 6.; 7. ] in
  Alcotest.(check (float 1e-9)) "threshold below min: everything" 4.
    (Obs.Metrics.count_above h 0.);
  Alcotest.(check (float 1e-9)) "threshold at max: nothing" 0. (Obs.Metrics.count_above h 7.);
  Alcotest.(check (float 1e-9)) "threshold above max: nothing" 0.
    (Obs.Metrics.count_above h 100.);
  (* linear interpolation across the occupied [4, 7] span:
     (7 - 5.5) / (7 - 4) of 4 samples = 2 *)
  Alcotest.(check (float 1e-9)) "interpolated tail" 2. (Obs.Metrics.count_above h 5.5);
  (* a far bucket is either wholly above or wholly below *)
  let t = summary_of [ 10.; 10.; 5000. ] in
  Alcotest.(check (float 1e-9)) "tail bucket counted whole" 1.
    (Obs.Metrics.count_above t 1000.)

let test_summary_delta_combine () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.; 2.; 3. ];
  let base = List.assoc "lat" (Obs.Metrics.snapshot m).Obs.Metrics.snap_histograms in
  List.iter (Obs.Metrics.observe h) [ 100.; 200. ];
  let now = List.assoc "lat" (Obs.Metrics.snapshot m).Obs.Metrics.snap_histograms in
  let d = Obs.Metrics.delta ~base now in
  Alcotest.(check int) "delta count" 2 d.Obs.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "delta sum" 300. d.Obs.Metrics.hs_sum;
  Alcotest.(check bool) "delta bounds cover the new samples" true
    (d.Obs.Metrics.hs_min <= 100. && d.Obs.Metrics.hs_max >= 200.);
  (* delta against itself is empty *)
  let z = Obs.Metrics.delta ~base:now now in
  Alcotest.(check int) "self delta empty" 0 z.Obs.Metrics.hs_count;
  (* combine adds counts and sums, takes extreme bounds *)
  let c = Obs.Metrics.combine_summaries base d in
  Alcotest.(check int) "combined count" 5 c.Obs.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "combined sum" 306. c.Obs.Metrics.hs_sum;
  Alcotest.(check (float 1e-9)) "combined min" 1. c.Obs.Metrics.hs_min;
  Alcotest.(check (float 1e-9)) "combined max" 200. c.Obs.Metrics.hs_max;
  (* combining with an empty summary is the identity *)
  let id = Obs.Metrics.combine_summaries c Obs.Metrics.empty_summary in
  Alcotest.(check int) "identity count" 5 id.Obs.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "identity sum" 306. id.Obs.Metrics.hs_sum

(* --- Timeline --- *)

let test_timeline_windows () =
  (match Obs.Timeline.create ~window:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero window width accepted");
  let tl = Obs.Timeline.create ~window:100. () in
  Alcotest.(check (float 1e-9)) "width" 100. (Obs.Timeline.window_cycles tl);
  Alcotest.(check int) "clock 0 is window 0" 0 (Obs.Timeline.index_of tl 0.);
  Alcotest.(check int) "clock 250 is window 2" 2 (Obs.Timeline.index_of tl 250.);
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "reqs" in
  let h = Obs.Metrics.histogram m "lat" in
  Obs.Metrics.incr ~by:3 c;
  List.iter (Obs.Metrics.observe h) [ 10.; 20. ];
  Obs.Timeline.sample tl ~key:"k" ~clock:50. (Obs.Metrics.snapshot m);
  Obs.Metrics.incr ~by:4 c;
  Obs.Metrics.observe h 5000.;
  Obs.Timeline.sample tl ~key:"k" ~clock:150. (Obs.Metrics.snapshot m);
  Obs.Timeline.record tl ~clock:150. ~counters:[ ("extra", 2); ("dropped", 0) ];
  Alcotest.(check int) "two windows" 2 (Obs.Timeline.window_count tl);
  (match Obs.Timeline.windows tl with
  | [ w0; w1 ] ->
    Alcotest.(check int) "w0 index" 0 w0.Obs.Timeline.tw_index;
    Alcotest.(check int) "first sample charges cumulative state" 3
      (Obs.Timeline.counter_value w0 "reqs");
    Alcotest.(check int) "w1 counter delta" 4 (Obs.Timeline.counter_value w1 "reqs");
    Alcotest.(check int) "record lands in w1" 2 (Obs.Timeline.counter_value w1 "extra");
    Alcotest.(check int) "non-positive record dropped" 0
      (Obs.Timeline.counter_value w1 "dropped");
    (match Obs.Timeline.histogram w1 "lat" with
    | None -> Alcotest.fail "w1 histogram delta missing"
    | Some d ->
      Alcotest.(check int) "w1 histogram delta count" 1 d.Obs.Metrics.hs_count;
      Alcotest.(check bool) "w1 delta is the tail sample" true (Obs.Metrics.p99 d > 1000.))
  | ws -> Alcotest.fail (Printf.sprintf "expected 2 windows, got %d" (List.length ws)));
  Alcotest.(check (option (pair int int))) "span" (Some (0, 1)) (Obs.Timeline.span tl);
  (* merge folds windows; mismatched widths are programming errors *)
  let tl2 = Obs.Timeline.create ~window:100. () in
  Obs.Timeline.record tl2 ~clock:120. ~counters:[ ("extra", 5) ];
  Obs.Timeline.merge ~into:tl tl2;
  (match List.rev (Obs.Timeline.windows tl) with
  | w1 :: _ -> Alcotest.(check int) "merged counter adds" 7 (Obs.Timeline.counter_value w1 "extra")
  | [] -> Alcotest.fail "windows vanished after merge");
  match Obs.Timeline.merge ~into:tl (Obs.Timeline.create ~window:50. ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merge across widths accepted"

let test_slo_arithmetic () =
  let tl = Obs.Timeline.create ~window:100. () in
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  (* window 0: 10 requests all far below target *)
  for _ = 1 to 10 do
    Obs.Metrics.observe h 10.
  done;
  Obs.Timeline.sample tl ~key:"k" ~clock:50. (Obs.Metrics.snapshot m);
  (* window 1: 10 requests all far above target *)
  for _ = 1 to 10 do
    Obs.Metrics.observe h 5000.
  done;
  Obs.Timeline.sample tl ~key:"k" ~clock:150. (Obs.Metrics.snapshot m);
  let obj = Obs.Slo.objective ~target:1000. ~budget:0.1 in
  (match Obs.Slo.evaluate obj ~latency:"lat" tl with
  | [ w0; w1 ] ->
    Alcotest.(check int) "w0 requests" 10 w0.Obs.Slo.sw_requests;
    Alcotest.(check (float 1e-9)) "w0 violations" 0. w0.Obs.Slo.sw_violations;
    Alcotest.(check (float 1e-9)) "w0 burn" 0. w0.Obs.Slo.sw_burn;
    Alcotest.(check (float 1e-9)) "w0 budget remaining" 1. w0.Obs.Slo.sw_budget_remaining;
    Alcotest.(check bool) "w0 not exhausted" false w0.Obs.Slo.sw_exhausted;
    Alcotest.(check bool) "w0 no exhaustion forecast" true (w0.Obs.Slo.sw_tte_windows = None);
    Alcotest.(check int) "w1 requests" 10 w1.Obs.Slo.sw_requests;
    Alcotest.(check (float 1e-9)) "w1 violations" 10. w1.Obs.Slo.sw_violations;
    Alcotest.(check (float 1e-9)) "w1 burn = 10x budget" 10. w1.Obs.Slo.sw_burn;
    Alcotest.(check int) "w1 cumulative requests" 20 w1.Obs.Slo.sw_cum_requests;
    Alcotest.(check (float 1e-9)) "w1 budget overdrawn" (-8.) w1.Obs.Slo.sw_budget_remaining;
    Alcotest.(check bool) "w1 exhausted" true w1.Obs.Slo.sw_exhausted
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 reports, got %d" (List.length rs)));
  match Obs.Slo.objective ~target:0. ~budget:0.1 with
  | exception Invalid_argument _ -> (
    match Obs.Slo.objective ~target:10. ~budget:1.5 with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "budget outside (0,1) accepted")
  | _ -> Alcotest.fail "non-positive target accepted"

(* --- Hostprof --- *)

let test_hostprof_phases () =
  let obs = Obs.create () in
  let hp = Obs.Hostprof.create () in
  Obs.set_hostprof obs hp;
  Alcotest.(check bool) "attached" true
    (match Obs.hostprof obs with Some h -> h == hp | None -> false);
  Obs.Hostprof.start_run hp;
  let sp = Obs.enter_span obs ~name:"alloc_phase" ~cycle:0. () in
  (* allocate something the span must be charged for *)
  let junk = Sys.opaque_identity (List.init 10_000 (fun i -> (i, float_of_int i))) in
  ignore (Sys.opaque_identity (List.length junk));
  Obs.exit_span obs sp ~cycle:10.;
  Obs.Hostprof.stop_run hp ~instructions:1_000;
  (match Obs.Hostprof.phases hp with
  | [ (name, spans, words) ] ->
    Alcotest.(check string) "phase name" "alloc_phase" name;
    Alcotest.(check int) "one span" 1 spans;
    Alcotest.(check bool) "allocation charged" true (words > 0.)
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 phase, got %d" (List.length ps)));
  (match Obs.Hostprof.minor_words_per_instr hp with
  | Some w -> Alcotest.(check bool) "words per instr positive" true (w > 0.)
  | None -> Alcotest.fail "no words-per-instruction after stop_run");
  match Obs.Hostprof.run hp with
  | Some rd ->
    Alcotest.(check int) "instructions recorded" 1_000 rd.Obs.Hostprof.hd_instructions;
    Alcotest.(check bool) "minor words moved" true (rd.Obs.Hostprof.hd_minor_words > 0.)
  | None -> Alcotest.fail "no run delta after stop_run"

let test_hostprof_shared_by_children () =
  let obs = Obs.create () in
  let hp = Obs.Hostprof.create () in
  Obs.set_hostprof obs hp;
  let child = Obs.child obs in
  Alcotest.(check bool) "child shares the profiler" true
    (match Obs.hostprof child with Some h -> h == hp | None -> false);
  let sp = Obs.enter_span child ~name:"child_phase" ~cycle:0. () in
  ignore (Sys.opaque_identity (Array.make 1024 0.));
  Obs.exit_span child sp ~cycle:1.;
  Alcotest.(check bool) "child span folded into the shared table" true
    (List.exists (fun (n, _, _) -> n = "child_phase") (Obs.Hostprof.phases hp))

let test_ring_bounds () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    ignore (Obs.Trace.store tr (Obs.Trace.Cache_hit { isa = "cisc"; src = i }))
  done;
  Alcotest.(check int) "emitted counts everything" 10 (Obs.Trace.emitted tr);
  Alcotest.(check int) "dropped = emitted - capacity" 6 (Obs.Trace.dropped tr);
  let kept = Obs.Trace.to_list tr in
  Alcotest.(check int) "bounded" 4 (List.length kept);
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun r -> r.Obs.Trace.seq) kept);
  match Obs.Trace.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-capacity ring accepted"

(* --- event rendering: every constructor must produce a line --- *)

let test_event_to_string_coverage () =
  (* one value per constructor of Trace.event; extending the type
     without extending this list is a compile error via the count
     check below being updated, and without extending event_to_string
     is a compile error in obs.ml itself *)
  let samples =
    [
      Obs.Trace.Translate { isa = "cisc"; src = 0x40; instrs = 7; emitted = 9 };
      Obs.Trace.Cache_hit { isa = "risc"; src = 0x44 };
      Obs.Trace.Cache_miss { isa = "cisc"; src = 0x48; compulsory = true };
      Obs.Trace.Cache_flush { isa = "risc"; used_bytes = 4096 };
      Obs.Trace.Cache_evict { isa = "cisc"; src = 0x50; bytes = 192 };
      Obs.Trace.Memo_install { isa = "risc"; src = 0x54; instrs = 11 };
      Obs.Trace.Migrate
        { from_isa = "cisc"; to_isa = "risc"; frames = 3; words = 17; cycles = 250.; forced = false };
      Obs.Trace.Stack_transform { frames = 3; words = 17; complete = true };
      Obs.Trace.Suspicious { isa = "cisc"; target_src = 0x4c };
      Obs.Trace.Fault { isa = "risc"; reason = "wild jump" };
      Obs.Trace.Span_end { name = "exec"; begin_cycle = 10.; end_cycle = 42. };
    ]
  in
  Alcotest.(check int) "all eleven constructors sampled" 11 (List.length samples);
  let rendered = List.map Obs.Trace.event_to_string samples in
  List.iter
    (fun s -> Alcotest.(check bool) "renders non-empty" true (String.length s > 0))
    rendered;
  let distinct = List.sort_uniq compare rendered in
  Alcotest.(check int) "renderings are distinct" (List.length samples) (List.length distinct);
  (* spot-check the span line carries its cycles *)
  let span_line = Obs.Trace.event_to_string (List.nth samples 10) in
  Alcotest.(check bool) "span line names the phase" true
    (String.length span_line >= 4 && String.sub span_line 0 4 = "span")

(* --- spans --- *)

let test_span_nesting_and_parents () =
  let st = Obs.Span.create () in
  let outer = Obs.Span.enter st ~name:"exec" ~attrs:[ ("isa", "cisc") ] ~cycle:100. () in
  let inner = Obs.Span.enter st ~name:"translate" ~cycle:110. () in
  Obs.Span.exit st inner ~cycle:150.;
  Obs.Span.exit st outer ~cycle:300.;
  Alcotest.(check int) "two completed spans" 2 (Obs.Span.count st);
  let by_name n =
    match List.find_opt (fun s -> Obs.Span.name s = n) (Obs.Span.completed st) with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" n
  in
  let e = by_name "exec" and t = by_name "translate" in
  Alcotest.(check (option int)) "outer has no parent" None (Obs.Span.parent_id e);
  Alcotest.(check (option int)) "inner's parent is outer" (Some (Obs.Span.id e))
    (Obs.Span.parent_id t);
  Alcotest.(check (float 1e-9)) "outer duration" 200. (Obs.Span.duration e);
  Alcotest.(check (float 1e-9)) "inner duration" 40. (Obs.Span.duration t);
  Alcotest.(check (option string)) "attrs kept" (Some "cisc") (Obs.Span.attr e "isa");
  Alcotest.(check (float 1e-9)) "total sums by name" 40. (Obs.Span.total st ~name:"translate");
  (* end clamped to begin: a zero-duration span is legal, negative is not *)
  let z = Obs.Span.enter st ~name:"flush" ~cycle:500. () in
  Obs.Span.exit st z ~cycle:400.;
  Alcotest.(check (float 1e-9)) "exit clamps to begin" 0. (Obs.Span.total st ~name:"flush")

let test_span_canonical_is_order_free () =
  (* the same span multiset entered in two different orders must
     canonicalize to the same content sequence — the property that
     makes parallel-run exports byte-identical *)
  let mk order =
    let st = Obs.Span.create () in
    List.iter
      (fun (name, b, e) ->
        let s = Obs.Span.enter st ~name ~cycle:b () in
        Obs.Span.exit st s ~cycle:e)
      order;
    List.map
      (fun s -> (Obs.Span.name s, Obs.Span.begin_cycle s, Obs.Span.end_cycle s))
      (Obs.Span.canonical (Obs.Span.completed st))
  in
  let spans = [ ("exec", 0., 50.); ("translate", 5., 9.); ("exec", 50., 80.) ] in
  Alcotest.(check bool) "canonical order independent of insertion" true
    (mk spans = mk (List.rev spans))

let test_span_merge_rebases_ids () =
  let parent = Obs.Span.create () in
  let p0 = Obs.Span.enter parent ~name:"exec" ~cycle:0. () in
  Obs.Span.exit parent p0 ~cycle:10.;
  let child = Obs.Span.create () in
  let c0 = Obs.Span.enter child ~name:"exec" ~cycle:0. () in
  let c1 = Obs.Span.enter child ~name:"translate" ~cycle:2. () in
  Obs.Span.exit child c1 ~cycle:4.;
  Obs.Span.exit child c0 ~cycle:10.;
  Obs.Span.merge ~into:parent child;
  Alcotest.(check int) "all spans present after merge" 3 (Obs.Span.count parent);
  let ids = List.map Obs.Span.id (Obs.Span.completed parent) in
  Alcotest.(check int) "ids stay unique after re-basing" 3
    (List.length (List.sort_uniq compare ids));
  (* the child's internal parent link survived the re-base *)
  let tr =
    List.find (fun s -> Obs.Span.name s = "translate") (Obs.Span.completed parent)
  in
  let ex_id =
    match Obs.Span.parent_id tr with
    | Some i -> i
    | None -> Alcotest.fail "merge dropped the parent link"
  in
  let ex = List.find (fun s -> Obs.Span.id s = ex_id) (Obs.Span.completed parent) in
  Alcotest.(check string) "link points at the merged exec span" "exec" (Obs.Span.name ex)

let test_span_helpers_guard_disabled () =
  Alcotest.(check bool) "disabled context hands out no span" true
    (Obs.enter_span Obs.disabled ~name:"exec" ~cycle:0. () = None);
  Obs.exit_span Obs.disabled None ~cycle:1.;
  Obs.audit_emit Obs.disabled ~cycle:0. ~isa:"cisc" ~pid:0
    (Obs.Audit.Fault { reason = "nope" });
  Alcotest.(check int) "disabled audit stays empty" 0 (Obs.Audit.length (Obs.audit Obs.disabled));
  (* enabled: exit_span emits a Span_end into the ring *)
  let sink = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  let sp = Obs.enter_span obs ~name:"exec" ~cycle:3. () in
  Obs.exit_span obs sp ~cycle:8.;
  let span_ends =
    List.filter
      (fun r -> match r.Obs.Trace.event with Obs.Trace.Span_end _ -> true | _ -> false)
      (Obs.Sink.contents sink)
  in
  Alcotest.(check int) "span close reached the sink" 1 (List.length span_ends)

(* --- audit log --- *)

let test_audit_log () =
  let a = Obs.Audit.create () in
  let k1 = Obs.Audit.Suspicious { target_src = 0x40 } in
  let k2 = Obs.Audit.Decision { target_src = 0x40; migrate = true; forced = false } in
  let k3 =
    Obs.Audit.Migration
      { to_isa = "risc"; forced = false; frames = 2; words = 9; cost_cycles = 300.; outcome = "resumed" }
  in
  ignore (Obs.Audit.record a ~cycle:10. ~isa:"cisc" ~pid:0 k1);
  ignore (Obs.Audit.record a ~cycle:10. ~isa:"cisc" ~pid:0 k2);
  ignore (Obs.Audit.record a ~cycle:310. ~isa:"risc" ~pid:0 k3);
  Alcotest.(check int) "three entries" 3 (Obs.Audit.length a);
  Alcotest.(check (list string)) "labels"
    [ "suspicious"; "decision"; "migration" ]
    (List.map (fun e -> Obs.Audit.kind_label e.Obs.Audit.au_kind) (Obs.Audit.entries a));
  Alcotest.(check int) "count by predicate" 1
    (Obs.Audit.count a (fun e ->
         match e.Obs.Audit.au_kind with Obs.Audit.Migration m -> m.outcome = "resumed" | _ -> false));
  let b = Obs.Audit.create () in
  ignore (Obs.Audit.record b ~cycle:1. ~isa:"cisc" ~pid:1 (Obs.Audit.Fault { reason = "x" }));
  Obs.Audit.merge ~into:a b;
  Alcotest.(check int) "merge appends" 4 (Obs.Audit.length a);
  let seqs = List.map (fun e -> e.Obs.Audit.au_seq) (Obs.Audit.entries a) in
  Alcotest.(check int) "seqs unique after merge" 4 (List.length (List.sort_uniq compare seqs))

(* --- a real PSR run --- *)

let run_to_finish sys ~fuel =
  match System.run sys ~fuel with
  | System.Finished _ -> ()
  | o ->
    Alcotest.failf "run did not finish: %s"
      (match o with
      | System.Killed m -> m
      | System.Out_of_fuel -> "fuel"
      | System.Shell_spawned -> "shell"
      | System.Finished _ -> assert false)

let test_psr_run_events () =
  let sink = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  let w = Workloads.find "mcf" in
  let sys = System.of_fatbin ~obs ~seed:1 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let events = List.map (fun r -> r.Obs.Trace.event) (Obs.Sink.contents sink) in
  let count p = List.length (List.filter p events) in
  let translates = count (function Obs.Trace.Translate _ -> true | _ -> false) in
  let hits = count (function Obs.Trace.Cache_hit _ -> true | _ -> false) in
  Alcotest.(check bool) "at least one Translate" true (translates >= 1);
  Alcotest.(check bool) "at least one Cache_hit" true (hits >= 1);
  (* events agree with the counters they ride along with *)
  let snap = System.metrics sys in
  Alcotest.(check int) "translate events = translation counter" translates
    (Obs.Metrics.counter_value snap "psr.cisc.translations");
  Alcotest.(check int) "hit events = hit counter" hits
    (Obs.Metrics.counter_value snap "psr.cisc.cache_hits");
  (* the sink saw every event the ring did *)
  Alcotest.(check int) "sink saw everything" (Obs.Trace.emitted (Obs.trace obs))
    (List.length events)

let test_snapshot_stable_across_reentry () =
  let obs = Obs.create () in
  let w = Workloads.find "lbm" in
  let sys = System.of_fatbin ~obs ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  (match System.run sys ~fuel:10_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected to run out of fuel");
  let s1 = System.metrics sys in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let s2 = System.metrics sys in
  (* monotone across re-entry: nothing resets when run resumes *)
  List.iter
    (fun (name, v1) ->
      let v2 = Obs.Metrics.counter_value s2 name in
      if v2 < v1 then Alcotest.failf "%s went backwards across re-entry (%d -> %d)" name v1 v2)
    s1.Obs.Metrics.snap_counters;
  Alcotest.(check bool) "instructions advanced" true
    (Obs.Metrics.counter_value s2 "machine.cisc.instructions"
    > Obs.Metrics.counter_value s1 "machine.cisc.instructions");
  (* snapshotting is read-only: two in a row are identical *)
  let s3 = System.metrics sys in
  Alcotest.(check bool) "snapshot has no side effects" true (s3 = s2)

let test_disabled_records_nothing () =
  let w = Workloads.find "mcf" in
  let sys =
    System.of_fatbin ~obs:Obs.disabled ~start_isa:Desc.Cisc ~mode:System.Psr_only
      (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Alcotest.failf "disabled obs counted %s = %d" name v)
    snap.Obs.Metrics.snap_counters

(* --- mode invariants --- *)

let test_psr_only_never_migrates () =
  let obs = Obs.create () in
  let w = Workloads.find "gobmk" in
  let sys =
    System.of_fatbin ~obs ~seed:6 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  Alcotest.(check bool) "suspicious events happened" true
    (Obs.Metrics.counter_value snap "psr.cisc.suspicious" >= 1);
  Alcotest.(check int) "no security migrations" 0
    (Obs.Metrics.counter_value snap "system.migrations.security");
  Alcotest.(check int) "no forced migrations" 0
    (Obs.Metrics.counter_value snap "system.migrations.forced");
  Alcotest.(check int) "no stack transforms" 0
    (Obs.Metrics.counter_value snap "migration.stack_transforms")

let test_hipstr_prob1_migrates_on_every_miss () =
  (* the paper's trigger rule: with migrate_prob = 1 every suspicious
     code-cache miss — on either core — becomes a migration *)
  let obs = Obs.create () in
  let cfg = { Config.default with migrate_prob = 1.0 } in
  let w = Workloads.find "gobmk" in
  let sys =
    System.of_fatbin ~obs ~cfg ~seed:6 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  let suspicious =
    Obs.Metrics.counter_value snap "psr.cisc.suspicious"
    + Obs.Metrics.counter_value snap "psr.risc.suspicious"
  in
  let migrations = Obs.Metrics.counter_value snap "system.migrations.security" in
  Alcotest.(check bool) "at least one trigger" true (suspicious >= 1);
  Alcotest.(check int) "every suspicious miss migrated" suspicious migrations;
  Alcotest.(check int) "counter agrees with the accessor" (System.security_migrations sys)
    migrations;
  Alcotest.(check int) "each migration transformed the stack" migrations
    (Obs.Metrics.counter_value snap "migration.stack_transforms")

let test_forced_migration_counted () =
  let obs = Obs.create () in
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let w = Workloads.find "hmmer" in
  let sys =
    System.of_fatbin ~obs ~cfg ~seed:7 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w)
  in
  (match System.run sys ~fuel:20_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel to run out");
  System.request_migration sys;
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  Alcotest.(check int) "forced migration observed" (System.forced_migrations sys)
    (Obs.Metrics.counter_value snap "system.migrations.forced");
  Alcotest.(check bool) "at least one" true
    (Obs.Metrics.counter_value snap "system.migrations.forced" >= 1);
  Alcotest.(check int) "none misattributed to security" 0
    (Obs.Metrics.counter_value snap "system.migrations.security")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters monotonic" `Quick test_counters_monotonic;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edge_cases;
          Alcotest.test_case "count_above interpolation" `Quick test_count_above;
          Alcotest.test_case "summary delta and combine" `Quick test_summary_delta_combine;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "windowing, deltas, merge" `Quick test_timeline_windows;
          Alcotest.test_case "slo arithmetic" `Quick test_slo_arithmetic;
        ] );
      ( "hostprof",
        [
          Alcotest.test_case "per-phase words and run delta" `Quick test_hostprof_phases;
          Alcotest.test_case "shared by child contexts" `Quick test_hostprof_shared_by_children;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring bounds under overflow" `Quick test_ring_bounds;
          Alcotest.test_case "event_to_string covers every constructor" `Quick
            test_event_to_string_coverage;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parent links" `Quick test_span_nesting_and_parents;
          Alcotest.test_case "canonical order is insertion-free" `Quick
            test_span_canonical_is_order_free;
          Alcotest.test_case "merge re-bases ids, keeps links" `Quick test_span_merge_rebases_ids;
          Alcotest.test_case "helpers guard the disabled context" `Quick
            test_span_helpers_guard_disabled;
        ] );
      ( "audit",
        [ Alcotest.test_case "record, count, label, merge" `Quick test_audit_log ] );
      ( "system",
        [
          Alcotest.test_case "psr run emits events" `Quick test_psr_run_events;
          Alcotest.test_case "snapshot stable across re-entry" `Quick
            test_snapshot_stable_across_reentry;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "psr-only never migrates" `Quick test_psr_only_never_migrates;
          Alcotest.test_case "prob-1 migrates on every miss" `Quick
            test_hipstr_prob1_migrates_on_every_miss;
          Alcotest.test_case "forced migrations counted" `Quick test_forced_migration_counted;
        ] );
    ]
