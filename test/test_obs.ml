(* The observability layer: counter monotonicity, ring-buffer bounds
   under overflow, snapshot stability across System.run re-entry, the
   event stream of a real PSR run, and the metric invariants that tie
   the migration counters to the paper's trigger rule (a migration
   happens only on a suspicious code-cache miss, and with
   migrate_prob = 1 on *every* one). *)

module Obs = Hipstr_obs.Obs
module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads

(* --- Metrics --- *)

let test_counters_monotonic () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "x" in
  Alcotest.(check int) "starts at 0" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.Metrics.value c);
  (match Obs.Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment accepted");
  Alcotest.(check int) "unchanged after rejection" 42 (Obs.Metrics.value c);
  (* find-or-create returns the same handle *)
  Obs.Metrics.incr (Obs.Metrics.counter m "x");
  Alcotest.(check int) "same counter by name" 43 (Obs.Metrics.value c);
  (* name collisions across kinds are programming errors *)
  match Obs.Metrics.histogram m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histogram registered over a counter"

let test_histogram_summary () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  List.iter (Obs.Metrics.observe h) [ 1.; 2.; 3.; 10. ];
  let snap = Obs.Metrics.snapshot m in
  match List.assoc_opt "lat" snap.Obs.Metrics.snap_histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    Alcotest.(check int) "count" 4 s.Obs.Metrics.hs_count;
    Alcotest.(check (float 1e-9)) "sum" 16. s.Obs.Metrics.hs_sum;
    Alcotest.(check (float 1e-9)) "min" 1. s.Obs.Metrics.hs_min;
    Alcotest.(check (float 1e-9)) "max" 10. s.Obs.Metrics.hs_max;
    Alcotest.(check (float 1e-9)) "mean" 4. s.Obs.Metrics.hs_mean;
    Alcotest.(check int) "bucketed everything" 4
      (Array.fold_left ( + ) 0 s.Obs.Metrics.hs_buckets)

(* --- Trace ring --- *)

let test_ring_bounds () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    ignore (Obs.Trace.store tr (Obs.Trace.Cache_hit { isa = "cisc"; src = i }))
  done;
  Alcotest.(check int) "emitted counts everything" 10 (Obs.Trace.emitted tr);
  Alcotest.(check int) "dropped = emitted - capacity" 6 (Obs.Trace.dropped tr);
  let kept = Obs.Trace.to_list tr in
  Alcotest.(check int) "bounded" 4 (List.length kept);
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun r -> r.Obs.Trace.seq) kept);
  match Obs.Trace.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-capacity ring accepted"

(* --- a real PSR run --- *)

let run_to_finish sys ~fuel =
  match System.run sys ~fuel with
  | System.Finished _ -> ()
  | o ->
    Alcotest.failf "run did not finish: %s"
      (match o with
      | System.Killed m -> m
      | System.Out_of_fuel -> "fuel"
      | System.Shell_spawned -> "shell"
      | System.Finished _ -> assert false)

let test_psr_run_events () =
  let sink = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  let w = Workloads.find "mcf" in
  let sys = System.of_fatbin ~obs ~seed:1 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let events = List.map (fun r -> r.Obs.Trace.event) (Obs.Sink.contents sink) in
  let count p = List.length (List.filter p events) in
  let translates = count (function Obs.Trace.Translate _ -> true | _ -> false) in
  let hits = count (function Obs.Trace.Cache_hit _ -> true | _ -> false) in
  Alcotest.(check bool) "at least one Translate" true (translates >= 1);
  Alcotest.(check bool) "at least one Cache_hit" true (hits >= 1);
  (* events agree with the counters they ride along with *)
  let snap = System.metrics sys in
  Alcotest.(check int) "translate events = translation counter" translates
    (Obs.Metrics.counter_value snap "psr.cisc.translations");
  Alcotest.(check int) "hit events = hit counter" hits
    (Obs.Metrics.counter_value snap "psr.cisc.cache_hits");
  (* the sink saw every event the ring did *)
  Alcotest.(check int) "sink saw everything" (Obs.Trace.emitted (Obs.trace obs))
    (List.length events)

let test_snapshot_stable_across_reentry () =
  let obs = Obs.create () in
  let w = Workloads.find "lbm" in
  let sys = System.of_fatbin ~obs ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w) in
  (match System.run sys ~fuel:10_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected to run out of fuel");
  let s1 = System.metrics sys in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let s2 = System.metrics sys in
  (* monotone across re-entry: nothing resets when run resumes *)
  List.iter
    (fun (name, v1) ->
      let v2 = Obs.Metrics.counter_value s2 name in
      if v2 < v1 then Alcotest.failf "%s went backwards across re-entry (%d -> %d)" name v1 v2)
    s1.Obs.Metrics.snap_counters;
  Alcotest.(check bool) "instructions advanced" true
    (Obs.Metrics.counter_value s2 "machine.cisc.instructions"
    > Obs.Metrics.counter_value s1 "machine.cisc.instructions");
  (* snapshotting is read-only: two in a row are identical *)
  let s3 = System.metrics sys in
  Alcotest.(check bool) "snapshot has no side effects" true (s3 = s2)

let test_disabled_records_nothing () =
  let w = Workloads.find "mcf" in
  let sys =
    System.of_fatbin ~obs:Obs.disabled ~start_isa:Desc.Cisc ~mode:System.Psr_only
      (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Alcotest.failf "disabled obs counted %s = %d" name v)
    snap.Obs.Metrics.snap_counters

(* --- mode invariants --- *)

let test_psr_only_never_migrates () =
  let obs = Obs.create () in
  let w = Workloads.find "gobmk" in
  let sys =
    System.of_fatbin ~obs ~seed:6 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  Alcotest.(check bool) "suspicious events happened" true
    (Obs.Metrics.counter_value snap "psr.cisc.suspicious" >= 1);
  Alcotest.(check int) "no security migrations" 0
    (Obs.Metrics.counter_value snap "system.migrations.security");
  Alcotest.(check int) "no forced migrations" 0
    (Obs.Metrics.counter_value snap "system.migrations.forced");
  Alcotest.(check int) "no stack transforms" 0
    (Obs.Metrics.counter_value snap "migration.stack_transforms")

let test_hipstr_prob1_migrates_on_every_miss () =
  (* the paper's trigger rule: with migrate_prob = 1 every suspicious
     code-cache miss — on either core — becomes a migration *)
  let obs = Obs.create () in
  let cfg = { Config.default with migrate_prob = 1.0 } in
  let w = Workloads.find "gobmk" in
  let sys =
    System.of_fatbin ~obs ~cfg ~seed:6 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w)
  in
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  let suspicious =
    Obs.Metrics.counter_value snap "psr.cisc.suspicious"
    + Obs.Metrics.counter_value snap "psr.risc.suspicious"
  in
  let migrations = Obs.Metrics.counter_value snap "system.migrations.security" in
  Alcotest.(check bool) "at least one trigger" true (suspicious >= 1);
  Alcotest.(check int) "every suspicious miss migrated" suspicious migrations;
  Alcotest.(check int) "counter agrees with the accessor" (System.security_migrations sys)
    migrations;
  Alcotest.(check int) "each migration transformed the stack" migrations
    (Obs.Metrics.counter_value snap "migration.stack_transforms")

let test_forced_migration_counted () =
  let obs = Obs.create () in
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let w = Workloads.find "hmmer" in
  let sys =
    System.of_fatbin ~obs ~cfg ~seed:7 ~start_isa:Desc.Cisc ~mode:System.Hipstr (Workloads.fatbin w)
  in
  (match System.run sys ~fuel:20_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel to run out");
  System.request_migration sys;
  run_to_finish sys ~fuel:(3 * w.w_fuel);
  let snap = System.metrics sys in
  Alcotest.(check int) "forced migration observed" (System.forced_migrations sys)
    (Obs.Metrics.counter_value snap "system.migrations.forced");
  Alcotest.(check bool) "at least one" true
    (Obs.Metrics.counter_value snap "system.migrations.forced" >= 1);
  Alcotest.(check int) "none misattributed to security" 0
    (Obs.Metrics.counter_value snap "system.migrations.security")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters monotonic" `Quick test_counters_monotonic;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        ] );
      ( "trace",
        [ Alcotest.test_case "ring bounds under overflow" `Quick test_ring_bounds ] );
      ( "system",
        [
          Alcotest.test_case "psr run emits events" `Quick test_psr_run_events;
          Alcotest.test_case "snapshot stable across re-entry" `Quick
            test_snapshot_stable_across_reentry;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "psr-only never migrates" `Quick test_psr_only_never_migrates;
          Alcotest.test_case "prob-1 migrates on every miss" `Quick
            test_hipstr_prob1_migrates_on_every_miss;
          Alcotest.test_case "forced migrations counted" `Quick test_forced_migration_counted;
        ] );
    ]
