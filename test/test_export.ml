(* The exporter pipeline: the properties ISSUE 3's acceptance
   criteria name directly.

   - Determinism: every export (Chrome trace, folded profile, metrics
     JSON/Prometheus, audit JSONL) is byte-identical between a serial
     (-j 1) and a parallel (-j 4) run of the same CMP configuration.
   - Reconciliation: span-attributed cycles agree exactly with the
     machine/core cycle counters — the profiler never invents or
     loses simulated time.
   - Formats: the Chrome trace parses as JSON and carries the
     per-core tracks, quantum spans and migration instants Perfetto
     needs; folded lines are flamegraph-shaped; the audit JSONL is
     one valid object per line with counts matching the log. *)

module Obs = Hipstr_obs.Obs
module Json = Hipstr_util.Json
module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Process = Hipstr_cmp.Process
module Cmp = Hipstr_cmp.Cmp

(* One CMP workload mix, heavy enough to exercise migrations on both
   policies, small enough for a quick test. *)
let run_cmp ~jobs =
  let cfg = { Config.default with migrate_prob = 0.3 } in
  let obs = Obs.create () in
  let names = [ "mcf"; "libquantum"; "hmmer" ] in
  let procs =
    List.mapi
      (fun i name ->
        let w = Workloads.find name in
        Process.create ~obs ~cfg ~seed:(1 + i)
          ~start_isa:(if i mod 2 = 0 then Desc.Cisc else Desc.Risc)
          ~mode:System.Hipstr ~pid:i ~name:w.Workloads.w_name ~fuel:(3 * w.Workloads.w_fuel)
          (Workloads.fatbin w))
      names
  in
  let cmp = Cmp.create ~obs ~policy:Cmp.Load_balance ~quantum:20_000 procs in
  Cmp.run ~jobs cmp;
  (obs, cmp)

let exports obs =
  [
    ("trace", Obs.Export.trace_json obs);
    ("folded", Obs.Export.folded obs);
    ("metrics-json", Obs.Export.metrics_json obs);
    ("metrics-prom", Obs.Export.metrics_prom obs);
    ("audit", Obs.Export.audit_jsonl obs);
  ]

let serial = lazy (run_cmp ~jobs:1)

let test_exports_deterministic_across_jobs () =
  let obs1, _ = Lazy.force serial in
  let obs4, _ = run_cmp ~jobs:4 in
  List.iter2
    (fun (name, a) (_, b) ->
      if a <> b then Alcotest.failf "%s export differs between -j 1 and -j 4" name)
    (exports obs1) (exports obs4)

let test_spans_reconcile_with_cycle_counters () =
  let obs, cmp = Lazy.force serial in
  let spans = Obs.spans obs in
  let core_cycles =
    List.fold_left (fun acc c -> acc +. c.Cmp.cm_cycles) 0. (Cmp.metrics cmp).Cmp.m_cores
  in
  (* the acceptance bar is 0% drift: every simulated cycle a core
     accumulated is inside exactly one schedule span, and all
     scheduled time was spent executing *)
  Alcotest.(check (float 1e-6)) "schedule spans = core cycles" core_cycles
    (Obs.Span.total spans ~name:"schedule");
  Alcotest.(check (float 1e-6)) "exec spans = core cycles" core_cycles
    (Obs.Span.total spans ~name:"exec");
  let sys_cycles =
    List.fold_left (fun acc p -> acc +. System.cycles (Process.sys p)) 0. (Cmp.processes cmp)
  in
  Alcotest.(check (float 1e-6)) "process machines agree" core_cycles sys_cycles

let test_trace_json_is_perfetto_shaped () =
  let obs, cmp = Lazy.force serial in
  let s = Obs.Export.trace_json obs in
  let doc =
    match Json.parse s with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ph e = match Json.member "ph" e with Some (Json.Str p) -> p | _ -> "" in
  let name e = match Json.member "name" e with Some (Json.Str n) -> n | _ -> "" in
  let count p = List.length (List.filter p events) in
  (* one metadata track-name record per CMP core *)
  let cores = List.length (Cmp.metrics cmp).Cmp.m_cores in
  Alcotest.(check int) "a named track per core" cores
    (count (fun e ->
         ph e = "M" && name e = "thread_name"
         && match Json.member "pid" e with Some (Json.Num 0.) -> true | _ -> false));
  (* every scheduling quantum is a complete-span on the core track *)
  let m = Cmp.metrics cmp in
  Alcotest.(check int) "a quantum span per slice" m.Cmp.m_slices
    (count (fun e -> ph e = "X" && name e = "schedule"));
  (* migrations show as instant events *)
  let migrations =
    Obs.Audit.count (Obs.audit obs) (fun e ->
        match e.Obs.Audit.au_kind with Obs.Audit.Migration _ -> true | _ -> false)
  in
  Alcotest.(check bool) "the mix migrated at all" true (migrations > 0);
  Alcotest.(check int) "an instant event per migration" migrations
    (count (fun e -> ph e = "i" && name e = "migration"))

let test_folded_lines_are_flamegraph_shaped () =
  let obs, _ = Lazy.force serial in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Obs.Export.folded obs))
  in
  Alcotest.(check bool) "profile is non-empty" true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no sample count: %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let count = String.sub line (i + 1) (String.length line - i - 1) in
        (match int_of_string_opt count with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.failf "bad self-time %S in %S" count line);
        if stack = "" then Alcotest.failf "empty stack in %S" line)
    lines;
  Alcotest.(check bool) "translate frames carry the function leaf" true
    (List.exists
       (fun l ->
         match String.rindex_opt l ' ' with
         | Some i ->
           let frames = String.split_on_char ';' (String.sub l 0 i) in
           (* translate followed by a deeper (function-name) frame *)
           let rec has = function
             | "translate" :: _ :: _ -> true
             | _ :: rest -> has rest
             | [] -> false
           in
           has frames
         | None -> false)
       lines)

let test_audit_jsonl_matches_log () =
  let obs, _ = Lazy.force serial in
  let out = Obs.Export.audit_jsonl obs in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "one line per audit entry" (Obs.Audit.length (Obs.audit obs))
    (List.length lines);
  List.iteri
    (fun i line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "audit line %d does not parse: %s" (i + 1) e
      | Ok doc -> (
        (* re-sequenced canonically: seq is the line's position *)
        (match Json.member "seq" doc with
        | Some (Json.Num s) -> Alcotest.(check int) "seq is positional" i (int_of_float s)
        | _ -> Alcotest.failf "audit line %d lacks seq" (i + 1));
        match Json.member "kind" doc with
        | Some (Json.Str _) -> ()
        | _ -> Alcotest.failf "audit line %d lacks kind" (i + 1)))
    lines

let test_metrics_formats () =
  let obs, _ = Lazy.force serial in
  let js = Obs.Export.metrics_json obs in
  (match Json.parse js with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok doc ->
    List.iter
      (fun k ->
        if Json.member k doc = None then Alcotest.failf "metrics JSON lacks %S" k)
      [ "counters"; "histograms"; "spans"; "audit"; "trace_ring" ]);
  let prom = Obs.Export.metrics_prom obs in
  let contains sub =
    let n = String.length sub and m = String.length prom in
    let rec go i = i + n <= m && (String.sub prom i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "prom contains %S" sub) true (contains sub))
    [ "# TYPE"; "hipstr_span_cycles{phase=\"exec\"}"; "hipstr_audit_entries" ]

let test_timeline_formats () =
  (* a real timeline from a CMP run: Cmp.step samples its obs context
     at the end of every accounting stage *)
  let cfg = { Config.default with migrate_prob = 0.3 } in
  let obs = Obs.create () in
  let w = Workloads.find "mcf" in
  let procs =
    [
      Process.create ~obs ~cfg ~seed:1 ~start_isa:Desc.Cisc ~mode:System.Hipstr ~pid:0
        ~name:"mcf"
        ~fuel:(3 * w.Workloads.w_fuel)
        (Workloads.fatbin w);
    ]
  in
  let cmp = Cmp.create ~obs ~policy:Cmp.Load_balance ~quantum:20_000 procs in
  let tl = Obs.Timeline.create ~window:50_000. () in
  Cmp.run ~timeline:tl cmp;
  Alcotest.(check bool) "cmp run produced windows" true (Obs.Timeline.window_count tl > 0);
  (* JSON: schema tag and the per-window fields *)
  (match Json.parse (Obs.Export.timeline_json tl) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    (match Json.member "schema" doc with
    | Some (Json.Str s) -> Alcotest.(check string) "schema" "hipstr-timeline/1" s
    | _ -> Alcotest.fail "schema missing");
    if Json.member "window_cycles" doc = None then Alcotest.fail "window_cycles missing";
    (match Json.member "windows" doc with
    | Some (Json.List (wn :: _)) ->
      List.iter
        (fun k -> if Json.member k wn = None then Alcotest.failf "window lacks %S" k)
        [ "index"; "start"; "stop"; "counters"; "histograms" ]
    | _ -> Alcotest.fail "windows missing or empty"));
  (* CSV: fixed header, 6 comma-separated fields per row *)
  (match String.split_on_char '\n' (Obs.Export.timeline_csv tl) with
  | header :: rows ->
    Alcotest.(check string) "csv header" "window,start,stop,series,stat,value" header;
    Alcotest.(check bool) "csv has rows" true (List.exists (fun r -> r <> "") rows);
    List.iter
      (fun r ->
        if r <> "" then
          Alcotest.(check int) "csv row has 6 fields" 6
            (List.length (String.split_on_char ',' r)))
      rows
  | [] -> Alcotest.fail "empty csv");
  (* trace_json ?timeline: per-window series become Perfetto counter
     ("C") tracks; the per-tenant namespaces are excluded to bound
     track cardinality *)
  let stl = Obs.Timeline.create ~window:100. () in
  Obs.Timeline.record stl ~clock:50.
    ~counters:[ ("fleet.completed", 3); ("fleet.tenant.t0.requests", 5) ];
  (match Json.parse (Obs.Export.trace_json ~timeline:stl obs) with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    let evs = match Json.member "traceEvents" doc with Some (Json.List l) -> l | _ -> [] in
    let counter_names =
      List.filter_map
        (fun e ->
          match (Json.member "ph" e, Json.member "name" e) with
          | Some (Json.Str "C"), Some (Json.Str n) -> Some n
          | _ -> None)
        evs
    in
    Alcotest.(check bool) "counter track present" true
      (List.mem "fleet.completed" counter_names);
    Alcotest.(check bool) "tenant tracks excluded" false
      (List.exists
         (fun n -> String.length n >= 12 && String.sub n 0 12 = "fleet.tenant")
         counter_names));
  (* the optional slo section carries the objective *)
  let obj = Obs.Slo.objective ~target:100. ~budget:0.1 in
  let rep = Obs.Slo.evaluate obj ~latency:"fleet.latency_cycles" stl in
  (match Json.parse (Obs.Export.timeline_json ~slo:(obj, rep) stl) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Json.member "slo" doc with
    | Some s ->
      if Json.member "target_cycles" s = None then Alcotest.fail "slo lacks target_cycles"
    | None -> Alcotest.fail "slo section missing"));
  (* hostprof export is flagged non-deterministic in-band *)
  let hp = Obs.Hostprof.create () in
  Obs.Hostprof.note hp ~phase:"exec" ~words:42.;
  match Json.parse (Obs.Export.hostprof_json hp) with
  | Error e -> Alcotest.fail e
  | Ok doc -> (
    match Json.member "deterministic" doc with
    | Some (Json.Bool false) -> ()
    | _ -> Alcotest.fail "hostprof not flagged non-deterministic")

let test_timeline_json_deterministic () =
  (* two identically fed timelines serialize to identical bytes *)
  let build () =
    let tl = Obs.Timeline.create ~window:100. () in
    Obs.Timeline.record tl ~clock:50. ~counters:[ ("a", 1); ("b", 2) ];
    Obs.Timeline.record tl ~clock:250. ~counters:[ ("b", 3) ];
    Obs.Export.timeline_json tl
  in
  Alcotest.(check string) "replayed timeline bytes identical" (build ()) (build ())

let () =
  Alcotest.run "export"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical -j 1 vs -j 4" `Quick
            test_exports_deterministic_across_jobs;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "span cycles = machine cycles" `Quick
            test_spans_reconcile_with_cycle_counters;
        ] );
      ( "formats",
        [
          Alcotest.test_case "chrome trace is perfetto-shaped" `Quick
            test_trace_json_is_perfetto_shaped;
          Alcotest.test_case "folded profile is flamegraph-shaped" `Quick
            test_folded_lines_are_flamegraph_shaped;
          Alcotest.test_case "audit jsonl matches the log" `Quick test_audit_jsonl_matches_log;
          Alcotest.test_case "metrics json + prometheus" `Quick test_metrics_formats;
          Alcotest.test_case "timeline json, csv, counter tracks" `Quick test_timeline_formats;
          Alcotest.test_case "timeline json deterministic" `Quick
            test_timeline_json_deterministic;
        ] );
    ]
