(* Block chaining and indirect-branch inline caches.

   Chaining is a host-only optimization layered on the predecoded
   block cache: direct-branch terminators get generation-checked
   successor links, indirect terminators get a mono->poly inline
   cache keyed by target pc. Nothing here may be visible to the
   simulation — the suite closes with an all-workload x all-mode
   chained/unchained bit-identity sweep through the shared
   differential harness — and the link-maintenance machinery itself
   (back-patching, severing on staleness, epoch invalidation, IC
   promotion and megamorphic refusal) gets unit coverage against the
   churn sources that must break chains: self-modifying code,
   code-cache eviction and relocation-map renewal, and context-switch
   flushes. *)

module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Machine = Hipstr_machine.Machine
module Decode_cache = Hipstr_machine.Decode_cache
module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module Cisc = Hipstr_cisc.Isa
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Code_cache = Hipstr_psr.Code_cache
module Workloads = Hipstr_workloads.Workloads
module Obs = Hipstr_obs.Obs

let assemble mem at instrs =
  List.fold_left
    (fun pos i ->
      let s = Cisc.encode ~at:pos i in
      Mem.blit_string mem pos s;
      pos + String.length s)
    at instrs

let lookup_exn dc pc =
  match Decode_cache.lookup dc pc with
  | Some b -> b
  | None -> Alcotest.failf "pc %#x not cacheable" pc

(* ------------------------------------------------------------------ *)
(* Unit: direct links — patch, follow, sever, epoch *)

let test_direct_patch_follow () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" Desc.Cisc mem in
  let base = Layout.cisc_code_base in
  let b_at = base + 64 in
  ignore (assemble mem base [ Minstr.Mov (Reg 0, Imm 1); Minstr.Jmp b_at ]);
  ignore (assemble mem b_at [ Minstr.Mov (Reg 1, Imm 2); Minstr.Jmp base ]);
  let a = lookup_exn dc base in
  let b = lookup_exn dc b_at in
  Alcotest.(check bool) "jmp terminator is direct" false a.Decode_cache.db_indirect;
  let st = Decode_cache.stats dc in
  (* no link yet: follow misses without counting a direct break *)
  Alcotest.(check bool) "unpatched follow misses" true (Decode_cache.follow dc a b_at = None);
  Alcotest.(check int) "no break on empty succs" 0 st.Decode_cache.chain_breaks;
  Decode_cache.patch dc a ~pc:b_at b;
  Alcotest.(check int) "patch counted" 1 st.Decode_cache.chain_patches;
  (match Decode_cache.follow dc a b_at with
  | Some b' -> Alcotest.(check bool) "follow returns the patched block" true (b' == b)
  | None -> Alcotest.fail "patched follow missed");
  Alcotest.(check int) "follow counted" 1 st.Decode_cache.chain_follows;
  (* a different target pc does not match the link *)
  Alcotest.(check bool) "wrong pc misses" true (Decode_cache.follow dc a base = None);
  (* write into the successor's region: the link must sever *)
  Mem.write8 mem (b_at + 1) 0x90;
  Alcotest.(check bool) "stale target not followed" true (Decode_cache.follow dc a b_at = None);
  Alcotest.(check int) "break counted" 1 st.Decode_cache.chain_breaks;
  (* severed for good, not re-checked every time *)
  Alcotest.(check int) "entry removed" 0 (Array.length a.Decode_cache.db_succs)

let test_epoch_invalidation () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" Desc.Cisc mem in
  let base = Layout.cisc_code_base in
  let b_at = base + 64 in
  ignore (assemble mem base [ Minstr.Jmp b_at ]);
  ignore (assemble mem b_at [ Minstr.Jmp base ]);
  let a = lookup_exn dc base in
  let b = lookup_exn dc b_at in
  Decode_cache.patch dc a ~pc:b_at b;
  let e0 = Decode_cache.epoch dc in
  Decode_cache.invalidate_all dc;
  Alcotest.(check bool) "flush bumps the epoch" true (Decode_cache.epoch dc > e0);
  (* the target block is *not* stale (no write happened) — only the
     epoch guard can reject the link *)
  Alcotest.(check bool) "target unmodified" false (Decode_cache.stale b);
  Alcotest.(check bool) "old-epoch link dead" true (Decode_cache.follow dc a b_at = None);
  Alcotest.(check int) "break counted" 1 (Decode_cache.stats dc).Decode_cache.chain_breaks

let test_unchained_mode_inert () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" ~chain:false Desc.Cisc mem in
  Alcotest.(check bool) "reports unchained" false (Decode_cache.chained dc);
  let base = Layout.cisc_code_base in
  let b_at = base + 64 in
  ignore (assemble mem base [ Minstr.Jmp b_at ]);
  ignore (assemble mem b_at [ Minstr.Jmp base ]);
  let a = lookup_exn dc base in
  let b = lookup_exn dc b_at in
  Decode_cache.patch dc a ~pc:b_at b;
  Alcotest.(check int) "patch refused" 0 (Array.length a.Decode_cache.db_succs);
  Alcotest.(check bool) "follow inert" true (Decode_cache.follow dc a b_at = None);
  let st = Decode_cache.stats dc in
  Alcotest.(check int) "no patches" 0 st.Decode_cache.chain_patches;
  Alcotest.(check int) "no ic misses either" 0 st.Decode_cache.ic_misses

(* ------------------------------------------------------------------ *)
(* Unit: indirect inline caches — mono -> poly -> megamorphic *)

let test_ic_promotion () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" Desc.Cisc mem in
  let base = Layout.cisc_code_base in
  (* pred ends in an indirect jump through r1 *)
  ignore (assemble mem base [ Minstr.Mov (Reg 0, Imm 7); Minstr.Jmpr (Reg 1) ]);
  let targets = List.init 5 (fun i -> base + 128 + (i * 32)) in
  List.iter (fun at -> ignore (assemble mem at [ Minstr.Jmp base ])) targets;
  let pred = lookup_exn dc base in
  Alcotest.(check bool) "jmpr terminator is indirect" true pred.Decode_cache.db_indirect;
  let st = Decode_cache.stats dc in
  let t1 = List.nth targets 0 and t2 = List.nth targets 1 in
  (* monomorphic *)
  Decode_cache.patch dc pred ~pc:t1 (lookup_exn dc t1);
  Alcotest.(check bool) "mono hit" true (Decode_cache.follow dc pred t1 <> None);
  Alcotest.(check int) "counted as mono" 1 st.Decode_cache.ic_mono_hits;
  (* a probe for an uncached target counts an IC miss *)
  Alcotest.(check bool) "unknown target misses" true (Decode_cache.follow dc pred t2 = None);
  Alcotest.(check int) "ic miss counted" 1 st.Decode_cache.ic_misses;
  (* polymorphic after the second install *)
  Decode_cache.patch dc pred ~pc:t2 (lookup_exn dc t2);
  Alcotest.(check bool) "poly hit t1" true (Decode_cache.follow dc pred t1 <> None);
  Alcotest.(check bool) "poly hit t2" true (Decode_cache.follow dc pred t2 <> None);
  Alcotest.(check int) "counted as poly" 2 st.Decode_cache.ic_poly_hits;
  Alcotest.(check int) "mono count frozen" 1 st.Decode_cache.ic_mono_hits;
  (* fill to capacity (4), then the fifth target goes megamorphic:
     the IC keeps its live entries and refuses the newcomer *)
  List.iter
    (fun t -> Decode_cache.patch dc pred ~pc:t (lookup_exn dc t))
    (List.filteri (fun i _ -> i >= 2) targets);
  Alcotest.(check int) "capped at max_ic_succs" 4 (Array.length pred.Decode_cache.db_succs);
  let t5 = List.nth targets 4 in
  Alcotest.(check bool) "megamorphic target not cached" true
    (Array.for_all (fun s -> s.Decode_cache.sc_pc <> t5) pred.Decode_cache.db_succs);
  (* the first four still hit *)
  Alcotest.(check bool) "cached targets still hit" true
    (Decode_cache.follow dc pred t1 <> None && Decode_cache.follow dc pred t2 <> None)

(* ------------------------------------------------------------------ *)
(* Machine: self-modifying code must break a followed chain mid-trace.

   The predecessor lives in the code section and the rewritten
   successor in the (also watched) code-cache region: a write there
   leaves the predecessor fresh, so the hot link survives until
   [follow] re-validates the target's generation and severs it — the
   [chain_breaks] path, distinct from the same-region case where the
   predecessor itself goes stale and is simply dropped. *)

let test_self_modify_breaks_chain () =
  let setup m =
    let mem = Machine.mem m in
    let a_at = Layout.cisc_code_base in
    let b_at = Layout.cisc_cache_base in
    ignore (assemble mem a_at [ Minstr.Binop (Add, Reg 0, Imm 1); Minstr.Jmp b_at ]);
    ignore (assemble mem b_at [ Minstr.Binop (Add, Reg 1, Imm 1); Minstr.Jmp a_at ]);
    Machine.boot m ~entry:a_at;
    (mem, b_at)
  in
  let run ~chain =
    let m = Machine.create ~obs:Obs.disabled ~chain ~active:Desc.Cisc () in
    let mem, b_at = setup m in
    ignore (Machine.run m ~fuel:100);
    (* the A->B link is hot; now rewrite B's body in place *)
    ignore (assemble mem b_at [ Minstr.Binop (Add, Reg 1, Imm 16) ]);
    ignore (Machine.run m ~fuel:100);
    let cpu = Machine.cpu m in
    (cpu.regs.(0), cpu.regs.(1), Machine.instructions m, Machine.cycles m,
     Machine.decode_cache_stats m Desc.Cisc)
  in
  let r0_c, r1_c, i_c, cy_c, st_c = run ~chain:true in
  let r0_u, r1_u, i_u, cy_u, _ = run ~chain:false in
  Alcotest.(check int) "r0 identical" r0_u r0_c;
  Alcotest.(check int) "r1 identical" r1_u r1_c;
  Alcotest.(check int) "instructions identical" i_u i_c;
  Alcotest.(check bool) "cycles identical" true (cy_c = cy_u);
  (* 100 fuel of the 4-instruction loop, then 100 more with B at +16 *)
  Alcotest.(check int) "r1 reflects the rewrite" (25 + (25 * 16)) r1_c;
  match st_c with
  | None -> Alcotest.fail "expected a decode cache"
  | Some st ->
    Alcotest.(check bool) "chains were followed" true (st.Decode_cache.chain_follows > 0);
    Alcotest.(check bool) "the rewrite severed a link" true (st.Decode_cache.chain_breaks > 0)

(* Context-switch flushes bump the epoch wholesale; interleaving them
   with run slices must stay invisible, and the chained run must
   re-patch after every flush. *)
let test_context_switch_churn () =
  let run ~chain =
    let m = Machine.create ~obs:Obs.disabled ~chain ~active:Desc.Cisc () in
    let mem = Machine.mem m in
    let base = Layout.cisc_code_base in
    let b_at = base + 64 in
    ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 3); Minstr.Jmp b_at ]);
    ignore (assemble mem b_at [ Minstr.Binop (Xor, Reg 0, Imm 5); Minstr.Jmp base ]);
    Machine.boot m ~entry:base;
    for _ = 1 to 8 do
      ignore (Machine.run m ~fuel:50);
      Machine.context_switch_flush m
    done;
    ignore (Machine.run m ~fuel:50);
    let cpu = Machine.cpu m in
    (cpu.regs.(0), Machine.instructions m, Machine.cycles m, Machine.decode_cache_stats m Desc.Cisc)
  in
  let r0_c, i_c, cy_c, st_c = run ~chain:true in
  let r0_u, i_u, cy_u, _ = run ~chain:false in
  Alcotest.(check int) "r0 identical" r0_u r0_c;
  Alcotest.(check int) "instructions identical" i_u i_c;
  Alcotest.(check bool) "cycles identical" true (cy_c = cy_u);
  match st_c with
  | None -> Alcotest.fail "expected a decode cache"
  | Some st ->
    Alcotest.(check bool) "re-patched after each flush" true
      (st.Decode_cache.chain_patches >= 8)

(* ------------------------------------------------------------------ *)
(* System: eviction / renew_maps churn, chained vs unchained *)

let churn_fuel = 400_000

let run_system ~chain ?cfg ~mode ~seed fb =
  let obs = Obs.create () in
  let sys = System.of_fatbin ~obs ?cfg ~seed ~start_isa:Desc.Cisc ~chain ~mode fb in
  let fp = Diff_harness.run_sys sys ~fuel:churn_fuel in
  (fp, obs)

let chain_counters =
  [ "machine.cisc.chain.patches"; "machine.cisc.chain.breaks"; "machine.cisc.chain.follows" ]

let test_eviction_churn_differential () =
  let fb = Workloads.fatbin (Workloads.find "gobmk") in
  let tiny policy = { Config.default with cache_bytes = 4096; cc_policy = policy } in
  List.iter
    (fun (label, cfg, mode) ->
      let on, obs_on = run_system ~chain:true ?cfg ~mode ~seed:5 fb in
      let off, obs_off = run_system ~chain:false ?cfg ~mode ~seed:5 fb in
      Diff_harness.check label on off;
      (* chaining must be live on one side and inert on the other *)
      Alcotest.(check bool) (label ^ ": chained run patches") true
        (Diff_harness.counter_value obs_on "machine.cisc.chain.patches" > 0);
      List.iter
        (fun c ->
          Alcotest.(check int) (label ^ ": unchained " ^ c) 0
            (Diff_harness.counter_value obs_off c))
        chain_counters;
      (* the simulated instruction streams agree counter-for-counter *)
      Diff_harness.check_counters_equal label
        [ "machine.cisc.instructions"; "machine.risc.instructions" ]
        obs_on obs_off)
    [
      ("gobmk/psr-tiny-fifo", Some (tiny Code_cache.Fifo), System.Psr_only);
      ("gobmk/psr-tiny-clock", Some (tiny Code_cache.Clock), System.Psr_only);
      ("gobmk/psr-tiny-flush", Some (tiny Code_cache.Flush), System.Psr_only);
      ( "gobmk/hipstr-always",
        Some { Config.default with migrate_prob = 1.0 },
        System.Hipstr );
    ];
  (* guard against a vacuous pass: the tiny-fifo config must really
     churn the code-cache region (every eviction unpatches trap bytes,
     bumping the region generation chained blocks validate against) *)
  let sys =
    System.of_fatbin ~obs:Obs.disabled ~cfg:(tiny Code_cache.Fifo) ~seed:5 ~start_isa:Desc.Cisc
      ~mode:System.Psr_only fb
  in
  ignore (System.run sys ~fuel:churn_fuel);
  Alcotest.(check bool) "tiny fifo config churns" true (System.cache_evictions sys > 0)

(* ------------------------------------------------------------------ *)
(* The tentpole acceptance sweep: every workload, every mode,
   chained vs unchained, full bit-identity through the harness. *)

let test_workload_chain_differential () =
  List.iter
    (fun name ->
      let fb = Workloads.fatbin (Workloads.find name) in
      List.iter
        (fun (mlabel, mode) ->
          let on, _ = run_system ~chain:true ~mode ~seed:3 fb in
          let off, _ = run_system ~chain:false ~mode ~seed:3 fb in
          Diff_harness.check (name ^ "/" ^ mlabel) on off)
        [ ("native", System.Native); ("psr", System.Psr_only); ("hipstr", System.Hipstr) ])
    Workloads.names

let () =
  Alcotest.run "chain"
    [
      ( "units",
        [
          Alcotest.test_case "direct patch/follow/sever" `Quick test_direct_patch_follow;
          Alcotest.test_case "epoch invalidation" `Quick test_epoch_invalidation;
          Alcotest.test_case "unchained mode inert" `Quick test_unchained_mode_inert;
          Alcotest.test_case "ic mono->poly->megamorphic" `Quick test_ic_promotion;
        ] );
      ( "machine",
        [
          Alcotest.test_case "self-modify breaks chain" `Quick test_self_modify_breaks_chain;
          Alcotest.test_case "context-switch churn" `Quick test_context_switch_churn;
        ] );
      ( "system",
        [
          Alcotest.test_case "eviction/renew churn" `Quick test_eviction_churn_differential;
          Alcotest.test_case "all workloads, all modes" `Quick test_workload_chain_differential;
        ] );
    ]
