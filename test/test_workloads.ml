(* Every workload must compile, run to completion natively on both
   ISAs with identical output, and survive the full differential
   (native vs PSR vs HIPStR) on a spot-check basis. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads

let run ?cfg ?seed ~mode ~isa (w : Workloads.t) =
  let sys = System.of_fatbin ?cfg ?seed ~start_isa:isa ~mode (Workloads.fatbin w) in
  let o = System.run sys ~fuel:w.w_fuel in
  (o, System.output sys, sys)

let expect_finished (w : Workloads.t) tag o =
  match o with
  | System.Finished 0 -> ()
  | System.Finished c -> Alcotest.failf "%s/%s: exit %d" w.w_name tag c
  | System.Shell_spawned -> Alcotest.failf "%s/%s: shell" w.w_name tag
  | System.Killed m -> Alcotest.failf "%s/%s: killed %s" w.w_name tag m
  | System.Out_of_fuel -> Alcotest.failf "%s/%s: out of fuel" w.w_name tag

let test_native_both_isas (w : Workloads.t) () =
  let o1, out1, s1 = run ~mode:System.Native ~isa:Desc.Cisc w in
  expect_finished w "native-cisc" o1;
  let o2, out2, _ = run ~mode:System.Native ~isa:Desc.Risc w in
  expect_finished w "native-risc" o2;
  Alcotest.(check (list int)) (w.w_name ^ " cross-ISA output") out1 out2;
  Alcotest.(check bool) (w.w_name ^ " produces output") true (List.length out1 > 0);
  Alcotest.(check bool)
    (w.w_name ^ " runs a meaningful number of instructions")
    true
    (Hipstr_machine.Machine.instructions (System.machine s1) > 10_000)

let test_psr_differential (w : Workloads.t) () =
  let _, native_out, _ = run ~mode:System.Native ~isa:Desc.Cisc w in
  let o, psr_out, _ = run ~seed:9 ~mode:System.Psr_only ~isa:Desc.Cisc w in
  expect_finished w "psr" o;
  Alcotest.(check (list int)) (w.w_name ^ " PSR output") native_out psr_out

let test_hipstr_differential (w : Workloads.t) () =
  let cfg = { Config.default with migrate_prob = 1.0 } in
  let _, native_out, _ = run ~mode:System.Native ~isa:Desc.Cisc w in
  let o, out, _ = run ~cfg ~seed:4 ~mode:System.Hipstr ~isa:Desc.Cisc w in
  expect_finished w "hipstr" o;
  Alcotest.(check (list int)) (w.w_name ^ " HIPStR output") native_out out

(* --- httpd request-line handling (the fleet generator's contract) ---

   The parser rejects protocol-violating lengths (negative, or larger
   than the 512-word network buffer) with a 400, but the in-range copy
   into the 16-word stack buffer is still unchecked. A long junk line
   tramples the whole frame: the native server deterministically dies
   on a wild fetch/access, while under PSR/HIPStR the translated
   server's control state is not where the attacker's frame model says
   it is, so the same payload is neutralized and service completes —
   the contrast the fleet's security numbers are built on. *)

module Fatbin = Hipstr_compiler.Fatbin
module Frame = Hipstr_compiler.Frame
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine

let httpd_ret_index () =
  let fb = Workloads.fatbin Workloads.httpd in
  let frame = (Fatbin.find_func fb "handle_request").Fatbin.fs_frame in
  (frame.Frame.ret_off - frame.Frame.locals_off) / 4

(* Boot httpd with the network globals staged before the first
   instruction, exactly as the fleet traffic generator does. *)
let staged_httpd ?cfg ?seed ~mode ~isa ~line ~len ~requests () =
  let sys =
    System.of_fatbin ?cfg ?seed ~start_isa:isa ~mode (Workloads.fatbin Workloads.httpd)
  in
  let fb = System.fatbin sys in
  let mem = Machine.mem (System.machine sys) in
  let input = Fatbin.global_addr fb "net_input" in
  List.iteri (fun i w -> Mem.write32 mem (input + (4 * i)) w) line;
  Mem.write32 mem (Fatbin.global_addr fb "net_len") len;
  Mem.write32 mem (Fatbin.global_addr fb "requests") requests;
  let o = System.run sys ~fuel:200_000 in
  (o, System.output sys, sys)

let test_httpd_rejects_protocol_violations () =
  (* net_len > 512 and net_len < 0: both answered 400 per iteration,
     nothing copied, so the run finishes with total = 400 * requests
     and served = 0 *)
  List.iter
    (fun len ->
      let o, out, _ =
        staged_httpd ~mode:System.Native ~isa:Desc.Cisc ~line:[ 1; 2; 3; 4 ] ~len ~requests:3 ()
      in
      expect_finished Workloads.httpd (Printf.sprintf "reject len=%d" len) o;
      Alcotest.(check (list int))
        (Printf.sprintf "net_len=%d rejected with 400s" len)
        [ 1200; 0 ] out)
    [ 513; 600; 5000; -1; -4096 ]

let isa_label = function Desc.Cisc -> "cisc" | Desc.Risc -> "risc"
let overflow_line = List.init 64 (fun i -> 0x0BAD0000 lor (i * 4))

let test_httpd_overflow_kills_deterministically () =
  List.iter
    (fun isa ->
      let run () =
        staged_httpd ~mode:System.Native ~isa ~line:overflow_line ~len:64 ~requests:3 ()
      in
      let o1, out1, _ = run () in
      (match o1 with
      | System.Killed m ->
        Alcotest.(check bool)
          "the kill is a memory fault" true
          (String.length m >= 3 && String.sub m 0 3 = "fau")
      | _ -> Alcotest.failf "oversized request line must kill the native %s server" (isa_label isa));
      let o2, out2, _ = run () in
      Alcotest.(check bool) "same outcome on replay" true (o1 = o2);
      Alcotest.(check (list int)) "same output on replay" out1 out2)
    [ Desc.Cisc; Desc.Risc ]

let test_httpd_overflow_neutralized_under_psr () =
  (* The payload that kills the native server above: under PSR the
     server's relocated control state survives the frame smash and the
     run finishes normal service, deterministically for a fixed seed.
     The run still carries suspicious events (the compulsory
     code-cache misses every PSR httpd run has), so the fleet records
     outcome, not suspicion, as the discriminator. *)
  let run () =
    staged_httpd ~seed:11 ~mode:System.Psr_only ~isa:Desc.Cisc ~line:overflow_line ~len:64
      ~requests:3 ()
  in
  let o1, out1, sys1 = run () in
  expect_finished Workloads.httpd "psr-overflow" o1;
  Alcotest.(check (list int)) "normal service despite the smash" [ 903; 3 ] out1;
  Alcotest.(check bool) "suspicious events recorded" true (System.suspicious_events sys1 > 0);
  let o2, out2, sys2 = run () in
  Alcotest.(check bool) "same outcome on replay" true (o1 = o2);
  Alcotest.(check (list int)) "same output on replay" out1 out2;
  Alcotest.(check int) "same suspicious count on replay" (System.suspicious_events sys1)
    (System.suspicious_events sys2)

let test_httpd_attack_shape_neutralized_under_psr () =
  let fb = Workloads.fatbin Workloads.httpd in
  let ri = httpd_ret_index () in
  let target = (Fatbin.find_func fb "serve_dynamic").Fatbin.fs_cisc.Fatbin.im_entry in
  let line = List.init 64 (fun i -> if i >= ri then target else 0x0BAD0000 lor i) in
  (* Natively the redirect lands: control escapes handle_request and
     normal service never completes (diverted exit or a wild fetch,
     depending on the ISA's code layout). *)
  List.iter
    (fun isa ->
      let o, out, _ = staged_httpd ~mode:System.Native ~isa ~line ~len:64 ~requests:2 () in
      match o with
      | System.Finished _ ->
        Alcotest.(check bool)
          (Printf.sprintf "native %s service diverted by the redirect" (isa_label isa))
          true
          (out <> [ 602; 2 ])
      | System.Killed _ -> ()
      | System.Shell_spawned -> Alcotest.fail "redirect must not reach a shell"
      | System.Out_of_fuel -> Alcotest.fail "attack-shaped request must not spin")
    [ Desc.Cisc; Desc.Risc ];
  (* Under PSR the relocated server rides out the same payload. *)
  let o, out, sys =
    staged_httpd ~seed:3 ~mode:System.Psr_only ~isa:Desc.Cisc ~line ~len:64 ~requests:2 ()
  in
  expect_finished Workloads.httpd "psr-attack" o;
  Alcotest.(check (list int)) "PSR serves normally through the attack" [ 602; 2 ] out;
  Alcotest.(check bool) "suspicious events recorded" true (System.suspicious_events sys > 0)

let test_find_and_names () =
  Alcotest.(check int) "eight SPEC workloads" 8 (List.length Workloads.all);
  Alcotest.(check int) "nine names with httpd" 9 (List.length Workloads.names);
  List.iter (fun n -> ignore (Workloads.find n)) Workloads.names;
  (match Workloads.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find should raise");
  Alcotest.(check string) "httpd is the victim" "httpd" Workloads.httpd.w_name

let () =
  let per_workload =
    List.concat_map
      (fun (w : Workloads.t) ->
        [
          Alcotest.test_case (w.w_name ^ " native") `Quick (test_native_both_isas w);
          Alcotest.test_case (w.w_name ^ " psr") `Quick (test_psr_differential w);
        ])
      (Workloads.all @ [ Workloads.httpd ])
  in
  Alcotest.run "workloads"
    [
      ("compile-run", per_workload);
      ( "hipstr",
        [
          Alcotest.test_case "bzip2 hipstr" `Quick (test_hipstr_differential (Workloads.find "bzip2"));
          Alcotest.test_case "gobmk hipstr" `Quick (test_hipstr_differential (Workloads.find "gobmk"));
          Alcotest.test_case "httpd hipstr" `Quick (test_hipstr_differential Workloads.httpd);
        ] );
      ( "httpd-hardening",
        [
          Alcotest.test_case "protocol violations rejected" `Quick
            test_httpd_rejects_protocol_violations;
          Alcotest.test_case "overflow kills native deterministically" `Quick
            test_httpd_overflow_kills_deterministically;
          Alcotest.test_case "overflow neutralized under psr" `Quick
            test_httpd_overflow_neutralized_under_psr;
          Alcotest.test_case "attack shape neutralized under psr" `Quick
            test_httpd_attack_shape_neutralized_under_psr;
        ] );
      ("registry", [ Alcotest.test_case "find and names" `Quick test_find_and_names ]);
    ]
