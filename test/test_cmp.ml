(* The CMP scheduler and the Domain pool.

   Two contracts are under test. (1) Scheduling is semantically
   invisible: a process time-sliced across a mixed-ISA CMP — cold
   context switches, cross-ISA placement, equivalence-point
   migrations and all — produces exactly the output, outcome and
   shell state of its standalone System run with the same seed.
   (2) Parallelism is deterministic: a Pool run with ~jobs:4 is
   bit-identical to ~jobs:1 — same results in the same order, same
   merged observability totals — because results are indexed by task,
   per-task randomness derives only from (seed, index), and child obs
   contexts merge in task order. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Registry = Hipstr_experiments.Registry
module Obs = Hipstr_obs.Obs
module Cmp = Hipstr_cmp.Cmp
module Process = Hipstr_cmp.Process
module Pool = Hipstr_cmp.Pool

(* --- helpers --- *)

let mk_proc ?(obs = Obs.disabled) ?cfg ~mode ~fuel ~seed ~start_isa ~pid name =
  let w = Workloads.find name in
  Process.create ~obs ?cfg ~seed ~start_isa ~mode ~pid ~name:w.Workloads.w_name ~fuel
    (Workloads.fatbin w)

(* The four cheapest workloads that all finish well under their fuel. *)
let quad = [ "gobmk"; "httpd"; "mcf"; "bzip2" ]

let quad_procs ?obs ?cfg ~mode ~fuel () =
  List.mapi
    (fun i name ->
      mk_proc ?obs ?cfg ~mode ~fuel ~seed:(i + 1)
        ~start_isa:(if i mod 2 = 0 then Desc.Cisc else Desc.Risc)
        ~pid:i name)
    quad

let outputs cmp =
  List.map (fun p -> System.output (Process.sys p)) (Cmp.processes cmp)

(* --- the Pool --- *)

let test_pool_map_matches_serial () =
  let items = List.init 40 (fun i -> i) in
  let f x = (x * x) + 7 in
  let serial = Pool.map ~jobs:1 f items in
  Alcotest.(check (list int)) "jobs:1 = List.map" (List.map f items) serial;
  Alcotest.(check (list int)) "jobs:4 = jobs:1" serial (Pool.map ~jobs:4 f items);
  Alcotest.(check (list int)) "jobs > items" serial (Pool.map ~jobs:64 f items);
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~jobs:4 f [])

let test_pool_mapi_seeded_deterministic () =
  let items = List.init 24 (fun i -> i) in
  let f rng i x = (i, x, Hipstr_util.Rng.int rng 1_000_000) in
  let a = Pool.mapi_seeded ~jobs:1 ~seed:42 f items in
  let b = Pool.mapi_seeded ~jobs:4 ~seed:42 f items in
  Alcotest.(check bool) "same draws whatever the domain count" true (a = b);
  let c = Pool.mapi_seeded ~jobs:4 ~seed:43 f items in
  Alcotest.(check bool) "seed actually feeds the rngs" true (a <> c)

let test_pool_map_obs_merges_exactly () =
  let count obs = Obs.Metrics.counter_value (Obs.snapshot obs) "work.done" in
  let work obs x =
    let c = Obs.Metrics.counter (Obs.metrics obs) "work.done" in
    Obs.Metrics.incr ~by:x c;
    x
  in
  let items = List.init 32 (fun i -> i + 1) in
  let expected = List.fold_left ( + ) 0 items in
  let serial_obs = Obs.create ~sink:Obs.Sink.null () in
  ignore (Pool.map_obs ~jobs:1 ~obs:serial_obs work items);
  let par_obs = Obs.create ~sink:Obs.Sink.null () in
  ignore (Pool.map_obs ~jobs:4 ~obs:par_obs work items);
  Alcotest.(check int) "serial total" expected (count serial_obs);
  Alcotest.(check int) "parallel total identical" expected (count par_obs)

let test_pool_error_propagates () =
  let boom i _ = if i = 3 then failwith "task-3" else i in
  match Pool.mapi ~jobs:4 boom (List.init 8 (fun i -> i)) with
  | exception Failure m -> Alcotest.(check string) "the failing task's exception" "task-3" m
  | _ -> Alcotest.fail "exception swallowed by the pool"

let test_obs_counter_domain_hammer () =
  (* 4 domains x 100k increments on one counter: the exact total must
     survive, which is precisely what a non-atomic int would lose. *)
  let obs = Obs.create ~sink:Obs.Sink.null () in
  let c = Obs.Metrics.counter (Obs.metrics obs) "hammer" in
  let per_domain = 100_000 in
  let hit () =
    for _ = 1 to per_domain do
      Obs.Metrics.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn hit) in
  List.iter Domain.join domains;
  Alcotest.(check int) "exact total" (4 * per_domain) (Obs.Metrics.value c)

(* --- scheduler determinism --- *)

let test_schedule_deterministic () =
  let build () =
    let cmp =
      Cmp.create ~obs:Obs.disabled ~policy:Cmp.Security_first ~quantum:3_000
        (quad_procs ~mode:System.Hipstr ~fuel:300_000 ())
    in
    Cmp.run cmp;
    cmp
  in
  let a = build () and b = build () in
  Alcotest.(check string)
    "identical schedule trace" (Cmp.schedule_to_string a) (Cmp.schedule_to_string b);
  Alcotest.(check bool) "identical outputs" true (outputs a = outputs b);
  Alcotest.(check bool) "identical metrics" true (Cmp.metrics a = Cmp.metrics b)

(* --- the equivalence contract --- *)

(* Fuel-capped PSR processes: slicing with a cumulative fuel budget
   must be invisible down to the instruction count, because pinned
   processes never migrate and caches don't steer control flow. *)
let test_sliced_psr_equals_standalone () =
  let fuel = 60_000 in
  let cmp =
    Cmp.create ~obs:Obs.disabled ~policy:Cmp.Round_robin ~quantum:1_000
      (quad_procs ~mode:System.Psr_only ~fuel ())
  in
  Cmp.run cmp;
  List.iteri
    (fun i name ->
      let w = Workloads.find name in
      let p = Cmp.proc cmp i in
      let alone =
        System.of_fatbin ~obs:Obs.disabled ~seed:(i + 1)
          ~start_isa:(if i mod 2 = 0 then Desc.Cisc else Desc.Risc)
          ~mode:System.Psr_only (Workloads.fatbin w)
      in
      let alone_outcome = System.run alone ~fuel in
      Alcotest.(check bool)
        (name ^ ": same outcome") true
        (Process.outcome p = Some alone_outcome);
      Alcotest.(check (list int))
        (name ^ ": same output") (System.output alone)
        (System.output (Process.sys p));
      Alcotest.(check int)
        (name ^ ": same instruction count") (System.instructions alone)
        (System.instructions (Process.sys p)))
    quad

(* Full Hipstr runs: the scheduler forces cross-ISA migrations the
   standalone run never sees, yet completed processes must agree on
   outcome, print trace and shell state. *)
let test_cmp_hipstr_equals_standalone () =
  let fuel = 3_000_000 in
  let cmp =
    Cmp.create ~obs:Obs.disabled ~policy:Cmp.Security_first ~quantum:5_000
      (quad_procs ~mode:System.Hipstr ~fuel ())
  in
  Cmp.run cmp;
  List.iteri
    (fun i name ->
      let w = Workloads.find name in
      let p = Cmp.proc cmp i in
      (match Process.outcome p with
      | Some (System.Finished _) -> ()
      | o ->
        Alcotest.failf "%s did not finish under the CMP (%s)" name
          (match o with Some _ -> "non-exit outcome" | None -> "still runnable"));
      let alone =
        System.of_fatbin ~obs:Obs.disabled ~seed:(i + 1)
          ~start_isa:(if i mod 2 = 0 then Desc.Cisc else Desc.Risc)
          ~mode:System.Hipstr (Workloads.fatbin w)
      in
      let alone_outcome = System.run alone ~fuel in
      Alcotest.(check bool)
        (name ^ ": same outcome") true
        (Process.outcome p = Some alone_outcome);
      Alcotest.(check (list int))
        (name ^ ": same output") (System.output alone)
        (System.output (Process.sys p));
      Alcotest.(check bool)
        (name ^ ": same shell state") true
        (System.shell alone = System.shell (Process.sys p)))
    quad

(* --- policy behavior --- *)

let test_security_policy_migrates_flagged () =
  (* gobmk and httpd hit suspicious code-cache misses; under the
     security policy those slices must be followed by preferential
     cross-ISA placement. *)
  let cmp =
    Cmp.create ~obs:Obs.disabled ~policy:Cmp.Security_first ~quantum:2_000
      (quad_procs ~mode:System.Hipstr ~fuel:3_000_000 ())
  in
  Cmp.run cmp;
  let m = Cmp.metrics cmp in
  Alcotest.(check bool)
    "security-policy migrations happened" true
    (m.Cmp.m_migrations_security_policy > 0);
  Alcotest.(check bool) "context switches counted" true (m.Cmp.m_context_switches > 0);
  (* every security-marked event in the trace lands the process on a
     core of the other ISA *)
  List.iter
    (fun (e : Cmp.sched_event) ->
      if e.se_security && e.se_migrated then
        let core_isa =
          List.nth (List.map (fun c -> c.Cmp.cm_isa) m.Cmp.m_cores) e.se_core
        in
        Alcotest.(check bool) "security placement crosses ISAs" true (core_isa <> e.se_isa))
    (Cmp.schedule cmp)

let test_pinned_processes_never_migrate () =
  let cmp =
    Cmp.create ~obs:Obs.disabled ~policy:Cmp.Load_balance ~quantum:2_000
      (quad_procs ~mode:System.Psr_only ~fuel:100_000 ())
  in
  Cmp.run cmp;
  List.iteri
    (fun i _ ->
      let p = Cmp.proc cmp i in
      Alcotest.(check int) "no scheduler migrations" 0 (Process.sched_migrations p);
      Alcotest.(check bool) "ISA unchanged" true
        (Process.active_isa p = if i mod 2 = 0 then Desc.Cisc else Desc.Risc))
    quad;
  (* both cores did real work under load balancing *)
  let m = Cmp.metrics cmp in
  List.iter
    (fun (cm : Cmp.core_metrics) ->
      Alcotest.(check bool) "core saw slices" true (cm.cm_slices > 0))
    m.Cmp.m_cores

let test_create_validation () =
  let p () = mk_proc ~mode:System.Psr_only ~fuel:1_000 ~seed:1 ~start_isa:Desc.Cisc ~pid:0 "mcf" in
  (* an empty process list is legal: a serving CMP starts idle and
     admits work with inject (the fleet harness's arrival path) *)
  let idle = Cmp.create [] in
  Alcotest.(check int) "idle cmp has no runnable work" 0 (Cmp.runnable_count idle);
  Cmp.inject idle (p ());
  Alcotest.(check int) "injected process is runnable" 1 (Cmp.runnable_count idle);
  (match Cmp.inject idle (p ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate injected pid accepted");
  (match Cmp.create ~cores:[] [ p () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty core list accepted");
  (match Cmp.create ~quantum:0 [ p () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero quantum accepted");
  (match Cmp.create [ p (); p () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate pids accepted");
  (* a PSR (pinned) cisc process with only risc cores has nowhere to run *)
  match Cmp.create ~cores:[ Desc.Risc ] [ p () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pinned process without a home core accepted"

(* --- a real sweep, serial vs parallel --- *)

let test_experiment_sweep_parallel_identical () =
  let es =
    List.filter_map Registry.find [ "table1"; "fig3"; "fig4"; "ablation-pad" ]
  in
  Alcotest.(check int) "sweep has 4 experiments" 4 (List.length es);
  let serial = Registry.run_many ~jobs:1 es in
  let parallel = Registry.run_many ~jobs:4 es in
  Alcotest.(check (list string)) "-j 4 bit-identical to -j 1" serial parallel

let () =
  Alcotest.run "cmp"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches serial" `Quick test_pool_map_matches_serial;
          Alcotest.test_case "mapi_seeded deterministic" `Quick
            test_pool_mapi_seeded_deterministic;
          Alcotest.test_case "map_obs merges exactly" `Quick test_pool_map_obs_merges_exactly;
          Alcotest.test_case "errors propagate" `Quick test_pool_error_propagates;
          Alcotest.test_case "counter survives 4-domain hammer" `Quick
            test_obs_counter_domain_hammer;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "sliced psr = standalone" `Quick test_sliced_psr_equals_standalone;
          Alcotest.test_case "cmp hipstr = standalone" `Quick test_cmp_hipstr_equals_standalone;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "policies",
        [
          Alcotest.test_case "security policy migrates flagged" `Quick
            test_security_policy_migrates_flagged;
          Alcotest.test_case "pinned never migrate" `Quick test_pinned_processes_never_migrate;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "experiment sweep -j4 = -j1" `Quick
            test_experiment_sweep_parallel_identical;
        ] );
    ]
