(* Checkpoint/restore round-trips: restore-then-run must be
   bit-identical — outcome, output, instruction count, cycle floats,
   metrics counters and histograms — to the checkpointing run
   continuing uninterrupted, across every workload and protection
   mode, including mid-quantum checkpoints and cross-ISA resume; and
   the image parser must reject truncated, trailing, version-skewed
   and wrong-binary images loudly. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Code_cache = Hipstr_psr.Code_cache
module Obs = Hipstr_obs.Obs
module Snapshot = Hipstr_snapshot.Snapshot
module Workloads = Hipstr_workloads.Workloads
module Wire = Hipstr_util.Wire

let mode_label = function
  | System.Native -> "native"
  | System.Psr_only -> "psr"
  | System.Hipstr -> "hipstr"

(* Everything the determinism contract covers, in one comparable
   value. Cycles go in as IEEE bits so "equal" means bit-identical,
   not approximately so. *)
type fingerprint = {
  fp_outcome : string;
  fp_output : int list;
  fp_instructions : int;
  fp_cycle_bits : int64;
  fp_counters : (string * int) list;
  fp_histograms : (string * Obs.Metrics.histogram_summary) list;
}

let outcome_string = function
  | System.Finished c -> Printf.sprintf "finished(%d)" c
  | System.Shell_spawned -> "shell"
  | System.Killed m -> "killed(" ^ m ^ ")"
  | System.Out_of_fuel -> "out_of_fuel"

let fingerprint_of sys outcome =
  let snap = Obs.Metrics.snapshot (Obs.metrics (System.obs sys)) in
  {
    fp_outcome = outcome_string outcome;
    fp_output = System.output sys;
    fp_instructions = System.instructions sys;
    fp_cycle_bits = Int64.bits_of_float (System.cycles sys);
    fp_counters = snap.Obs.Metrics.snap_counters;
    fp_histograms = snap.Obs.Metrics.snap_histograms;
  }

let check_fp label a b =
  Alcotest.(check string) (label ^ ": outcome") a.fp_outcome b.fp_outcome;
  Alcotest.(check (list int)) (label ^ ": output") a.fp_output b.fp_output;
  Alcotest.(check int) (label ^ ": instructions") a.fp_instructions b.fp_instructions;
  Alcotest.(check int64) (label ^ ": cycle bits") a.fp_cycle_bits b.fp_cycle_bits;
  Alcotest.(check bool) (label ^ ": counters") true (a.fp_counters = b.fp_counters);
  Alcotest.(check bool) (label ^ ": histograms") true (a.fp_histograms = b.fp_histograms)

let seed = 7

let boot ~mode fb =
  let obs = Obs.create () in
  System.of_fatbin ~obs ~seed ~start_isa:Desc.Cisc ~mode fb

(* One workload × mode trio:
   - [interrupted]: run a partial quantum, checkpoint mid-flight, keep
     running to the end — the reference trajectory (the checkpoint
     itself must not perturb it beyond the documented quiesce, which
     the restored run shares);
   - [resumed]: restore the image into a fresh system and run to the
     end. Both must agree bit-for-bit on the whole fingerprint. *)
let round_trip ~mode w =
  let fb = Workloads.fatbin w in
  let fuel = 3 * w.Workloads.w_fuel in
  (* Some workloads finish in far fewer instructions than their fuel
     budget (native runs take no VM exits), so back off until the
     partial run genuinely stops mid-flight. *)
  let rec interrupted_at partial =
    let sys = boot ~mode fb in
    match System.run sys ~fuel:partial with
    | System.Out_of_fuel -> (sys, partial)
    | _ when partial > 64 -> interrupted_at (partial / 4)
    | o ->
      Alcotest.failf "%s/%s finished in under 64 instructions (%s)" w.Workloads.w_name
        (mode_label mode) (outcome_string o)
  in
  let interrupted, partial = interrupted_at (w.Workloads.w_fuel / 5) in
  let image = Snapshot.checkpoint ~workload:w.Workloads.w_name interrupted in
  let o1 = System.run interrupted ~fuel in
  let obs2 = Obs.create () in
  let resumed, mf = Snapshot.restore ~obs:obs2 ~fatbin:fb image in
  Alcotest.(check string) "manifest workload" w.Workloads.w_name mf.Snapshot.mf_workload;
  Alcotest.(check int) "manifest instructions" partial mf.Snapshot.mf_instructions;
  let o2 = System.run resumed ~fuel in
  check_fp
    (Printf.sprintf "%s/%s" w.Workloads.w_name (mode_label mode))
    (fingerprint_of interrupted o1) (fingerprint_of resumed o2)

let test_round_trip_all () =
  List.iter
    (fun w -> List.iter (fun mode -> round_trip ~mode w) [ System.Native; System.Psr_only; System.Hipstr ])
    (Workloads.all @ [ Workloads.httpd ])

(* A second checkpoint of the *restored* system at a later point must
   also round-trip — checkpoints compose. *)
let test_recheckpoint () =
  let w = Workloads.find "mcf" in
  let fb = Workloads.fatbin w in
  let sys = boot ~mode:System.Hipstr fb in
  ignore (System.run sys ~fuel:(w.Workloads.w_fuel / 6));
  let sys2, _ = Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb (Snapshot.checkpoint sys) in
  ignore (System.run sys2 ~fuel:(w.Workloads.w_fuel / 6));
  let sys3, _ = Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb (Snapshot.checkpoint sys2) in
  let o2 = System.run sys2 ~fuel:(3 * w.Workloads.w_fuel) in
  let o3 = System.run sys3 ~fuel:(3 * w.Workloads.w_fuel) in
  check_fp "recheckpoint" (fingerprint_of sys2 o2) (fingerprint_of sys3 o3)

(* Cross-ISA resume: restore, then force a migration at the next
   return. Program semantics (outcome, output) must survive the ISA
   switch, and the process must actually end up having migrated. *)
let test_cross_isa_restore () =
  let w = Workloads.find "gobmk" in
  let fb = Workloads.fatbin w in
  let fuel = 3 * w.Workloads.w_fuel in
  let cfg = { Config.default with Config.migrate_prob = 0.0 } in
  let mk () =
    System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed ~start_isa:Desc.Cisc ~mode:System.Hipstr fb
  in
  let reference = mk () in
  let oref = System.run reference ~fuel in
  let sys = mk () in
  (match System.run sys ~fuel:50_000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "finished before the checkpoint point");
  let image = Snapshot.checkpoint sys in
  let resumed, _ = Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb image in
  System.request_migration resumed;
  let o = System.run resumed ~fuel in
  Alcotest.(check string) "outcome survives the ISA switch" (outcome_string oref)
    (outcome_string o);
  Alcotest.(check (list int)) "output survives the ISA switch" (System.output reference)
    (System.output resumed);
  Alcotest.(check int) "migrated exactly once" 1 (System.forced_migrations resumed);
  Alcotest.(check bool) "ended on the other core" true
    (System.active_isa resumed = Desc.Risc)

(* Eviction-policy coverage: the code-cache directory round-trips
   under block-granular eviction too (clock policy, small cache). *)
let test_round_trip_clock_policy () =
  let w = Workloads.find "gobmk" in
  let fb = Workloads.fatbin w in
  let cfg = { Config.default with Config.cc_policy = Code_cache.Clock; cache_bytes = 16_384 } in
  let fuel = 3 * w.Workloads.w_fuel in
  let interrupted =
    System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed ~start_isa:Desc.Cisc ~mode:System.Hipstr fb
  in
  ignore (System.run interrupted ~fuel:(w.Workloads.w_fuel / 4));
  let image = Snapshot.checkpoint interrupted in
  let o1 = System.run interrupted ~fuel in
  let resumed, _ = Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb image in
  let o2 = System.run resumed ~fuel in
  check_fp "clock policy" (fingerprint_of interrupted o1) (fingerprint_of resumed o2)

(* --- strict parser ------------------------------------------------- *)

let expect_corrupt label f =
  match f () with
  | exception Wire.Corrupt _ -> ()
  | exception e -> Alcotest.failf "%s: raised %s, wanted Wire.Corrupt" label (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: accepted a bad image" label

let make_image () =
  let w = Workloads.find "libquantum" in
  let fb = Workloads.fatbin w in
  let sys = boot ~mode:System.Hipstr fb in
  ignore (System.run sys ~fuel:(w.Workloads.w_fuel / 5));
  (fb, Snapshot.checkpoint ~workload:w.Workloads.w_name sys)

let test_rejects_truncation () =
  let fb, image = make_image () in
  let n = String.length image in
  List.iter
    (fun len ->
      expect_corrupt
        (Printf.sprintf "truncated to %d bytes" len)
        (fun () -> Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb (String.sub image 0 len)))
    [ 0; 1; 7; 14; n / 3; n / 2; n - 1 ]

let test_rejects_trailing_bytes () =
  let fb, image = make_image () in
  expect_corrupt "trailing byte" (fun () ->
      Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb (image ^ "\000"))

let test_rejects_version_skew () =
  let fb, image = make_image () in
  (* layout: str magic = 8-byte length + 7 bytes, then the 8-byte
     version little-endian — byte 15 is its low byte *)
  let skewed = Bytes.of_string image in
  Bytes.set skewed 15 '\099';
  expect_corrupt "version skew" (fun () ->
      Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb (Bytes.to_string skewed));
  expect_corrupt "manifest_of rejects it too" (fun () ->
      ignore (Snapshot.manifest_of (Bytes.to_string skewed)))

let test_rejects_wrong_binary () =
  let fb, image = make_image () in
  let other = Workloads.fatbin (Workloads.find "mcf") in
  expect_corrupt "wrong binary" (fun () ->
      Snapshot.restore ~obs:(Obs.create ()) ~fatbin:other image);
  (* the right binary still works after the failed attempt *)
  let sys, _ = Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb image in
  ignore (System.run sys ~fuel:1000)

let test_rejects_bad_magic () =
  let fb, image = make_image () in
  expect_corrupt "bad magic" (fun () ->
      Snapshot.restore ~obs:(Obs.create ()) ~fatbin:fb ("XIPSNAP" ^ image))

(* --- warm-start memo ----------------------------------------------- *)

let test_memo_warm_start () =
  let w = Workloads.find "hmmer" in
  let fb = Workloads.fatbin w in
  let cfg = { Config.default with Config.cc_policy = Code_cache.Clock } in
  let fuel = 3 * w.Workloads.w_fuel in
  let run ?memo () =
    let sys =
      System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed ~start_isa:Desc.Cisc ~mode:System.Psr_only
        fb
    in
    (match memo with Some m -> Snapshot.load_memo sys m | None -> ());
    let o = System.run sys ~fuel in
    (sys, o)
  in
  let cold_sys, cold_o = run () in
  let memo = Snapshot.save_memo cold_sys in
  let warm_sys, warm_o = run ~memo () in
  Alcotest.(check string) "same outcome" (outcome_string cold_o) (outcome_string warm_o);
  Alcotest.(check (list int)) "same output" (System.output cold_sys) (System.output warm_sys);
  Alcotest.(check bool) "warm run installs from the memo" true
    (System.memo_installs warm_sys > 0);
  Alcotest.(check bool) "warm start is cheaper" true
    (System.cycles warm_sys < System.cycles cold_sys);
  (* a memo for a different binary must be refused *)
  let other =
    System.of_fatbin ~obs:(Obs.create ()) ~cfg ~seed ~mode:System.Psr_only
      (Workloads.fatbin (Workloads.find "milc"))
  in
  expect_corrupt "memo pinned to its binary" (fun () -> Snapshot.load_memo other memo)

let () =
  Alcotest.run "snapshot"
    [
      ( "round-trip",
        [
          Alcotest.test_case "all workloads x native/psr/hipstr" `Slow test_round_trip_all;
          Alcotest.test_case "checkpoints compose" `Quick test_recheckpoint;
          Alcotest.test_case "cross-ISA resume" `Quick test_cross_isa_restore;
          Alcotest.test_case "clock eviction policy" `Quick test_round_trip_clock_policy;
        ] );
      ( "strict parser",
        [
          Alcotest.test_case "truncation" `Quick test_rejects_truncation;
          Alcotest.test_case "trailing bytes" `Quick test_rejects_trailing_bytes;
          Alcotest.test_case "version skew" `Quick test_rejects_version_skew;
          Alcotest.test_case "wrong binary" `Quick test_rejects_wrong_binary;
          Alcotest.test_case "bad magic" `Quick test_rejects_bad_magic;
        ] );
      ("warm start", [ Alcotest.test_case "memo round-trip" `Quick test_memo_warm_start ]);
    ]
