(* Machine substrate tests: memory, caches, branch predictor, RAT,
   and hand-assembled programs run through the interpreter. *)

module Mem = Hipstr_machine.Mem
module Cache = Hipstr_machine.Cache
module Bpred = Hipstr_machine.Bpred
module Rat = Hipstr_machine.Rat
module Layout = Hipstr_machine.Layout
module Machine = Hipstr_machine.Machine
module Exec = Hipstr_machine.Exec
module Core_desc = Hipstr_machine.Core_desc
module Minstr = Hipstr_isa.Minstr
module Desc = Hipstr_isa.Desc
module Cisc = Hipstr_cisc.Isa
module Risc = Hipstr_risc.Isa
open Minstr

let test_mem_rw () =
  let m = Mem.create 4096 in
  Mem.write32 m 100 0x12345678;
  Alcotest.(check int) "read32" 0x12345678 (Mem.read32 m 100);
  Alcotest.(check int) "byte order little-endian" 0x78 (Mem.read8 m 100);
  Mem.write32 m 200 (-1);
  Alcotest.(check int) "negative" (-1) (Mem.read32 m 200);
  Mem.write8 m 0 0x1FF;
  Alcotest.(check int) "byte masked" 0xFF (Mem.read8 m 0)

let test_mem_fault () =
  let m = Mem.create 64 in
  Alcotest.check_raises "oob read" (Mem.Fault 64) (fun () -> ignore (Mem.read8 m 64));
  Alcotest.check_raises "oob write32 straddle" (Mem.Fault 65) (fun () -> Mem.write32 m 62 0);
  Alcotest.check_raises "negative" (Mem.Fault (-1)) (fun () -> ignore (Mem.read8 m (-1)))

let test_mem_strings () =
  let m = Mem.create 256 in
  Mem.blit_string m 10 "hello\000";
  Alcotest.(check string) "cstring" "hello" (Mem.read_cstring m 10);
  Alcotest.(check string) "substring" "ell" (Mem.read_string m 11 3)

let test_mem_bad_span () =
  (* regression: negative or end-crossing string spans must refuse up
     front rather than fault mid-copy or index a negative length *)
  let m = Mem.create 64 in
  Alcotest.check_raises "negative length" (Mem.Bad_span (10, -1)) (fun () ->
      ignore (Mem.read_string m 10 (-1)));
  Alcotest.check_raises "read crosses the end" (Mem.Bad_span (60, 8)) (fun () ->
      ignore (Mem.read_string m 60 8));
  Alcotest.check_raises "negative address" (Mem.Bad_span (-4, 2)) (fun () ->
      ignore (Mem.read_string m (-4) 2));
  Alcotest.check_raises "blit crosses the end" (Mem.Bad_span (62, 5)) (fun () ->
      Mem.blit_string m 62 "hello");
  Alcotest.check_raises "write crosses the end" (Mem.Bad_span (62, 3)) (fun () ->
      Mem.write_string m 62 "hey");
  (* zero-length spans at any in-bounds address are fine, including
     one-past-the-end, and a refused blit must not have written *)
  Alcotest.(check string) "zero-length read ok" "" (Mem.read_string m 64 0);
  Mem.blit_string m 62 "";
  Alcotest.(check int) "refused blit left memory untouched" 0 (Mem.read8 m 62)

let test_cache_behavior () =
  let c = Cache.create ~line:64 ~size_kb:1 ~assoc:2 ~miss_penalty:10 () in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "second hits" true (Cache.access c 32);
  Alcotest.(check bool) "different line misses" false (Cache.access c 64);
  Alcotest.(check int) "stats" 2 (Cache.misses c);
  (* 1 KB, 2-way, 64B lines -> 8 sets. Address stride of 512 maps to
     the same set; three distinct lines exceed the ways. *)
  let c2 = Cache.create ~line:64 ~size_kb:1 ~assoc:2 ~miss_penalty:10 () in
  ignore (Cache.access c2 0);
  ignore (Cache.access c2 512);
  ignore (Cache.access c2 1024);
  Alcotest.(check bool) "evicted LRU way" false (Cache.access c2 0);
  Cache.flush c2;
  Cache.reset_stats c2;
  Alcotest.(check bool) "flush invalidates" false (Cache.access c2 512)

let test_bpred_learns_loop () =
  let b = Bpred.create () in
  (* A branch taken 100 times: after warmup it should predict well. *)
  for _ = 1 to 100 do
    ignore (Bpred.predict_cond b ~pc:0x400 ~taken:true)
  done;
  let before = Bpred.mispredicts b in
  for _ = 1 to 100 do
    ignore (Bpred.predict_cond b ~pc:0x400 ~taken:true)
  done;
  Alcotest.(check int) "steady state no mispredicts" before (Bpred.mispredicts b)

let test_bpred_ras () =
  let b = Bpred.create () in
  Bpred.push_ras b 0x111;
  Bpred.push_ras b 0x222;
  Alcotest.(check bool) "inner return predicted" true (Bpred.predict_return b ~target:0x222);
  Alcotest.(check bool) "outer return predicted" true (Bpred.predict_return b ~target:0x111);
  Alcotest.(check bool) "empty RAS mispredicts" false (Bpred.predict_return b ~target:0x111)

let test_rat_lru () =
  let r = Rat.create ~capacity:2 in
  Rat.insert r ~src:1 ~translated:101;
  Rat.insert r ~src:2 ~translated:102;
  Alcotest.(check (option int)) "hit 1" (Some 101) (Rat.lookup r 1);
  Rat.insert r ~src:3 ~translated:103;
  (* 2 was least recently used (1 was just touched). *)
  Alcotest.(check (option int)) "2 evicted" None (Rat.lookup r 2);
  Alcotest.(check (option int)) "1 kept" (Some 101) (Rat.lookup r 1);
  Alcotest.(check (option int)) "3 kept" (Some 103) (Rat.lookup r 3);
  Alcotest.(check int) "misses counted" 1 (Rat.misses r)

(* Hand-assemble a tiny program into memory and run it natively. *)
let assemble which base instrs mem =
  let encode ~at i =
    match which with Desc.Cisc -> Cisc.encode ~at i | Desc.Risc -> Risc.encode ~at i
  in
  let at = ref base in
  List.iter
    (fun i ->
      let bytes = encode ~at:!at i in
      Mem.blit_string mem !at bytes;
      at := !at + String.length bytes)
    instrs;
  !at

let run_asm which instrs ~fuel =
  let m = Machine.create ~active:which () in
  let base = Layout.code_base which in
  ignore (assemble which base instrs (Machine.mem m));
  Machine.boot m ~entry:base;
  let trap = Machine.run m ~fuel in
  (trap, m)

let test_exec_cisc_loop () =
  (* sum 1..10 into bx then print and exit *)
  let base = Layout.cisc_code_base in
  let l_loop = base + 12 in
  let instrs =
    [
      Mov (Reg 1, Imm 0) (* bx := 0 *);
      Mov (Reg 2, Imm 10) (* cx := 10 *);
      (* loop: *)
      Binop (Add, Reg 1, Reg 2);
      Binop (Sub, Reg 2, Imm 1);
      Cmp (Reg 2, Imm 0);
      Jcc (Gt, l_loop);
      (* print bx *)
      Mov (Reg 0, Imm 4);
      Syscall;
      Mov (Reg 0, Imm 1);
      Mov (Reg 1, Imm 0);
      Syscall;
    ]
  in
  let trap, m = run_asm Desc.Cisc instrs ~fuel:1000 in
  (match trap with
  | Some (Exec.Exit 0) -> ()
  | Some t -> Alcotest.failf "unexpected stop: %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "out of fuel");
  Alcotest.(check (list int)) "printed sum" [ 55 ] (Hipstr_machine.Sys.output (Machine.os m))

let test_exec_risc_loop () =
  let base = Layout.risc_code_base in
  (* mov r1,0 (4) ; mov r2,10 (4) ; loop at +8: add r1,r2 (4); sub r2,1 (4); cmp r2,0 (4); jgt loop (8) *)
  let l_loop = base + 8 in
  let instrs =
    [
      Mov (Reg 1, Imm 0);
      Mov (Reg 2, Imm 10);
      Binop (Add, Reg 1, Reg 2);
      Binop (Sub, Reg 2, Imm 1);
      Cmp (Reg 2, Imm 0);
      Jcc (Gt, l_loop);
      Mov (Reg 0, Imm 4);
      Syscall;
      Mov (Reg 0, Imm 1);
      Mov (Reg 1, Imm 0);
      Syscall;
    ]
  in
  let trap, m = run_asm Desc.Risc instrs ~fuel:1000 in
  (match trap with
  | Some (Exec.Exit 0) -> ()
  | Some t -> Alcotest.failf "unexpected stop: %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "out of fuel");
  Alcotest.(check (list int)) "printed sum" [ 55 ] (Hipstr_machine.Sys.output (Machine.os m))

let test_exec_bad_fetch_faults () =
  (* Jump to a byte that decodes on no path: 0x07 expects an
     immediate byte, and the following out-of-range read makes the
     fetch fail. Zeroed memory, by contrast, decodes (the dense
     x86-like opcode map), so use an address near the end of the
     address space. *)
  let m = Machine.create ~active:Desc.Cisc () in
  let base = Layout.cisc_code_base in
  ignore (assemble Desc.Cisc base [ Minstr.Jmp (Layout.mem_size - 1) ] (Machine.mem m));
  (* place an undecodable byte (an unused opcode) at the target *)
  Mem.write8 (Machine.mem m) (Layout.mem_size - 1) 0x02;
  (* 0x02 = mov r, imm32 but its operand byte + imm straddle the end
     of memory: the decoder's reads return -1 and decoding fails *)
  Machine.boot m ~entry:base;
  match Machine.run m ~fuel:10 with
  | Some (Exec.Fault (Exec.Bad_fetch _)) -> ()
  | Some t -> Alcotest.failf "expected bad fetch, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_exec_execve_detected () =
  let instrs = [ Mov (Reg 0, Imm 11); Mov (Reg 1, Imm 0xdead); Syscall ] in
  let trap, m = run_asm Desc.Cisc instrs ~fuel:10 in
  (match trap with
  | Some Exec.Shell -> ()
  | Some t -> Alcotest.failf "expected shell, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap");
  match (Machine.os m).shell with
  | Some (a, _, _) -> Alcotest.(check int) "execve arg recorded" 0xdead a
  | None -> Alcotest.fail "shell not recorded"

let test_native_ret_to_sentinel_exits () =
  (* push sentinel happens in boot; a lone ret should exit with the
     value in the return register. *)
  let instrs = [ Mov (Reg 0, Imm 33); Ret ] in
  let trap, _ = run_asm Desc.Cisc instrs ~fuel:10 in
  match trap with
  | Some (Exec.Exit 33) -> ()
  | Some t -> Alcotest.failf "expected exit 33, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_rat_mode_ret_traps () =
  (* With a RAT present, a return with no mapping must trap (the
     modified return macro-op). *)
  let m = Machine.create ~rat_capacity:(Some 64) ~active:Desc.Cisc () in
  let base = Layout.cisc_code_base in
  ignore (assemble Desc.Cisc base [ Push (Imm 0x4242); Ret ] (Machine.mem m));
  Machine.boot m ~entry:base;
  match Machine.run m ~fuel:10 with
  | Some (Exec.Rat_miss 0x4242) -> ()
  | Some t -> Alcotest.failf "expected rat miss, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_callrat_inserts_mapping () =
  let m = Machine.create ~rat_capacity:(Some 64) ~active:Desc.Cisc () in
  let base = Layout.cisc_code_base in
  (* callrat jumps to a block that returns via retrat on the pushed
     source address. *)
  let target = base + 100 in
  ignore (assemble Desc.Cisc base [ Callrat { target; src_ret = 0x7777 } ] (Machine.mem m));
  (* the "translated callee": pop the source ret into bp and retrat *)
  ignore (assemble Desc.Cisc target [ Pop (Reg 6); Retrat (Reg 6) ] (Machine.mem m));
  (* continuation after callrat: exit 5 *)
  let cont = base + Cisc.length (Callrat { target; src_ret = 0x7777 }) in
  ignore (assemble Desc.Cisc cont [ Mov (Reg 0, Imm 1); Mov (Reg 1, Imm 5); Syscall ] (Machine.mem m));
  Machine.boot m ~entry:base;
  match Machine.run m ~fuel:20 with
  | Some (Exec.Exit 5) -> ()
  | Some t -> Alcotest.failf "expected exit 5, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_trap_stub () =
  let trap, _ = run_asm Desc.Cisc [ Nop; Trap 0xBEEF ] ~fuel:10 in
  match trap with
  | Some (Exec.Trap_stub 0xBEEF) -> ()
  | Some t -> Alcotest.failf "expected trap stub, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_indirect_jump_into_cache_faults () =
  let target = Layout.cisc_cache_base + 64 in
  let instrs = [ Mov (Reg 1, Imm target); Jmpr (Reg 1) ] in
  let trap, _ = run_asm Desc.Cisc instrs ~fuel:10 in
  match trap with
  | Some (Exec.Fault (Exec.Cache_jump _)) -> ()
  | Some t -> Alcotest.failf "expected cache-jump fault, got %s" (Exec.string_of_trap t)
  | None -> Alcotest.fail "no trap"

let test_cycle_accounting () =
  let trap, m = run_asm Desc.Cisc [ Mov (Reg 0, Imm 1); Mov (Reg 1, Imm 0); Syscall ] ~fuel:10 in
  (match trap with Some (Exec.Exit 0) -> () | _ -> Alcotest.fail "bad run");
  Alcotest.(check bool) "cycles accumulated" true (Machine.cycles m > 0.);
  Alcotest.(check int) "instructions counted" 3 (Machine.instructions m);
  Alcotest.(check bool) "seconds positive" true (Machine.seconds m > 0.)

let test_core_descs_match_table1 () =
  Alcotest.(check int) "arm rob" 20 Core_desc.arm.rob_size;
  Alcotest.(check int) "x86 rob" 128 Core_desc.x86.rob_size;
  Alcotest.(check (float 1e-9)) "arm freq" 2.0 Core_desc.arm.freq_ghz;
  Alcotest.(check (float 1e-9)) "x86 freq" 3.3 Core_desc.x86.freq_ghz;
  Alcotest.(check int) "arm fetch" 2 Core_desc.arm.fetch_width;
  Alcotest.(check int) "x86 fetch" 4 Core_desc.x86.fetch_width

let test_switch_core () =
  let m = Machine.create ~active:Desc.Cisc () in
  Alcotest.(check int) "no migrations yet" 0 (Machine.migrations m);
  Machine.switch_core m Desc.Risc;
  Alcotest.(check bool) "active switched" true (Machine.active m = Desc.Risc);
  Machine.switch_core m Desc.Risc;
  Alcotest.(check int) "same-core switch not counted" 1 (Machine.migrations m)

let () =
  Alcotest.run "machine"
    [
      ( "mem",
        [
          Alcotest.test_case "read write" `Quick test_mem_rw;
          Alcotest.test_case "faults" `Quick test_mem_fault;
          Alcotest.test_case "strings" `Quick test_mem_strings;
          Alcotest.test_case "bad spans refuse" `Quick test_mem_bad_span;
        ] );
      ( "timing-structures",
        [
          Alcotest.test_case "cache" `Quick test_cache_behavior;
          Alcotest.test_case "bpred loop" `Quick test_bpred_learns_loop;
          Alcotest.test_case "bpred ras" `Quick test_bpred_ras;
          Alcotest.test_case "rat lru" `Quick test_rat_lru;
          Alcotest.test_case "core descs" `Quick test_core_descs_match_table1;
        ] );
      ( "exec",
        [
          Alcotest.test_case "cisc loop" `Quick test_exec_cisc_loop;
          Alcotest.test_case "risc loop" `Quick test_exec_risc_loop;
          Alcotest.test_case "bad fetch" `Quick test_exec_bad_fetch_faults;
          Alcotest.test_case "execve detection" `Quick test_exec_execve_detected;
          Alcotest.test_case "ret to sentinel" `Quick test_native_ret_to_sentinel_exits;
          Alcotest.test_case "rat-mode ret traps" `Quick test_rat_mode_ret_traps;
          Alcotest.test_case "callrat mapping" `Quick test_callrat_inserts_mapping;
          Alcotest.test_case "trap stub" `Quick test_trap_stub;
          Alcotest.test_case "cache-jump SFI" `Quick test_indirect_jump_into_cache_faults;
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "switch core" `Quick test_switch_core;
        ] );
    ]
