(* The predecoded-block interpreter must be invisible: every
   simulation — each registered workload, the fuzzer's generated
   programs, eviction-churn configs — must produce bit-identical
   results with the decode cache on and off (outputs, cycle floats,
   instruction counts, suspicious events, migrations). Plus unit
   tests for the machinery itself: Mem write generations, staleness
   under self-modifying code, wholesale invalidation on context
   switch and code-cache flush, and the Mem fast-path/cstring
   satellite fixes. *)

module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Machine = Hipstr_machine.Machine
module Decode_cache = Hipstr_machine.Decode_cache
module Exec = Hipstr_machine.Exec
module Desc = Hipstr_isa.Desc
module Minstr = Hipstr_isa.Minstr
module Cisc = Hipstr_cisc.Isa
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Workloads = Hipstr_workloads.Workloads
module Obs = Hipstr_obs.Obs

(* ------------------------------------------------------------------ *)
(* Differential checks, through the shared harness (Diff_harness) *)

let run_fatbin ~decode_cache ?cfg ~mode ~seed ~fuel fb =
  let sys =
    System.of_fatbin ~obs:Obs.disabled ?cfg ~seed ~start_isa:Desc.Cisc ~decode_cache ~mode fb
  in
  Diff_harness.run_sys sys ~fuel

let differential_fatbin label ?cfg ~mode ~seed ~fuel fb =
  let on = run_fatbin ~decode_cache:true ?cfg ~mode ~seed ~fuel fb in
  let off = run_fatbin ~decode_cache:false ?cfg ~mode ~seed ~fuel fb in
  Diff_harness.check label on off

(* Every registered workload (including httpd), every mode. Fuel is
   bounded well below the workloads' nominal budgets to keep the
   suite quick — cutting a run short mid-loop is itself a useful
   case (the cache is hot when fuel runs out). *)
let test_workload_differential () =
  let fuel = 200_000 in
  List.iter
    (fun name ->
      let fb = Workloads.fatbin (Workloads.find name) in
      List.iter
        (fun (mlabel, mode) ->
          differential_fatbin (name ^ "/" ^ mlabel) ~mode ~seed:3 ~fuel fb)
        [ ("native", System.Native); ("psr", System.Psr_only); ("hipstr", System.Hipstr) ])
    Workloads.names

(* Migration-heavy and eviction-heavy configs: forced migrations
   rewrite register state across ISAs mid-run, and tiny caches churn
   the code-cache region (installs, chain patches, trap-byte
   restores) — the decode-cache invalidation paths with the most
   traffic. *)
let test_churn_differential () =
  let fuel = 400_000 in
  let fb = Workloads.fatbin (Workloads.find "gobmk") in
  let always = { Config.default with migrate_prob = 1.0 } in
  let tiny_fifo =
    { Config.default with cache_bytes = 4096; cc_policy = Hipstr_psr.Code_cache.Fifo }
  in
  let tiny_clock =
    { Config.default with cache_bytes = 4096; cc_policy = Hipstr_psr.Code_cache.Clock }
  in
  let tiny_flush = { Config.default with cache_bytes = 4096 } in
  differential_fatbin "gobmk/hipstr-always" ~cfg:always ~mode:System.Hipstr ~seed:5 ~fuel fb;
  differential_fatbin "gobmk/psr-tiny-fifo" ~cfg:tiny_fifo ~mode:System.Psr_only ~seed:5 ~fuel fb;
  differential_fatbin "gobmk/psr-tiny-clock" ~cfg:tiny_clock ~mode:System.Psr_only ~seed:5 ~fuel
    fb;
  differential_fatbin "gobmk/psr-tiny-flush" ~cfg:tiny_flush ~mode:System.Psr_only ~seed:5 ~fuel
    fb;
  (* make sure the fifo config actually evicted — a no-churn run
     would vacuously pass *)
  let sys =
    System.of_fatbin ~obs:Obs.disabled ~cfg:tiny_fifo ~seed:5 ~start_isa:Desc.Cisc
      ~mode:System.Psr_only fb
  in
  ignore (System.run sys ~fuel);
  Alcotest.(check bool)
    "tiny fifo config churns" true
    (System.cache_evictions sys > 0)

(* The fuzzer's generated programs, cache on vs off, across the same
   config shapes the fuzz suite uses. *)
let test_progen_differential () =
  let fuel = 1_000_000 in
  let always = { Config.default with migrate_prob = 1.0 } in
  let tiny_fifo =
    { Config.default with cache_bytes = 4096; cc_policy = Hipstr_psr.Code_cache.Fifo }
  in
  for seed = 1 to 10 do
    let src = Progen.generate seed in
    let run ~decode_cache ?cfg ~mode ~isa s =
      let sys = System.create ~obs:Obs.disabled ?cfg ~seed:s ~start_isa:isa ~decode_cache ~mode ~src () in
      Diff_harness.run_sys sys ~fuel
    in
    List.iter
      (fun (label, mode, isa, s, cfg) ->
        let on = run ~decode_cache:true ?cfg ~mode ~isa s in
        let off = run ~decode_cache:false ?cfg ~mode ~isa s in
        Diff_harness.check (Printf.sprintf "progen %d %s" seed label) on off)
      [
        ("native-cisc", System.Native, Desc.Cisc, 1, None);
        ("native-risc", System.Native, Desc.Risc, 1, None);
        ("psr", System.Psr_only, Desc.Cisc, 1 + (seed * 7), None);
        ("hipstr", System.Hipstr, Desc.Cisc, 4 + seed, Some always);
        ("psr-tiny-fifo", System.Psr_only, Desc.Cisc, 7 + (seed * 5), Some tiny_fifo);
      ]
  done

(* ------------------------------------------------------------------ *)
(* Mem: regions, generations, fast paths, cstrings *)

let test_mem_watch_generations () =
  let m = Mem.create 4096 in
  let r = Mem.watch m ~lo:1024 ~hi:2048 in
  Alcotest.(check int) "fresh region" 0 (Mem.generation r);
  Mem.write8 m 1024 0xAB;
  Alcotest.(check int) "write8 bumps" 1 (Mem.generation r);
  Mem.write8 m 1023 0xAB;
  Mem.write8 m 2048 0xAB;
  Alcotest.(check int) "outside writes don't" 1 (Mem.generation r);
  Mem.write32 m 2044 0xDEAD;
  Alcotest.(check int) "write32 in region bumps once" 2 (Mem.generation r);
  Mem.blit_string m 1500 "xyz";
  Alcotest.(check int) "blit bumps once" 3 (Mem.generation r);
  Mem.unsafe_write8 m 1025 1;
  Alcotest.(check int) "unsafe_write8 still hooks" 4 (Mem.generation r);
  ignore (Mem.read32 m 1024);
  ignore (Mem.read8 m 1024);
  Alcotest.(check int) "reads never bump" 4 (Mem.generation r);
  (* straddling blit bumps both regions *)
  let r2 = Mem.watch m ~lo:2048 ~hi:2060 in
  Mem.blit_string m 2040 "0123456789ab";
  Alcotest.(check int) "straddle bumps left" 5 (Mem.generation r);
  Alcotest.(check int) "straddle bumps right" 1 (Mem.generation r2)

let test_mem_region_registry () =
  let m = Mem.create 4096 in
  let r = Mem.watch m ~lo:100 ~hi:200 in
  let r' = Mem.watch m ~lo:100 ~hi:200 in
  Alcotest.(check bool) "same bounds dedupe" true (r == r');
  Alcotest.(check bool) "region_of inside" true (Mem.region_of m 150 = Some r);
  Alcotest.(check bool) "region_of at hi is outside" true (Mem.region_of m 200 = None);
  Alcotest.(check int) "region_lo" 100 (Mem.region_lo r);
  Alcotest.(check int) "region_hi" 200 (Mem.region_hi r);
  Alcotest.check_raises "overlap rejected" (Invalid_argument "Mem.watch: overlapping region")
    (fun () -> ignore (Mem.watch m ~lo:150 ~hi:300));
  Alcotest.check_raises "bad bounds rejected" (Invalid_argument "Mem.watch: bad region bounds")
    (fun () -> ignore (Mem.watch m ~lo:10 ~hi:10))

let test_mem_word_fast_path_edges () =
  let m = Mem.create 64 in
  Mem.write32 m 60 0x7FFFFFFF;
  Alcotest.(check int) "last aligned word" 0x7FFFFFFF (Mem.read32 m 60);
  Mem.write32 m 0 (-123);
  Alcotest.(check int) "signed round-trip" (-123) (Mem.read32 m 0);
  (* the slow path must fault with the same offending address the
     byte-by-byte implementation reported *)
  Alcotest.check_raises "straddling read faults at a+3" (Mem.Fault 64) (fun () ->
      ignore (Mem.read32 m 61));
  Alcotest.check_raises "negative read faults at a" (Mem.Fault (-2)) (fun () ->
      ignore (Mem.read32 m (-2)));
  Alcotest.check_raises "straddling write faults at a+3" (Mem.Fault 65) (fun () ->
      Mem.write32 m 62 0);
  Alcotest.(check int) "probe8 in bounds" (Mem.read8 m 0) (Mem.probe8 m 0);
  Alcotest.(check int) "probe8 oob is -1" (-1) (Mem.probe8 m 64);
  Alcotest.(check int) "probe8 negative is -1" (-1) (Mem.probe8 m (-1));
  let read = Mem.reader m in
  Alcotest.(check int) "reader matches probe8" (Mem.probe8 m 60) (read 60)

let test_mem_cstring_unterminated () =
  let m = Mem.create 8192 in
  Mem.blit_string m 10 "hello\000";
  Alcotest.(check string) "terminated ok" "hello" (Mem.read_cstring m 10);
  (* no NUL within the default 4096-byte limit: must raise, never
     silently truncate *)
  for i = 0 to 5000 do
    Mem.write8 m (100 + i) 0x41
  done;
  Alcotest.check_raises "unterminated raises" (Mem.Cstring_unterminated 100) (fun () ->
      ignore (Mem.read_cstring m 100));
  Alcotest.check_raises "custom limit" (Mem.Cstring_unterminated 100) (fun () ->
      ignore (Mem.read_cstring ~limit:16 m 100));
  Mem.write8 m 116 0;
  Alcotest.(check int) "limit is exclusive of the NUL" 16
    (String.length (Mem.read_cstring ~limit:17 m 100))

(* ------------------------------------------------------------------ *)
(* Decode_cache: blocks, staleness, invalidation *)

(* Assemble a loop at the CISC code base:
     base:   mov r0, #5
             jmp base
   and a straight-line block behind it. *)
let assemble mem at instrs =
  List.fold_left
    (fun pos i ->
      let s = Cisc.encode ~at:pos i in
      Mem.blit_string mem pos s;
      pos + String.length s)
    at instrs

let test_decode_cache_blocks () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" Desc.Cisc mem in
  let base = Layout.cisc_code_base in
  let _end = assemble mem base [ Minstr.Mov (Reg 0, Imm 5); Minstr.Jmp base ] in
  (match Decode_cache.lookup dc base with
  | None -> Alcotest.fail "block not cacheable"
  | Some b ->
    Alcotest.(check int) "two instructions" 2 (Array.length b.Decode_cache.db_instrs);
    Alcotest.(check bool) "ends at terminator, not bad" false b.Decode_cache.db_bad;
    Alcotest.(check bool) "fresh block not stale" false (Decode_cache.stale b));
  let st = Decode_cache.stats dc in
  Alcotest.(check int) "one miss" 1 st.Decode_cache.misses;
  ignore (Decode_cache.lookup dc base);
  Alcotest.(check int) "second lookup hits" 1 st.Decode_cache.hits;
  (* outside every watched region: uncacheable *)
  Alcotest.(check bool) "stack address uncacheable" true
    (Decode_cache.lookup dc (Layout.stack_top - 64) = None)

let test_decode_cache_self_modify () =
  let mem = Mem.create Layout.mem_size in
  let dc = Decode_cache.create ~obs:Obs.disabled ~isa:"cisc" Desc.Cisc mem in
  let base = Layout.cisc_code_base in
  ignore (assemble mem base [ Minstr.Mov (Reg 0, Imm 5); Minstr.Jmp base ]);
  let b =
    match Decode_cache.lookup dc base with Some b -> b | None -> Alcotest.fail "uncacheable"
  in
  (* any write into the region makes the block stale... *)
  Mem.write8 mem (base + 1) 0x09;
  Alcotest.(check bool) "stale after code write" true (Decode_cache.stale b);
  Decode_cache.drop dc b;
  (* ...and a fresh lookup decodes the current bytes *)
  ignore (assemble mem base [ Minstr.Mov (Reg 0, Imm 9); Minstr.Jmp base ]);
  (match Decode_cache.lookup dc base with
  | Some b' -> (
    Alcotest.(check bool) "re-decoded block fresh" false (Decode_cache.stale b');
    match b'.Decode_cache.db_instrs.(0) with
    | Minstr.Mov (_, Imm 9) -> ()
    | i ->
      Alcotest.failf "stale decode survived: %s"
        (Minstr.to_string ~reg_name:(Desc.reg_name Cisc.desc) i))
  | None -> Alcotest.fail "uncacheable after rewrite");
  let st = Decode_cache.stats dc in
  Alcotest.(check int) "drop counted" 1 st.Decode_cache.invalidations;
  Decode_cache.invalidate_all dc;
  Alcotest.(check int) "flush counted" 1 st.Decode_cache.flushes;
  Alcotest.(check int) "table empty" 0 (Decode_cache.entries dc)

(* End-to-end self-modifying code through the machine: run a loop,
   rewrite its body mid-run, keep running — the cached machine must
   see the new bytes exactly like the uncached one. *)
let test_machine_self_modify_differential () =
  let run ~decode_cache =
    let m = Machine.create ~obs:Obs.disabled ~decode_cache ~active:Desc.Cisc () in
    let mem = Machine.mem m in
    let base = Layout.cisc_code_base in
    (* add r0 += 1 ; jmp base *)
    ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 1); Minstr.Jmp base ]);
    Machine.boot m ~entry:base;
    let r1 = Machine.run m ~fuel:100 in
    (* hot loop: now rewrite the increment to 16 in place *)
    ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 16) ]);
    let r2 = Machine.run m ~fuel:100 in
    (r1, r2, (Machine.cpu m).regs.(0), Machine.instructions m, Machine.cycles m)
  in
  let t1, t2, r0_on, i_on, c_on = run ~decode_cache:true in
  let t1', t2', r0_off, i_off, c_off = run ~decode_cache:false in
  Alcotest.(check bool) "both out of fuel (1st)" true (t1 = None && t1' = None);
  Alcotest.(check bool) "both out of fuel (2nd)" true (t2 = None && t2' = None);
  Alcotest.(check int) "r0 identical" r0_off r0_on;
  Alcotest.(check int) "instructions identical" i_off i_on;
  Alcotest.(check bool) "cycles identical" true (c_on = c_off);
  (* 100 fuel of a 2-instruction loop at +1, then 100 at +16 *)
  Alcotest.(check int) "r0 reflects the rewritten body" (50 + (50 * 16)) r0_on;
  (* the cached run must actually have noticed the rewrite *)
  let m = Machine.create ~obs:Obs.disabled ~active:Desc.Cisc () in
  let mem = Machine.mem m in
  let base = Layout.cisc_code_base in
  ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 1); Minstr.Jmp base ]);
  Machine.boot m ~entry:base;
  ignore (Machine.run m ~fuel:100);
  ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 16) ]);
  ignore (Machine.run m ~fuel:100);
  match Machine.decode_cache_stats m Desc.Cisc with
  | None -> Alcotest.fail "expected a decode cache"
  | Some st ->
    Alcotest.(check bool) "rewrite invalidated at least one block" true
      (st.Decode_cache.invalidations > 0)

let test_context_switch_flush_drops_blocks () =
  let m = Machine.create ~obs:Obs.disabled ~active:Desc.Cisc () in
  let mem = Machine.mem m in
  let base = Layout.cisc_code_base in
  ignore (assemble mem base [ Minstr.Binop (Add, Reg 0, Imm 1); Minstr.Jmp base ]);
  Machine.boot m ~entry:base;
  ignore (Machine.run m ~fuel:50);
  let st =
    match Machine.decode_cache_stats m Desc.Cisc with
    | Some st -> st
    | None -> Alcotest.fail "expected a decode cache"
  in
  let inv_before = st.Decode_cache.invalidations in
  Machine.context_switch_flush m;
  Alcotest.(check int) "flush counted" 1 st.Decode_cache.flushes;
  Alcotest.(check bool) "cached blocks dropped" true
    (st.Decode_cache.invalidations > inv_before);
  (* and the machine still runs correctly from a cold table *)
  ignore (Machine.run m ~fuel:50);
  Alcotest.(check int) "instructions keep counting" 100 (Machine.instructions m)

(* The --no-decode-cache escape hatch really disables it. *)
let test_escape_hatch () =
  let m = Machine.create ~obs:Obs.disabled ~decode_cache:false ~active:Desc.Cisc () in
  Alcotest.(check bool) "no stats without a cache" true
    (Machine.decode_cache_stats m Desc.Cisc = None);
  let fb = Workloads.fatbin (Workloads.find "bzip2") in
  let sys =
    System.of_fatbin ~obs:Obs.disabled ~decode_cache:true ~seed:1 ~start_isa:Desc.Cisc
      ~mode:System.Native fb
  in
  ignore (System.run sys ~fuel:50_000);
  match Machine.decode_cache_stats (System.machine sys) Desc.Cisc with
  | None -> Alcotest.fail "expected a decode cache"
  | Some st ->
    (* with chaining on, most re-entries bypass the hashtable probe as
       chain follows, so count both kinds of warm hit *)
    Alcotest.(check bool) "cache saw real traffic" true
      (st.Decode_cache.hits + st.Decode_cache.chain_follows > st.Decode_cache.misses)

let () =
  Alcotest.run "interp"
    [
      ( "differential",
        [
          Alcotest.test_case "all workloads, all modes" `Quick test_workload_differential;
          Alcotest.test_case "migration/eviction churn" `Quick test_churn_differential;
          Alcotest.test_case "progen programs" `Quick test_progen_differential;
        ] );
      ( "mem",
        [
          Alcotest.test_case "watch generations" `Quick test_mem_watch_generations;
          Alcotest.test_case "region registry" `Quick test_mem_region_registry;
          Alcotest.test_case "word fast-path edges" `Quick test_mem_word_fast_path_edges;
          Alcotest.test_case "cstring unterminated" `Quick test_mem_cstring_unterminated;
        ] );
      ( "decode-cache",
        [
          Alcotest.test_case "blocks and stats" `Quick test_decode_cache_blocks;
          Alcotest.test_case "self-modify staleness" `Quick test_decode_cache_self_modify;
          Alcotest.test_case "machine self-modify differential" `Quick
            test_machine_self_modify_differential;
          Alcotest.test_case "context-switch flush" `Quick test_context_switch_flush_drops_blocks;
          Alcotest.test_case "escape hatch" `Quick test_escape_hatch;
        ] );
    ]
