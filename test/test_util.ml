module Rng = Hipstr_util.Rng
module W32 = Hipstr_util.Wrap32
module Stats = Hipstr_util.Stats
module Table = Hipstr_util.Table

let test_rng_deterministic () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000000) (Rng.int b 1000000)
  done

let test_rng_bounds () =
  let g = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int g 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_split_independent () =
  let g = Rng.create 1 in
  let a = Rng.split g in
  let b = Rng.split g in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_permutation () =
  let g = Rng.create 3 in
  let p = Rng.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_distinct () =
  let g = Rng.create 5 in
  for _ = 1 to 100 do
    let s = Rng.sample_distinct g 10 50 in
    Alcotest.(check int) "count" 10 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> if v < 0 || v >= 50 then Alcotest.fail "range") s
  done

let test_wrap32_basics () =
  Alcotest.(check int) "wrap max" (-2147483648) (W32.wrap 0x80000000);
  Alcotest.(check int) "wrap -1" (-1) (W32.wrap 0xFFFFFFFF);
  Alcotest.(check int) "add overflow" (-2147483648) (W32.add 0x7FFFFFFF 1);
  Alcotest.(check int) "unsigned of -1" 0xFFFFFFFF (W32.unsigned (-1));
  Alcotest.(check int) "mul wrap" 0 (W32.mul 0x10000 0x10000);
  Alcotest.(check int) "div by zero" 0 (W32.sdiv 5 0);
  Alcotest.(check int) "shl mask" 2 (W32.shl 1 33);
  Alcotest.(check int) "sar sign" (-1) (W32.sar (-2) 1);
  Alcotest.(check int) "shr unsigned" 0x7FFFFFFF (W32.shr (-1) 1)

let test_wrap32_flags () =
  Alcotest.(check bool) "carry" true (W32.carry_add (-1) 1);
  Alcotest.(check bool) "no carry" false (W32.carry_add 1 1);
  Alcotest.(check bool) "borrow" true (W32.borrow_sub 0 1);
  Alcotest.(check bool) "overflow add" true (W32.overflow_add 0x7FFFFFFF 1);
  Alcotest.(check bool) "no overflow" false (W32.overflow_add 1 1);
  Alcotest.(check bool) "overflow sub" true (W32.overflow_sub (-2147483648) 1)

let test_wrap32_bytes () =
  let v = W32.of_bytes 0x78 0x56 0x34 0x12 in
  Alcotest.(check int) "assemble" 0x12345678 v;
  Alcotest.(check int) "byte 0" 0x78 (W32.byte v 0);
  Alcotest.(check int) "byte 3" 0x12 (W32.byte v 3);
  Alcotest.(check int) "roundtrip negative" (-1) (W32.of_bytes 0xFF 0xFF 0xFF 0xFF)

let prop_wrap_add_assoc =
  QCheck.Test.make ~count:1000 ~name:"wrap32 add associativity"
    QCheck.(triple int int int)
    (fun (a, b, c) -> W32.add (W32.add a b) c = W32.add a (W32.add b c))

let prop_wrap_idempotent =
  QCheck.Test.make ~count:1000 ~name:"wrap32 wrap idempotent" QCheck.int (fun v ->
      W32.wrap (W32.wrap v) = W32.wrap v)

let prop_unsigned_range =
  QCheck.Test.make ~count:1000 ~name:"unsigned in range" QCheck.int (fun v ->
      let u = W32.unsigned v in
      u >= 0 && u <= 0xFFFFFFFF)

let test_percentile () =
  let xs = [ 15.; 20.; 35.; 40.; 50. ] in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 15. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" 50. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p50 matches median" (Stats.median xs) (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "interpolates between order stats" 29. (Stats.percentile xs 40.);
  (* regression: a percentile of no data used to read as a silent 0.,
     which hid zero-admission fleet runs; it must refuse instead *)
  Alcotest.check_raises "empty data refuses" (Invalid_argument "Stats.percentile: empty data")
    (fun () -> ignore (Stats.percentile [] 50.));
  Alcotest.check_raises "q out of range refuses"
    (Invalid_argument "Stats.percentile: q outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs 100.5))

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check string) "percent" "50.0%" (Stats.percent 0.5);
  Alcotest.(check (float 1e-9)) "log2" 10. (Stats.log2 1024.);
  Alcotest.(check (float 1e-9)) "clamp" 1. (Stats.clamp ~lo:0. ~hi:1. 5.)

let test_table_render () =
  let t = Table.create [ "a"; "bbb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "keeps rows in order" true
    (let i1 = String.index s '1' and i3 = String.index s '3' in
     i1 < i3)

module Json = Hipstr_util.Json

let test_json_render () =
  let v =
    Json.Obj
      [
        ("n", Json.Num 42.);
        ("frac", Json.Num 1.5);
        ("s", Json.Str "a\"b\nc");
        ("l", Json.List [ Json.Null; Json.Bool true; Json.num_of_int (-3) ]);
        ("nan", Json.Num Float.nan);
      ]
  in
  Alcotest.(check string) "canonical compact form"
    "{\"n\":42,\"frac\":1.5,\"s\":\"a\\\"b\\nc\",\"l\":[null,true,-3],\"nan\":null}"
    (Json.to_string v);
  (* integral floats render as integers — the property cycle counts
     rely on *)
  Alcotest.(check string) "integral float" "12345" (Json.to_string (Json.Num 12345.))

let test_json_roundtrip () =
  let check_rt s =
    match Json.parse s with
    | Error e -> Alcotest.failf "parse %S: %s" s e
    | Ok v -> Alcotest.(check string) ("round-trip " ^ s) s (Json.to_string v)
  in
  List.iter check_rt
    [
      "null"; "true"; "false"; "0"; "-7"; "1.5"; "\"\""; "\"x\\\"y\"";
      "[]"; "[1,2,3]"; "{}"; "{\"a\":[{\"b\":null}],\"c\":\"d\"}";
    ];
  (* whitespace tolerated on parse, normalized on print *)
  (match Json.parse " { \"a\" : [ 1 , 2 ] } " with
  | Ok v -> Alcotest.(check string) "normalizes" "{\"a\":[1,2]}" (Json.to_string v)
  | Error e -> Alcotest.failf "whitespace parse failed: %s" e);
  (* pretty output parses back to the same value *)
  let v = Json.Obj [ ("a", Json.List [ Json.Num 1.; Json.Obj [ ("b", Json.Str "c") ] ]) ] in
  match Json.parse (Json.to_string_pretty v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trips" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Num 1.); ("b", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "a" v = Some (Json.Num 1.));
  Alcotest.(check bool) "absent" true (Json.member "z" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.List []) = None)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
        ] );
      ( "wrap32",
        [
          Alcotest.test_case "basics" `Quick test_wrap32_basics;
          Alcotest.test_case "flags" `Quick test_wrap32_flags;
          Alcotest.test_case "bytes" `Quick test_wrap32_bytes;
          QCheck_alcotest.to_alcotest prop_wrap_add_assoc;
          QCheck_alcotest.to_alcotest prop_wrap_idempotent;
          QCheck_alcotest.to_alcotest prop_unsigned_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "table" `Quick test_table_render;
        ] );
      ( "json",
        [
          Alcotest.test_case "canonical rendering" `Quick test_json_render;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
    ]
