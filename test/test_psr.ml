(* The central correctness property of the whole system: legitimate
   execution under PSR (any seed, any optimization level) and under
   HIPStR (with forced and probabilistic migrations) must be
   observationally identical to native execution. *)

module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Reloc_map = Hipstr_psr.Reloc_map
module Code_cache = Hipstr_psr.Code_cache
module Vm = Hipstr_psr.Vm
module Compile = Hipstr_compiler.Compile
module Fatbin = Hipstr_compiler.Fatbin
module Machine = Hipstr_machine.Machine
module Rng = Hipstr_util.Rng

let fuel = 3_000_000

let run_mode ?cfg ?seed ~mode ~isa src =
  let sys = System.create ?cfg ?seed ~start_isa:isa ~mode ~src () in
  let outcome = System.run sys ~fuel in
  (outcome, System.output sys, sys)

let expect_finished name outcome =
  match outcome with
  | System.Finished _ -> ()
  | System.Shell_spawned -> Alcotest.failf "%s: unexpected shell" name
  | System.Killed m -> Alcotest.failf "%s: killed: %s" name m
  | System.Out_of_fuel -> Alcotest.failf "%s: out of fuel" name

let differential ?(seeds = [ 1; 2; 42 ]) ?(cfg = Config.default) src =
  List.iter
    (fun isa ->
      let native_out =
        let o, out, _ = run_mode ~mode:System.Native ~isa src in
        expect_finished "native" o;
        out
      in
      List.iter
        (fun seed ->
          let o, out, _ = run_mode ~cfg ~seed ~mode:System.Psr_only ~isa src in
          expect_finished (Printf.sprintf "psr seed %d" seed) o;
          Alcotest.(check (list int)) (Printf.sprintf "psr output (seed %d)" seed) native_out out)
        seeds)
    [ Desc.Cisc; Desc.Risc ]

let kernel_src =
  {| int acc[16];
     int mix(int a, int b) { return (a * 31 + b) ^ (a >> 3); }
     int main() {
       int i;
       int h = 17;
       for (i = 0; i < 200; i = i + 1) {
         h = mix(h, i);
         acc[i % 16] = acc[i % 16] + (h & 255);
       }
       int total = 0;
       for (i = 0; i < 16; i = i + 1) { total = total + acc[i]; }
       print(total);
       print(h);
       return 0;
     } |}

let test_psr_simple () = differential "int main() { print(41 + 1); return 0; }"

let test_psr_kernel () = differential kernel_src

let test_psr_calls_and_arrays () =
  differential
    {| int table[8] = {3, 1, 4, 1, 5, 9, 2, 6};
       int sum(int p, int n) {
         int i;
         int acc = 0;
         for (i = 0; i < n; i = i + 1) { acc = acc + p[i]; }
         return acc;
       }
       int rev(int p, int n) {
         int i;
         for (i = 0; i < n / 2; i = i + 1) {
           int tmp = p[i];
           p[i] = p[n - 1 - i];
           p[n - 1 - i] = tmp;
         }
         return 0;
       }
       int main() {
         int local[8];
         int i;
         for (i = 0; i < 8; i = i + 1) { local[i] = table[i] * 2; }
         print(sum(&local[0], 8));
         rev(&local[0], 8);
         print(local[0]);
         print(local[7]);
         return 0;
       } |}

let test_psr_recursion () =
  differential
    {| int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
       int main() { print(fib(12)); return 0; } |}

let test_psr_function_pointers () =
  differential
    {| int twice(int x) { return 2 * x; }
       int thrice(int x) { return 3 * x; }
       int apply(int f, int x) { return (*f)(x); }
       int main() {
         print(apply(&twice, 10));
         print(apply(&thrice, 10));
         int i;
         int acc = 0;
         for (i = 0; i < 6; i = i + 1) {
           int g = (i & 1) ? &twice : &thrice;
           acc = acc + (*g)(i);
         }
         print(acc);
         return 0;
       } |}

let test_psr_deep_stack () =
  differential
    {| int layer3(int x) { int buf[4]; buf[0] = x; buf[3] = x * 2; return buf[0] + buf[3]; }
       int layer2(int x) { return layer3(x + 1) * 2; }
       int layer1(int x) { return layer2(x + 1) + layer3(x); }
       int main() {
         int i;
         int acc = 0;
         for (i = 0; i < 20; i = i + 1) { acc = acc + layer1(i); }
         print(acc);
         return 0;
       } |}

let test_psr_all_opt_levels () =
  List.iter
    (fun opt_level ->
      let cfg = { Config.default with opt_level } in
      List.iter
        (fun isa ->
          let native_out =
            let o, out, _ = run_mode ~mode:System.Native ~isa kernel_src in
            expect_finished "native" o;
            out
          in
          let o, out, _ = run_mode ~cfg ~seed:7 ~mode:System.Psr_only ~isa kernel_src in
          expect_finished (Printf.sprintf "psr O%d" opt_level) o;
          Alcotest.(check (list int)) (Printf.sprintf "O%d output" opt_level) native_out out)
        [ Desc.Cisc; Desc.Risc ])
    [ 0; 1; 2; 3 ]

let test_psr_pad_sizes () =
  List.iter
    (fun pad_bytes ->
      let cfg = { Config.default with pad_bytes } in
      let o, out, _ = run_mode ~cfg ~seed:3 ~mode:System.Psr_only ~isa:Desc.Cisc kernel_src in
      expect_finished (Printf.sprintf "pad %d" pad_bytes) o;
      let native_out =
        let o', out', _ = run_mode ~mode:System.Native ~isa:Desc.Cisc kernel_src in
        expect_finished "native" o';
        out'
      in
      Alcotest.(check (list int)) (Printf.sprintf "pad %d output" pad_bytes) native_out out)
    [ 1024; 8192; 65536 ]

let test_psr_tiny_cache_flushes () =
  (* A cache smaller than the translation headroom flushes before
     every unit — extreme thrash, still correct output. *)
  let cfg = { Config.default with cache_bytes = 4 * 1024 } in
  let o, out, sys = run_mode ~cfg ~seed:5 ~mode:System.Psr_only ~isa:Desc.Cisc kernel_src in
  expect_finished "tiny cache" o;
  let native_out =
    let o', out', _ = run_mode ~mode:System.Native ~isa:Desc.Cisc kernel_src in
    expect_finished "native" o';
    out'
  in
  Alcotest.(check (list int)) "tiny cache output" native_out out;
  let vm = System.vm sys Desc.Cisc in
  Alcotest.(check bool) "flushed at least once" true
    (Hipstr_psr.Code_cache.flushes (Vm.cache vm) >= 1)

let test_eviction_vs_flush_differential () =
  (* The acceptance invariant of block-granular eviction: on the
     differential suite (default capacity, so translation behavior is
     the only thing the policy could perturb) flush, fifo and clock
     produce identical outputs, suspicious-transfer counts and
     migration counts. Checked through the shared harness with the
     observational mask — the policies are *allowed* to differ in
     instructions and cycles (retranslation costs differ by design),
     unlike the host-only fast paths. *)
  let run_policy policy =
    let cfg = { Config.default with migrate_prob = 1.0; cc_policy = policy } in
    let o, _, sys = run_mode ~cfg ~seed:11 ~mode:System.Hipstr ~isa:Desc.Cisc kernel_src in
    expect_finished (Code_cache.policy_name policy) o;
    Diff_harness.fingerprint sys o
  in
  let flush = run_policy Code_cache.Flush in
  List.iter
    (fun policy ->
      let fp = run_policy policy in
      Diff_harness.check ~mask:Diff_harness.observational
        (Code_cache.policy_name policy ^ " vs flush")
        flush fp)
    [ Code_cache.Fifo; Code_cache.Clock ]

let test_tiny_cache_eviction_policies () =
  (* Same 4 KiB cache that forces wholesale flushing under the legacy
     policy: fifo/clock must stay fault-free and output-identical to
     native, with zero wholesale flushes. *)
  let native_out =
    let o, out, _ = run_mode ~mode:System.Native ~isa:Desc.Cisc kernel_src in
    expect_finished "native" o;
    out
  in
  List.iter
    (fun policy ->
      let name = Code_cache.policy_name policy in
      let cfg = { Config.default with cache_bytes = 4 * 1024; cc_policy = policy } in
      let o, out, sys = run_mode ~cfg ~seed:5 ~mode:System.Psr_only ~isa:Desc.Cisc kernel_src in
      expect_finished name o;
      Alcotest.(check (list int)) (name ^ " tiny-cache output") native_out out;
      Alcotest.(check int) (name ^ " no wholesale flushes") 0 (System.cache_flushes sys))
    [ Code_cache.Fifo; Code_cache.Clock ]

(* A code footprint well past 4 KiB, walked cyclically so FIFO
   eviction guarantees capacity misses on re-entry — the memo's
   worst/best case. *)
let churn_src =
  let nfuns = 32 in
  let buf = Buffer.create 4096 in
  for f = 0 to nfuns - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "int f%d(int x) { int i; int a = x + %d; for (i = 0; i < 4; i = i + 1) { a = a * %d + \
          i; a = a ^ (a >> %d); a = a + (a & %d); } return a; }\n"
         f f (29 + f) (1 + (f mod 5)) (63 + f))
  done;
  Buffer.add_string buf "int main() { int r; int h = 1;\nfor (r = 0; r < 8; r = r + 1) {\n";
  for f = 0 to nfuns - 1 do
    Buffer.add_string buf (Printf.sprintf "h = h + f%d(h);\n" f)
  done;
  Buffer.add_string buf "}\nprint(h); return 0; }\n";
  Buffer.contents buf

let test_tiny_cache_memo_hits () =
  let native_out =
    let o, out, _ = run_mode ~mode:System.Native ~isa:Desc.Cisc churn_src in
    expect_finished "native" o;
    out
  in
  let cfg =
    { Config.default with cache_bytes = 4 * 1024; cc_policy = Code_cache.Fifo }
  in
  let o, out, sys = run_mode ~cfg ~seed:5 ~mode:System.Psr_only ~isa:Desc.Cisc churn_src in
  expect_finished "fifo churn" o;
  Alcotest.(check (list int)) "churn output" native_out out;
  Alcotest.(check bool) "blocks were evicted" true (System.cache_evictions sys > 0);
  Alcotest.(check bool) "memo served re-installs" true (System.memo_installs sys > 0);
  Alcotest.(check int) "no wholesale flushes" 0 (System.cache_flushes sys)

let test_hipstr_with_migrations () =
  (* Full HIPStR with migration probability 1: every suspicious event
     migrates. Output must still match native. *)
  let cfg = { Config.default with migrate_prob = 1.0 } in
  List.iter
    (fun isa ->
      let native_out =
        let o, out, _ = run_mode ~mode:System.Native ~isa kernel_src in
        expect_finished "native" o;
        out
      in
      let o, out, sys = run_mode ~cfg ~seed:11 ~mode:System.Hipstr ~isa kernel_src in
      expect_finished "hipstr" o;
      Alcotest.(check (list int)) "hipstr output" native_out out;
      ignore (System.security_migrations sys))
    [ Desc.Cisc; Desc.Risc ]

let test_hipstr_forced_migration () =
  let cfg = { Config.default with migrate_prob = 0.0 } in
  let native_out =
    let o, out, _ = run_mode ~mode:System.Native ~isa:Desc.Cisc kernel_src in
    expect_finished "native" o;
    out
  in
  let sys =
    System.create ~cfg ~seed:13 ~start_isa:Desc.Cisc ~mode:System.Hipstr ~src:kernel_src ()
  in
  (* run a little, then force a migration at the next return *)
  (match System.run sys ~fuel:2000 with
  | System.Out_of_fuel -> ()
  | _ -> Alcotest.fail "program finished before forced migration");
  System.request_migration sys;
  (match System.run sys ~fuel with
  | System.Finished _ -> ()
  | System.Killed m -> Alcotest.failf "killed after forced migration: %s" m
  | System.Shell_spawned -> Alcotest.fail "shell?"
  | System.Out_of_fuel -> Alcotest.fail "out of fuel");
  Alcotest.(check int) "one forced migration" 1 (System.forced_migrations sys);
  Alcotest.(check bool) "ended on the other core" true (Machine.active (System.machine sys) = Desc.Risc || System.security_migrations sys > 0);
  Alcotest.(check (list int)) "output preserved across migration" native_out (System.output sys);
  match System.last_migration sys with
  | Some r ->
    Alcotest.(check bool) "frames walked" true (r.Hipstr_migration.Transform.r_frames >= 1);
    Alcotest.(check bool) "migration complete" true r.Hipstr_migration.Transform.r_complete
  | None -> Alcotest.fail "no migration recorded"

let () =
  Alcotest.run "psr"
    [
      ( "differential",
        [
          Alcotest.test_case "simple" `Quick test_psr_simple;
          Alcotest.test_case "kernel" `Quick test_psr_kernel;
          Alcotest.test_case "calls and arrays" `Quick test_psr_calls_and_arrays;
          Alcotest.test_case "recursion" `Quick test_psr_recursion;
          Alcotest.test_case "function pointers" `Quick test_psr_function_pointers;
          Alcotest.test_case "deep stack" `Quick test_psr_deep_stack;
          Alcotest.test_case "all opt levels" `Quick test_psr_all_opt_levels;
          Alcotest.test_case "pad sizes" `Quick test_psr_pad_sizes;
          Alcotest.test_case "tiny cache flushes" `Quick test_psr_tiny_cache_flushes;
          Alcotest.test_case "eviction vs flush differential" `Quick
            test_eviction_vs_flush_differential;
          Alcotest.test_case "tiny cache eviction policies" `Quick
            test_tiny_cache_eviction_policies;
          Alcotest.test_case "tiny cache memo hits" `Quick test_tiny_cache_memo_hits;
          Alcotest.test_case "hipstr with migrations" `Quick test_hipstr_with_migrations;
          Alcotest.test_case "forced migration" `Quick test_hipstr_forced_migration;
        ] );
    ]
