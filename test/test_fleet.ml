(* The fleet serving subsystem: seeded traffic generation is
   reproducible, parallel waves are bit-identical to sequential ones
   (with and without work stealing), and the serving outcomes carry
   the paper's security story — the overflow mix that kills a native
   fleet is neutralized under PSR/HIPStR. *)

module Obs = Hipstr_obs.Obs
module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Cmp = Hipstr_cmp.Cmp
module Traffic = Hipstr_fleet.Traffic
module Fleet = Hipstr_fleet.Fleet

(* a hostile-heavy mix so every kind shows up in small traces *)
let test_mix =
  { Traffic.mx_valid = 60; mx_oversized = 20; mx_malformed = 10; mx_attack = 10 }

let gen ?(seed = 7) ?(procs = 32) ?(arrival = Traffic.Poisson 50.) () =
  Traffic.generate ~seed ~procs ~arrival ~mix:test_mix ()

(* --- generator ----------------------------------------------------- *)

let test_generate_reproducible () =
  let a = gen () and b = gen () in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = gen ~seed:8 () in
  Alcotest.(check bool) "different seed, different trace" true (a <> c);
  let arrivals = List.map (fun c -> c.Traffic.cn_arrival) a in
  Alcotest.(check bool) "arrivals are sorted" true
    (List.sort compare arrivals = arrivals);
  List.iteri
    (fun i c ->
      Alcotest.(check int) "ids are dense" i c.Traffic.cn_id;
      Alcotest.(check int) "tenants tile" (i mod 4) c.Traffic.cn_tenant;
      Alcotest.(check bool) "every conn has a line" true (Array.length c.Traffic.cn_line > 0))
    a;
  (* every kind with positive weight appears in a 32-conn trace of
     this mix; a zero-weight kind never does *)
  let kinds_of t = List.sort_uniq compare (List.map (fun c -> c.Traffic.cn_kind) t) in
  Alcotest.(check int) "all four kinds drawn" 4 (List.length (kinds_of a));
  let only_valid =
    Traffic.generate ~seed:7 ~procs:32 ~arrival:(Traffic.Poisson 50.)
      ~mix:{ Traffic.mx_valid = 1; mx_oversized = 0; mx_malformed = 0; mx_attack = 0 }
      ()
  in
  Alcotest.(check (list bool)) "zero weights never drawn" []
    (List.filter (fun b -> not b)
       (List.map (fun c -> c.Traffic.cn_kind = Traffic.Valid) only_valid)
    |> List.map (fun _ -> false))

let test_bursty_batches () =
  let t = gen ~arrival:(Traffic.Bursty { rate = 50.; burst = 4 }) () in
  (* within a burst the gap is zero; the long-run count is unchanged *)
  List.iteri
    (fun i c ->
      if i mod 4 <> 0 then
        let prev = List.nth t (i - 1) in
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "conn %d rides its burst" i)
          prev.Traffic.cn_arrival c.Traffic.cn_arrival)
    t;
  Alcotest.(check int) "all connections generated" 32 (List.length t)

let test_parsers () =
  (match Traffic.arrival_of_string "poisson:25" with
  | Ok (Traffic.Poisson r) -> Alcotest.(check (float 1e-9)) "poisson rate" 25. r
  | _ -> Alcotest.fail "poisson:25 rejected");
  (match Traffic.arrival_of_string "bursty:12.5:8" with
  | Ok (Traffic.Bursty { rate; burst }) ->
    Alcotest.(check (float 1e-9)) "bursty rate" 12.5 rate;
    Alcotest.(check int) "burst" 8 burst
  | _ -> Alcotest.fail "bursty:12.5:8 rejected");
  List.iter
    (fun s ->
      match Traffic.arrival_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" s)
    [ "poisson:0"; "poisson:-3"; "poisson"; "bursty:5:0"; "bursty:5"; "uniform:1" ];
  (match Traffic.mix_of_string "60,20,10,10" with
  | Ok m -> Alcotest.(check bool) "positional mix" true (m = test_mix)
  | Error e -> Alcotest.fail e);
  (match Traffic.mix_of_string "valid=60,oversized=20,malformed=10,attack=10" with
  | Ok m -> Alcotest.(check bool) "named mix" true (m = test_mix)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Traffic.mix_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" s)
    [ "0,0,0,0"; "1,2,3"; "-1,2,3,4"; "valid=1,bogus=2" ]

let test_parser_rejections_actionable () =
  (* each rejection names the offending part, so a bad --mix dies
     with a message the user can act on *)
  let expect_error what input needle parse =
    match parse input with
    | Ok _ -> Alcotest.failf "%s: '%s' accepted" what input
    | Error e ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        n = 0 || go 0
      in
      if not (contains e needle) then
        Alcotest.failf "%s: error for '%s' does not mention %S: %s" what input needle e
  in
  let mix = expect_error "mix" and arrival = expect_error "arrival" in
  mix "valid=3,attack=2,valid=4" "duplicate weight for 'valid'" Traffic.mix_of_string;
  mix "attack=1,attack=1" "duplicate" Traffic.mix_of_string;
  mix "0,0,0,0" "sum to zero" Traffic.mix_of_string;
  mix "valid=0,attack=0" "sum to zero" Traffic.mix_of_string;
  mix "-1,2,3,4" "negative" Traffic.mix_of_string;
  mix "valid=1,bogus=2" "unknown request kind 'bogus'" Traffic.mix_of_string;
  arrival "poisson:0" "must be positive" Traffic.arrival_of_string;
  arrival "poisson:abc" "rate" Traffic.arrival_of_string;
  arrival "uniform:1" "unknown arrival model" Traffic.arrival_of_string;
  (* duplicates that happen to agree are still duplicates *)
  (match Traffic.mix_of_string "valid=5,valid=5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "agreeing duplicate accepted");
  (* named form with omitted kinds still works *)
  match Traffic.mix_of_string "valid=9,attack=1" with
  | Ok m ->
    Alcotest.(check int) "named valid" 9 m.Traffic.mx_valid;
    Alcotest.(check int) "omitted kind defaults to 0" 0 m.Traffic.mx_oversized
  | Error e -> Alcotest.fail e

(* --- fleet determinism --------------------------------------------- *)

let fleet_cfg ?(mode = System.Psr_only) ?(steal = true) () =
  {
    Fleet.default with
    fl_shards = 4;
    fl_mode = mode;
    fl_steal = steal;
    fl_max_live = 4;
    fl_policy = Cmp.Round_robin;
  }

let run_with_exports ?mode ?steal ~jobs () =
  let obs = Obs.create () in
  let r = Fleet.run ~jobs ~obs (fleet_cfg ?mode ?steal ()) (gen ()) in
  (r, Obs.Export.metrics_json obs, Obs.Export.audit_jsonl obs)

let test_jobs_bit_identical () =
  let r1, m1, a1 = run_with_exports ~jobs:1 () in
  let r4, m4, a4 = run_with_exports ~jobs:4 () in
  Alcotest.(check bool) "-j4 records = -j1 records" true (r1.Fleet.r_records = r4.Fleet.r_records);
  Alcotest.(check (float 1e-9)) "same makespan" r1.Fleet.r_makespan r4.Fleet.r_makespan;
  Alcotest.(check int) "same wave count" r1.Fleet.r_waves r4.Fleet.r_waves;
  Alcotest.(check string) "metrics_json bytes identical" m1 m4;
  Alcotest.(check string) "audit_jsonl bytes identical" a1 a4

let test_stealing_bit_identical () =
  let _, m_steal, a_steal = run_with_exports ~steal:true ~jobs:3 () in
  let _, m_static, a_static = run_with_exports ~steal:false ~jobs:3 () in
  Alcotest.(check string) "stealing vs static metrics" m_steal m_static;
  Alcotest.(check string) "stealing vs static audit" a_steal a_static

let test_rerun_bit_identical () =
  let _, m1, a1 = run_with_exports ~jobs:2 () in
  let _, m2, a2 = run_with_exports ~jobs:2 () in
  Alcotest.(check string) "replayed metrics identical" m1 m2;
  Alcotest.(check string) "replayed audit identical" a1 a2

(* --- live migration ------------------------------------------------- *)

let test_live_migration_bit_identical () =
  (* a fast open-loop trace piles arrivals up, so shard queues drain
     unevenly and rebalancing every wave forces cross-shard moves; the
     decision runs in the sequential post-barrier section, so -j4 must
     stay byte-identical to -j1 *)
  let conns = gen ~procs:40 ~arrival:(Traffic.Poisson 500.) () in
  let run jobs =
    let obs = Obs.create () in
    let cfg = { (fleet_cfg ()) with Fleet.fl_migrate_every = 1 } in
    let r = Fleet.run ~jobs ~obs cfg conns in
    (r, Obs.Export.metrics_json obs, Obs.Export.audit_jsonl obs)
  in
  let r1, m1, a1 = run 1 in
  let r4, m4, a4 = run 4 in
  Alcotest.(check bool) "at least one live migration" true (r1.Fleet.r_live_migrations > 0);
  Alcotest.(check int) "same migration count across jobs" r1.Fleet.r_live_migrations
    r4.Fleet.r_live_migrations;
  Alcotest.(check bool) "-j4 records = -j1 records" true (r1.Fleet.r_records = r4.Fleet.r_records);
  Alcotest.(check (float 1e-9)) "same makespan" r1.Fleet.r_makespan r4.Fleet.r_makespan;
  Alcotest.(check string) "metrics_json bytes identical" m1 m4;
  Alcotest.(check string) "audit_jsonl bytes identical" a1 a4;
  (* migration moves work, it never loses it *)
  Alcotest.(check int) "every connection served" 40 (List.length r1.Fleet.r_records);
  Alcotest.(check int) "outcome counts partition the trace" 40
    (r1.Fleet.r_completed + r1.Fleet.r_killed + r1.Fleet.r_shell + r1.Fleet.r_out_of_fuel);
  Alcotest.(check int) "no shells" 0 r1.Fleet.r_shell;
  Alcotest.(check int) "nothing spins" 0 r1.Fleet.r_out_of_fuel

let test_live_migration_counter () =
  let obs = Obs.create () in
  let cfg = { (fleet_cfg ()) with Fleet.fl_migrate_every = 1 } in
  let r = Fleet.run ~obs cfg (gen ~procs:40 ~arrival:(Traffic.Poisson 500.) ()) in
  let snap = Obs.metrics obs |> Obs.Metrics.snapshot in
  Alcotest.(check int) "fleet.live_migrations counter matches the result"
    r.Fleet.r_live_migrations
    (Obs.Metrics.counter_value snap "fleet.live_migrations");
  match List.assoc_opt "fleet.migration.cost_cycles" snap.Obs.Metrics.snap_histograms with
  | None -> Alcotest.fail "fleet.migration.cost_cycles histogram missing"
  | Some h ->
    Alcotest.(check int) "one cost sample per migration" r.Fleet.r_live_migrations
      h.Obs.Metrics.hs_count

let test_latency_percentile_empty_raises () =
  (* regression: a percentile over zero served requests used to read
     as a silent 0.; it must refuse instead *)
  let r = Fleet.run (fleet_cfg ()) [] in
  Alcotest.(check int) "no records on an empty trace" 0 (List.length r.Fleet.r_records);
  Alcotest.check_raises "empty percentile refuses"
    (Invalid_argument "Fleet.latency_percentile: no completed requests") (fun () ->
      ignore (Fleet.latency_percentile r 99.))

(* --- serving semantics --------------------------------------------- *)

let check_record_invariants r =
  List.iteri
    (fun i x ->
      Alcotest.(check int) "records sorted by id" i x.Fleet.rr_id;
      Alcotest.(check bool) "admitted after arrival" true
        (x.Fleet.rr_admitted >= x.Fleet.rr_arrival);
      Alcotest.(check bool) "finished after admission" true
        (x.Fleet.rr_finished >= x.Fleet.rr_admitted);
      Alcotest.(check bool) "latency consistent" true
        (Float.abs (x.Fleet.rr_latency -. (x.Fleet.rr_finished -. x.Fleet.rr_arrival)) < 1e-9);
      Alcotest.(check int) "shard by id" (x.Fleet.rr_id mod 4) x.Fleet.rr_shard)
    r.Fleet.r_records;
  Alcotest.(check int) "every connection served" 32 (List.length r.Fleet.r_records);
  Alcotest.(check int) "outcome counts partition the trace" 32
    (r.Fleet.r_completed + r.Fleet.r_killed + r.Fleet.r_shell + r.Fleet.r_out_of_fuel)

let test_psr_fleet_rides_out_the_mix () =
  let r = Fleet.run (fleet_cfg ~mode:System.Psr_only ()) (gen ()) in
  check_record_invariants r;
  (* relocation contains the hostile kinds: benign traffic always
     completes, a hostile line is either neutralized (completes) or
     caught as a clean wild-return kill — never a shell, never a spin *)
  Alcotest.(check int) "no shells" 0 r.Fleet.r_shell;
  Alcotest.(check int) "nothing spins" 0 r.Fleet.r_out_of_fuel;
  List.iter
    (fun x ->
      match (x.Fleet.rr_kind, x.Fleet.rr_outcome) with
      | (Traffic.Valid | Traffic.Malformed), System.Finished 0 -> ()
      | (Traffic.Valid | Traffic.Malformed), _ ->
        Alcotest.failf "benign conn %d did not complete" x.Fleet.rr_id
      | (Traffic.Oversized | Traffic.Attack), (System.Finished 0 | System.Killed _) -> ()
      | (Traffic.Oversized | Traffic.Attack), _ ->
        Alcotest.failf "hostile conn %d escaped containment" x.Fleet.rr_id)
    r.Fleet.r_records;
  Alcotest.(check bool) "most of the trace completes" true (r.Fleet.r_completed >= 24);
  Alcotest.(check bool) "throughput positive" true (Fleet.throughput r > 0.);
  let p50 = Fleet.latency_percentile r 50. and p99 = Fleet.latency_percentile r 99. in
  Alcotest.(check bool) "percentiles monotone" true (0. <= p50 && p50 <= p99)

let test_native_fleet_bleeds () =
  (* the same trace against an unprotected fleet: every oversized
     line kills its server, attacks divert or kill *)
  let r =
    Fleet.run (fleet_cfg ~mode:System.Native ()) (gen ())
  in
  check_record_invariants r;
  let kinds = Fleet.by_kind r in
  let stat k =
    let _, total, completed, killed = List.find (fun (k', _, _, _) -> k' = k) kinds in
    (total, completed, killed)
  in
  let total_o, completed_o, killed_o = stat Traffic.Oversized in
  Alcotest.(check bool) "trace has oversized lines" true (total_o > 0);
  Alcotest.(check int) "every oversized line kills a native server" total_o killed_o;
  Alcotest.(check int) "none complete" 0 completed_o;
  let total_v, completed_v, _ = stat Traffic.Valid in
  Alcotest.(check int) "valid lines still complete" total_v completed_v;
  let total_m, completed_m, _ = stat Traffic.Malformed in
  Alcotest.(check int) "malformed lines are rejected, not fatal" total_m completed_m;
  Alcotest.(check bool) "the native fleet bled" true (r.Fleet.r_killed > 0)

let test_fleet_metrics_namespaces () =
  let obs = Obs.create () in
  let r = Fleet.run ~obs (fleet_cfg ()) (gen ()) in
  let snap = Obs.metrics obs |> Obs.Metrics.snapshot in
  let counter n = Obs.Metrics.counter_value snap n in
  Alcotest.(check int) "fleet.requests" 32 (counter "fleet.requests");
  Alcotest.(check int) "fleet.completed" r.Fleet.r_completed (counter "fleet.completed");
  Alcotest.(check int) "fleet.waves" r.Fleet.r_waves (counter "fleet.waves");
  let hist n = List.assoc_opt n snap.Obs.Metrics.snap_histograms in
  (match hist "fleet.latency_cycles" with
  | None -> Alcotest.fail "fleet.latency_cycles histogram missing"
  | Some h ->
    Alcotest.(check int) "one latency sample per request" 32 h.Obs.Metrics.hs_count;
    let p99 = Obs.Metrics.p99 h in
    Alcotest.(check bool) "bucketed p99 brackets the exact one" true
      (p99 >= Fleet.latency_percentile r 99. /. 2.
      && p99 <= Float.max 1. (2. *. Fleet.latency_percentile r 99.)));
  (* per-tenant namespaces: the four tenants partition the trace *)
  let tenant_reqs = List.init 4 (fun t -> counter (Printf.sprintf "fleet.tenant.t%d.requests" t)) in
  Alcotest.(check int) "tenant requests sum to the trace" 32
    (List.fold_left ( + ) 0 tenant_reqs);
  List.iter
    (fun (t, recs) ->
      Alcotest.(check int)
        (Printf.sprintf "tenant %d counter matches records" t)
        (List.length recs)
        (counter (Printf.sprintf "fleet.tenant.t%d.requests" t)))
    (Fleet.by_tenant r);
  (* per-kind latency namespaces exist for every kind in the trace *)
  List.iter
    (fun (k, total, _, _) ->
      if total > 0 then
        match hist (Printf.sprintf "fleet.kind.%s.latency_cycles" (Traffic.kind_name k)) with
        | Some h -> Alcotest.(check int) (Traffic.kind_name k ^ " sample count") total h.Obs.Metrics.hs_count
        | None -> Alcotest.failf "fleet.kind.%s.latency_cycles missing" (Traffic.kind_name k))
    (Fleet.by_kind r)

let test_admission_cap_respected () =
  (* a one-shard fleet with max_live 2: arrivals queue but everything
     is eventually served, and queueing shows up as latency *)
  let cfg = { (fleet_cfg ()) with fl_shards = 1; fl_max_live = 2 } in
  let r = Fleet.run cfg (gen ~procs:12 ~arrival:(Traffic.Poisson 500.) ()) in
  Alcotest.(check int) "every queued connection served" 12 (List.length r.Fleet.r_records);
  Alcotest.(check bool) "queueing delays admission" true
    (List.exists (fun x -> x.Fleet.rr_admitted > x.Fleet.rr_arrival +. 1e-9) r.Fleet.r_records)

let test_latency_percentile_exact () =
  (* Fleet.latency_percentile against an independent reimplementation
     of linear-interpolated percentiles over the sorted latencies *)
  let r = Fleet.run (fleet_cfg ()) (gen ()) in
  let sorted = List.sort compare (Fleet.latencies r) in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  Alcotest.(check int) "one latency per record" (List.length r.Fleet.r_records) n;
  let exact q =
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) and hi = int_of_float (Float.ceil rank) in
    let frac = rank -. Float.floor rank in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "p%g matches the sorted list" q)
        (exact q)
        (Fleet.latency_percentile r q))
    [ 0.; 10.; 25.; 50.; 75.; 90.; 95.; 99.; 99.9; 100. ];
  Alcotest.(check (float 1e-9)) "p0 is the minimum" arr.(0) (Fleet.latency_percentile r 0.);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" arr.(n - 1)
    (Fleet.latency_percentile r 100.)

(* --- timeline ------------------------------------------------------ *)

let attack_mix =
  { Traffic.mx_valid = 55; mx_oversized = 15; mx_malformed = 5; mx_attack = 25 }

let timeline_run ~jobs conns =
  let obs = Obs.create () in
  let tl = Obs.Timeline.create ~window:20_000. () in
  let r = Fleet.run ~jobs ~obs ~timeline:tl (fleet_cfg ()) conns in
  (r, tl)

let test_timeline_windows_and_burst () =
  let conns =
    Traffic.generate ~seed:11 ~procs:64 ~arrival:(Traffic.Bursty { rate = 40.; burst = 16 })
      ~mix:attack_mix ()
  in
  let r, tl = timeline_run ~jobs:1 conns in
  Alcotest.(check bool) "at least 10 windows" true (Obs.Timeline.window_count tl >= 10);
  let windows = Obs.Timeline.windows tl in
  (* the per-wave outcome counts reconcile with the run totals *)
  let sum name =
    List.fold_left (fun acc w -> acc + Obs.Timeline.counter_value w name) 0 windows
  in
  Alcotest.(check int) "windowed completions sum to the run's" r.Fleet.r_completed
    (sum "fleet.completed");
  Alcotest.(check int) "windowed kills sum to the run's" r.Fleet.r_killed (sum "fleet.killed");
  (* per-window latency p99: under the open-loop burst the tail
     visibly spikes — the loaded windows dwarf the quiet ones *)
  let p99s =
    List.filter_map
      (fun w ->
        match Obs.Timeline.histogram w "fleet.latency_cycles" with
        | Some h when h.Obs.Metrics.hs_count > 0 -> Some (Obs.Metrics.p99 h)
        | _ -> None)
      windows
  in
  Alcotest.(check bool) "several windows carry latency samples" true (List.length p99s >= 5);
  let sorted = List.sort compare p99s in
  let quietest = List.hd sorted in
  let median = List.nth sorted (List.length sorted / 2) in
  let worst = List.nth sorted (List.length sorted - 1) in
  (* each burst deepens the admission queue, so the loaded windows'
     p99 towers over the quiet start of a burst *)
  Alcotest.(check bool) "p99 spikes during the burst" true (worst >= 2. *. quietest);
  Alcotest.(check bool) "the spike clears the median too" true (worst >= 1.5 *. median)

let test_timeline_bit_identical_across_jobs () =
  let conns =
    Traffic.generate ~seed:11 ~procs:48 ~arrival:(Traffic.Bursty { rate = 40.; burst = 12 })
      ~mix:attack_mix ()
  in
  let _, tl1 = timeline_run ~jobs:1 conns in
  let _, tl4 = timeline_run ~jobs:4 conns in
  Alcotest.(check string) "timeline_json bytes identical" (Obs.Export.timeline_json tl1)
    (Obs.Export.timeline_json tl4);
  Alcotest.(check string) "timeline_csv bytes identical" (Obs.Export.timeline_csv tl1)
    (Obs.Export.timeline_csv tl4);
  (* the SLO report derives from the timeline, so it inherits the
     byte-identity (and its cumulative columns are monotone) *)
  let obj = Obs.Slo.objective ~target:200_000. ~budget:0.1 in
  let rep1 = Obs.Slo.evaluate obj ~latency:"fleet.latency_cycles" tl1 in
  let rep4 = Obs.Slo.evaluate obj ~latency:"fleet.latency_cycles" tl4 in
  Alcotest.(check bool) "slo reports identical" true (rep1 = rep4);
  ignore
    (List.fold_left
       (fun (creq, cvio) (w : Obs.Slo.window_report) ->
         Alcotest.(check bool) "cumulative requests monotone" true
           (w.Obs.Slo.sw_cum_requests >= creq);
         Alcotest.(check bool) "cumulative violations monotone" true
           (w.Obs.Slo.sw_cum_violations >= cvio -. 1e-9);
         (w.Obs.Slo.sw_cum_requests, w.Obs.Slo.sw_cum_violations))
       (0, 0.) rep1)

let test_policies_all_serve () =
  List.iter
    (fun policy ->
      let cfg = { (fleet_cfg ()) with fl_policy = policy } in
      let r = Fleet.run cfg (gen ~procs:16 ()) in
      Alcotest.(check int) "all served" 16 (List.length r.Fleet.r_records);
      Alcotest.(check int) "no shells" 0 r.Fleet.r_shell)
    [ Cmp.Round_robin; Cmp.Load_balance; Cmp.Security_first ]

let () =
  Alcotest.run "fleet"
    [
      ( "traffic",
        [
          Alcotest.test_case "seeded generation reproducible" `Quick test_generate_reproducible;
          Alcotest.test_case "bursty arrivals batch" `Quick test_bursty_batches;
          Alcotest.test_case "arrival and mix parsers" `Quick test_parsers;
          Alcotest.test_case "parser rejections are actionable" `Quick
            test_parser_rejections_actionable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j4 bit-identical to -j1" `Quick test_jobs_bit_identical;
          Alcotest.test_case "stealing bit-identical to static" `Quick
            test_stealing_bit_identical;
          Alcotest.test_case "replay bit-identical" `Quick test_rerun_bit_identical;
        ] );
      ( "live migration",
        [
          Alcotest.test_case "migration bit-identical across jobs" `Quick
            test_live_migration_bit_identical;
          Alcotest.test_case "migration counters reconcile" `Quick test_live_migration_counter;
          Alcotest.test_case "empty percentile refuses" `Quick
            test_latency_percentile_empty_raises;
        ] );
      ( "serving",
        [
          Alcotest.test_case "psr fleet rides out the mix" `Quick test_psr_fleet_rides_out_the_mix;
          Alcotest.test_case "native fleet bleeds" `Quick test_native_fleet_bleeds;
          Alcotest.test_case "metrics namespaces" `Quick test_fleet_metrics_namespaces;
          Alcotest.test_case "admission cap respected" `Quick test_admission_cap_respected;
          Alcotest.test_case "latency percentiles exact" `Quick test_latency_percentile_exact;
          Alcotest.test_case "all policies serve" `Quick test_policies_all_serve;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "windows reconcile, burst spikes p99" `Quick
            test_timeline_windows_and_burst;
          Alcotest.test_case "bit-identical across jobs" `Quick
            test_timeline_bit_identical_across_jobs;
        ] );
    ]
