(* The packed flat-dispatch representation must be invisible twice
   over. Representation level: packing any decodable instruction into
   the three meta/payload words and unpacking must give back exactly
   the instruction and length (the encoding is total and lossless) —
   checked exhaustively over every constructor × operand-kind
   combination, by QCheck over random operand values, and over every
   instruction decodable from the real workloads' fat binaries at
   every byte offset (including gadget-style misaligned decodes).
   System level: running every workload in every mode with packed
   dispatch on and off must be bit-identical on the full Diff_harness
   fingerprint — outcome, output, instruction count, exact cycle
   float, suspicious events, migrations. *)

module Minstr = Hipstr_isa.Minstr
module Desc = Hipstr_isa.Desc
module Packed = Hipstr_machine.Packed
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Exec = Hipstr_machine.Exec
module Fatbin = Hipstr_compiler.Fatbin
module Workloads = Hipstr_workloads.Workloads
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Obs = Hipstr_obs.Obs

let show_instr (i : Minstr.t) =
  let op : Minstr.operand -> string = function
    | Reg r -> Printf.sprintf "r%d" r
    | Imm k -> Printf.sprintf "#%d" k
    | Mem { base; disp } -> Printf.sprintf "[r%d%+d]" base disp
  in
  match i with
  | Nop -> "nop"
  | Mov (d, s) -> Printf.sprintf "mov %s, %s" (op d) (op s)
  | Lea (d, b, k) -> Printf.sprintf "lea r%d, [r%d%+d]" d b k
  | Binop (o, d, s) ->
    Printf.sprintf "binop%d %s, %s"
      (match o with
      | Add -> 0 | Sub -> 1 | Mul -> 2 | Divs -> 3 | Rems -> 4 | And -> 5
      | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10)
      (op d) (op s)
  | Cmp (a, b) -> Printf.sprintf "cmp %s, %s" (op a) (op b)
  | Push s -> "push " ^ op s
  | Pop d -> "pop " ^ op d
  | Jmp t -> Printf.sprintf "jmp 0x%x" t
  | Jcc (_, t) -> Printf.sprintf "jcc 0x%x" t
  | Jmpr s -> "jmp *" ^ op s
  | Call t -> Printf.sprintf "call 0x%x" t
  | Callr s -> "call *" ^ op s
  | Ret -> "ret"
  | Retr r -> Printf.sprintf "ret r%d" r
  | Retrat s -> "ret.rat " ^ op s
  | Callrat { target; src_ret } -> Printf.sprintf "call.rat 0x%x (ret 0x%x)" target src_ret
  | Syscall -> "syscall"
  | Trap a -> Printf.sprintf "trap 0x%x" a

let check_roundtrip label i len =
  let m, v1, v2 = Packed.pack i len in
  let i', len' = Packed.unpack m v1 v2 in
  if i' <> i || len' <> len then
    Alcotest.failf "%s: %s (len %d) round-tripped to %s (len %d)" label (show_instr i) len
      (show_instr i') len'

(* ------------------------------------------------------------------ *)
(* Exhaustive constructor × operand-kind sweep. Immediates and
   displacements cover the signed 32-bit corners; registers cover the
   4-bit field corners. Lengths cycle through the 1..12 range real
   encoders emit. *)

let test_roundtrip_exhaustive () =
  let imms = [ 0; 1; -1; 42; -1000; 0x7fffffff; -0x80000000 ] in
  let operands =
    List.concat
      [
        List.map (fun r -> Minstr.Reg r) [ 0; 1; 7; 15 ];
        List.map (fun k -> Minstr.Imm k) imms;
        List.concat_map
          (fun base -> List.map (fun disp -> Minstr.Mem { base; disp }) imms)
          [ 0; 3; 15 ];
      ]
  in
  let targets = [ 0; 1; Layout.exit_sentinel; Layout.mem_size - 1 ] in
  let instrs =
    List.concat
      [
        [ Minstr.Nop; Minstr.Ret; Minstr.Syscall ];
        List.concat_map
          (fun d -> List.map (fun s -> Minstr.Mov (d, s)) operands)
          operands;
        List.concat_map
          (fun (op : Minstr.binop) ->
            List.concat_map
              (fun d -> List.map (fun s -> Minstr.Binop (op, d, s)) operands)
              operands)
          (Array.to_list Minstr.all_binops);
        List.concat_map (fun a -> List.map (fun b -> Minstr.Cmp (a, b)) operands) operands;
        List.concat_map (fun d -> List.map (fun k -> Minstr.Lea (d, 15 - d, k)) imms) [ 0; 5; 15 ];
        List.map (fun s -> Minstr.Push s) operands;
        List.map (fun d -> Minstr.Pop d) operands;
        List.map (fun t -> Minstr.Jmp t) targets;
        List.concat_map
          (fun (c : Minstr.cond) -> List.map (fun t -> Minstr.Jcc (c, t)) targets)
          (Array.to_list Minstr.all_conds);
        List.map (fun s -> Minstr.Jmpr s) operands;
        List.map (fun t -> Minstr.Call t) targets;
        List.map (fun s -> Minstr.Callr s) operands;
        List.map (fun r -> Minstr.Retr r) [ 0; 1; 15 ];
        List.map (fun s -> Minstr.Retrat s) operands;
        List.concat_map
          (fun target ->
            List.map (fun src_ret -> Minstr.Callrat { target; src_ret }) targets)
          targets;
        List.map (fun a -> Minstr.Trap a) targets;
      ]
  in
  let lens = [| 1; 2; 3; 4; 5; 6; 7; 8; 12 |] in
  List.iteri
    (fun n i -> check_roundtrip "exhaustive" i lens.(n mod Array.length lens))
    instrs;
  Printf.printf "round-tripped %d instruction forms\n" (List.length instrs)

(* ------------------------------------------------------------------ *)
(* Random operand values, QCheck-driven. *)

let gen_operand =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun r -> Minstr.Reg r) (int_bound 15));
        (3, map (fun k -> Minstr.Imm k) (map Int32.to_int ui32));
        ( 3,
          map2
            (fun base disp -> Minstr.Mem { base; disp })
            (int_bound 15) (map Int32.to_int ui32) );
      ])

let gen_instr =
  QCheck.Gen.(
    let addr = int_bound (Layout.mem_size - 1) in
    frequency
      [
        (1, return Minstr.Nop);
        (4, map2 (fun d s -> Minstr.Mov (d, s)) gen_operand gen_operand);
        ( 4,
          map3
            (fun op d s -> Minstr.Binop (Minstr.all_binops.(op), d, s))
            (int_bound (Array.length Minstr.all_binops - 1))
            gen_operand gen_operand );
        (2, map2 (fun a b -> Minstr.Cmp (a, b)) gen_operand gen_operand);
        ( 2,
          map3
            (fun d b k -> Minstr.Lea (d, b, k))
            (int_bound 15) (int_bound 15) (map Int32.to_int ui32) );
        (2, map (fun s -> Minstr.Push s) gen_operand);
        (2, map (fun d -> Minstr.Pop d) gen_operand);
        (1, map (fun t -> Minstr.Jmp t) addr);
        ( 2,
          map2
            (fun c t -> Minstr.Jcc (Minstr.all_conds.(c), t))
            (int_bound (Array.length Minstr.all_conds - 1))
            addr );
        (1, map (fun s -> Minstr.Jmpr s) gen_operand);
        (1, map (fun t -> Minstr.Call t) addr);
        (1, map (fun s -> Minstr.Callr s) gen_operand);
        (1, return Minstr.Ret);
        (1, map (fun r -> Minstr.Retr r) (int_bound 15));
        (1, map (fun s -> Minstr.Retrat s) gen_operand);
        (1, map2 (fun target src_ret -> Minstr.Callrat { target; src_ret }) addr addr);
        (1, return Minstr.Syscall);
        (1, map (fun a -> Minstr.Trap a) addr);
      ])

let roundtrip_prop =
  QCheck.Test.make ~count:2000 ~name:"packed round-trip (random)"
    (QCheck.make
       QCheck.Gen.(map2 (fun i len -> (i, len)) gen_instr (int_range 1 12))
       ~print:(fun (i, len) -> Printf.sprintf "%s (len %d)" (show_instr i) len))
    (fun (i, len) ->
      let m, v1, v2 = Packed.pack i len in
      Packed.unpack m v1 v2 = (i, len))

(* ------------------------------------------------------------------ *)
(* Corpus walk: everything either real decoder produces from the real
   workloads' code bytes — at every byte offset, so misaligned
   (gadget-style) CISC decodes are covered too — must round-trip. *)

let test_roundtrip_corpus () =
  let mem = Mem.create Layout.mem_size in
  let total = ref 0 in
  List.iter
    (fun name ->
      let fb = Workloads.fatbin (Workloads.find name) in
      Fatbin.load fb mem;
      List.iter
        (fun which ->
          let bytes = Fatbin.code_bytes fb which in
          let lo = List.fold_left (fun a (addr, _) -> min a addr) max_int bytes in
          let hi = List.fold_left (fun a (addr, _) -> max a addr) 0 bytes in
          for addr = lo to hi do
            match Exec.decode which mem addr with
            | None -> ()
            | Some (i, len) ->
              incr total;
              check_roundtrip (Printf.sprintf "%s/0x%x" name addr) i len
          done)
        [ Desc.Cisc; Desc.Risc ])
    Workloads.names;
  Printf.printf "round-tripped %d decoded corpus instructions\n" !total;
  Alcotest.(check bool) "corpus non-empty" true (!total > 10_000)

(* ------------------------------------------------------------------ *)
(* System-level differential: packed vs --no-packed, every workload,
   every mode, on the full bit-identity fingerprint. *)

let run_fatbin ~packed ?cfg ~mode ~seed ~fuel fb =
  let sys =
    System.of_fatbin ~obs:Obs.disabled ?cfg ~seed ~start_isa:Desc.Cisc ~packed ~mode fb
  in
  Diff_harness.run_sys sys ~fuel

let differential_fatbin label ?cfg ~mode ~seed ~fuel fb =
  let on = run_fatbin ~packed:true ?cfg ~mode ~seed ~fuel fb in
  let off = run_fatbin ~packed:false ?cfg ~mode ~seed ~fuel fb in
  Diff_harness.check label on off

let test_workload_differential () =
  let fuel = 200_000 in
  List.iter
    (fun name ->
      let fb = Workloads.fatbin (Workloads.find name) in
      List.iter
        (fun (mlabel, mode) ->
          differential_fatbin (name ^ "/" ^ mlabel) ~mode ~seed:3 ~fuel fb)
        [ ("native", System.Native); ("psr", System.Psr_only); ("hipstr", System.Hipstr) ])
    Workloads.names

(* Churn configs: forced migration and a tiny FIFO code cache keep
   invalidating and re-packing blocks, so the packed arrays are
   rebuilt under pressure rather than packed once and reused. *)
let test_churn_differential () =
  let fuel = 400_000 in
  let fb = Workloads.fatbin (Workloads.find "gobmk") in
  let always = { Config.default with migrate_prob = 1.0 } in
  let tiny_fifo =
    { Config.default with cache_bytes = 4096; cc_policy = Hipstr_psr.Code_cache.Fifo }
  in
  differential_fatbin "gobmk/hipstr-always" ~cfg:always ~mode:System.Hipstr ~seed:5 ~fuel fb;
  differential_fatbin "gobmk/psr-tiny-fifo" ~cfg:tiny_fifo ~mode:System.Psr_only ~seed:5 ~fuel fb

let () =
  Alcotest.run "packed"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "exhaustive forms" `Quick test_roundtrip_exhaustive;
          QCheck_alcotest.to_alcotest roundtrip_prop;
          Alcotest.test_case "decoded corpus" `Quick test_roundtrip_corpus;
        ] );
      ( "differential",
        [
          Alcotest.test_case "all workloads, all modes" `Quick test_workload_differential;
          Alcotest.test_case "churn configs" `Quick test_churn_differential;
        ] );
    ]
