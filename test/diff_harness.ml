(* Reusable differential-equality harness.

   Every host-side fast path in this codebase (predecoded blocks,
   block chaining, inline caches, code-cache eviction policies) rides
   on the same acceptance invariant: two runs that differ only in a
   host optimization must be *bit-identical* in everything the
   simulation defines — outcome, program output, instruction count,
   the exact cycle float (no reordering or re-association of a single
   charge), suspicious-transfer count, migration count. This module
   is the one place that invariant is written down; test_interp,
   test_psr and test_chain all check through it.

   Some differentials deliberately compare less: the eviction-policy
   differential (flush vs fifo vs clock) changes *simulated* behavior
   (retranslation costs differ by design), so it masks out
   instructions and cycles and keeps the observational fields. The
   [mask] record says which fields a given differential promises. *)

module System = Hipstr.System
module Obs = Hipstr_obs.Obs

type fingerprint = {
  fp_outcome : string;
  fp_output : int list;
  fp_instructions : int;
  fp_cycles : float;
  fp_suspicious : int;
  fp_migrations : int;
}

type mask = {
  m_outcome : bool;
  m_output : bool;
  m_instructions : bool;
  m_cycles : bool;
  m_suspicious : bool;
  m_migrations : bool;
}

(* Full bit-identity: host-only optimizations (decode cache, chaining,
   inline caches) must match on every field. *)
let bit_identical =
  {
    m_outcome = true;
    m_output = true;
    m_instructions = true;
    m_cycles = true;
    m_suspicious = true;
    m_migrations = true;
  }

(* Observational equality: for differentials whose variants are
   allowed to spend different simulated time (e.g. eviction policies
   retranslate different amounts) but must agree on everything a
   program or its security monitor can see. *)
let observational = { bit_identical with m_instructions = false; m_cycles = false }

let outcome_string = function
  | System.Finished c -> Printf.sprintf "finished(%d)" c
  | System.Shell_spawned -> "shell"
  | System.Killed m -> "killed: " ^ m
  | System.Out_of_fuel -> "out-of-fuel"

let fingerprint sys outcome =
  {
    fp_outcome = outcome_string outcome;
    fp_output = System.output sys;
    fp_instructions = System.instructions sys;
    fp_cycles = System.cycles sys;
    fp_suspicious = System.suspicious_events sys;
    fp_migrations = System.security_migrations sys + System.forced_migrations sys;
  }

let check ?(mask = bit_identical) label a b =
  let s l = Alcotest.(check string) (label ^ ": " ^ l) in
  let i l = Alcotest.(check int) (label ^ ": " ^ l) in
  if mask.m_outcome then s "outcome" a.fp_outcome b.fp_outcome;
  if mask.m_output then Alcotest.(check (list int)) (label ^ ": output") a.fp_output b.fp_output;
  if mask.m_instructions then i "instructions" a.fp_instructions b.fp_instructions;
  (* exact float equality — a fast path must not reorder or
     re-associate a single cycle charge *)
  if mask.m_cycles && a.fp_cycles <> b.fp_cycles then
    Alcotest.failf "%s: cycles diverged (%.17g vs %.17g)" label a.fp_cycles b.fp_cycles;
  if mask.m_suspicious then i "suspicious" a.fp_suspicious b.fp_suspicious;
  if mask.m_migrations then i "migrations" a.fp_migrations b.fp_migrations

(* Run a system to completion under an isolated (or disabled) obs
   context and fingerprint it. *)
let run_sys sys ~fuel =
  let outcome = System.run sys ~fuel in
  fingerprint sys outcome

(* ------------------------------------------------------------------ *)
(* Obs-counter deltas.

   For differentials that also want to assert *why* the runs agree
   ("the chained run actually followed links", "the unchained run
   never patched"), fingerprints are not enough: read named counters
   out of each run's isolated obs context and compare or bound
   them. *)

let counter_value obs name =
  Obs.Metrics.counter_value (Obs.Metrics.snapshot (Obs.metrics obs)) name

let counter_values obs names = List.map (fun n -> (n, counter_value obs n)) names

(* Counters that must be equal between two runs (e.g. the simulated
   instruction counters of a chained and an unchained run). *)
let check_counters_equal label names obs_a obs_b =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "%s: counter %s" label n)
        (counter_value obs_a n) (counter_value obs_b n))
    names
