open Hipstr_isa
module Layout = Hipstr_machine.Layout
module Mem = Hipstr_machine.Mem

type location = Lreg of int | Lslot of int

type image = {
  im_entry : int;
  im_size : int;
  im_code : string;
  im_block_addr : int array;
  im_block_size : int array;
  im_callsite_ret : (int * int) array;
  im_homes : location array;
}

type func_sym = {
  fs_name : string;
  fs_ir : Ir.func;
  fs_frame : Frame.t;
  fs_live_in : int list array;
  fs_cisc : image;
  fs_risc : image;
}

type t = {
  fb_funcs : func_sym array;
  fb_globals : (string * int) list;
  fb_inits : (int * int list) list;
  fb_data_size : int;
}

let image fs = function Desc.Cisc -> fs.fs_cisc | Desc.Risc -> fs.fs_risc

let homes_of_alloc frame (alloc : Regalloc.result) n =
  Array.init (max 1 n) (fun v ->
      match alloc.homes.(v) with
      | Regalloc.Hreg r -> Lreg r
      | Regalloc.Hslot -> Lslot frame.Frame.slot_off.(v))

let align a n = (n + a - 1) / a * a

type prelinked = {
  pl_ir : Ir.func;
  pl_frame : Frame.t;
  pl_lv : Liveness.t;
  pl_cg_cisc : Codegen.t;
  pl_cg_risc : Codegen.t;
  pl_alloc_cisc : Regalloc.result;
  pl_alloc_risc : Regalloc.result;
}

let link (p : Ir.program) =
  (match Ir.validate p with Ok () -> () | Error e -> failwith ("fatbin: invalid IR: " ^ e));
  let cisc_desc = Hipstr_cisc.Isa.desc in
  let risc_desc = Hipstr_risc.Isa.desc in
  (* Per-function: liveness, both allocations, the common frame, and
     both code streams. *)
  let prelinked =
    List.map
      (fun f ->
        let lv = Liveness.analyze f in
        let alloc_c = Regalloc.allocate cisc_desc f lv in
        let alloc_r = Regalloc.allocate risc_desc f lv in
        let needs_slot =
          Array.init
            (max 1 f.Ir.fn_nvals)
            (fun v -> alloc_c.needs_slot.(v) || alloc_r.needs_slot.(v))
        in
        let frame = Frame.layout f ~needs_slot in
        {
          pl_ir = f;
          pl_frame = frame;
          pl_lv = lv;
          pl_cg_cisc = Codegen.gen cisc_desc f frame alloc_c lv;
          pl_cg_risc = Codegen.gen risc_desc f frame alloc_r lv;
          pl_alloc_cisc = alloc_c;
          pl_alloc_risc = alloc_r;
        })
      p.pr_funcs
  in
  (* Address assignment. *)
  let cisc_entries = Hashtbl.create 16 in
  let risc_entries = Hashtbl.create 16 in
  let ccur = ref Layout.cisc_code_base in
  let rcur = ref Layout.risc_code_base in
  List.iter
    (fun pl ->
      Hashtbl.replace cisc_entries pl.pl_ir.Ir.fn_name !ccur;
      ccur := align 16 (!ccur + pl.pl_cg_cisc.Codegen.cg_size);
      Hashtbl.replace risc_entries pl.pl_ir.Ir.fn_name !rcur;
      rcur := align 16 (!rcur + pl.pl_cg_risc.Codegen.cg_size))
    prelinked;
  if !ccur > Layout.cisc_code_base + Layout.code_region_size then
    failwith "fatbin: CISC code section overflow";
  if !rcur > Layout.risc_code_base + Layout.code_region_size then
    failwith "fatbin: RISC code section overflow";
  (* Globals. *)
  let globals = ref [] in
  let gcur = ref Layout.data_base in
  List.iter
    (fun (name, words, _) ->
      globals := (name, !gcur) :: !globals;
      gcur := !gcur + (4 * words))
    p.pr_globals;
  let globals = List.rev !globals in
  if !gcur > Layout.data_base + Layout.data_size then failwith "fatbin: data section overflow";
  let global_addr name =
    match List.assoc_opt name globals with
    | Some a -> a
    | None -> failwith ("fatbin: unknown global " ^ name)
  in
  let entry_of tbl name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None -> failwith ("fatbin: unknown function " ^ name)
  in
  (* Encode and build symbols. *)
  let funcs =
    List.map
      (fun pl ->
        let f = pl.pl_ir in
        let make desc (cg : Codegen.t) alloc entries =
          let base = entry_of entries f.Ir.fn_name in
          let code =
            Codegen.encode_all desc ~base
              ~block_addr:(fun l -> base + cg.cg_block_off.(l))
              ~func_entry:(entry_of entries) ~global_addr cg
          in
          {
            im_entry = base;
            im_size = cg.cg_size;
            im_code = code;
            im_block_addr = Array.map (fun o -> base + o) cg.cg_block_off;
            im_block_size = Array.copy cg.cg_block_size;
            im_callsite_ret =
              Array.of_list (List.map (fun (s, o) -> (s, base + o)) cg.cg_callsites);
            im_homes = homes_of_alloc pl.pl_frame alloc f.Ir.fn_nvals;
          }
        in
        let live_in =
          Array.init (Array.length f.Ir.fn_blocks) (fun l -> Liveness.live_in pl.pl_lv l)
        in
        {
          fs_name = f.Ir.fn_name;
          fs_ir = f;
          fs_frame = pl.pl_frame;
          fs_live_in = live_in;
          fs_cisc = make cisc_desc pl.pl_cg_cisc pl.pl_alloc_cisc cisc_entries;
          fs_risc = make risc_desc pl.pl_cg_risc pl.pl_alloc_risc risc_entries;
        })
      prelinked
  in
  let inits =
    List.map (fun (name, _words, init) -> (List.assoc name globals, init)) p.pr_globals
  in
  {
    fb_funcs = Array.of_list funcs;
    fb_globals = globals;
    fb_inits = inits;
    fb_data_size = !gcur - Layout.data_base;
  }

let load t mem =
  Array.iter
    (fun fs ->
      Mem.blit_string mem fs.fs_cisc.im_entry fs.fs_cisc.im_code;
      Mem.blit_string mem fs.fs_risc.im_entry fs.fs_risc.im_code)
    t.fb_funcs;
  List.iter
    (fun (addr, init) -> List.iteri (fun i v -> Mem.write32 mem (addr + (4 * i)) v) init)
    t.fb_inits

let find_func t name =
  let n = Array.length t.fb_funcs in
  let rec go i =
    if i >= n then raise Not_found
    else if t.fb_funcs.(i).fs_name = name then t.fb_funcs.(i)
    else go (i + 1)
  in
  go 0

let entry t which = (image (find_func t "main") which).im_entry

(* Plain indexed scan: this runs on every VM trap (stub service,
   icall validation, mirror lookup), so it must not allocate per
   element the way a [Seq] pipeline does — only the final [Some]. *)
let func_at t which addr =
  let n = Array.length t.fb_funcs in
  let rec go i =
    if i >= n then None
    else
      let fs = t.fb_funcs.(i) in
      let im = image fs which in
      if addr >= im.im_entry && addr < im.im_entry + im.im_size then Some fs else go (i + 1)
  in
  go 0

let block_at t which addr =
  match func_at t which addr with
  | None -> None
  | Some fs ->
    let im = image fs which in
    let n = Array.length im.im_block_addr in
    let found = ref None in
    for l = 0 to n - 1 do
      if
        !found = None && addr >= im.im_block_addr.(l)
        && addr < im.im_block_addr.(l) + im.im_block_size.(l)
      then found := Some (fs, l)
    done;
    !found

let block_starting_at t which addr =
  match func_at t which addr with
  | None -> None
  | Some fs ->
    let im = image fs which in
    let n = Array.length im.im_block_addr in
    let found = ref None in
    for l = 0 to n - 1 do
      if !found = None && addr = im.im_block_addr.(l) then found := Some (fs, l)
    done;
    !found

(* Indexed scans, not [Array.iter] closures: this runs on migration
   resolution and translation-unit entry, where a pair of closures per
   function searched was a measurable allocation source. *)
let rec callsite_scan fs sites n addr j =
  if j >= n then None
  else
    let site, ret = Array.unsafe_get sites j in
    if ret = addr then Some (fs, site) else callsite_scan fs sites n addr (j + 1)

let callsite_of_ret t which addr =
  let nf = Array.length t.fb_funcs in
  let rec go i =
    if i >= nf then None
    else
      let fs = t.fb_funcs.(i) in
      let sites = (image fs which).im_callsite_ret in
      match callsite_scan fs sites (Array.length sites) addr 0 with
      | Some _ as r -> r
      | None -> go (i + 1)
  in
  go 0

let rec site_scan sites n site j =
  if j >= n then None
  else
    let s, ret = Array.unsafe_get sites j in
    if s = site then Some ret else site_scan sites n site (j + 1)

let callsite_ret fs which site =
  let sites = (image fs which).im_callsite_ret in
  site_scan sites (Array.length sites) site 0

let global_addr t name =
  match List.assoc_opt name t.fb_globals with Some a -> a | None -> raise Not_found

let code_bytes t which =
  Array.to_list t.fb_funcs
  |> List.map (fun fs ->
         let im = image fs which in
         (im.im_entry, im.im_size))
