(** Fat binaries and the extended symbol table.

    A fat binary carries one code section per ISA for the same
    program, a common ISA-agnostic data section, and the per-function
    metadata the PSR virtual machine and the migration runtime consume
    (Figure 2 of the paper): frame layout, per-value homes on each
    ISA, per-basic-block address ranges and live-in sets, and
    call-site return addresses matched across ISAs. *)

type location = Lreg of int | Lslot of int  (** register, or frame byte offset *)

type image = {
  im_entry : int;
  im_size : int;
  im_code : string;
  im_block_addr : int array;  (** per IR block *)
  im_block_size : int array;
  im_callsite_ret : (int * int) array;  (** site id, source return address *)
  im_homes : location array;  (** value id -> location *)
}

type func_sym = {
  fs_name : string;
  fs_ir : Ir.func;
  fs_frame : Frame.t;
  fs_live_in : int list array;  (** per block: value ids live at entry *)
  fs_cisc : image;
  fs_risc : image;
}

type t = {
  fb_funcs : func_sym array;
  fb_globals : (string * int) list;  (** name -> data address *)
  fb_inits : (int * int list) list;  (** data address -> initial words *)
  fb_data_size : int;
}

val link : Ir.program -> t
(** Allocate addresses, run both backends, encode, and assemble the
    symbol table.
    @raise Failure if the program does not validate. *)

val load : t -> Hipstr_machine.Mem.t -> unit
(** Write both code sections and the initialized data section into
    simulated memory. *)

val image : func_sym -> Hipstr_isa.Desc.which -> image

val find_func : t -> string -> func_sym
(** @raise Not_found *)

val entry : t -> Hipstr_isa.Desc.which -> int
(** Address of [main]. *)

val func_at : t -> Hipstr_isa.Desc.which -> int -> func_sym option
(** The function whose code section contains the address. *)

val block_at : t -> Hipstr_isa.Desc.which -> int -> (func_sym * int) option
(** The function and IR block label whose code contains the address. *)

val block_starting_at : t -> Hipstr_isa.Desc.which -> int -> (func_sym * int) option
(** The block whose first instruction is at exactly this address. *)

val callsite_of_ret : t -> Hipstr_isa.Desc.which -> int -> (func_sym * int) option
(** Map a source return address back to (function, site id). *)

val callsite_ret : func_sym -> Hipstr_isa.Desc.which -> int -> int option
(** The return address of call site [site] in the given image — the
    forward direction of {!callsite_of_ret}, as an indexed scan so the
    migration stack walk does not allocate an assoc list per frame. *)

val global_addr : t -> string -> int
(** @raise Not_found *)

val code_bytes : t -> Hipstr_isa.Desc.which -> (int * int) list
(** [(start, size)] ranges of code in that ISA's section, one per
    function — the gadget scanner's search space. *)
