(* A tiny deterministic binary wire format for snapshot images.

   Writers append to a [Buffer.t]; readers are a string plus a
   cursor. Everything is fixed-width little-endian (no varints), so
   an image's byte layout is a pure function of the values written —
   the property the snapshot byte-identity contract leans on. The
   reader is strict: running off the end, a bad bool/option/loc tag
   or a section tag mismatch all raise [Corrupt] with a message that
   names the offending section, and [expect_end] rejects trailing
   garbage. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type w = Buffer.t

let writer () = Buffer.create 4096
let contents (w : w) = Buffer.contents w

type r = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let remaining r = String.length r.src - r.pos

let need r n what =
  if n < 0 || remaining r < n then
    corrupt "truncated image: need %d bytes for %s at offset %d (have %d)" n what r.pos
      (remaining r)

(* ---- primitives ---- *)

let u8 (w : w) v = Buffer.add_char w (Char.chr (v land 0xff))

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let i64 (w : w) v = Buffer.add_int64_le w v

let r_i64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let int (w : w) v = i64 w (Int64.of_int v)
let r_int r = Int64.to_int (r_i64 r)

let float (w : w) v = i64 w (Int64.bits_of_float v)
let r_float r = Int64.float_of_bits (r_i64 r)

let bool (w : w) v = u8 w (if v then 1 else 0)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool tag %d at offset %d" v (r.pos - 1)

let str (w : w) s =
  int w (String.length s);
  Buffer.add_string w s

let r_str r =
  let n = r_int r in
  need r n "string body";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* ---- composites ---- *)

let list (w : w) f xs =
  int w (List.length xs);
  List.iter (f w) xs

let r_list r f =
  let n = r_int r in
  if n < 0 then corrupt "negative list length %d at offset %d" n r.pos;
  List.init n (fun _ -> f r)

let option (w : w) f = function
  | None -> u8 w 0
  | Some v ->
    u8 w 1;
    f w v

let r_option r f =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> corrupt "bad option tag %d at offset %d" v (r.pos - 1)

let int_array (w : w) a =
  int w (Array.length a);
  Array.iter (int w) a

let r_int_array r =
  let n = r_int r in
  if n < 0 then corrupt "negative array length %d at offset %d" n r.pos;
  Array.init n (fun _ -> r_int r)

(* ---- section framing ---- *)

let tag (w : w) s =
  u8 w (String.length s);
  Buffer.add_string w s

let expect_tag r s =
  let n = r_u8 r in
  need r n "section tag";
  let got = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  if got <> s then corrupt "expected section '%s', found '%s' at offset %d" s got (r.pos - n)

let expect_end r =
  if remaining r <> 0 then corrupt "trailing garbage: %d bytes past the end of image" (remaining r)
