type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 step: advance by the golden gamma and mix. *)
let next_int64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = next_int64 g in
  { state = Int64.logxor s 0xA5A5A5A5A5A5A5A5L }

let bits62 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let bits32 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 32)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits62 g mod n

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) *. 0x1.p-53

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let sample_distinct g k n =
  if k > n then invalid_arg "Rng.sample_distinct: k > n";
  (* Floyd's algorithm: k iterations, set-based, O(k) expected. *)
  let seen = Hashtbl.create (2 * k) in
  let acc = ref [] in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.replace seen v ();
    acc := v :: !acc
  done;
  !acc

(* Snapshot support: the whole generator is one 64-bit word, so
   save/restore is exact by construction. *)
let state g = g.state

let of_state s = { state = s }

let set_state g s = g.state <- s
