type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

(* Canonical number rendering: integral values print without a
   fractional part; everything else with enough digits to round-trip
   a double exactly. Determinism matters more than prettiness — the
   exporter tests compare serialized bytes. *)
let render_num b v =
  if Float.is_integer v && Float.abs v < 1e15 then Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.17g" v)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> if Float.is_finite v then render_num b v else Buffer.add_string b "null"
  | Str s -> escape b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let rec write_pretty b indent = function
  | (Null | Bool _ | Num _ | Str _) as v -> write b v
  | List [] -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | List l ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        write_pretty b (indent + 2) v)
      l;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b ']'
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        escape b k;
        Buffer.add_string b ": ";
        write_pretty b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b '}'

let to_string_pretty v =
  let b = Buffer.create 256 in
  write_pretty b 0 v;
  Buffer.contents b

(* --- strict recursive-descent parser --- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char b e;
          go ()
        | 'n' ->
          Buffer.add_char b '\n';
          go ()
        | 't' ->
          Buffer.add_char b '\t';
          go ()
        | 'r' ->
          Buffer.add_char b '\r';
          go ()
        | 'b' ->
          Buffer.add_char b '\b';
          go ()
        | 'f' ->
          Buffer.add_char b '\012';
          go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail "bad \\u escape"
          | Some code ->
            pos := !pos + 4;
            (* good enough for our own output: BMP code points only,
               re-encoded as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end);
          go ()
        | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg at)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
