(** Small numeric helpers used by the experiments. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. Requires positive inputs. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float

val percentile : float list -> float -> float
(** [percentile xs q] is the exact q-th percentile ([q] in [0, 100])
    of [xs], linearly interpolated between order statistics.
    [percentile xs 50. = median xs] on non-empty [xs].
    @raise Invalid_argument if [q] is outside [0, 100] or [xs] is
    empty — a percentile of no data is undefined, and silently
    answering 0 has hidden zero-admission fleet runs before. *)

val percent : float -> string
(** Format a ratio as a percentage with one decimal, e.g. "86.9%". *)

val log2 : float -> float

val human_big : float -> string
(** Format a huge count in scientific notation, e.g. "9.11e33". *)

val clamp : lo:float -> hi:float -> float -> float
