(** Deterministic fixed-width binary serialization for snapshots.

    Writers append to a {!Buffer.t}; readers consume a string with a
    cursor and are strict: truncation, bad tags and trailing bytes
    all raise {!Corrupt}. The byte layout is a pure function of the
    values written — two identical states serialize to identical
    bytes, which is what the snapshot byte-identity contract needs. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Corrupt} with a formatted message. *)

type w = Buffer.t

val writer : unit -> w
val contents : w -> string

type r

val reader : ?pos:int -> string -> r
val remaining : r -> int

val u8 : w -> int -> unit
val r_u8 : r -> int

val i64 : w -> int64 -> unit
val r_i64 : r -> int64

val int : w -> int -> unit
val r_int : r -> int

val float : w -> float -> unit
(** Written as IEEE-754 bits — round-trips every float exactly. *)

val r_float : r -> float

val bool : w -> bool -> unit
val r_bool : r -> bool

val str : w -> string -> unit
val r_str : r -> string

val list : w -> (w -> 'a -> unit) -> 'a list -> unit
val r_list : r -> (r -> 'a) -> 'a list

val option : w -> (w -> 'a -> unit) -> 'a option -> unit
val r_option : r -> (r -> 'a) -> 'a option

val int_array : w -> int array -> unit
val r_int_array : r -> int array

val tag : w -> string -> unit
(** Short (< 256 byte) section marker. *)

val expect_tag : r -> string -> unit
(** @raise Corrupt when the next marker is not the expected one. *)

val expect_end : r -> unit
(** @raise Corrupt when bytes remain past the logical end. *)
