(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every experiment is reproducible from a seed. The generator is
    SplitMix64, which is small, fast, and has no shared global state:
    each subsystem owns its own generator, split off a parent, so
    adding randomness to one subsystem never perturbs another. *)

type t
(** A generator. Mutable; not thread-safe (use one per domain). *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing
    [g]. Use to hand sub-components their own stream. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n). Requires [n > 0]. *)

val bits32 : t -> int
(** 32 uniform random bits as a non-negative int. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of 0..n-1. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct g k n] draws [k] distinct values from [0, n).
    Requires [k <= n]. *)

val state : t -> int64
(** The full generator state — SplitMix64 is a single 64-bit word,
    so this captures the stream position exactly (snapshots). *)

val of_state : int64 -> t
(** Rebuild a generator from {!state}; the two then produce
    identical streams. *)

val set_state : t -> int64 -> unit
(** Overwrite a generator's state in place (snapshot restore). *)
