(** A minimal JSON value type with a deterministic serializer and a
    strict parser — just enough for the observability exporters
    ({!Hipstr_obs.Obs.Export}) and the CI smoke validator, with no
    external dependency.

    Serialization is canonical: object fields keep construction order,
    numbers print as integers whenever they are integral (so cycle
    counts round-trip as [12345], not [12345.000000]), and the same
    value always yields the same bytes — the exporter determinism
    tests diff serialized output directly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val to_string : t -> string
(** Compact (no whitespace) canonical serialization. Non-finite
    numbers serialize as [null] — JSON has no NaN/infinity. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, same field order as {!to_string}. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document; trailing garbage is an
    error. Error strings include a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)
