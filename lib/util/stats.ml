let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (s /. float_of_int (List.length xs))

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let v = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt v

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    let a = Array.of_list sorted in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile xs q =
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q outside [0, 100]";
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty data"
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. Float.floor rank in
    a.(lo) +. ((a.(hi) -. a.(lo)) *. frac)

let percent r = Printf.sprintf "%.1f%%" (100. *. r)

let log2 x = log x /. log 2.

let human_big x =
  if x < 1e6 then Printf.sprintf "%.0f" x
  else
    let e = int_of_float (floor (log10 x)) in
    Printf.sprintf "%.2fe%d" (x /. (10. ** float_of_int e)) e

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
