let mask = 0xFFFFFFFF

let wrap v =
  let v = v land mask in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let unsigned v = v land mask

let add a b = wrap (a + b)
let sub a b = wrap (a - b)
let mul a b = wrap (a * b)

let sdiv a b = if b = 0 then 0 else wrap (a / b)
let srem a b = if b = 0 then 0 else wrap (a mod b)

let logand a b = wrap (a land b)
let logor a b = wrap (a lor b)
let logxor a b = wrap (a lxor b)

let shl a n = wrap (a lsl (n land 31))
let shr a n = wrap ((a land mask) lsr (n land 31))
let sar a n = wrap (wrap a asr (n land 31))

let carry_add a b = unsigned a + unsigned b > mask
let borrow_sub a b = unsigned a < unsigned b

(* Overflow flags use physical equality on the sign booleans: [bool]
   is an immediate type, so [==]/[!=] coincide with structural
   equality while compiling to a single compare — the generic [=]
   would call [caml_equal] on the interpreter's hottest arithmetic
   path. *)
let overflow_add a b =
  let r = wrap (a + b) in
  (a < 0) == (b < 0) && (r < 0) != (a < 0)

let overflow_sub a b =
  let r = wrap (a - b) in
  (a < 0) != (b < 0) && (r < 0) != (a < 0)

let byte v i = (v lsr (8 * i)) land 0xFF

let of_bytes b0 b1 b2 b3 = wrap (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
