module Galileo = Hipstr_galileo.Galileo
module Fatbin = Hipstr_compiler.Fatbin
module Frame = Hipstr_compiler.Frame
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module System = Hipstr.System
open Hipstr_isa

type step = { s_reg : int; s_value : int; s_gadget : int; s_frame_words : int }

type chain = { c_steps : step list; c_syscall_addr : int; c_payload : int list; c_ret_index : int }

let target_values = [ (0, 11); (1, 0x1234); (2, 0x2345); (3, 0x3456) ]

let desc_of = function Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc

let find_syscall_addresses mem fb which =
  let read = Mem.reader mem in
  let decode a =
    match which with
    | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read a
    | Desc.Risc -> Hipstr_risc.Isa.decode ~read a
  in
  let found = ref [] in
  List.iter
    (fun (start, size) ->
      let pos = ref start in
      let continue_ = ref true in
      while !continue_ && !pos < start + size do
        match decode !pos with
        | Some (Minstr.Syscall, len) ->
          found := !pos :: !found;
          pos := !pos + len
        | Some (_, len) -> pos := !pos + len
        | None -> continue_ := false
      done)
    (Fatbin.code_bytes fb which);
  List.rev !found

(* A gadget usable as a chain link: statically known stack movement,
   no wild memory writes, no syscalls of its own, and the next-gadget
   slot not colliding with its pops. *)
let usable_effect (e : Galileo.effect) =
  match e.e_stack_delta with
  | Some d
    when d >= 4 && d <= 256 && (not e.e_mem_writes) && not e.e_has_syscall ->
    let ret_off = d - 4 in
    (* pops may read above the chaining slot (the payload just extends
       there); they only must not collide with it *)
    if List.for_all (fun (_, off) -> off >= 0 && off <= 1024 && off <> ret_off && off mod 4 = 0) e.e_pops
    then Some (d, ret_off)
    else None
  | _ -> None

let target_regs = [ 0; 1; 2; 3 ]

(* Backtracking chain search over gadget *uses*: a use fixes, for each
   stack offset the gadget pops, the word the payload will place
   there. Several registers popping the same word necessarily receive
   the same value, so such a use can establish at most one of them and
   knocks the rest out; computed (non-pop) writes knock out too, and a
   re-pop of an already-established register is harmless because the
   payload just sprays its value again. *)

type use = {
  u_gadget : Galileo.gadget;
  u_effect : Galileo.effect;
  u_delta : int;
  u_ret_off : int;
  u_assign : (int * int) list;  (* stack offset -> payload word *)
  u_establishes : int list;
  u_knocks_out : int list;
}

let plan_use (g, (e : Galileo.effect), d, ret_off) ~established ~missing ~prefer =
  (* group target-register pops by offset *)
  let offsets = List.sort_uniq compare (List.map snd e.e_pops) in
  let assign = ref [] in
  let establishes = ref [] in
  let knocked = ref [] in
  List.iter
    (fun off ->
      let regs_here =
        List.filter_map (fun (r, o) -> if o = off && List.mem r target_regs then Some r else None) e.e_pops
      in
      match regs_here with
      | [] -> ()
      | _ -> (
        let missing_here = List.filter (fun r -> List.mem r missing) regs_here in
        let missing_here =
          (* prefer the requested register when it is available here *)
          match prefer with
          | Some p when List.mem p missing_here -> p :: List.filter (( <> ) p) missing_here
          | _ -> missing_here
        in
        match missing_here with
        | pick :: _ ->
          assign := (off, List.assoc pick target_values) :: !assign;
          establishes := pick :: !establishes;
          knocked := List.filter (fun r -> r <> pick) regs_here @ !knocked
        | [] -> (
          (* no missing target pops here; keep an established one alive
             by re-spraying its value, if exactly one is involved *)
          match List.filter (fun r -> List.mem r established) regs_here with
          | [ r ] -> assign := (off, List.assoc r target_values) :: !assign
          | _ -> knocked := regs_here @ !knocked)))
    offsets;
  let computed =
    List.filter (fun w -> not (List.mem_assoc w e.e_pops)) e.e_reg_writes
  in
  let knocks_out = List.sort_uniq compare (!knocked @ computed) in
  let establishes = List.filter (fun r -> not (List.mem r knocks_out)) !establishes in
  ignore established;
  (* knocking out an established register is allowed: the search can
     re-establish it with a later gadget *)
  if establishes = [] then None
  else
    Some
      {
        u_gadget = g;
        u_effect = e;
        u_delta = d;
        u_ret_off = ret_off;
        u_assign = !assign;
        u_establishes = establishes;
        u_knocks_out = knocks_out;
      }

module IntMap = Map.Make (Int)

(* Attempt to add a use's cells to the payload at [cursor]; None on a
   cell conflict (two different words needed in one slot). *)
let place_use payload cursor (u : use) =
  let set m idx v =
    match m with
    | None -> None
    | Some m -> (
      match IntMap.find_opt idx m with
      | Some v' when v' <> v -> None
      | _ -> Some (IntMap.add idx v m))
  in
  let m = set (Some payload) cursor u.u_gadget.Galileo.g_addr in
  let base = cursor + 1 in
  let m = List.fold_left (fun m (off, v) -> set m (base + (off / 4)) v) m u.u_assign in
  match m with None -> None | Some m -> Some (m, base + (u.u_ret_off / 4))

let select_gadgets infos ~start_cursor =
  let usable =
    List.filter_map
      (fun (g, (e : Galileo.effect), u) -> match u with Some (d, ro) -> Some (g, e, d, ro) | None -> None)
      infos
  in
  let rec dfs established chain_rev depth payload cursor =
    let missing = List.filter (fun r -> not (List.mem r established)) target_regs in
    if missing = [] then Some (List.rev chain_rev, payload, cursor)
    else if depth >= 6 then None
    else begin
      let uses =
        List.concat_map
          (fun prefer ->
            List.filter_map (fun cand -> plan_use cand ~established ~missing ~prefer) usable)
          (None :: List.map (fun r -> Some r) missing)
        |> List.sort (fun a b ->
               compare
                 (List.length a.u_knocks_out - List.length a.u_establishes, a.u_delta)
                 (List.length b.u_knocks_out - List.length b.u_establishes, b.u_delta))
      in
      (* many byte-identical gadgets at different addresses produce the
         same use; keep one representative per behaviour class *)
      let uses =
        let seen = Hashtbl.create 32 in
        List.filter
          (fun u ->
            let key = (u.u_establishes, u.u_knocks_out, u.u_ret_off, u.u_assign) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.replace seen key ();
              true
            end)
          uses
      in
      let rec try_uses n = function
        | [] -> None
        | u :: rest ->
          if n > 24 then None
          else begin
            match place_use payload cursor u with
            | None -> try_uses (n + 1) rest
            | Some (payload', cursor') -> (
              let established' =
                List.sort_uniq compare
                  (List.filter (fun r -> not (List.mem r u.u_knocks_out)) established
                  @ u.u_establishes)
              in
              match dfs established' (u :: chain_rev) (depth + 1) payload' cursor' with
              | Some sel -> Some sel
              | None -> try_uses (n + 1) rest)
          end
      in
      try_uses 0 uses
    end
  in
  dfs [] [] 0 IntMap.empty start_cursor

let build_chain mem fb which ~victim_func =
  let desc = desc_of which in
  let gadgets = Galileo.mine_program mem fb which in
  let infos =
    List.filter_map
      (fun g ->
        if g.Galileo.g_kind <> Galileo.Ret_gadget then None
        else
          let e = Galileo.classify ~sp:desc.sp g in
          Some (g, e, usable_effect e))
      gadgets
  in
  let fs = Fatbin.find_func fb victim_func in
  let frame = fs.fs_frame in
  (* the overflowed buffer is the victim's first local (offset 0 of
     the locals area); the saved return address sits at the frame
     top *)
  let ret_index = (frame.Frame.ret_off - frame.Frame.locals_off) / 4 in
  match (select_gadgets infos ~start_cursor:ret_index, find_syscall_addresses mem fb which) with
  | None, _ | _, [] -> None
  | Some (selection, payload, final_cursor), syscall_addr :: _ ->
    let payload = IntMap.add final_cursor syscall_addr payload in
    let max_idx = IntMap.fold (fun k _ acc -> max k acc) payload 0 in
    let words =
      List.init (max_idx + 1) (fun i ->
          match IntMap.find_opt i payload with Some v -> v | None -> 0x0BAD0BAD)
    in
    let steps =
      List.concat_map
        (fun (u : use) ->
          List.map
            (fun r ->
              { s_reg = r; s_value = List.assoc r target_values; s_gadget = u.u_gadget.Galileo.g_addr; s_frame_words = u.u_delta / 4 })
            u.u_establishes)
        selection
    in
    let final_steps =
      List.fold_left (fun acc st -> (st.s_reg, st) :: List.remove_assoc st.s_reg acc) [] steps
      |> List.map snd
      |> List.sort (fun a b -> compare a.s_reg b.s_reg)
    in
    if List.length words > 500 then None
    else
      Some
        {
          c_steps = final_steps;
          c_syscall_addr = syscall_addr;
          c_payload = words;
          c_ret_index = ret_index;
        }

type attack_outcome = Shell | Crashed of string | Survived

let deliver sys chain ~fuel =
  let fb = System.fatbin sys in
  let mem = Machine.mem (System.machine sys) in
  let input_addr = Fatbin.global_addr fb "net_input" in
  let len_addr = Fatbin.global_addr fb "net_len" in
  List.iteri (fun i w -> Mem.write32 mem (input_addr + (4 * i)) w) chain.c_payload;
  Mem.write32 mem len_addr (List.length chain.c_payload);
  match System.run sys ~fuel with
  | System.Shell_spawned -> Shell
  | System.Killed m -> Crashed m
  | System.Finished _ -> Survived
  | System.Out_of_fuel -> Crashed "out of fuel"
