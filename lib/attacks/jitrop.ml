module Galileo = Hipstr_galileo.Galileo
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module System = Hipstr.System
module Vm = Hipstr_psr.Vm
module Code_cache = Hipstr_psr.Code_cache
module Safety = Hipstr_migration.Safety
module Workloads = Hipstr_workloads.Workloads
open Hipstr_isa

type report = {
  jr_name : string;
  jr_static_total : int;
  jr_in_cache : int;
  jr_flagging : int;
  jr_survive_migration : int;
  jr_final : int;
  jr_execve_feasible : bool;
}

let analyze ~name (w : Workloads.t) ~seed =
  let fb = Workloads.fatbin w in
  let sys = System.of_fatbin ~seed ~start_isa:Desc.Cisc ~mode:System.Psr_only fb in
  (match System.run sys ~fuel:w.w_fuel with
  | System.Finished _ -> ()
  | _ -> failwith ("jitrop: " ^ name ^ " did not reach steady state"));
  let vm = System.vm sys Desc.Cisc in
  let cache = Vm.cache vm in
  let mem = Machine.mem (System.machine sys) in
  let read = Mem.reader mem in
  let blocks = Code_cache.blocks cache in
  let ranges = List.map (fun (b : Code_cache.block) -> (b.cb_cache, b.cb_size)) blocks in
  let gadgets =
    Galileo.mine ~read ~which:Desc.Cisc ~ranges ()
    |> List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget)
  in
  let static_total =
    Galileo.mine_program mem fb Desc.Cisc
    |> List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget)
    |> List.length
  in
  (* Non-flagging starts: cache addresses of units whose source is an
     indirect-transfer target (call-site return or function entry). *)
  let safe_starts = Hashtbl.create 64 in
  List.iter
    (fun (b : Code_cache.block) ->
      let src_is_target =
        Fatbin.callsite_of_ret fb Desc.Cisc b.cb_src <> None
        ||
        match Fatbin.func_at fb Desc.Cisc b.cb_src with
        | Some fs -> (Fatbin.image fs Desc.Cisc).im_entry = b.cb_src
        | None -> false
      in
      if src_is_target then Hashtbl.replace safe_starts b.cb_cache b)
    blocks;
  let block_of_addr a =
    List.find_opt (fun (b : Code_cache.block) -> a >= b.cb_cache && a < b.cb_cache + b.cb_size) blocks
  in
  let non_flagging =
    List.filter (fun g -> Hashtbl.mem safe_starts g.Galileo.g_addr) gadgets
  in
  (* Residue usable after migration: the owning source block is not
     an on-demand equivalence point. *)
  let final =
    List.filter
      (fun g ->
        match block_of_addr g.Galileo.g_addr with
        | None -> false
        | Some b -> (
          match Fatbin.block_at fb Desc.Cisc b.cb_src with
          | None -> true
          | Some (fs, l) -> not (Safety.block_safety fs Desc.Cisc l).Safety.v_ondemand))
      non_flagging
  in
  (* Can the residue still express the four-register execve chain? *)
  let feasible =
    let desc = Hipstr_cisc.Isa.desc in
    let poppable =
      List.fold_left
        (fun acc g ->
          let e = Galileo.classify ~sp:desc.sp g in
          List.fold_left (fun acc (r, _) -> r :: acc) acc e.Galileo.e_pops)
        [] final
      |> List.sort_uniq compare
    in
    List.for_all (fun r -> List.mem r poppable) [ 0; 1; 2; 3 ]
  in
  {
    jr_name = name;
    jr_static_total = static_total;
    jr_in_cache = List.length gadgets;
    jr_flagging = List.length gadgets - List.length non_flagging;
    jr_survive_migration = List.length non_flagging;
    jr_final = List.length final;
    jr_execve_feasible = feasible;
  }
