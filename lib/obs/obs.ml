(* Zero-dependency observability: monotonic counters, log2-bucketed
   histograms, a bounded structured-event ring, and pluggable sinks.

   Every instrumented site in the simulator guards its work with
   [if Obs.on obs then ...], so the disabled path costs exactly one
   load-and-branch (verified by the obs-disabled-overhead
   micro-benchmark in bench/main.ml). Counter and histogram handles
   are resolved by name once, at component-creation time — never on a
   hot path.

   Domain safety: one context may be shared by simulations running on
   several OCaml 5 domains (the Cmp.Pool parallel driver). Counters
   are lock-free atomics; histograms, the name registry, the trace
   ring and the memory sink are mutex-guarded. The hot path (counter
   increment) therefore stays a single fetch-and-add; everything else
   is cold enough that a lock is invisible. *)

module Metrics = struct
  type counter = { c_name : string; c_cell : int Atomic.t }

  let n_buckets = 32

  type histogram = {
    h_name : string;
    h_mu : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type t = {
    mu : Mutex.t;  (* guards the registry fields below *)
    mutable rev_counters : counter list;
    mutable rev_histograms : histogram list;
    by_name : (string, [ `C of counter | `H of histogram ]) Hashtbl.t;
  }

  let locked mu f =
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e

  let create () =
    {
      mu = Mutex.create ();
      rev_counters = [];
      rev_histograms = [];
      by_name = Hashtbl.create 64;
    }

  let counter t name =
    locked t.mu (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some (`C c) -> c
        | Some (`H _) -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a histogram")
        | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace t.by_name name (`C c);
          t.rev_counters <- c :: t.rev_counters;
          c)

  let histogram t name =
    locked t.mu (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some (`H h) -> h
        | Some (`C _) -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is a counter")
        | None ->
          let h =
            {
              h_name = name;
              h_mu = Mutex.create ();
              h_count = 0;
              h_sum = 0.;
              h_min = 0.;
              h_max = 0.;
              h_buckets = Array.make n_buckets 0;
            }
          in
          Hashtbl.replace t.by_name name (`H h);
          t.rev_histograms <- h :: t.rev_histograms;
          h)

  let incr ?(by = 1) c =
    if by < 0 then invalid_arg "Obs.Metrics.incr: counters are monotonic";
    ignore (Atomic.fetch_and_add c.c_cell by)

  let value c = Atomic.get c.c_cell
  let counter_name c = c.c_name

  (* bucket 0: v < 1; bucket i >= 1: 2^(i-1) <= v < 2^i (last is open) *)
  let bucket_of v =
    if v < 1. then 0
    else
      let b = 1 + int_of_float (Float.log2 v) in
      if b >= n_buckets then n_buckets - 1 else b

  let observe h v =
    locked h.h_mu (fun () ->
        if h.h_count = 0 then begin
          h.h_min <- v;
          h.h_max <- v
        end
        else begin
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v
        end;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1)

  type histogram_summary = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_mean : float;
    hs_buckets : int array;
  }

  type snapshot = {
    snap_counters : (string * int) list;
    snap_histograms : (string * histogram_summary) list;
  }

  let summarize h =
    locked h.h_mu (fun () ->
        {
          hs_count = h.h_count;
          hs_sum = h.h_sum;
          hs_min = h.h_min;
          hs_max = h.h_max;
          hs_mean = (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count);
          hs_buckets = Array.copy h.h_buckets;
        })

  let snapshot t =
    let counters, histograms =
      locked t.mu (fun () -> (t.rev_counters, t.rev_histograms))
    in
    {
      snap_counters = List.sort compare (List.rev_map (fun c -> (c.c_name, value c)) counters);
      snap_histograms =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (List.rev_map (fun h -> (h.h_name, summarize h)) histograms);
    }

  let counter_value snap name =
    match List.assoc_opt name snap.snap_counters with Some v -> v | None -> 0

  (* Fold a snapshot into a live registry: counters add, histograms
     combine exactly (count/sum/min/max/buckets are all mergeable).
     Used by the parallel driver to fold per-domain contexts back into
     the parent at join, in deterministic task order. *)
  let merge ~into:t snap =
    List.iter
      (fun (name, v) -> if v > 0 then incr ~by:v (counter t name))
      snap.snap_counters;
    List.iter
      (fun (name, (s : histogram_summary)) ->
        if s.hs_count > 0 then begin
          let h = histogram t name in
          locked h.h_mu (fun () ->
              if h.h_count = 0 then begin
                h.h_min <- s.hs_min;
                h.h_max <- s.hs_max
              end
              else begin
                if s.hs_min < h.h_min then h.h_min <- s.hs_min;
                if s.hs_max > h.h_max then h.h_max <- s.hs_max
              end;
              h.h_count <- h.h_count + s.hs_count;
              h.h_sum <- h.h_sum +. s.hs_sum;
              Array.iteri
                (fun i n -> if i < n_buckets then h.h_buckets.(i) <- h.h_buckets.(i) + n)
                s.hs_buckets)
        end)
      snap.snap_histograms
end

module Trace = struct
  type event =
    | Translate of { isa : string; src : int; instrs : int; emitted : int }
    | Cache_hit of { isa : string; src : int }
    | Cache_miss of { isa : string; src : int; compulsory : bool }
    | Cache_flush of { isa : string; used_bytes : int }
    | Migrate of {
        from_isa : string;
        to_isa : string;
        frames : int;
        words : int;
        cycles : float;
        forced : bool;
      }
    | Stack_transform of { frames : int; words : int; complete : bool }
    | Suspicious of { isa : string; target_src : int }
    | Fault of { isa : string; reason : string }

  type record = { seq : int; event : event }

  type t = { mu : Mutex.t; cap : int; slots : record option array; mutable next_seq : int }

  let create ?(capacity = 1024) () =
    if capacity < 1 then invalid_arg "Obs.Trace.create: capacity must be positive";
    { mu = Mutex.create (); cap = capacity; slots = Array.make capacity None; next_seq = 0 }

  let store t event =
    Mutex.lock t.mu;
    let r = { seq = t.next_seq; event } in
    t.slots.(t.next_seq mod t.cap) <- Some r;
    t.next_seq <- t.next_seq + 1;
    Mutex.unlock t.mu;
    r

  let capacity t = t.cap

  let emitted t =
    Mutex.lock t.mu;
    let n = t.next_seq in
    Mutex.unlock t.mu;
    n

  let dropped t =
    let n = emitted t in
    if n > t.cap then n - t.cap else 0

  let to_list t =
    Mutex.lock t.mu;
    let next = t.next_seq in
    let first = if next > t.cap then next - t.cap else 0 in
    let l =
      List.init (next - first) (fun i ->
          match t.slots.((first + i) mod t.cap) with Some r -> r | None -> assert false)
    in
    Mutex.unlock t.mu;
    l

  let event_to_string = function
    | Translate { isa; src; instrs; emitted } ->
      Printf.sprintf "translate %s src=0x%x instrs=%d emitted=%d" isa src instrs emitted
    | Cache_hit { isa; src } -> Printf.sprintf "cache-hit %s src=0x%x" isa src
    | Cache_miss { isa; src; compulsory } ->
      Printf.sprintf "cache-miss %s src=0x%x (%s)" isa src
        (if compulsory then "compulsory" else "capacity")
    | Cache_flush { isa; used_bytes } -> Printf.sprintf "cache-flush %s used=%d" isa used_bytes
    | Migrate { from_isa; to_isa; frames; words; cycles; forced } ->
      Printf.sprintf "migrate %s->%s frames=%d words=%d cycles=%.0f (%s)" from_isa to_isa frames
        words cycles
        (if forced then "forced" else "security")
    | Stack_transform { frames; words; complete } ->
      Printf.sprintf "stack-transform frames=%d words=%d complete=%b" frames words complete
    | Suspicious { isa; target_src } -> Printf.sprintf "suspicious %s target=0x%x" isa target_src
    | Fault { isa; reason } -> Printf.sprintf "fault %s: %s" isa reason
end

module Sink = struct
  type mem = { m_mu : Mutex.t; mutable m_recs : Trace.record list }

  type t = Null | Fn of (Trace.record -> unit) | Memory of mem

  let null = Null

  let stderr =
    Fn
      (fun r ->
        Printf.eprintf "[obs %6d] %s\n%!" r.Trace.seq (Trace.event_to_string r.Trace.event))

  let of_fn f = Fn f
  let memory () = Memory { m_mu = Mutex.create (); m_recs = [] }

  let contents = function
    | Memory m ->
      Mutex.lock m.m_mu;
      let l = List.rev m.m_recs in
      Mutex.unlock m.m_mu;
      l
    | Null | Fn _ -> []

  let deliver t r =
    match t with
    | Null -> ()
    | Fn f -> f r
    | Memory m ->
      Mutex.lock m.m_mu;
      m.m_recs <- r :: m.m_recs;
      Mutex.unlock m.m_mu
end

type t = {
  mutable enabled : bool;
  metrics : Metrics.t;
  trace : Trace.t;
  mutable sink : Sink.t;
}

let create ?(on = true) ?(sink = Sink.null) ?(trace_capacity = 1024) () =
  { enabled = on; metrics = Metrics.create (); trace = Trace.create ~capacity:trace_capacity (); sink }

let disabled = create ~on:false ()
let global = create ()

let on t = t.enabled
let set_on t b = t.enabled <- b
let metrics t = t.metrics
let trace t = t.trace
let sink t = t.sink
let set_sink t s = t.sink <- s

let emit t event = Sink.deliver t.sink (Trace.store t.trace event)

let events t = Trace.to_list t.trace

let snapshot t = Metrics.snapshot t.metrics

let child t = create ~on:t.enabled ~sink:Sink.null ~trace_capacity:(Trace.capacity t.trace) ()

let merge ~into src =
  Metrics.merge ~into:into.metrics (Metrics.snapshot src.metrics);
  if into.enabled then
    List.iter (fun (r : Trace.record) -> emit into r.Trace.event) (Trace.to_list src.trace)
