(* Zero-dependency observability: monotonic counters, log2-bucketed
   histograms, a bounded structured-event ring, and pluggable sinks.

   Every instrumented site in the simulator guards its work with
   [if Obs.on obs then ...], so the disabled path costs exactly one
   load-and-branch (verified by the obs-disabled-overhead
   micro-benchmark in bench/main.ml). Counter and histogram handles
   are resolved by name once, at component-creation time — never on a
   hot path.

   Domain safety: one context may be shared by simulations running on
   several OCaml 5 domains (the Cmp.Pool parallel driver). Counters
   are lock-free atomics; histograms, the name registry, the trace
   ring and the memory sink are mutex-guarded. The hot path (counter
   increment) therefore stays a single fetch-and-add; everything else
   is cold enough that a lock is invisible. *)

module Metrics = struct
  type counter = { c_name : string; c_cell : int Atomic.t }

  let n_buckets = 32

  type histogram = {
    h_name : string;
    h_mu : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type t = {
    mu : Mutex.t;  (* guards the registry fields below *)
    mutable rev_counters : counter list;
    mutable rev_histograms : histogram list;
    by_name : (string, [ `C of counter | `H of histogram ]) Hashtbl.t;
  }

  let locked mu f =
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e

  let create () =
    {
      mu = Mutex.create ();
      rev_counters = [];
      rev_histograms = [];
      by_name = Hashtbl.create 64;
    }

  let counter t name =
    locked t.mu (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some (`C c) -> c
        | Some (`H _) -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a histogram")
        | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace t.by_name name (`C c);
          t.rev_counters <- c :: t.rev_counters;
          c)

  let histogram t name =
    locked t.mu (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some (`H h) -> h
        | Some (`C _) -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is a counter")
        | None ->
          let h =
            {
              h_name = name;
              h_mu = Mutex.create ();
              h_count = 0;
              h_sum = 0.;
              h_min = 0.;
              h_max = 0.;
              h_buckets = Array.make n_buckets 0;
            }
          in
          Hashtbl.replace t.by_name name (`H h);
          t.rev_histograms <- h :: t.rev_histograms;
          h)

  let incr ?(by = 1) c =
    if by < 0 then invalid_arg "Obs.Metrics.incr: counters are monotonic";
    ignore (Atomic.fetch_and_add c.c_cell by)

  (* Batched deposit: like [incr ~by] but with a plain int argument —
     no option construction — and tolerant of zero. The interpreter
     accumulates per-block/per-run counts in plain mutable ints and
     deposits them here at run boundaries, so per-instruction
     retirement does no counter work at all. *)
  let add c n =
    if n < 0 then invalid_arg "Obs.Metrics.add: counters are monotonic";
    if n > 0 then ignore (Atomic.fetch_and_add c.c_cell n)

  let value c = Atomic.get c.c_cell
  let counter_name c = c.c_name

  (* bucket 0: v < 1; bucket i >= 1: 2^(i-1) <= v < 2^i (last is open) *)
  let bucket_of v =
    if v < 1. then 0
    else
      let b = 1 + int_of_float (Float.log2 v) in
      if b >= n_buckets then n_buckets - 1 else b

  let observe h v =
    locked h.h_mu (fun () ->
        if h.h_count = 0 then begin
          h.h_min <- v;
          h.h_max <- v
        end
        else begin
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v
        end;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1)

  type histogram_summary = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_mean : float;
    hs_buckets : int array;
  }

  (* Estimate the q-quantile of the observed distribution from the
     log2 bucket counts: find the bucket where the cumulative count
     crosses rank q*count, interpolate linearly inside it, and clamp
     to the exact observed [min, max] (which also bounds the
     open-ended last bucket). The estimate is exact for the ranks the
     tail report cares about whenever a bucket holds a single distinct
     value, and never off by more than one bucket width otherwise. *)
  let quantile (h : histogram_summary) q =
    if q < 0. || q > 1. then invalid_arg "Obs.Metrics.quantile: q outside [0, 1]";
    if h.hs_count = 0 then 0.
    else begin
      let rank = q *. float_of_int h.hs_count in
      let n = Array.length h.hs_buckets in
      let rec go i cum =
        if i >= n then h.hs_max
        else
          let c = h.hs_buckets.(i) in
          let cum' = cum + c in
          if c > 0 && float_of_int cum' >= rank then begin
            let lo = if i = 0 then 0. else Float.pow 2. (float_of_int (i - 1)) in
            let hi = if i = 0 then 1. else Float.pow 2. (float_of_int i) in
            let frac = (rank -. float_of_int cum) /. float_of_int c in
            let v = lo +. ((hi -. lo) *. Float.max 0. frac) in
            Float.min h.hs_max (Float.max h.hs_min v)
          end
          else go (i + 1) cum'
      in
      go 0 0
    end

  let p50 h = quantile h 0.5
  let p95 h = quantile h 0.95
  let p99 h = quantile h 0.99

  type snapshot = {
    snap_counters : (string * int) list;
    snap_histograms : (string * histogram_summary) list;
  }

  let summarize h =
    locked h.h_mu (fun () ->
        {
          hs_count = h.h_count;
          hs_sum = h.h_sum;
          hs_min = h.h_min;
          hs_max = h.h_max;
          hs_mean = (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count);
          hs_buckets = Array.copy h.h_buckets;
        })

  let snapshot t =
    let counters, histograms =
      locked t.mu (fun () -> (t.rev_counters, t.rev_histograms))
    in
    {
      snap_counters = List.sort compare (List.rev_map (fun c -> (c.c_name, value c)) counters);
      snap_histograms =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (List.rev_map (fun h -> (h.h_name, summarize h)) histograms);
    }

  let counter_value snap name =
    match List.assoc_opt name snap.snap_counters with Some v -> v | None -> 0

  let histogram_summary snap name = List.assoc_opt name snap.snap_histograms

  let empty_summary =
    {
      hs_count = 0;
      hs_sum = 0.;
      hs_min = 0.;
      hs_max = 0.;
      hs_mean = 0.;
      hs_buckets = Array.make n_buckets 0;
    }

  (* Bucket bounds shared by the quantile, tail-count and delta
     estimators. Bucket 0 has no finite lower bound of its own (it
     holds every v < 1, negatives included), so callers substitute the
     observed minimum. *)
  let bucket_lo i = if i = 0 then neg_infinity else Float.pow 2. (float_of_int (i - 1))
  let bucket_hi i = if i = 0 then 1. else Float.pow 2. (float_of_int i)

  (* Estimated number of observations strictly above [threshold]:
     full buckets above it count whole, the bucket containing it
     contributes a linearly interpolated fraction, bucket bounds
     clamped to the observed [min, max] (which also closes the
     open-ended last bucket). Deterministic, and exact whenever no
     bucket straddles the threshold. *)
  let count_above (h : histogram_summary) threshold =
    if h.hs_count = 0 then 0.
    else begin
      let n = Array.length h.hs_buckets in
      let total = ref 0. in
      for i = 0 to n - 1 do
        let c = h.hs_buckets.(i) in
        if c > 0 then begin
          let lo = Float.max (bucket_lo i) h.hs_min in
          let hi = if i = n - 1 then h.hs_max else Float.min (bucket_hi i) h.hs_max in
          let hi = Float.max hi lo in
          if threshold < lo then total := !total +. float_of_int c
          else if threshold < hi then
            total := !total +. (float_of_int c *. ((hi -. threshold) /. (hi -. lo)))
        end
      done;
      !total
    end

  (* The window-delta of two cumulative summaries of the same
     histogram: count, sum and buckets subtract exactly; min/max are
     re-derived from the delta buckets' bounds clamped to the overall
     observed range (the per-window extrema themselves are not
     recoverable from cumulative state). A deterministic estimate —
     the quantile interpolation over a delta is therefore never off by
     more than one bucket width, same as over a cumulative summary. *)
  let delta ~base (h : histogram_summary) =
    let count = h.hs_count - base.hs_count in
    if count <= 0 then empty_summary
    else begin
      let n = Array.length h.hs_buckets in
      let buckets =
        Array.init n (fun i ->
            let b = if i < Array.length base.hs_buckets then base.hs_buckets.(i) else 0 in
            max 0 (h.hs_buckets.(i) - b))
      in
      let first = ref (-1) and last = ref (-1) in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if !first < 0 then first := i;
            last := i
          end)
        buckets;
      let hs_min = if !first < 0 then h.hs_min else Float.max (bucket_lo !first) h.hs_min in
      let hs_max =
        if !last < 0 then h.hs_max
        else if !last = n - 1 then h.hs_max
        else Float.min (bucket_hi !last) h.hs_max
      in
      let sum = h.hs_sum -. base.hs_sum in
      {
        hs_count = count;
        hs_sum = sum;
        hs_min;
        hs_max = Float.max hs_max hs_min;
        hs_mean = sum /. float_of_int count;
        hs_buckets = buckets;
      }
    end

  (* Combine two summaries of disjoint observation sets (used when a
     window accumulates deltas from several sources). *)
  let combine_summaries a b =
    if a.hs_count = 0 then b
    else if b.hs_count = 0 then a
    else
      let n = max (Array.length a.hs_buckets) (Array.length b.hs_buckets) in
      let at (s : histogram_summary) i = if i < Array.length s.hs_buckets then s.hs_buckets.(i) else 0 in
      let count = a.hs_count + b.hs_count in
      let sum = a.hs_sum +. b.hs_sum in
      {
        hs_count = count;
        hs_sum = sum;
        hs_min = Float.min a.hs_min b.hs_min;
        hs_max = Float.max a.hs_max b.hs_max;
        hs_mean = sum /. float_of_int count;
        hs_buckets = Array.init n (fun i -> at a i + at b i);
      }

  (* Fold a snapshot into a live registry: counters add, histograms
     combine exactly (count/sum/min/max/buckets are all mergeable).
     Used by the parallel driver to fold per-domain contexts back into
     the parent at join, in deterministic task order. *)
  let merge ~into:t snap =
    List.iter
      (fun (name, v) -> if v > 0 then incr ~by:v (counter t name))
      snap.snap_counters;
    List.iter
      (fun (name, (s : histogram_summary)) ->
        if s.hs_count > 0 then begin
          let h = histogram t name in
          locked h.h_mu (fun () ->
              if h.h_count = 0 then begin
                h.h_min <- s.hs_min;
                h.h_max <- s.hs_max
              end
              else begin
                if s.hs_min < h.h_min then h.h_min <- s.hs_min;
                if s.hs_max > h.h_max then h.h_max <- s.hs_max
              end;
              h.h_count <- h.h_count + s.hs_count;
              h.h_sum <- h.h_sum +. s.hs_sum;
              Array.iteri
                (fun i n -> if i < n_buckets then h.h_buckets.(i) <- h.h_buckets.(i) + n)
                s.hs_buckets)
        end)
      snap.snap_histograms
end

module Trace = struct
  type event =
    | Translate of { isa : string; src : int; instrs : int; emitted : int }
    | Cache_hit of { isa : string; src : int }
    | Cache_miss of { isa : string; src : int; compulsory : bool }
    | Cache_flush of { isa : string; used_bytes : int }
    | Cache_evict of { isa : string; src : int; bytes : int }
    | Memo_install of { isa : string; src : int; instrs : int }
    | Migrate of {
        from_isa : string;
        to_isa : string;
        frames : int;
        words : int;
        cycles : float;
        forced : bool;
      }
    | Stack_transform of { frames : int; words : int; complete : bool }
    | Suspicious of { isa : string; target_src : int }
    | Fault of { isa : string; reason : string }
    | Span_end of { name : string; begin_cycle : float; end_cycle : float }

  type record = { seq : int; event : event }

  type t = { mu : Mutex.t; cap : int; slots : record option array; mutable next_seq : int }

  let create ?(capacity = 1024) () =
    if capacity < 1 then invalid_arg "Obs.Trace.create: capacity must be positive";
    { mu = Mutex.create (); cap = capacity; slots = Array.make capacity None; next_seq = 0 }

  let store t event =
    Mutex.lock t.mu;
    let r = { seq = t.next_seq; event } in
    t.slots.(t.next_seq mod t.cap) <- Some r;
    t.next_seq <- t.next_seq + 1;
    Mutex.unlock t.mu;
    r

  let capacity t = t.cap

  let emitted t =
    Mutex.lock t.mu;
    let n = t.next_seq in
    Mutex.unlock t.mu;
    n

  let dropped t =
    let n = emitted t in
    if n > t.cap then n - t.cap else 0

  let to_list t =
    Mutex.lock t.mu;
    let next = t.next_seq in
    let first = if next > t.cap then next - t.cap else 0 in
    let l =
      List.init (next - first) (fun i ->
          match t.slots.((first + i) mod t.cap) with Some r -> r | None -> assert false)
    in
    Mutex.unlock t.mu;
    l

  let event_to_string = function
    | Translate { isa; src; instrs; emitted } ->
      Printf.sprintf "translate %s src=0x%x instrs=%d emitted=%d" isa src instrs emitted
    | Cache_hit { isa; src } -> Printf.sprintf "cache-hit %s src=0x%x" isa src
    | Cache_miss { isa; src; compulsory } ->
      Printf.sprintf "cache-miss %s src=0x%x (%s)" isa src
        (if compulsory then "compulsory" else "capacity")
    | Cache_flush { isa; used_bytes } -> Printf.sprintf "cache-flush %s used=%d" isa used_bytes
    | Cache_evict { isa; src; bytes } ->
      Printf.sprintf "cache-evict %s src=0x%x bytes=%d" isa src bytes
    | Memo_install { isa; src; instrs } ->
      Printf.sprintf "memo-install %s src=0x%x instrs=%d" isa src instrs
    | Migrate { from_isa; to_isa; frames; words; cycles; forced } ->
      Printf.sprintf "migrate %s->%s frames=%d words=%d cycles=%.0f (%s)" from_isa to_isa frames
        words cycles
        (if forced then "forced" else "security")
    | Stack_transform { frames; words; complete } ->
      Printf.sprintf "stack-transform frames=%d words=%d complete=%b" frames words complete
    | Suspicious { isa; target_src } -> Printf.sprintf "suspicious %s target=0x%x" isa target_src
    | Fault { isa; reason } -> Printf.sprintf "fault %s: %s" isa reason
    | Span_end { name; begin_cycle; end_cycle } ->
      Printf.sprintf "span %s cycles=[%.0f, %.0f] dur=%.0f" name begin_cycle end_cycle
        (end_cycle -. begin_cycle)
end

(* Nestable, cycle-stamped phase spans. A span attributes a stretch of
   *simulated* cycles (the deterministic clock of the machine/core it
   ran on, not wall time) to a named phase: translate, exec,
   stack_transform, migration, context_switch_flush, schedule.

   Nesting is implicit: each domain keeps a stack of its open spans
   (Domain.DLS), so a translate span begun while an exec span is open
   records that exec span as its parent without any handle threading
   through the machine layers. This is sound because one slice of one
   process runs entirely on one domain — spans open and close in LIFO
   order per domain even when a CMP interleaves processes, and the
   parallel round driver gives each slice its own domain.

   Completed spans accumulate in an unbounded mutex-guarded list.
   Span ids and list order depend on domain interleaving under a
   parallel run; everything the exporters serialize is therefore
   canonically re-sorted by content (see Export), which restores
   bit-for-bit determinism. *)
module Span = struct
  type span = {
    sp_id : int;
    sp_parent : int option;
    sp_name : string;
    sp_attrs : (string * string) list;
    sp_begin : float;
    mutable sp_end : float;
    (* host-allocation self-attribution marks, live only while a
       Hostprof is attached to the owning context (see Hostprof):
       [sp_mark] is the Gc.minor_words reading when this span last
       became the youngest open span on its domain, [sp_self_words]
       the words charged to it so far. *)
    mutable sp_mark : float;
    mutable sp_self_words : float;
  }

  type t = { mu : Mutex.t; mutable next_id : int; mutable rev_done : span list }

  let create () = { mu = Mutex.create (); next_id = 0; rev_done = [] }

  (* Per-domain stack of open spans, tagged with the store they belong
     to so interleaved contexts on one domain never cross-link. *)
  let stack_key : (t * span) list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let enter t ~name ?(attrs = []) ~cycle () =
    Mutex.lock t.mu;
    let id = t.next_id in
    t.next_id <- id + 1;
    Mutex.unlock t.mu;
    let stack = Domain.DLS.get stack_key in
    let parent = List.find_map (fun (s, sp) -> if s == t then Some sp.sp_id else None) !stack in
    let sp =
      {
        sp_id = id;
        sp_parent = parent;
        sp_name = name;
        sp_attrs = attrs;
        sp_begin = cycle;
        sp_end = Float.nan;
        sp_mark = 0.;
        sp_self_words = 0.;
      }
    in
    stack := (t, sp) :: !stack;
    sp

  let exit t sp ~cycle =
    sp.sp_end <- (if cycle < sp.sp_begin then sp.sp_begin else cycle);
    let stack = Domain.DLS.get stack_key in
    stack := List.filter (fun (_, open_sp) -> open_sp != sp) !stack;
    Mutex.lock t.mu;
    t.rev_done <- sp :: t.rev_done;
    Mutex.unlock t.mu

  let completed t =
    Mutex.lock t.mu;
    let l = List.rev t.rev_done in
    Mutex.unlock t.mu;
    l

  let count t =
    Mutex.lock t.mu;
    let n = List.length t.rev_done in
    Mutex.unlock t.mu;
    n

  let id sp = sp.sp_id
  let parent_id sp = sp.sp_parent
  let name sp = sp.sp_name
  let attrs sp = sp.sp_attrs
  let attr sp key = List.assoc_opt key sp.sp_attrs
  let begin_cycle sp = sp.sp_begin
  let end_cycle sp = if Float.is_nan sp.sp_end then sp.sp_begin else sp.sp_end
  let duration sp = end_cycle sp -. sp.sp_begin

  (* Content-only ordering (ids excluded): any permutation of the same
     multiset of spans sorts to the same sequence, which is what makes
     exports from a parallel run byte-identical to the serial run.
     Identical-content ties are harmless — swapping equal elements
     changes neither serialization nor float summation. *)
  let canonical spans =
    List.sort
      (fun a b ->
        compare
          (a.sp_begin, end_cycle a, a.sp_name, a.sp_attrs)
          (b.sp_begin, end_cycle b, b.sp_name, b.sp_attrs))
      spans

  let total t ~name:n =
    List.fold_left
      (fun acc sp -> if sp.sp_name = n then acc +. duration sp else acc)
      0.
      (canonical (completed t))

  (* Fold a finished child store into [into], re-basing ids but
     preserving the child's internal parent links and insertion
     order. *)
  let merge ~into src =
    let spans = completed src in
    Mutex.lock into.mu;
    let base = into.next_id in
    let remap = Hashtbl.create 64 in
    List.iteri (fun i sp -> Hashtbl.replace remap sp.sp_id (base + i)) spans;
    into.next_id <- base + List.length spans;
    List.iter
      (fun sp ->
        let copy =
          {
            sp with
            sp_id = Hashtbl.find remap sp.sp_id;
            sp_parent =
              (match sp.sp_parent with None -> None | Some p -> Hashtbl.find_opt remap p);
          }
        in
        into.rev_done <- copy :: into.rev_done)
      spans;
    Mutex.unlock into.mu
end

(* The forensic record the security story needs: every suspicious
   control transfer, every migration decision and its outcome, every
   process kill — unbounded (unlike the trace ring, which forgets),
   cycle-stamped, and queryable from tests. *)
module Audit = struct
  type kind =
    | Suspicious of { target_src : int }
    | Decision of { target_src : int; migrate : bool; forced : bool }
    | Migration of {
        to_isa : string;
        forced : bool;
        frames : int;
        words : int;
        cost_cycles : float;
        outcome : string;  (* "resumed" or "killed" *)
      }
    | Fault of { reason : string }
    | Sched_migrate of { core : int; security : bool }

  type entry = { au_seq : int; au_cycle : float; au_isa : string; au_pid : int; au_kind : kind }

  type t = { mu : Mutex.t; mutable next_seq : int; mutable rev_entries : entry list }

  let create () = { mu = Mutex.create (); next_seq = 0; rev_entries = [] }

  let record t ~cycle ~isa ~pid kind =
    Mutex.lock t.mu;
    let e = { au_seq = t.next_seq; au_cycle = cycle; au_isa = isa; au_pid = pid; au_kind = kind } in
    t.next_seq <- t.next_seq + 1;
    t.rev_entries <- e :: t.rev_entries;
    Mutex.unlock t.mu;
    e

  let entries t =
    Mutex.lock t.mu;
    let l = List.rev t.rev_entries in
    Mutex.unlock t.mu;
    l

  let length t =
    Mutex.lock t.mu;
    let n = t.next_seq in
    Mutex.unlock t.mu;
    n

  let count t p = List.length (List.filter p (entries t))

  let kind_label = function
    | Suspicious _ -> "suspicious"
    | Decision _ -> "decision"
    | Migration _ -> "migration"
    | Fault _ -> "fault"
    | Sched_migrate _ -> "sched-migrate"

  let merge ~into src =
    let es = entries src in
    Mutex.lock into.mu;
    List.iter
      (fun e ->
        into.rev_entries <- { e with au_seq = into.next_seq } :: into.rev_entries;
        into.next_seq <- into.next_seq + 1)
      es;
    Mutex.unlock into.mu
end

module Sink = struct
  type mem = { m_mu : Mutex.t; mutable m_recs : Trace.record list }

  type t = Null | Fn of (Trace.record -> unit) | Memory of mem

  let null = Null

  let stderr =
    Fn
      (fun r ->
        Printf.eprintf "[obs %6d] %s\n%!" r.Trace.seq (Trace.event_to_string r.Trace.event))

  let of_fn f = Fn f
  let memory () = Memory { m_mu = Mutex.create (); m_recs = [] }

  let contents = function
    | Memory m ->
      Mutex.lock m.m_mu;
      let l = List.rev m.m_recs in
      Mutex.unlock m.m_mu;
      l
    | Null | Fn _ -> []

  let deliver t r =
    match t with
    | Null -> ()
    | Fn f -> f r
    | Memory m ->
      Mutex.lock m.m_mu;
      m.m_recs <- r :: m.m_recs;
      Mutex.unlock m.m_mu
end

(* Host-side GC/allocation profiling: Gc counters sampled at span
   boundaries and around whole runs. Everything here measures the
   *host* OCaml process — minor-heap words allocated while a phase
   span was the youngest open span on its domain, Gc.quick_stat
   deltas over a run — so the numbers vary with the OCaml version,
   inlining decisions and domain interleaving. Hostprof output is
   therefore exported in a clearly partitioned non-deterministic
   section and is excluded from the -j1/-j4 byte-identity contract
   (the deterministic timeline and metrics still satisfy it; the
   exporters only include hostprof when explicitly asked).

   Attribution discipline: when a hostprof is attached to a context,
   enter_span/exit_span bracket the per-domain span stack with
   Gc.minor_words readings — entering a child charges the parent up
   to "now" and pauses it; exiting charges the child and restarts the
   parent's mark — so each phase accumulates *self* words, children
   excluded, the same self-time discipline the folded exporter uses
   for cycles. *)
module Hostprof = struct
  type phase = { mutable ph_spans : int; mutable ph_words : float }

  type run_delta = {
    hd_minor_words : float;
    hd_promoted_words : float;
    hd_major_words : float;
    hd_minor_collections : int;
    hd_major_collections : int;
    hd_instructions : int;  (* retired guest instructions, caller-supplied *)
  }

  type t = {
    mu : Mutex.t;
    phases : (string, phase) Hashtbl.t;
    mutable run_base : (Gc.stat * float) option;
        (* quick_stat only folds minor words in at collection
           boundaries, so the precise allocation pointer
           [Gc.minor_words ()] is carried alongside it *)
    mutable run : run_delta option;
  }

  let create () =
    { mu = Mutex.create (); phases = Hashtbl.create 16; run_base = None; run = None }

  let note t ~phase ~words =
    Metrics.locked t.mu (fun () ->
        match Hashtbl.find_opt t.phases phase with
        | Some p ->
          p.ph_spans <- p.ph_spans + 1;
          p.ph_words <- p.ph_words +. words
        | None -> Hashtbl.replace t.phases phase { ph_spans = 1; ph_words = words })

  let phases t =
    Metrics.locked t.mu (fun () ->
        List.sort compare
          (Hashtbl.fold (fun n p acc -> (n, p.ph_spans, p.ph_words) :: acc) t.phases []))

  let start_run t = t.run_base <- Some (Gc.quick_stat (), Gc.minor_words ())

  let stop_run t ~instructions =
    match t.run_base with
    | None -> ()
    | Some (b, b_minor) ->
      let a = Gc.quick_stat () in
      let a_minor = Gc.minor_words () in
      t.run_base <- None;
      t.run <-
        Some
          {
            hd_minor_words = a_minor -. b_minor;
            hd_promoted_words = a.Gc.promoted_words -. b.Gc.promoted_words;
            hd_major_words = a.Gc.major_words -. b.Gc.major_words;
            hd_minor_collections = a.Gc.minor_collections - b.Gc.minor_collections;
            hd_major_collections = a.Gc.major_collections - b.Gc.major_collections;
            hd_instructions = instructions;
          }

  let run t = t.run

  let minor_words_per_instr t =
    match t.run with
    | Some r when r.hd_instructions > 0 -> Some (r.hd_minor_words /. float_of_int r.hd_instructions)
    | _ -> None
end

type t = {
  mutable enabled : bool;
  metrics : Metrics.t;
  trace : Trace.t;
  spans : Span.t;
  audit : Audit.t;
  mutable sink : Sink.t;
  mutable hostprof : Hostprof.t option;
}

let create ?(on = true) ?(sink = Sink.null) ?(trace_capacity = 1024) () =
  {
    enabled = on;
    metrics = Metrics.create ();
    trace = Trace.create ~capacity:trace_capacity ();
    spans = Span.create ();
    audit = Audit.create ();
    sink;
    hostprof = None;
  }

let disabled = create ~on:false ()
let global = create ()

let on t = t.enabled
let set_on t b = t.enabled <- b
let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans
let audit t = t.audit
let sink t = t.sink
let set_sink t s = t.sink <- s

let emit t event = Sink.deliver t.sink (Trace.store t.trace event)

let events t = Trace.to_list t.trace

let snapshot t = Metrics.snapshot t.metrics

let set_hostprof t hp = t.hostprof <- Some hp
let hostprof t = t.hostprof

(* The youngest open span of this context on the current domain. *)
let top_open_span t =
  let stack = Domain.DLS.get Span.stack_key in
  List.find_map (fun (s, sp) -> if s == t.spans then Some sp else None) !stack

(* Span helpers that carry the disabled check themselves: a disabled
   context hands out no handle, so an instrumented region costs one
   branch and an immediate [None]. With a Hostprof attached they also
   bracket the span stack with Gc.minor_words readings — see the
   Hostprof header comment for the self-attribution discipline. *)
let enter_span t ~name ?attrs ~cycle () =
  if not t.enabled then None
  else begin
    (match t.hostprof with
    | None -> ()
    | Some _ -> (
      let now = Gc.minor_words () in
      match top_open_span t with
      | Some parent ->
        parent.Span.sp_self_words <- parent.Span.sp_self_words +. (now -. parent.Span.sp_mark);
        parent.Span.sp_mark <- now
      | None -> ()));
    let sp = Span.enter t.spans ~name ?attrs ~cycle () in
    (match t.hostprof with None -> () | Some _ -> sp.Span.sp_mark <- Gc.minor_words ());
    Some sp
  end

let exit_span t handle ~cycle =
  match handle with
  | None -> ()
  | Some sp ->
    (match t.hostprof with
    | None -> ()
    | Some hp ->
      let now = Gc.minor_words () in
      sp.Span.sp_self_words <- sp.Span.sp_self_words +. (now -. sp.Span.sp_mark);
      Hostprof.note hp ~phase:sp.Span.sp_name ~words:sp.Span.sp_self_words);
    Span.exit t.spans sp ~cycle;
    (match t.hostprof with
    | None -> ()
    | Some _ -> (
      match top_open_span t with
      | Some parent -> parent.Span.sp_mark <- Gc.minor_words ()
      | None -> ()));
    if t.enabled then
      emit t
        (Trace.Span_end
           { name = Span.name sp; begin_cycle = Span.begin_cycle sp; end_cycle = Span.end_cycle sp })

let audit_emit t ~cycle ~isa ~pid kind =
  if t.enabled then ignore (Audit.record t.audit ~cycle ~isa ~pid kind)

let child t =
  let c = create ~on:t.enabled ~sink:Sink.null ~trace_capacity:(Trace.capacity t.trace) () in
  (* the hostprof (if any) is shared, not copied: per-phase host
     allocation from every shard/task folds into one table *)
  c.hostprof <- t.hostprof;
  c

let merge ~into src =
  Metrics.merge ~into:into.metrics (Metrics.snapshot src.metrics);
  Span.merge ~into:into.spans src.spans;
  Audit.merge ~into:into.audit src.audit;
  if into.enabled then
    List.iter (fun (r : Trace.record) -> emit into r.Trace.event) (Trace.to_list src.trace)

(* ------------------------------------------------------------------ *)
(* Time-resolved telemetry: windowed delta snapshots keyed to the
   deterministic guest/fleet clock.

   A Timeline divides the clock into fixed-width windows and folds
   *deltas* into the window containing each sample's clock stamp. Two
   feeds exist: [sample], which diffs a source's cumulative
   Metrics.snapshot against the last snapshot seen for that source
   key (per-window counter increments and histogram deltas fall out),
   and [record], which adds caller-computed per-window counts
   directly (e.g. completions per wave).

   Determinism contract: drivers call sample/record from the
   sequential section after their barrier (Fleet's wave loop after
   the shard fan-out, Cmp.step's accounting stage), in a fixed source
   order, at clock stamps that are themselves deterministic — so the
   full timeline, and every export of it, is byte-identical across
   -j 1 / -j N / stealing on or off. Attribution granularity is the
   sampling interval: work of a wave that straddles a window boundary
   lands in the window containing the wave-end stamp. *)
module Timeline = struct
  type window = {
    tw_index : int;
    tw_counters : (string * int) list;  (* sorted by name; positive deltas only *)
    tw_histograms : (string * Metrics.histogram_summary) list;  (* sorted; non-empty only *)
  }

  type acc = {
    wa_counters : (string, int) Hashtbl.t;
    wa_histograms : (string, Metrics.histogram_summary) Hashtbl.t;
  }

  type t = {
    tl_width : float;
    mu : Mutex.t;
    last : (string, Metrics.snapshot) Hashtbl.t;  (* per source key *)
    wins : (int, acc) Hashtbl.t;
  }

  let create ~window () =
    if not (Float.is_finite window) || window <= 0. then
      invalid_arg "Obs.Timeline.create: window must be a positive cycle count";
    { tl_width = window; mu = Mutex.create (); last = Hashtbl.create 8; wins = Hashtbl.create 64 }

  let window_cycles t = t.tl_width

  let index_of t clock =
    let i = int_of_float (Float.floor (clock /. t.tl_width)) in
    if i < 0 then 0 else i

  let acc_of t i =
    match Hashtbl.find_opt t.wins i with
    | Some a -> a
    | None ->
      let a = { wa_counters = Hashtbl.create 16; wa_histograms = Hashtbl.create 8 } in
      Hashtbl.replace t.wins i a;
      a

  let add_counter a name v =
    if v > 0 then
      Hashtbl.replace a.wa_counters name
        ((match Hashtbl.find_opt a.wa_counters name with Some x -> x | None -> 0) + v)

  let add_histogram a name (d : Metrics.histogram_summary) =
    if d.Metrics.hs_count > 0 then
      Hashtbl.replace a.wa_histograms name
        (match Hashtbl.find_opt a.wa_histograms name with
        | None -> d
        | Some prev -> Metrics.combine_summaries prev d)

  let record t ~clock ~counters =
    Metrics.locked t.mu (fun () ->
        let a = acc_of t (index_of t clock) in
        List.iter (fun (n, v) -> add_counter a n v) counters)

  let sample t ~key ~clock (snap : Metrics.snapshot) =
    Metrics.locked t.mu (fun () ->
        let base = Hashtbl.find_opt t.last key in
        Hashtbl.replace t.last key snap;
        let a = acc_of t (index_of t clock) in
        List.iter
          (fun (n, v) ->
            let prev = match base with None -> 0 | Some b -> Metrics.counter_value b n in
            add_counter a n (v - prev))
          snap.Metrics.snap_counters;
        List.iter
          (fun (n, (h : Metrics.histogram_summary)) ->
            let d =
              match Option.bind base (fun b -> Metrics.histogram_summary b n) with
              | None -> h
              | Some hb -> Metrics.delta ~base:hb h
            in
            add_histogram a n d)
          snap.Metrics.snap_histograms)

  let windows t =
    Metrics.locked t.mu (fun () ->
        Hashtbl.fold (fun i a acc -> (i, a) :: acc) t.wins []
        |> List.sort (fun (i, _) (j, _) -> compare i j)
        |> List.map (fun (i, a) ->
               {
                 tw_index = i;
                 tw_counters =
                   List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.wa_counters []);
                 tw_histograms =
                   List.sort
                     (fun (x, _) (y, _) -> compare x y)
                     (Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.wa_histograms []);
               }))

  let window_count t = Metrics.locked t.mu (fun () -> Hashtbl.length t.wins)

  let span t =
    Metrics.locked t.mu (fun () ->
        Hashtbl.fold
          (fun i _ acc ->
            match acc with None -> Some (i, i) | Some (lo, hi) -> Some (min lo i, max hi i))
          t.wins None)

  let counter_value w name =
    match List.assoc_opt name w.tw_counters with Some v -> v | None -> 0

  let histogram w name = List.assoc_opt name w.tw_histograms

  (* Fold [src]'s recorded windows into [into] (window widths must
     match). Only the accumulated windows merge; per-source last
     snapshots do not travel — merging is for folding finished
     sub-timelines, not for resuming sampling on the source. *)
  let merge ~into src =
    if into.tl_width <> src.tl_width then
      invalid_arg "Obs.Timeline.merge: window widths differ";
    let ws = windows src in
    Metrics.locked into.mu (fun () ->
        List.iter
          (fun w ->
            let a = acc_of into w.tw_index in
            List.iter (fun (n, v) -> add_counter a n v) w.tw_counters;
            List.iter (fun (n, h) -> add_histogram a n h) w.tw_histograms)
          ws)
end

(* Service-level-objective tracking over a Timeline: a latency target
   plus an error budget (the fraction of requests allowed over
   target), evaluated per window with the standard burn-rate /
   budget-remaining / time-to-exhaustion arithmetic. Violations are
   estimated from the windowed histogram deltas via
   Metrics.count_above, so the whole report inherits the timeline's
   determinism. *)
module Slo = struct
  type objective = { slo_target : float; slo_budget : float }

  let objective ~target ~budget =
    if not (Float.is_finite target) || target <= 0. then
      invalid_arg "Obs.Slo.objective: target must be a positive cycle count";
    if not (Float.is_finite budget) || budget <= 0. || budget >= 1. then
      invalid_arg "Obs.Slo.objective: budget must be a violation fraction in (0, 1)";
    { slo_target = target; slo_budget = budget }

  type window_report = {
    sw_index : int;
    sw_requests : int;
    sw_violations : float;  (* estimated requests over target this window *)
    sw_burn : float;  (* (violations/requests)/budget; 1.0 = burning exactly at budget *)
    sw_cum_requests : int;
    sw_cum_violations : float;
    sw_budget_remaining : float;  (* budget*cum_requests - cum_violations *)
    sw_exhausted : bool;
    sw_tte_windows : float option;
        (* windows until exhaustion extrapolating this window's net burn *)
  }

  let evaluate obj ~latency tl =
    let cum_req = ref 0 and cum_vio = ref 0. in
    List.map
      (fun (w : Timeline.window) ->
        let requests, violations =
          match Timeline.histogram w latency with
          | None -> (0, 0.)
          | Some h -> (h.Metrics.hs_count, Metrics.count_above h obj.slo_target)
        in
        cum_req := !cum_req + requests;
        cum_vio := !cum_vio +. violations;
        let burn =
          if requests = 0 then 0.
          else violations /. float_of_int requests /. obj.slo_budget
        in
        let remaining = (obj.slo_budget *. float_of_int !cum_req) -. !cum_vio in
        let net = violations -. (obj.slo_budget *. float_of_int requests) in
        {
          sw_index = w.Timeline.tw_index;
          sw_requests = requests;
          sw_violations = violations;
          sw_burn = burn;
          sw_cum_requests = !cum_req;
          sw_cum_violations = !cum_vio;
          sw_budget_remaining = remaining;
          sw_exhausted = remaining < 0.;
          sw_tte_windows = (if net > 0. && remaining > 0. then Some (remaining /. net) else None);
        })
      (Timeline.windows tl)
end

(* ------------------------------------------------------------------ *)
(* Deterministic serializers. All three re-sort their inputs by
   content before writing, so a parallel run (whose span/audit
   insertion order depends on domain scheduling) serializes to exactly
   the bytes of the serial run. *)
module Export = struct
  module Json = Hipstr_util.Json

  (* --- track resolution for the Chrome trace ---

     A span lands on the CMP-core track named by its "core" attribute
     (pid 0, tid = core id); otherwise on the track of the process
     named by its "pid" attribute (pid = 1 + process pid, tid 0);
     otherwise it inherits its parent's track. One track per CMP core,
     one per process. *)
  let attr_int sp key = Option.bind (Span.attr sp key) int_of_string_opt

  let rec track_of tbl sp =
    match attr_int sp "core" with
    | Some c -> (0, c)
    | None -> (
      match attr_int sp "pid" with
      | Some p -> (1 + p, 0)
      | None -> (
        match Option.bind (Span.parent_id sp) (Hashtbl.find_opt tbl) with
        | Some parent -> track_of tbl parent
        | None -> (1, 0)))

  let span_table spans =
    let tbl = Hashtbl.create 256 in
    List.iter (fun sp -> Hashtbl.replace tbl (Span.id sp) sp) spans;
    tbl

  let args_of_attrs attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

  let audit_fields (e : Audit.entry) =
    match e.au_kind with
    | Audit.Suspicious { target_src } -> [ ("target_src", Json.Str (Printf.sprintf "0x%x" target_src)) ]
    | Audit.Decision { target_src; migrate; forced } ->
      [
        ("target_src", Json.Str (Printf.sprintf "0x%x" target_src));
        ("migrate", Json.Bool migrate);
        ("forced", Json.Bool forced);
      ]
    | Audit.Migration { to_isa; forced; frames; words; cost_cycles; outcome } ->
      [
        ("to_isa", Json.Str to_isa);
        ("forced", Json.Bool forced);
        ("frames", Json.num_of_int frames);
        ("words", Json.num_of_int words);
        ("cost_cycles", Json.Num cost_cycles);
        ("outcome", Json.Str outcome);
      ]
    | Audit.Fault { reason } -> [ ("reason", Json.Str reason) ]
    | Audit.Sched_migrate { core; security } ->
      [ ("core", Json.num_of_int core); ("security", Json.Bool security) ]

  let audit_rank (e : Audit.entry) =
    match e.au_kind with
    | Audit.Sched_migrate _ -> 0
    | Audit.Suspicious _ -> 1
    | Audit.Decision _ -> 2
    | Audit.Migration _ -> 3
    | Audit.Fault _ -> 4

  (* Content ordering for audit entries: per-process timeline first
     (process cycle clocks are independent), then cycle, then the
     causal kind order at equal cycles, then rendered content. *)
  let canonical_audit entries =
    List.sort
      (fun (a : Audit.entry) (b : Audit.entry) ->
        compare
          (a.au_pid, a.au_cycle, audit_rank a, a.au_isa, Json.to_string (Json.Obj (audit_fields a)))
          (b.au_pid, b.au_cycle, audit_rank b, b.au_isa, Json.to_string (Json.Obj (audit_fields b))))
      entries

  let has_prefix ~prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

  (* Counter ("C") events from a timeline: one Perfetto counter track
     per series, one sample per window at the window's start stamp.
     Counters chart their per-window delta; histograms chart their
     per-window p99. The per-tenant namespaces are excluded to bound
     track cardinality. Deterministic because the timeline is. *)
  let timeline_counter_events tl =
    let width = Timeline.window_cycles tl in
    List.concat_map
      (fun (w : Timeline.window) ->
        let ts = float_of_int w.Timeline.tw_index *. width in
        let series =
          List.filter_map
            (fun (n, v) ->
              if has_prefix ~prefix:"fleet.tenant." n then None else Some (n, float_of_int v))
            w.Timeline.tw_counters
          @ List.filter_map
              (fun (n, h) ->
                if has_prefix ~prefix:"fleet.tenant." n then None
                else Some (n ^ ".p99", Metrics.p99 h))
              w.Timeline.tw_histograms
        in
        List.map
          (fun (name, v) ->
            Json.Obj
              [
                ("name", Json.Str name);
                ("ph", Json.Str "C");
                ("ts", Json.Num ts);
                ("pid", Json.num_of_int 0);
                ("args", Json.Obj [ ("value", Json.Num v) ]);
              ])
          series)
      (Timeline.windows tl)

  (* Chrome trace_event JSON, loadable in Perfetto / chrome://tracing.
     Complete ("X") events for spans, instant ("i") events for audit
     entries, metadata ("M") events naming the tracks, and — when a
     timeline is supplied — counter ("C") tracks of its per-window
     series. Timestamps are simulated cycles presented as
     microseconds. *)
  let trace_json ?timeline t =
    let spans = Span.canonical (Span.completed t.spans) in
    let tbl = span_table (Span.completed t.spans) in
    let entries = canonical_audit (Audit.entries t.audit) in
    (* track discovery: cores, then processes *)
    let cores = Hashtbl.create 8 and procs = Hashtbl.create 8 in
    List.iter
      (fun sp ->
        match track_of tbl sp with
        | 0, tid ->
          if not (Hashtbl.mem cores tid) then
            Hashtbl.replace cores tid (match Span.attr sp "isa" with Some i -> i | None -> "?")
        | pid, _ ->
          if not (Hashtbl.mem procs pid) then
            Hashtbl.replace procs pid (match Span.attr sp "proc" with Some n -> Some n | None -> None))
      spans;
    List.iter
      (fun (e : Audit.entry) ->
        match e.au_kind with
        | Audit.Sched_migrate { core; _ } ->
          if not (Hashtbl.mem cores core) then Hashtbl.replace cores core e.au_isa
        | _ ->
          if not (Hashtbl.mem procs (1 + e.au_pid)) then Hashtbl.replace procs (1 + e.au_pid) None)
      entries;
    let sorted_bindings h = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []) in
    let metadata =
      (if Hashtbl.length cores = 0 then []
       else
         [
           Json.Obj
             [
               ("name", Json.Str "process_name");
               ("ph", Json.Str "M");
               ("pid", Json.num_of_int 0);
               ("args", Json.Obj [ ("name", Json.Str "cmp cores") ]);
             ];
         ])
      @ List.map
          (fun (tid, isa) ->
            Json.Obj
              [
                ("name", Json.Str "thread_name");
                ("ph", Json.Str "M");
                ("pid", Json.num_of_int 0);
                ("tid", Json.num_of_int tid);
                ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "core %d (%s)" tid isa)) ]);
              ])
          (sorted_bindings cores)
      @ List.map
          (fun (pid, name) ->
            let label =
              match name with
              | Some n -> Printf.sprintf "process %d (%s)" (pid - 1) n
              | None -> Printf.sprintf "process %d" (pid - 1)
            in
            Json.Obj
              [
                ("name", Json.Str "process_name");
                ("ph", Json.Str "M");
                ("pid", Json.num_of_int pid);
                ("args", Json.Obj [ ("name", Json.Str label) ]);
              ])
          (sorted_bindings procs)
    in
    let span_events =
      List.map
        (fun sp ->
          let pid, tid = track_of tbl sp in
          ( (pid, tid, Span.begin_cycle sp, Span.duration sp, Span.name sp),
            Json.Obj
              [
                ("name", Json.Str (Span.name sp));
                ("ph", Json.Str "X");
                ("ts", Json.Num (Span.begin_cycle sp));
                ("dur", Json.Num (Span.duration sp));
                ("pid", Json.num_of_int pid);
                ("tid", Json.num_of_int tid);
                ("args", args_of_attrs (Span.attrs sp));
              ] ))
        spans
    in
    let instant_events =
      List.map
        (fun (e : Audit.entry) ->
          let pid, tid =
            match e.au_kind with Audit.Sched_migrate { core; _ } -> (0, core) | _ -> (1 + e.au_pid, 0)
          in
          ( (pid, tid, e.au_cycle, 0., Audit.kind_label e.au_kind),
            Json.Obj
              [
                ("name", Json.Str (Audit.kind_label e.au_kind));
                ("ph", Json.Str "i");
                ("s", Json.Str "t");
                ("ts", Json.Num e.au_cycle);
                ("pid", Json.num_of_int pid);
                ("tid", Json.num_of_int tid);
                ( "args",
                  Json.Obj
                    (("isa", Json.Str e.au_isa)
                    :: ("proc_pid", Json.num_of_int e.au_pid)
                    :: audit_fields e) );
              ] ))
        entries
    in
    let timed =
      List.sort
        (fun (ka, va) (kb, vb) -> compare (ka, Json.to_string va) (kb, Json.to_string vb))
        (span_events @ instant_events)
    in
    let counters = match timeline with None -> [] | Some tl -> timeline_counter_events tl in
    Json.to_string
      (Json.Obj
         [
           ("traceEvents", Json.List (metadata @ List.map snd timed @ counters));
           ("displayTimeUnit", Json.Str "ns");
         ])
    ^ "\n"

  (* Folded-stack profile: one "phase;phase;...;leaf cycles" line per
     distinct span path, self time only (children subtracted), ready
     for flamegraph.pl / speedscope / inferno. Translate spans grow a
     leaf frame for the function their translation unit belongs to, so
     per-function translation cost is visible. *)
  let folded t =
    let spans = Span.canonical (Span.completed t.spans) in
    let tbl = span_table spans in
    let child_sum = Hashtbl.create 256 in
    List.iter
      (fun sp ->
        match Span.parent_id sp with
        | None -> ()
        | Some p ->
          Hashtbl.replace child_sum p
            ((match Hashtbl.find_opt child_sum p with Some s -> s | None -> 0.)
            +. Span.duration sp))
      spans;
    let rec path sp =
      let base =
        match Option.bind (Span.parent_id sp) (Hashtbl.find_opt tbl) with
        | Some parent -> path parent ^ ";" ^ Span.name sp
        | None -> Span.name sp
      in
      base
    in
    let totals = Hashtbl.create 64 in
    List.iter
      (fun sp ->
        let children =
          match Hashtbl.find_opt child_sum (Span.id sp) with Some s -> s | None -> 0.
        in
        let self = Float.max 0. (Span.duration sp -. children) in
        let p =
          path sp ^ (match Span.attr sp "func" with Some f -> ";" ^ f | None -> "")
        in
        Hashtbl.replace totals p
          ((match Hashtbl.find_opt totals p with Some s -> s | None -> 0.) +. self))
      spans;
    let lines =
      List.sort compare
        (Hashtbl.fold
           (fun p v acc ->
             let rounded = Float.round v in
             if rounded > 0. then Printf.sprintf "%s %.0f" p rounded :: acc else acc)
           totals [])
    in
    String.concat "\n" lines ^ if lines = [] then "" else "\n"

  let span_rollup t =
    let spans = Span.canonical (Span.completed t.spans) in
    let names = List.sort_uniq compare (List.map Span.name spans) in
    List.map
      (fun n ->
        let mine = List.filter (fun sp -> Span.name sp = n) spans in
        ( n,
          List.length mine,
          List.fold_left (fun acc sp -> acc +. Span.duration sp) 0. mine ))
      names

  let metrics_json t =
    let snap = Metrics.snapshot t.metrics in
    let counters =
      Json.Obj (List.map (fun (n, v) -> (n, Json.num_of_int v)) snap.Metrics.snap_counters)
    in
    let histograms =
      Json.Obj
        (List.map
           (fun (n, (h : Metrics.histogram_summary)) ->
             ( n,
               Json.Obj
                 [
                   ("count", Json.num_of_int h.hs_count);
                   ("sum", Json.Num h.hs_sum);
                   ("min", Json.Num h.hs_min);
                   ("max", Json.Num h.hs_max);
                   ("mean", Json.Num h.hs_mean);
                   ("p50", Json.Num (Metrics.p50 h));
                   ("p95", Json.Num (Metrics.p95 h));
                   ("p99", Json.Num (Metrics.p99 h));
                   ("buckets", Json.List (Array.to_list (Array.map Json.num_of_int h.hs_buckets)));
                 ] ))
           snap.Metrics.snap_histograms)
    in
    let spans =
      Json.Obj
        (List.map
           (fun (n, count, cycles) ->
             (n, Json.Obj [ ("count", Json.num_of_int count); ("cycles", Json.Num cycles) ]))
           (span_rollup t))
    in
    let audit_counts =
      let es = Audit.entries t.audit in
      let count label = List.length (List.filter (fun e -> Audit.kind_label e.Audit.au_kind = label) es) in
      Json.Obj
        [
          ("entries", Json.num_of_int (List.length es));
          ("suspicious", Json.num_of_int (count "suspicious"));
          ("decisions", Json.num_of_int (count "decision"));
          ("migrations", Json.num_of_int (count "migration"));
          ("faults", Json.num_of_int (count "fault"));
          ("sched_migrations", Json.num_of_int (count "sched-migrate"));
        ]
    in
    let ring =
      Json.Obj
        [
          ("emitted", Json.num_of_int (Trace.emitted t.trace));
          ("capacity", Json.num_of_int (Trace.capacity t.trace));
          ("dropped", Json.num_of_int (Trace.dropped t.trace));
        ]
    in
    Json.to_string_pretty
      (Json.Obj
         [
           ("counters", counters);
           ("histograms", histograms);
           ("spans", spans);
           ("audit", audit_counts);
           ("trace_ring", ring);
         ])
    ^ "\n"

  (* Prometheus text exposition. Metric names are sanitized to
     [a-zA-Z0-9_] under a hipstr_ prefix; histograms use the standard
     cumulative-bucket convention with log2 upper bounds. *)
  let metrics_prom t =
    let b = Buffer.create 4096 in
    let sane name =
      "hipstr_"
      ^ String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name
    in
    let snap = Metrics.snapshot t.metrics in
    List.iter
      (fun (n, v) ->
        let n = sane n in
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
      snap.Metrics.snap_counters;
    List.iter
      (fun (n, (h : Metrics.histogram_summary)) ->
        let n = sane n in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i = Array.length h.hs_buckets - 1 then "+Inf"
              else Printf.sprintf "%.0f" (Float.pow 2. (float_of_int i))
            in
            Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cum))
          h.hs_buckets;
        Buffer.add_string b (Printf.sprintf "%s_sum %.17g\n" n h.hs_sum);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.hs_count);
        (* summary-style quantile estimates alongside the buckets, so
           a scrape gets the tail without server-side interpolation *)
        List.iter
          (fun (q, v) -> Buffer.add_string b (Printf.sprintf "%s_q{quantile=\"%s\"} %.17g\n" n q v))
          [ ("0.5", Metrics.p50 h); ("0.95", Metrics.p95 h); ("0.99", Metrics.p99 h) ])
      snap.Metrics.snap_histograms;
    (match span_rollup t with
    | [] -> ()
    | rollup ->
      Buffer.add_string b "# TYPE hipstr_span_cycles counter\n";
      List.iter
        (fun (n, _, cycles) ->
          Buffer.add_string b (Printf.sprintf "hipstr_span_cycles{phase=\"%s\"} %.17g\n" n cycles))
        rollup;
      Buffer.add_string b "# TYPE hipstr_span_count counter\n";
      List.iter
        (fun (n, count, _) ->
          Buffer.add_string b (Printf.sprintf "hipstr_span_count{phase=\"%s\"} %d\n" n count))
        rollup);
    (if Audit.length t.audit > 0 then begin
       Buffer.add_string b "# TYPE hipstr_audit_entries counter\n";
       List.iter
         (fun label ->
           let n = Audit.count t.audit (fun e -> Audit.kind_label e.au_kind = label) in
           if n > 0 then
             Buffer.add_string b (Printf.sprintf "hipstr_audit_entries{kind=\"%s\"} %d\n" label n))
         [ "suspicious"; "decision"; "migration"; "fault"; "sched-migrate" ]
     end);
    Buffer.contents b

  (* One JSON object per line, canonically ordered and re-sequenced:
     the machine-readable security audit. *)
  let audit_jsonl t =
    let entries = canonical_audit (Audit.entries t.audit) in
    let b = Buffer.create 1024 in
    List.iteri
      (fun i (e : Audit.entry) ->
        Buffer.add_string b
          (Json.to_string
             (Json.Obj
                ([
                   ("seq", Json.num_of_int i);
                   ("pid", Json.num_of_int e.au_pid);
                   ("cycle", Json.Num e.au_cycle);
                   ("isa", Json.Str e.au_isa);
                   ("kind", Json.Str (Audit.kind_label e.au_kind));
                 ]
                @ audit_fields e)));
        Buffer.add_char b '\n')
      entries;
    Buffer.contents b

  (* --- timeline / SLO / hostprof ----------------------------------- *)

  let summary_json (h : Metrics.histogram_summary) =
    Json.Obj
      [
        ("count", Json.num_of_int h.hs_count);
        ("sum", Json.Num h.hs_sum);
        ("min", Json.Num h.hs_min);
        ("max", Json.Num h.hs_max);
        ("mean", Json.Num h.hs_mean);
        ("p50", Json.Num (Metrics.p50 h));
        ("p95", Json.Num (Metrics.p95 h));
        ("p99", Json.Num (Metrics.p99 h));
      ]

  let hostprof_value hp =
    let run =
      match Hostprof.run hp with
      | None -> Json.Null
      | Some r ->
        Json.Obj
          [
            ("minor_words", Json.Num r.Hostprof.hd_minor_words);
            ("promoted_words", Json.Num r.Hostprof.hd_promoted_words);
            ("major_words", Json.Num r.Hostprof.hd_major_words);
            ("minor_collections", Json.num_of_int r.Hostprof.hd_minor_collections);
            ("major_collections", Json.num_of_int r.Hostprof.hd_major_collections);
            ("instructions", Json.num_of_int r.Hostprof.hd_instructions);
            ( "minor_words_per_instr",
              match Hostprof.minor_words_per_instr hp with
              | Some x -> Json.Num x
              | None -> Json.Null );
          ]
    in
    Json.Obj
      [
        ("deterministic", Json.Bool false);
        ( "note",
          Json.Str
            "host-process Gc deltas: varies across OCaml versions and domain interleavings; \
             excluded from the -j1/-jN byte-identity contract" );
        ("run", run);
        ( "phases",
          Json.Obj
            (List.map
               (fun (n, spans, words) ->
                 ( n,
                   Json.Obj
                     [ ("spans", Json.num_of_int spans); ("minor_words", Json.Num words) ] ))
               (Hostprof.phases hp)) );
      ]

  let hostprof_json hp = Json.to_string_pretty (hostprof_value hp) ^ "\n"

  (* The timeline file: schema hipstr-timeline/1. [windows] (and the
     optional [slo] section) are deterministic; the optional
     [hostprof] section is explicitly marked non-deterministic and
     must not be requested on runs whose exports are diffed for byte
     identity. *)
  let timeline_json ?slo ?hostprof (tl : Timeline.t) =
    let width = Timeline.window_cycles tl in
    let win_json (w : Timeline.window) =
      Json.Obj
        [
          ("index", Json.num_of_int w.Timeline.tw_index);
          ("start", Json.Num (float_of_int w.Timeline.tw_index *. width));
          ("stop", Json.Num (float_of_int (w.Timeline.tw_index + 1) *. width));
          ( "counters",
            Json.Obj (List.map (fun (n, v) -> (n, Json.num_of_int v)) w.Timeline.tw_counters) );
          ( "histograms",
            Json.Obj (List.map (fun (n, h) -> (n, summary_json h)) w.Timeline.tw_histograms) );
        ]
    in
    let slo_part =
      match slo with
      | None -> []
      | Some (obj, reports) ->
        [
          ( "slo",
            Json.Obj
              [
                ("target_cycles", Json.Num obj.Slo.slo_target);
                ("budget", Json.Num obj.Slo.slo_budget);
                ( "windows",
                  Json.List
                    (List.map
                       (fun (r : Slo.window_report) ->
                         Json.Obj
                           [
                             ("index", Json.num_of_int r.sw_index);
                             ("requests", Json.num_of_int r.sw_requests);
                             ("violations", Json.Num r.sw_violations);
                             ("burn", Json.Num r.sw_burn);
                             ("budget_remaining", Json.Num r.sw_budget_remaining);
                             ("exhausted", Json.Bool r.sw_exhausted);
                             ( "tte_windows",
                               match r.sw_tte_windows with
                               | Some x -> Json.Num x
                               | None -> Json.Null );
                           ])
                       reports) );
              ] );
        ]
    in
    let host_part =
      match hostprof with None -> [] | Some hp -> [ ("hostprof", hostprof_value hp) ]
    in
    Json.to_string_pretty
      (Json.Obj
         ([
            ("schema", Json.Str "hipstr-timeline/1");
            ("window_cycles", Json.Num width);
            ("windows", Json.List (List.map win_json (Timeline.windows tl)));
          ]
         @ slo_part @ host_part))
    ^ "\n"

  (* Long-format CSV of the same deterministic windows: one row per
     (window, series, stat). Counters carry stat "delta"; histograms
     count/sum/p50/p95/p99. *)
  let timeline_csv (tl : Timeline.t) =
    let width = Timeline.window_cycles tl in
    let b = Buffer.create 4096 in
    Buffer.add_string b "window,start,stop,series,stat,value\n";
    List.iter
      (fun (w : Timeline.window) ->
        let row series stat value =
          Buffer.add_string b
            (Printf.sprintf "%d,%.17g,%.17g,%s,%s,%s\n" w.Timeline.tw_index
               (float_of_int w.Timeline.tw_index *. width)
               (float_of_int (w.Timeline.tw_index + 1) *. width)
               series stat value)
        in
        List.iter (fun (n, v) -> row n "delta" (string_of_int v)) w.Timeline.tw_counters;
        List.iter
          (fun (n, (h : Metrics.histogram_summary)) ->
            row n "count" (string_of_int h.hs_count);
            row n "sum" (Printf.sprintf "%.17g" h.hs_sum);
            row n "p50" (Printf.sprintf "%.17g" (Metrics.p50 h));
            row n "p95" (Printf.sprintf "%.17g" (Metrics.p95 h));
            row n "p99" (Printf.sprintf "%.17g" (Metrics.p99 h)))
          w.Timeline.tw_histograms)
      (Timeline.windows tl);
    Buffer.contents b
end
