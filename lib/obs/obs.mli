(** Zero-dependency tracing + metrics for the HIPStR simulator.

    The paper's evaluation (§6) reports quantities — translation
    counts, code-cache hit/miss rates, migrations triggered, stack
    transformation latency — that the substrate must expose at
    runtime. This module provides:

    - {!Metrics}: named monotonic counters and log2-bucketed
      histograms, snapshottable at any time;
    - {!Trace}: a bounded ring of structured events (oldest entries
      are overwritten once the capacity is exceeded);
    - {!Sink}: a pluggable consumer each emitted event is also
      forwarded to — null (default), stderr, or in-memory for tests.

    Discipline: an instrumented site guards all observability work
    with [if Obs.on obs then ...] so the disabled path costs a single
    load-and-branch; handles ({!Metrics.counter} etc.) are resolved
    once at component creation, never on a hot path.

    Domain safety: a context may be shared by simulations running on
    several OCaml 5 domains (the {!Hipstr_cmp.Pool} parallel driver).
    Counter increments are lock-free atomics; histogram observation,
    handle registration, the trace ring and the memory sink are
    mutex-guarded, so concurrent use never loses an update. For
    deterministic aggregation prefer one {!child} context per task,
    folded back with {!merge} in task order. *)

module Metrics : sig
  type counter
  type histogram
  type t

  val create : unit -> t

  val counter : t -> string -> counter
  (** Find-or-create by name. @raise Invalid_argument if the name is
      already registered as a histogram. *)

  val histogram : t -> string -> histogram

  val incr : ?by:int -> counter -> unit
  (** @raise Invalid_argument if [by] is negative: counters are
      monotonic. *)

  val value : counter -> int
  val counter_name : counter -> string

  val observe : histogram -> float -> unit

  type histogram_summary = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_mean : float;
    hs_buckets : int array;
        (** bucket 0 counts values < 1; bucket i counts values in
            [2^(i-1), 2^i); the last bucket is open-ended *)
  }

  type snapshot = {
    snap_counters : (string * int) list;  (** sorted by name *)
    snap_histograms : (string * histogram_summary) list;  (** sorted by name *)
  }

  val snapshot : t -> snapshot

  val counter_value : snapshot -> string -> int
  (** 0 if absent. *)

  val merge : into:t -> snapshot -> unit
  (** Fold a snapshot into a live registry: counters add; histograms
      combine exactly (count, sum, min, max and buckets are all
      mergeable). Names absent from [into] are created. *)
end

module Trace : sig
  type event =
    | Translate of { isa : string; src : int; instrs : int; emitted : int }
        (** the PSR VM translated one unit *)
    | Cache_hit of { isa : string; src : int }
        (** a control transfer found its target already translated *)
    | Cache_miss of { isa : string; src : int; compulsory : bool }
        (** [compulsory]: first-ever translation of this unit, as
            opposed to a re-translation after a capacity flush *)
    | Cache_flush of { isa : string; used_bytes : int }
    | Migrate of {
        from_isa : string;
        to_isa : string;
        frames : int;
        words : int;
        cycles : float;
        forced : bool;  (** requested checkpoint vs security-triggered *)
      }
    | Stack_transform of { frames : int; words : int; complete : bool }
    | Suspicious of { isa : string; target_src : int }
        (** an indirect control transfer missed the code cache — the
            paper's migration trigger *)
    | Fault of { isa : string; reason : string }

  type record = { seq : int  (** total-order emission index *); event : event }

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024. @raise Invalid_argument if < 1. *)

  val store : t -> event -> record
  val capacity : t -> int

  val emitted : t -> int
  (** Total events ever stored (>= length of {!to_list}). *)

  val dropped : t -> int
  (** Events overwritten because the ring was full. *)

  val to_list : t -> record list
  (** Retained records, oldest first. *)

  val event_to_string : event -> string
end

module Sink : sig
  type t

  val null : t
  val stderr : t

  val of_fn : (Trace.record -> unit) -> t
  val memory : unit -> t

  val contents : t -> Trace.record list
  (** Records delivered to a {!memory} sink, oldest first; [[]] for
      any other sink. *)

  val deliver : t -> Trace.record -> unit
end

type t

val create : ?on:bool -> ?sink:Sink.t -> ?trace_capacity:int -> unit -> t
(** A fresh observability context: its own metrics registry, event
    ring ([trace_capacity], default 1024) and sink (default
    {!Sink.null}). [on] defaults to true. *)

val disabled : t
(** A shared always-off context — the zero-overhead default for
    components created outside a [System]. Do not enable it. *)

val global : t
(** The shared ambient context: components default to it, so metrics
    from every system in the process aggregate here unless an explicit
    context is supplied. *)

val on : t -> bool
val set_on : t -> bool -> unit
val metrics : t -> Metrics.t
val trace : t -> Trace.t
val sink : t -> Sink.t
val set_sink : t -> Sink.t -> unit

val emit : t -> Trace.event -> unit
(** Store in the ring and forward to the sink. Call only under an
    [if on obs] guard. *)

val events : t -> Trace.record list
val snapshot : t -> Metrics.snapshot

val child : t -> t
(** A fresh context inheriting [on] and the trace capacity of [t],
    with a null sink: the per-task context the parallel driver hands
    each unit of work so results are independent of domain
    scheduling. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src]'s counters and histograms into
    [into] (exactly — see {!Metrics.merge}) and, when [into] is on,
    re-emits [src]'s retained trace records into [into]'s ring and
    sink in their original order (re-sequenced). Merging the per-task
    contexts of a parallel run in task order yields byte-identical
    totals to the serial run. *)
