(** Zero-dependency tracing + metrics for the HIPStR simulator.

    The paper's evaluation (§6) reports quantities — translation
    counts, code-cache hit/miss rates, migrations triggered, stack
    transformation latency — that the substrate must expose at
    runtime. This module provides:

    - {!Metrics}: named monotonic counters and log2-bucketed
      histograms, snapshottable at any time;
    - {!Trace}: a bounded ring of structured events (oldest entries
      are overwritten once the capacity is exceeded);
    - {!Sink}: a pluggable consumer each emitted event is also
      forwarded to — null (default), stderr, or in-memory for tests.

    Discipline: an instrumented site guards all observability work
    with [if Obs.on obs then ...] so the disabled path costs a single
    load-and-branch; handles ({!Metrics.counter} etc.) are resolved
    once at component creation, never on a hot path.

    Domain safety: a context may be shared by simulations running on
    several OCaml 5 domains (the {!Hipstr_cmp.Pool} parallel driver).
    Counter increments are lock-free atomics; histogram observation,
    handle registration, the trace ring and the memory sink are
    mutex-guarded, so concurrent use never loses an update. For
    deterministic aggregation prefer one {!child} context per task,
    folded back with {!merge} in task order. *)

module Metrics : sig
  type counter
  type histogram
  type t

  val create : unit -> t

  val counter : t -> string -> counter
  (** Find-or-create by name. @raise Invalid_argument if the name is
      already registered as a histogram. *)

  val histogram : t -> string -> histogram

  val incr : ?by:int -> counter -> unit
  (** @raise Invalid_argument if [by] is negative: counters are
      monotonic. *)

  val add : counter -> int -> unit
  (** [add c n] deposits a batch of [n] events ([n = 0] is a no-op).
      The allocation-free form of [incr ~by:n], for hot paths that
      accumulate counts in plain ints and deposit at block or run
      boundaries. Exported values are unchanged by batching: deposits
      land before any export can read the registry (exports happen
      between runs, deposits at run exit).
      @raise Invalid_argument if [n] is negative. *)

  val value : counter -> int
  val counter_name : counter -> string

  val observe : histogram -> float -> unit

  type histogram_summary = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_mean : float;
    hs_buckets : int array;
        (** bucket 0 counts values < 1; bucket i counts values in
            [2^(i-1), 2^i); the last bucket is open-ended *)
  }

  val quantile : histogram_summary -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([q] in [0, 1]) of
      the observed distribution from the log2 buckets: linear
      interpolation inside the bucket where the cumulative count
      crosses rank [q * count], clamped to the exact observed
      [[min, max]] (which also bounds the open-ended last bucket).
      0 on an empty histogram.
      @raise Invalid_argument if [q] is outside [0, 1]. *)

  val p50 : histogram_summary -> float
  val p95 : histogram_summary -> float

  val p99 : histogram_summary -> float
  (** The tail-latency accessors the fleet report uses — shorthand
      for {!quantile} at 0.5 / 0.95 / 0.99. *)

  type snapshot = {
    snap_counters : (string * int) list;  (** sorted by name *)
    snap_histograms : (string * histogram_summary) list;  (** sorted by name *)
  }

  val snapshot : t -> snapshot

  val counter_value : snapshot -> string -> int
  (** 0 if absent. *)

  val histogram_summary : snapshot -> string -> histogram_summary option

  val empty_summary : histogram_summary
  (** The summary of zero observations — the identity of
      {!combine_summaries} and the result of an empty {!delta}. *)

  val count_above : histogram_summary -> float -> float
  (** Estimated number of observations strictly above a threshold:
      whole buckets above it count in full, the straddled bucket
      contributes a linearly interpolated fraction (bounds clamped to
      the observed [[min, max]]). Deterministic; exact when no bucket
      straddles the threshold. 0 on an empty histogram. *)

  val delta : base:histogram_summary -> histogram_summary -> histogram_summary
  (** [delta ~base h] is the windowed difference of two cumulative
      summaries of the same histogram ([base] taken earlier): count,
      sum and buckets subtract exactly; min/max are re-derived from
      the delta buckets' bounds clamped to [h]'s observed range — a
      deterministic estimate, since per-window extrema are not
      recoverable from cumulative state. Empty if no observations
      landed between the two. *)

  val combine_summaries : histogram_summary -> histogram_summary -> histogram_summary
  (** Combine summaries of disjoint observation sets (counts, sums
      and buckets add; min/max take the extrema). *)

  val merge : into:t -> snapshot -> unit
  (** Fold a snapshot into a live registry: counters add; histograms
      combine exactly (count, sum, min, max and buckets are all
      mergeable). Names absent from [into] are created. *)
end

module Trace : sig
  type event =
    | Translate of { isa : string; src : int; instrs : int; emitted : int }
        (** the PSR VM translated one unit *)
    | Cache_hit of { isa : string; src : int }
        (** a control transfer found its target already translated *)
    | Cache_miss of { isa : string; src : int; compulsory : bool }
        (** [compulsory]: first-ever translation of this unit, as
            opposed to a re-translation after a capacity flush *)
    | Cache_flush of { isa : string; used_bytes : int }
    | Cache_evict of { isa : string; src : int; bytes : int }
        (** block-granular eviction: one victim displaced by an
            overlapping allocation (fifo/clock policies only) *)
    | Memo_install of { isa : string; src : int; instrs : int }
        (** a re-entered unit was re-installed from the translation
            memo without re-running the translator *)
    | Migrate of {
        from_isa : string;
        to_isa : string;
        frames : int;
        words : int;
        cycles : float;
        forced : bool;  (** requested checkpoint vs security-triggered *)
      }
    | Stack_transform of { frames : int; words : int; complete : bool }
    | Suspicious of { isa : string; target_src : int }
        (** an indirect control transfer missed the code cache — the
            paper's migration trigger *)
    | Fault of { isa : string; reason : string }
    | Span_end of { name : string; begin_cycle : float; end_cycle : float }
        (** a phase span closed (see {!Span}) — lets [--trace] stream
            phase timings live alongside the structural events *)

  type record = { seq : int  (** total-order emission index *); event : event }

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024. @raise Invalid_argument if < 1. *)

  val store : t -> event -> record
  val capacity : t -> int

  val emitted : t -> int
  (** Total events ever stored (>= length of {!to_list}). *)

  val dropped : t -> int
  (** Events overwritten because the ring was full. *)

  val to_list : t -> record list
  (** Retained records, oldest first. *)

  val event_to_string : event -> string
end

(** Nestable, cycle-stamped phase spans.

    A span attributes a stretch of {e simulated} cycles — the
    deterministic clock of the machine or core it ran on, never wall
    time — to a named phase: [exec], [translate], [stack_transform],
    [migration], [context_switch_flush], [schedule].

    Nesting is implicit. Each domain keeps a stack of its open spans
    (in domain-local storage), so a [translate] span begun while an
    [exec] span is open records that exec span as its parent with no
    handle threading through the machine layers. This is sound because
    one slice of one process runs entirely on one domain: spans open
    and close in LIFO order per domain even when a CMP interleaves
    processes, and the parallel round driver gives each slice its own
    domain (or its own {!child} context).

    Completed spans accumulate in an unbounded mutex-guarded store.
    Span ids and completion order depend on domain interleaving under
    a parallel run; the exporters therefore re-sort by content
    ({!canonical}), which restores bit-for-bit determinism. *)
module Span : sig
  type span
  type t

  val create : unit -> t

  val enter : t -> name:string -> ?attrs:(string * string) list -> cycle:float -> unit -> span
  (** Open a span at simulated cycle [cycle]. The youngest open span
      of the same store on this domain becomes its parent. *)

  val exit : t -> span -> cycle:float -> unit
  (** Close at [cycle] (clamped to at least the begin stamp) and move
      the span to the completed store. *)

  val completed : t -> span list
  (** Completed spans in completion order (nondeterministic under a
      parallel run — sort with {!canonical} before consuming). *)

  val count : t -> int

  val id : span -> int
  val parent_id : span -> int option
  val name : span -> string
  val attrs : span -> (string * string) list
  val attr : span -> string -> string option
  val begin_cycle : span -> float
  val end_cycle : span -> float
  val duration : span -> float

  val canonical : span list -> span list
  (** Content-only ordering (begin, end, name, attrs — ids excluded):
      any permutation of the same multiset sorts to the same sequence,
      making parallel-run exports byte-identical to the serial run. *)

  val total : t -> name:string -> float
  (** Sum of durations of completed spans named [name], folded in
      canonical order. *)

  val merge : into:t -> t -> unit
  (** Fold a finished child store into [into], re-basing span ids but
      preserving internal parent links. *)
end

(** The forensic record the security story needs: every suspicious
    control transfer, every migration decision and its outcome, every
    process kill — unbounded (unlike the trace ring, which forgets),
    cycle-stamped, and queryable from tests. *)
module Audit : sig
  type kind =
    | Suspicious of { target_src : int }
    | Decision of { target_src : int; migrate : bool; forced : bool }
        (** the policy's call on a suspicious transfer: migrate (and
            was it forced) or continue in place *)
    | Migration of {
        to_isa : string;
        forced : bool;
        frames : int;
        words : int;
        cost_cycles : float;
        outcome : string;  (** ["resumed"] or ["killed"] *)
      }
    | Fault of { reason : string }
    | Sched_migrate of { core : int; security : bool }
        (** the CMP scheduler moved a process to [core]; [security]
            distinguishes defense-driven from load-balancing moves *)

  type entry = { au_seq : int; au_cycle : float; au_isa : string; au_pid : int; au_kind : kind }

  type t

  val create : unit -> t
  val record : t -> cycle:float -> isa:string -> pid:int -> kind -> entry
  val entries : t -> entry list
  val length : t -> int
  val count : t -> (entry -> bool) -> int
  val kind_label : kind -> string
  val merge : into:t -> t -> unit
end

module Sink : sig
  type t

  val null : t
  val stderr : t

  val of_fn : (Trace.record -> unit) -> t
  val memory : unit -> t

  val contents : t -> Trace.record list
  (** Records delivered to a {!memory} sink, oldest first; [[]] for
      any other sink. *)

  val deliver : t -> Trace.record -> unit
end

(** Host-side GC/allocation profiling — the substrate for ROADMAP
    item 2 (allocation-free hot loop). Everything here measures the
    {e host} OCaml process, not the simulation: minor-heap words
    allocated while each phase span was the youngest open span on its
    domain (self words, children excluded — the same self-time
    discipline the folded exporter uses for cycles), plus
    [Gc.quick_stat] deltas around a whole run, from which
    minor-words-per-retired-instruction falls out.

    Host allocation varies with the OCaml version, inlining and
    domain interleaving, so Hostprof output is {e non-deterministic}:
    exporters only include it on request, in a clearly partitioned
    section, and it is excluded from the [-j 1]/[-j N] byte-identity
    contract (which the deterministic timeline and metrics still
    satisfy).

    Attach with {!set_hostprof} before the spans of interest open;
    {!child} contexts share their parent's hostprof, so per-phase
    words from a parallel run fold into one table. *)
module Hostprof : sig
  type t

  type run_delta = {
    hd_minor_words : float;
    hd_promoted_words : float;
    hd_major_words : float;
    hd_minor_collections : int;
    hd_major_collections : int;
    hd_instructions : int;  (** retired guest instructions, caller-supplied *)
  }

  val create : unit -> t

  val note : t -> phase:string -> words:float -> unit
  (** Fold one completed span's self words into the phase table
      (called by {!exit_span}; exposed for tests). *)

  val phases : t -> (string * int * float) list
  (** Per-phase [(name, spans, minor_words)], sorted by name. *)

  val start_run : t -> unit
  (** Capture a [Gc.quick_stat] baseline. *)

  val stop_run : t -> instructions:int -> unit
  (** Close the run delta against the {!start_run} baseline (no-op
      without one) and record the retired-instruction count. *)

  val run : t -> run_delta option

  val minor_words_per_instr : t -> float option
  (** [hd_minor_words / hd_instructions]; [None] before {!stop_run}
      or when no instructions retired. *)
end

type t

val create : ?on:bool -> ?sink:Sink.t -> ?trace_capacity:int -> unit -> t
(** A fresh observability context: its own metrics registry, event
    ring ([trace_capacity], default 1024) and sink (default
    {!Sink.null}). [on] defaults to true. *)

val disabled : t
(** A shared always-off context — the zero-overhead default for
    components created outside a [System]. Do not enable it. *)

val global : t
(** The shared ambient context: components default to it, so metrics
    from every system in the process aggregate here unless an explicit
    context is supplied. *)

val on : t -> bool
val set_on : t -> bool -> unit
val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t
val audit : t -> Audit.t
val sink : t -> Sink.t
val set_sink : t -> Sink.t -> unit

val emit : t -> Trace.event -> unit
(** Store in the ring and forward to the sink. Call only under an
    [if on obs] guard. *)

val events : t -> Trace.record list
val snapshot : t -> Metrics.snapshot

val enter_span : t -> name:string -> ?attrs:(string * string) list -> cycle:float -> unit -> Span.span option
(** [None] when the context is disabled — unlike {!emit}, span
    helpers carry their own guard, so instrumented sites need no
    [if on obs] wrapper. *)

val exit_span : t -> Span.span option -> cycle:float -> unit
(** No-op on [None]. On a live handle, closes the span and emits a
    {!Trace.Span_end} event to the ring/sink. *)

val audit_emit : t -> cycle:float -> isa:string -> pid:int -> Audit.kind -> unit
(** Append to the audit log when the context is enabled (self-guarded
    like the span helpers). *)

val set_hostprof : t -> Hostprof.t -> unit
(** Attach a host-allocation profiler: from now on the span helpers
    bracket the per-domain span stack with [Gc.minor_words] readings
    and fold each completed span's self words into the profiler. *)

val hostprof : t -> Hostprof.t option

val child : t -> t
(** A fresh context inheriting [on], the trace capacity and the
    hostprof (shared, not copied) of [t], with a null sink: the
    per-task context the parallel driver hands each unit of work so
    results are independent of domain scheduling. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src]'s counters and histograms into
    [into] (exactly — see {!Metrics.merge}), appends [src]'s spans
    (ids re-based) and audit entries, and, when [into] is on,
    re-emits [src]'s retained trace records into [into]'s ring and
    sink in their original order (re-sequenced). Merging the per-task
    contexts of a parallel run in task order yields byte-identical
    totals to the serial run. *)

(** Time-resolved telemetry: windowed delta snapshots keyed to the
    deterministic guest/fleet clock.

    A timeline divides the clock into fixed-width windows and folds
    {e deltas} into the window containing each sample's stamp. Two
    feeds: {!Timeline.sample} diffs a source's cumulative
    {!Metrics.snapshot} against the last snapshot seen for that
    source key (per-window counter increments and histogram deltas
    fall out — tail percentiles per window via {!Metrics.quantile});
    {!Timeline.record} adds caller-computed per-window counts
    directly.

    {b Determinism contract.} Drivers feed a timeline from the
    sequential section after their barrier (Fleet's wave loop after
    the shard fan-out, [Cmp.step]'s accounting stage) in a fixed
    source order at deterministic clock stamps — the same
    fold-after-barrier discipline {!merge} relies on — so the
    timeline and every export of it are byte-identical across
    [-j 1] / [-j N] / stealing on or off. Attribution granularity is
    the sampling interval: a wave straddling a window boundary lands
    whole in the window containing its end stamp. *)
module Timeline : sig
  type window = {
    tw_index : int;
    tw_counters : (string * int) list;  (** sorted by name; positive deltas only *)
    tw_histograms : (string * Metrics.histogram_summary) list;
        (** sorted by name; non-empty deltas only *)
  }

  type t

  val create : window:float -> unit -> t
  (** Fixed window width in guest cycles.
      @raise Invalid_argument unless positive and finite. *)

  val window_cycles : t -> float

  val index_of : t -> float -> int
  (** The window index a clock stamp falls in (clamped at 0). *)

  val sample : t -> key:string -> clock:float -> Metrics.snapshot -> unit
  (** Fold the delta between [snap] and the last snapshot seen for
      [key] into the window containing [clock], and remember [snap]
      as [key]'s new baseline. The first sample for a key charges its
      whole cumulative state to that window. *)

  val record : t -> clock:float -> counters:(string * int) list -> unit
  (** Add caller-computed counts to the window containing [clock]
      (non-positive values are dropped). *)

  val windows : t -> window list
  (** All recorded windows, sorted by index, contents sorted by name
      — the deterministic object the exporters serialize. Windows no
      sample ever touched are absent. *)

  val window_count : t -> int

  val span : t -> (int * int) option
  (** Smallest and largest recorded window index. *)

  val counter_value : window -> string -> int
  (** 0 if absent. *)

  val histogram : window -> string -> Metrics.histogram_summary option

  val merge : into:t -> t -> unit
  (** Fold [src]'s recorded windows into [into] (counters add,
      histogram deltas combine). Per-source baselines do not travel:
      merge folds finished sub-timelines, it does not resume
      sampling. @raise Invalid_argument if window widths differ. *)
end

(** Service-level-objective tracking over a {!Timeline}: a latency
    target plus an error budget (fraction of requests allowed over
    target), evaluated per window — burn rate, cumulative budget
    remaining, time-to-exhaustion. Violations are estimated from the
    windowed histogram deltas with {!Metrics.count_above}, so the
    report inherits the timeline's determinism. *)
module Slo : sig
  type objective = private { slo_target : float; slo_budget : float }

  val objective : target:float -> budget:float -> objective
  (** @raise Invalid_argument unless [target > 0] and [budget] is a
      fraction in (0, 1). *)

  type window_report = {
    sw_index : int;
    sw_requests : int;
    sw_violations : float;  (** estimated requests over target this window *)
    sw_burn : float;
        (** [(violations/requests)/budget] — 1.0 burns exactly at
            budget, 0 on an empty window *)
    sw_cum_requests : int;
    sw_cum_violations : float;
    sw_budget_remaining : float;  (** [budget*cum_requests - cum_violations] *)
    sw_exhausted : bool;
    sw_tte_windows : float option;
        (** windows until exhaustion extrapolating this window's net
            burn; [None] when not net-burning or already exhausted *)
  }

  val evaluate : objective -> latency:string -> Timeline.t -> window_report list
  (** One report per recorded window, in index order, reading the
      histogram named [latency] (e.g. ["fleet.latency_cycles"]).
      Windows without it count zero requests. *)
end

(** Deterministic serializers over a context's metrics, spans and
    audit log. Every export re-sorts its inputs by content before
    writing, so a parallel run (whose span/audit insertion order
    depends on domain scheduling) serializes to exactly the bytes of
    the serial run — the property the exporter-determinism tests
    check by comparing files.

    Formats:
    - {!trace_json}: Chrome [trace_event] JSON, loadable in Perfetto
      or [chrome://tracing]. One track per CMP core ([pid] 0, [tid] =
      core id) carrying the per-quantum [schedule] spans; one track
      per simulated process ([pid] = 1 + process pid) carrying
      exec/translate/migration spans; audit entries appear as instant
      events. Timestamps are simulated cycles.
    - {!folded}: folded-stack lines ([phase;subphase;leaf cycles],
      self time only), ready for flamegraph.pl / speedscope; translate
      spans grow a leaf frame named after the translated function.
    - {!metrics_json} / {!metrics_prom}: full metrics dump (counters,
      histograms, span roll-up, audit counts) as pretty JSON or
      Prometheus text exposition.
    - {!audit_jsonl}: one canonically-ordered JSON object per audit
      entry. *)
module Export : sig
  val trace_json : ?timeline:Timeline.t -> t -> string
  (** With [timeline], per-window series additionally appear as
      Perfetto counter ("C") tracks — counters chart their per-window
      delta, histograms their per-window p99; the per-tenant
      namespaces are excluded to bound track cardinality. *)

  val folded : t -> string
  val metrics_json : t -> string
  val metrics_prom : t -> string
  val audit_jsonl : t -> string

  val span_rollup : t -> (string * int * float) list
  (** Per-phase [(name, count, total_cycles)], sorted by name — the
      reconciliation hook the tests and [print_obs] use. *)

  val timeline_json :
    ?slo:Slo.objective * Slo.window_report list ->
    ?hostprof:Hostprof.t ->
    Timeline.t ->
    string
  (** Schema [hipstr-timeline/1]: window width, the recorded windows
      (counter deltas + histogram deltas with interpolated
      p50/p95/p99), an optional [slo] section, and an optional
      [hostprof] section. Windows and slo are deterministic; hostprof
      is marked non-deterministic in-band and must not be requested
      on runs whose exports are diffed for byte identity. *)

  val timeline_csv : Timeline.t -> string
  (** Long-format CSV of the deterministic windows: one row per
      (window, series, stat) — counters as stat [delta], histograms
      as [count]/[sum]/[p50]/[p95]/[p99]. *)

  val hostprof_json : Hostprof.t -> string
  (** The hostprof section alone, as pretty JSON (non-deterministic). *)
end
