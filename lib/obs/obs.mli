(** Zero-dependency tracing + metrics for the HIPStR simulator.

    The paper's evaluation (§6) reports quantities — translation
    counts, code-cache hit/miss rates, migrations triggered, stack
    transformation latency — that the substrate must expose at
    runtime. This module provides:

    - {!Metrics}: named monotonic counters and log2-bucketed
      histograms, snapshottable at any time;
    - {!Trace}: a bounded ring of structured events (oldest entries
      are overwritten once the capacity is exceeded);
    - {!Sink}: a pluggable consumer each emitted event is also
      forwarded to — null (default), stderr, or in-memory for tests.

    Discipline: an instrumented site guards all observability work
    with [if Obs.on obs then ...] so the disabled path costs a single
    load-and-branch; handles ({!Metrics.counter} etc.) are resolved
    once at component creation, never on a hot path.

    Domain safety: a context may be shared by simulations running on
    several OCaml 5 domains (the {!Hipstr_cmp.Pool} parallel driver).
    Counter increments are lock-free atomics; histogram observation,
    handle registration, the trace ring and the memory sink are
    mutex-guarded, so concurrent use never loses an update. For
    deterministic aggregation prefer one {!child} context per task,
    folded back with {!merge} in task order. *)

module Metrics : sig
  type counter
  type histogram
  type t

  val create : unit -> t

  val counter : t -> string -> counter
  (** Find-or-create by name. @raise Invalid_argument if the name is
      already registered as a histogram. *)

  val histogram : t -> string -> histogram

  val incr : ?by:int -> counter -> unit
  (** @raise Invalid_argument if [by] is negative: counters are
      monotonic. *)

  val value : counter -> int
  val counter_name : counter -> string

  val observe : histogram -> float -> unit

  type histogram_summary = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_mean : float;
    hs_buckets : int array;
        (** bucket 0 counts values < 1; bucket i counts values in
            [2^(i-1), 2^i); the last bucket is open-ended *)
  }

  val quantile : histogram_summary -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([q] in [0, 1]) of
      the observed distribution from the log2 buckets: linear
      interpolation inside the bucket where the cumulative count
      crosses rank [q * count], clamped to the exact observed
      [[min, max]] (which also bounds the open-ended last bucket).
      0 on an empty histogram.
      @raise Invalid_argument if [q] is outside [0, 1]. *)

  val p50 : histogram_summary -> float
  val p95 : histogram_summary -> float

  val p99 : histogram_summary -> float
  (** The tail-latency accessors the fleet report uses — shorthand
      for {!quantile} at 0.5 / 0.95 / 0.99. *)

  type snapshot = {
    snap_counters : (string * int) list;  (** sorted by name *)
    snap_histograms : (string * histogram_summary) list;  (** sorted by name *)
  }

  val snapshot : t -> snapshot

  val counter_value : snapshot -> string -> int
  (** 0 if absent. *)

  val merge : into:t -> snapshot -> unit
  (** Fold a snapshot into a live registry: counters add; histograms
      combine exactly (count, sum, min, max and buckets are all
      mergeable). Names absent from [into] are created. *)
end

module Trace : sig
  type event =
    | Translate of { isa : string; src : int; instrs : int; emitted : int }
        (** the PSR VM translated one unit *)
    | Cache_hit of { isa : string; src : int }
        (** a control transfer found its target already translated *)
    | Cache_miss of { isa : string; src : int; compulsory : bool }
        (** [compulsory]: first-ever translation of this unit, as
            opposed to a re-translation after a capacity flush *)
    | Cache_flush of { isa : string; used_bytes : int }
    | Cache_evict of { isa : string; src : int; bytes : int }
        (** block-granular eviction: one victim displaced by an
            overlapping allocation (fifo/clock policies only) *)
    | Memo_install of { isa : string; src : int; instrs : int }
        (** a re-entered unit was re-installed from the translation
            memo without re-running the translator *)
    | Migrate of {
        from_isa : string;
        to_isa : string;
        frames : int;
        words : int;
        cycles : float;
        forced : bool;  (** requested checkpoint vs security-triggered *)
      }
    | Stack_transform of { frames : int; words : int; complete : bool }
    | Suspicious of { isa : string; target_src : int }
        (** an indirect control transfer missed the code cache — the
            paper's migration trigger *)
    | Fault of { isa : string; reason : string }
    | Span_end of { name : string; begin_cycle : float; end_cycle : float }
        (** a phase span closed (see {!Span}) — lets [--trace] stream
            phase timings live alongside the structural events *)

  type record = { seq : int  (** total-order emission index *); event : event }

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024. @raise Invalid_argument if < 1. *)

  val store : t -> event -> record
  val capacity : t -> int

  val emitted : t -> int
  (** Total events ever stored (>= length of {!to_list}). *)

  val dropped : t -> int
  (** Events overwritten because the ring was full. *)

  val to_list : t -> record list
  (** Retained records, oldest first. *)

  val event_to_string : event -> string
end

(** Nestable, cycle-stamped phase spans.

    A span attributes a stretch of {e simulated} cycles — the
    deterministic clock of the machine or core it ran on, never wall
    time — to a named phase: [exec], [translate], [stack_transform],
    [migration], [context_switch_flush], [schedule].

    Nesting is implicit. Each domain keeps a stack of its open spans
    (in domain-local storage), so a [translate] span begun while an
    [exec] span is open records that exec span as its parent with no
    handle threading through the machine layers. This is sound because
    one slice of one process runs entirely on one domain: spans open
    and close in LIFO order per domain even when a CMP interleaves
    processes, and the parallel round driver gives each slice its own
    domain (or its own {!child} context).

    Completed spans accumulate in an unbounded mutex-guarded store.
    Span ids and completion order depend on domain interleaving under
    a parallel run; the exporters therefore re-sort by content
    ({!canonical}), which restores bit-for-bit determinism. *)
module Span : sig
  type span
  type t

  val create : unit -> t

  val enter : t -> name:string -> ?attrs:(string * string) list -> cycle:float -> unit -> span
  (** Open a span at simulated cycle [cycle]. The youngest open span
      of the same store on this domain becomes its parent. *)

  val exit : t -> span -> cycle:float -> unit
  (** Close at [cycle] (clamped to at least the begin stamp) and move
      the span to the completed store. *)

  val completed : t -> span list
  (** Completed spans in completion order (nondeterministic under a
      parallel run — sort with {!canonical} before consuming). *)

  val count : t -> int

  val id : span -> int
  val parent_id : span -> int option
  val name : span -> string
  val attrs : span -> (string * string) list
  val attr : span -> string -> string option
  val begin_cycle : span -> float
  val end_cycle : span -> float
  val duration : span -> float

  val canonical : span list -> span list
  (** Content-only ordering (begin, end, name, attrs — ids excluded):
      any permutation of the same multiset sorts to the same sequence,
      making parallel-run exports byte-identical to the serial run. *)

  val total : t -> name:string -> float
  (** Sum of durations of completed spans named [name], folded in
      canonical order. *)

  val merge : into:t -> t -> unit
  (** Fold a finished child store into [into], re-basing span ids but
      preserving internal parent links. *)
end

(** The forensic record the security story needs: every suspicious
    control transfer, every migration decision and its outcome, every
    process kill — unbounded (unlike the trace ring, which forgets),
    cycle-stamped, and queryable from tests. *)
module Audit : sig
  type kind =
    | Suspicious of { target_src : int }
    | Decision of { target_src : int; migrate : bool; forced : bool }
        (** the policy's call on a suspicious transfer: migrate (and
            was it forced) or continue in place *)
    | Migration of {
        to_isa : string;
        forced : bool;
        frames : int;
        words : int;
        cost_cycles : float;
        outcome : string;  (** ["resumed"] or ["killed"] *)
      }
    | Fault of { reason : string }
    | Sched_migrate of { core : int; security : bool }
        (** the CMP scheduler moved a process to [core]; [security]
            distinguishes defense-driven from load-balancing moves *)

  type entry = { au_seq : int; au_cycle : float; au_isa : string; au_pid : int; au_kind : kind }

  type t

  val create : unit -> t
  val record : t -> cycle:float -> isa:string -> pid:int -> kind -> entry
  val entries : t -> entry list
  val length : t -> int
  val count : t -> (entry -> bool) -> int
  val kind_label : kind -> string
  val merge : into:t -> t -> unit
end

module Sink : sig
  type t

  val null : t
  val stderr : t

  val of_fn : (Trace.record -> unit) -> t
  val memory : unit -> t

  val contents : t -> Trace.record list
  (** Records delivered to a {!memory} sink, oldest first; [[]] for
      any other sink. *)

  val deliver : t -> Trace.record -> unit
end

type t

val create : ?on:bool -> ?sink:Sink.t -> ?trace_capacity:int -> unit -> t
(** A fresh observability context: its own metrics registry, event
    ring ([trace_capacity], default 1024) and sink (default
    {!Sink.null}). [on] defaults to true. *)

val disabled : t
(** A shared always-off context — the zero-overhead default for
    components created outside a [System]. Do not enable it. *)

val global : t
(** The shared ambient context: components default to it, so metrics
    from every system in the process aggregate here unless an explicit
    context is supplied. *)

val on : t -> bool
val set_on : t -> bool -> unit
val metrics : t -> Metrics.t
val trace : t -> Trace.t
val spans : t -> Span.t
val audit : t -> Audit.t
val sink : t -> Sink.t
val set_sink : t -> Sink.t -> unit

val emit : t -> Trace.event -> unit
(** Store in the ring and forward to the sink. Call only under an
    [if on obs] guard. *)

val events : t -> Trace.record list
val snapshot : t -> Metrics.snapshot

val enter_span : t -> name:string -> ?attrs:(string * string) list -> cycle:float -> unit -> Span.span option
(** [None] when the context is disabled — unlike {!emit}, span
    helpers carry their own guard, so instrumented sites need no
    [if on obs] wrapper. *)

val exit_span : t -> Span.span option -> cycle:float -> unit
(** No-op on [None]. On a live handle, closes the span and emits a
    {!Trace.Span_end} event to the ring/sink. *)

val audit_emit : t -> cycle:float -> isa:string -> pid:int -> Audit.kind -> unit
(** Append to the audit log when the context is enabled (self-guarded
    like the span helpers). *)

val child : t -> t
(** A fresh context inheriting [on] and the trace capacity of [t],
    with a null sink: the per-task context the parallel driver hands
    each unit of work so results are independent of domain
    scheduling. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src]'s counters and histograms into
    [into] (exactly — see {!Metrics.merge}), appends [src]'s spans
    (ids re-based) and audit entries, and, when [into] is on,
    re-emits [src]'s retained trace records into [into]'s ring and
    sink in their original order (re-sequenced). Merging the per-task
    contexts of a parallel run in task order yields byte-identical
    totals to the serial run. *)

(** Deterministic serializers over a context's metrics, spans and
    audit log. Every export re-sorts its inputs by content before
    writing, so a parallel run (whose span/audit insertion order
    depends on domain scheduling) serializes to exactly the bytes of
    the serial run — the property the exporter-determinism tests
    check by comparing files.

    Formats:
    - {!trace_json}: Chrome [trace_event] JSON, loadable in Perfetto
      or [chrome://tracing]. One track per CMP core ([pid] 0, [tid] =
      core id) carrying the per-quantum [schedule] spans; one track
      per simulated process ([pid] = 1 + process pid) carrying
      exec/translate/migration spans; audit entries appear as instant
      events. Timestamps are simulated cycles.
    - {!folded}: folded-stack lines ([phase;subphase;leaf cycles],
      self time only), ready for flamegraph.pl / speedscope; translate
      spans grow a leaf frame named after the translated function.
    - {!metrics_json} / {!metrics_prom}: full metrics dump (counters,
      histograms, span roll-up, audit counts) as pretty JSON or
      Prometheus text exposition.
    - {!audit_jsonl}: one canonically-ordered JSON object per audit
      entry. *)
module Export : sig
  val trace_json : t -> string
  val folded : t -> string
  val metrics_json : t -> string
  val metrics_prom : t -> string
  val audit_jsonl : t -> string

  val span_rollup : t -> (string * int * float) list
  (** Per-phase [(name, count, total_cycles)], sorted by name — the
      reconciliation hook the tests and [print_obs] use. *)
end
