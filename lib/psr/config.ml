type t = {
  opt_level : int;
  pad_bytes : int;
  rat_capacity : int;
  cache_bytes : int;
  migrate_prob : float;
  seed : int;
  superblock_budget : int;
  cc_policy : Code_cache.policy;
}

let default =
  {
    opt_level = 3;
    pad_bytes = 8192;
    rat_capacity = 512;
    cache_bytes = 2 * 1024 * 1024;
    migrate_prob = 0.5;
    seed = 0x5EED;
    superblock_budget = 24;
    cc_policy = Code_cache.Flush;
  }

let validate t =
  if t.opt_level < 0 || t.opt_level > 3 then Error "opt_level must be 0..3"
  else if t.pad_bytes < 256 || t.pad_bytes > 1024 * 1024 then Error "pad_bytes out of range"
  else if t.pad_bytes land 3 <> 0 then Error "pad_bytes must be word-aligned"
  else if t.rat_capacity < 1 then Error "rat_capacity must be positive"
  else if t.cache_bytes < 4096 then Error "cache_bytes too small"
  else if t.migrate_prob < 0. || t.migrate_prob > 1. then Error "migrate_prob must be in [0,1]"
  else if t.superblock_budget < 1 then Error "superblock_budget must be positive"
  else Ok ()
