(** The PSR virtual machine's code cache.

    A bump allocator over the ISA's cache region in simulated memory.
    Translated units are looked up by *source* address. When the
    configured capacity is exhausted the whole cache is flushed (the
    classic DBT strategy), which is what makes small caches produce
    repeated translation and migration events (Figure 13). *)

type block = {
  cb_src : int;  (** source address this unit translates *)
  cb_cache : int;
  cb_size : int;
  cb_func : string;
  cb_src_spans : (int * int) list;
      (** source (addr, len) ranges covered, including superblock
          inlining — the JIT-ROP analysis walks these *)
}

type t

val create : ?obs:Hipstr_obs.Obs.t -> ?isa:string -> base:int -> capacity:int -> unit -> t
(** [obs] (default {!Hipstr_obs.Obs.disabled}) receives
    [code_cache.<isa>.allocs]/[.flushes] counters and a
    [.block_bytes] histogram; [isa] namespaces them (default
    ["any"]). *)

val lookup : t -> int -> int option
(** Translated cache address for a source unit start. *)

val has_room : t -> int -> bool

val alloc :
  t -> ?align:int -> src:int -> func:string -> size:int -> src_spans:(int * int) list -> unit -> int
(** Reserve [size] bytes; returns the cache address.
    @raise Invalid_argument if it does not fit (check {!has_room}). *)

val flush : t -> unit
(** Drop all translations. Counts a flush; the VM must also clear its
    RAT and stub tables and re-randomize. *)

val blocks : t -> block list
val used_bytes : t -> int
val capacity : t -> int
val flushes : t -> int
val base : t -> int
