(** The PSR virtual machine's code cache.

    An allocator over the ISA's cache region in simulated memory.
    Translated units are looked up by *source* address. How a capacity
    shortfall is handled depends on the {!policy}:

    - {!Flush}: bump allocation; the VM drops everything on shortfall
      (the classic DBT strategy), which is what makes small caches
      produce repeated translation and migration events (Figure 13).
    - {!Fifo}: a circular claim — the write pointer marches forward,
      wrapping at the end, and {!alloc} evicts exactly the live blocks
      the new unit overlaps, oldest-placed first.
    - {!Clock}: FIFO with second chance — blocks touched by {!lookup}
      since their last reprieve are skipped once instead of evicted.

    Eviction decisions depend only on allocation order and lookups, so
    runs are deterministic for a given seed and schedule. *)

type policy = Flush | Fifo | Clock

val policy_name : policy -> string
val policy_of_string : string -> policy option

type block = {
  cb_src : int;  (** source address this unit translates *)
  cb_cache : int;
  cb_size : int;
  cb_func : string;
  cb_src_spans : (int * int) list;
      (** source (addr, len) ranges covered, including superblock
          inlining — the JIT-ROP analysis walks these *)
}

type t

val create :
  ?obs:Hipstr_obs.Obs.t ->
  ?isa:string ->
  ?policy:policy ->
  base:int ->
  capacity:int ->
  unit ->
  t
(** [obs] (default {!Hipstr_obs.Obs.disabled}) receives
    [code_cache.<isa>.allocs]/[.flushes]/[.evictions] counters and a
    [.block_bytes] histogram; [isa] namespaces them (default
    ["any"]). [policy] defaults to {!Flush}. *)

val lookup : t -> int -> int option
(** Translated cache address for a source unit start. Under {!Clock}
    this also marks the block recently-used. *)

val next_addr : t -> align:int -> int
(** Where the next [alloc ~align] will place its block (before any
    wrap-around under {!Fifo}/{!Clock}) — the single source of truth
    for the allocator's alignment arithmetic. *)

val has_room : t -> align:int -> size:int -> bool
(** Whether [alloc ~align ~size] fits without wrapping. Uses the same
    alignment path as {!alloc}, so under {!Flush} a true answer
    guarantees the next [alloc] of at most [size] bytes at [align]
    cannot raise. *)

val alloc :
  t ->
  ?align:int ->
  src:int ->
  func:string ->
  size:int ->
  src_spans:(int * int) list ->
  unit ->
  int * block list
(** Reserve [size] bytes; returns the cache address and the blocks
    this allocation displaced (overlap victims under {!Fifo}/{!Clock},
    plus a stale block for [src] itself when re-allocating a live src;
    always [[]] for a fresh src under {!Flush}). The caller must
    invalidate every returned block's stubs/RAT lines before reusing
    the region.
    @raise Invalid_argument under {!Flush} if it does not fit (check
    {!has_room}), or under any policy if a single unit exceeds the
    whole capacity. *)

val flush : t -> unit
(** Drop all translations. Counts a flush; the VM must also clear its
    RAT and stub tables and re-randomize. *)

val block_containing : t -> int -> block option
(** The live block whose cache range contains the given address. *)

val blocks : t -> block list
(** Live blocks, ascending by cache address. *)

val live_blocks : t -> int
val live_bytes : t -> int

val used_bytes : t -> int
(** Write-pointer offset from base — the high-water mark under
    {!Flush}; under {!Fifo}/{!Clock} it wraps with the pointer. *)

val capacity : t -> int
val flushes : t -> int
val evictions : t -> int
val policy : t -> policy
val base : t -> int

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the allocator state — cursor, live-block directory,
    Clock reference bits, flush/eviction counts. Translated bytes do
    NOT travel; the VM re-materializes them on restore. *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this cache's allocator state from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt when a block falls outside this
    cache's region or the image is malformed. *)
