open Hipstr_isa
module Fatbin = Hipstr_compiler.Fatbin
module Machine = Hipstr_machine.Machine
module Mem = Hipstr_machine.Mem
module Exec = Hipstr_machine.Exec
module Cpu = Hipstr_machine.Cpu
module Rat = Hipstr_machine.Rat
module Layout = Hipstr_machine.Layout
module Rng = Hipstr_util.Rng
module Obs = Hipstr_obs.Obs

(* VM service costs, in cycles, charged to the executing core. *)
let trap_overhead = 150.
let translate_per_instr = 25.
let memo_install_per_instr = 3.
let patch_cost = 15.
let icall_cost = 100.
let flush_cost = 10_000.
let evict_cost = 120.

type stats = {
  mutable translations : int;
  mutable source_instrs : int;
  mutable emitted_instrs : int;
  mutable traps : int;
  mutable patches : int;
  mutable rat_miss_translated : int;
  mutable icalls : int;
  mutable suspicious : int;
  mutable compulsory_misses : int;
  mutable capacity_misses : int;
  mutable evictions : int;
  mutable memo_installs : int;
  mutable retranslate_cycles : float;
}

type stub_info = Sexit of int | Sicall of Translator.icall_site

(* Observability handles, resolved once at VM creation; every use is
   guarded by [if Obs.on p.obs] so disabled observability costs a
   single branch per site. *)
type probes = {
  obs : Obs.t;
  isa : string;
  c_translations : Obs.Metrics.counter;
  c_cache_hits : Obs.Metrics.counter;
  c_miss_compulsory : Obs.Metrics.counter;
  c_miss_capacity : Obs.Metrics.counter;
  c_flushes : Obs.Metrics.counter;
  c_traps : Obs.Metrics.counter;
  c_patches : Obs.Metrics.counter;
  c_icalls : Obs.Metrics.counter;
  c_suspicious : Obs.Metrics.counter;
  c_memo_installs : Obs.Metrics.counter;
  h_unit_instrs : Obs.Metrics.histogram;
}

let make_probes obs which =
  let isa = match which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc" in
  let m = Obs.metrics obs in
  let c n = Obs.Metrics.counter m ("psr." ^ isa ^ "." ^ n) in
  {
    obs;
    isa;
    c_translations = c "translations";
    c_cache_hits = c "cache_hits";
    c_miss_compulsory = c "cache_misses.compulsory";
    c_miss_capacity = c "cache_misses.capacity";
    c_flushes = c "flushes";
    c_traps = c "traps";
    c_patches = c "patches";
    c_icalls = c "icalls";
    c_suspicious = c "suspicious";
    c_memo_installs = c "memo_installs";
    h_unit_instrs = Obs.Metrics.histogram m ("psr." ^ isa ^ ".unit_instrs");
  }

(* A patched (chained) stub: [pt_src] is the source target its Trap
   named before patching, [pt_cache] the cache address the Jmp now
   lands on. Kept so evicting the *target* block can un-chain every
   incoming jump by restoring the original Trap. *)
type patch_rec = { pt_src : int; pt_cache : int }

(* Translation memo: a base-independent prepared unit, valid only
   while the reloc maps it was rewritten against are unchanged —
   guarded by the map generation and the unit's own map fingerprint. *)
type memo_entry = { me_gen : int; me_fp : int; me_prep : Translator.prepared }

type t = {
  cfg : Config.t;
  which : Desc.which;
  desc : Desc.t;
  fatbin : Fatbin.t;
  machine : Machine.t;
  cache : Code_cache.t;
  maps : (string, Reloc_map.t) Hashtbl.t;
  hot : (string, int list) Hashtbl.t;
  stub_at : (int, stub_info) Hashtbl.t;
  rng : Rng.t;
  st : stats;
  pr : probes;
  mutable ever_translated : (int, unit) Hashtbl.t;
  memo : (int, memo_entry) Hashtbl.t;
  mutable map_gen : int;
  block_meta : (int, int list) Hashtbl.t;
      (* block base -> trap pcs registered at install, so eviction can
         drop exactly that block's stub_at/patch entries *)
  patches : (int, patch_rec) Hashtbl.t; (* patched stub pc -> what it chained to *)
  mutable new_units : int list;
  mutable span_quiet : bool;
      (* suppress translate spans during speculative work whose cycle
         charge is rewound (pretranslate) — a span there would claim
         cycles the clock never kept *)
}

type resolution = Continue | Exit of int | Fault of string

type suspicious_kind =
  | Kreturn
  | Kicall of { call_src : int; src_ret : int; nargs : int; is_call : bool }

type event =
  | Benign of resolution
  | Suspicious of { target_src : int; kind : suspicious_kind; resolve : unit -> resolution }

let create cfg ~seed which fatbin machine =
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Risc -> Hipstr_risc.Isa.desc in
  assert (Translator.jmp_same_size desc);
  let obs = Machine.obs machine in
  let pr = make_probes obs which in
  {
    cfg;
    which;
    desc;
    fatbin;
    machine;
    cache =
      Code_cache.create ~obs ~isa:pr.isa ~policy:cfg.cc_policy ~base:(Layout.cache_base which)
        ~capacity:cfg.cache_bytes ();
    maps = Hashtbl.create 64;
    hot = Hashtbl.create 64;
    stub_at = Hashtbl.create 256;
    rng = Rng.create (seed lxor (match which with Desc.Cisc -> 0x11111 | Risc -> 0x22222));
    st =
      {
        translations = 0;
        source_instrs = 0;
        emitted_instrs = 0;
        traps = 0;
        patches = 0;
        rat_miss_translated = 0;
        icalls = 0;
        suspicious = 0;
        compulsory_misses = 0;
        capacity_misses = 0;
        evictions = 0;
        memo_installs = 0;
        retranslate_cycles = 0.;
      };
    pr;
    ever_translated = Hashtbl.create 256;
    memo = Hashtbl.create 256;
    map_gen = 0;
    block_meta = Hashtbl.create 256;
    patches = Hashtbl.create 256;
    new_units = [];
    span_quiet = false;
  }

let cache t = t.cache
let stats t = t.st
let config t = t.cfg

let env t = Machine.env_of t.machine t.which
let mem t = Machine.mem t.machine
let cpu t = Machine.cpu t.machine

(* VM costs are whole cycles, so the femtocycle conversion is exact
   and one integer add charges the executing core. *)
let charge t c =
  let p = (env t).Exec.cpu.perf in
  p.Cpu.cycles_fc <- p.Cpu.cycles_fc + Cpu.fc_of_cycles c

let rat t =
  match (env t).Exec.rat with
  | Some r -> r
  | None -> failwith "psr: machine must be created with a RAT"

(* Most-used allocatable registers in the function's source code. *)
let hot_regs t (fs : Fatbin.func_sym) =
  match Hashtbl.find_opt t.hot fs.fs_name with
  | Some l -> l
  | None ->
    let im = Fatbin.image fs t.which in
    let counts = Array.make 16 0 in
    let read = Mem.reader (mem t) in
    let decode addr =
      match t.which with
      | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
      | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr
    in
    let pos = ref im.im_entry in
    let stop = im.im_entry + im.im_size in
    let continue_ = ref true in
    while !continue_ && !pos < stop do
      match decode !pos with
      | None -> continue_ := false
      | Some (i, len) ->
        let bump r = if r >= 0 && r < 16 then counts.(r) <- counts.(r) + 1 in
        List.iter
          (fun (op : Minstr.operand) ->
            match op with
            | Reg r -> bump r
            | Mem { base; _ } -> bump base
            | Imm _ -> ())
          (Minstr.operands i);
        pos := !pos + len
    done;
    let ranked =
      List.sort
        (fun a b -> compare counts.(b) counts.(a))
        (List.filter (fun r -> counts.(r) > 0) t.desc.allocatable)
    in
    Hashtbl.replace t.hot fs.fs_name ranked;
    ranked

let map_of t (fs : Fatbin.func_sym) =
  match Hashtbl.find_opt t.maps fs.fs_name with
  | Some m -> m
  | None ->
    let m = Reloc_map.generate t.cfg t.rng t.desc fs ~hot_regs:(hot_regs t fs) in
    Hashtbl.replace t.maps fs.fs_name m;
    m

let flush t =
  if Obs.on t.pr.obs then begin
    Obs.Metrics.incr t.pr.c_flushes;
    Obs.emit t.pr.obs
      (Obs.Trace.Cache_flush { isa = t.pr.isa; used_bytes = Code_cache.used_bytes t.cache })
  end;
  Code_cache.flush t.cache;
  (* every predecoded block of the cache region is now garbage; the
     write generations would catch them lazily, but a flush rewrites
     wholesale, so drop eagerly *)
  Machine.invalidate_decoded t.machine t.which;
  Hashtbl.reset t.stub_at;
  Hashtbl.reset t.block_meta;
  Hashtbl.reset t.patches;
  (* [ever_translated] is the translation *history*, not cache state:
     it survives flushes so a re-translation after one is classified
     as a capacity miss, not compulsory. *)
  Rat.clear (rat t);
  (* Relocation maps survive: live stack frames hold state at
     map-specified offsets. *)
  charge t flush_cost

(* Re-draw every relocation map. Only sound at quiescent points (no
   live frame holds state at map-specified offsets — e.g. a re-spawn);
   drops the translation memo, since memoized code embeds the old
   maps' offsets, and flushes the cache for the same reason. *)
let renew_maps t =
  Hashtbl.reset t.maps;
  Hashtbl.reset t.memo;
  t.map_gen <- t.map_gen + 1;
  flush t

(* Maximum unit footprint; flushing below this headroom keeps
   translation single-pass. *)
let unit_headroom = 4096

exception Wild_target = Translator.Wild

let encode_at t ~at ins =
  match t.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.encode ~at ins
  | Desc.Risc -> Hipstr_risc.Isa.encode ~at ins

(* An evicted block must leave no way back into its bytes:
   - its own trap registrations (stub_at) and outgoing patch records go;
   - RAT lines whose *translated* target lies in its range go — including
     mid-block continuations the call macro-op inserted;
   - incoming chained jumps from still-live blocks are un-patched back
     to their original Traps, so those paths re-enter the VM instead of
     falling into reused cache bytes. Processed in sorted order so the
     walk is schedule-independent. *)
let invalidate_block t (b : Code_cache.block) =
  (match Hashtbl.find_opt t.block_meta b.cb_cache with
  | Some pcs ->
    List.iter
      (fun pc ->
        Hashtbl.remove t.stub_at pc;
        Hashtbl.remove t.patches pc)
      pcs;
    Hashtbl.remove t.block_meta b.cb_cache
  | None -> ());
  let lo = b.cb_cache and hi = b.cb_cache + b.cb_size in
  Rat.remove_in_range (rat t) ~lo ~hi;
  let incoming =
    Hashtbl.fold
      (fun pc (p : patch_rec) acc ->
        if p.pt_cache >= lo && p.pt_cache < hi then (pc, p) :: acc else acc)
      t.patches []
  in
  List.iter
    (fun (pc, (p : patch_rec)) ->
      Hashtbl.remove t.patches pc;
      Mem.blit_string (mem t) pc (encode_at t ~at:pc (Minstr.Trap p.pt_src));
      Hashtbl.replace t.stub_at pc (Sexit p.pt_src))
    (List.sort compare incoming)

let translate_unit t src =
  match Code_cache.lookup t.cache src with
  | Some cache_addr ->
    if Obs.on t.pr.obs then begin
      Obs.Metrics.incr t.pr.c_cache_hits;
      Obs.emit t.pr.obs (Obs.Trace.Cache_hit { isa = t.pr.isa; src })
    end;
    cache_addr
  | None ->
    let fc_before = (cpu t).perf.Cpu.cycles_fc in
    let align = if t.cfg.opt_level >= 1 then 64 else 1 in
    if
      t.cfg.cc_policy = Code_cache.Flush
      && not (Code_cache.has_room t.cache ~align ~size:unit_headroom)
    then flush t;
    let compulsory = not (Hashtbl.mem t.ever_translated src) in
    if compulsory then t.st.compulsory_misses <- t.st.compulsory_misses + 1
    else t.st.capacity_misses <- t.st.capacity_misses + 1;
    if Obs.on t.pr.obs then begin
      Obs.Metrics.incr (if compulsory then t.pr.c_miss_compulsory else t.pr.c_miss_capacity);
      Obs.emit t.pr.obs (Obs.Trace.Cache_miss { isa = t.pr.isa; src; compulsory })
    end;
    Hashtbl.replace t.ever_translated src ();
    let fs =
      match Fatbin.func_at t.fatbin t.which src with
      | Some fs -> fs
      | None -> raise (Wild_target src)
    in
    let fp = Reloc_map.fingerprint (map_of t fs) in
    let memoized =
      if t.cfg.cc_policy = Code_cache.Flush then None
      else
        match Hashtbl.find_opt t.memo src with
        | Some e when e.me_gen = t.map_gen && e.me_fp = fp -> Some e.me_prep
        | _ -> None
    in
    let prep, memo_hit =
      match memoized with
      | Some p -> (p, true)
      | None ->
        let read = Mem.reader (mem t) in
        let p =
          Translator.prepare t.cfg t.desc ~read ~fatbin:t.fatbin
            ~map_of:(fun fs -> map_of t fs)
            ~src
        in
        if t.cfg.cc_policy <> Code_cache.Flush then
          Hashtbl.replace t.memo src { me_gen = t.map_gen; me_fp = fp; me_prep = p };
        (p, false)
    in
    let base, evicted =
      Code_cache.alloc t.cache ~align ~src ~func:fs.fs_name
        ~size:(Translator.prepared_size prep)
        ~src_spans:(Translator.prepared_spans prep) ()
    in
    List.iter (invalidate_block t) evicted;
    (match evicted with
    | [] -> ()
    | _ ->
      let n = List.length evicted in
      t.st.evictions <- t.st.evictions + n;
      charge t (evict_cost *. float_of_int n));
    let unit = Translator.layout prep ~base in
    Mem.blit_string (mem t) base unit.u_bytes;
    let trap_pcs = ref [] in
    List.iter
      (fun (s : Translator.exit_stub) ->
        let pc = base + s.es_off in
        Hashtbl.replace t.stub_at pc (Sexit s.es_target_src);
        trap_pcs := pc :: !trap_pcs)
      unit.u_stubs;
    List.iter
      (fun (ic : Translator.icall_site) ->
        let pc = base + ic.is_off in
        Hashtbl.replace t.stub_at pc (Sicall ic);
        trap_pcs := pc :: !trap_pcs)
      unit.u_icalls;
    Hashtbl.replace t.block_meta base !trap_pcs;
    t.new_units <- src :: t.new_units;
    if memo_hit then begin
      t.st.memo_installs <- t.st.memo_installs + 1;
      if Obs.on t.pr.obs then begin
        Obs.Metrics.incr t.pr.c_memo_installs;
        Obs.emit t.pr.obs
          (Obs.Trace.Memo_install { isa = t.pr.isa; src; instrs = unit.u_instrs })
      end;
      charge t (memo_install_per_instr *. float_of_int unit.u_instrs)
    end
    else begin
      t.st.translations <- t.st.translations + 1;
      t.st.source_instrs <- t.st.source_instrs + unit.u_instrs;
      t.st.emitted_instrs <- t.st.emitted_instrs + unit.u_emitted;
      if Obs.on t.pr.obs then begin
        Obs.Metrics.incr t.pr.c_translations;
        Obs.Metrics.observe t.pr.h_unit_instrs (float_of_int unit.u_instrs);
        Obs.emit t.pr.obs
          (Obs.Trace.Translate
             { isa = t.pr.isa; src; instrs = unit.u_instrs; emitted = unit.u_emitted })
      end;
      charge t (translate_per_instr *. float_of_int unit.u_instrs)
    end;
    if not compulsory then
      t.st.retranslate_cycles <-
        t.st.retranslate_cycles +. Cpu.cycles_of_fc ((cpu t).perf.Cpu.cycles_fc - fc_before);
    (* span entered after the work so a Wild_target raise above never
       leaves it dangling on the domain stack; the stamps still cover
       the whole miss path (flush + translate charges) *)
    if (not t.span_quiet) && Obs.on t.pr.obs then begin
      let sp =
        Obs.enter_span t.pr.obs ~name:"translate"
          ~attrs:
            [
              ("isa", t.pr.isa);
              ("func", fs.fs_name);
              ("pid", string_of_int (Machine.owner t.machine));
            ]
          ~cycle:(Cpu.cycles_of_fc fc_before) ()
      in
      Obs.exit_span t.pr.obs sp ~cycle:(Cpu.cycles (cpu t).perf)
    end;
    base

let enter t src = (cpu t).pc <- translate_unit t src

let patch_stub t ~stub_pc ~target_src ~target_cache =
  let bytes = encode_at t ~at:stub_pc (Minstr.Jmp target_cache) in
  Mem.blit_string (mem t) stub_pc bytes;
  Hashtbl.remove t.stub_at stub_pc;
  Hashtbl.replace t.patches stub_pc { pt_src = target_src; pt_cache = target_cache };
  t.st.patches <- t.st.patches + 1;
  if Obs.on t.pr.obs then Obs.Metrics.incr t.pr.c_patches;
  charge t patch_cost

let has_translation t src = Code_cache.lookup t.cache src <> None

let translated_call_targets t =
  Hashtbl.fold
    (fun _pc info acc -> match info with Sexit s -> s :: acc | Sicall _ -> acc)
    t.stub_at
    (List.map (fun (b : Code_cache.block) -> b.cb_src) (Code_cache.blocks t.cache))

(* Indirect-call/jump handling: validate the runtime target, apply the
   callee's randomized calling convention, maintain the RAT. *)
let resolve_icall t (ic : Translator.icall_site) () =
  let m = mem t in
  let c = cpu t in
  let sp = c.regs.(t.desc.sp) in
  t.st.icalls <- t.st.icalls + 1;
  if Obs.on t.pr.obs then Obs.Metrics.incr t.pr.c_icalls;
  charge t icall_cost;
  let caller_fs =
    match Fatbin.func_at t.fatbin t.which ic.is_src with Some fs -> fs | None -> assert false
  in
  let caller_map = map_of t caller_fs in
  let target = Mem.read32 m (sp + Reloc_map.vm_temp_off caller_map + 16) in
  if Layout.in_cache_region target then Fault "indirect transfer into code cache (SFI)"
  else
    match Fatbin.func_at t.fatbin t.which target with
    | None -> Fault (Printf.sprintf "indirect transfer to wild address 0x%x" target)
    | Some callee_fs ->
      let callee_entry = (Fatbin.image callee_fs t.which).im_entry in
      if ic.is_call && target = callee_entry then begin
        (* legitimate-shaped call: move staged arguments from the
           caller's relocated outgoing slots into the callee's
           randomized argument slots *)
        let callee_map = map_of t callee_fs in
        let fpad = Reloc_map.padded_frame callee_map in
        for j = 0 to ic.is_nargs - 1 do
          let v = Mem.read32 m (sp + Reloc_map.map_slot caller_map (4 * j)) in
          Mem.write32 m (sp - fpad + Reloc_map.arg_off callee_map j) v
        done;
        (* call side effect with the *source* return address *)
        (if t.desc.call_pushes_ret then begin
           c.regs.(t.desc.sp) <- sp - 4;
           Mem.write32 m c.regs.(t.desc.sp) ic.is_src_ret
         end
         else
           match t.desc.lr with
           | Some lr -> c.regs.(lr) <- ic.is_src_ret
           | None -> assert false);
        (* continuation for the eventual return *)
        let cont = translate_unit t ic.is_src_ret in
        Rat.insert (rat t) ~src:ic.is_src_ret ~translated:cont;
        c.pc <- translate_unit t target;
        Continue
      end
      else begin
        (* mid-function target: translate it as a unit (a gadget gets
           relocated like everything else); call side effect still
           happens for a Callr *)
        (if ic.is_call then
           if t.desc.call_pushes_ret then begin
             c.regs.(t.desc.sp) <- sp - 4;
             Mem.write32 m c.regs.(t.desc.sp) ic.is_src_ret
           end
           else
             match t.desc.lr with
             | Some lr -> c.regs.(lr) <- ic.is_src_ret
             | None -> ());
        match translate_unit t target with
        | cache_addr ->
          c.pc <- cache_addr;
          Continue
        | exception Wild_target a -> Fault (Printf.sprintf "wild gadget target 0x%x" a)
      end

let resolve_return t src () =
  match Code_cache.lookup t.cache src with
  | Some cache_addr ->
    if Obs.on t.pr.obs then begin
      Obs.Metrics.incr t.pr.c_cache_hits;
      Obs.emit t.pr.obs (Obs.Trace.Cache_hit { isa = t.pr.isa; src })
    end;
    Rat.insert (rat t) ~src ~translated:cache_addr;
    (cpu t).pc <- cache_addr;
    Continue
  | None -> (
    t.st.rat_miss_translated <- t.st.rat_miss_translated + 1;
    match translate_unit t src with
    | cache_addr ->
      Rat.insert (rat t) ~src ~translated:cache_addr;
      (cpu t).pc <- cache_addr;
      Continue
    | exception Wild_target a -> Fault (Printf.sprintf "return to wild address 0x%x" a))

let suspicious_probe t target_src =
  t.st.suspicious <- t.st.suspicious + 1;
  if Obs.on t.pr.obs then begin
    Obs.Metrics.incr t.pr.c_suspicious;
    Obs.emit t.pr.obs (Obs.Trace.Suspicious { isa = t.pr.isa; target_src });
    Obs.audit_emit t.pr.obs ~cycle:(Cpu.cycles (cpu t).perf) ~isa:t.pr.isa
      ~pid:(Machine.owner t.machine)
      (Obs.Audit.Suspicious { target_src })
  end

let on_trap t (trap : Exec.trap) =
  t.st.traps <- t.st.traps + 1;
  if Obs.on t.pr.obs then Obs.Metrics.incr t.pr.c_traps;
  charge t trap_overhead;
  match trap with
  | Exec.Exit code -> Benign (Exit code)
  | Exec.Shell -> Benign (Fault "shell")
  | Exec.Fault f -> Benign (Fault (Exec.string_of_trap (Exec.Fault f)))
  | Exec.Trap_stub _ -> (
    let pc = (cpu t).pc in
    match Hashtbl.find_opt t.stub_at pc with
    | Some (Sexit target_src) -> (
      (* direct control flow: never suspicious *)
      match translate_unit t target_src with
      | cache_addr ->
        (* the translation may have flushed the cache or evicted the
           stub's own unit; patch only if these bytes still hold a
           trap for this exact target — anything else now occupying
           them would be corrupted by the write *)
        (match Hashtbl.find_opt t.stub_at pc with
        | Some (Sexit s) when s = target_src ->
          patch_stub t ~stub_pc:pc ~target_src ~target_cache:cache_addr
        | _ -> ());
        (cpu t).pc <- cache_addr;
        Benign Continue
      | exception Wild_target a ->
        Benign (Fault (Printf.sprintf "direct jump to wild address 0x%x" a)))
    | Some (Sicall ic) ->
      (* suspicious iff the runtime target misses the code cache *)
      let m = mem t in
      let caller_fs =
        match Fatbin.func_at t.fatbin t.which ic.is_src with
        | Some fs -> fs
        | None -> assert false
      in
      let caller_map = map_of t caller_fs in
      let sp = (cpu t).regs.(t.desc.sp) in
      let target =
        try Mem.read32 m (sp + Reloc_map.vm_temp_off caller_map + 16) with Mem.Fault _ -> -1
      in
      if has_translation t target then Benign (resolve_icall t ic ())
      else begin
        suspicious_probe t target;
        Suspicious
          {
            target_src = target;
            kind =
              Kicall
                { call_src = ic.is_src; src_ret = ic.is_src_ret; nargs = ic.is_nargs; is_call = ic.is_call };
            resolve = resolve_icall t ic;
          }
      end
    | None ->
      (* executing data in the cache region (stale or sprayed):
         treated as a fault *)
      Benign (Fault (Printf.sprintf "unregistered trap at 0x%x" pc)))
  | Exec.Rat_miss src ->
    if src = Layout.exit_sentinel then Benign (Exit (cpu t).regs.(t.desc.ret_reg))
    else if has_translation t src then Benign (resolve_return t src ())
    else begin
      suspicious_probe t src;
      Suspicious { target_src = src; kind = Kreturn; resolve = resolve_return t src }
    end

let pretranslate t src =
  let before = (cpu t).perf.Cpu.cycles_fc in
  t.span_quiet <- true;
  let ok = match translate_unit t src with _ -> true | exception Wild_target _ -> false in
  t.span_quiet <- false;
  (cpu t).perf.Cpu.cycles_fc <- before;
  ok

let complete_call t ~callee_src ~src_ret =
  let c = cpu t in
  let m = mem t in
  (if t.desc.call_pushes_ret then begin
     c.regs.(t.desc.sp) <- c.regs.(t.desc.sp) - 4;
     Mem.write32 m c.regs.(t.desc.sp) src_ret
   end
   else
     match t.desc.lr with
     | Some lr -> c.regs.(lr) <- src_ret
     | None -> assert false);
  let cont = translate_unit t src_ret in
  Rat.insert (rat t) ~src:src_ret ~translated:cont;
  c.pc <- translate_unit t callee_src

let drain_new_units t =
  let units = List.rev t.new_units in
  t.new_units <- [];
  units

(* --- snapshot ------------------------------------------------------ *)
(* What travels: the rng word, the map generation, the relocation maps
   (live frames hold state at their offsets — these are the one thing
   that MUST be exact), the memo key set, the translation history, the
   code-cache allocator state, the chain-patch records, the un-drained
   unit list and the counters. What does NOT travel: translated bytes,
   stub registrations, block metadata and the hot-register ranking —
   all derived, re-materialized below from the maps + source bytes.
   Re-materialization is cycle-free and observation-free: the
   translation work was already charged when it first happened, and
   the restored run must not re-count it. *)

module Wire = Hipstr_util.Wire

let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let save_maps w t =
  Wire.list w
    (fun w name ->
      Wire.str w name;
      Reloc_map.save w (Hashtbl.find t.maps name))
    (sorted_keys t.maps)

let load_maps t r =
  let ms =
    Wire.r_list r (fun r ->
        let name = Wire.r_str r in
        let m = Reloc_map.load r in
        (name, m))
  in
  Hashtbl.reset t.maps;
  List.iter (fun (n, m) -> Hashtbl.replace t.maps n m) ms

let save_memo_keys w t =
  Wire.list w
    (fun w (src, fp) ->
      Wire.int w src;
      Wire.int w fp)
    (List.sort compare
       (Hashtbl.fold
          (fun src e acc -> if e.me_gen = t.map_gen then (src, e.me_fp) :: acc else acc)
          t.memo []))

(* Rebuild memo entries by re-running the (pure) translator scan
   against the restored maps; the saved fingerprint cross-checks that
   the maps in the image really are the maps the memo was built
   against. *)
let rebuild_memo t keys =
  Hashtbl.reset t.memo;
  let read = Mem.reader (mem t) in
  List.iter
    (fun (src, fp) ->
      match Fatbin.func_at t.fatbin t.which src with
      | None -> Wire.corrupt "memo entry 0x%x lies in no function of this binary" src
      | Some fs ->
        if Reloc_map.fingerprint (map_of t fs) <> fp then
          Wire.corrupt "memo entry 0x%x disagrees with its relocation map" src;
        let prep =
          Translator.prepare t.cfg t.desc ~read ~fatbin:t.fatbin
            ~map_of:(fun fs -> map_of t fs)
            ~src
        in
        Hashtbl.replace t.memo src { me_gen = t.map_gen; me_fp = fp; me_prep = prep })
    keys

(* Re-encode every live block at its recorded cache address and
   re-register its stubs. Preparation is deterministic given the maps
   and source bytes, so the bytes come out identical to what was
   running at checkpoint time; the size cross-check catches any image
   that lies about either. *)
let rematerialize t =
  Hashtbl.reset t.stub_at;
  Hashtbl.reset t.block_meta;
  let read = Mem.reader (mem t) in
  List.iter
    (fun (b : Code_cache.block) ->
      let prep =
        match Hashtbl.find_opt t.memo b.cb_src with
        | Some e when e.me_gen = t.map_gen -> e.me_prep
        | _ ->
          Translator.prepare t.cfg t.desc ~read ~fatbin:t.fatbin
            ~map_of:(fun fs -> map_of t fs)
            ~src:b.cb_src
      in
      if Translator.prepared_size prep <> b.cb_size then
        Wire.corrupt "re-materialized unit for 0x%x measures %d bytes, image says %d" b.cb_src
          (Translator.prepared_size prep) b.cb_size;
      let unit = Translator.layout prep ~base:b.cb_cache in
      Mem.blit_string (mem t) b.cb_cache unit.u_bytes;
      let trap_pcs = ref [] in
      List.iter
        (fun (s : Translator.exit_stub) ->
          let pc = b.cb_cache + s.es_off in
          Hashtbl.replace t.stub_at pc (Sexit s.es_target_src);
          trap_pcs := pc :: !trap_pcs)
        unit.u_stubs;
      List.iter
        (fun (ic : Translator.icall_site) ->
          let pc = b.cb_cache + ic.is_off in
          Hashtbl.replace t.stub_at pc (Sicall ic);
          trap_pcs := pc :: !trap_pcs)
        unit.u_icalls;
      Hashtbl.replace t.block_meta b.cb_cache !trap_pcs)
    (Code_cache.blocks t.cache)

let save_state w t =
  Wire.tag w "PSRVM";
  Wire.i64 w (Rng.state t.rng);
  Wire.int w t.map_gen;
  save_maps w t;
  save_memo_keys w t;
  Wire.list w Wire.int (sorted_keys t.ever_translated);
  Code_cache.save w t.cache;
  Wire.list w
    (fun w (pc, (p : patch_rec)) ->
      Wire.int w pc;
      Wire.int w p.pt_src;
      Wire.int w p.pt_cache)
    (List.sort compare (Hashtbl.fold (fun pc p acc -> (pc, p) :: acc) t.patches []));
  Wire.list w Wire.int t.new_units;
  let s = t.st in
  Wire.int w s.translations;
  Wire.int w s.source_instrs;
  Wire.int w s.emitted_instrs;
  Wire.int w s.traps;
  Wire.int w s.patches;
  Wire.int w s.rat_miss_translated;
  Wire.int w s.icalls;
  Wire.int w s.suspicious;
  Wire.int w s.compulsory_misses;
  Wire.int w s.capacity_misses;
  Wire.int w s.evictions;
  Wire.int w s.memo_installs;
  Wire.float w s.retranslate_cycles

let restore_state t r =
  Wire.expect_tag r "PSRVM";
  Rng.set_state t.rng (Wire.r_i64 r);
  t.map_gen <- Wire.r_int r;
  load_maps t r;
  let memo_keys =
    Wire.r_list r (fun r ->
        let src = Wire.r_int r in
        let fp = Wire.r_int r in
        (src, fp))
  in
  let ever = Wire.r_list r Wire.r_int in
  Code_cache.restore t.cache r;
  let patch_list =
    Wire.r_list r (fun r ->
        let pc = Wire.r_int r in
        let pt_src = Wire.r_int r in
        let pt_cache = Wire.r_int r in
        (pc, { pt_src; pt_cache }))
  in
  let new_units = Wire.r_list r Wire.r_int in
  let s = t.st in
  s.translations <- Wire.r_int r;
  s.source_instrs <- Wire.r_int r;
  s.emitted_instrs <- Wire.r_int r;
  s.traps <- Wire.r_int r;
  s.patches <- Wire.r_int r;
  s.rat_miss_translated <- Wire.r_int r;
  s.icalls <- Wire.r_int r;
  s.suspicious <- Wire.r_int r;
  s.compulsory_misses <- Wire.r_int r;
  s.capacity_misses <- Wire.r_int r;
  s.evictions <- Wire.r_int r;
  s.memo_installs <- Wire.r_int r;
  s.retranslate_cycles <- Wire.r_float r;
  Hashtbl.reset t.ever_translated;
  List.iter (fun src -> Hashtbl.replace t.ever_translated src ()) ever;
  Hashtbl.reset t.hot;
  rebuild_memo t memo_keys;
  rematerialize t;
  Hashtbl.reset t.patches;
  List.iter
    (fun (pc, (p : patch_rec)) ->
      (match Hashtbl.find_opt t.stub_at pc with
      | Some (Sexit s) when s = p.pt_src -> ()
      | _ -> Wire.corrupt "chain patch at 0x%x does not cover an exit stub for 0x%x" pc p.pt_src);
      Mem.blit_string (mem t) pc (encode_at t ~at:pc (Minstr.Jmp p.pt_cache));
      Hashtbl.remove t.stub_at pc;
      Hashtbl.replace t.patches pc p)
    patch_list;
  t.new_units <- new_units;
  t.span_quiet <- false

(* Warm-start metadata: the map/memo/history slice of the state,
   without any machine coupling — loadable into a *fresh* VM so a new
   run re-installs previously translated units from the memo at
   [memo_install_per_instr] instead of re-translating at
   [translate_per_instr]. *)
let save_meta w t =
  Wire.tag w "PSRMETA";
  Wire.i64 w (Rng.state t.rng);
  Wire.int w t.map_gen;
  save_maps w t;
  save_memo_keys w t;
  Wire.list w Wire.int (sorted_keys t.ever_translated)

let load_meta t r =
  Wire.expect_tag r "PSRMETA";
  Rng.set_state t.rng (Wire.r_i64 r);
  t.map_gen <- Wire.r_int r;
  load_maps t r;
  let memo_keys =
    Wire.r_list r (fun r ->
        let src = Wire.r_int r in
        let fp = Wire.r_int r in
        (src, fp))
  in
  let ever = Wire.r_list r Wire.r_int in
  Hashtbl.reset t.ever_translated;
  List.iter (fun src -> Hashtbl.replace t.ever_translated src ()) ever;
  Hashtbl.reset t.hot;
  rebuild_memo t memo_keys

(* Cold-start control: drop the memo but keep the translation history,
   so both arms of a warm/cold comparison classify their misses
   identically (capacity) and differ only in what servicing them
   costs. *)
let forget_memo t = Hashtbl.reset t.memo
