(** PSR virtual-machine configuration.

    The optimization levels follow Table 3 of the paper:

    - O0: no optimization;
    - O1: machine block placement, branch inlining and superblock
      formation;
    - O2: O1 plus the 3-entry global register cache (the hottest
      relocated registers stay in registers);
    - O3: O2 plus PSR with a register bias (at least three registers
      are always relocated to other registers). *)

type t = {
  opt_level : int;  (** 0..3 *)
  pad_bytes : int;
      (** per-frame randomization space; 8 KB default = 13 bits of
          entropy per relocated parameter (Section 5.1 allows 2-16
          pages) *)
  rat_capacity : int;  (** hardware Return Address Table entries *)
  cache_bytes : int;  (** effective code-cache capacity per ISA *)
  migrate_prob : float;
      (** probability of switching ISAs on a suspicious code-cache
          miss (an indirect control transfer with no translation) *)
  seed : int;  (** randomization seed; re-seeded on re-spawn *)
  superblock_budget : int;  (** max instructions inlined across direct jumps at O1+ *)
  cc_policy : Code_cache.policy;
      (** capacity-shortfall handling: {!Code_cache.Flush} (classic
          wholesale flush, the default), {!Code_cache.Fifo} or
          {!Code_cache.Clock} (block-granular eviction with the
          translation memo) *)
}

val default : t
(** O3, 8 KB pad, 512-entry RAT, 2 MB cache, migration probability
    0.5. *)

val validate : t -> (unit, string) result
