(** Per-function relocation maps (Figure 2 of the paper).

    A relocation map fixes, for one function and one randomization
    epoch, where every piece of its program state lives in the
    translated world:

    - *register reallocation*: each allocatable register is relocated
      to another register or to a random slot in the frame's
      randomization pad;
    - *stack slot coloring*: the value/shadow slots, the outgoing
      staging region, the locals region and the translator's own
      temporaries get random, non-overlapping offsets in the padded
      frame. The locals region moves as one block (arrays are indexed
      dynamically, so their interior layout must survive);
    - *randomized calling convention*: incoming arguments live at
      random offsets of the callee's padded frame, where callers
      place them, and the return address is relocated to a random
      slot — so even a bare [ret] gadget faces pad-sized entropy.

    Offsets that do not correspond to any known object (an attacker
    jumping mid-instruction can synthesize any displacement) are
    mapped through a per-function keyed hash into the pad, so the
    translation is total and deterministic within an epoch. *)

type loc = Lreg of int | Lpad of int  (** relocated register / frame offset *)

type t

val generate :
  Config.t ->
  Hipstr_util.Rng.t ->
  Hipstr_isa.Desc.t ->
  Hipstr_compiler.Fatbin.func_sym ->
  hot_regs:int list ->
  t
(** Draw a fresh map. [hot_regs] are the function's most-used
    registers (the global register cache keeps the top 3 in registers
    at O2+; O3 additionally guarantees at least 3 register-resident
    registers). *)

val func_name : t -> string

val padded_frame : t -> int
(** Original frame plus randomization pad. *)

val pad : t -> int

val ret_off : t -> int
(** Relocated return-address slot. *)

val vm_temp_off : t -> int
(** A pad slot reserved for the translator's own spills; never
    visible to source code. *)

val map_reg : t -> int -> loc
(** Relocation of an allocatable register; [sp] and the scratch
    registers map to themselves. *)

val map_slot : t -> int -> int
(** Relocation of a source sp-relative frame offset (total:
    unrecognized offsets hash into the pad). Offsets at or beyond the
    original frame size resolve as incoming-argument accesses. *)

val arg_off : t -> int -> int
(** Where callers must place incoming argument [j], as an offset of
    this function's padded frame. *)

val regs_in_registers : t -> int
(** How many allocatable registers are relocated to registers. *)

val randomized_locations : t -> int list
(** All assigned pad offsets (for tests: distinctness, range). *)

val fingerprint : t -> int
(** A value that changes whenever the map is re-drawn (each draw pulls
    a fresh 32-bit hash key from the RNG). The VM's translation memo
    keys on it so memoized code is never re-installed against a map it
    was not translated for. *)

val entropy_bits_per_param : Config.t -> float
(** log2 of the number of positions one relocated parameter can take
    (word-granular within the pad). *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the complete map, embedded frame layout included
    (snapshots; deterministic byte layout). *)

val load : Hipstr_util.Wire.r -> t
(** Rebuild a map from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt on a malformed image. *)
