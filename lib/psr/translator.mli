(** The PSR basic-block translator.

    Translates one unit — a straight-line run of source instructions
    ending at a control transfer — into relocated code for the code
    cache, applying the function's relocation map to every operand
    (Section 5.1):

    - {e addressing-mode transformation}: register operands move to
      their relocated registers or pad slots; sp-relative operands go
      through the slot coloring; when the result is not encodable in
      the ISA, the translator emulates it with scratch-register
      sequences that spill through a translator-private pad slot;
    - {e procedure-call transformation}: argument stores are
      redirected to the callee's randomized argument slots, calls
      become RAT-maintaining [Callrat] macro-ops, and return addresses
      are relocated by prologue/epilogue rewriting so that even a bare
      [ret] gadget faces pad-sized entropy;
    - {e indirect control transfers} always exit to the VM ([Trap]),
      which is both a DBT necessity and the paper's attack-detection
      point;
    - at O1+ the translator forms superblocks by inlining direct
      jumps and conditional fall-throughs, and the VM aligns units to
      I-cache lines (machine block placement).

    Any unit exit is emitted as a patchable [Trap] of fixed jump size
    so the VM can chain units in place once targets are translated.

    Unit entries need not be intended instruction boundaries: a
    translated gadget gets the same treatment, with unknown operands
    relocated through the map's keyed hash — precisely why a gadget
    "fails to work as intended" under PSR. *)

exception Wild of int
(** The address to translate lies in no known function's code. *)

type exit_stub = { es_off : int;  (** unit-relative offset of the Trap *) es_target_src : int }

type icall_site = {
  is_off : int;  (** unit-relative offset of the Trap *)
  is_src : int;  (** source address of the indirect transfer *)
  is_src_ret : int;  (** source return address (0 for indirect jumps) *)
  is_nargs : int;
  is_call : bool;
}

type unit_code = {
  u_src : int;
  u_bytes : string;
  u_size : int;
  u_stubs : exit_stub list;
  u_icalls : icall_site list;
  u_src_spans : (int * int) list;
  u_instrs : int;  (** source instructions consumed *)
  u_emitted : int;  (** instructions emitted *)
}

type prepared
(** A translated unit not yet bound to a cache address: the expensive
    scan/rewrite and layout arithmetic are done, but the bytes are not
    encoded. All instruction lengths are fixed, so a [prepared] can be
    {!layout}-ed at any base, any number of times — the VM's
    translation memo holds these across evictions. *)

val prepare :
  Config.t ->
  Hipstr_isa.Desc.t ->
  read:(int -> int) ->
  fatbin:Hipstr_compiler.Fatbin.t ->
  map_of:(Hipstr_compiler.Fatbin.func_sym -> Reloc_map.t) ->
  src:int ->
  prepared
(** Scan and rewrite the unit starting at source address [src].
    @raise Wild if [src] is not inside any function of the binary. *)

val layout : prepared -> base:int -> unit_code
(** Encode a prepared unit for placement at cache address [base]. *)

val prepared_size : prepared -> int
(** Exact encoded size in bytes — known before allocation, so the
    cache can reserve precisely this much. *)

val prepared_spans : prepared -> (int * int) list
val prepared_src : prepared -> int

val translate :
  Config.t ->
  Hipstr_isa.Desc.t ->
  read:(int -> int) ->
  fatbin:Hipstr_compiler.Fatbin.t ->
  map_of:(Hipstr_compiler.Fatbin.func_sym -> Reloc_map.t) ->
  src:int ->
  base:int ->
  unit_code
(** [layout (prepare ...) ~base].
    @raise Wild if [src] is not inside any function of the binary. *)

val jmp_same_size : Hipstr_isa.Desc.t -> bool
(** Sanity invariant the VM's patching relies on: an encoded [Jmp]
    occupies exactly as many bytes as an encoded [Trap]. *)
