(** One core's PSR virtual machine.

    Owns the code cache, the per-function relocation maps, and the
    exit-stub table for its ISA, and services the machine's traps:

    - [Trap_stub] at an exit stub: translate the target unit (direct
      control flow — never suspicious), patch the stub into a direct
      jump (unit chaining), continue;
    - [Trap_stub] at an indirect-transfer site: validate the runtime
      target, apply the callee's randomized calling convention to the
      staged arguments, maintain the RAT, continue — and report the
      event as *suspicious* iff the target had no translation (the
      paper's code-cache-miss criterion);
    - [Rat_miss]: resolve a source return address; suspicious iff
      untranslated.

    Suspicious events are returned to the caller *before* being
    resolved so the HIPStR layer can decide to migrate instead.

    Capacity handling follows {!Config.t.cc_policy}: under
    {!Code_cache.Flush} the cache flushes wholesale when full; under
    {!Code_cache.Fifo}/{!Code_cache.Clock} the allocator evicts only
    the blocks a new unit overlaps, and the VM invalidates exactly
    those blocks' stubs, RAT lines and incoming chained jumps. A
    translation memo keyed by (unit, reloc-map generation, map
    fingerprint) re-installs a previously translated unit without
    re-running the translator; the memo dies with the maps
    ({!renew_maps}). Either way, a source address is in the cache or
    it is not — the hit/miss outcome that classifies an indirect
    transfer as suspicious is policy-independent.

    Relocation maps survive a flush (live frames hold state at
    map-specified offsets), and re-randomization happens on process
    re-spawn by rebuilding the VM with a fresh seed — exactly the
    paper's crash/reboot story. *)

type t

type stats = {
  mutable translations : int;
  mutable source_instrs : int;
  mutable emitted_instrs : int;
  mutable traps : int;
  mutable patches : int;
  mutable rat_miss_translated : int;
  mutable icalls : int;
  mutable suspicious : int;
  mutable compulsory_misses : int;
  mutable capacity_misses : int;
  mutable evictions : int;  (** blocks displaced individually (fifo/clock) *)
  mutable memo_installs : int;  (** re-installs served from the translation memo *)
  mutable retranslate_cycles : float;
      (** cycles spent servicing capacity misses (the re-translation
          cost the memo exists to cut) *)
}

type resolution =
  | Continue  (** pc updated; resume execution *)
  | Exit of int  (** the program returned from [main] *)
  | Fault of string  (** attack/wild control flow killed the process *)

type suspicious_kind =
  | Kreturn  (** a return whose source target has no translation *)
  | Kicall of { call_src : int; src_ret : int; nargs : int; is_call : bool }

type event =
  | Benign of resolution
  | Suspicious of { target_src : int; kind : suspicious_kind; resolve : unit -> resolution }
      (** an indirect control transfer missed the code cache; the
          caller chooses: call [resolve] to continue on this ISA, or
          migrate instead *)

val create :
  Config.t ->
  seed:int ->
  Hipstr_isa.Desc.which ->
  Hipstr_compiler.Fatbin.t ->
  Hipstr_machine.Machine.t ->
  t

val enter : t -> int -> unit
(** Begin executing at a source address: translate its unit and point
    the machine's pc at the translation. *)

val on_trap : t -> Hipstr_machine.Exec.trap -> event
(** Handle a machine stop. [Exit]/[Shell]/[Fault] traps are mapped to
    resolutions directly; [Trap_stub]/[Rat_miss] run the VM logic. *)

val map_of : t -> Hipstr_compiler.Fatbin.func_sym -> Reloc_map.t
(** The function's relocation map this epoch (created on first use —
    "if it is being entered for the first time"). *)

val renew_maps : t -> unit
(** Re-draw every relocation map and drop the translation memo and
    cache with them. Only sound at quiescent points where no live
    frame holds state at map-specified offsets (e.g. re-spawn). *)

val has_translation : t -> int -> bool
(** Whether a source address has a current translation (the JIT-ROP
    analysis and the migration policy consult this). *)

val translated_call_targets : t -> int list
(** Source addresses with RAT-reachable or stub-reachable
    translations — the indirect-transfer targets an attacker could
    use without causing a code-cache miss. *)

val cache : t -> Code_cache.t
val stats : t -> stats
val config : t -> Config.t

val hot_regs : t -> Hipstr_compiler.Fatbin.func_sym -> int list
(** The function's most-used allocatable registers (drives the global
    register cache at O2+). *)

val pretranslate : t -> int -> bool
(** Translate a source unit without transferring control and without
    charging cycles — models the idle core translating concurrently
    when a compulsory miss translates for both ISAs (Section 3.5).
    Returns false if the address is wild. *)

val complete_call : t -> callee_src:int -> src_ret:int -> unit
(** Perform the call side effect (push / link register) with a
    *source* return address, insert the RAT mapping for it, and enter
    the callee. Used to finish an indirect call after migration. *)

val drain_new_units : t -> int list
(** Source unit addresses translated since the last drain (the HIPStR
    layer mirrors compulsory translations onto the other ISA). *)

val flush : t -> unit
(** Flush the code cache wholesale: drop every translation, stub
    registration and chain patch, clear the RAT, and charge the flush
    cost. Relocation maps and the translation memo survive. *)

val save_state : Hipstr_util.Wire.w -> t -> unit
(** Serialize the VM: rng word, map generation, relocation maps, memo
    key set, translation history, code-cache allocator state, chain
    patches, un-drained units, counters. Translated code bytes do NOT
    travel — {!restore_state} re-materializes them. *)

val restore_state : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this VM from a {!save_state} image taken on a VM with
    the same config/ISA, re-encoding every live cache block at its
    recorded address (and re-applying chain patches) so the cache
    bytes in guest memory come out identical to checkpoint time.
    Charges no cycles and records no observations — the work was
    already accounted when it first happened. Requires the guest
    memory image (source code bytes) to be restored first.
    @raise Hipstr_util.Wire.Corrupt on malformed or inconsistent
    images (memo/map fingerprint mismatch, block size mismatch,
    patch targeting a non-stub). *)

val save_meta : Hipstr_util.Wire.w -> t -> unit
(** Serialize only the warm-start slice — rng word, map generation,
    relocation maps, memo keys, translation history — with no machine
    coupling, for persisting the translation memo across runs. *)

val load_meta : t -> Hipstr_util.Wire.r -> unit
(** Load {!save_meta} output into a freshly created VM (after the fat
    binary is in memory): subsequent translations of memoized units
    are served as memo installs.
    @raise Hipstr_util.Wire.Corrupt on malformed images. *)

val forget_memo : t -> unit
(** Drop the translation memo, keeping the translation history — the
    cold arm of a warm/cold start comparison. *)
