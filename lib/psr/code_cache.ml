module Obs = Hipstr_obs.Obs

type block = {
  cb_src : int;
  cb_cache : int;
  cb_size : int;
  cb_func : string;
  cb_src_spans : (int * int) list;
}

type t = {
  cc_base : int;
  cc_capacity : int;
  mutable cursor : int;
  by_src : (int, int) Hashtbl.t;
  mutable block_list : block list;
  mutable nflushes : int;
  cc_obs : Obs.t;
  cc_allocs : Obs.Metrics.counter;
  cc_flushes : Obs.Metrics.counter;
  cc_block_bytes : Obs.Metrics.histogram;
}

let create ?(obs = Obs.disabled) ?(isa = "any") ~base ~capacity () =
  let m = Obs.metrics obs in
  let name n = "code_cache." ^ isa ^ "." ^ n in
  {
    cc_base = base;
    cc_capacity = capacity;
    cursor = base;
    by_src = Hashtbl.create 256;
    block_list = [];
    nflushes = 0;
    cc_obs = obs;
    cc_allocs = Obs.Metrics.counter m (name "allocs");
    cc_flushes = Obs.Metrics.counter m (name "flushes");
    cc_block_bytes = Obs.Metrics.histogram m (name "block_bytes");
  }

let lookup t src = Hashtbl.find_opt t.by_src src

let align_up a n = (n + a - 1) / a * a

let has_room t size = t.cursor + size + 64 <= t.cc_base + t.cc_capacity

let alloc t ?(align = 1) ~src ~func ~size ~src_spans () =
  let start = align_up align t.cursor in
  if start + size > t.cc_base + t.cc_capacity then invalid_arg "code_cache: full";
  if Obs.on t.cc_obs then begin
    Obs.Metrics.incr t.cc_allocs;
    Obs.Metrics.observe t.cc_block_bytes (float_of_int size)
  end;
  t.cursor <- start + size;
  Hashtbl.replace t.by_src src start;
  t.block_list <-
    { cb_src = src; cb_cache = start; cb_size = size; cb_func = func; cb_src_spans = src_spans }
    :: t.block_list;
  start

let flush t =
  if Obs.on t.cc_obs then Obs.Metrics.incr t.cc_flushes;
  t.cursor <- t.cc_base;
  Hashtbl.reset t.by_src;
  t.block_list <- [];
  t.nflushes <- t.nflushes + 1

let blocks t = t.block_list
let used_bytes t = t.cursor - t.cc_base
let capacity t = t.cc_capacity
let flushes t = t.nflushes
let base t = t.cc_base
