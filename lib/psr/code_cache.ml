module Obs = Hipstr_obs.Obs

type policy = Flush | Fifo | Clock

let policy_name = function Flush -> "flush" | Fifo -> "fifo" | Clock -> "clock"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "flush" -> Some Flush
  | "fifo" -> Some Fifo
  | "clock" | "second-chance" -> Some Clock
  | _ -> None

type block = {
  cb_src : int;
  cb_cache : int;
  cb_size : int;
  cb_func : string;
  cb_src_spans : (int * int) list;
}

module Addr_map = Map.Make (Int)

type t = {
  cc_base : int;
  cc_capacity : int;
  cc_policy : policy;
  mutable cursor : int;
  by_src : (int, int) Hashtbl.t;
  mutable by_addr : block Addr_map.t;
  referenced : (int, unit) Hashtbl.t;
  mutable nflushes : int;
  mutable nevictions : int;
  cc_isa : string;
  cc_obs : Obs.t;
  cc_allocs : Obs.Metrics.counter;
  cc_flushes : Obs.Metrics.counter;
  cc_evictions : Obs.Metrics.counter;
  cc_block_bytes : Obs.Metrics.histogram;
}

let create ?(obs = Obs.disabled) ?(isa = "any") ?(policy = Flush) ~base ~capacity () =
  let m = Obs.metrics obs in
  let name n = "code_cache." ^ isa ^ "." ^ n in
  {
    cc_base = base;
    cc_capacity = capacity;
    cc_policy = policy;
    cursor = base;
    by_src = Hashtbl.create 256;
    by_addr = Addr_map.empty;
    referenced = Hashtbl.create 64;
    nflushes = 0;
    nevictions = 0;
    cc_isa = isa;
    cc_obs = obs;
    cc_allocs = Obs.Metrics.counter m (name "allocs");
    cc_flushes = Obs.Metrics.counter m (name "flushes");
    cc_evictions = Obs.Metrics.counter m (name "evictions");
    cc_block_bytes = Obs.Metrics.histogram m (name "block_bytes");
  }

let lookup t src =
  match Hashtbl.find_opt t.by_src src with
  | Some addr ->
      if t.cc_policy = Clock then Hashtbl.replace t.referenced addr ();
      Some addr
  | None -> None

let align_up a n = (n + a - 1) / a * a
let next_addr t ~align = align_up align t.cursor
let has_room t ~align ~size = next_addr t ~align + size <= t.cc_base + t.cc_capacity

(* Live blocks intersecting [lo, hi), ascending by cache address. At
   most one block can start strictly below [lo] and still reach into
   the window, since blocks never overlap each other. *)
let overlapping t ~lo ~hi =
  let tail =
    Addr_map.to_seq_from lo t.by_addr
    |> Seq.take_while (fun (a, _) -> a < hi)
    |> Seq.map snd |> List.of_seq
  in
  match Addr_map.find_last_opt (fun a -> a < lo) t.by_addr with
  | Some (_, b) when b.cb_cache + b.cb_size > lo -> b :: tail
  | _ -> tail

let block_containing t addr =
  match Addr_map.find_last_opt (fun a -> a <= addr) t.by_addr with
  | Some (_, b) when addr < b.cb_cache + b.cb_size -> Some b
  | _ -> None

let evict_block t b =
  t.by_addr <- Addr_map.remove b.cb_cache t.by_addr;
  Hashtbl.remove t.by_src b.cb_src;
  Hashtbl.remove t.referenced b.cb_cache;
  t.nevictions <- t.nevictions + 1;
  if Obs.on t.cc_obs then begin
    Obs.Metrics.incr t.cc_evictions;
    Obs.emit t.cc_obs
      (Obs.Trace.Cache_evict { isa = t.cc_isa; src = b.cb_src; bytes = b.cb_size })
  end

let alloc t ?(align = 1) ~src ~func ~size ~src_spans () =
  if size < 0 then invalid_arg "code_cache: negative size";
  let limit = t.cc_base + t.cc_capacity in
  let evicted = ref [] in
  let start =
    match t.cc_policy with
    | Flush ->
        let start = align_up align t.cursor in
        if start + size > limit then invalid_arg "code_cache: full";
        start
    | Fifo | Clock ->
        if align_up align t.cc_base + size > limit then
          invalid_arg "code_cache: unit exceeds capacity";
        (* Circular claim: march the write pointer forward, wrapping to
           base when the tail is too short. Under Clock, a referenced
           victim gets a second chance — its bit is cleared and the
           claim skips past it — bounded by the number of set bits so
           the walk always terminates. *)
        let skips = ref (Hashtbl.length t.referenced) in
        let rec claim cursor wraps =
          let start = align_up align cursor in
          if start + size > limit then
            if wraps >= 2 then invalid_arg "code_cache: claim failed"
            else claim t.cc_base (wraps + 1)
          else
            let victims = overlapping t ~lo:start ~hi:(start + size) in
            match
              if t.cc_policy = Clock && !skips > 0 then
                List.find_opt (fun b -> Hashtbl.mem t.referenced b.cb_cache) victims
              else None
            with
            | Some b ->
                Hashtbl.remove t.referenced b.cb_cache;
                decr skips;
                claim (b.cb_cache + b.cb_size) wraps
            | None ->
                List.iter (evict_block t) victims;
                evicted := victims;
                start
        in
        claim t.cursor 0
  in
  (* Re-allocating a live src replaces it: drop the stale block so
     [blocks] and per-block accounting never see duplicates. The old
     block may already be gone if the claim just evicted it. *)
  (match Hashtbl.find_opt t.by_src src with
  | Some old_addr -> (
      match Addr_map.find_opt old_addr t.by_addr with
      | Some old_b ->
          t.by_addr <- Addr_map.remove old_addr t.by_addr;
          Hashtbl.remove t.referenced old_addr;
          evicted := !evicted @ [ old_b ]
      | None -> ())
  | None -> ());
  if Obs.on t.cc_obs then begin
    Obs.Metrics.incr t.cc_allocs;
    Obs.Metrics.observe t.cc_block_bytes (float_of_int size)
  end;
  t.cursor <- start + size;
  Hashtbl.replace t.by_src src start;
  t.by_addr <-
    Addr_map.add start
      { cb_src = src; cb_cache = start; cb_size = size; cb_func = func; cb_src_spans = src_spans }
      t.by_addr;
  (start, !evicted)

let flush t =
  if Obs.on t.cc_obs then Obs.Metrics.incr t.cc_flushes;
  t.cursor <- t.cc_base;
  Hashtbl.reset t.by_src;
  Hashtbl.reset t.referenced;
  t.by_addr <- Addr_map.empty;
  t.nflushes <- t.nflushes + 1

let blocks t = Addr_map.fold (fun _ b acc -> b :: acc) t.by_addr [] |> List.rev
let live_blocks t = Addr_map.cardinal t.by_addr
let live_bytes t = Addr_map.fold (fun _ b acc -> acc + b.cb_size) t.by_addr 0
let used_bytes t = t.cursor - t.cc_base
let capacity t = t.cc_capacity
let flushes t = t.nflushes
let evictions t = t.nevictions
let policy t = t.cc_policy
let base t = t.cc_base

(* --- snapshot ------------------------------------------------------ *)
(* The allocator state travels exactly — cursor, live blocks, Clock
   reference bits and the flush/eviction counters — but not the
   translated bytes themselves: the VM re-materializes those from the
   relocation maps via the translator. [by_src] is derived (one entry
   per live block), so it is rebuilt rather than shipped. Blocks
   serialize in ascending cache-address order (the [Addr_map] fold
   order), keeping image bytes deterministic. *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "CCACHE";
  Wire.int w t.cursor;
  Wire.list w
    (fun w b ->
      Wire.int w b.cb_src;
      Wire.int w b.cb_cache;
      Wire.int w b.cb_size;
      Wire.str w b.cb_func;
      Wire.list w
        (fun w (lo, hi) ->
          Wire.int w lo;
          Wire.int w hi)
        b.cb_src_spans)
    (blocks t);
  Wire.list w Wire.int
    (List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) t.referenced []));
  Wire.int w t.nflushes;
  Wire.int w t.nevictions

let restore t r =
  Wire.expect_tag r "CCACHE";
  let cursor = Wire.r_int r in
  let bs =
    Wire.r_list r (fun r ->
        let cb_src = Wire.r_int r in
        let cb_cache = Wire.r_int r in
        let cb_size = Wire.r_int r in
        let cb_func = Wire.r_str r in
        let cb_src_spans =
          Wire.r_list r (fun r ->
              let lo = Wire.r_int r in
              let hi = Wire.r_int r in
              (lo, hi))
        in
        { cb_src; cb_cache; cb_size; cb_func; cb_src_spans })
  in
  let referenced = Wire.r_list r Wire.r_int in
  let nflushes = Wire.r_int r in
  let nevictions = Wire.r_int r in
  List.iter
    (fun b ->
      if b.cb_cache < t.cc_base || b.cb_cache + b.cb_size > t.cc_base + t.cc_capacity then
        Wire.corrupt "code-cache block [0x%x, +%d) outside this cache's region" b.cb_cache
          b.cb_size)
    bs;
  t.cursor <- cursor;
  Hashtbl.reset t.by_src;
  Hashtbl.reset t.referenced;
  t.by_addr <- Addr_map.empty;
  List.iter
    (fun b ->
      Hashtbl.replace t.by_src b.cb_src b.cb_cache;
      t.by_addr <- Addr_map.add b.cb_cache b t.by_addr)
    bs;
  List.iter (fun a -> Hashtbl.replace t.referenced a ()) referenced;
  t.nflushes <- nflushes;
  t.nevictions <- nevictions
