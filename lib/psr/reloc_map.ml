module Rng = Hipstr_util.Rng
module Stats = Hipstr_util.Stats
module Fatbin = Hipstr_compiler.Fatbin
module Ir = Hipstr_compiler.Ir
module Frame = Hipstr_compiler.Frame
open Hipstr_isa

type loc = Lreg of int | Lpad of int

type t = {
  rm_fname : string;
  rm_frame : Frame.t;
  rm_pad : int;
  rm_frame' : int;
  rm_ret_off : int;
  rm_out_off : int;
  rm_locals_off : int;
  rm_scratch_off : int;
  rm_vm_temp : int;
  rm_slot_off : (int, int) Hashtbl.t; (* original value-slot offset -> relocated *)
  rm_arg_off : int array;
  rm_reg_map : loc array; (* indexed by register; identity for non-allocatable *)
  rm_hash_key : int;
  rm_nregs_in_regs : int;
}

let func_name t = t.rm_fname
let padded_frame t = t.rm_frame'
let pad t = t.rm_pad
let ret_off t = t.rm_ret_off
let vm_temp_off t = t.rm_vm_temp
let arg_off t j = if j < Array.length t.rm_arg_off then t.rm_arg_off.(j) else t.rm_ret_off - 4
let regs_in_registers t = t.rm_nregs_in_regs

let entropy_bits_per_param (cfg : Config.t) = Stats.log2 (float_of_int (cfg.pad_bytes / 4))

(* Non-overlapping random placement of sized objects in [0, limit),
   word-aligned. The pad dwarfs the object set, so rejection sampling
   terminates quickly. *)
let place rng ~limit ~used size =
  let words = (size + 3) / 4 in
  let rec try_at attempts =
    if attempts > 10_000 then failwith "reloc_map: placement failed (pad too small)";
    let off = 4 * Rng.int rng (limit / 4) in
    let fits = off + size <= limit in
    let free =
      fits
      &&
      let ok = ref true in
      for w = 0 to words - 1 do
        if Hashtbl.mem used (off + (4 * w)) then ok := false
      done;
      !ok
    in
    if free then begin
      for w = 0 to words - 1 do
        Hashtbl.replace used (off + (4 * w)) ()
      done;
      off
    end
    else try_at (attempts + 1)
  in
  try_at 0

let generate (cfg : Config.t) rng (desc : Desc.t) (fs : Fatbin.func_sym) ~hot_regs =
  let frame = fs.fs_frame in
  let pad = cfg.pad_bytes in
  let frame' = frame.frame_bytes + pad in
  (* The top 16 bytes stay reserved: the CISC call pushes the return
     address at [frame' - 4] before the prologue relocates it. *)
  let limit = frame' - 16 in
  let used = Hashtbl.create 64 in
  let outgoing_bytes = max 4 (4 * frame.outgoing_words) in
  let out_off = place rng ~limit ~used outgoing_bytes in
  let locals_off =
    if frame.locals_bytes > 0 then place rng ~limit ~used frame.locals_bytes else 0
  in
  let scratch_off = place rng ~limit ~used 8 in
  (* 8 words: up to four temp-register spill slots, the indirect-call
     target slot at +16, and spares. *)
  let vm_temp = place rng ~limit ~used 32 in
  let ret_off = place rng ~limit ~used 4 in
  let slot_tbl = Hashtbl.create 32 in
  Array.iter
    (fun off -> if off >= 0 then Hashtbl.replace slot_tbl off (place rng ~limit ~used 4))
    frame.slot_off;
  let nparams = List.length fs.fs_ir.Ir.fn_params in
  let args = Array.init nparams (fun _ -> place rng ~limit ~used 4) in
  (* Register reallocation. *)
  let allocatable = Array.of_list desc.allocatable in
  let n = Array.length allocatable in
  let keep = Hashtbl.create 8 in
  (* Base policy: high randomization pressure; most registers go to
     the pad. *)
  Array.iter (fun r -> if Rng.float rng < 0.25 then Hashtbl.replace keep r ()) allocatable;
  if cfg.opt_level >= 2 then
    List.iteri (fun i r -> if i < 3 then Hashtbl.replace keep r ()) hot_regs;
  if cfg.opt_level >= 3 then begin
    let order = Array.copy allocatable in
    Rng.shuffle rng order;
    let i = ref 0 in
    while Hashtbl.length keep < min 3 n && !i < n do
      Hashtbl.replace keep order.(!i) ();
      incr i
    done
  end;
  let kept = Array.of_list (List.filter (Hashtbl.mem keep) (Array.to_list allocatable)) in
  (* Injective random assignment of kept registers onto registers. *)
  let targets = Array.copy allocatable in
  Rng.shuffle rng targets;
  let reg_map = Array.init 16 (fun r -> Lreg r) in
  Array.iteri (fun i r -> reg_map.(r) <- Lreg targets.(i)) kept;
  Array.iter
    (fun r -> if not (Hashtbl.mem keep r) then reg_map.(r) <- Lpad (place rng ~limit ~used 4))
    allocatable;
  {
    rm_fname = fs.fs_name;
    rm_frame = frame;
    rm_pad = pad;
    rm_frame' = frame';
    rm_ret_off = ret_off;
    rm_out_off = out_off;
    rm_locals_off = locals_off;
    rm_scratch_off = scratch_off;
    rm_vm_temp = vm_temp;
    rm_slot_off = slot_tbl;
    rm_arg_off = args;
    rm_reg_map = reg_map;
    rm_hash_key = Rng.bits32 rng;
    rm_nregs_in_regs = Array.length kept;
  }

let map_reg t r = if r >= 0 && r < 16 then t.rm_reg_map.(r) else Lreg r

(* Keyed hash for offsets that match no known object: deterministic
   within the epoch, uniform over the usable pad. *)
let hash_off t k =
  let h = (k * 0x9E3779B1) lxor t.rm_hash_key in
  let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
  let h = (h lxor (h lsr 13)) land max_int in
  4 * (h mod (max 1 ((t.rm_frame' - 16) / 4)))

let map_slot t k =
  let f = t.rm_frame in
  if k >= f.frame_bytes then begin
    (* incoming-argument access *)
    let j = (k - f.frame_bytes) / 4 in
    if j < Array.length t.rm_arg_off then t.rm_arg_off.(j) else hash_off t k
  end
  else if k >= 0 && k < 4 * f.outgoing_words then t.rm_out_off + k
  else if k >= f.locals_off && k < f.locals_off + f.locals_bytes then
    t.rm_locals_off + (k - f.locals_off)
  else if k = f.ret_off then t.rm_ret_off
  else if k >= f.scratch_off && k < f.scratch_off + 8 then t.rm_scratch_off + (k - f.scratch_off)
  else
    match Hashtbl.find_opt t.rm_slot_off k with
    | Some off -> off
    | None -> hash_off t k

let randomized_locations t =
  let acc = ref [ t.rm_out_off; t.rm_scratch_off; t.rm_vm_temp; t.rm_ret_off ] in
  if t.rm_frame.locals_bytes > 0 then acc := t.rm_locals_off :: !acc;
  Hashtbl.iter (fun _ v -> acc := v :: !acc) t.rm_slot_off;
  Array.iter (fun v -> acc := v :: !acc) t.rm_arg_off;
  Array.iteri
    (fun r loc ->
      match loc with
      | Lpad off -> if r < 16 then acc := off :: !acc
      | Lreg _ -> ())
    t.rm_reg_map;
  !acc

let fingerprint t = t.rm_hash_key

(* --- snapshot ------------------------------------------------------ *)
(* A relocation map is pure data drawn from the VM's rng stream; a
   snapshot carries every field verbatim (including the embedded
   [Frame.t], so loading needs no fat binary lookup) plus the rng
   state separately at the VM level, so maps generated *after* a
   restore continue the donor's stream exactly. Hashtable contents
   are written sorted to keep image bytes deterministic. *)

module Wire = Hipstr_util.Wire

let save_frame w (f : Frame.t) =
  Wire.int w f.Frame.outgoing_words;
  Wire.int w f.Frame.locals_off;
  Wire.int w f.Frame.locals_bytes;
  Wire.int_array w f.Frame.slot_off;
  Wire.int w f.Frame.scratch_off;
  Wire.int w f.Frame.ret_off;
  Wire.int w f.Frame.frame_bytes

let load_frame r : Frame.t =
  let outgoing_words = Wire.r_int r in
  let locals_off = Wire.r_int r in
  let locals_bytes = Wire.r_int r in
  let slot_off = Wire.r_int_array r in
  let scratch_off = Wire.r_int r in
  let ret_off = Wire.r_int r in
  let frame_bytes = Wire.r_int r in
  { Frame.outgoing_words; locals_off; locals_bytes; slot_off; scratch_off; ret_off; frame_bytes }

let save_loc w = function
  | Lreg n ->
    Wire.u8 w 0;
    Wire.int w n
  | Lpad n ->
    Wire.u8 w 1;
    Wire.int w n

let load_loc r =
  match Wire.r_u8 r with
  | 0 -> Lreg (Wire.r_int r)
  | 1 -> Lpad (Wire.r_int r)
  | v -> Wire.corrupt "bad reloc-map location tag %d" v

let save w t =
  Wire.tag w "RMAP";
  Wire.str w t.rm_fname;
  save_frame w t.rm_frame;
  Wire.int w t.rm_pad;
  Wire.int w t.rm_frame';
  Wire.int w t.rm_ret_off;
  Wire.int w t.rm_out_off;
  Wire.int w t.rm_locals_off;
  Wire.int w t.rm_scratch_off;
  Wire.int w t.rm_vm_temp;
  Wire.list w
    (fun w (k, v) ->
      Wire.int w k;
      Wire.int w v)
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rm_slot_off []));
  Wire.int_array w t.rm_arg_off;
  Wire.int w (Array.length t.rm_reg_map);
  Array.iter (save_loc w) t.rm_reg_map;
  Wire.int w t.rm_hash_key;
  Wire.int w t.rm_nregs_in_regs

let load r =
  Wire.expect_tag r "RMAP";
  let rm_fname = Wire.r_str r in
  let rm_frame = load_frame r in
  let rm_pad = Wire.r_int r in
  let rm_frame' = Wire.r_int r in
  let rm_ret_off = Wire.r_int r in
  let rm_out_off = Wire.r_int r in
  let rm_locals_off = Wire.r_int r in
  let rm_scratch_off = Wire.r_int r in
  let rm_vm_temp = Wire.r_int r in
  let slots = Wire.r_list r (fun r ->
      let k = Wire.r_int r in
      let v = Wire.r_int r in
      (k, v))
  in
  let rm_slot_off = Hashtbl.create (max 8 (List.length slots)) in
  List.iter (fun (k, v) -> Hashtbl.replace rm_slot_off k v) slots;
  let rm_arg_off = Wire.r_int_array r in
  let nregs = Wire.r_int r in
  if nregs <> 16 then Wire.corrupt "bad reloc-map register count %d" nregs;
  let rm_reg_map = Array.init nregs (fun _ -> load_loc r) in
  let rm_hash_key = Wire.r_int r in
  let rm_nregs_in_regs = Wire.r_int r in
  {
    rm_fname;
    rm_frame;
    rm_pad;
    rm_frame';
    rm_ret_off;
    rm_out_off;
    rm_locals_off;
    rm_scratch_off;
    rm_vm_temp;
    rm_slot_off;
    rm_arg_off;
    rm_reg_map;
    rm_hash_key;
    rm_nregs_in_regs;
  }
