open Hipstr_isa
open Minstr
module Fatbin = Hipstr_compiler.Fatbin

exception Wild of int

type exit_stub = { es_off : int; es_target_src : int }

type icall_site = {
  is_off : int;
  is_src : int;
  is_src_ret : int;
  is_nargs : int;
  is_call : bool;
}

type unit_code = {
  u_src : int;
  u_bytes : string;
  u_size : int;
  u_stubs : exit_stub list;
  u_icalls : icall_site list;
  u_src_spans : (int * int) list;
  u_instrs : int;
  u_emitted : int;
}

let jmp_same_size (desc : Desc.t) =
  let len i =
    match desc.which with
    | Desc.Cisc -> Hipstr_cisc.Isa.length i
    | Desc.Risc -> Hipstr_risc.Isa.length i
  in
  len (Jmp 0) = len (Trap 0)

(* ------------------------------------------------------------------ *)
(* Emission state: items carry an optional symbolic reference to an
   out-of-line stub whose address is known only after layout.         *)

(* Stub references are plain ints: [no_ref] for none, the stub index
   otherwise. Items live in a pair of growable parallel arrays rather
   than a cons list — [emit] runs per emitted instruction and the
   per-item cons + tuple (plus the final reverse-and-convert) were a
   measurable slice of translation-time allocation. *)
let no_ref = -1

type st = {
  cfg : Config.t;
  desc : Desc.t;
  mutable it_instr : Minstr.t array; (* emitted instructions, [0, emitted) *)
  mutable it_ref : int array; (* parallel stub refs, [no_ref] if none *)
  mutable nstub : int;
  mutable stub_targets : (int * int) list; (* stub idx -> target src, reverse *)
  mutable emitted : int;
}

(* Inline traps for indirect transfers carry this flag in their
   operand so layout can tell them apart from ordinary exit stubs
   whose target could coincide. Addresses stay below it. *)
let icall_flag = 0x4000_0000

let ilen st i =
  match st.desc.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.length i
  | Desc.Risc -> Hipstr_risc.Isa.length i

let emit st ?(rf = no_ref) i =
  let n = st.emitted in
  if n = Array.length st.it_instr then begin
    let cap = 2 * n in
    let instr' = Array.make cap Minstr.Nop in
    let ref' = Array.make cap no_ref in
    Array.blit st.it_instr 0 instr' 0 n;
    Array.blit st.it_ref 0 ref' 0 n;
    st.it_instr <- instr';
    st.it_ref <- ref'
  end;
  st.it_instr.(n) <- i;
  st.it_ref.(n) <- rf;
  st.emitted <- n + 1

let new_stub st target =
  let idx = st.nstub in
  st.nstub <- idx + 1;
  st.stub_targets <- (idx, target) :: st.stub_targets;
  idx

(* Temp-register discipline. Emulation sequences need registers, but
   any register — including the scratches — may carry live source
   state (the compiler keeps values in scratch registers across its
   own lowering sequences). So a temp is (a) chosen to avoid every
   register the instruction being rewritten touches, in either its
   source or relocated form, and (b) bracketed by a spill to the
   translator's private pad slots. Temp slot keys are logical (0/1/2);
   the same key returns the same register within one instruction. *)

type temps = {
  mutable t_assigned : (int * int) list; (* key -> register *)
  mutable t_saved : (int * int) list; (* register -> save slot offset *)
  t_avoid : int list;
}

let fresh_temps avoid = { t_assigned = []; t_saved = []; t_avoid = avoid }

(* Registers the instruction touches: every operand register plus its
   relocation target. Direct matches rather than a fold over
   [Minstr.operands]: this runs per source instruction, and the
   operand list plus the two capturing closures of the fold were a
   measurable slice of translation-time allocation. Only the avoid
   list itself (a membership set — order does not matter to
   [get_temp]) is allocated. *)
let avoid_add (map : Reloc_map.t) acc r =
  let acc = r :: acc in
  match Reloc_map.map_reg map r with Reloc_map.Lreg r' -> r' :: acc | Reloc_map.Lpad _ -> acc

let avoid_operand map acc (op : operand) =
  match op with
  | Reg r -> avoid_add map acc r
  | Mem { base; _ } -> avoid_add map acc base
  | Imm _ -> acc

let avoid_of_instr (map : Reloc_map.t) (i : Minstr.t) =
  match i with
  | Mov (d, s) | Binop (_, d, s) | Cmp (d, s) -> avoid_operand map (avoid_operand map [] d) s
  | Lea (d, b, _) -> avoid_add map (avoid_add map [] d) b
  | Push s | Pop s | Jmpr s | Callr s | Retrat s -> avoid_operand map [] s
  | Retr r -> avoid_add map [] r
  | Jmp _ | Jcc _ | Call _ | Ret | Syscall | Nop | Trap _ | Callrat _ -> []

let get_temp st (map : Reloc_map.t) temps key =
  match List.assoc_opt key temps.t_assigned with
  | Some reg -> reg
  | None ->
    let taken = List.map snd temps.t_assigned in
    let candidates = st.desc.scratch :: st.desc.scratch2 :: st.desc.allocatable in
    let reg =
      match
        List.find_opt (fun r -> (not (List.mem r temps.t_avoid)) && not (List.mem r taken)) candidates
      with
      | Some r -> r
      | None -> failwith "translator: no temp register available"
    in
    temps.t_assigned <- (key, reg) :: temps.t_assigned;
    let off = Reloc_map.vm_temp_off map + (4 * List.length temps.t_saved) in
    temps.t_saved <- (reg, off) :: temps.t_saved;
    emit st (Mov (Mem { base = st.desc.sp; disp = off }, Reg reg));
    reg

let release_temps st temps =
  List.iter
    (fun (reg, off) -> emit st (Mov (Reg reg, Mem { base = st.desc.sp; disp = off })))
    (List.rev temps.t_saved);
  temps.t_assigned <- [];
  temps.t_saved <- []

(* ------------------------------------------------------------------ *)
(* Operand rewriting. *)

let legal st i =
  match st.desc.which with
  | Desc.Risc -> Hipstr_risc.Isa.encodable i
  | Desc.Cisc -> (
    match i with
    | Mov ((Imm _ | Mem _), Mem _) -> false
    | Binop (_, Imm _, _) | Binop (_, Mem _, Mem _) -> false
    | Cmp (Imm _, _) | Cmp (Mem _, Mem _) -> false
    | Pop (Imm _) | Jmpr (Imm _) | Callr (Imm _) | Retrat (Imm _) -> false
    | Retr _ -> false
    | _ -> true)

(* Rewrite one operand; may emit base-load instructions using temps.
   [phys] suppresses register relocation (syscall windows).
   [override] replaces sp-relative displacement mapping (argument
   stores aimed at a callee's randomized convention). *)
let xop st (map : Reloc_map.t) temps ?(phys = false) ?override (op : operand) : operand =
  let sp = st.desc.sp in
  match op with
  | Imm k -> Imm k
  | Reg r ->
    if phys || r = sp then Reg r
    else (
      match Reloc_map.map_reg map r with
      | Reloc_map.Lreg r' -> Reg r'
      | Reloc_map.Lpad off -> Mem { base = sp; disp = off })
  | Mem { base; disp } when base = sp ->
    let disp' = match override with Some d -> d | None -> Reloc_map.map_slot map disp in
    Mem { base = sp; disp = disp' }
  | Mem { base; disp } -> (
    match Reloc_map.map_reg map base with
    | Reloc_map.Lreg b' -> Mem { base = b'; disp }
    | Reloc_map.Lpad off ->
      let t = get_temp st map temps 0 in
      emit st (Mov (Reg t, Mem { base = sp; disp = off }));
      Mem { base = t; disp })

(* Emit a mov between two already-rewritten operands, legalizing
   through a temp when the shape is not encodable. *)
let emit_mov_x st map temps dst src =
  if dst = src then ()
  else
    let m = Mov (dst, src) in
    if legal st m then emit st m
    else begin
      let t = get_temp st map temps 1 in
      emit st (Mov (Reg t, src));
      emit st (Mov (dst, Reg t))
    end

(* ------------------------------------------------------------------ *)
(* Per-instruction rewriting. [marks] may tag the instruction as part
   of a syscall window or as an argument store for the unit's
   terminal direct call. *)

type mark = Mnone | Mphys_dst | Margstore of int (* relocated displacement *)

let rewrite_instr st (map : Reloc_map.t) mark (i : Minstr.t) =
  let temps = fresh_temps (avoid_of_instr map i) in
  (match i with
  | Nop -> emit st Nop
  | Syscall -> emit st Syscall
  | Mov (d, s) -> (
    match mark with
    | Mphys_dst ->
      (* syscall argument load: physical destination register *)
      let s' = xop st map temps s in
      emit_mov_x st map temps d s'
    | Margstore disp' ->
      let s' = xop st map temps s in
      let d' = xop st map temps ~override:disp' d in
      emit_mov_x st map temps d' s'
    | Mnone ->
      let s' = xop st map temps s in
      let d' = xop st map temps d in
      emit_mov_x st map temps d' s')
  | Lea (d, b, k) ->
    let sp = st.desc.sp in
    let target_addr_op =
      if b = sp then `Sp (Reloc_map.map_slot map k)
      else
        match Reloc_map.map_reg map b with
        | Reloc_map.Lreg b' -> `Reg (b', k)
        | Reloc_map.Lpad off ->
          let t = get_temp st map temps 0 in
          emit st (Mov (Reg t, Mem { base = sp; disp = off }));
          `Reg (t, k)
    in
    let dloc = Reloc_map.map_reg map d in
    let emit_lea dreg =
      match target_addr_op with
      | `Sp k' -> emit st (Lea (dreg, sp, k'))
      | `Reg (b', k') -> emit st (Lea (dreg, b', k'))
    in
    (match dloc with
    | Reloc_map.Lreg d' -> emit_lea d'
    | Reloc_map.Lpad off ->
      let t = get_temp st map temps 1 in
      emit_lea t;
      emit st (Mov (Mem { base = sp; disp = off }, Reg t)))
  | Binop (op, d, s) -> (
    let s' = xop st map temps s in
    let d' = xop st map temps d in
    let b' = Binop (op, d', s') in
    if legal st b' then emit st b'
    else
      match (d, d') with
      | Mem { base = b0; disp }, Mem { base = bt; disp = _ }
        when List.exists (fun (_, r) -> r = bt) temps.t_assigned && b0 <> st.desc.sp ->
        (* The destination's base pointer lives in temp 0; the
           write-back would need the base after the temps are spent,
           so compute in t0 itself and reload the base from its pad
           slot at the end. *)
        let off_b =
          match Reloc_map.map_reg map b0 with
          | Reloc_map.Lpad o -> o
          | Reloc_map.Lreg _ -> assert false
        in
        let t0 = bt in
        let t1 = get_temp st map temps 1 in
        let s_use =
          match s' with
          | (Reg _ | Imm _) when legal st (Binop (op, Reg t0, s')) -> s'
          | _ ->
            emit st (Mov (Reg t1, s'));
            Reg t1
        in
        emit st (Mov (Reg t0, d'));
        emit st (Binop (op, Reg t0, s_use));
        emit st (Mov (Reg t1, Mem { base = st.desc.sp; disp = off_b }));
        emit st (Mov (Mem { base = t1; disp }, Reg t0))
      | _ ->
        let t1 = get_temp st map temps 1 in
        emit st (Mov (Reg t1, d'));
        (match s' with
        | (Imm _ | Reg _) when legal st (Binop (op, Reg t1, s')) ->
          emit st (Binop (op, Reg t1, s'))
        | _ ->
          let t0 = get_temp st map temps 0 in
          emit st (Mov (Reg t0, s'));
          emit st (Binop (op, Reg t1, Reg t0)));
        emit st (Mov (d', Reg t1)))
  | Cmp (a, b) ->
    let a' = xop st map temps a in
    let b' = xop st map temps b in
    let c' = Cmp (a', b') in
    if legal st c' then emit st c'
    else begin
      let t1 = get_temp st map temps 1 in
      emit st (Mov (Reg t1, a'));
      if legal st (Cmp (Reg t1, b')) then emit st (Cmp (Reg t1, b'))
      else begin
        let t0 = get_temp st map temps 0 in
        emit st (Mov (Reg t0, b'));
        emit st (Cmp (Reg t1, Reg t0))
      end
    end
  | Push s ->
    let s' = xop st map temps s in
    let p' = Push s' in
    if legal st p' then emit st p'
    else begin
      let t1 = get_temp st map temps 1 in
      emit st (Mov (Reg t1, s'));
      emit st (Push (Reg t1))
    end
  | Pop d ->
    let d' = xop st map temps d in
    let p' = Pop d' in
    if legal st p' then emit st p'
    else begin
      let t1 = get_temp st map temps 1 in
      emit st (Pop (Reg t1));
      emit st (Mov (d', Reg t1))
    end
  | Jmp _ | Jcc _ | Call _ | Callr _ | Jmpr _ | Ret | Retr _ | Trap _ | Callrat _ | Retrat _ ->
    invalid_arg "rewrite_instr: control instruction");
  (* Flag subtlety: releasing temps emits only Movs, which do not
     disturb the condition codes the following source Jcc reads. *)
  release_temps st temps

(* ------------------------------------------------------------------ *)
(* Segment scanning. *)

let decode_for which ~read addr =
  match which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

(* Decode a straight-line segment (terminator inclusive). Returns the
   body in *reverse* with its length — the caller fills an array
   backwards, which skips the [List.rev] copy the old interface
   paid per scanned instruction. *)
let scan_segment st ~read pc ~max_instrs =
  let rec go addr n acc =
    if n >= max_instrs then (acc, n, None, addr)
    else
      match decode_for st.desc.which ~read addr with
      | None -> (acc, n, None, addr)
      | Some (i, len) ->
        if Minstr.is_control i then (acc, n, Some (addr, i, len), addr + len)
        else go (addr + len) (n + 1) ((addr, i, len) :: acc)
  in
  go pc 0 []

let rec fill_rev a l i =
  match l with
  | [] -> ()
  | hd :: tl ->
    a.(i) <- hd;
    fill_rev a tl (i - 1)

let body_array rev n =
  match rev with
  | [] -> [||]
  | hd :: _ ->
    let a = Array.make n hd in
    fill_rev a rev (n - 1);
    a

(* Identify syscall windows and terminal-call argument stores. The
   scans are top-level recursive functions, not local closures —
   [compute_marks] runs per segment and the only allocations it
   should make are the marks array and the [Margstore] payloads. *)

(* Syscall windows: the run of [mov (reg j), [sp+4j]] loads just
   before each syscall keeps physical destinations; the first
   following [mov _, (reg ret)] keeps a physical source. *)
let rec syscall_back sp (body : (int * Minstr.t * int) array) marks k =
  if k >= 0 then
    match body.(k) with
    | _, Mov (Reg r, Mem { base; disp }), _ when base = sp && r <= 3 && disp = 4 * r ->
      marks.(k) <- Mphys_dst;
      syscall_back sp body marks (k - 1)
    | _ -> ()

(* Terminal direct call: the stores into the outgoing region in the
   trailing run of moves (which may interleave temp loads) are that
   callee's arguments. The scan stops at the first non-move or at a
   syscall, whose own staging must stay under the generic slot
   coloring. *)
let rec argstore_back sp out_words callee_map fpad (body : (int * Minstr.t * int) array) marks k =
  if k >= 0 && marks.(k) = Mnone then
    match body.(k) with
    | _, Mov (Mem { base; disp }, _), _ when base = sp && disp >= 0 && disp < 4 * out_words ->
      let j = disp / 4 in
      marks.(k) <- Margstore (Reloc_map.arg_off callee_map j - fpad);
      argstore_back sp out_words callee_map fpad body marks (k - 1)
    | _, Mov _, _ -> argstore_back sp out_words callee_map fpad body marks (k - 1)
    | _ -> ()

let compute_marks st (map_of_callee : int -> Reloc_map.t option) frame_out_words body term =
  let n = Array.length body in
  let marks = Array.make n Mnone in
  let sp = st.desc.sp in
  for idx = 0 to n - 1 do
    match body.(idx) with
    | _, Syscall, _ -> syscall_back sp body marks (idx - 1)
    | _ -> ()
  done;
  (match term with
  | Some (_, Call target, _) -> (
    match map_of_callee target with
    | None -> ()
    | Some callee_map ->
      let fpad = Reloc_map.padded_frame callee_map in
      argstore_back sp frame_out_words callee_map fpad body marks (n - 1))
  | _ -> ());
  marks

(* The function-result register is part of the (randomized) calling
   convention boundary: values cross call/syscall boundaries in the
   *physical* result register, so the producing move keeps a physical
   destination and the consuming move a physical source. When the
   compiler elided the move (the value's home was the result register
   itself), the translator inserts a fix-up between the physical
   register and the map's relocation of it. *)

let emit_result_fixup st (map : Reloc_map.t) ~outgoing =
  let ret = st.desc.ret_reg in
  match Reloc_map.map_reg map ret with
  | Reloc_map.Lreg r' when r' = ret -> ()
  | loc ->
    let relocated : operand =
      match loc with
      | Reloc_map.Lreg r' -> Reg r'
      | Reloc_map.Lpad off -> Mem { base = st.desc.sp; disp = off }
    in
    if outgoing then emit st (Mov (Reg ret, relocated))
    else emit st (Mov (relocated, Reg ret))

(* ------------------------------------------------------------------ *)

(* The translation of a unit, scanned and laid out but not yet bound
   to a cache address. Every instruction length is fixed, so offsets,
   stub placement and total size are base-independent; only the final
   encoding needs the address. [layout] binds a [prepared] to a base —
   repeatably, which is what makes the VM's translation memo sound. *)
type prepared = {
  p_st : st;
  p_src : int;
  p_items : Minstr.t array;
  p_refs : int array; (* parallel stub refs, [no_ref] if none *)
  p_offsets : int array;
  p_stub_targets : int array;
  p_stub_offs : int array;
  p_total : int;
  p_icalls : icall_site list;
  p_spans : (int * int) list;
  p_instrs : int;
}



let prepare (cfg : Config.t) desc ~read ~fatbin ~map_of ~src =
  let st =
    {
      cfg;
      desc;
      it_instr = Array.make 64 Minstr.Nop;
      it_ref = Array.make 64 no_ref;
      nstub = 0;
      stub_targets = [];
      emitted = 0;
    }
  in
  let sp = desc.sp in
  let fs0 =
    match Fatbin.func_at fatbin desc.which src with Some fs -> fs | None -> raise (Wild src)
  in
  let map0 = map_of fs0 in
  let spans = ref [] in
  let consumed = ref 0 in
  let inline_budget = ref (if cfg.opt_level >= 1 then cfg.superblock_budget else 0) in
  let visited = Hashtbl.create 8 in
  (* Record positions of inline traps: we note the item count before
     emitting so layout can recover offsets. Simpler: traps are
     emitted as items carrying their own target; icall traps are
     paired with their record by target address later. *)
  let icall_records = ref [] in
  let emit_exit_trap target = emit st (Trap target) in
  let emit_icall_trap info =
    icall_records := info :: !icall_records;
    emit st (Trap (info.is_src lor icall_flag))
  in
  (* One closure per prepare, not per segment: [compute_marks] asks
     for the callee map on call-terminated segments. *)
  let callee_map_of target =
    match Fatbin.func_at fatbin desc.which target with
    | Some cfs when (Fatbin.image cfs desc.which).im_entry = target -> Some (map_of cfs)
    | Some _ | None -> None
  in
  (* Translate one segment chain (superblocks follow direct jumps and
     conditional fall-through). *)
  let first_segment = ref true in
  let rec do_segment fs map pc =
    let unit_start = !first_segment in
    first_segment := false;
    if Hashtbl.mem visited pc then emit_exit_trap pc
    else begin
      Hashtbl.replace visited pc ();
      let im = Fatbin.image fs desc.which in
      let rev, nbody, term, seg_end = scan_segment st ~read pc ~max_instrs:64 in
      spans := (pc, seg_end - pc) :: !spans;
      let body = body_array rev nbody in
      consumed := !consumed + nbody + (match term with Some _ -> 1 | None -> 0);
      let marks = compute_marks st callee_map_of fs.fs_frame.outgoing_words body term in
      let fbytes = fs.fs_frame.frame_bytes in
      let fbytes' = Reloc_map.padded_frame map in
      let skip = ref 0 in
      (* Prologue rewriting when the segment starts at the entry. *)
      if pc = im.im_entry then begin
        match (desc.call_pushes_ret, Array.length body) with
        | true, n when n >= 1 -> (
          match body.(0) with
          | _, Binop (Sub, Reg r, Imm k), _ when r = sp && k = fbytes - 4 ->
            emit st (Binop (Sub, Reg sp, Imm (fbytes' - 4)));
            (* relocate the hardware-pushed return address *)
            emit st (Mov (Reg desc.scratch, Mem { base = sp; disp = fbytes' - 4 }));
            emit st (Mov (Mem { base = sp; disp = Reloc_map.ret_off map }, Reg desc.scratch));
            skip := 1
          | _ -> ())
        | false, n when n >= 2 -> (
          match (body.(0), body.(1)) with
          | (_, Binop (Sub, Reg r, Imm k), _), (_, Mov (Mem { base; disp }, Reg lr), _)
            when r = sp && k = fbytes && base = sp && disp = fbytes - 4 && Some lr = desc.lr ->
            emit st (Binop (Sub, Reg sp, Imm fbytes'));
            emit st (Mov (Mem { base = sp; disp = Reloc_map.ret_off map }, Reg lr));
            skip := 2
          | _ -> ())
        | _ -> ()
      end;
      (* Body. The CISC epilogue's [add sp, F-4] pairs with the
         terminator [ret]; the RISC epilogue is the trailing
         [ldr lr]/[add sp] pair before [retr lr]. We detect them and
         let the terminator handler emit the relocated sequence. *)
      let n = Array.length body in
      let epi_start =
        match (term, desc.call_pushes_ret) with
        | Some (_, Ret, _), true when n >= 1 -> (
          match body.(n - 1) with
          | _, Binop (Add, Reg r, Imm k), _ when r = sp && k = fbytes - 4 -> n - 1
          | _ -> n)
        | Some (_, Retr rr, _), false when n >= 2 -> (
          match (body.(n - 2), body.(n - 1)) with
          | (_, Mov (Reg lr, Mem { base; disp }), _), (_, Binop (Add, Reg r2, Imm k2), _)
            when Some lr = desc.lr && lr = rr && base = sp && disp = fbytes - 4 && r2 = sp
                 && k2 = fbytes ->
            n - 2
          | _ -> n)
        | _ -> n
      in
      let epilogue_matched = epi_start < n in
      (* Result-register convention at boundaries (see
         [emit_result_fixup]): on entering a unit at a call-site
         return and after every syscall, the physical result register
         is copied to its map location; a matched epilogue copies it
         back just before returning. Source instructions in between
         are translated uniformly against the map. *)
      if unit_start && Fatbin.callsite_of_ret fatbin desc.which pc <> None then
        emit_result_fixup st map ~outgoing:false;
      for idx = !skip to epi_start - 1 do
        let _, i, _ = body.(idx) in
        rewrite_instr st map marks.(idx) i;
        match i with
        | Syscall -> emit_result_fixup st map ~outgoing:false
        | _ -> ()
      done;
      (* Terminator. *)
      match term with
      | None ->
        (* budget exhausted or undecodable: exit to the VM *)
        emit_exit_trap seg_end
      | Some (taddr, t, tlen) -> (
        let next_src = taddr + tlen in
        match t with
        | Jmp target ->
          if !inline_budget > 0
             && (match Fatbin.func_at fatbin desc.which target with
                | Some fs' -> fs'.fs_name = fs.fs_name
                | None -> false)
          then begin
            inline_budget := !inline_budget - Array.length body - 1;
            do_segment fs map target
          end
          else emit_exit_trap target
        | Jcc (c, target) ->
          let stub = new_stub st target in
          emit st ~rf:stub (Jcc (c, 0));
          if !inline_budget > 0 then begin
            inline_budget := !inline_budget - Array.length body - 1;
            do_segment fs map next_src
          end
          else emit_exit_trap next_src
        | Call target ->
          let stub = new_stub st target in
          emit st ~rf:stub (Callrat { target = 0; src_ret = next_src });
          emit_exit_trap next_src
        | Callr op ->
          (* Spill the (relocated) target into the VM temp slot, then
             trap: the VM validates the target, applies the callee's
             calling convention, and continues. This is the paper's
             security-event site for indirect calls. *)
          let temps = fresh_temps (avoid_of_instr map t) in
          let op' = xop st map temps op in
          emit_mov_x st map temps (Mem { base = sp; disp = Reloc_map.vm_temp_off map + 16 }) op';
          release_temps st temps;
          let nargs =
            (* indirect-call argument stores stay under the generic
               slot coloring; count the outgoing stores in the trailing
               run of moves *)
            let k = ref (n - 1) and cnt = ref 0 in
            let continue_ = ref true in
            while !continue_ && !k >= 0 do
              (match body.(!k) with
              | _, Mov (Mem { base; disp }, _), _
                when base = sp && disp >= 0 && disp < 4 * fs.fs_frame.outgoing_words ->
                incr cnt
              | _, Mov _, _ -> ()
              | _ -> continue_ := false);
              decr k
            done;
            !cnt
          in
          emit_icall_trap { is_off = 0; is_src = taddr; is_src_ret = next_src; is_nargs = nargs; is_call = true }
        | Jmpr op ->
          let temps = fresh_temps (avoid_of_instr map t) in
          let op' = xop st map temps op in
          emit_mov_x st map temps (Mem { base = sp; disp = Reloc_map.vm_temp_off map + 16 }) op';
          release_temps st temps;
          emit_icall_trap { is_off = 0; is_src = taddr; is_src_ret = 0; is_nargs = 0; is_call = false }
        | Ret ->
          if epilogue_matched then begin
            emit_result_fixup st map ~outgoing:true;
            emit st (Mov (Reg desc.scratch, Mem { base = sp; disp = Reloc_map.ret_off map }));
            emit st (Binop (Add, Reg sp, Imm fbytes'));
            emit st (Retrat (Reg desc.scratch))
          end
          else begin
            (* a stray return (gadget): consume one word, then return
               via the relocated slot — pad-sized entropy even here *)
            emit st (Binop (Add, Reg sp, Imm 4));
            if legal st (Retrat (Mem { base = sp; disp = Reloc_map.ret_off map - 4 })) then
              emit st (Retrat (Mem { base = sp; disp = Reloc_map.ret_off map - 4 }))
            else begin
              emit st (Mov (Reg desc.scratch, Mem { base = sp; disp = Reloc_map.ret_off map - 4 }));
              emit st (Retrat (Reg desc.scratch))
            end
          end
        | Retr r ->
          if epilogue_matched then begin
            emit_result_fixup st map ~outgoing:true;
            emit st (Mov (Reg desc.scratch, Mem { base = sp; disp = Reloc_map.ret_off map }));
            emit st (Binop (Add, Reg sp, Imm fbytes'));
            emit st (Retrat (Reg desc.scratch))
          end
          else (
            match Reloc_map.map_reg map r with
            | Reloc_map.Lreg r' -> emit st (Retrat (Reg r'))
            | Reloc_map.Lpad off ->
              emit st (Mov (Reg desc.scratch, Mem { base = sp; disp = off }));
              emit st (Retrat (Reg desc.scratch)))
        | Syscall | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ ->
          assert false (* not terminators *)
        | Trap _ | Callrat _ | Retrat _ ->
          (* pseudo-instructions never appear in source sections *)
          raise (Wild taddr))
    end
  in
  do_segment fs0 map0 src;
  (* Layout: main items first, then one out-of-line Trap per stub. *)
  let items = Array.sub st.it_instr 0 st.emitted in
  let refs = Array.sub st.it_ref 0 st.emitted in
  let stub_targets =
    let a = Array.make st.nstub 0 in
    List.iter (fun (i, t) -> a.(i) <- t) st.stub_targets;
    a
  in
  let offsets = Array.make (Array.length items) 0 in
  let off = ref 0 in
  Array.iteri
    (fun i ins ->
      offsets.(i) <- !off;
      off := !off + ilen st ins)
    items;
  let stub_offs = Array.make st.nstub 0 in
  Array.iteri
    (fun i _ ->
      stub_offs.(i) <- !off;
      off := !off + ilen st (Trap 0))
    stub_offs;
  let total = !off in
  {
    p_st = st;
    p_src = src;
    p_items = items;
    p_refs = refs;
    p_offsets = offsets;
    p_stub_targets = stub_targets;
    p_stub_offs = stub_offs;
    p_total = total;
    p_icalls = List.rev !icall_records;
    p_spans = List.rev !spans;
    p_instrs = !consumed;
  }

let prepared_size p = p.p_total
let prepared_spans p = p.p_spans
let prepared_src p = p.p_src

(* Encode a prepared unit at a concrete cache address. *)
let layout p ~base =
  let st = p.p_st in
  let items = p.p_items in
  let offsets = p.p_offsets in
  let stub_offs = p.p_stub_offs in
  let buf = Buffer.create 256 in
  (* One buffer for the whole unit — [encode_into] appends in place,
     where a per-instruction [encode] cost a buffer and a string
     each. *)
  let encode ~at ins =
    match st.desc.which with
    | Desc.Cisc -> Hipstr_cisc.Isa.encode_into buf ~at ins
    | Desc.Risc -> Hipstr_risc.Isa.encode_into buf ~at ins
  in
  let stubs = ref [] in
  let icall_out = ref [] in
  let pending_icalls = ref p.p_icalls in
  Array.iteri
    (fun i ins ->
      let at = base + offsets.(i) in
      let ins' =
        let rf = p.p_refs.(i) in
        if rf = no_ref then ins
        else
          let stub_addr = base + stub_offs.(rf) in
          match ins with
          | Jcc (c, _) -> Jcc (c, stub_addr)
          | Callrat { src_ret; _ } -> Callrat { target = stub_addr; src_ret }
          | _ -> assert false
      in
      (match ins' with
      | Trap target when target land icall_flag <> 0 -> (
        match !pending_icalls with
        | info :: rest ->
          assert (info.is_src = target lxor icall_flag);
          icall_out := { info with is_off = offsets.(i) } :: !icall_out;
          pending_icalls := rest
        | [] -> assert false)
      | Trap target -> stubs := { es_off = offsets.(i); es_target_src = target } :: !stubs
      | _ -> ());
      encode ~at ins')
    items;
  Array.iteri
    (fun s target ->
      let at = base + stub_offs.(s) in
      stubs := { es_off = stub_offs.(s); es_target_src = target } :: !stubs;
      encode ~at (Trap target))
    p.p_stub_targets;
  let bytes = Buffer.contents buf in
  assert (String.length bytes = p.p_total);
  {
    u_src = p.p_src;
    u_bytes = bytes;
    u_size = p.p_total;
    u_stubs = List.rev !stubs;
    u_icalls = List.rev !icall_out;
    u_src_spans = p.p_spans;
    u_instrs = p.p_instrs;
    u_emitted = st.emitted;
  }

let translate cfg desc ~read ~fatbin ~map_of ~src ~base =
  layout (prepare cfg desc ~read ~fatbin ~map_of ~src) ~base
