open Hipstr_isa
module Compile = Hipstr_compiler.Compile
module Fatbin = Hipstr_compiler.Fatbin
module Machine = Hipstr_machine.Machine
module Exec = Hipstr_machine.Exec
module Sys' = Hipstr_machine.Sys
module Config = Hipstr_psr.Config
module Vm = Hipstr_psr.Vm
module Code_cache = Hipstr_psr.Code_cache
module Transform = Hipstr_migration.Transform
module Rng = Hipstr_util.Rng
module Obs = Hipstr_obs.Obs

type mode = Native | Psr_only | Hipstr

type outcome = Finished of int | Shell_spawned | Killed of string | Out_of_fuel

type t = {
  sys_mode : mode;
  cfg : Config.t;
  fb : Fatbin.t;
  m : Machine.t;
  vms : (Desc.which * Vm.t) list;
  rng : Rng.t;
  observ : Obs.t;
  c_sec_mig : Obs.Metrics.counter;
  c_forced_mig : Obs.Metrics.counter;
  mutable started : bool;
  mutable security_migrations : int;
  mutable forced_migrations : int;
  mutable migration_requested : bool;
  mutable last_migration : Transform.result option;
  sys_seed : int;
  sys_start_isa : Desc.which;
  sys_decode_cache : bool;
  sys_chain : bool;
  sys_packed : bool;
}

let isa_label = function Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let boot_system ?(obs = Obs.global) ?(cfg = Config.default) ?(seed = 1) ?(start_isa = Desc.Cisc)
    ?(pid = 0) ?(decode_cache = true) ?(chain = true) ?(packed = true) ?(boot = true) ~mode fb =
  let rat_capacity = match mode with Native -> None | Psr_only | Hipstr -> Some cfg.rat_capacity in
  let m = Machine.create ~obs ~rat_capacity ~decode_cache ~chain ~packed ~active:start_isa () in
  Machine.set_owner m pid;
  Fatbin.load fb (Machine.mem m);
  if boot then Machine.boot m ~entry:(Fatbin.entry fb start_isa);
  let vms =
    match mode with
    | Native -> []
    | Psr_only -> [ (start_isa, Vm.create cfg ~seed start_isa fb m) ]
    | Hipstr ->
      [
        (Desc.Cisc, Vm.create cfg ~seed Desc.Cisc fb m);
        (Desc.Risc, Vm.create cfg ~seed Desc.Risc fb m);
      ]
  in
  {
    sys_mode = mode;
    cfg;
    fb;
    m;
    vms;
    rng = Rng.create (seed lxor 0x600D);
    observ = obs;
    c_sec_mig = Obs.Metrics.counter (Obs.metrics obs) "system.migrations.security";
    c_forced_mig = Obs.Metrics.counter (Obs.metrics obs) "system.migrations.forced";
    started = false;
    security_migrations = 0;
    forced_migrations = 0;
    migration_requested = false;
    last_migration = None;
    sys_seed = seed;
    sys_start_isa = start_isa;
    sys_decode_cache = decode_cache;
    sys_chain = chain;
    sys_packed = packed;
  }

let of_fatbin ?obs ?cfg ?seed ?start_isa ?pid ?decode_cache ?chain ?packed ?boot ~mode fb =
  boot_system ?obs ?cfg ?seed ?start_isa ?pid ?decode_cache ?chain ?packed ?boot ~mode fb

let create ?obs ?cfg ?seed ?start_isa ?pid ?decode_cache ?chain ?packed ?boot ~mode ~src () =
  boot_system ?obs ?cfg ?seed ?start_isa ?pid ?decode_cache ?chain ?packed ?boot ~mode
    (Compile.to_fatbin src)

let fatbin t = t.fb
let machine t = t.m
let mode t = t.sys_mode
let config t = t.cfg
let seed t = t.sys_seed
let start_isa t = t.sys_start_isa
let decode_cache_enabled t = t.sys_decode_cache
let chain_enabled t = t.sys_chain
let packed_enabled t = t.sys_packed
let obs t = t.observ
let metrics t = Obs.Metrics.snapshot (Obs.metrics t.observ)

(* A process kill is an observable event: the defense destroying an
   exploit is exactly what the paper's security tables count. *)
let killed t msg =
  if Obs.on t.observ then begin
    Obs.emit t.observ
      (Obs.Trace.Fault { isa = isa_label (Machine.active t.m); reason = msg });
    Obs.audit_emit t.observ ~cycle:(Machine.cycles t.m)
      ~isa:(isa_label (Machine.active t.m))
      ~pid:(Machine.owner t.m)
      (Obs.Audit.Fault { reason = msg })
  end;
  Killed msg

let vm t which =
  match List.assoc_opt which t.vms with
  | Some v -> v
  | None -> invalid_arg "System.vm: no PSR VM in this mode/ISA"

let active_vm t = vm t (Machine.active t.m)
let other_vm t = List.assoc_opt (Desc.other (Machine.active t.m)) t.vms

let output t = Sys'.output (Machine.os t.m)
let shell t = (Machine.os t.m).Sys'.shell
let cycles t = Machine.cycles t.m
let instructions t = Machine.instructions t.m
let seconds t = Machine.seconds t.m
let security_migrations t = t.security_migrations
let forced_migrations t = t.forced_migrations
let last_migration t = t.last_migration

let suspicious_events t =
  List.fold_left (fun acc (_, v) -> acc + (Vm.stats v).Vm.suspicious) 0 t.vms

let cache_flushes t =
  List.fold_left (fun acc (_, v) -> acc + Code_cache.flushes (Vm.cache v)) 0 t.vms

let cache_evictions t =
  List.fold_left (fun acc (_, v) -> acc + (Vm.stats v).Vm.evictions) 0 t.vms

let memo_installs t =
  List.fold_left (fun acc (_, v) -> acc + (Vm.stats v).Vm.memo_installs) 0 t.vms

let retranslate_cycles t =
  List.fold_left (fun acc (_, v) -> acc +. (Vm.stats v).Vm.retranslate_cycles) 0. t.vms

let request_migration t =
  if t.sys_mode = Hipstr then begin
    t.migration_requested <- true;
    (* force the next return through the VM so we get a hook *)
    match (Machine.env t.m).Exec.rat with
    | Some rat -> Hipstr_machine.Rat.clear rat
    | None -> ()
  end

(* Mirror compulsory translations onto the idle core: a unit start
   that is a block entry or call-site return on this ISA has a
   well-defined counterpart on the other. *)
let mirror_translations t =
  match (t.sys_mode, other_vm t) with
  | Hipstr, Some ovm ->
    let from_isa = Machine.active t.m in
    let to_isa = Desc.other from_isa in
    List.iter
      (fun src ->
        let counterpart =
          match Fatbin.block_starting_at t.fb from_isa src with
          | Some (fs, l) -> Some (Fatbin.image fs to_isa).Fatbin.im_block_addr.(l)
          | None -> (
            match Fatbin.callsite_of_ret t.fb from_isa src with
            | Some (fs, site) -> Fatbin.callsite_ret fs to_isa site
            | None -> None)
        in
        match counterpart with
        | Some dst -> ignore (Vm.pretranslate ovm dst)
        | None -> ())
      (Vm.drain_new_units (active_vm t))
  | _ -> (
    match t.vms with
    | [ (_, v) ] -> ignore (Vm.drain_new_units v)
    | _ -> ())

let psr_mode t =
  Transform.Psr
    {
      map_from = (fun fs -> Vm.map_of (vm t (Machine.active t.m)) fs);
      map_to = (fun fs -> Vm.map_of (vm t (Desc.other (Machine.active t.m))) fs);
    }

(* Perform a migration for a suspicious (or forced) event. Returns the
   outcome if the process dies, None to continue. *)
let migrate_inner t ~forced kind target_src =
  let mode_ = psr_mode t in
  let from_isa = Machine.active t.m in
  let result =
    match kind with
    | Vm.Kreturn -> Transform.at_return t.m t.fb mode_ ~target_src
    | Vm.Kicall { call_src; nargs; _ } ->
      Transform.at_call t.m t.fb mode_ ~call_src ~target_src ~nargs
  in
  t.last_migration <- Some result;
  if Obs.on t.observ then begin
    Obs.Metrics.incr (if forced then t.c_forced_mig else t.c_sec_mig);
    Obs.emit t.observ
      (Obs.Trace.Migrate
         {
           from_isa = isa_label from_isa;
           to_isa = isa_label (Machine.active t.m);
           frames = result.Transform.r_frames;
           words = result.Transform.r_words;
           cycles = result.Transform.r_cycles;
           forced;
         })
  end;
  match result.Transform.r_resume_src with
  | None -> Some (killed t "migration: unmappable control-flow target (exploit destroyed)")
  | Some resume -> (
    let nvm = active_vm t in
    match kind with
    | Vm.Kreturn ->
      Vm.enter nvm resume;
      None
    | Vm.Kicall { src_ret; is_call; _ } ->
      if is_call then begin
        let from_isa = Desc.other (Machine.active t.m) in
        let src_ret' =
          match Fatbin.callsite_of_ret t.fb from_isa src_ret with
          | Some (fs, site) -> (
            match Fatbin.callsite_ret fs (Machine.active t.m) site with
            | Some r -> r
            | None -> src_ret)
          | None -> src_ret
        in
        Vm.complete_call nvm ~callee_src:resume ~src_ret:src_ret';
        None
      end
      else begin
        Vm.enter nvm resume;
        None
      end)

(* The [migration] span covers the full software cost of one ISA
   switch: stack transformation (a nested span), the destination-side
   re-entry translations, and call completion. The audit records the
   decision's outcome. *)
let migrate t ~forced kind target_src =
  let from_isa = isa_label (Machine.active t.m) in
  let sp =
    Obs.enter_span t.observ ~name:"migration"
      ~attrs:
        [
          ("from", from_isa);
          ("forced", string_of_bool forced);
          ("pid", string_of_int (Machine.owner t.m));
        ]
      ~cycle:(Machine.cycles t.m) ()
  in
  let r = migrate_inner t ~forced kind target_src in
  Obs.exit_span t.observ sp ~cycle:(Machine.cycles t.m);
  (if Obs.on t.observ then
     let outcome = match r with Some _ -> "killed" | None -> "resumed" in
     let frames, words, cost =
       match t.last_migration with
       | Some res -> (res.Transform.r_frames, res.Transform.r_words, res.Transform.r_cycles)
       | None -> (0, 0, 0.)
     in
     Obs.audit_emit t.observ ~cycle:(Machine.cycles t.m)
       ~isa:(isa_label (Machine.active t.m))
       ~pid:(Machine.owner t.m)
       (Obs.Audit.Migration
          {
            to_isa = isa_label (Machine.active t.m);
            forced;
            frames;
            words;
            cost_cycles = cost;
            outcome;
          }));
  r

let run_native t ~fuel =
  match Machine.run t.m ~fuel with
  | None -> Out_of_fuel
  | Some (Exec.Exit c) -> Finished c
  | Some Exec.Shell -> Shell_spawned
  | Some (Exec.Fault _ as trap) -> Killed (Exec.string_of_trap trap)
  | Some (Exec.Trap_stub _ | Exec.Rat_miss _) -> killed t "unexpected trap in native mode"



let run_protected t ~fuel =
  if not t.started then begin
    t.started <- true;
    Vm.enter (active_vm t) (Fatbin.entry t.fb (Machine.active t.m));
    mirror_translations t
  end;
  let remaining = ref fuel in
  let result = ref None in
  while !result = None && !remaining > 0 do
    let before = Machine.instructions t.m in
    let stop = Machine.run t.m ~fuel:!remaining in
    remaining := !remaining - (Machine.instructions t.m - before);
    match stop with
    | None -> result := Some Out_of_fuel
    | Some (Exec.Exit c) -> result := Some (Finished c)
    | Some Exec.Shell -> result := Some Shell_spawned
    | Some (Exec.Fault _ as trap) -> result := Some (Killed (Exec.string_of_trap trap))
    | Some ((Exec.Trap_stub _ | Exec.Rat_miss _) as trap) -> (
      let v = active_vm t in
      let finish_resolution = function
        | Vm.Continue -> mirror_translations t
        | Vm.Exit c -> result := Some (Finished c)
        | Vm.Fault f -> result := Some (killed t f)
      in
      (* A requested (performance/measurement) migration fires at the
         next return event, suspicious or not. *)
      match trap with
      | Exec.Rat_miss src
        when t.migration_requested && t.sys_mode = Hipstr
             && src <> Hipstr_machine.Layout.exit_sentinel
             && Fatbin.callsite_of_ret t.fb (Machine.active t.m) src <> None -> (
        t.migration_requested <- false;
        t.forced_migrations <- t.forced_migrations + 1;
        Obs.audit_emit t.observ ~cycle:(Machine.cycles t.m)
          ~isa:(isa_label (Machine.active t.m))
          ~pid:(Machine.owner t.m)
          (Obs.Audit.Decision { target_src = src; migrate = true; forced = true });
        match migrate t ~forced:true Vm.Kreturn src with
        | Some final -> result := Some final
        | None -> mirror_translations t)
      | _ -> (
      match Vm.on_trap v trap with
      | Vm.Benign r -> finish_resolution r

      | Vm.Suspicious { target_src; kind; resolve } ->
        let forced = t.migration_requested in
        let probabilistic =
          t.sys_mode = Hipstr && Rng.float t.rng < t.cfg.Config.migrate_prob
        in
        let will_migrate = t.sys_mode = Hipstr && (forced || probabilistic) in
        Obs.audit_emit t.observ ~cycle:(Machine.cycles t.m)
          ~isa:(isa_label (Machine.active t.m))
          ~pid:(Machine.owner t.m)
          (Obs.Audit.Decision { target_src; migrate = will_migrate; forced });
        if will_migrate then begin
          t.migration_requested <- false;
          if forced then t.forced_migrations <- t.forced_migrations + 1
          else t.security_migrations <- t.security_migrations + 1;
          match migrate t ~forced kind target_src with
          | Some final -> result := Some final
          | None -> mirror_translations t
        end
        else finish_resolution (resolve ())))
  done;
  match !result with Some r -> r | None -> Out_of_fuel

(* One [exec] span per run call, stamped on the machine's cycle
   clock: every cycle the system ever charges (execution, VM service,
   migration) lands inside some run call, so the exec-span total
   reconciles with [cycles t] exactly. *)
let run t ~fuel =
  let sp =
    Obs.enter_span t.observ ~name:"exec"
      ~attrs:
        [
          ("isa", isa_label (Machine.active t.m));
          ("pid", string_of_int (Machine.owner t.m));
        ]
      ~cycle:(Machine.cycles t.m) ()
  in
  let r =
    match t.sys_mode with
    | Native -> run_native t ~fuel
    | Psr_only | Hipstr -> run_protected t ~fuel
  in
  Obs.exit_span t.observ sp ~cycle:(Machine.cycles t.m);
  r

let active_isa t = Machine.active t.m

let migration_pending t = t.migration_requested

type slice = { sl_outcome : outcome; sl_instructions : int; sl_cycles : float }

(* One scheduler quantum: run and report the work actually done, so a
   CMP can attribute instructions/cycles to the core the slice ran
   on. Fuel stays cumulative across slices — slicing a run changes
   nothing about its semantics. *)
let run_slice t ~fuel =
  let i0 = instructions t and c0 = cycles t in
  let outcome = run t ~fuel in
  { sl_outcome = outcome; sl_instructions = instructions t - i0; sl_cycles = cycles t -. c0 }

(* --- snapshot ------------------------------------------------------ *)
(* The system-level slice: scheduler-visible flags and counters, the
   migration-decision rng, the machine, and each VM. Guest memory and
   the manifest framing around all of this belong to [Hipstr_snapshot];
   [last_migration] is a transient measurement of the most recent
   transform and deliberately resets to [None] on restore. *)

module Wire = Hipstr_util.Wire

let mode_tag = function Native -> 0 | Psr_only -> 1 | Hipstr -> 2

let isa_tag = function Desc.Cisc -> 0 | Desc.Risc -> 1

let save_state w t =
  Wire.tag w "SYSTEM";
  Wire.u8 w (mode_tag t.sys_mode);
  Wire.bool w t.started;
  Wire.int w t.security_migrations;
  Wire.int w t.forced_migrations;
  Wire.bool w t.migration_requested;
  Wire.i64 w (Rng.state t.rng);
  Machine.save w t.m;
  Wire.list w
    (fun w (which, v) ->
      Wire.u8 w (isa_tag which);
      Vm.save_state w v)
    t.vms

let restore_state t r =
  Wire.expect_tag r "SYSTEM";
  let mt = Wire.r_u8 r in
  if mt <> mode_tag t.sys_mode then
    Wire.corrupt "image was taken in mode %d, this system is mode %d" mt (mode_tag t.sys_mode);
  t.started <- Wire.r_bool r;
  t.security_migrations <- Wire.r_int r;
  t.forced_migrations <- Wire.r_int r;
  t.migration_requested <- Wire.r_bool r;
  Rng.set_state t.rng (Wire.r_i64 r);
  Machine.restore t.m r;
  let nvms = ref t.vms in
  Wire.r_list r (fun r ->
      let tag = Wire.r_u8 r in
      match !nvms with
      | (which, v) :: rest ->
        if tag <> isa_tag which then Wire.corrupt "VM image for the wrong ISA (tag %d)" tag;
        Vm.restore_state v r;
        nvms := rest;
        ()
      | [] -> Wire.corrupt "image carries more VMs than this system has")
  |> ignore;
  (match !nvms with
  | [] -> ()
  | _ -> Wire.corrupt "image carries fewer VMs than this system has");
  t.last_migration <- None

let save_memo w t =
  Wire.tag w "MEMO";
  Wire.list w
    (fun w (which, v) ->
      Wire.u8 w (isa_tag which);
      Vm.save_meta w v)
    t.vms

let load_memo t r =
  Wire.expect_tag r "MEMO";
  let nvms = ref t.vms in
  Wire.r_list r (fun r ->
      let tag = Wire.r_u8 r in
      match !nvms with
      | (which, v) :: rest ->
        if tag <> isa_tag which then Wire.corrupt "memo image for the wrong ISA (tag %d)" tag;
        Vm.load_meta v r;
        nvms := rest;
        ()
      | [] -> Wire.corrupt "memo image carries more VMs than this system has")
  |> ignore;
  match !nvms with
  | [] -> ()
  | _ -> Wire.corrupt "memo image carries fewer VMs than this system has"

let forget_memo t = List.iter (fun (_, v) -> Vm.forget_memo v) t.vms
