(** HIPStR — the paper's primary contribution, assembled.

    A {!t} is one simulated process: a fat binary loaded into a
    heterogeneous-ISA machine, optionally running under Program State
    Relocation with non-deterministic cross-ISA migration. Three
    protection modes are supported, matching the paper's evaluation
    configurations:

    - {!Native}: no defense — the victim baseline and the performance
      reference;
    - {!Psr_only}: single-ISA PSR (the "PSR" lines of Figures 7/8);
    - {!Hipstr}: PSR on both cores plus probabilistic migration on
      suspicious code-cache misses — the full defense.

    Example:
    {[
      let sys = System.create ~mode:System.Hipstr ~src:program () in
      match System.run sys ~fuel:10_000_000 with
      | System.Finished 0 -> Format.printf "ok, %.2f ms" (1000. *. System.seconds sys)
      | outcome -> ...
    ]} *)

type mode = Native | Psr_only | Hipstr

type outcome =
  | Finished of int  (** exit code *)
  | Shell_spawned  (** the attack goal: execve reached *)
  | Killed of string  (** fault — wild control flow, SFI violation, ... *)
  | Out_of_fuel

type t

val create :
  ?obs:Hipstr_obs.Obs.t ->
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?start_isa:Hipstr_isa.Desc.which ->
  ?pid:int ->
  ?decode_cache:bool ->
  ?chain:bool ->
  ?packed:bool ->
  ?boot:bool ->
  mode:mode ->
  src:string ->
  unit ->
  t
(** Compile [src] (MiniC), load, and boot. [seed] drives every
    randomized decision (default 1). [obs] (default
    {!Hipstr_obs.Obs.global}) is threaded through the machine, the
    PSR VMs and the migration engine; pass a fresh context to get
    isolated metrics, or {!Hipstr_obs.Obs.disabled} for the
    zero-overhead path. [pid] (default 0) tags every span and audit
    entry this system emits, so a CMP timeline can attribute
    per-process work. [decode_cache] (default [true]) controls the
    host-side predecoded-block cache — simulation results are
    bit-identical either way. [chain] (default [true]) controls
    block-to-block chaining and the indirect-branch inline caches on
    top of that cache, with the same bit-identity guarantee (and no
    effect at all when [decode_cache] is off). [packed] (default
    [true]) retires cached blocks from their packed flat int-array
    form; [false] is the [--no-packed] escape hatch taking the boxed
    instruction path, again bit-identical. [boot] (default [true])
    writes the initial stack/pc; snapshot restore passes [false] and
    overwrites the whole machine state instead.
    @raise Hipstr_compiler.Compile.Error on bad source. *)

val of_fatbin :
  ?obs:Hipstr_obs.Obs.t ->
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?start_isa:Hipstr_isa.Desc.which ->
  ?pid:int ->
  ?decode_cache:bool ->
  ?chain:bool ->
  ?packed:bool ->
  ?boot:bool ->
  mode:mode ->
  Hipstr_compiler.Fatbin.t ->
  t
(** Boot an already-linked binary — used by the attack harness to
    re-spawn a victim with fresh randomization without recompiling
    (the paper's crash/re-spawn model: PSR re-randomizes, a load-time
    scheme would not). *)

val fatbin : t -> Hipstr_compiler.Fatbin.t
val machine : t -> Hipstr_machine.Machine.t
val mode : t -> mode
val config : t -> Hipstr_psr.Config.t

val seed : t -> int
(** The seed this system was created with. *)

val start_isa : t -> Hipstr_isa.Desc.which
val decode_cache_enabled : t -> bool
val chain_enabled : t -> bool
val packed_enabled : t -> bool
(** The creation flags, recorded so a snapshot can reconstruct an
    identically configured system. *)

val vm : t -> Hipstr_isa.Desc.which -> Hipstr_psr.Vm.t
(** The PSR VM of a core. @raise Invalid_argument in [Native] mode. *)

val run : t -> fuel:int -> outcome
(** Execute up to [fuel] instructions (cumulative across calls). *)

type slice = {
  sl_outcome : outcome;
  sl_instructions : int;  (** instructions retired during this slice *)
  sl_cycles : float;  (** cycles accumulated during this slice *)
}

val run_slice : t -> fuel:int -> slice
(** One scheduler quantum: {!run} plus the delta of work done, so a
    CMP scheduler ({!Hipstr_cmp.Cmp}) can attribute it to the core
    the process occupied. Slicing a run never changes its outputs —
    fuel is cumulative. *)

val active_isa : t -> Hipstr_isa.Desc.which
(** The ISA/core this process is currently executing on. *)

val migration_pending : t -> bool
(** A {!request_migration} has been issued and has not fired yet. *)

val request_migration : t -> unit
(** Force a migration at the next return event (used to measure
    migration overhead at arbitrary checkpoints, Figure 12). Only
    meaningful in [Hipstr] mode. *)

val output : t -> int list
(** The print-syscall trace. *)

val shell : t -> (int * int * int) option

val cycles : t -> float
val instructions : t -> int
val seconds : t -> float

val security_migrations : t -> int
val forced_migrations : t -> int

val last_migration : t -> Hipstr_migration.Transform.result option

val suspicious_events : t -> int

val cache_flushes : t -> int
(** Wholesale code-cache flushes across this system's VMs. *)

val cache_evictions : t -> int
(** Blocks displaced individually (fifo/clock policies) across VMs. *)

val memo_installs : t -> int
(** Unit re-installs served from the translation memo across VMs. *)

val retranslate_cycles : t -> float
(** Cycles spent servicing capacity misses across VMs — the
    re-translation cost block-granular eviction + the memo cut. *)

val obs : t -> Hipstr_obs.Obs.t
(** The observability context every layer of this system reports
    into. *)

val metrics : t -> Hipstr_obs.Obs.Metrics.snapshot
(** Snapshot of all counters and histograms: [psr.<isa>.*] (VM
    translation/cache events), [machine.<isa>.*] (instructions,
    faults, syscalls), [code_cache.<isa>.*], [migration.*] and
    [system.migrations.*]. Note that when several systems share one
    context (the default, {!Hipstr_obs.Obs.global}), the counters
    aggregate across them. *)

val save_state : Hipstr_util.Wire.w -> t -> unit
(** Serialize the system-level slice: flags, migration counters, the
    decision rng, the machine ({!Hipstr_machine.Machine.save}) and
    every PSR VM. Guest memory, configuration and manifest framing
    live in [Hipstr_snapshot.Snapshot]; [last_migration] does not
    travel. *)

val restore_state : t -> Hipstr_util.Wire.r -> unit
(** Overwrite a freshly created, un-booted system (same mode, config
    and creation flags) from a {!save_state} image. Guest memory must
    be restored before this call — VM restore re-materializes the
    code caches against it.
    @raise Hipstr_util.Wire.Corrupt on mode/ISA/shape mismatch or a
    malformed image. *)

val save_memo : Hipstr_util.Wire.w -> t -> unit
(** Serialize every VM's warm-start slice (relocation maps +
    translation memo keys + history) — the artifact that lets a later
    run of the same binary/config re-install translations at memo
    cost instead of re-translating. *)

val load_memo : t -> Hipstr_util.Wire.r -> unit
(** Load a {!save_memo} image into a freshly created system of the
    same mode/config (before it runs).
    @raise Hipstr_util.Wire.Corrupt on shape mismatch. *)

val forget_memo : t -> unit
(** Drop every VM's translation memo (cold-start arm of the warm/cold
    comparison); translation history survives. *)
