(** Versioned, deterministic checkpoint/restore of full process
    images, and the cross-pool migration cost model on top of them.

    An image carries: a manifest (mode, seed, pid, creation flags,
    PSR config, fat-binary fingerprint), guest memory as a page
    delta against the pristine post-load image, the machine state
    (registers, flags, caches, predictors, RAT), the PSR VM state
    (relocation maps, memo keys, code-cache directory — translated
    bytes re-materialize on restore), the OS state and the metrics
    baseline. The parser is strict: truncated, trailing,
    version-skewed or wrong-binary images raise
    {!Hipstr_util.Wire.Corrupt}.

    Determinism contract: a run restored from a checkpoint is
    bit-identical — outputs, instruction counts, cycle floats,
    metrics counters and histograms — to the checkpointing run
    continuing uninterrupted ({!checkpoint} quiesces host decode
    caches so both sides proceed decode-cold). Span rollups and
    audit/trace history are not checkpointed. *)

type manifest = {
  mf_version : int;
  mf_workload : string;  (** advisory name recorded at checkpoint *)
  mf_mode : Hipstr.System.mode;
  mf_seed : int;
  mf_pid : int;
  mf_start_isa : Hipstr_isa.Desc.which;
  mf_decode_cache : bool;
  mf_chain : bool;
  mf_packed : bool;
  mf_cfg : Hipstr_psr.Config.t;
  mf_fingerprint : int;
  mf_instructions : int;  (** at checkpoint time *)
  mf_cycles : float;  (** at checkpoint time *)
}

val fingerprint : Hipstr_compiler.Fatbin.t -> int
(** FNV-1a over both ISAs' entry points and loaded code bytes — the
    identity restore checks an image against. *)

val checkpoint : ?workload:string -> Hipstr.System.t -> string
(** Serialize the full process image. Quiesces the machine's host
    decode caches first (model-invisible) so the live system's
    subsequent trajectory matches a restored one. *)

val restore :
  ?obs:Hipstr_obs.Obs.t ->
  ?merge_obs:bool ->
  fatbin:Hipstr_compiler.Fatbin.t ->
  string ->
  Hipstr.System.t * manifest
(** Rebuild a system from an image: create it un-booted against
    [fatbin], replay the memory delta, restore machine/VM/OS state
    (re-materializing translated code), and — unless [merge_obs] is
    [false] — fold the image's metrics baseline into the new system's
    obs registry so continued metrics match the uninterrupted run.
    @raise Hipstr_util.Wire.Corrupt on any malformed, truncated,
    version-skewed or wrong-binary image. *)

val manifest_of : string -> manifest
(** Parse just the header of an image (works on both system and
    process images' payload; see {!restore_process} for the latter).
    @raise Hipstr_util.Wire.Corrupt as {!restore}. *)

val checkpoint_process : ?workload:string -> Hipstr_cmp.Process.t -> string
(** A process image: the full system image plus the scheduler-visible
    runtime slice (fuel accounting, flags). *)

val restore_process :
  ?obs:Hipstr_obs.Obs.t ->
  ?merge_obs:bool ->
  fatbin:Hipstr_compiler.Fatbin.t ->
  string ->
  Hipstr_cmp.Process.t * manifest
(** Rebuild a {!Hipstr_cmp.Process.t} from {!checkpoint_process}
    output; core-affinity warmth is dropped (first slice on the new
    pool is a cold switch).
    @raise Hipstr_util.Wire.Corrupt as {!restore}. *)

val save_memo : Hipstr.System.t -> string
(** Warm-start artifact: every VM's relocation maps, translation-memo
    keys and translation history, pinned to the binary fingerprint,
    mode and config. *)

val load_memo : Hipstr.System.t -> string -> unit
(** Load a {!save_memo} artifact into a freshly created system before
    it runs: memoized units then re-install at memo cost instead of
    re-translating.
    @raise Hipstr_util.Wire.Corrupt on fingerprint/mode/config
    mismatch or a malformed artifact. *)

val checkpoint_cycles : bytes:int -> float
(** Simulated cost of serializing an image of this size (fixed
    quiesce/drain overhead + per-byte scan). *)

val transfer_cycles : bytes:int -> float
(** Simulated interconnect cost of shipping an image of this size. *)

val page_bytes : int
(** Delta granularity (4 KiB). *)
