(* Versioned, deterministic serialization of a full process image.

   An image is one Wire buffer:

     magic "HIPSNAP" | version | manifest | memory delta
     | system state | obs metrics baseline | end

   The manifest pins everything needed to rebuild an identically
   configured System (mode, seed, pid, creation flags, the full PSR
   config) plus a fingerprint of the fat binary, so a restore against
   the wrong program or a version-skewed image fails loudly instead of
   resuming garbage. The parser is strict end to end: every length is
   checked, trailing bytes are an error, and truncation surfaces as
   [Hipstr_util.Wire.Corrupt].

   Guest memory travels as a page-granular delta against the pristine
   post-load image (fresh memory + [Fatbin.load], before [boot] — the
   boot writes are program state and land in the delta). The code-cache
   regions are excluded wholesale: translated code is never shipped,
   it re-materializes deterministically from the relocation maps
   ([Vm.restore_state]), which is both smaller and the honest model —
   migrated translations are stale on the other end anyway.

   Determinism contract: [checkpoint] first quiesces the machine's
   host-side decode caches (model-invisible), so the checkpointed run
   and any run restored from the image continue decode-cold in
   lockstep — outputs, instruction counts, cycle floats and the
   metrics layer (counters + histograms) all come out bit-identical to
   an uninterrupted run. Span rollups and audit history are not part
   of an image. *)

module Desc = Hipstr_isa.Desc
module Fatbin = Hipstr_compiler.Fatbin
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module Layout = Hipstr_machine.Layout
module Config = Hipstr_psr.Config
module Code_cache = Hipstr_psr.Code_cache
module Obs = Hipstr_obs.Obs
module System = Hipstr.System
module Process = Hipstr_cmp.Process
module Wire = Hipstr_util.Wire

let magic = "HIPSNAP"
let memo_magic = "HIPMEMO"
let version = 2

let page_bytes = 4096

(* Pages below the cache regions are delta candidates; everything at
   or above [Layout.cisc_cache_base] is re-materialized code. *)
let delta_limit = Layout.cisc_cache_base

let mode_tag = function System.Native -> 0 | System.Psr_only -> 1 | System.Hipstr -> 2

let mode_of_tag = function
  | 0 -> System.Native
  | 1 -> System.Psr_only
  | 2 -> System.Hipstr
  | n -> Wire.corrupt "unknown mode tag %d" n

let isa_tag = function Desc.Cisc -> 0 | Desc.Risc -> 1

let isa_of_tag = function
  | 0 -> Desc.Cisc
  | 1 -> Desc.Risc
  | n -> Wire.corrupt "unknown ISA tag %d" n

(* --- fat-binary fingerprint (FNV-1a 64) --------------------------- *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let fnv_int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h ((v lsr (8 * i)) land 0xFF)
  done;
  !h

(* Hash both ISAs' entry points, code ranges and code bytes as loaded
   into a pristine memory — the identity of the program an image
   belongs to. Truncated to OCaml's 63-bit int for Wire transport. *)
let fingerprint fb =
  let m = Mem.create Layout.mem_size in
  Fatbin.load fb m;
  let h = ref fnv_offset in
  List.iter
    (fun which ->
      h := fnv_int !h (Fatbin.entry fb which);
      List.iter
        (fun (start, size) ->
          h := fnv_int !h start;
          h := fnv_int !h size;
          for a = start to start + size - 1 do
            h := fnv_byte !h (Mem.read8 m a)
          done)
        (Fatbin.code_bytes fb which))
    [ Desc.Cisc; Desc.Risc ];
  Int64.to_int (Int64.shift_right_logical !h 1)

(* --- config ------------------------------------------------------- *)

let policy_tag = function Code_cache.Flush -> 0 | Code_cache.Fifo -> 1 | Code_cache.Clock -> 2

let policy_of_tag = function
  | 0 -> Code_cache.Flush
  | 1 -> Code_cache.Fifo
  | 2 -> Code_cache.Clock
  | n -> Wire.corrupt "unknown cache-policy tag %d" n

let save_config w (c : Config.t) =
  Wire.tag w "CFG";
  Wire.int w c.opt_level;
  Wire.int w c.pad_bytes;
  Wire.int w c.rat_capacity;
  Wire.int w c.cache_bytes;
  Wire.float w c.migrate_prob;
  Wire.int w c.seed;
  Wire.int w c.superblock_budget;
  Wire.u8 w (policy_tag c.cc_policy)

let load_config r : Config.t =
  Wire.expect_tag r "CFG";
  let opt_level = Wire.r_int r in
  let pad_bytes = Wire.r_int r in
  let rat_capacity = Wire.r_int r in
  let cache_bytes = Wire.r_int r in
  let migrate_prob = Wire.r_float r in
  let seed = Wire.r_int r in
  let superblock_budget = Wire.r_int r in
  let cc_policy = policy_of_tag (Wire.r_u8 r) in
  {
    opt_level;
    pad_bytes;
    rat_capacity;
    cache_bytes;
    migrate_prob;
    seed;
    superblock_budget;
    cc_policy;
  }

(* --- manifest ------------------------------------------------------ *)

type manifest = {
  mf_version : int;
  mf_workload : string;
  mf_mode : System.mode;
  mf_seed : int;
  mf_pid : int;
  mf_start_isa : Desc.which;
  mf_decode_cache : bool;
  mf_chain : bool;
  mf_packed : bool;
  mf_cfg : Config.t;
  mf_fingerprint : int;
  mf_instructions : int;
  mf_cycles : float;
}

let read_header r =
  let m = Wire.r_str r in
  if m <> magic then Wire.corrupt "bad magic %S (not a HIPStR snapshot)" m;
  let v = Wire.r_int r in
  if v <> version then Wire.corrupt "snapshot version %d, this build reads version %d" v version;
  Wire.expect_tag r "MANIFEST";
  let mf_workload = Wire.r_str r in
  let mf_mode = mode_of_tag (Wire.r_u8 r) in
  let mf_seed = Wire.r_int r in
  let mf_pid = Wire.r_int r in
  let mf_start_isa = isa_of_tag (Wire.r_u8 r) in
  let mf_decode_cache = Wire.r_bool r in
  let mf_chain = Wire.r_bool r in
  let mf_packed = Wire.r_bool r in
  let mf_cfg = load_config r in
  let mf_fingerprint = Wire.r_int r in
  let mf_instructions = Wire.r_int r in
  let mf_cycles = Wire.r_float r in
  {
    mf_version = v;
    mf_workload;
    mf_mode;
    mf_seed;
    mf_pid;
    mf_start_isa;
    mf_decode_cache;
    mf_chain;
    mf_packed;
    mf_cfg;
    mf_fingerprint;
    mf_instructions;
    mf_cycles;
  }

let manifest_of image = read_header (Wire.reader image)

(* --- memory delta -------------------------------------------------- *)

let save_delta w ~baseline mem =
  Wire.tag w "MEMDELTA";
  let npages = delta_limit / page_bytes in
  let dirty = ref [] in
  for page = npages - 1 downto 0 do
    let a = page * page_bytes in
    let live = Mem.read_string mem a page_bytes in
    if live <> Mem.read_string baseline a page_bytes then dirty := (page, live) :: !dirty
  done;
  Wire.list w
    (fun w (page, bytes) ->
      Wire.int w page;
      Wire.str w bytes)
    !dirty

let load_delta r mem =
  Wire.expect_tag r "MEMDELTA";
  Wire.r_list r (fun r ->
      let page = Wire.r_int r in
      let bytes = Wire.r_str r in
      if page < 0 || (page + 1) * page_bytes > delta_limit then
        Wire.corrupt "delta page %d outside the checkpointable region" page;
      if String.length bytes <> page_bytes then
        Wire.corrupt "delta page %d carries %d bytes, expected %d" page (String.length bytes)
          page_bytes;
      Mem.write_string mem (page * page_bytes) bytes)
  |> ignore

(* --- obs metrics baseline ------------------------------------------ *)

let save_summary w (h : Obs.Metrics.histogram_summary) =
  Wire.int w h.hs_count;
  Wire.float w h.hs_sum;
  Wire.float w h.hs_min;
  Wire.float w h.hs_max;
  Wire.float w h.hs_mean;
  Wire.int_array w h.hs_buckets

let load_summary r : Obs.Metrics.histogram_summary =
  let hs_count = Wire.r_int r in
  let hs_sum = Wire.r_float r in
  let hs_min = Wire.r_float r in
  let hs_max = Wire.r_float r in
  let hs_mean = Wire.r_float r in
  let hs_buckets = Wire.r_int_array r in
  { hs_count; hs_sum; hs_min; hs_max; hs_mean; hs_buckets }

let save_metrics w (s : Obs.Metrics.snapshot) =
  Wire.tag w "METRICS";
  Wire.list w
    (fun w (name, v) ->
      Wire.str w name;
      Wire.int w v)
    s.snap_counters;
  Wire.list w
    (fun w (name, h) ->
      Wire.str w name;
      save_summary w h)
    s.snap_histograms

let load_metrics r : Obs.Metrics.snapshot =
  Wire.expect_tag r "METRICS";
  let snap_counters =
    Wire.r_list r (fun r ->
        let name = Wire.r_str r in
        let v = Wire.r_int r in
        (name, v))
  in
  let snap_histograms =
    Wire.r_list r (fun r ->
        let name = Wire.r_str r in
        let h = load_summary r in
        (name, h))
  in
  { snap_counters; snap_histograms }

(* --- checkpoint / restore ------------------------------------------ *)

let write_image w ?(workload = "custom") sys =
  let m = System.machine sys in
  (* Model-invisible but trajectory-critical: dropping the host decode
     caches here means the checkpointed run *continues* exactly like a
     restored run will start — decode-cold — so their host-counter and
     metric trajectories stay identical. *)
  Machine.quiesce m;
  let fb = System.fatbin sys in
  let baseline = Mem.create Layout.mem_size in
  Fatbin.load fb baseline;
  Wire.str w magic;
  Wire.int w version;
  Wire.tag w "MANIFEST";
  Wire.str w workload;
  Wire.u8 w (mode_tag (System.mode sys));
  Wire.int w (System.seed sys);
  Wire.int w (Machine.owner m);
  Wire.u8 w (isa_tag (System.start_isa sys));
  Wire.bool w (System.decode_cache_enabled sys);
  Wire.bool w (System.chain_enabled sys);
  Wire.bool w (System.packed_enabled sys);
  save_config w (System.config sys);
  Wire.int w (fingerprint fb);
  Wire.int w (System.instructions sys);
  Wire.float w (System.cycles sys);
  save_delta w ~baseline (Machine.mem m);
  System.save_state w sys;
  save_metrics w (Obs.Metrics.snapshot (Obs.metrics (System.obs sys)))

let checkpoint ?workload sys =
  let w = Wire.writer () in
  write_image w ?workload sys;
  Wire.contents w

let read_image r ?obs ?(merge_obs = true) ~fatbin () =
  let mf = read_header r in
  let fp = fingerprint fatbin in
  if fp <> mf.mf_fingerprint then
    Wire.corrupt "binary fingerprint 0x%x does not match the image's 0x%x (wrong program?)" fp
      mf.mf_fingerprint;
  let sys =
    System.of_fatbin ?obs ~cfg:mf.mf_cfg ~seed:mf.mf_seed ~start_isa:mf.mf_start_isa
      ~pid:mf.mf_pid ~decode_cache:mf.mf_decode_cache ~chain:mf.mf_chain ~packed:mf.mf_packed
      ~boot:false ~mode:mf.mf_mode fatbin
  in
  load_delta r (Machine.mem (System.machine sys));
  System.restore_state sys r;
  let snap = load_metrics r in
  if merge_obs then Obs.Metrics.merge ~into:(Obs.metrics (System.obs sys)) snap;
  (sys, mf)

let restore ?obs ?merge_obs ~fatbin image =
  let r = Wire.reader image in
  let sys, mf = read_image r ?obs ?merge_obs ~fatbin () in
  Wire.expect_end r;
  (sys, mf)

(* --- process images (fleet live migration) ------------------------- *)

let checkpoint_process ?workload p =
  let w = Wire.writer () in
  Wire.str w "HIPSPROC";
  write_image w ?workload (Process.sys p);
  Process.save w p;
  Wire.contents w

let restore_process ?obs ?merge_obs ~fatbin image =
  let r = Wire.reader image in
  let m = Wire.r_str r in
  if m <> "HIPSPROC" then Wire.corrupt "bad magic %S (not a process snapshot)" m;
  let sys, mf = read_image r ?obs ?merge_obs ~fatbin () in
  let p = Process.reconstitute ~sys r in
  Wire.expect_end r;
  (p, mf)

(* --- warm-start memo artifacts ------------------------------------- *)

let save_memo sys =
  let w = Wire.writer () in
  Wire.str w memo_magic;
  Wire.int w version;
  Wire.int w (fingerprint (System.fatbin sys));
  Wire.u8 w (mode_tag (System.mode sys));
  save_config w (System.config sys);
  System.save_memo w sys;
  Wire.contents w

let load_memo sys image =
  let r = Wire.reader image in
  let m = Wire.r_str r in
  if m <> memo_magic then Wire.corrupt "bad magic %S (not a memo artifact)" m;
  let v = Wire.r_int r in
  if v <> version then Wire.corrupt "memo version %d, this build reads version %d" v version;
  let fp = Wire.r_int r in
  let own = fingerprint (System.fatbin sys) in
  if fp <> own then
    Wire.corrupt "binary fingerprint 0x%x does not match the memo's 0x%x" own fp;
  let mt = Wire.r_u8 r in
  if mt <> mode_tag (System.mode sys) then
    Wire.corrupt "memo was taken in mode %d, this system is mode %d" mt
      (mode_tag (System.mode sys));
  let cfg = load_config r in
  if cfg <> System.config sys then Wire.corrupt "memo config differs from this system's config";
  System.load_memo sys r;
  Wire.expect_end r

(* --- migration cost model ------------------------------------------ *)
(* Simulated cycle costs of moving an image between pools, charged by
   the fleet harness and decomposed by the migration microbenchmark.
   Serialization is dominated by the page scan (per-byte) on top of a
   fixed quiesce/drain overhead; the interconnect transfer is a
   per-byte wire cost on the image actually shipped. *)

let checkpoint_fixed_cycles = 100_000.
let checkpoint_per_byte = 0.25
let transfer_per_byte = 2.

let checkpoint_cycles ~bytes = checkpoint_fixed_cycles +. (checkpoint_per_byte *. float_of_int bytes)
let transfer_cycles ~bytes = transfer_per_byte *. float_of_int bytes
