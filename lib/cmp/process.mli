(** One schedulable process on the heterogeneous CMP.

    A process owns its full program state — address space, fat
    binary, per-process PSR VMs and relocation seeds, OS state — via
    a private {!Hipstr.System.t}, plus the runtime bookkeeping the
    scheduler needs: state, accumulated work, the suspicious-event
    watermark behind the security policy, and the core it last ran on
    (so warm microarchitectural state can be reused when it lands on
    the same core again). *)

type state = Runnable | Done of Hipstr.System.outcome

type t

val create :
  ?obs:Hipstr_obs.Obs.t ->
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?start_isa:Hipstr_isa.Desc.which ->
  ?decode_cache:bool ->
  ?chain:bool ->
  ?packed:bool ->
  mode:Hipstr.System.mode ->
  pid:int ->
  name:string ->
  fuel:int ->
  Hipstr_compiler.Fatbin.t ->
  t
(** Boot a process from a linked fat binary. [fuel] is its total
    instruction budget — exhausting it makes the process
    [Done Out_of_fuel], which is what guarantees {!Cmp.run}
    terminates. [seed] plays exactly the role it does for a
    single-process [System] run: same binary + same seed ⇒ same
    output and syscall trace, however the scheduler slices it. *)

val of_source :
  ?obs:Hipstr_obs.Obs.t ->
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?start_isa:Hipstr_isa.Desc.which ->
  ?decode_cache:bool ->
  ?chain:bool ->
  ?packed:bool ->
  mode:Hipstr.System.mode ->
  pid:int ->
  name:string ->
  fuel:int ->
  string ->
  t
(** Compile MiniC source and boot.
    @raise Hipstr_compiler.Compile.Error on bad source. *)

val pid : t -> int
val name : t -> string
val sys : t -> Hipstr.System.t
val state : t -> state
val runnable : t -> bool
val outcome : t -> Hipstr.System.outcome option

val active_isa : t -> Hipstr_isa.Desc.which
(** The ISA the process is currently executing on — the scheduler's
    placement constraint. *)

val can_migrate : t -> bool
(** True iff the process runs in [Hipstr] mode, i.e. the scheduler
    may place it on a different-ISA core (the migration fires at the
    next equivalence point, via [Migration.Transform]). *)

val flagged : t -> bool
(** The last slice triggered at least one suspicious code-cache miss
    — the security policy's signal. *)

val slices : t -> int
val instructions : t -> int
val cycles : t -> float
val ipc : t -> float
val fuel_left : t -> int
val sched_migrations : t -> int

val last_core : t -> int option
(** The core id of the previous slice, if any — [None] until first
    scheduled. *)

val set_last_core : t -> int -> unit

val request_migration : t -> unit
(** Ask for a cross-ISA move at the next equivalence point (idempotent
    while one is pending; counted in {!sched_migrations}).
    @raise Invalid_argument unless {!can_migrate}. *)

val run_slice : t -> fuel:int -> Hipstr.System.slice
(** Run one quantum (clamped to the remaining budget) and update the
    bookkeeping. @raise Invalid_argument if the process is done. *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the scheduler-visible runtime slice (pid, name, fuel
    accounting, state, flags). The {!Hipstr.System} underneath is NOT
    included — snapshot framing serializes it separately. *)

val reconstitute : sys:Hipstr.System.t -> Hipstr_util.Wire.r -> t
(** Rebuild a process from a {!save} image around an already restored
    system. Core-affinity warmth is deliberately dropped: the first
    slice after a cross-pool move is a cold context switch.
    @raise Hipstr_util.Wire.Corrupt on malformed images. *)
