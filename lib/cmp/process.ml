(* One schedulable process: its own address space, fat binary, PSR
   VMs and relocation seeds — a Hipstr.System — plus the runtime
   state the CMP scheduler reads and writes. *)

module System = Hipstr.System
module Desc = Hipstr_isa.Desc

type state = Runnable | Done of System.outcome

type t = {
  pid : int;
  name : string;
  sys : System.t;
  fuel_limit : int;
  mutable state : state;
  mutable slices : int;
  mutable instructions : int;
  mutable cycles : float;
  mutable seen_suspicious : int;
  mutable flagged : bool;
  mutable last_core : int option;
  mutable sched_migrations : int;
}

let create ?obs ?cfg ?(seed = 1) ?(start_isa = Desc.Cisc) ?decode_cache ?chain ?packed ~mode ~pid
    ~name ~fuel fb =
  if fuel < 1 then invalid_arg "Process.create: fuel must be positive";
  {
    pid;
    name;
    sys = System.of_fatbin ?obs ?cfg ~seed ~start_isa ~pid ?decode_cache ?chain ?packed ~mode fb;
    fuel_limit = fuel;
    state = Runnable;
    slices = 0;
    instructions = 0;
    cycles = 0.;
    seen_suspicious = 0;
    flagged = false;
    last_core = None;
    sched_migrations = 0;
  }

let of_source ?obs ?cfg ?seed ?start_isa ?decode_cache ?chain ?packed ~mode ~pid ~name ~fuel src =
  create ?obs ?cfg ?seed ?start_isa ?decode_cache ?chain ?packed ~mode ~pid ~name ~fuel
    (Hipstr_compiler.Compile.to_fatbin src)

let pid t = t.pid
let name t = t.name
let sys t = t.sys
let state t = t.state
let runnable t = t.state = Runnable
let active_isa t = System.active_isa t.sys
let can_migrate t = System.mode t.sys = System.Hipstr
let flagged t = t.flagged
let slices t = t.slices
let instructions t = t.instructions
let cycles t = t.cycles
let sched_migrations t = t.sched_migrations
let fuel_left t = t.fuel_limit - t.instructions

let ipc t = if t.cycles > 0. then float_of_int t.instructions /. t.cycles else 0.

let last_core t = t.last_core
let set_last_core t c = t.last_core <- Some c

(* A scheduler-initiated cross-ISA placement: the migration fires at
   the process's next equivalence point (return event), exactly like
   a Figure-12 forced checkpoint. *)
let request_migration t =
  if not (can_migrate t) then invalid_arg "Process.request_migration: not in Hipstr mode";
  if not (System.migration_pending t.sys) then begin
    System.request_migration t.sys;
    t.sched_migrations <- t.sched_migrations + 1
  end

let outcome t = match t.state with Done o -> Some o | Runnable -> None

(* Run one quantum. The fuel budget is the termination guarantee: a
   process that exhausts it is Done Out_of_fuel and never scheduled
   again. *)
let run_slice t ~fuel =
  if not (runnable t) then invalid_arg "Process.run_slice: process is done";
  let fuel = min fuel (fuel_left t) in
  let sl = System.run_slice t.sys ~fuel in
  t.slices <- t.slices + 1;
  t.instructions <- t.instructions + sl.System.sl_instructions;
  t.cycles <- t.cycles +. sl.System.sl_cycles;
  let susp = System.suspicious_events t.sys in
  t.flagged <- susp > t.seen_suspicious;
  t.seen_suspicious <- susp;
  (match sl.System.sl_outcome with
  | System.Out_of_fuel -> if fuel_left t <= 0 then t.state <- Done System.Out_of_fuel
  | o -> t.state <- Done o);
  sl

(* --- snapshot ------------------------------------------------------ *)
(* The scheduler-visible runtime slice only; the System underneath is
   serialized separately (Hipstr_snapshot owns that framing) and is
   paired back up by [reconstitute]. *)

module Wire = Hipstr_util.Wire

let save_outcome w (o : System.outcome) =
  match o with
  | System.Finished c ->
    Wire.u8 w 0;
    Wire.int w c
  | System.Shell_spawned -> Wire.u8 w 1
  | System.Killed msg ->
    Wire.u8 w 2;
    Wire.str w msg
  | System.Out_of_fuel -> Wire.u8 w 3

let load_outcome r =
  match Wire.r_u8 r with
  | 0 -> System.Finished (Wire.r_int r)
  | 1 -> System.Shell_spawned
  | 2 -> System.Killed (Wire.r_str r)
  | 3 -> System.Out_of_fuel
  | n -> Wire.corrupt "unknown outcome tag %d" n

let save w t =
  Wire.tag w "PROC";
  Wire.int w t.pid;
  Wire.str w t.name;
  Wire.int w t.fuel_limit;
  (match t.state with
  | Runnable -> Wire.u8 w 0
  | Done o ->
    Wire.u8 w 1;
    save_outcome w o);
  Wire.int w t.slices;
  Wire.int w t.instructions;
  Wire.float w t.cycles;
  Wire.int w t.seen_suspicious;
  Wire.bool w t.flagged;
  Wire.option w Wire.int t.last_core;
  Wire.int w t.sched_migrations

let reconstitute ~sys r =
  Wire.expect_tag r "PROC";
  let pid = Wire.r_int r in
  let name = Wire.r_str r in
  let fuel_limit = Wire.r_int r in
  let state =
    match Wire.r_u8 r with
    | 0 -> Runnable
    | 1 -> Done (load_outcome r)
    | n -> Wire.corrupt "unknown process-state tag %d" n
  in
  let slices = Wire.r_int r in
  let instructions = Wire.r_int r in
  let cycles = Wire.r_float r in
  let seen_suspicious = Wire.r_int r in
  let flagged = Wire.r_bool r in
  let (_ : int option) = Wire.r_option r Wire.r_int in
  let sched_migrations = Wire.r_int r in
  {
    pid;
    name;
    sys;
    fuel_limit;
    state;
    slices;
    instructions;
    cycles;
    seen_suspicious;
    flagged;
    (* core warmth never survives a pool change: the process lands on
       fresh silicon, so its first slice there is a cold switch *)
    last_core = None;
    sched_migrations;
  }
