(** The heterogeneous-CMP multi-process scheduler.

    The paper's deployment target (Table 1) is a chip multiprocessor
    with an ARM-like and an x86-like core sharing memory; HIPStR
    frames cross-ISA migration as something a *scheduler* does to a
    pool of processes. A {!t} owns N simulated cores of mixed ISA
    (default: the paper's pair) and time-slices a set of
    {!Process.t}s across them under a pluggable {!policy}:

    - {!Round_robin} — fair quantum rotation;
    - {!Load_balance} — least-loaded (by accumulated cycles) core
      picks work first, so observed-IPC imbalance drains to whichever
      core keeps up; crossing ISAs to get there is a load-triggered
      migration;
    - {!Security_first} — a process that triggered a suspicious
      code-cache miss in its last slice is preferentially rescheduled
      onto a different-ISA core, destroying any in-flight exploit
      state via [Migration.Transform] (the paper's defense, operated
      as scheduling policy).

    {b Placement.} A process runs on a core of its current ISA
    unconditionally; a [Hipstr]-mode process may be placed cross-ISA,
    in which case it runs to its next equivalence point and completes
    the migration there. Native/PSR-only processes are pinned to
    their ISA.

    {b Determinism contract.} Scheduling decisions read only state
    that is a deterministic function of the configuration and seeds —
    no wall clock, no domain identity, no hash-order iteration. Same
    CMP config + seeds ⇒ identical schedule trace, per-process
    outputs, syscall traces and metrics; and each process produces
    exactly the output its single-process [System] run with the same
    seed produces, because slicing and equivalence-point migration
    are semantics-preserving.

    {b Context switches.} A process rescheduled onto a core someone
    else used (or a different core than its last slice) restarts with
    cold caches and predictors ([Machine.context_switch_flush]), so
    scheduling pressure is visible in simulated cycles; coming back
    to its own core with nobody in between reuses the warm core
    handle. *)

type policy = Round_robin | Load_balance | Security_first

val policy_name : policy -> string
val policy_of_string : string -> policy option

type t

val default_cores : Hipstr_isa.Desc.which list
(** The paper's CMP: one x86-like big core, one ARM-like little
    core. *)

val create :
  ?obs:Hipstr_obs.Obs.t ->
  ?policy:policy ->
  ?quantum:int ->
  ?cores:Hipstr_isa.Desc.which list ->
  Process.t list ->
  t
(** [quantum] (default 20k instructions) is the slice length.
    [cores] (default {!default_cores}) may be any non-empty ISA mix.
    The process list may be empty — a serving CMP starts idle and
    admits work with {!inject}.
    @raise Invalid_argument if a non-migratable process has no
    matching core, on duplicate pids, or on an empty core list. *)

val inject : t -> Process.t -> unit
(** Admit a process at the back of the scheduling queue — the fleet
    harness's arrival path. @raise Invalid_argument on a duplicate
    pid or if a non-migratable process has no matching core. *)

val extract : t -> int -> Process.t
(** Withdraw the process with this pid from the pool, queue and
    core-affinity records (fleet live migration withdraws here and
    re-injects on the target CMP).
    @raise Invalid_argument on an unknown pid. *)

val reap : t -> Process.t list
(** Remove and return every retired process (so the harness can
    record its outcome and let its address space be collected).
    Reaped processes no longer appear in {!processes}, {!metrics} or
    the scheduling queue; the schedule trace keeps their slices. *)

val core_cycles : t -> float array
(** Accumulated cycles per core, by core id — the shard clock the
    fleet harness advances global time with. *)

val live_count : t -> int
(** Processes currently owned (runnable or retired-but-unreaped). *)

val runnable_count : t -> int

val step : ?jobs:int -> ?timeline:Hipstr_obs.Obs.Timeline.t -> t -> int
(** One scheduling round: assign runnable processes to cores per the
    policy, run each for a quantum, account. Returns the number of
    slices executed.

    [jobs] (default 1) runs the round's slices on that many domains —
    the simulated-concurrency analogue of the physically concurrent
    cores. All scheduling decisions (assignments, cold flushes,
    migration requests) are made sequentially before any slice runs,
    and accounting folds back in core order afterwards, so every
    simulation result — schedule trace, outputs, metrics, exported
    trace/profile/audit files — is bit-identical for any [jobs].

    [timeline] delta-samples the CMP's obs context at the end of the
    accounting stage, stamped at the maximum core clock — after the
    round barrier, from the sequential section, so per-window
    translation/cache/migration series stay bit-identical for any
    [jobs] too. *)

val run : ?jobs:int -> ?timeline:Hipstr_obs.Obs.Timeline.t -> t -> unit
(** {!step} until every process is done. Terminates: each process
    carries a finite fuel budget and exhausting it retires the
    process as [Out_of_fuel]. *)

val processes : t -> Process.t list
val proc : t -> int -> Process.t
(** By pid. @raise Invalid_argument if unknown. *)

val policy : t -> policy
val quantum : t -> int
val rounds : t -> int

(** {2 Schedule trace} *)

type sched_event = {
  se_round : int;
  se_core : int;
  se_pid : int;
  se_isa : Hipstr_isa.Desc.which;  (** process ISA at slice start *)
  se_instructions : int;
  se_switched : bool;  (** cold context switch charged *)
  se_migrated : bool;  (** scheduler requested a cross-ISA move *)
  se_security : bool;  (** ... triggered by the security policy *)
  se_done : bool;  (** the process retired during this slice *)
}

val schedule : t -> sched_event list
(** Every slice ever run, oldest first — the object the determinism
    tests compare. *)

val event_to_string : t -> sched_event -> string
val schedule_to_string : t -> string

(** {2 Metrics}

    Per-core and per-process aggregates; the same numbers flow into
    the obs context as [cmp.slices], [cmp.context_switches],
    [cmp.migrations.security_policy], [cmp.migrations.load_policy]
    and [cmp.rounds] (plus [machine.context_switch_flushes] from the
    machines themselves). *)

type core_metrics = {
  cm_id : int;
  cm_isa : Hipstr_isa.Desc.which;
  cm_instructions : int;
  cm_cycles : float;
  cm_slices : int;
  cm_switches : int;
}

type proc_metrics = {
  pm_pid : int;
  pm_name : string;
  pm_outcome : Hipstr.System.outcome option;
  pm_instructions : int;
  pm_cycles : float;
  pm_slices : int;
  pm_sched_migrations : int;
  pm_security_migrations : int;
  pm_forced_migrations : int;
  pm_cache_flushes : int;  (** wholesale code-cache flushes (all VMs) *)
  pm_cache_evictions : int;  (** block-granular evictions (fifo/clock) *)
  pm_memo_installs : int;  (** re-installs served from the translation memo *)
  pm_chain_follows : int;
      (** host decode-cache chain links followed (both cores; host-side
          observability, not simulated cost) *)
  pm_ic_hits : int;  (** host indirect-branch inline-cache hits (mono + poly) *)
}

type metrics = {
  m_rounds : int;
  m_slices : int;
  m_context_switches : int;
  m_migrations_security_policy : int;
  m_migrations_load_policy : int;
  m_cores : core_metrics list;
  m_procs : proc_metrics list;
}

val metrics : t -> metrics
