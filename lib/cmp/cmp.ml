(* The heterogeneous-CMP runtime: N simulated cores of mixed ISA and
   a time-sliced scheduler over a pool of processes.

   Model. Cores are scheduling slots with an ISA and occupancy
   accounting; a process's microarchitectural and program state lives
   in its own Machine (per-process address spaces — this is a
   multi-process CMP, not SMT). Each round the policy assigns
   runnable processes to cores; each assignment runs one quantum.
   Assignments within a round are simulated sequentially in core
   order, which is observationally equivalent to truly concurrent
   cores because processes share nothing.

   Placement rules. A process may occupy a core of its current ISA
   unconditionally. A Hipstr-mode process may also be placed
   cross-ISA: the scheduler requests a migration, the process runs to
   its next equivalence point on the old ISA and completes the switch
   there (Migration.Transform does the state relocation) — the
   paper's migration-at-return model. Native/PSR-only processes are
   pinned to cores of their ISA.

   Determinism. Every decision reads only process/core state that is
   itself a deterministic function of (config, seeds): no wall clock,
   no domain identity, no hash-order iteration. Same config + seeds
   ⇒ identical schedule trace, outputs, syscall traces and metrics.

   Context switches. When a process lands on a core that last ran
   somebody else, or on a different core than its own last slice, its
   warmed-up caches and predictors are gone: Machine.
   context_switch_flush models the cold restart, so scheduling
   pressure shows up in simulated cycles (measured by the
   cmp-sched-overhead bench). Returning to "its" core with nobody in
   between keeps the state warm — core handles are reused. *)

module System = Hipstr.System
module Machine = Hipstr_machine.Machine
module Desc = Hipstr_isa.Desc
module Obs = Hipstr_obs.Obs

type policy = Round_robin | Load_balance | Security_first

let policy_name = function
  | Round_robin -> "round-robin"
  | Load_balance -> "load-balance"
  | Security_first -> "security-first"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "rr" | "round-robin" | "roundrobin" -> Some Round_robin
  | "load" | "load-balance" | "ipc" -> Some Load_balance
  | "security" | "security-first" | "sec" -> Some Security_first
  | _ -> None

type core = {
  co_id : int;
  co_isa : Desc.which;
  mutable co_instructions : int;
  mutable co_cycles : float;
  mutable co_slices : int;
  mutable co_switches : int;
  mutable co_last : int option;  (* pid of the last occupant *)
}

type sched_event = {
  se_round : int;
  se_core : int;
  se_pid : int;
  se_isa : Desc.which;  (* process ISA at slice start *)
  se_instructions : int;
  se_switched : bool;  (* cold context switch *)
  se_migrated : bool;  (* scheduler requested a cross-ISA move *)
  se_security : bool;  (* ... because the process was flagged *)
  se_done : bool;
}

type t = {
  cores : core array;
  mutable procs : Process.t array;
  policy : policy;
  quantum : int;
  obs : Obs.t;
  c_slices : Obs.Metrics.counter;
  c_switches : Obs.Metrics.counter;
  c_mig_sec : Obs.Metrics.counter;
  c_mig_load : Obs.Metrics.counter;
  c_rounds : Obs.Metrics.counter;
  mutable round : int;
  mutable queue : int list;  (* runnable pids, scheduling order *)
  mutable trace_rev : sched_event list;
}

let default_cores = [ Desc.Cisc; Desc.Risc ]

let isa_label = function Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let create ?(obs = Obs.global) ?(policy = Round_robin) ?(quantum = 20_000)
    ?(cores = default_cores) procs =
  if quantum < 1 then invalid_arg "Cmp.create: quantum must be positive";
  if cores = [] then invalid_arg "Cmp.create: need at least one core";
  let core_isas = List.sort_uniq compare cores in
  List.iter
    (fun p ->
      if (not (Process.can_migrate p)) && not (List.mem (Process.active_isa p) core_isas) then
        invalid_arg
          (Printf.sprintf "Cmp.create: process %s is pinned to %s but no such core exists"
             (Process.name p)
             (isa_label (Process.active_isa p))))
    procs;
  let pids = List.map Process.pid procs in
  if List.length (List.sort_uniq compare pids) <> List.length pids then
    invalid_arg "Cmp.create: duplicate pids";
  let metric n = Obs.Metrics.counter (Obs.metrics obs) ("cmp." ^ n) in
  {
    cores =
      Array.of_list
        (List.mapi
           (fun i isa ->
             {
               co_id = i;
               co_isa = isa;
               co_instructions = 0;
               co_cycles = 0.;
               co_slices = 0;
               co_switches = 0;
               co_last = None;
             })
           cores);
    procs = Array.of_list procs;
    policy;
    quantum;
    obs;
    c_slices = metric "slices";
    c_switches = metric "context_switches";
    c_mig_sec = metric "migrations.security_policy";
    c_mig_load = metric "migrations.load_policy";
    c_rounds = metric "rounds";
    round = 0;
    queue = pids;
    trace_rev = [];
  }

let proc t pid =
  match Array.find_opt (fun p -> Process.pid p = pid) t.procs with
  | Some p -> p
  | None -> invalid_arg "Cmp.proc: unknown pid"

(* --- dynamic process arrival/departure (the fleet harness) --- *)

let inject t p =
  if Array.exists (fun q -> Process.pid q = Process.pid p) t.procs then
    invalid_arg "Cmp.inject: duplicate pid";
  if
    (not (Process.can_migrate p))
    && not (Array.exists (fun (c : core) -> c.co_isa = Process.active_isa p) t.cores)
  then
    invalid_arg
      (Printf.sprintf "Cmp.inject: process %s is pinned to %s but no such core exists"
         (Process.name p)
         (isa_label (Process.active_isa p)));
  t.procs <- Array.append t.procs [| p |];
  t.queue <- t.queue @ [ Process.pid p ]

(* Withdraw a live process (fleet live migration): it leaves this
   CMP's pool, queue and core-affinity records entirely, so a later
   re-injection elsewhere starts cold — exactly what moving an address
   space between pools means. *)
let extract t pid =
  match Array.find_opt (fun p -> Process.pid p = pid) t.procs with
  | None -> invalid_arg "Cmp.extract: unknown pid"
  | Some p ->
    t.procs <- Array.of_list (List.filter (fun q -> Process.pid q <> pid) (Array.to_list t.procs));
    t.queue <- List.filter (fun q -> q <> pid) t.queue;
    Array.iter (fun (c : core) -> if c.co_last = Some pid then c.co_last <- None) t.cores;
    p

let reap t =
  let dead, live = List.partition (fun p -> not (Process.runnable p)) (Array.to_list t.procs) in
  if dead <> [] then begin
    t.procs <- Array.of_list live;
    let live_pids = List.map Process.pid live in
    t.queue <- List.filter (fun pid -> List.mem pid live_pids) t.queue
  end;
  dead

let core_cycles t = Array.map (fun c -> c.co_cycles) t.cores

let live_count t = Array.length t.procs

let runnable_count t =
  Array.fold_left (fun n p -> if Process.runnable p then n + 1 else n) 0 t.procs

let compatible core p =
  Process.active_isa p = core.co_isa || Process.can_migrate p

(* --- per-round assignment, one list of (core, pid, security?) --- *)

(* Shared helper: walk the queue, give each core (in the given order)
   the first process it can host that nobody else took this round. *)
let assign_first_fit t core_order queue =
  let taken = Hashtbl.create 8 in
  let assignments = ref [] in
  List.iter
    (fun (core : core) ->
      let rec pick = function
        | [] -> ()
        | pid :: rest ->
          let p = proc t pid in
          if (not (Hashtbl.mem taken pid)) && compatible core p then begin
            Hashtbl.replace taken pid ();
            assignments := (core, pid, false) :: !assignments
          end
          else pick rest
      in
      pick queue)
    core_order;
  List.rev !assignments

let assign_round_robin t queue = assign_first_fit t (Array.to_list t.cores) queue

(* Balance occupancy: cores in ascending accumulated-cycle order pick
   work first, so the least-loaded core never idles while a process
   waits; a slow process (low observed IPC) therefore drifts to
   whichever core keeps up, and crossing ISAs to get there is a
   load-triggered migration. *)
let assign_load_balance t queue =
  let order =
    List.sort
      (fun (a : core) b ->
        match compare a.co_cycles b.co_cycles with 0 -> compare a.co_id b.co_id | c -> c)
      (Array.to_list t.cores)
  in
  assign_first_fit t order queue

(* Security first: flagged processes (suspicious code-cache miss in
   their last slice) are scheduled before everyone else and placed on
   a core of a *different* ISA than they are executing on, so the
   pending exploit state is destroyed by relocation. *)
let assign_security t queue =
  let flagged, calm =
    List.partition (fun pid -> Process.flagged (proc t pid) && Process.can_migrate (proc t pid)) queue
  in
  let taken = Hashtbl.create 8 in
  let used_cores = Hashtbl.create 8 in
  let assignments = ref [] in
  (* flagged: want an other-ISA core; fall back to any compatible *)
  List.iter
    (fun pid ->
      let p = proc t pid in
      let prefer isa (c : core) = c.co_isa = isa && not (Hashtbl.mem used_cores c.co_id) in
      let other = Desc.other (Process.active_isa p) in
      let slot =
        match Array.find_opt (prefer other) t.cores with
        | Some c -> Some (c, true)
        | None -> (
          match
            Array.find_opt
              (fun (c : core) -> (not (Hashtbl.mem used_cores c.co_id)) && compatible c p)
              t.cores
          with
          | Some c -> Some (c, false)
          | None -> None)
      in
      match slot with
      | Some (c, security) ->
        Hashtbl.replace taken pid ();
        Hashtbl.replace used_cores c.co_id ();
        assignments := (c, pid, security) :: !assignments
      | None -> ())
    flagged;
  let free_cores =
    List.filter (fun (c : core) -> not (Hashtbl.mem used_cores c.co_id)) (Array.to_list t.cores)
  in
  let rest = assign_first_fit t free_cores (List.filter (fun pid -> not (Hashtbl.mem taken pid)) calm) in
  List.rev_append !assignments rest

let assignments_of t queue =
  match t.policy with
  | Round_robin -> assign_round_robin t queue
  | Load_balance -> assign_load_balance t queue
  | Security_first -> assign_security t queue

(* --- the scheduling loop --- *)

let runnable_pids t = List.filter (fun pid -> Process.runnable (proc t pid)) t.queue

let all_done t = Array.for_all (fun p -> not (Process.runnable p)) t.procs

(* One scheduling round, in three stages.

   Prep (sequential, core order): cold flushes, migration requests,
   scheduler audit entries, and each slice's begin stamp (the core's
   cycle clock) are all decided before any slice runs.

   Run (parallel when [jobs] > 1): the slices themselves. Processes
   share no simulated state, each core has at most one assignment per
   round, and every scheduling input was fixed in prep — so executing
   them concurrently cannot change any simulation result. Shared
   observability is domain-safe (atomic counters, mutex-guarded
   histograms/spans/audit), and the exporters canonically re-sort, so
   exported files are byte-identical to the serial run too. Each
   slice gets a [schedule] span on its core's clock; the nested exec/
   translate/migration spans land under it via the per-domain stack.

   Account (sequential, core order): fold results into cores, the
   trace and the queue. With [timeline], the accounting stage ends by
   delta-sampling the CMP's obs context at the maximum core clock —
   after the Pool barrier, from the sequential section, so the
   timeline inherits the round's determinism. Returns how many slices
   ran. *)
let step ?(jobs = 1) ?timeline t =
  let queue = runnable_pids t in
  let assignments =
    (* sort by core id so execution order is the physical core order,
       whatever order the policy discovered the pairs in *)
    List.sort
      (fun ((a : core), _, _) (b, _, _) -> compare a.co_id b.co_id)
      (assignments_of t queue)
  in
  let observing = Obs.on t.obs in
  let prepped =
    List.map
      (fun ((core : core), pid, security) ->
        let p = proc t pid in
        let isa0 = Process.active_isa p in
        (* cold restart unless this exact process is back on the core
           it warmed up, with nobody having used it in between *)
        let cold =
          match (core.co_last, Process.last_core p) with
          | _, None -> false (* first slice: everything is cold already *)
          | Some last_pid, Some last_core -> last_pid <> pid || last_core <> core.co_id
          | None, Some _ -> true (* the process warmed up a different core *)
        in
        if cold then begin
          core.co_switches <- core.co_switches + 1;
          if observing then Obs.Metrics.incr t.c_switches;
          Machine.context_switch_flush (System.machine (Process.sys p))
        end;
        let migrated =
          (* a fresh request only — a cross-ISA slice while a migration
             is already pending (waiting for its equivalence point) is
             the same migration, not a new one *)
          if
            Process.can_migrate p && isa0 <> core.co_isa
            && not (System.migration_pending (Process.sys p))
          then begin
            Process.request_migration p;
            if observing then begin
              Obs.Metrics.incr (if security then t.c_mig_sec else t.c_mig_load);
              Obs.audit_emit t.obs ~cycle:core.co_cycles ~isa:(isa_label core.co_isa) ~pid
                (Obs.Audit.Sched_migrate { core = core.co_id; security })
            end;
            true
          end
          else false
        in
        (core, pid, security, isa0, cold, migrated, core.co_cycles))
      assignments
  in
  let slices =
    Pool.mapi ~jobs
      (fun _ ((core : core), pid, _security, isa0, _cold, _migrated, begin_cycle) ->
        let p = proc t pid in
        let sp =
          Obs.enter_span t.obs ~name:"schedule"
            ~attrs:
              [
                ("core", string_of_int core.co_id);
                ("isa", isa_label core.co_isa);
                ("pid", string_of_int pid);
                ("proc", Process.name p);
                ("proc_isa", isa_label isa0);
                ("round", string_of_int t.round);
              ]
            ~cycle:begin_cycle ()
        in
        let sl = Process.run_slice p ~fuel:t.quantum in
        (* end stamp on the core clock: begin + the cycles the slice
           actually accumulated, so per-core schedule-span totals
           reconcile with [cm_cycles] exactly *)
        Obs.exit_span t.obs sp ~cycle:(begin_cycle +. sl.System.sl_cycles);
        sl)
      prepped
  in
  List.iter2
    (fun ((core : core), pid, security, isa0, cold, migrated, _) (sl : System.slice) ->
      let p = proc t pid in
      core.co_instructions <- core.co_instructions + sl.System.sl_instructions;
      core.co_cycles <- core.co_cycles +. sl.System.sl_cycles;
      core.co_slices <- core.co_slices + 1;
      core.co_last <- Some pid;
      Process.set_last_core p core.co_id;
      if observing then Obs.Metrics.incr t.c_slices;
      t.trace_rev <-
        {
          se_round = t.round;
          se_core = core.co_id;
          se_pid = pid;
          se_isa = isa0;
          se_instructions = sl.System.sl_instructions;
          se_switched = cold;
          se_migrated = migrated;
          se_security = security;
          se_done = not (Process.runnable p);
        }
        :: t.trace_rev)
    prepped slices;
  (* rotate: everyone who ran goes to the back, in run order *)
  let ran = List.map (fun (_, pid, _) -> pid) assignments in
  t.queue <-
    List.filter (fun pid -> not (List.mem pid ran)) t.queue
    @ List.filter (fun pid -> Process.runnable (proc t pid)) ran;
  t.round <- t.round + 1;
  if observing then Obs.Metrics.incr t.c_rounds;
  (match timeline with
  | None -> ()
  | Some tl ->
    let clock = Array.fold_left (fun acc c -> Float.max acc c.co_cycles) 0. t.cores in
    Obs.Timeline.sample tl ~key:"cmp" ~clock (Obs.snapshot t.obs));
  List.length assignments

let run ?jobs ?timeline t =
  (* Termination: every slice burns quantum from some process's
     finite fuel budget, and a round with runnable processes always
     schedules at least one of them (every process is compatible with
     at least one core, checked at create). *)
  while not (all_done t) do
    let scheduled = step ?jobs ?timeline t in
    if scheduled = 0 then
      (* defensive: cannot happen given the create-time check, but an
         infinite idle loop would be worse than a crash *)
      failwith "Cmp.run: no process schedulable"
  done

(* --- results --- *)

type core_metrics = {
  cm_id : int;
  cm_isa : Desc.which;
  cm_instructions : int;
  cm_cycles : float;
  cm_slices : int;
  cm_switches : int;
}

type proc_metrics = {
  pm_pid : int;
  pm_name : string;
  pm_outcome : System.outcome option;
  pm_instructions : int;
  pm_cycles : float;
  pm_slices : int;
  pm_sched_migrations : int;
  pm_security_migrations : int;
  pm_forced_migrations : int;
  pm_cache_flushes : int;
  pm_cache_evictions : int;
  pm_memo_installs : int;
  pm_chain_follows : int;
  pm_ic_hits : int;
}

type metrics = {
  m_rounds : int;
  m_slices : int;
  m_context_switches : int;
  m_migrations_security_policy : int;
  m_migrations_load_policy : int;
  m_cores : core_metrics list;
  m_procs : proc_metrics list;
}

(* Host-side decode-cache chaining totals, summed over both cores'
   caches of the process's machine — host observability only, never
   part of the simulated cost model. *)
let sum_dc_stats p f =
  let m = System.machine (Process.sys p) in
  List.fold_left
    (fun acc which ->
      match Machine.decode_cache_stats m which with Some st -> acc + f st | None -> acc)
    0
    [ Desc.Cisc; Desc.Risc ]

let chain_follows p = sum_dc_stats p (fun st -> st.Hipstr_machine.Decode_cache.chain_follows)

let ic_hits p =
  sum_dc_stats p (fun st ->
      st.Hipstr_machine.Decode_cache.ic_mono_hits + st.Hipstr_machine.Decode_cache.ic_poly_hits)

let metrics t =
  let trace = List.rev t.trace_rev in
  let count f = List.length (List.filter f trace) in
  {
    m_rounds = t.round;
    m_slices = List.length trace;
    m_context_switches = count (fun e -> e.se_switched);
    m_migrations_security_policy = count (fun e -> e.se_migrated && e.se_security);
    m_migrations_load_policy = count (fun e -> e.se_migrated && not e.se_security);
    m_cores =
      Array.to_list
        (Array.map
           (fun c ->
             {
               cm_id = c.co_id;
               cm_isa = c.co_isa;
               cm_instructions = c.co_instructions;
               cm_cycles = c.co_cycles;
               cm_slices = c.co_slices;
               cm_switches = c.co_switches;
             })
           t.cores);
    m_procs =
      Array.to_list
        (Array.map
           (fun p ->
             {
               pm_pid = Process.pid p;
               pm_name = Process.name p;
               pm_outcome = Process.outcome p;
               pm_instructions = Process.instructions p;
               pm_cycles = Process.cycles p;
               pm_slices = Process.slices p;
               pm_sched_migrations = Process.sched_migrations p;
               pm_security_migrations = System.security_migrations (Process.sys p);
               pm_forced_migrations = System.forced_migrations (Process.sys p);
               pm_cache_flushes = System.cache_flushes (Process.sys p);
               pm_cache_evictions = System.cache_evictions (Process.sys p);
               pm_memo_installs = System.memo_installs (Process.sys p);
               pm_chain_follows = chain_follows p;
               pm_ic_hits = ic_hits p;
             })
           t.procs);
  }

let schedule t = List.rev t.trace_rev

let processes t = Array.to_list t.procs
let policy t = t.policy
let quantum t = t.quantum
let rounds t = t.round

let event_to_string t e =
  Printf.sprintf "round %4d core %d(%s) pid %d [%s] instrs=%-6d%s%s%s" e.se_round e.se_core
    (isa_label t.cores.(e.se_core).co_isa)
    e.se_pid (isa_label e.se_isa) e.se_instructions
    (if e.se_switched then " switch" else "")
    (if e.se_migrated then if e.se_security then " migrate(security)" else " migrate(load)" else "")
    (if e.se_done then " done" else "")

let schedule_to_string t =
  String.concat "\n" (List.map (event_to_string t) (schedule t))
