(** A deterministic work-queue over OCaml 5 [Domain]s.

    Fans independent simulations — experiment sweep points, fuzz
    seeds, brute-force trials — across domains. Determinism contract:
    results are collected by task index, per-task randomness comes
    only from [(seed, index)] ({!mapi_seeded}), and observability
    flows through per-task child contexts merged back in task order
    ({!map_obs}). A run with [~jobs:4] is therefore bit-identical to
    [~jobs:1]; only the wall clock changes.

    Tasks must not share mutable state beyond what they guard
    themselves (the repo's memo caches — workload fat binaries, the
    experiment harness baselines — are mutex-guarded and
    compute-once, so sharing them is deterministic too).

    If a task raises, the exception is re-raised in the caller after
    all domains join — the lowest-index failure wins, deterministically. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] = [List.map f items], computed on up to
    [jobs] domains ([jobs] defaults to 1 = fully serial, no domain is
    spawned). *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

val mapi_seeded : ?jobs:int -> seed:int -> (Hipstr_util.Rng.t -> int -> 'a -> 'b) -> 'a list -> 'b list
(** Each task receives a private {!Hipstr_util.Rng.t} derived from
    [(seed, index)] only — never from domain identity or timing. *)

val map_obs :
  ?jobs:int -> obs:Hipstr_obs.Obs.t -> (Hipstr_obs.Obs.t -> 'a -> 'b) -> 'a list -> 'b list
(** Each task runs against a fresh {!Hipstr_obs.Obs.child} of [obs];
    at join the children are folded into [obs] in task order, so the
    merged counter totals and event stream match a serial run
    exactly. *)

val task_seed : seed:int -> int -> int
(** The seed-mixing function {!mapi_seeded} uses (exposed so callers
    can reproduce one task in isolation). *)
