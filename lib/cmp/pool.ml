(* A deterministic work-queue over OCaml 5 domains.

   The contract that makes `-j N` bit-identical to serial: results
   land in an array indexed by task, every task draws randomness only
   from an Rng derived from (seed, task index), and observability
   goes to a per-task child context folded back in task order at
   join. Which domain ran a task, and when, can then never influence
   anything the caller sees. *)

module Rng = Hipstr_util.Rng
module Obs = Hipstr_obs.Obs

let recommended_jobs () = Domain.recommended_domain_count ()

(* Run [work 0 .. work (n-1)], each exactly once, on [jobs] domains
   (the calling domain is one of them). [work] must not raise — the
   wrappers below capture exceptions into the result slots. *)
let drive ~jobs ~n work =
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      work i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          work i;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end

let collect results =
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let mapi ?(jobs = 1) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n None in
  drive ~jobs ~n (fun i ->
      results.(i) <-
        Some
          (match f i items.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())));
  collect results

let map ?jobs f items = mapi ?jobs (fun _ x -> f x) items

(* Mix the task index into the seed the way Rng.split mixes streams:
   a fixed odd multiplier keeps neighbouring indices far apart. *)
let task_seed ~seed i = (seed * 0x9E3779B9) lxor ((i + 1) * 0x85EBCA6B)

let mapi_seeded ?jobs ~seed f items =
  mapi ?jobs (fun i x -> f (Rng.create (task_seed ~seed i)) i x) items

let map_obs ?(jobs = 1) ~obs f items =
  let n = List.length items in
  let children = Array.init n (fun _ -> Obs.child obs) in
  let results = mapi ~jobs (fun i x -> f children.(i) x) items in
  (* fold per-task contexts back in task order: counter totals and
     the re-emitted event stream are independent of domain count *)
  Array.iter (fun c -> Obs.merge ~into:obs c) children;
  results
