type t = {
  w_name : string;
  w_paper_name : string;
  w_src : string;
  w_fuel : int;
  w_description : string;
}

(* ------------------------------------------------------------------ *)
(* bzip2: run-length encoding + move-to-front + order-0 cost model
   over a synthetic buffer — the byte-shuffling, table-driven loops of
   a compressor. *)

let bzip2 =
  {
    w_name = "bzip2";
    w_paper_name = "401.bzip2";
    w_description = "RLE + move-to-front compression kernel";
    w_fuel = 3_000_000;
    w_src =
      {|
int data[1024];
int mtf[64];
int out[1200];

int fill(int n) {
  int i;
  int x = 12345;
  for (i = 0; i < n; i = i + 1) {
    x = (x * 1103515245 + 12345) & 0x7fffffff;
    // runs are common in the synthetic input
    data[i] = ((x >> 16) & 7) + ((i >> 4) & 3) * 8;
  }
  return 0;
}

int rle(int n) {
  int i = 0;
  int w = 0;
  while (i < n) {
    int v = data[i];
    int run = 1;
    while (i + run < n && data[i + run] == v && run < 255) { run = run + 1; }
    out[w] = v; w = w + 1;
    out[w] = run; w = w + 1;
    i = i + run;
  }
  return w;
}

int move_to_front(int w) {
  int i;
  int total = 0;
  for (i = 0; i < 64; i = i + 1) { mtf[i] = i; }
  for (i = 0; i < w; i = i + 1) {
    int v = out[i] & 63;
    int j = 0;
    while (mtf[j] != v) { j = j + 1; }
    total = total + j;
    while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
    mtf[0] = v;
  }
  return total;
}

int main() {
  fill(1024);
  int w = rle(1024);
  print(w);
  print(move_to_front(w));
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* gobmk: alpha-beta game-tree search on a tiny board with
   function-pointer move evaluators — the paper highlights gobmk's
   65,746 function-pointer calls per second. *)

let gobmk =
  {
    w_name = "gobmk";
    w_paper_name = "445.gobmk";
    w_description = "game-tree search with function-pointer evaluators";
    w_fuel = 4_000_000;
    w_src =
      {|
int board[25];
int nodes;

int eval_territory(int pos) {
  int i;
  int s = 0;
  for (i = 0; i < 25; i = i + 1) { s = s + board[i] * ((i % 5) - 2); }
  return s + pos;
}

int eval_influence(int pos) {
  int i;
  int s = 0;
  for (i = 0; i < 25; i = i + 1) { s = s + board[i] * ((i / 5) - 2); }
  return s - pos;
}

int eval_capture(int pos) {
  int s = board[pos % 25];
  return s * 3 + (pos & 7);
}

int search(int depth, int alpha, int beta, int player) {
  nodes = nodes + 1;
  if (depth == 0) {
    int which = (nodes % 3 == 0) ? &eval_territory : ((nodes % 3 == 1) ? &eval_influence : &eval_capture);
    return (*which)(nodes) * player;
  }
  int move;
  int best = 0 - 100000;
  for (move = 0; move < 4; move = move + 1) {
    int pos = (nodes * 7 + move * 3) % 25;
    int saved = board[pos];
    board[pos] = player;
    int score = 0 - search(depth - 1, 0 - beta, 0 - alpha, 0 - player);
    board[pos] = saved;
    if (score > best) { best = score; }
    if (best > alpha) { alpha = best; }
    if (alpha >= beta) { move = 4; }
  }
  return best;
}

int main() {
  int i;
  for (i = 0; i < 25; i = i + 1) { board[i] = (i * 13 % 3) - 1; }
  print(search(6, 0 - 100000, 100000, 1));
  print(nodes);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* hmmer: Viterbi dynamic programming over a small profile HMM —
   nested max-plus loops over score tables. *)

let hmmer =
  {
    w_name = "hmmer";
    w_paper_name = "456.hmmer";
    w_description = "profile-HMM Viterbi dynamic programming";
    w_fuel = 3_500_000;
    w_src =
      {|
int match_score[160];
int insert_score[160];
int vmat[170];
int vins[170];
int seq[120];

int max2(int a, int b) { if (a > b) { return a; } return b; }

int viterbi(int states, int len) {
  int t;
  int best = 0 - 1000000;
  for (t = 0; t < len; t = t + 1) {
    int s;
    int obs = seq[t];
    for (s = states - 1; s > 0; s = s - 1) {
      int from_match = vmat[s - 1] + match_score[(s * 8 + obs) % 160];
      int from_ins = vins[s - 1] + insert_score[(s * 8 + obs) % 160];
      vmat[s] = max2(from_match, from_ins) - 2;
      vins[s] = max2(vmat[s] - 11, vins[s] - 1);
    }
    if (vmat[states - 1] > best) { best = vmat[states - 1]; }
  }
  return best;
}

int main() {
  int i;
  int x = 99;
  for (i = 0; i < 160; i = i + 1) {
    x = (x * 214013 + 2531011) & 0x7fffffff;
    match_score[i] = (x >> 20) % 17 - 5;
    insert_score[i] = (x >> 12) % 9 - 4;
  }
  for (i = 0; i < 120; i = i + 1) { seq[i] = (i * 31) % 8; }
  print(viterbi(20, 120));
  int total = 0;
  for (i = 0; i < 20; i = i + 1) { total = total + vmat[i] + vins[i]; }
  print(total);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* lbm: a 2-D lattice stencil relaxation (integer arithmetic standing
   in for the paper's FP) — streaming array traffic, few branches. *)

let lbm =
  {
    w_name = "lbm";
    w_paper_name = "470.lbm";
    w_description = "2-D lattice stencil relaxation";
    w_fuel = 4_000_000;
    w_src =
      {|
int grid[1156];
int next[1156];

int step(int dim) {
  int y;
  for (y = 1; y < dim - 1; y = y + 1) {
    int x;
    for (x = 1; x < dim - 1; x = x + 1) {
      int i = y * dim + x;
      int acc = grid[i] * 4;
      acc = acc + grid[i - 1] + grid[i + 1] + grid[i - dim] + grid[i + dim];
      next[i] = (acc * 7 + 4) >> 3;
    }
  }
  for (y = 0; y < dim * dim; y = y + 1) { grid[y] = next[y]; }
  return 0;
}

int main() {
  int dim = 34;
  int i;
  for (i = 0; i < dim * dim; i = i + 1) { grid[i] = ((i * 2654435761) >> 24) & 255; }
  int iter;
  for (iter = 0; iter < 12; iter = iter + 1) { step(dim); }
  int cksum = 0;
  for (i = 0; i < dim * dim; i = i + 1) { cksum = (cksum + grid[i] * (i & 15)) & 0xffffff; }
  print(cksum);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* libquantum: quantum register simulation — gate application as bit
   manipulation over a state table. *)

let libquantum =
  {
    w_name = "libquantum";
    w_paper_name = "462.libquantum";
    w_description = "quantum register gate simulation (bit manipulation)";
    w_fuel = 3_000_000;
    w_src =
      {|
int state[512];
int amp[512];

int sigma_x(int nstates, int target) {
  int i;
  for (i = 0; i < nstates; i = i + 1) { state[i] = state[i] ^ (1 << target); }
  return 0;
}

int cnot(int nstates, int control, int target) {
  int i;
  for (i = 0; i < nstates; i = i + 1) {
    if (state[i] & (1 << control)) { state[i] = state[i] ^ (1 << target); }
  }
  return 0;
}

int toffoli(int nstates, int c1, int c2, int target) {
  int i;
  for (i = 0; i < nstates; i = i + 1) {
    if ((state[i] & (1 << c1)) && (state[i] & (1 << c2))) {
      state[i] = state[i] ^ (1 << target);
    }
  }
  return 0;
}

int main() {
  int n = 512;
  int i;
  for (i = 0; i < n; i = i + 1) { state[i] = i; amp[i] = (i * 37) & 1023; }
  int round;
  for (round = 0; round < 9; round = round + 1) {
    sigma_x(n, round % 9);
    cnot(n, round % 9, (round + 3) % 9);
    toffoli(n, round % 9, (round + 1) % 9, (round + 5) % 9);
  }
  int cksum = 0;
  for (i = 0; i < n; i = i + 1) { cksum = cksum ^ (state[i] * amp[i]); }
  print(cksum);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* mcf: Bellman-Ford relaxation over a sparse graph — the
   pointer-chasing, cache-unfriendly access pattern of min-cost
   flow. *)

let mcf =
  {
    w_name = "mcf";
    w_paper_name = "429.mcf";
    w_description = "shortest-path relaxation over a sparse network";
    w_fuel = 4_000_000;
    w_src =
      {|
int head[640];
int tail[640];
int cost[640];
int dist[160];

int relax(int nodes, int arcs) {
  int changed = 0;
  int a;
  for (a = 0; a < arcs; a = a + 1) {
    int u = tail[a];
    int v = head[a];
    int nd = dist[u] + cost[a];
    if (nd < dist[v]) { dist[v] = nd; changed = changed + 1; }
  }
  return changed;
}

int main() {
  int nodes = 160;
  int arcs = 640;
  int i;
  int x = 7;
  for (i = 0; i < arcs; i = i + 1) {
    x = (x * 1103515245 + 12345) & 0x7fffffff;
    tail[i] = (x >> 8) % nodes;
    head[i] = ((x >> 8) % nodes + 1 + (x >> 20) % 7) % nodes;
    cost[i] = (x >> 16) % 97 + 1;
  }
  for (i = 1; i < nodes; i = i + 1) { dist[i] = 1000000; }
  int rounds = 0;
  while (relax(nodes, arcs) > 0 && rounds < 40) { rounds = rounds + 1; }
  int cksum = 0;
  for (i = 0; i < nodes; i = i + 1) { cksum = cksum + dist[i] * (1 + (i & 7)); }
  print(rounds);
  print(cksum);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* milc: 3x3 integer matrix multiply chains over a small lattice —
   the dense su3 arithmetic of lattice QCD. *)

let milc =
  {
    w_name = "milc";
    w_paper_name = "433.milc";
    w_description = "3x3 matrix-multiply chains over a lattice";
    w_fuel = 4_500_000;
    w_src =
      {|
int lattice[576];
int link_m[576];

int mat_mul(int dst, int a, int b) {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    int j;
    for (j = 0; j < 3; j = j + 1) {
      int acc = 0;
      int k;
      for (k = 0; k < 3; k = k + 1) {
        acc = acc + lattice[a + i * 3 + k] * link_m[b + k * 3 + j];
      }
      lattice[dst + i * 3 + j] = (acc + 8) >> 4;
    }
  }
  return lattice[dst];
}

int main() {
  int sites = 64;
  int i;
  for (i = 0; i < sites * 9; i = i + 1) {
    lattice[i] = ((i * 2246822519) >> 20) % 31 - 15;
    link_m[i] = ((i * 3266489917) >> 18) % 31 - 15;
  }
  int sweep;
  int cksum = 0;
  for (sweep = 0; sweep < 6; sweep = sweep + 1) {
    int s;
    for (s = 0; s < sites - 1; s = s + 1) {
      cksum = cksum + mat_mul(s * 9, ((s + 1) % sites) * 9, s * 9);
    }
  }
  print(cksum & 0xffffff);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* sphinx3: the acoustic front end of a speech recognizer — windowed
   dot products and a best-scoring-senone argmax search. *)

let sphinx3 =
  {
    w_name = "sphinx3";
    w_paper_name = "482.sphinx3";
    w_description = "speech front-end: windowed dot products + argmax";
    w_fuel = 4_000_000;
    w_src =
      {|
int signal[1024];
int window[32];
int senone[256];
int feats[64];

int dot(int off) {
  int i;
  int acc = 0;
  for (i = 0; i < 32; i = i + 1) { acc = acc + signal[off + i] * window[i]; }
  return acc >> 6;
}

int best_senone(int f) {
  int best = 0 - 1000000;
  int arg = 0;
  int s;
  for (s = 0; s < 256; s = s + 1) {
    int score = 0 - (feats[f % 64] - senone[s]) * (feats[f % 64] - senone[s]);
    if (score > best) { best = score; arg = s; }
  }
  return arg;
}

int main() {
  int i;
  for (i = 0; i < 1024; i = i + 1) { signal[i] = ((i * 73) % 256) - 128; }
  for (i = 0; i < 32; i = i + 1) { window[i] = 16 - ((i - 16 < 0) ? (16 - i) : (i - 16)); }
  for (i = 0; i < 256; i = i + 1) { senone[i] = (i * 5) % 300 - 150; }
  int f;
  for (f = 0; f < 60; f = f + 1) { feats[f % 64] = dot(f * 16); }
  int cksum = 0;
  for (f = 0; f < 60; f = f + 1) { cksum = cksum + best_senone(f) * (f + 1); }
  print(cksum);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* httpd: the attack victim. Parses request lines from a "network
   buffer" (globals the harness pokes) and copies the request path
   into a fixed-size local buffer without a bounds check. *)

let httpd =
  {
    w_name = "httpd";
    w_paper_name = "httpd (Section 7.1)";
    w_description = "request-parsing daemon with an unbounded copy (the victim)";
    w_fuel = 2_000_000;
    w_src =
      {|
int net_input[512];
int net_len = 0;
int requests = 400;
int served;
int status_table[4] = {200, 301, 404, 500};

int hash_path(int p, int n) {
  int i;
  int h = 5381;
  for (i = 0; i < n; i = i + 1) { h = (h * 33 + p[i]) & 0x7fffffff; }
  return h;
}

int serve_static(int code) { served = served + 1; return code; }
int serve_dynamic(int code) { served = served + 2; return code + 1; }

int handle_request(int id) {
  int buf[16];
  int i;
  // protocol hardening: a negative or >512-word length is a line the
  // 512-word network buffer cannot have held, so answer 400 without
  // touching the buffer at all
  if (net_len < 0) { return 400; }
  if (net_len > 512) { return 400; }
  // copy the "request line" into the stack buffer; the length is
  // checked against the *network* buffer above but never against the
  // 16-word stack buffer — the paper's victim overflow
  for (i = 0; i < net_len; i = i + 1) { buf[i] = net_input[i]; }
  int h = hash_path(&buf[0], (net_len < 16) ? net_len : 16);
  int handler = (h & 1) ? &serve_static : &serve_dynamic;
  return (*handler)(status_table[h % 4]);
}

int main() {
  int r;
  int total = 0;
  for (r = 0; r < requests; r = r + 1) {
    // synthesize a benign request when the network buffer is empty
    if (net_len == 0) {
      int k;
      net_len = 8 + (r % 5);
      for (k = 0; k < net_len; k = k + 1) { net_input[k] = 65 + ((r * 7 + k) % 26); }
      total = total + handle_request(r);
      net_len = 0;
    } else {
      total = total + handle_request(r);
    }
  }
  print(total);
  print(served);
  return 0;
}
|};
  }

let all = [ bzip2; gobmk; hmmer; lbm; libquantum; mcf; milc; sphinx3 ]

let find name =
  if name = "httpd" then httpd
  else
    match List.find_opt (fun w -> w.w_name = name) all with
    | Some w -> w
    | None -> raise Not_found

let names = List.map (fun w -> w.w_name) all @ [ "httpd" ]

let fatbin_cache : (string, Hipstr_compiler.Fatbin.t) Hashtbl.t = Hashtbl.create 16
let fatbin_mu = Mutex.create ()

let full_source w = Libc.source ^ w.w_src

(* Compiled under the lock so parallel sweeps (Cmp.Pool) compile each
   workload exactly once, like a serial run would. *)
let fatbin w =
  Mutex.protect fatbin_mu (fun () ->
      match Hashtbl.find_opt fatbin_cache w.w_name with
      | Some fb -> fb
      | None ->
        let fb = Hipstr_compiler.Compile.to_fatbin (full_source w) in
        Hashtbl.replace fatbin_cache w.w_name fb;
        fb)
