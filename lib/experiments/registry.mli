(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by id (used by the CLI and the bench
    harness). *)

type experiment = {
  ex_id : string;  (** e.g. "fig9" *)
  ex_title : string;
  ex_paper : string;  (** what the paper reports there *)
  ex_run : unit -> Hipstr_util.Table.t;
}

val all : experiment list

val find : string -> experiment option

val run_and_print : experiment -> unit

val output_of : experiment -> string
(** Exactly the bytes {!run_and_print} writes (title, rule, table,
    paper line). *)

val run_many : ?jobs:int -> experiment list -> string list
(** Regenerate several experiments, fanned across up to [jobs]
    domains ({!Hipstr_cmp.Pool}); the returned outputs are in input
    order and byte-identical to running serially ([jobs] defaults
    to 1). *)
