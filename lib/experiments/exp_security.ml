module Table = Hipstr_util.Table
module Stats = Hipstr_util.Stats
module Workloads = Hipstr_workloads.Workloads
module Surface = Hipstr_attacks.Surface
module Brute_force = Hipstr_attacks.Brute_force
module Jitrop = Hipstr_attacks.Jitrop
module Tailored = Hipstr_attacks.Tailored
module Entropy = Hipstr_attacks.Entropy
module Rop = Hipstr_attacks.Rop
module Galileo = Hipstr_galileo.Galileo
module Config = Hipstr_psr.Config
module Core_desc = Hipstr_machine.Core_desc
module System = Hipstr.System
module Mem = Hipstr_machine.Mem
module Fatbin = Hipstr_compiler.Fatbin
open Hipstr_isa

let table1 () =
  let t = Table.create [ "core"; "freq"; "fetch"; "issue"; "ROB"; "LQ/SQ"; "I$/D$" ] in
  List.iter
    (fun (c : Core_desc.t) ->
      Table.add_row t
        [
          c.name;
          Printf.sprintf "%.1f GHz" c.freq_ghz;
          string_of_int c.fetch_width;
          string_of_int c.issue_width;
          string_of_int c.rob_size;
          Printf.sprintf "%d/%d" c.lq_size c.sq_size;
          Printf.sprintf "%d/%d KB %d-way" c.icache_size_kb c.dcache_size_kb c.cache_assoc;
        ])
    [ Core_desc.arm; Core_desc.x86 ];
  t

let fig3_classic_rop () =
  let t =
    Table.create [ "benchmark"; "gadgets"; "obfuscated"; "unobfuscated"; "obf %"; "unintentional" ]
  in
  let fracs = ref [] in
  List.iter
    (fun w ->
      let r = Harness.surface_of w in
      let obf = Surface.obfuscated_fraction r in
      fracs := obf :: !fracs;
      Table.add_row t
        [
          r.r_name;
          string_of_int r.r_total;
          Printf.sprintf "%.1f" (float_of_int r.r_total -. r.r_unobfuscated);
          Printf.sprintf "%.1f" r.r_unobfuscated;
          Stats.percent obf;
          string_of_int r.r_unintentional;
        ])
    Harness.with_httpd;
  Table.add_row t [ "average"; ""; ""; ""; Stats.percent (Stats.mean !fracs); "" ];
  t

let fig4_brute_force_surface () =
  let t = Table.create [ "benchmark"; "gadgets"; "eliminated"; "surviving"; "viable %" ] in
  let fracs = ref [] in
  List.iter
    (fun w ->
      let r = Harness.surface_of w in
      let vf = Surface.viable_fraction r in
      fracs := vf :: !fracs;
      Table.add_row t
        [
          r.r_name;
          string_of_int r.r_total;
          string_of_int (r.r_total - r.r_viable);
          string_of_int r.r_viable;
          Stats.percent vf;
        ])
    Harness.with_httpd;
  Table.add_row t [ "average"; ""; ""; ""; Stats.percent (Stats.mean !fracs) ];
  t

let table2_brute_force () =
  let t =
    Table.create
      [ "benchmark"; "params (avg)"; "entropy (bits)"; "attempts (no bias)"; "attempts (bias)" ]
  in
  List.iter
    (fun (w : Workloads.t) ->
      let r = Brute_force.simulate ~name:w.w_name (Harness.surface_of w) in
      Table.add_row t
        [
          r.bf_name;
          Printf.sprintf "%.2f" r.bf_params_avg;
          Printf.sprintf "%.0f" r.bf_entropy_bits;
          Stats.human_big r.bf_attempts_nobias;
          Stats.human_big r.bf_attempts_bias;
        ])
    Harness.spec_workloads;
  t

let fig5_jitrop () =
  let t =
    Table.create
      [
        "benchmark";
        "static";
        "in cache (JIT-ROP)";
        "flagging";
        "survive migration";
        "final residue";
        "execve feasible";
      ]
  in
  List.iter
    (fun (w : Workloads.t) ->
      let r = Jitrop.analyze ~name:w.w_name w ~seed:5 in
      Table.add_row t
        [
          r.jr_name;
          string_of_int r.jr_static_total;
          string_of_int r.jr_in_cache;
          string_of_int r.jr_flagging;
          string_of_int r.jr_survive_migration;
          string_of_int r.jr_final;
          (if r.jr_execve_feasible then "YES (!)" else "no");
        ])
    Harness.with_httpd;
  t

let fig7_entropy () =
  let curves = Entropy.all ~cfg:Config.default ~max_chain:12 in
  let t =
    Table.create ("chain length" :: List.map (fun (c : Entropy.curve) -> c.label) curves)
  in
  for n = 1 to 12 do
    Table.add_row t
      (string_of_int n
      :: List.map
           (fun (c : Entropy.curve) -> Printf.sprintf "%.0f" (List.assoc n c.values))
           curves)
  done;
  t

(* Code-cache gadget effects of a steady-state PSR run (the input set
   for the tailored-attack curves). *)
let cache_effects (w : Workloads.t) =
  let sys =
    System.of_fatbin ~seed:7 ~start_isa:Desc.Cisc ~mode:System.Psr_only (Workloads.fatbin w)
  in
  (match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | _ -> failwith "fig8: workload failed");
  let vm = System.vm sys Desc.Cisc in
  let mem = Hipstr_machine.Machine.mem (System.machine sys) in
  let read = Mem.reader mem in
  let ranges =
    List.map
      (fun (b : Hipstr_psr.Code_cache.block) -> (b.cb_cache, b.cb_size))
      (Hipstr_psr.Code_cache.blocks (Hipstr_psr.Vm.cache vm))
  in
  Galileo.mine ~read ~which:Desc.Cisc ~ranges ()
  |> List.filter (fun g -> g.Galileo.g_kind = Galileo.Ret_gadget)
  |> List.map (Galileo.classify ~sp:7)

let fig8_tailored () =
  let effects = cache_effects Workloads.httpd in
  let probs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  let techniques =
    [ Tailored.Isomeron_only; Tailored.Psr_only; Tailored.Psr_isomeron; Tailored.Hipstr ]
  in
  let curves =
    List.map
      (fun tech -> Tailored.curve tech ~base_gadgets:effects ~psr_gadgets:effects ~probs)
      techniques
  in
  let t = Table.create ("diversification p" :: List.map (fun c -> c.Tailored.t_label) curves) in
  List.iter
    (fun p ->
      Table.add_row t
        (Printf.sprintf "%.1f" p
        :: List.map
             (fun c ->
               let pt = List.find (fun q -> q.Tailored.p_prob = p) c.Tailored.t_points in
               Printf.sprintf "%.1f" pt.Tailored.p_surface)
             curves))
    probs;
  t

let httpd_case_study () =
  let w = Workloads.httpd in
  let fb = Workloads.fatbin w in
  let r = Harness.surface_of w in
  let bf = Brute_force.simulate ~name:"httpd" r in
  let jr = Jitrop.analyze ~name:"httpd" w ~seed:9 in
  let mem = Mem.create Hipstr_machine.Layout.mem_size in
  Fatbin.load fb mem;
  let chain = Rop.build_chain mem fb Desc.Cisc ~victim_func:"handle_request" in
  let live outcome_of =
    match chain with
    | None -> "no chain"
    | Some c -> (
      match outcome_of c with
      | Rop.Shell -> "SHELL SPAWNED"
      | Rop.Crashed m -> "crashed (" ^ m ^ ")"
      | Rop.Survived -> "absorbed (ran to completion)")
  in
  let native_outcome =
    live (fun c ->
        Rop.deliver (System.of_fatbin ~start_isa:Desc.Cisc ~mode:System.Native fb) c ~fuel:2_000_000)
  in
  let psr_outcome =
    live (fun c ->
        Rop.deliver (System.of_fatbin ~seed:3 ~start_isa:Desc.Cisc ~mode:System.Psr_only fb) c
          ~fuel:4_000_000)
  in
  let hipstr_outcome =
    live (fun c ->
        Rop.deliver
          (System.of_fatbin
             ~cfg:{ Config.default with migrate_prob = 1.0 }
             ~seed:3 ~start_isa:Desc.Cisc ~mode:System.Hipstr fb)
          c ~fuel:4_000_000)
  in
  let t = Table.create [ "metric"; "value" ] in
  Table.add_row t [ "total gadgets"; string_of_int r.r_total ];
  Table.add_row t [ "obfuscated by PSR"; Stats.percent (Surface.obfuscated_fraction r) ];
  Table.add_row t [ "brute-force attempts"; Stats.human_big bf.bf_attempts_nobias ];
  Table.add_row t [ "gadgets available to JIT-ROP"; string_of_int jr.jr_in_cache ];
  Table.add_row t [ "survive heterogeneous-ISA migration"; string_of_int jr.jr_survive_migration ];
  Table.add_row t [ "final residue"; string_of_int jr.jr_final ];
  Table.add_row t
    [ "execve feasible from residue"; (if jr.jr_execve_feasible then "yes" else "no") ];
  Table.add_row t [ "live exploit vs native"; native_outcome ];
  Table.add_row t [ "live exploit vs PSR"; psr_outcome ];
  Table.add_row t [ "live exploit vs HIPStR"; hipstr_outcome ];
  t


(* Ablation (DESIGN.md): the pad-size dial trades entropy against
   stack footprint. Security side of the Figure 10 sweep. *)
let ablation_pad_entropy () =
  let t =
    Table.create
      [ "pad"; "bits/param"; "entropy/gadget (bits)"; "attempts (no bias)"; "nop-gadget entropy" ]
  in
  List.iter
    (fun pad_bytes ->
      let cfg = { Config.default with pad_bytes } in
      let report =
        Surface.analyze ~cfg ~seed:1 ~name:"httpd" (Workloads.fatbin Workloads.httpd) Desc.Cisc
      in
      let bf = Brute_force.simulate ~cfg ~name:"httpd" report in
      let bits = Hipstr_psr.Reloc_map.entropy_bits_per_param cfg in
      Table.add_row t
        [
          Printf.sprintf "%d KB" (pad_bytes / 1024);
          Printf.sprintf "%.0f" bits;
          Printf.sprintf "%.0f" bf.bf_entropy_bits;
          Stats.human_big bf.bf_attempts_nobias;
          Printf.sprintf "%.0f bits" bits;
        ])
    [ 2048; 8192; 32768; 65536 ];
  t
