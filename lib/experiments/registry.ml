type experiment = {
  ex_id : string;
  ex_title : string;
  ex_paper : string;
  ex_run : unit -> Hipstr_util.Table.t;
}

let all =
  [
    {
      ex_id = "table1";
      ex_title = "Table 1: architecture detail for the ARM and x86 cores";
      ex_paper = "ARM Cortex A-9 class at 2 GHz; x86 Xeon class at 3.3 GHz";
      ex_run = Exp_security.table1;
    };
    {
      ex_id = "fig3";
      ex_title = "Figure 3: classic ROP attack surface (obfuscated vs unobfuscated)";
      ex_paper = "PSR obfuscates 98.04% of classic ROP gadgets on average";
      ex_run = Exp_security.fig3_classic_rop;
    };
    {
      ex_id = "fig4";
      ex_title = "Figure 4: brute-force attack surface (eliminated vs surviving)";
      ex_paper = "15.83% of gadgets remain viable for brute force on average";
      ex_run = Exp_security.fig4_brute_force_surface;
    };
    {
      ex_id = "table2";
      ex_title = "Table 2: brute-force simulation (Algorithm 1)";
      ex_paper = "6.5-6.9 params, ~87 bits, ~1e33-1e34 attempts: computationally infeasible";
      ex_run = Exp_security.table2_brute_force;
    };
    {
      ex_id = "fig5";
      ex_title = "Figure 5: JIT-ROP attack surface on PSR and HIPStR";
      ex_paper = "294 survive PSR, 267 flag the VM, ~27 avoid migration: execve infeasible";
      ex_run = Exp_security.fig5_jitrop;
    };
    {
      ex_id = "fig6";
      ex_title = "Figure 6: migration-safe basic blocks";
      ex_paper = "~78% of blocks migration-safe with on-demand migration (45% baseline)";
      ex_run = Exp_performance.fig6_migration_safety;
    };
    {
      ex_id = "fig7";
      ex_title = "Figure 7: entropy vs gadget-chain length";
      ex_paper = "Isomeron/het-ISA alone: 2^n; PSR-based systems saturate the 1024 cap";
      ex_run = Exp_security.fig7_entropy;
    };
    {
      ex_id = "fig8";
      ex_title = "Figure 8: tailored attacks vs diversification probability";
      ex_paper = "at p=1 HIPStR keeps ~2 gadgets while PSR+Isomeron keeps hundreds";
      ex_run = Exp_security.fig8_tailored;
    };
    {
      ex_id = "fig9";
      ex_title = "Figure 9: steady-state performance at PSR optimization levels";
      ex_paper = "O2 register cache +13%, register bias +5.5%, final overhead 13.14%";
      ex_run = Exp_performance.fig9_opt_levels;
    };
    {
      ex_id = "fig10";
      ex_title = "Figure 10: effect of additional stack memory (PSR-S8..S64)";
      ex_paper = "only 2.96% further drop at 64 KB frames (sparse frames are cheap)";
      ex_run = Exp_performance.fig10_stack_sizes;
    };
    {
      ex_id = "fig11";
      ex_title = "Figure 11: effect of RAT size on performance";
      ex_paper = "0.37% overhead at 32 entries; free at 512+";
      ex_run = Exp_performance.fig11_rat_sizes;
    };
    {
      ex_id = "fig12";
      ex_title = "Figure 12: migration overhead at random checkpoints";
      ex_paper = "909 us ARM->x86, 1.287 ms x86->ARM";
      ex_run = Exp_performance.fig12_migration_overhead;
    };
    {
      ex_id = "fig13";
      ex_title = "Figure 13: effect of code cache size on migration overhead";
      ex_paper = "no security-induced migrations once the cache holds the working set";
      ex_run = Exp_performance.fig13_cache_sizes;
    };
    {
      ex_id = "fig14";
      ex_title = "Figure 14: performance comparison with Isomeron";
      ex_paper = "HIPStR outperforms Isomeron by ~15.6% across diversification probabilities";
      ex_run = Exp_performance.fig14_vs_isomeron;
    };
    {
      ex_id = "ablation-pad";
      ex_title = "Ablation: randomization-pad size vs entropy (security side of Fig 10)";
      ex_paper = "2-16 pages of pad = 13-16 bits per relocated parameter (Section 5.1)";
      ex_run = Exp_security.ablation_pad_entropy;
    };
    {
      ex_id = "httpd";
      ex_title = "Section 7.1: the httpd case study (with a live exploit)";
      ex_paper = "99.7% obfuscated; 1.8e32 attempts; 84 JIT-ROP gadgets, 2 survive migration";
      ex_run = Exp_security.httpd_case_study;
    };
  ]

let find id = List.find_opt (fun e -> e.ex_id = id) all

(* The exact bytes run_and_print emits, as a string — so a parallel
   sweep can buffer per-experiment output and print it in registry
   order, byte-identical to the serial path. *)
let output_of e =
  let table = e.ex_run () in
  Printf.sprintf "\n%s\n%s\n%s(paper: %s)\n" e.ex_title
    (String.make (String.length e.ex_title) '=')
    (Hipstr_util.Table.render table)
    e.ex_paper

let run_and_print e = print_string (output_of e)

let run_many ?jobs es = Hipstr_cmp.Pool.map ?jobs output_of es
