module System = Hipstr.System
module Machine = Hipstr_machine.Machine
module Cpu = Hipstr_machine.Cpu
module Workloads = Hipstr_workloads.Workloads
module Surface = Hipstr_attacks.Surface
module Stats = Hipstr_util.Stats
open Hipstr_isa

type perf = {
  pf_cycles : float;
  pf_instructions : int;
  pf_calls : int;
  pf_returns : int;
  pf_seconds : float;
}

let run_workload ?cfg ?(seed = 1) ?(isa = Desc.Cisc) ~mode (w : Workloads.t) =
  let sys = System.of_fatbin ?cfg ~seed ~start_isa:isa ~mode (Workloads.fatbin w) in
  (match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | System.Shell_spawned -> failwith (w.w_name ^ ": unexpected shell")
  | System.Killed m -> failwith (w.w_name ^ ": killed: " ^ m)
  | System.Out_of_fuel -> failwith (w.w_name ^ ": out of fuel"));
  let m = System.machine sys in
  let p = (Machine.cpu m).Cpu.perf in
  ( sys,
    {
      pf_cycles = Cpu.cycles p;
      pf_instructions = p.instructions;
      pf_calls = p.calls;
      pf_returns = p.returns;
      pf_seconds = Machine.seconds m;
    } )

let perf_now sys =
  let m = System.machine sys in
  let p = (Machine.cpu m).Cpu.perf in
  {
    pf_cycles = Cpu.cycles p;
    pf_instructions = p.instructions;
    pf_calls = p.calls;
    pf_returns = p.returns;
    pf_seconds = Machine.seconds m;
  }

(* The baseline memo caches are shared across experiments — and, when
   a sweep runs under Cmp.Pool, across domains. Computing under the
   lock makes each baseline run exactly once process-wide, so a
   parallel sweep performs the identical set of simulations (and
   hence identical obs totals) as a serial one. *)
let memo mu cache key compute =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt cache key with
      | Some v -> v
      | None ->
        let v = compute () in
        Hashtbl.replace cache key v;
        v)

let native_cache : (string, perf) Hashtbl.t = Hashtbl.create 16
let native_mu = Mutex.create ()

let native_perf (w : Workloads.t) =
  memo native_mu native_cache w.w_name (fun () ->
      let _, p = run_workload ~mode:System.Native w in
      p)

let relative ~native p = native.pf_cycles /. p.pf_cycles

let run_steady ?cfg ?(seed = 1) ?(isa = Desc.Cisc) ~mode (w : Workloads.t) =
  let warmup = max 1000 ((native_perf w).pf_instructions / 4) in
  let sys = System.of_fatbin ?cfg ~seed ~start_isa:isa ~mode (Workloads.fatbin w) in
  (match System.run sys ~fuel:warmup with
  | System.Out_of_fuel -> ()
  | System.Finished _ -> () (* tiny program: whole run is the window *)
  | o ->
    failwith
      (w.w_name ^ ": warmup stopped: "
      ^ (match o with System.Killed m -> m | _ -> "shell")));
  let before = perf_now sys in
  let mig_before = System.security_migrations sys in
  (match System.run sys ~fuel:(3 * w.w_fuel) with
  | System.Finished _ -> ()
  | System.Out_of_fuel -> failwith (w.w_name ^ ": out of fuel (steady)")
  | System.Killed m -> failwith (w.w_name ^ ": killed (steady): " ^ m)
  | System.Shell_spawned -> failwith (w.w_name ^ ": shell"));
  let after = perf_now sys in
  ( sys,
    {
      pf_cycles = after.pf_cycles -. before.pf_cycles;
      pf_instructions = after.pf_instructions - before.pf_instructions;
      pf_calls = after.pf_calls - before.pf_calls;
      pf_returns = after.pf_returns - before.pf_returns;
      pf_seconds = after.pf_seconds -. before.pf_seconds;
    },
    System.security_migrations sys - mig_before )

let native_steady_cache : (string, perf) Hashtbl.t = Hashtbl.create 16
let native_steady_mu = Mutex.create ()

let native_steady (w : Workloads.t) =
  memo native_steady_mu native_steady_cache w.w_name (fun () ->
      let _, p, _ = run_steady ~mode:System.Native w in
      p)

let surface_cache : (string, Surface.report) Hashtbl.t = Hashtbl.create 16
let surface_mu = Mutex.create ()

let surface_of (w : Workloads.t) =
  memo surface_mu surface_cache w.w_name (fun () ->
      Surface.analyze ~seed:1 ~name:w.w_name (Workloads.fatbin w) Desc.Cisc)

let spec_workloads = Workloads.all
let with_httpd = Workloads.all @ [ Workloads.httpd ]

let pct = Stats.percent
let big = Stats.human_big
let f2 v = Printf.sprintf "%.2f" v
