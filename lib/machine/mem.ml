module W32 = Hipstr_util.Wrap32

exception Fault of int

exception Cstring_unterminated of int

exception Bad_span of int * int

(* A watched span of the address space with a write generation. The
   decode cache keys predecoded blocks to the generation their bytes
   were read under; any write landing in the region bumps it, so a
   stale block is detectable with one integer compare. Regions are
   few (the two code sections and the two code-cache regions), fixed
   at registration, disjoint, and kept sorted by [r_lo] so the write
   hook can stop at the first region starting above the address. *)
type region = { r_lo : int; r_hi : int; mutable r_gen : int }

type t = { bytes : Bytes.t; size : int; mutable regions : region array }

let create size = { bytes = Bytes.make size '\000'; size; regions = [||] }

let size t = t.size

let watch t ~lo ~hi =
  if lo < 0 || hi > t.size || lo >= hi then invalid_arg "Mem.watch: bad region bounds";
  match Array.find_opt (fun r -> r.r_lo = lo && r.r_hi = hi) t.regions with
  | Some r -> r
  | None ->
    if Array.exists (fun r -> lo < r.r_hi && r.r_lo < hi) t.regions then
      invalid_arg "Mem.watch: overlapping region";
    let r = { r_lo = lo; r_hi = hi; r_gen = 0 } in
    let rs = Array.append t.regions [| r |] in
    Array.sort (fun a b -> compare a.r_lo b.r_lo) rs;
    t.regions <- rs;
    r

let generation r = r.r_gen

let region_lo r = r.r_lo
let region_hi r = r.r_hi

let region_of t a =
  let rec go i =
    if i >= Array.length t.regions then None
    else
      let r = Array.unsafe_get t.regions i in
      if a < r.r_lo then None else if a < r.r_hi then Some r else go (i + 1)
  in
  go 0

(* The code-region write hook: bump the generation of the region
   containing [a], if any. Regions are sorted and disjoint, so the
   scan exits at the first region starting above [a]; with the four
   standard regions a stack or heap write costs at most three
   compares on top of the store itself. *)
let touch t a =
  let rs = t.regions in
  let n = Array.length rs in
  let rec go i =
    if i < n then begin
      let r = Array.unsafe_get rs i in
      if a < r.r_lo then ()
      else if a < r.r_hi then r.r_gen <- r.r_gen + 1
      else go (i + 1)
    end
  in
  go 0

(* Bump every region overlapping [lo, hi] (inclusive), each once. *)
let touch_range t lo hi =
  let rs = t.regions in
  let n = Array.length rs in
  let rec go i =
    if i < n then begin
      let r = Array.unsafe_get rs i in
      if hi < r.r_lo then ()
      else begin
        if lo < r.r_hi then r.r_gen <- r.r_gen + 1;
        go (i + 1)
      end
    end
  in
  go 0

let check t a = if a < 0 || a >= t.size then raise (Fault a)

(* Unchecked byte accessors: callers must have span-checked already
   (the word paths below, and the decode reader after its own bounds
   test). [unsafe_write8] still runs the write hook — bypassing it
   would let a code write slip past the decode cache. *)
let unsafe_read8 t a = Char.code (Bytes.unsafe_get t.bytes a)

let unsafe_write8 t a v =
  Bytes.unsafe_set t.bytes a (Char.unsafe_chr (v land 0xFF));
  touch t a

let read8 t a =
  check t a;
  unsafe_read8 t a

let write8 t a v =
  check t a;
  unsafe_write8 t a v

(* Out-of-bounds probe: [-1] instead of a fault, the contract the
   instruction decoders want ([-1 land 0xFF = 0xFF], so bytes past
   the edge of the address space decode as 0xFF exactly as the
   closure-based readers always made them). *)
let probe8 t a = if a < 0 || a >= t.size then -1 else unsafe_read8 t a

let reader t = probe8 t

(* Word accesses span-check once, then use the runtime's word
   load/store. [Bytes.get_int32_le] sign-extends through
   [Int32.to_int], which is exactly [W32]'s canonical signed form.
   The slow path re-runs the per-byte checks only to raise [Fault]
   with the same offending address as always. *)
let read32 t a =
  if a >= 0 && a + 3 < t.size then Int32.to_int (Bytes.get_int32_le t.bytes a)
  else begin
    check t a;
    check t (a + 3);
    assert false
  end

let write32 t a v =
  if a >= 0 && a + 3 < t.size then begin
    Bytes.set_int32_le t.bytes a (Int32.of_int (W32.unsigned v));
    touch_range t a (a + 3)
  end
  else begin
    check t a;
    check t (a + 3);
    assert false
  end

(* Span validation for the bulk accessors. The old per-endpoint
   [check] pair accepted a negative length outright (for [n <= 0]
   the second check probes [a + n - 1] *below* [a], which is still
   in bounds for most addresses) and then fell into the host's
   [Bytes] primitives — the same class of hole [read_cstring]'s
   [Cstring_unterminated] hardening closed for unterminated scans.
   [a > t.size - n] keeps the comparison overflow-safe. *)
let check_span t a n =
  if n < 0 || a < 0 || a > t.size - n then raise (Bad_span (a, n))

let blit_string t a s =
  let n = String.length s in
  check_span t a n;
  if n > 0 then begin
    Bytes.blit_string s 0 t.bytes a n;
    touch_range t a (a + n - 1)
  end

let write_string = blit_string

let read_string t a n =
  check_span t a n;
  if n = 0 then "" else Bytes.sub_string t.bytes a n

let read_cstring ?(limit = 4096) t a =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= limit then raise (Cstring_unterminated a)
    else
      let c = read8 t (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0
