module W32 = Hipstr_util.Wrap32

exception Fault of int

exception Cstring_unterminated of int

exception Bad_span of int * int

(* A watched span of the address space with a write generation. The
   decode cache keys predecoded blocks to the generation their bytes
   were read under; any write landing in the region bumps it, so a
   stale block is detectable with one integer compare. Alongside the
   region-wide counter each 64-byte page records the generation of
   the last write that touched it, so a block whose region moved on
   can still prove its own bytes untouched ({!span_clean}) instead of
   being re-decoded — without that, every stub patch the VM writes
   into a code cache would throw away every decoded block of the
   region. Regions are few (the two code sections and the two
   code-cache regions), fixed at registration, disjoint, and kept
   sorted by [r_lo] so the write hook can stop at the first region
   starting above the address. *)
let page_bits = 6

type region = {
  r_lo : int;
  r_hi : int;
  mutable r_gen : int;
  r_pages : int array; (* last-write generation per 64-byte page *)
}

type t = { bytes : Bytes.t; size : int; mutable regions : region array }

let create size = { bytes = Bytes.make size '\000'; size; regions = [||] }

let size t = t.size

let watch t ~lo ~hi =
  if lo < 0 || hi > t.size || lo >= hi then invalid_arg "Mem.watch: bad region bounds";
  match Array.find_opt (fun r -> r.r_lo = lo && r.r_hi = hi) t.regions with
  | Some r -> r
  | None ->
    if Array.exists (fun r -> lo < r.r_hi && r.r_lo < hi) t.regions then
      invalid_arg "Mem.watch: overlapping region";
    let npages = ((hi - 1) lsr page_bits) - (lo lsr page_bits) + 1 in
    let r = { r_lo = lo; r_hi = hi; r_gen = 0; r_pages = Array.make npages 0 } in
    let rs = Array.append t.regions [| r |] in
    Array.sort (fun a b -> compare a.r_lo b.r_lo) rs;
    t.regions <- rs;
    r

(* [@inline] so the decode cache's one-compare staleness fast path
   collapses to two loads and a compare inside the dispatch loops. *)
let[@inline] generation r = r.r_gen

let region_lo r = r.r_lo
let region_hi r = r.r_hi

(* Record a write to [lo, hi] (inclusive, clamped) in [r]'s page
   stamps under the already-bumped generation. *)
let stamp_pages r lo hi =
  let lo = if lo < r.r_lo then r.r_lo else lo in
  let hi = if hi >= r.r_hi then r.r_hi - 1 else hi in
  let base = r.r_lo lsr page_bits in
  for p = (lo lsr page_bits) - base to (hi lsr page_bits) - base do
    Array.unsafe_set r.r_pages p r.r_gen
  done

let rec pages_clean pages p p1 since =
  p > p1 || (Array.unsafe_get pages p <= since && pages_clean pages (p + 1) p1 since)

(* No write has touched [lo, hi) (clamped to the region) since
   generation [since]. *)
let span_clean r ~lo ~hi ~since =
  let lo = if lo < r.r_lo then r.r_lo else lo in
  let hi = if hi > r.r_hi then r.r_hi else hi in
  lo >= hi
  ||
  let base = r.r_lo lsr page_bits in
  pages_clean r.r_pages ((lo lsr page_bits) - base) (((hi - 1) lsr page_bits) - base) since

(* The scan loops below are top-level functions taking all their
   state as arguments: a local [let rec] capturing the surrounding
   bindings is a closure, and on this path — the write hook runs on
   every store — that was the hot loop's single biggest allocation
   (7 minor words per write). *)
let rec region_scan rs n a i =
  if i >= n then None
  else
    let r = Array.unsafe_get rs i in
    if a < r.r_lo then None else if a < r.r_hi then Some r else region_scan rs n a (i + 1)

let region_of t a = region_scan t.regions (Array.length t.regions) a 0

(* The code-region write hook: bump the generation of the region
   containing [a], if any. Regions are sorted and disjoint, so the
   scan exits at the first region starting above [a]; with the four
   standard regions a stack or heap write costs at most three
   compares on top of the store itself. *)
let rec touch_scan rs n a i =
  if i < n then begin
    let r = Array.unsafe_get rs i in
    if a < r.r_lo then ()
    else if a < r.r_hi then begin
      r.r_gen <- r.r_gen + 1;
      Array.unsafe_set r.r_pages ((a lsr page_bits) - (r.r_lo lsr page_bits)) r.r_gen
    end
    else touch_scan rs n a (i + 1)
  end

let touch t a =
  let rs = t.regions in
  touch_scan rs (Array.length rs) a 0

(* Bump every region overlapping [lo, hi] (inclusive), each once. *)
let rec touch_range_scan rs n lo hi i =
  if i < n then begin
    let r = Array.unsafe_get rs i in
    if hi < r.r_lo then ()
    else begin
      if lo < r.r_hi then begin
        r.r_gen <- r.r_gen + 1;
        stamp_pages r lo hi
      end;
      touch_range_scan rs n lo hi (i + 1)
    end
  end

let touch_range t lo hi =
  let rs = t.regions in
  touch_range_scan rs (Array.length rs) lo hi 0

let check t a = if a < 0 || a >= t.size then raise (Fault a)

(* Unchecked byte accessors: callers must have span-checked already
   (the word paths below, and the decode reader after its own bounds
   test). [unsafe_write8] still runs the write hook — bypassing it
   would let a code write slip past the decode cache. *)
let unsafe_read8 t a = Char.code (Bytes.unsafe_get t.bytes a)

let unsafe_write8 t a v =
  Bytes.unsafe_set t.bytes a (Char.unsafe_chr (v land 0xFF));
  touch t a

let read8 t a =
  check t a;
  unsafe_read8 t a

let write8 t a v =
  check t a;
  unsafe_write8 t a v

(* Out-of-bounds probe: [-1] instead of a fault, the contract the
   instruction decoders want ([-1 land 0xFF = 0xFF], so bytes past
   the edge of the address space decode as 0xFF exactly as the
   closure-based readers always made them). *)
let probe8 t a = if a < 0 || a >= t.size then -1 else unsafe_read8 t a

let reader t = probe8 t

(* Word load/store composed from unsafe byte accesses. The runtime's
   [Bytes.get_int32_le]/[set_int32_le] primitives traffic in boxed
   [int32] values — three minor words per guest load on a non-flambda
   build, the second-largest allocation source the hot loop had — so
   the word accessors compose the value from four byte reads and
   sign-extend manually, which is bit-for-bit what
   [Int32.to_int (Bytes.get_int32_le ...)] produced. Callers have
   bounds-checked [a .. a+3]. *)
let get32 b a =
  let v =
    Char.code (Bytes.unsafe_get b a)
    lor (Char.code (Bytes.unsafe_get b (a + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get b (a + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (a + 3)) lsl 24)
  in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let set32 b a v =
  let u = v land 0xFFFFFFFF in
  Bytes.unsafe_set b a (Char.unsafe_chr (u land 0xFF));
  Bytes.unsafe_set b (a + 1) (Char.unsafe_chr ((u lsr 8) land 0xFF));
  Bytes.unsafe_set b (a + 2) (Char.unsafe_chr ((u lsr 16) land 0xFF));
  Bytes.unsafe_set b (a + 3) (Char.unsafe_chr ((u lsr 24) land 0xFF))

(* Word accesses span-check once, then load/store through the unboxed
   word helpers. The slow path re-runs the per-byte checks only to
   raise [Fault] with the same offending address as always. *)
let read32 t a =
  if a >= 0 && a + 3 < t.size then get32 t.bytes a
  else begin
    check t a;
    check t (a + 3);
    assert false
  end

let write32 t a v =
  if a >= 0 && a + 3 < t.size then begin
    set32 t.bytes a v;
    touch_range t a (a + 3)
  end
  else begin
    check t a;
    check t (a + 3);
    assert false
  end

(* Unchecked word accessors over the backing arena: callers must hold
   a proof that [a, a+3] is in bounds — a span already validated with
   [check_span], or a region whose registration bounds cover the
   access ([watch] rejects out-of-range regions at creation). Like
   [unsafe_write8], the write still runs the region hook. *)
let unsafe_read32 t a = get32 t.bytes a

let unsafe_write32 t a v =
  set32 t.bytes a v;
  touch_range t a (a + 3)

(* Span validation for the bulk accessors. The old per-endpoint
   [check] pair accepted a negative length outright (for [n <= 0]
   the second check probes [a + n - 1] *below* [a], which is still
   in bounds for most addresses) and then fell into the host's
   [Bytes] primitives — the same class of hole [read_cstring]'s
   [Cstring_unterminated] hardening closed for unterminated scans.
   [a > t.size - n] keeps the comparison overflow-safe. *)
let check_span t a n =
  if n < 0 || a < 0 || a > t.size - n then raise (Bad_span (a, n))

let blit_string t a s =
  let n = String.length s in
  check_span t a n;
  if n > 0 then begin
    Bytes.blit_string s 0 t.bytes a n;
    touch_range t a (a + n - 1)
  end

let write_string = blit_string

let read_string t a n =
  check_span t a n;
  if n = 0 then "" else Bytes.sub_string t.bytes a n

let read_cstring ?(limit = 4096) t a =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= limit then raise (Cstring_unterminated a)
    else
      let c = read8 t (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0
