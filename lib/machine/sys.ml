type outcome = Continue | Halt_exit of int | Halt_shell

type t = {
  mutable brk : int;
  mutable output : int list;
  mutable shell : (int * int * int) option;
  mutable exit_code : int option;
}

let sys_exit = 1
let sys_brk = 3
let sys_print_int = 4
let sys_execve = 11

let create () = { brk = Layout.heap_base; output = []; shell = None; exit_code = None }

let output t = List.rev t.output

let handle t ~number ~args:(a1, a2, a3) =
  if number = sys_exit then begin
    t.exit_code <- Some a1;
    (0, Halt_exit a1)
  end
  else if number = sys_brk then begin
    let old = t.brk in
    let requested = max 0 a1 in
    if old + requested > Layout.heap_limit then (-1, Continue)
    else begin
      t.brk <- old + requested;
      (old, Continue)
    end
  end
  else if number = sys_print_int then begin
    t.output <- a1 :: t.output;
    (0, Continue)
  end
  else if number = sys_execve then begin
    t.shell <- Some (a1, a2, a3);
    (0, Halt_shell)
  end
  else (-1, Continue)

(* --- snapshot ------------------------------------------------------ *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "OS";
  Wire.int w t.brk;
  Wire.list w Wire.int t.output;
  Wire.option w
    (fun w (a, b, c) ->
      Wire.int w a;
      Wire.int w b;
      Wire.int w c)
    t.shell;
  Wire.option w Wire.int t.exit_code

let restore t r =
  Wire.expect_tag r "OS";
  t.brk <- Wire.r_int r;
  t.output <- Wire.r_list r Wire.r_int;
  t.shell <-
    Wire.r_option r (fun r ->
        let a = Wire.r_int r in
        let b = Wire.r_int r in
        let c = Wire.r_int r in
        (a, b, c));
  t.exit_code <- Wire.r_option r Wire.r_int
