type t = {
  line_bits : int;
  nsets : int;
  set_mask : int; (* nsets - 1 when nsets is a power of two, else -1 *)
  assoc : int;
  tags : int array; (* nsets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  miss_penalty : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  (* Last-access memo: the line and tag-array index of the most recent
     hit or install. Consecutive probes to the same line — the common
     case for the icache, where a basic block's instructions share a
     64-byte line — skip the set scan. Model-invisible: the memoised
     path performs exactly the clock tick, stamp refresh and hit count
     the scan would have, and tags only change on a miss install,
     where the memo is re-pointed, or on [flush], where it is
     cleared. *)
  mutable last_line : int;
  mutable last_idx : int;
}

let log2i n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(line = 64) ~size_kb ~assoc ~miss_penalty () =
  let nlines = max assoc (size_kb * 1024 / line) in
  let nsets = max 1 (nlines / assoc) in
  {
    line_bits = log2i line;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    stamps = Array.make (nsets * assoc) 0;
    miss_penalty;
    clock = 0;
    hits = 0;
    misses = 0;
    last_line = -1;
    last_idx = 0;
  }

(* One probe per retired instruction (icache) plus one per memory
   operand (dcache) makes this the hottest host function after the
   dispatcher, so the set index uses a mask whenever the geometry
   allows ([line] is non-negative by construction: it is a logical
   right shift) and the way scan is bounds-check-free ([set < nsets]
   and [i < assoc] keep every index inside [nsets * assoc]). *)
(* Top-level way scan (not a local [let rec], which would close over
   [tags]/[base] and allocate on every non-memoized probe). *)
let rec find_way tags base assoc line i =
  if i >= assoc then -1
  else if Array.unsafe_get tags (base + i) = line then i
  else find_way tags base assoc line (i + 1)

let access_scan t line =
  begin
    let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets in
    let base = set * t.assoc in
    let tags = t.tags in
    let i = find_way tags base t.assoc line 0 in
    if i >= 0 then begin
      Array.unsafe_set t.stamps (base + i) t.clock;
      t.hits <- t.hits + 1;
      t.last_line <- line;
      t.last_idx <- base + i;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      (* Evict the least recently used way. *)
      let stamps = t.stamps in
      let victim = ref 0 in
      for i = 1 to t.assoc - 1 do
        if Array.unsafe_get stamps (base + i) < Array.unsafe_get stamps (base + !victim) then
          victim := i
      done;
      Array.unsafe_set tags (base + !victim) line;
      Array.unsafe_set stamps (base + !victim) t.clock;
      t.last_line <- line;
      t.last_idx <- base + !victim;
      false
    end
  end

(* The memo fast path is a separate small wrapper so ocamlopt can
   inline it into the per-instruction probes; the scan stays
   out-of-line. *)
let[@inline] access t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  if line = t.last_line then begin
    (* memoised repeat of the previous hit/install: same work as the
       scan's hit arm, minus the scan *)
    Array.unsafe_set t.stamps t.last_idx t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else access_scan t line

let miss_penalty t = t.miss_penalty
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.last_line <- -1

(* --- snapshot ------------------------------------------------------ *)
(* The cache model is cycle-visible (miss penalties land in the guest
   clock), so a snapshot must carry the *exact* tag/stamp state: after
   a restore the hit/miss trajectory continues precisely where the
   saved run would have, including LRU victim choices, which read the
   historical stamps. Geometry is not serialized — it is a function of
   the create-time configuration — but the array lengths are checked
   so a snapshot from a differently-shaped cache is rejected. *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "CACHE";
  Wire.int_array w t.tags;
  Wire.int_array w t.stamps;
  Wire.int w t.clock;
  Wire.int w t.hits;
  Wire.int w t.misses;
  Wire.int w t.last_line;
  Wire.int w t.last_idx

let restore t r =
  Wire.expect_tag r "CACHE";
  let tags = Wire.r_int_array r in
  let stamps = Wire.r_int_array r in
  if Array.length tags <> Array.length t.tags || Array.length stamps <> Array.length t.stamps
  then Wire.corrupt "cache geometry mismatch: image has %d tags, this cache has %d"
      (Array.length tags) (Array.length t.tags);
  Array.blit tags 0 t.tags 0 (Array.length tags);
  Array.blit stamps 0 t.stamps 0 (Array.length stamps);
  t.clock <- Wire.r_int r;
  t.hits <- Wire.r_int r;
  t.misses <- Wire.r_int r;
  t.last_line <- Wire.r_int r;
  t.last_idx <- Wire.r_int r
