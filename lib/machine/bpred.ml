let table_size = 4096
let btb_size = 1024
let ras_depth = 32

type t = {
  counters : int array; (* 2-bit saturating *)
  btb : int array;
  ras : int array;
  mutable ras_top : int;
  mutable mispredicts : int;
  mutable lookups : int;
}

let create () =
  {
    counters = Array.make table_size 1;
    btb = Array.make btb_size (-1);
    ras = Array.make ras_depth (-1);
    ras_top = 0;
    mispredicts = 0;
    lookups = 0;
  }

let note t correct =
  t.lookups <- t.lookups + 1;
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let predict_cond t ~pc ~taken =
  let i = pc land (table_size - 1) in
  let predicted = t.counters.(i) >= 2 in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  note t (predicted = taken)

let predict_indirect t ~pc ~target =
  let i = pc land (btb_size - 1) in
  let predicted = t.btb.(i) in
  t.btb.(i) <- target;
  note t (predicted = target)

let push_ras t addr =
  t.ras.(t.ras_top mod ras_depth) <- addr;
  t.ras_top <- t.ras_top + 1

let predict_return t ~target =
  if t.ras_top = 0 then note t false
  else begin
    t.ras_top <- t.ras_top - 1;
    note t (t.ras.(t.ras_top mod ras_depth) = target)
  end

let mispredicts t = t.mispredicts
let lookups t = t.lookups

let flush t =
  Array.fill t.counters 0 table_size 1;
  Array.fill t.btb 0 btb_size (-1);
  Array.fill t.ras 0 ras_depth (-1);
  t.ras_top <- 0

let reset_stats t =
  t.mispredicts <- 0;
  t.lookups <- 0

(* --- snapshot ------------------------------------------------------ *)
(* Predictions are cycle-visible (mispredict penalties), so the whole
   structure is carried exactly: counters, BTB, RAS and the counters.
   The 2-bit counters travel as single bytes. *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "BPRED";
  Array.iter (fun c -> Wire.u8 w c) t.counters;
  Wire.int_array w t.btb;
  Wire.int_array w t.ras;
  Wire.int w t.ras_top;
  Wire.int w t.mispredicts;
  Wire.int w t.lookups

let restore t r =
  Wire.expect_tag r "BPRED";
  for i = 0 to table_size - 1 do
    t.counters.(i) <- Wire.r_u8 r
  done;
  let btb = Wire.r_int_array r in
  let ras = Wire.r_int_array r in
  if Array.length btb <> btb_size || Array.length ras <> ras_depth then
    Wire.corrupt "branch predictor geometry mismatch (btb %d, ras %d)" (Array.length btb)
      (Array.length ras);
  Array.blit btb 0 t.btb 0 btb_size;
  Array.blit ras 0 t.ras 0 ras_depth;
  t.ras_top <- Wire.r_int r;
  t.mispredicts <- Wire.r_int r;
  t.lookups <- Wire.r_int r
