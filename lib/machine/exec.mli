(** The fetch-decode-execute engine.

    One {!step} executes a single instruction of the active ISA
    against the CPU, memory, timing structures and OS, and reports
    whether control stays in simulated code or leaves it (trap). The
    PSR virtual machine drives this function directly so it can
    interpose on traps; native runs just loop it.

    When a Return Address Table is present ([rat <> None]) the machine
    models the paper's modified return macro-op: *every* return —
    including a stray 0xC3 reached mid-instruction by a gadget —
    translates its target through the RAT, and a miss traps to the
    translator. Without a RAT, returns jump directly (native mode). *)

type fault =
  | Bad_fetch of int  (** undecodable bytes at pc *)
  | Bad_access of int  (** memory access outside the address space *)
  | Cache_jump of int  (** indirect control transfer into a code-cache region, native mode *)

type trap =
  | Trap_stub of int  (** translated code hit an exit stub for this source address *)
  | Rat_miss of int  (** a return's source target had no RAT entry *)
  | Exit of int  (** program exited (syscall or fell off main) *)
  | Shell  (** execve reached: the attack goal *)
  | Fault of fault

type counters = {
  cn_instrs : Hipstr_obs.Obs.Metrics.counter;
  cn_faults : Hipstr_obs.Obs.Metrics.counter;
  cn_syscalls : Hipstr_obs.Obs.Metrics.counter;
}
(** Per-core observability counters, resolved once at machine
    creation so the per-instruction cost of disabled observability is
    a single branch. *)

type env = {
  cpu : Cpu.t;
  mem : Mem.t;
  reader : int -> int;
      (** preallocated decode reader over [mem] ({!Mem.reader}) — the
          hot path must not allocate a closure per instruction *)
  desc : Hipstr_isa.Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  os : Sys.t;
  dcode : Decode_cache.t option;
      (** predecoded-block cache for this ISA; [None] forces the
          per-instruction decode path (the [--no-decode-cache] escape
          hatch) *)
  obs : Hipstr_obs.Obs.t;
  ctrs : counters;
  packed : bool;
      (** retire from the packed flat [db_code] words; [false] is the
          [--no-packed] escape hatch taking the boxed [Minstr.t] path
          (the differential oracle). Bit-identical either way. *)
  q1 : int;
  q2 : int;
  qmul : int;
  qdiv : int;
      (** memoized [latency / throughput] quotients for the fixed
          latencies (1, 2, mul, div), in femtocycles
          ({!Cpu.fc_scale}): each retirement is one integer add, and
          the fold-back to float cycles is exact, so accounting is
          bit-identical across slow, cached and packed paths *)
  p_mispredict : int;
  p_icache_miss : int;
  p_dcache_miss : int;
      (** flat penalties, pre-scaled to femtocycles *)
}

type outcome = Running | Stopped of trap

val step : env -> outcome

val run : env -> fuel:int -> trap option
(** Step until something stops execution or [fuel] instructions have
    retired; [None] means fuel ran out. When [env.dcode] is present,
    execution dispatches whole predecoded basic blocks; results —
    architectural state, cycle floats, counters, faults — are
    bit-identical to the single-step path (see DESIGN.md,
    "Interpreter architecture"). *)

val string_of_trap : trap -> string

val decode : Hipstr_isa.Desc.which -> Mem.t -> int -> (Hipstr_isa.Minstr.t * int) option
(** Decode one instruction of the given ISA from simulated memory. *)
