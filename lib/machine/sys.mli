(** The simulated operating-system surface.

    Four syscalls are enough for the workloads and the attacks:

    - [1] exit: terminate with the code in the first argument.
    - [3] brk: extend the heap by the first argument bytes; returns
      the old break (a bump allocator, never freed).
    - [4] print_int: append the first argument to the output trace.
      Workload outputs are compared across native/PSR/HIPStR runs
      through this trace.
    - [11] execve: the attack goal. Records that a shell was spawned
      along with the argument registers, and halts. Mirrors the
      paper's four-gadget [execve()] shellcode target.

    Conventions: the syscall number is in [ax]/[r0] and arguments in
    [bx,cx,dx]/[r1-r3]; the result returns in [ax]/[r0]. *)

type outcome = Continue | Halt_exit of int | Halt_shell

type t = {
  mutable brk : int;
  mutable output : int list;  (** reversed print_int trace *)
  mutable shell : (int * int * int) option;  (** execve argument registers *)
  mutable exit_code : int option;
}

val create : unit -> t

val output : t -> int list
(** The print trace in program order. *)

val handle : t -> number:int -> args:int * int * int -> int * outcome
(** [handle os ~number ~args] performs the syscall; returns the value
    for the result register and what the machine should do next.
    Unknown syscall numbers return [-1] and continue (as ENOSYS). *)

val sys_exit : int
val sys_brk : int
val sys_print_int : int
val sys_execve : int

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the OS surface: break, output trace, shell/exit state
    (snapshots). *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this OS state from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt on a malformed image. *)
