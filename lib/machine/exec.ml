open Hipstr_isa
module W32 = Hipstr_util.Wrap32
module Obs = Hipstr_obs.Obs

type fault = Bad_fetch of int | Bad_access of int | Cache_jump of int

type trap = Trap_stub of int | Rat_miss of int | Exit of int | Shell | Fault of fault

type counters = {
  cn_instrs : Obs.Metrics.counter;
  cn_faults : Obs.Metrics.counter;
  cn_syscalls : Obs.Metrics.counter;
}

type env = {
  cpu : Cpu.t;
  mem : Mem.t;
  reader : int -> int;  (** preallocated decode reader over [mem] *)
  desc : Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  os : Sys.t;
  dcode : Decode_cache.t option;
  obs : Obs.t;
  ctrs : counters;
}

type outcome = Running | Stopped of trap

let string_of_trap = function
  | Trap_stub a -> Printf.sprintf "trap-stub(0x%x)" a
  | Rat_miss a -> Printf.sprintf "rat-miss(0x%x)" a
  | Exit c -> Printf.sprintf "exit(%d)" c
  | Shell -> "shell-spawned"
  | Fault (Bad_fetch a) -> Printf.sprintf "fault: bad fetch at 0x%x" a
  | Fault (Bad_access a) -> Printf.sprintf "fault: bad access at 0x%x" a
  | Fault (Cache_jump a) -> Printf.sprintf "fault: indirect jump into code cache 0x%x" a

let decode_with ~read which addr =
  match which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

let decode which mem addr = decode_with ~read:(Mem.reader mem) which addr

exception Stop of trap

let charge env lat = env.cpu.perf.cycles <- env.cpu.perf.cycles +. (lat /. env.core.throughput)

let charge_flat env lat = env.cpu.perf.cycles <- env.cpu.perf.cycles +. lat

let dcache_access env addr =
  if not (Cache.access env.dcache addr) then
    charge_flat env (float_of_int env.core.dcache_miss_penalty)

let read_mem32 env addr =
  dcache_access env addr;
  env.cpu.perf.loads <- env.cpu.perf.loads + 1;
  Mem.read32 env.mem addr

let write_mem32 env addr v =
  dcache_access env addr;
  env.cpu.perf.stores <- env.cpu.perf.stores + 1;
  Mem.write32 env.mem addr v

let rval env = function
  | Minstr.Reg r -> env.cpu.regs.(r)
  | Minstr.Imm k -> k
  | Minstr.Mem { base; disp } -> read_mem32 env (env.cpu.regs.(base) + disp)

let wval env op v =
  match op with
  | Minstr.Reg r -> env.cpu.regs.(r) <- v
  | Minstr.Mem { base; disp } -> write_mem32 env (env.cpu.regs.(base) + disp) v
  | Minstr.Imm _ -> raise (Stop (Fault (Bad_fetch env.cpu.pc)))

let set_zs env v =
  env.cpu.flags.zf <- v = 0;
  env.cpu.flags.sf <- v < 0

let eval_cond env (c : Minstr.cond) =
  let f = env.cpu.flags in
  match c with
  | Eq -> f.zf
  | Ne -> not f.zf
  | Lt -> f.sf <> f.vf
  | Ge -> f.sf = f.vf
  | Gt -> (not f.zf) && f.sf = f.vf
  | Le -> f.zf || f.sf <> f.vf
  | Ult -> f.cf
  | Uge -> not f.cf

let apply_binop env (op : Minstr.binop) a b =
  let f = env.cpu.flags in
  let r =
    match op with
    | Add ->
      f.cf <- W32.carry_add a b;
      f.vf <- W32.overflow_add a b;
      W32.add a b
    | Sub ->
      f.cf <- W32.borrow_sub a b;
      f.vf <- W32.overflow_sub a b;
      W32.sub a b
    | Mul ->
      f.cf <- false;
      f.vf <- false;
      W32.mul a b
    | Divs ->
      f.cf <- false;
      f.vf <- false;
      W32.sdiv a b
    | Rems ->
      f.cf <- false;
      f.vf <- false;
      W32.srem a b
    | And ->
      f.cf <- false;
      f.vf <- false;
      W32.logand a b
    | Or ->
      f.cf <- false;
      f.vf <- false;
      W32.logor a b
    | Xor ->
      f.cf <- false;
      f.vf <- false;
      W32.logxor a b
    | Shl ->
      f.cf <- false;
      f.vf <- false;
      W32.shl a b
    | Shr ->
      f.cf <- false;
      f.vf <- false;
      W32.shr a b
    | Sar ->
      f.cf <- false;
      f.vf <- false;
      W32.sar a b
  in
  set_zs env r;
  r

let binop_latency env : Minstr.binop -> float = function
  | Mul -> float_of_int env.core.mul_latency
  | Divs | Rems -> float_of_int env.core.div_latency
  | Add | Sub | And | Or | Xor | Shl | Shr | Sar -> 1.

let push env v =
  let sp = env.desc.sp in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) - 4;
  write_mem32 env env.cpu.regs.(sp) v

let pop env =
  let sp = env.desc.sp in
  let v = read_mem32 env env.cpu.regs.(sp) in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) + 4;
  v

let goto env target = env.cpu.pc <- target

(* Every return consults the RAT when one is present (the modified
   return macro-op): the popped value is a source address that must be
   translated before control transfer. *)
let return_to env src_target =
  env.cpu.perf.returns <- env.cpu.perf.returns + 1;
  match env.rat with
  | None ->
    if Layout.in_cache_region src_target then raise (Stop (Fault (Cache_jump src_target)));
    if not (Bpred.predict_return env.bpred ~target:src_target) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env src_target
  | Some rat -> (
    charge_flat env 1. (* the extra RAT-lookup cycle *);
    match Rat.lookup rat src_target with
    | Some translated ->
      if not (Bpred.predict_return env.bpred ~target:translated) then
        charge_flat env (float_of_int env.core.mispredict_penalty);
      goto env translated
    | None -> raise (Stop (Rat_miss src_target)))

let do_call env ~ret_addr ~target =
  env.cpu.perf.calls <- env.cpu.perf.calls + 1;
  if env.desc.call_pushes_ret then push env ret_addr
  else
    (match env.desc.lr with
    | Some lr -> env.cpu.regs.(lr) <- ret_addr
    | None -> assert false);
  goto env target

let do_syscall env =
  env.cpu.perf.syscalls <- env.cpu.perf.syscalls + 1;
  if Obs.on env.obs then Obs.Metrics.incr env.ctrs.cn_syscalls;
  charge_flat env 40.;
  let number = env.cpu.regs.(0) in
  let args = (env.cpu.regs.(1), env.cpu.regs.(2), env.cpu.regs.(3)) in
  let result, outcome = Sys.handle env.os ~number ~args in
  env.cpu.regs.(0) <- result;
  match outcome with
  | Sys.Continue -> ()
  | Sys.Halt_exit c -> raise (Stop (Exit c))
  | Sys.Halt_shell -> raise (Stop Shell)

let exec env (i : Minstr.t) len =
  let pc = env.cpu.pc in
  let next = pc + len in
  match i with
  | Nop ->
    charge env 1.;
    goto env next
  | Mov (d, s) ->
    charge env 1.;
    let v = rval env s in
    wval env d v;
    goto env next
  | Lea (d, b, k) ->
    charge env 1.;
    env.cpu.regs.(d) <- W32.add env.cpu.regs.(b) k;
    goto env next
  | Binop (op, d, s) ->
    charge env (binop_latency env op);
    let a = rval env d in
    let b = rval env s in
    wval env d (apply_binop env op a b);
    goto env next
  | Cmp (a, b) ->
    charge env 1.;
    let va = rval env a in
    let vb = rval env b in
    let f = env.cpu.flags in
    f.cf <- W32.borrow_sub va vb;
    f.vf <- W32.overflow_sub va vb;
    set_zs env (W32.sub va vb);
    goto env next
  | Push s ->
    charge env 1.;
    let v = rval env s in
    push env v;
    goto env next
  | Pop d ->
    charge env 1.;
    let v = pop env in
    wval env d v;
    goto env next
  | Jmp t ->
    charge env 1.;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    goto env t
  | Jcc (c, t) ->
    charge env 1.;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    let taken = eval_cond env c in
    if not (Bpred.predict_cond env.bpred ~pc ~taken) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env (if taken then t else next)
  | Jmpr s ->
    charge env 1.;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env t
  | Call t ->
    charge env 2.;
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Callr s ->
    charge env 2.;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Ret ->
    charge env 2.;
    let v = pop env in
    return_to env v
  | Retr r ->
    charge env 2.;
    return_to env env.cpu.regs.(r)
  | Retrat s ->
    charge env 2.;
    let v = rval env s in
    return_to env v
  | Callrat { target; src_ret } ->
    charge env 2.;
    (match env.rat with
    | Some rat -> Rat.insert rat ~src:src_ret ~translated:next
    | None -> ());
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:src_ret ~target
  | Syscall ->
    do_syscall env;
    goto env next
  | Trap a -> raise (Stop (Trap_stub a))

let isa_label env = match env.desc.which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let stopped env t =
  (match t with
  | Fault _ ->
    if Obs.on env.obs then begin
      Obs.Metrics.incr env.ctrs.cn_faults;
      Obs.emit env.obs (Obs.Trace.Fault { isa = isa_label env; reason = string_of_trap t })
    end
  | Trap_stub _ | Rat_miss _ | Exit _ | Shell -> ());
  Stopped t

(* Retire one already-decoded instruction: counters, execution, trap
   conversion. Shared verbatim by the single-step and cached-block
   paths so both count and fault identically. *)
let exec_one env (i : Minstr.t) len =
  env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
  if Obs.on env.obs then Obs.Metrics.incr env.ctrs.cn_instrs;
  try
    exec env i len;
    Running
  with
  | Stop t -> stopped env t
  | Mem.Fault a -> stopped env (Fault (Bad_access a))

let icache_probe env pc =
  if not (Cache.access env.icache pc) then
    charge_flat env (float_of_int env.core.icache_miss_penalty)

let step env =
  let pc = env.cpu.pc in
  if pc = Layout.exit_sentinel then Stopped (Exit env.cpu.regs.(env.desc.ret_reg))
  else begin
    icache_probe env pc;
    match decode_with ~read:env.reader env.desc.which pc with
    | None -> stopped env (Fault (Bad_fetch pc))
    | Some (i, len) -> exec_one env i len
  end

let run_slow env ~fuel =
  let rec go n =
    if n <= 0 then None
    else
      match step env with
      | Running -> go (n - 1)
      | Stopped t -> Some t
  in
  go fuel

(* The cached fast path. Per retired instruction it performs exactly
   the same model-visible work as [step] — fuel check, exit-sentinel
   check at block boundaries (a cached block can never contain the
   sentinel: every watched region lies above it, and only control
   transfers, which end blocks, can move pc there), icache probe,
   counters, execution — with the per-instruction byte decode replaced
   by an array read plus one generation compare. A stale block (some
   write landed in its region since decode, possibly by the previous
   instruction of this very block) is dropped and re-looked-up before
   anything is charged, so self-modifying code sees exactly the
   semantics of per-instruction decode. *)
let run_cached env dc ~fuel =
  let open Decode_cache in
  let rec dispatch n =
    if n <= 0 then None
    else
      let pc = env.cpu.pc in
      if pc = Layout.exit_sentinel then Some (Exit env.cpu.regs.(env.desc.ret_reg))
      else
        match lookup dc pc with
        | Some b -> exec_block b 0 n
        | None -> (
          (* uncacheable address (outside watched regions, or no block
             forms): plain single step *)
          match step env with
          | Running -> dispatch (n - 1)
          | Stopped t -> Some t)
  and exec_block b k n =
    if n <= 0 then None
    else if stale b then begin
      drop dc b;
      dispatch n
    end
    else if k >= Array.length b.db_instrs then
      if b.db_bad then begin
        (* decode fails at [db_end], where pc now points: replicate the
           failed-decode step (probe, then fault) without re-decoding *)
        icache_probe env b.db_end;
        match stopped env (Fault (Bad_fetch b.db_end)) with
        | Stopped t -> Some t
        | Running -> assert false
      end
      else dispatch n
    else begin
      icache_probe env env.cpu.pc;
      match exec_one env (Array.unsafe_get b.db_instrs k) (Array.unsafe_get b.db_lens k) with
      | Running -> exec_block b (k + 1) (n - 1)
      | Stopped t -> Some t
    end
  in
  dispatch fuel

let run env ~fuel =
  match env.dcode with
  | Some dc -> run_cached env dc ~fuel
  | None -> run_slow env ~fuel
