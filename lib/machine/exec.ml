open Hipstr_isa
module W32 = Hipstr_util.Wrap32
module Obs = Hipstr_obs.Obs

type fault = Bad_fetch of int | Bad_access of int | Cache_jump of int

type trap = Trap_stub of int | Rat_miss of int | Exit of int | Shell | Fault of fault

type counters = {
  cn_instrs : Obs.Metrics.counter;
  cn_faults : Obs.Metrics.counter;
  cn_syscalls : Obs.Metrics.counter;
}

type env = {
  cpu : Cpu.t;
  mem : Mem.t;
  reader : int -> int;  (** preallocated decode reader over [mem] *)
  desc : Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  os : Sys.t;
  dcode : Decode_cache.t option;
  obs : Obs.t;
  ctrs : counters;
  packed : bool;
      (** retire from the packed [db_code] words; [false] is the
          [--no-packed] escape hatch taking the boxed [Minstr.t]
          path (the differential oracle) *)
  (* Memoized integer charges, in femtocycles ({!Cpu.fc_scale}):
     the [lat / throughput] quotients for the four latencies the
     decoder can produce, and the flat penalties. Each is converted
     exactly once per core (through {!Cpu.fc_quotient} — the same
     function the decode cache uses to bake charges into packed
     blocks), so per-retirement accounting is a single integer
     add. *)
  q1 : int;  (** 1 / throughput *)
  q2 : int;  (** 2 / throughput *)
  qmul : int;  (** mul_latency / throughput *)
  qdiv : int;  (** div_latency / throughput *)
  p_mispredict : int;
  p_icache_miss : int;
  p_dcache_miss : int;
}

type outcome = Running | Stopped of trap

let string_of_trap = function
  | Trap_stub a -> Printf.sprintf "trap-stub(0x%x)" a
  | Rat_miss a -> Printf.sprintf "rat-miss(0x%x)" a
  | Exit c -> Printf.sprintf "exit(%d)" c
  | Shell -> "shell-spawned"
  | Fault (Bad_fetch a) -> Printf.sprintf "fault: bad fetch at 0x%x" a
  | Fault (Bad_access a) -> Printf.sprintf "fault: bad access at 0x%x" a
  | Fault (Cache_jump a) -> Printf.sprintf "fault: indirect jump into code cache 0x%x" a

let decode_with ~read which addr =
  match which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

let decode which mem addr = decode_with ~read:(Mem.reader mem) which addr

exception Stop of trap

(* The syscall service fee and the RAT-lookup cycle are whole cycles,
   so their femtocycle forms are exact constants. *)
let fc_syscall = 40 * Cpu.fc_scale
let fc_rat_lookup = Cpu.fc_scale

(* Charge a memoized femtocycle amount (see the [q*]/[p_*] fields of
   [env] and {!Cpu.fc_scale}): one integer add on a mutable int
   field — no float work, no allocation, and an exact fold-back to
   the canonical float cycle count at every boundary. *)
let charge env fc =
  let p = env.cpu.perf in
  p.cycles_fc <- p.cycles_fc + fc

let dcache_access env addr =
  if not (Cache.access env.dcache addr) then charge env env.p_dcache_miss

let[@inline] icache_probe env pc =
  if not (Cache.access env.icache pc) then charge env env.p_icache_miss

let read_mem32 env addr =
  dcache_access env addr;
  env.cpu.perf.loads <- env.cpu.perf.loads + 1;
  Mem.read32 env.mem addr

let write_mem32 env addr v =
  dcache_access env addr;
  env.cpu.perf.stores <- env.cpu.perf.stores + 1;
  Mem.write32 env.mem addr v

let rval env = function
  | Minstr.Reg r -> env.cpu.regs.(r)
  | Minstr.Imm k -> k
  | Minstr.Mem { base; disp } -> read_mem32 env (env.cpu.regs.(base) + disp)

let wval env op v =
  match op with
  | Minstr.Reg r -> env.cpu.regs.(r) <- v
  | Minstr.Mem { base; disp } -> write_mem32 env (env.cpu.regs.(base) + disp) v
  | Minstr.Imm _ -> raise (Stop (Fault (Bad_fetch env.cpu.pc)))

let set_zs env v =
  env.cpu.flags.zf <- v = 0;
  env.cpu.flags.sf <- v < 0

(* Flag comparisons use [==]/[!=]: on [bool] (an immediate type)
   physical equality coincides with structural equality and compiles
   to one compare, where [=] would call the generic [caml_equal] on
   every conditional branch. *)
let eval_cond env (c : Minstr.cond) =
  let f = env.cpu.flags in
  match c with
  | Eq -> f.zf
  | Ne -> not f.zf
  | Lt -> f.sf != f.vf
  | Ge -> f.sf == f.vf
  | Gt -> (not f.zf) && f.sf == f.vf
  | Le -> f.zf || f.sf != f.vf
  | Ult -> f.cf
  | Uge -> not f.cf

let apply_binop env (op : Minstr.binop) a b =
  let f = env.cpu.flags in
  let r =
    match op with
    | Add ->
      f.cf <- W32.carry_add a b;
      f.vf <- W32.overflow_add a b;
      W32.add a b
    | Sub ->
      f.cf <- W32.borrow_sub a b;
      f.vf <- W32.overflow_sub a b;
      W32.sub a b
    | Mul ->
      f.cf <- false;
      f.vf <- false;
      W32.mul a b
    | Divs ->
      f.cf <- false;
      f.vf <- false;
      W32.sdiv a b
    | Rems ->
      f.cf <- false;
      f.vf <- false;
      W32.srem a b
    | And ->
      f.cf <- false;
      f.vf <- false;
      W32.logand a b
    | Or ->
      f.cf <- false;
      f.vf <- false;
      W32.logor a b
    | Xor ->
      f.cf <- false;
      f.vf <- false;
      W32.logxor a b
    | Shl ->
      f.cf <- false;
      f.vf <- false;
      W32.shl a b
    | Shr ->
      f.cf <- false;
      f.vf <- false;
      W32.shr a b
    | Sar ->
      f.cf <- false;
      f.vf <- false;
      W32.sar a b
  in
  set_zs env r;
  r

(* Per-op charge: mul/div pay their configured latencies (over
   throughput), everything else one issue slot. *)
let binop_charge env : Minstr.binop -> int = function
  | Mul -> env.qmul
  | Divs | Rems -> env.qdiv
  | Add | Sub | And | Or | Xor | Shl | Shr | Sar -> env.q1

let push env v =
  let sp = env.desc.sp in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) - 4;
  write_mem32 env env.cpu.regs.(sp) v

let pop env =
  let sp = env.desc.sp in
  let v = read_mem32 env env.cpu.regs.(sp) in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) + 4;
  v

let goto env target = env.cpu.pc <- target

(* Every return consults the RAT when one is present (the modified
   return macro-op): the popped value is a source address that must be
   translated before control transfer. *)
let return_to env src_target =
  env.cpu.perf.returns <- env.cpu.perf.returns + 1;
  match env.rat with
  | None ->
    if Layout.in_cache_region src_target then raise (Stop (Fault (Cache_jump src_target)));
    if not (Bpred.predict_return env.bpred ~target:src_target) then
      charge env env.p_mispredict;
    goto env src_target
  | Some rat ->
    charge env fc_rat_lookup (* the extra RAT-lookup cycle *);
    let translated = Rat.find_translated rat src_target in
    if translated >= 0 then begin
      if not (Bpred.predict_return env.bpred ~target:translated) then
        charge env env.p_mispredict;
      goto env translated
    end
    else raise (Stop (Rat_miss src_target))

let do_call env ~ret_addr ~target =
  env.cpu.perf.calls <- env.cpu.perf.calls + 1;
  if env.desc.call_pushes_ret then push env ret_addr
  else
    (match env.desc.lr with
    | Some lr -> env.cpu.regs.(lr) <- ret_addr
    | None -> assert false);
  goto env target

(* The per-run observability counters (instructions, syscalls) are
   batched: retirement only bumps the plain [perf] ints, and [run] /
   [step] deposit the deltas once at exit ([Obs.Metrics.add]), so
   [Obs.on] is consulted per run, not per instruction. *)
let do_syscall env =
  env.cpu.perf.syscalls <- env.cpu.perf.syscalls + 1;
  charge env fc_syscall;
  let number = env.cpu.regs.(0) in
  let args = (env.cpu.regs.(1), env.cpu.regs.(2), env.cpu.regs.(3)) in
  let result, outcome = Sys.handle env.os ~number ~args in
  env.cpu.regs.(0) <- result;
  match outcome with
  | Sys.Continue -> ()
  | Sys.Halt_exit c -> raise (Stop (Exit c))
  | Sys.Halt_shell -> raise (Stop Shell)

let exec env (i : Minstr.t) len =
  let pc = env.cpu.pc in
  let next = pc + len in
  match i with
  | Nop ->
    charge env env.q1;
    goto env next
  | Mov (d, s) ->
    charge env env.q1;
    let v = rval env s in
    wval env d v;
    goto env next
  | Lea (d, b, k) ->
    charge env env.q1;
    env.cpu.regs.(d) <- W32.add env.cpu.regs.(b) k;
    goto env next
  | Binop (op, d, s) ->
    charge env (binop_charge env op);
    let a = rval env d in
    let b = rval env s in
    wval env d (apply_binop env op a b);
    goto env next
  | Cmp (a, b) ->
    charge env env.q1;
    let va = rval env a in
    let vb = rval env b in
    let f = env.cpu.flags in
    f.cf <- W32.borrow_sub va vb;
    f.vf <- W32.overflow_sub va vb;
    set_zs env (W32.sub va vb);
    goto env next
  | Push s ->
    charge env env.q1;
    let v = rval env s in
    push env v;
    goto env next
  | Pop d ->
    charge env env.q1;
    let v = pop env in
    wval env d v;
    goto env next
  | Jmp t ->
    charge env env.q1;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    goto env t
  | Jcc (c, t) ->
    charge env env.q1;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    let taken = eval_cond env c in
    if not (Bpred.predict_cond env.bpred ~pc ~taken) then charge env env.p_mispredict;
    goto env (if taken then t else next)
  | Jmpr s ->
    charge env env.q1;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
    goto env t
  | Call t ->
    charge env env.q2;
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Callr s ->
    charge env env.q2;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Ret ->
    charge env env.q2;
    let v = pop env in
    return_to env v
  | Retr r ->
    charge env env.q2;
    return_to env env.cpu.regs.(r)
  | Retrat s ->
    charge env env.q2;
    let v = rval env s in
    return_to env v
  | Callrat { target; src_ret } ->
    charge env env.q2;
    (match env.rat with
    | Some rat -> Rat.insert rat ~src:src_ret ~translated:next
    | None -> ());
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:src_ret ~target
  | Syscall ->
    do_syscall env;
    goto env next
  | Trap a -> raise (Stop (Trap_stub a))

(* ------------------------------------------------------------------ *)
(* The flat packed dispatcher, fused with its block loop: retire
   instructions from a block's [db_code] words until the fuel runs
   out, the block goes stale, or its tail is reached. Per retired
   instruction it performs *exactly* the model-visible work of the
   unpacked loop — staleness check, icache probe, instruction
   counter, then [exec]'s semantics on the equivalent [Minstr.t]:
   same charge first, same operand-effect order (source reads before
   destination writes, destination-first for binop reads), same
   counters, same faults — switching on the packed tag instead of
   matching variant blocks, with operands read straight from the int
   array. Tag numbering is {!Packed}'s; the generic [*_g] arms
   rebuild operands from the kind bits via the same helpers'
   semantics. Fusing the match into the loop is the packed format's
   host-level payoff: the boxed oracle pays a dispatch call per
   instruction, the packed loop a direct self tail-call. Any change
   to [exec] MUST be mirrored here (and in the
   [exec_one]/[exec_block] retire paths); the packed-vs-unpacked
   differential suite exists to catch drift. *)

let pk_rval env k r v =
  if k = 1 then Array.unsafe_get env.cpu.regs r
  else if k = 2 then v
  else read_mem32 env (Array.unsafe_get env.cpu.regs r + v)

let pk_wval env k r v x =
  if k = 1 then Array.unsafe_set env.cpu.regs r x
  else if k = 3 then write_mem32 env (Array.unsafe_get env.cpu.regs r + v) x
  else raise (Stop (Fault (Bad_fetch env.cpu.pc)))

(* Loop result codes (plain ints so a block exit allocates nothing):
   0 = out of fuel, 1 = block stale, 2 = tail reached. The caller
   recovers the remaining fuel from the instruction-counter delta —
   the loop retires exactly one instruction per fuel unit consumed.
   Stop/Fault exceptions propagate to the caller's per-block handler,
   which applies the same conversion [exec_one] does. Top-level [let
   rec] with all state as arguments, not a local closure — the self
   tail-call must not allocate. *)
let rec packed_loop env (b : Decode_cache.block) code len k n =
  if n <= 0 then 0
  else if Decode_cache.stale b then 1
  else if k >= len then 2
  else begin
    let j = k lsl 2 in
    let pc = env.cpu.pc in
    icache_probe env pc;
    env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
    let m = Array.unsafe_get code j in
    let next = pc + ((m lsr 6) land 15) in
    (* the precomputed retirement charge (0 for Syscall/Trap, whose
       charging happens past this point), added before any operand
       effect — the same order as [exec]'s leading [charge] *)
    let p = env.cpu.perf in
    p.cycles_fc <- p.cycles_fc + Array.unsafe_get code (j + 3);
    let regs = env.cpu.regs in
    (match m land 63 with
    | 0 (* nop *) -> goto env next
    | 1 (* mov r,r *) ->
      Array.unsafe_set regs ((m lsr 18) land 15) (Array.unsafe_get regs ((m lsr 22) land 15));
      goto env next
    | 2 (* mov r,i *) ->
      Array.unsafe_set regs ((m lsr 18) land 15) (Array.unsafe_get code (j + 2));
      goto env next
    | 3 (* mov r,m *) ->
      let v =
        read_mem32 env (Array.unsafe_get regs ((m lsr 22) land 15) + Array.unsafe_get code (j + 2))
      in
      Array.unsafe_set regs ((m lsr 18) land 15) v;
      goto env next
    | 4 (* mov m,r *) ->
      let v = Array.unsafe_get regs ((m lsr 22) land 15) in
      write_mem32 env (Array.unsafe_get regs ((m lsr 18) land 15) + Array.unsafe_get code (j + 1)) v;
      goto env next
    | 5 (* mov m,i *) ->
      let v = Array.unsafe_get code (j + 2) in
      write_mem32 env (Array.unsafe_get regs ((m lsr 18) land 15) + Array.unsafe_get code (j + 1)) v;
      goto env next
    | 6 (* mov generic *) ->
      let v = pk_rval env ((m lsr 16) land 3) ((m lsr 22) land 15) (Array.unsafe_get code (j + 2)) in
      pk_wval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1)) v;
      goto env next
    | 7 (* lea *) ->
      Array.unsafe_set regs ((m lsr 18) land 15)
        (W32.add (Array.unsafe_get regs ((m lsr 22) land 15)) (Array.unsafe_get code (j + 1)));
      goto env next
    | 8 (* binop r,r *) ->
      let d = (m lsr 18) land 15 in
      let a = Array.unsafe_get regs d in
      let b = Array.unsafe_get regs ((m lsr 22) land 15) in
      Array.unsafe_set regs d
        (apply_binop env (Array.unsafe_get Minstr.all_binops ((m lsr 10) land 15)) a b);
      goto env next
    | 9 (* binop r,i *) ->
      let d = (m lsr 18) land 15 in
      let a = Array.unsafe_get regs d in
      let b = Array.unsafe_get code (j + 2) in
      Array.unsafe_set regs d
        (apply_binop env (Array.unsafe_get Minstr.all_binops ((m lsr 10) land 15)) a b);
      goto env next
    | 10 (* binop generic *) ->
      let k1 = (m lsr 14) land 3 and r1 = (m lsr 18) land 15 in
      let v1 = Array.unsafe_get code (j + 1) in
      let a = pk_rval env k1 r1 v1 in
      let b = pk_rval env ((m lsr 16) land 3) ((m lsr 22) land 15) (Array.unsafe_get code (j + 2)) in
      pk_wval env k1 r1 v1
        (apply_binop env (Array.unsafe_get Minstr.all_binops ((m lsr 10) land 15)) a b);
      goto env next
    | 11 (* cmp r,r *) ->
      let va = Array.unsafe_get regs ((m lsr 18) land 15) in
      let vb = Array.unsafe_get regs ((m lsr 22) land 15) in
      let f = env.cpu.flags in
      f.cf <- W32.borrow_sub va vb;
      f.vf <- W32.overflow_sub va vb;
      set_zs env (W32.sub va vb);
      goto env next
    | 12 (* cmp r,i *) ->
      let va = Array.unsafe_get regs ((m lsr 18) land 15) in
      let vb = Array.unsafe_get code (j + 2) in
      let f = env.cpu.flags in
      f.cf <- W32.borrow_sub va vb;
      f.vf <- W32.overflow_sub va vb;
      set_zs env (W32.sub va vb);
      goto env next
    | 13 (* cmp r,m *) ->
      let va = Array.unsafe_get regs ((m lsr 18) land 15) in
      let vb =
        read_mem32 env (Array.unsafe_get regs ((m lsr 22) land 15) + Array.unsafe_get code (j + 2))
      in
      let f = env.cpu.flags in
      f.cf <- W32.borrow_sub va vb;
      f.vf <- W32.overflow_sub va vb;
      set_zs env (W32.sub va vb);
      goto env next
    | 14 (* cmp generic *) ->
      let va =
        pk_rval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1))
      in
      let vb =
        pk_rval env ((m lsr 16) land 3) ((m lsr 22) land 15) (Array.unsafe_get code (j + 2))
      in
      let f = env.cpu.flags in
      f.cf <- W32.borrow_sub va vb;
      f.vf <- W32.overflow_sub va vb;
      set_zs env (W32.sub va vb);
      goto env next
    | 15 (* push r *) ->
      push env (Array.unsafe_get regs ((m lsr 18) land 15));
      goto env next
    | 16 (* push i *) ->
      push env (Array.unsafe_get code (j + 1));
      goto env next
    | 17 (* push generic *) ->
      let v =
        pk_rval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1))
      in
      push env v;
      goto env next
    | 18 (* pop r *) ->
      let v = pop env in
      Array.unsafe_set regs ((m lsr 18) land 15) v;
      goto env next
    | 19 (* pop generic *) ->
      let v = pop env in
      pk_wval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1)) v;
      goto env next
    | 20 (* jmp *) ->
      p.branches <- p.branches + 1;
      goto env (Array.unsafe_get code (j + 1))
    | 21 (* jcc *) ->
      p.branches <- p.branches + 1;
      let taken = eval_cond env (Array.unsafe_get Minstr.all_conds ((m lsr 10) land 15)) in
      if not (Bpred.predict_cond env.bpred ~pc ~taken) then charge env env.p_mispredict;
      goto env (if taken then Array.unsafe_get code (j + 1) else next)
    | 22 (* jmp *r *) ->
      p.indirects <- p.indirects + 1;
      let t = Array.unsafe_get regs ((m lsr 18) land 15) in
      if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
      if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
      goto env t
    | 23 (* jmp * generic *) ->
      p.indirects <- p.indirects + 1;
      let t =
        pk_rval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1))
      in
      if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
      if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
      goto env t
    | 24 (* call *) ->
      Bpred.push_ras env.bpred next;
      do_call env ~ret_addr:next ~target:(Array.unsafe_get code (j + 1))
    | 25 (* call *r *) ->
      p.indirects <- p.indirects + 1;
      let t = Array.unsafe_get regs ((m lsr 18) land 15) in
      if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
      if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
      Bpred.push_ras env.bpred next;
      do_call env ~ret_addr:next ~target:t
    | 26 (* call * generic *) ->
      p.indirects <- p.indirects + 1;
      let t =
        pk_rval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1))
      in
      if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
      if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then charge env env.p_mispredict;
      Bpred.push_ras env.bpred next;
      do_call env ~ret_addr:next ~target:t
    | 27 (* ret *) ->
      let v = pop env in
      return_to env v
    | 28 (* ret r *) -> return_to env (Array.unsafe_get regs ((m lsr 18) land 15))
    | 29 (* ret.rat r *) -> return_to env (Array.unsafe_get regs ((m lsr 18) land 15))
    | 30 (* ret.rat generic *) ->
      let v =
        pk_rval env ((m lsr 14) land 3) ((m lsr 18) land 15) (Array.unsafe_get code (j + 1))
      in
      return_to env v
    | 31 (* call.rat *) ->
      let src_ret = Array.unsafe_get code (j + 2) in
      (match env.rat with
      | Some rat -> Rat.insert rat ~src:src_ret ~translated:next
      | None -> ());
      Bpred.push_ras env.bpred next;
      do_call env ~ret_addr:src_ret ~target:(Array.unsafe_get code (j + 1))
    | 32 (* syscall *) ->
      do_syscall env;
      goto env next
    | 33 (* trap *) -> raise (Stop (Trap_stub (Array.unsafe_get code (j + 1))))
    | _ -> assert false);
    packed_loop env b code len (k + 1) (n - 1)
  end

let isa_label env = match env.desc.which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let stopped env t =
  (match t with
  | Fault _ ->
    if Obs.on env.obs then begin
      Obs.Metrics.incr env.ctrs.cn_faults;
      Obs.emit env.obs (Obs.Trace.Fault { isa = isa_label env; reason = string_of_trap t })
    end
  | Trap_stub _ | Rat_miss _ | Exit _ | Shell -> ());
  Stopped t

(* Retire one already-decoded instruction: counters, execution, trap
   conversion. Shared verbatim by the single-step and cached-block
   paths so both count and fault identically. (The observability
   instruction counter is batched — deposited from the perf delta at
   run exit — so retirement itself only bumps the plain int.) *)
let exec_one env (i : Minstr.t) len =
  env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
  try
    exec env i len;
    Running
  with
  | Stop t -> stopped env t
  | Mem.Fault a -> stopped env (Fault (Bad_access a))

(* The inter-block boundary gate, shared verbatim by the slow loop,
   the cached dispatcher and (through the dispatcher) every followed
   chain link. The order is load-bearing and must never be reordered
   by a fast path: fuel first (an exhausted run has to pause *before*
   inspecting pc — the quantum boundary is model-visible), then the
   exit sentinel, then execution at pc. The cached path additionally
   re-checks block staleness before every instruction; that check
   lives in [run_cached]'s block loops, after this gate, standing in
   for the byte re-decode the slow path does implicitly. *)
type gate = Out_of_fuel | At_exit | Proceed

let boundary_gate env n =
  if n <= 0 then Out_of_fuel
  else if env.cpu.pc = Layout.exit_sentinel then At_exit
  else Proceed

(* Decode and retire the instruction at pc. Callers must have passed
   [boundary_gate] (pc is not the sentinel, fuel remains). *)
let step_here env =
  let pc = env.cpu.pc in
  icache_probe env pc;
  match decode_with ~read:env.reader env.desc.which pc with
  | None -> stopped env (Fault (Bad_fetch pc))
  | Some (i, len) -> exec_one env i len

let step_gated env =
  match boundary_gate env 1 with
  | At_exit -> Stopped (Exit env.cpu.regs.(env.desc.ret_reg))
  | Proceed -> step_here env
  | Out_of_fuel -> assert false (* n = 1 *)

let run_slow env ~fuel =
  let rec go n =
    match boundary_gate env n with
    | Out_of_fuel -> None
    | At_exit -> Some (Exit env.cpu.regs.(env.desc.ret_reg))
    | Proceed -> ( match step_here env with Running -> go (n - 1) | Stopped t -> Some t)
  in
  go fuel

(* The cached fast path. Per retired instruction it performs exactly
   the same model-visible work as the slow loop — boundary gate (fuel,
   then exit sentinel: a cached block can never contain the sentinel,
   since every watched region lies above it and only control
   transfers, which end blocks, can move pc there), icache probe,
   counters, execution — with the per-instruction byte decode replaced
   by an array read plus one generation compare. A stale block (some
   write landed in its region since decode, possibly by the previous
   instruction of this very block) is dropped and re-looked-up before
   anything is charged, so self-modifying code sees exactly the
   semantics of per-instruction decode.

   Two block loops share the dispatch skeleton: [exec_un] retires
   from the boxed [db_instrs] (the [--no-packed] oracle), [exec_pk]
   from the packed [db_code] words via the flat dispatcher. Both
   inline [exec_one]'s retire sequence (instruction counter, execute,
   Stop/Fault conversion) instruction for instruction — inlined
   rather than called so the hottest loop in the simulator pays
   neither the call nor a second fetch of the block arrays. Any
   change to one retire path MUST be made to the others;
   test/test_interp.ml's and test/test_packed.ml's differentials
   exist to catch a mismatch.

   Nothing on this path allocates: block probes are the exception- or
   index-style [find]/[follow_idx] (no options), the predecessor
   block is threaded as a plain argument ([dispatch_pred]) instead of
   an option, and counter work is plain int stores.

   Chaining: when a block finishes cleanly it becomes the
   predecessor for the next dispatch, which first probes its
   successor links ([Decode_cache.follow_idx]) and only falls back to
   the hashtable probe ([find], then [patch]ing the link in) on a
   miss. Neither probe nor link maintenance does any model-visible
   work, so chained and unchained execution are bit-identical by
   construction; the gate runs before the link probe, so chaining
   cannot reorder the fuel/sentinel checks either. *)
let run_cached env dc ~fuel =
  let open Decode_cache in
  let rec dispatch_first n =
    match boundary_gate env n with
    | Out_of_fuel -> None
    | At_exit -> Some (Exit env.cpu.regs.(env.desc.ret_reg))
    | Proceed -> probe_first env.cpu.pc n
  and dispatch_pred (pred : block) n =
    match boundary_gate env n with
    | Out_of_fuel -> None
    | At_exit -> Some (Exit env.cpu.regs.(env.desc.ret_reg))
    | Proceed ->
      let pc = env.cpu.pc in
      let i = follow_idx dc pred pc in
      if i >= 0 then exec_block (Array.unsafe_get pred.db_succs i).sc_blk 0 n
      else probe_pred pred pc n
  and probe_first pc n =
    match find dc pc with
    | b -> exec_block b 0 n
    | exception Not_found -> single n
  and probe_pred pred pc n =
    match find dc pc with
    | b ->
      patch dc pred ~pc b;
      exec_block b 0 n
    | exception Not_found -> single n
  and single n =
    (* uncacheable address (outside watched regions, or no block
       forms): plain single step, and no link to install *)
    match step_here env with
    | Running -> dispatch_first (n - 1)
    | Stopped t -> Some t
  and exec_block b k n = if env.packed then exec_pk b k n else exec_un b k n
  and block_tail b n =
    if b.db_bad then begin
      (* decode fails at [db_end], where pc now points: replicate the
         failed-decode step (probe, then fault) without re-decoding *)
      icache_probe env b.db_end;
      match stopped env (Fault (Bad_fetch b.db_end)) with
      | Stopped t -> Some t
      | Running -> assert false
    end
    else dispatch_pred b n
  and exec_un b k n =
    if n <= 0 then None
    else if stale b then begin
      drop dc b;
      dispatch_first n
    end
    else if k >= Array.length b.db_instrs then block_tail b n
    else begin
      icache_probe env env.cpu.pc;
      (* inlined [exec_one] — keep in lockstep with it *)
      env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
      match exec env (Array.unsafe_get b.db_instrs k) (Array.unsafe_get b.db_lens k) with
      | () -> exec_un b (k + 1) (n - 1)
      | exception Stop t -> (
        match stopped env t with Stopped t -> Some t | Running -> assert false)
      | exception Mem.Fault a -> (
        match stopped env (Fault (Bad_access a)) with
        | Stopped t -> Some t
        | Running -> assert false)
    end
  and exec_pk b k n =
    (* the whole per-instruction loop, staleness and boundary checks
       included, lives in [packed_loop]; remaining fuel is the entry
       fuel minus the retired-instruction delta *)
    let p = env.cpu.perf in
    let i0 = p.instructions in
    match packed_loop env b b.db_code (Array.length b.db_instrs) k n with
    | st -> (
      let n = n - (p.instructions - i0) in
      match st with
      | 0 -> None
      | 1 ->
        drop dc b;
        dispatch_first n
      | _ -> block_tail b n)
    | exception Stop t -> (
      match stopped env t with Stopped t -> Some t | Running -> assert false)
    | exception Mem.Fault a -> (
      match stopped env (Fault (Bad_access a)) with
      | Stopped t -> Some t
      | Running -> assert false)
  in
  dispatch_first fuel

(* Deposit the batched observability counts: the per-run deltas of
   the plain perf ints, plus the decode cache's batched stat deltas.
   Runs (and single steps) are the only places retirement happens,
   and exports only ever read the registry between runs, so exported
   values are identical to per-instruction increments. *)
let deposit_obs env ~instrs0 ~syscalls0 =
  if Obs.on env.obs then begin
    let p = env.cpu.perf in
    Obs.Metrics.add env.ctrs.cn_instrs (p.instructions - instrs0);
    Obs.Metrics.add env.ctrs.cn_syscalls (p.syscalls - syscalls0);
    match env.dcode with Some dc -> Decode_cache.deposit dc | None -> ()
  end

let step env =
  let p = env.cpu.perf in
  let instrs0 = p.instructions and syscalls0 = p.syscalls in
  let r = step_gated env in
  deposit_obs env ~instrs0 ~syscalls0;
  r

let run env ~fuel =
  let p = env.cpu.perf in
  let instrs0 = p.instructions and syscalls0 = p.syscalls in
  let r =
    match env.dcode with
    | Some dc -> run_cached env dc ~fuel
    | None -> run_slow env ~fuel
  in
  deposit_obs env ~instrs0 ~syscalls0;
  r
