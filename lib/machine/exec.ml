open Hipstr_isa
module W32 = Hipstr_util.Wrap32
module Obs = Hipstr_obs.Obs

type fault = Bad_fetch of int | Bad_access of int | Cache_jump of int

type trap = Trap_stub of int | Rat_miss of int | Exit of int | Shell | Fault of fault

type counters = {
  cn_instrs : Obs.Metrics.counter;
  cn_faults : Obs.Metrics.counter;
  cn_syscalls : Obs.Metrics.counter;
}

type env = {
  cpu : Cpu.t;
  mem : Mem.t;
  reader : int -> int;  (** preallocated decode reader over [mem] *)
  desc : Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  os : Sys.t;
  dcode : Decode_cache.t option;
  obs : Obs.t;
  ctrs : counters;
  (* Memoized charge quotients: [lat /. core.throughput] for the four
     latencies the decoder can produce. Each is the bit-identical
     result of the division the per-instruction path used to redo —
     float division is deterministic, so precomputing it once per
     core is invisible to the cycle model. *)
  q1 : float;  (** 1.  /. throughput *)
  q2 : float;  (** 2.  /. throughput *)
  qmul : float;  (** mul_latency /. throughput *)
  qdiv : float;  (** div_latency /. throughput *)
}

type outcome = Running | Stopped of trap

let string_of_trap = function
  | Trap_stub a -> Printf.sprintf "trap-stub(0x%x)" a
  | Rat_miss a -> Printf.sprintf "rat-miss(0x%x)" a
  | Exit c -> Printf.sprintf "exit(%d)" c
  | Shell -> "shell-spawned"
  | Fault (Bad_fetch a) -> Printf.sprintf "fault: bad fetch at 0x%x" a
  | Fault (Bad_access a) -> Printf.sprintf "fault: bad access at 0x%x" a
  | Fault (Cache_jump a) -> Printf.sprintf "fault: indirect jump into code cache 0x%x" a

let decode_with ~read which addr =
  match which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

let decode which mem addr = decode_with ~read:(Mem.reader mem) which addr

exception Stop of trap

(* Charge [lat / throughput] cycles via a memoized quotient (see the
   [q*] fields of [env]): the division is precomputed once per core,
   which is bit-identical to redoing it at every retirement. The
   accumulator is a flat float cell ({!Cpu.fcell}), so the store
   mutates in place instead of boxing. *)
let charge_q env q =
  let cy = env.cpu.perf.cycles in
  cy.Cpu.c <- cy.Cpu.c +. q

let charge_flat env lat =
  let cy = env.cpu.perf.cycles in
  cy.Cpu.c <- cy.Cpu.c +. lat

let dcache_access env addr =
  if not (Cache.access env.dcache addr) then
    charge_flat env (float_of_int env.core.dcache_miss_penalty)

let read_mem32 env addr =
  dcache_access env addr;
  env.cpu.perf.loads <- env.cpu.perf.loads + 1;
  Mem.read32 env.mem addr

let write_mem32 env addr v =
  dcache_access env addr;
  env.cpu.perf.stores <- env.cpu.perf.stores + 1;
  Mem.write32 env.mem addr v

let rval env = function
  | Minstr.Reg r -> env.cpu.regs.(r)
  | Minstr.Imm k -> k
  | Minstr.Mem { base; disp } -> read_mem32 env (env.cpu.regs.(base) + disp)

let wval env op v =
  match op with
  | Minstr.Reg r -> env.cpu.regs.(r) <- v
  | Minstr.Mem { base; disp } -> write_mem32 env (env.cpu.regs.(base) + disp) v
  | Minstr.Imm _ -> raise (Stop (Fault (Bad_fetch env.cpu.pc)))

let set_zs env v =
  env.cpu.flags.zf <- v = 0;
  env.cpu.flags.sf <- v < 0

(* Flag comparisons use [==]/[!=]: on [bool] (an immediate type)
   physical equality coincides with structural equality and compiles
   to one compare, where [=] would call the generic [caml_equal] on
   every conditional branch. *)
let eval_cond env (c : Minstr.cond) =
  let f = env.cpu.flags in
  match c with
  | Eq -> f.zf
  | Ne -> not f.zf
  | Lt -> f.sf != f.vf
  | Ge -> f.sf == f.vf
  | Gt -> (not f.zf) && f.sf == f.vf
  | Le -> f.zf || f.sf != f.vf
  | Ult -> f.cf
  | Uge -> not f.cf

let apply_binop env (op : Minstr.binop) a b =
  let f = env.cpu.flags in
  let r =
    match op with
    | Add ->
      f.cf <- W32.carry_add a b;
      f.vf <- W32.overflow_add a b;
      W32.add a b
    | Sub ->
      f.cf <- W32.borrow_sub a b;
      f.vf <- W32.overflow_sub a b;
      W32.sub a b
    | Mul ->
      f.cf <- false;
      f.vf <- false;
      W32.mul a b
    | Divs ->
      f.cf <- false;
      f.vf <- false;
      W32.sdiv a b
    | Rems ->
      f.cf <- false;
      f.vf <- false;
      W32.srem a b
    | And ->
      f.cf <- false;
      f.vf <- false;
      W32.logand a b
    | Or ->
      f.cf <- false;
      f.vf <- false;
      W32.logor a b
    | Xor ->
      f.cf <- false;
      f.vf <- false;
      W32.logxor a b
    | Shl ->
      f.cf <- false;
      f.vf <- false;
      W32.shl a b
    | Shr ->
      f.cf <- false;
      f.vf <- false;
      W32.shr a b
    | Sar ->
      f.cf <- false;
      f.vf <- false;
      W32.sar a b
  in
  set_zs env r;
  r

(* Per-op charge quotient: mul/div pay their configured latencies
   (over throughput), everything else one issue slot. *)
let binop_quotient env : Minstr.binop -> float = function
  | Mul -> env.qmul
  | Divs | Rems -> env.qdiv
  | Add | Sub | And | Or | Xor | Shl | Shr | Sar -> env.q1

let push env v =
  let sp = env.desc.sp in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) - 4;
  write_mem32 env env.cpu.regs.(sp) v

let pop env =
  let sp = env.desc.sp in
  let v = read_mem32 env env.cpu.regs.(sp) in
  env.cpu.regs.(sp) <- env.cpu.regs.(sp) + 4;
  v

let goto env target = env.cpu.pc <- target

(* Every return consults the RAT when one is present (the modified
   return macro-op): the popped value is a source address that must be
   translated before control transfer. *)
let return_to env src_target =
  env.cpu.perf.returns <- env.cpu.perf.returns + 1;
  match env.rat with
  | None ->
    if Layout.in_cache_region src_target then raise (Stop (Fault (Cache_jump src_target)));
    if not (Bpred.predict_return env.bpred ~target:src_target) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env src_target
  | Some rat -> (
    charge_flat env 1. (* the extra RAT-lookup cycle *);
    match Rat.lookup rat src_target with
    | Some translated ->
      if not (Bpred.predict_return env.bpred ~target:translated) then
        charge_flat env (float_of_int env.core.mispredict_penalty);
      goto env translated
    | None -> raise (Stop (Rat_miss src_target)))

let do_call env ~ret_addr ~target =
  env.cpu.perf.calls <- env.cpu.perf.calls + 1;
  if env.desc.call_pushes_ret then push env ret_addr
  else
    (match env.desc.lr with
    | Some lr -> env.cpu.regs.(lr) <- ret_addr
    | None -> assert false);
  goto env target

let do_syscall env =
  env.cpu.perf.syscalls <- env.cpu.perf.syscalls + 1;
  if Obs.on env.obs then Obs.Metrics.incr env.ctrs.cn_syscalls;
  charge_flat env 40.;
  let number = env.cpu.regs.(0) in
  let args = (env.cpu.regs.(1), env.cpu.regs.(2), env.cpu.regs.(3)) in
  let result, outcome = Sys.handle env.os ~number ~args in
  env.cpu.regs.(0) <- result;
  match outcome with
  | Sys.Continue -> ()
  | Sys.Halt_exit c -> raise (Stop (Exit c))
  | Sys.Halt_shell -> raise (Stop Shell)

let exec env (i : Minstr.t) len =
  let pc = env.cpu.pc in
  let next = pc + len in
  match i with
  | Nop ->
    charge_q env env.q1;
    goto env next
  | Mov (d, s) ->
    charge_q env env.q1;
    let v = rval env s in
    wval env d v;
    goto env next
  | Lea (d, b, k) ->
    charge_q env env.q1;
    env.cpu.regs.(d) <- W32.add env.cpu.regs.(b) k;
    goto env next
  | Binop (op, d, s) ->
    charge_q env (binop_quotient env op);
    let a = rval env d in
    let b = rval env s in
    wval env d (apply_binop env op a b);
    goto env next
  | Cmp (a, b) ->
    charge_q env env.q1;
    let va = rval env a in
    let vb = rval env b in
    let f = env.cpu.flags in
    f.cf <- W32.borrow_sub va vb;
    f.vf <- W32.overflow_sub va vb;
    set_zs env (W32.sub va vb);
    goto env next
  | Push s ->
    charge_q env env.q1;
    let v = rval env s in
    push env v;
    goto env next
  | Pop d ->
    charge_q env env.q1;
    let v = pop env in
    wval env d v;
    goto env next
  | Jmp t ->
    charge_q env env.q1;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    goto env t
  | Jcc (c, t) ->
    charge_q env env.q1;
    env.cpu.perf.branches <- env.cpu.perf.branches + 1;
    let taken = eval_cond env c in
    if not (Bpred.predict_cond env.bpred ~pc ~taken) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env (if taken then t else next)
  | Jmpr s ->
    charge_q env env.q1;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    goto env t
  | Call t ->
    charge_q env env.q2;
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Callr s ->
    charge_q env env.q2;
    env.cpu.perf.indirects <- env.cpu.perf.indirects + 1;
    let t = rval env s in
    if Layout.in_cache_region t then raise (Stop (Fault (Cache_jump t)));
    if not (Bpred.predict_indirect env.bpred ~pc ~target:t) then
      charge_flat env (float_of_int env.core.mispredict_penalty);
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:next ~target:t
  | Ret ->
    charge_q env env.q2;
    let v = pop env in
    return_to env v
  | Retr r ->
    charge_q env env.q2;
    return_to env env.cpu.regs.(r)
  | Retrat s ->
    charge_q env env.q2;
    let v = rval env s in
    return_to env v
  | Callrat { target; src_ret } ->
    charge_q env env.q2;
    (match env.rat with
    | Some rat -> Rat.insert rat ~src:src_ret ~translated:next
    | None -> ());
    Bpred.push_ras env.bpred next;
    do_call env ~ret_addr:src_ret ~target
  | Syscall ->
    do_syscall env;
    goto env next
  | Trap a -> raise (Stop (Trap_stub a))

let isa_label env = match env.desc.which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let stopped env t =
  (match t with
  | Fault _ ->
    if Obs.on env.obs then begin
      Obs.Metrics.incr env.ctrs.cn_faults;
      Obs.emit env.obs (Obs.Trace.Fault { isa = isa_label env; reason = string_of_trap t })
    end
  | Trap_stub _ | Rat_miss _ | Exit _ | Shell -> ());
  Stopped t

(* Retire one already-decoded instruction: counters, execution, trap
   conversion. Shared verbatim by the single-step and cached-block
   paths so both count and fault identically. *)
let exec_one env (i : Minstr.t) len =
  env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
  if Obs.on env.obs then Obs.Metrics.incr env.ctrs.cn_instrs;
  try
    exec env i len;
    Running
  with
  | Stop t -> stopped env t
  | Mem.Fault a -> stopped env (Fault (Bad_access a))

let icache_probe env pc =
  if not (Cache.access env.icache pc) then
    charge_flat env (float_of_int env.core.icache_miss_penalty)

(* The inter-block boundary gate, shared verbatim by the slow loop,
   the cached dispatcher and (through the dispatcher) every followed
   chain link. The order is load-bearing and must never be reordered
   by a fast path: fuel first (an exhausted run has to pause *before*
   inspecting pc — the quantum boundary is model-visible), then the
   exit sentinel, then execution at pc. The cached path additionally
   re-checks block staleness before every instruction; that check
   lives in [run_cached.exec_block], after this gate, standing in for
   the byte re-decode the slow path does implicitly. *)
type gate = Out_of_fuel | At_exit | Proceed

let boundary_gate env n =
  if n <= 0 then Out_of_fuel
  else if env.cpu.pc = Layout.exit_sentinel then At_exit
  else Proceed

(* Decode and retire the instruction at pc. Callers must have passed
   [boundary_gate] (pc is not the sentinel, fuel remains). *)
let step_here env =
  let pc = env.cpu.pc in
  icache_probe env pc;
  match decode_with ~read:env.reader env.desc.which pc with
  | None -> stopped env (Fault (Bad_fetch pc))
  | Some (i, len) -> exec_one env i len

let step env =
  match boundary_gate env 1 with
  | At_exit -> Stopped (Exit env.cpu.regs.(env.desc.ret_reg))
  | Proceed -> step_here env
  | Out_of_fuel -> assert false (* n = 1 *)

let run_slow env ~fuel =
  let rec go n =
    match boundary_gate env n with
    | Out_of_fuel -> None
    | At_exit -> Some (Exit env.cpu.regs.(env.desc.ret_reg))
    | Proceed -> ( match step_here env with Running -> go (n - 1) | Stopped t -> Some t)
  in
  go fuel

(* The cached fast path. Per retired instruction it performs exactly
   the same model-visible work as the slow loop — boundary gate (fuel,
   then exit sentinel: a cached block can never contain the sentinel,
   since every watched region lies above it and only control
   transfers, which end blocks, can move pc there), icache probe,
   counters, execution — with the per-instruction byte decode replaced
   by an array read plus one generation compare. A stale block (some
   write landed in its region since decode, possibly by the previous
   instruction of this very block) is dropped and re-looked-up before
   anything is charged, so self-modifying code sees exactly the
   semantics of per-instruction decode.

   [exec_block]'s retire sequence (instruction counter, obs counter,
   execute, Stop/Fault conversion) mirrors [exec_one] instruction for
   instruction — inlined rather than called so the hottest loop in
   the simulator pays neither the call nor a second fetch of the
   block arrays. Any change to one retire path MUST be made to the
   other; test/test_interp.ml's differentials exist to catch a
   mismatch.

   Chaining: when a block finishes cleanly it becomes [pred] for the
   next dispatch, which first probes [pred]'s successor links
   ([Decode_cache.follow]) and only falls back to the hashtable probe
   ([lookup], then [patch]ing the link in) on a miss. Neither probe
   nor link maintenance does any model-visible work, so chained and
   unchained execution are bit-identical by construction; the gate
   runs before the link probe, so chaining cannot reorder the
   fuel/sentinel checks either. *)
let run_cached env dc ~fuel =
  let open Decode_cache in
  let rec dispatch pred n =
    match boundary_gate env n with
    | Out_of_fuel -> None
    | At_exit -> Some (Exit env.cpu.regs.(env.desc.ret_reg))
    | Proceed -> (
      let pc = env.cpu.pc in
      match pred with
      | Some p -> (
        match follow dc p pc with
        | Some b -> exec_block b 0 n
        | None -> probe pred pc n)
      | None -> probe pred pc n)
  and probe pred pc n =
    match lookup dc pc with
    | Some b ->
      (match pred with Some p -> patch dc p ~pc b | None -> ());
      exec_block b 0 n
    | None -> (
      (* uncacheable address (outside watched regions, or no block
         forms): plain single step, and no link to install *)
      match step_here env with
      | Running -> dispatch None (n - 1)
      | Stopped t -> Some t)
  and exec_block b k n =
    if n <= 0 then None
    else if stale b then begin
      drop dc b;
      dispatch None n
    end
    else if k >= Array.length b.db_instrs then
      if b.db_bad then begin
        (* decode fails at [db_end], where pc now points: replicate the
           failed-decode step (probe, then fault) without re-decoding *)
        icache_probe env b.db_end;
        match stopped env (Fault (Bad_fetch b.db_end)) with
        | Stopped t -> Some t
        | Running -> assert false
      end
      else dispatch (Some b) n
    else begin
      icache_probe env env.cpu.pc;
      (* inlined [exec_one] — keep in lockstep with it *)
      env.cpu.perf.instructions <- env.cpu.perf.instructions + 1;
      if Obs.on env.obs then Obs.Metrics.incr env.ctrs.cn_instrs;
      match exec env (Array.unsafe_get b.db_instrs k) (Array.unsafe_get b.db_lens k) with
      | () -> exec_block b (k + 1) (n - 1)
      | exception Stop t -> (
        match stopped env t with Stopped t -> Some t | Running -> assert false)
      | exception Mem.Fault a -> (
        match stopped env (Fault (Bad_access a)) with
        | Stopped t -> Some t
        | Running -> assert false)
    end
  in
  dispatch None fuel

let run env ~fuel =
  match env.dcode with
  | Some dc -> run_cached env dc ~fuel
  | None -> run_slow env ~fuel
