(** Simulated flat byte-addressable memory.

    Accesses outside the configured size raise {!Fault}, which the
    execution engine converts into a simulated machine fault — this is
    how wild gadget chains crash, so the brute-force experiments
    depend on it.

    Spans of the address space holding code can be {!watch}ed: every
    write landing inside a watched region bumps that region's
    generation counter. The predecoded-block interpreter keys its
    cache entries to the generation their bytes were read under, so
    self-modifying code (the PSR translator installing or patching
    blocks, attack payloads rewriting code bytes, eviction restoring
    trap bytes) invalidates stale decodes with one integer compare. *)

exception Fault of int
(** Raised with the offending address. *)

exception Cstring_unterminated of int
(** Raised by {!read_cstring} with the string's start address when no
    NUL terminator appears within the limit. *)

exception Bad_span of int * int
(** Raised by the bulk accessors ({!read_string}, {!blit_string},
    {!write_string}) with [(addr, len)] when the requested span has a
    negative length or crosses the end of the address space. *)

type t

type region
(** A watched span with a write generation (see {!watch}). *)

val create : int -> t
(** [create size] is zero-initialized memory of [size] bytes. *)

val size : t -> int

val watch : t -> lo:int -> hi:int -> region
(** Register [\[lo, hi)] as a watched region and return its handle;
    registering the same bounds again returns the existing handle
    (regions are per-memory, shared by every watcher). Regions must
    not overlap.
    @raise Invalid_argument on bad bounds or overlap. *)

val generation : region -> int
(** Monotonic write counter: bumped by every write landing inside the
    region. Equality with a remembered value proves the region's
    bytes are unchanged since then. *)

val span_clean : region -> lo:int -> hi:int -> since:int -> bool
(** No write has landed in [\[lo, hi)] (clamped to the region) since
    generation [since]. Writes are tracked at 64-byte-page
    granularity, so this lets a decoded block survive writes
    elsewhere in its region (e.g. the VM patching a stub in another
    part of the code cache) — the caller re-stamps its remembered
    generation on a clean result and re-decodes on a dirty one. May
    report a clean span dirty when a neighbouring write shares its
    edge pages (conservative, never the reverse). *)

val region_of : t -> int -> region option
(** The watched region containing an address, if any. *)

val region_lo : region -> int
val region_hi : region -> int

val read8 : t -> int -> int
(** Unsigned byte. *)

val write8 : t -> int -> int -> unit

val unsafe_read8 : t -> int -> int
(** No bounds check: the caller must have span-checked. *)

val unsafe_write8 : t -> int -> int -> unit
(** No bounds check, but still runs the region write hook. *)

val probe8 : t -> int -> int
(** Like {!read8} but returns [-1] out of bounds instead of raising —
    the instruction decoders' reader contract. *)

val reader : t -> int -> int
(** [reader t] is a reader closure over {!probe8}, allocated once;
    pass it as the [~read] argument of the ISA decoders instead of
    building a fresh closure per instruction. *)

val read32 : t -> int -> int
(** Signed 32-bit little-endian load (single span check + word
    load). *)

val write32 : t -> int -> int -> unit

val unsafe_read32 : t -> int -> int
(** No bounds check: for arena sites where the span is provably in
    bounds already — a span validated by the caller, or an address
    inside a watched region (region bounds are checked at {!watch}
    time). *)

val unsafe_write32 : t -> int -> int -> unit
(** No bounds check, but still runs the region write hook. *)

val blit_string : t -> int -> string -> unit
(** Copy a string into memory at an address.
    @raise Bad_span when the destination span crosses the end of the
    address space. *)

val write_string : t -> int -> string -> unit
(** Alias of {!blit_string}, named for symmetry with
    {!read_string}. *)

val read_string : t -> int -> int -> string
(** [read_string t a n] is the [n] bytes at [a].
    @raise Bad_span when [n] is negative or [a..a+n-1] crosses the
    end of the address space. *)

val read_cstring : ?limit:int -> t -> int -> string
(** Read a NUL-terminated string.
    @raise Cstring_unterminated if no NUL appears within [limit]
    (default 4096) bytes — an unterminated string is reported, never
    silently truncated. *)
