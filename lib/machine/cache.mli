(** Set-associative cache timing model with LRU replacement.

    Only timing is modelled (data always comes from {!Mem}); an access
    returns whether it hit, and the machine charges the configured
    penalty on a miss. *)

type t

val create : ?line:int -> size_kb:int -> assoc:int -> miss_penalty:int -> unit -> t
(** [line] defaults to 64 bytes. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; true on hit. *)

val miss_penalty : t -> int
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val flush : t -> unit
(** Invalidate all lines (used when the PSR code cache is flushed). *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the exact tag/stamp/counter state (snapshots). *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this cache's state from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt on a geometry mismatch or a
    malformed image. *)
