(** Branch predictor timing model.

    Bimodal 2-bit counters for conditional branches, a last-target
    BTB for indirect jumps, and a return-address stack for returns.
    Only prediction accuracy is modelled; the machine charges the
    core's misprediction penalty when a prediction is wrong.

    The paper's Isomeron comparison leans on this component: program
    shepherding defeats return-address-stack and BTB prediction, which
    is the dominant cost Isomeron pays and HIPStR does not. *)

type t

val create : unit -> t

val predict_cond : t -> pc:int -> taken:bool -> bool
(** Record the outcome of a conditional at [pc]; true if predicted
    correctly. *)

val predict_indirect : t -> pc:int -> target:int -> bool
(** Last-target BTB prediction for an indirect jump/call. *)

val push_ras : t -> int -> unit
(** Record a call's return address on the return-address stack. *)

val predict_return : t -> target:int -> bool
(** Pop the RAS and compare with the actual return target. *)

val mispredicts : t -> int
val lookups : t -> int
val reset_stats : t -> unit

val flush : t -> unit
(** Forget all learned state (bimodal counters, BTB, RAS) but keep
    the accuracy statistics — the predictor a process finds after
    another process used the core. *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the exact predictor state (snapshots). *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this predictor from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt on a malformed image. *)
