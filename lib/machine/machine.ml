open Hipstr_isa
module Obs = Hipstr_obs.Obs

type core_ctx = {
  desc : Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  dcode : Decode_cache.t option;
  ctrs : Exec.counters;
}

type t = {
  cpu : Cpu.t;
  memory : Mem.t;
  mem_reader : int -> int;
  os_state : Sys.t;
  cisc_ctx : core_ctx;
  risc_ctx : core_ctx;
  (* Execution environments are built once here and reused for every
     run: [Exec.env] is immutable and its construction computes the
     femtocycle quotients, so rebuilding it per quantum would both
     allocate and redo float->int conversion on the hot control
     path. *)
  cisc_env : Exec.env;
  risc_env : Exec.env;
  observ : Obs.t;
  c_ctx_flush : Obs.Metrics.counter;
  packed : bool;
  mutable active : Desc.which;
  mutable owner_pid : int;
  mutable migrations : int;
  (* cycle attribution for converting to seconds per-core, in
     femtocycles (see {!Cpu.fc_scale}) like the perf accumulator they
     are marked against *)
  mutable cisc_fc : int;
  mutable risc_fc : int;
  mutable fc_mark : int;
}

let make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory which =
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Risc -> Hipstr_risc.Isa.desc in
  let core = Core_desc.for_isa which in
  let isa = match which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc" in
  let counter n = Obs.Metrics.counter (Obs.metrics obs) ("machine." ^ isa ^ "." ^ n) in
  {
    desc;
    core;
    icache =
      Cache.create ~size_kb:icache_kb ~assoc:core.cache_assoc
        ~miss_penalty:core.icache_miss_penalty ();
    dcache =
      Cache.create ~size_kb:dcache_kb ~assoc:core.cache_assoc
        ~miss_penalty:core.dcache_miss_penalty ();
    bpred = Bpred.create ();
    rat = (match rat_capacity with None -> None | Some n -> Some (Rat.create ~capacity:n));
    dcode = (if decode_cache then Some (Decode_cache.create ~obs ~isa ~chain which memory) else None);
    ctrs =
      {
        Exec.cn_instrs = counter "instructions";
        cn_faults = counter "faults";
        cn_syscalls = counter "syscalls";
      };
  }

let make_env ~cpu ~memory ~mem_reader ~os_state ~observ ~packed (c : core_ctx) =
  {
    Exec.cpu;
    mem = memory;
    reader = mem_reader;
    desc = c.desc;
    core = c.core;
    icache = c.icache;
    dcache = c.dcache;
    bpred = c.bpred;
    rat = c.rat;
    os = os_state;
    dcode = c.dcode;
    obs = observ;
    ctrs = c.ctrs;
    packed;
    (* the same quotient function the decode cache bakes block charges
       with, so cached and slow-path accounting agree to the bit *)
    q1 = Cpu.fc_quotient ~lat:1 ~throughput:c.core.throughput;
    q2 = Cpu.fc_quotient ~lat:2 ~throughput:c.core.throughput;
    qmul = Cpu.fc_quotient ~lat:c.core.mul_latency ~throughput:c.core.throughput;
    qdiv = Cpu.fc_quotient ~lat:c.core.div_latency ~throughput:c.core.throughput;
    p_mispredict = c.core.mispredict_penalty * Cpu.fc_scale;
    p_icache_miss = Cache.miss_penalty c.icache * Cpu.fc_scale;
    p_dcache_miss = Cache.miss_penalty c.dcache * Cpu.fc_scale;
  }

let create ?(obs = Obs.global) ?(rat_capacity = None) ?(icache_kb = 32) ?(dcache_kb = 32)
    ?(decode_cache = true) ?(chain = true) ?(packed = true) ~active () =
  let memory = Mem.create Layout.mem_size in
  let cpu = Cpu.create () in
  let mem_reader = Mem.reader memory in
  let os_state = Sys.create () in
  let cisc_ctx =
    make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory Desc.Cisc
  in
  let risc_ctx =
    make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory Desc.Risc
  in
  {
    cpu;
    memory;
    mem_reader;
    os_state;
    cisc_ctx;
    risc_ctx;
    cisc_env = make_env ~cpu ~memory ~mem_reader ~os_state ~observ:obs ~packed cisc_ctx;
    risc_env = make_env ~cpu ~memory ~mem_reader ~os_state ~observ:obs ~packed risc_ctx;
    observ = obs;
    c_ctx_flush = Obs.Metrics.counter (Obs.metrics obs) "machine.context_switch_flushes";
    packed;
    active;
    owner_pid = 0;
    migrations = 0;
    cisc_fc = 0;
    risc_fc = 0;
    fc_mark = 0;
  }

let mem t = t.memory
let cpu t = t.cpu
let os t = t.os_state
let active t = t.active
let obs t = t.observ
let owner t = t.owner_pid
let set_owner t pid = t.owner_pid <- pid
let packed t = t.packed

let isa_name t = match t.active with Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let ctx t = match t.active with Desc.Cisc -> t.cisc_ctx | Risc -> t.risc_ctx

let desc t = (ctx t).desc

let env_of t which = match which with Desc.Cisc -> t.cisc_env | Desc.Risc -> t.risc_env

let env t = env_of t t.active

let rat t = (ctx t).rat

let account_cycles t =
  let fc = t.cpu.perf.cycles_fc in
  let delta = fc - t.fc_mark in
  (match t.active with
  | Desc.Cisc -> t.cisc_fc <- t.cisc_fc + delta
  | Desc.Risc -> t.risc_fc <- t.risc_fc + delta);
  t.fc_mark <- fc

let switch_core t which =
  if which <> t.active then begin
    account_cycles t;
    t.active <- which;
    t.migrations <- t.migrations + 1
  end

let migrations t = t.migrations

let ctx_of t which = match which with Desc.Cisc -> t.cisc_ctx | Desc.Risc -> t.risc_ctx

(* Decode-cache stat counters are batched (plain ints, deposited into
   the metrics registry in bulk); any entry point that mutates cache
   state outside [Exec.run] must deposit before the registry can be
   read. *)
let deposit_decoded t =
  if Obs.on t.observ then begin
    (match t.cisc_ctx.dcode with Some dc -> Decode_cache.deposit dc | None -> ());
    match t.risc_ctx.dcode with Some dc -> Decode_cache.deposit dc | None -> ()
  end

(* Drop every predecoded block of one core's cache — the PSR VM calls
   this when it rewrites its code-cache region wholesale (flush,
   relocation-map renewal). Generations already keep stale blocks from
   executing; this models the cold start and frees the table. *)
let invalidate_decoded t which =
  (match (ctx_of t which).dcode with
  | Some dc -> Decode_cache.invalidate_all dc
  | None -> ());
  deposit_decoded t

let decode_cache_stats t which =
  match (ctx_of t which).dcode with
  | Some dc -> Some (Decode_cache.stats dc)
  | None -> None

let context_switch_flush t =
  let cold (c : core_ctx) =
    Cache.flush c.icache;
    Cache.flush c.dcache;
    Bpred.flush c.bpred;
    match c.dcode with Some dc -> Decode_cache.invalidate_all dc | None -> ()
  in
  cold t.cisc_ctx;
  cold t.risc_ctx;
  if Obs.on t.observ then begin
    deposit_decoded t;
    Obs.Metrics.incr t.c_ctx_flush;
    (* zero-duration span: the flush itself is free in the cycle model
       (the cost is the refill), but the profile should show when and
       where cold reschedules happened *)
    let cycle = Cpu.cycles t.cpu.perf in
    let sp =
      Obs.enter_span t.observ ~name:"context_switch_flush"
        ~attrs:[ ("isa", isa_name t); ("pid", string_of_int t.owner_pid) ]
        ~cycle ()
    in
    Obs.exit_span t.observ sp ~cycle
  end

let boot t ~entry =
  let d = desc t in
  t.cpu.regs.(d.sp) <- Layout.stack_top;
  (if d.call_pushes_ret then begin
     t.cpu.regs.(d.sp) <- t.cpu.regs.(d.sp) - 4;
     Mem.write32 t.memory t.cpu.regs.(d.sp) Layout.exit_sentinel
   end
   else
     match d.lr with
     | Some lr -> t.cpu.regs.(lr) <- Layout.exit_sentinel
     | None -> assert false);
  t.cpu.pc <- entry

let step t = Exec.step (env t)

let run t ~fuel =
  let r = Exec.run (env t) ~fuel in
  account_cycles t;
  r

let cycles t = Cpu.cycles t.cpu.perf

let instructions t = t.cpu.perf.instructions

let seconds t =
  account_cycles t;
  (Cpu.cycles_of_fc t.cisc_fc /. (Core_desc.x86.freq_ghz *. 1e9))
  +. (Cpu.cycles_of_fc t.risc_fc /. (Core_desc.arm.freq_ghz *. 1e9))

(* --- snapshot ------------------------------------------------------ *)

module Wire = Hipstr_util.Wire

(* Drop host-side decoded state on both cores. Taking a checkpoint
   quiesces the machine: the decode caches are host structures whose
   contents cannot travel in an image (and are model-invisible
   anyway), so BOTH the saved run and a run restored from the image
   must continue from an equally cold decode cache — that is what
   makes their host-counter trajectories, and therefore their metrics
   exports, byte-identical. The cycle-visible microarchitecture
   (i/d-caches, predictors, RAT) is untouched; it serializes
   exactly. *)
let quiesce t =
  invalidate_decoded t Desc.Cisc;
  invalidate_decoded t Desc.Risc

let save_ctx w (c : core_ctx) =
  Cache.save w c.icache;
  Cache.save w c.dcache;
  Bpred.save w c.bpred;
  match c.rat with
  | None -> Wire.bool w false
  | Some rat ->
    Wire.bool w true;
    Rat.save w rat

let restore_ctx (c : core_ctx) r =
  Cache.restore c.icache r;
  Cache.restore c.dcache r;
  Bpred.restore c.bpred r;
  match (Wire.r_bool r, c.rat) with
  | false, None -> ()
  | true, Some rat -> Rat.restore rat r
  | has, _ ->
    Wire.corrupt "RAT presence mismatch: image %s one, this machine %s"
      (if has then "carries" else "lacks")
      (if c.rat = None then "lacks" else "carries")

let save w t =
  Wire.tag w "MACH";
  (* architectural CPU state *)
  Wire.int w t.cpu.Cpu.pc;
  Wire.int_array w t.cpu.Cpu.regs;
  Wire.bool w t.cpu.Cpu.flags.Cpu.zf;
  Wire.bool w t.cpu.Cpu.flags.Cpu.sf;
  Wire.bool w t.cpu.Cpu.flags.Cpu.cf;
  Wire.bool w t.cpu.Cpu.flags.Cpu.vf;
  (* performance counters; the femtocycle accumulator is an int and
     travels bit-exact by construction *)
  Wire.int w t.cpu.Cpu.perf.Cpu.cycles_fc;
  Wire.int w t.cpu.Cpu.perf.Cpu.instructions;
  Wire.int w t.cpu.Cpu.perf.Cpu.loads;
  Wire.int w t.cpu.Cpu.perf.Cpu.stores;
  Wire.int w t.cpu.Cpu.perf.Cpu.branches;
  Wire.int w t.cpu.Cpu.perf.Cpu.calls;
  Wire.int w t.cpu.Cpu.perf.Cpu.returns;
  Wire.int w t.cpu.Cpu.perf.Cpu.indirects;
  Wire.int w t.cpu.Cpu.perf.Cpu.syscalls;
  Sys.save w t.os_state;
  save_ctx w t.cisc_ctx;
  save_ctx w t.risc_ctx;
  Wire.u8 w (match t.active with Desc.Cisc -> 0 | Desc.Risc -> 1);
  Wire.int w t.migrations;
  Wire.int w t.cisc_fc;
  Wire.int w t.risc_fc;
  Wire.int w t.fc_mark

let restore t r =
  Wire.expect_tag r "MACH";
  t.cpu.Cpu.pc <- Wire.r_int r;
  let regs = Wire.r_int_array r in
  if Array.length regs <> Array.length t.cpu.Cpu.regs then
    Wire.corrupt "register file size mismatch (%d)" (Array.length regs);
  Array.blit regs 0 t.cpu.Cpu.regs 0 (Array.length regs);
  t.cpu.Cpu.flags.Cpu.zf <- Wire.r_bool r;
  t.cpu.Cpu.flags.Cpu.sf <- Wire.r_bool r;
  t.cpu.Cpu.flags.Cpu.cf <- Wire.r_bool r;
  t.cpu.Cpu.flags.Cpu.vf <- Wire.r_bool r;
  t.cpu.Cpu.perf.Cpu.cycles_fc <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.instructions <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.loads <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.stores <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.branches <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.calls <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.returns <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.indirects <- Wire.r_int r;
  t.cpu.Cpu.perf.Cpu.syscalls <- Wire.r_int r;
  Sys.restore t.os_state r;
  restore_ctx t.cisc_ctx r;
  restore_ctx t.risc_ctx r;
  (t.active <-
     (match Wire.r_u8 r with
     | 0 -> Desc.Cisc
     | 1 -> Desc.Risc
     | v -> Wire.corrupt "bad active-ISA tag %d" v));
  t.migrations <- Wire.r_int r;
  t.cisc_fc <- Wire.r_int r;
  t.risc_fc <- Wire.r_int r;
  t.fc_mark <- Wire.r_int r
