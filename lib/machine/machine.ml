open Hipstr_isa
module Obs = Hipstr_obs.Obs

type core_ctx = {
  desc : Desc.t;
  core : Core_desc.t;
  icache : Cache.t;
  dcache : Cache.t;
  bpred : Bpred.t;
  rat : Rat.t option;
  dcode : Decode_cache.t option;
  ctrs : Exec.counters;
}

type t = {
  cpu : Cpu.t;
  memory : Mem.t;
  mem_reader : int -> int;
  os_state : Sys.t;
  cisc_ctx : core_ctx;
  risc_ctx : core_ctx;
  observ : Obs.t;
  c_ctx_flush : Obs.Metrics.counter;
  mutable active : Desc.which;
  mutable owner_pid : int;
  mutable migrations : int;
  (* cycle attribution for converting to seconds per-core *)
  mutable cisc_cycles : float;
  mutable risc_cycles : float;
  mutable cycle_mark : float;
}

let make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory which =
  let desc = match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Risc -> Hipstr_risc.Isa.desc in
  let core = Core_desc.for_isa which in
  let isa = match which with Desc.Cisc -> "cisc" | Desc.Risc -> "risc" in
  let counter n = Obs.Metrics.counter (Obs.metrics obs) ("machine." ^ isa ^ "." ^ n) in
  {
    desc;
    core;
    icache =
      Cache.create ~size_kb:icache_kb ~assoc:core.cache_assoc
        ~miss_penalty:core.icache_miss_penalty ();
    dcache =
      Cache.create ~size_kb:dcache_kb ~assoc:core.cache_assoc
        ~miss_penalty:core.dcache_miss_penalty ();
    bpred = Bpred.create ();
    rat = (match rat_capacity with None -> None | Some n -> Some (Rat.create ~capacity:n));
    dcode = (if decode_cache then Some (Decode_cache.create ~obs ~isa ~chain which memory) else None);
    ctrs =
      {
        Exec.cn_instrs = counter "instructions";
        cn_faults = counter "faults";
        cn_syscalls = counter "syscalls";
      };
  }

let create ?(obs = Obs.global) ?(rat_capacity = None) ?(icache_kb = 32) ?(dcache_kb = 32)
    ?(decode_cache = true) ?(chain = true) ~active () =
  let memory = Mem.create Layout.mem_size in
  {
    cpu = Cpu.create ();
    memory;
    mem_reader = Mem.reader memory;
    os_state = Sys.create ();
    cisc_ctx =
      make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory Desc.Cisc;
    risc_ctx =
      make_ctx ~obs ~rat_capacity ~icache_kb ~dcache_kb ~decode_cache ~chain ~memory Desc.Risc;
    observ = obs;
    c_ctx_flush = Obs.Metrics.counter (Obs.metrics obs) "machine.context_switch_flushes";
    active;
    owner_pid = 0;
    migrations = 0;
    cisc_cycles = 0.;
    risc_cycles = 0.;
    cycle_mark = 0.;
  }

let mem t = t.memory
let cpu t = t.cpu
let os t = t.os_state
let active t = t.active
let obs t = t.observ
let owner t = t.owner_pid
let set_owner t pid = t.owner_pid <- pid

let isa_name t = match t.active with Desc.Cisc -> "cisc" | Desc.Risc -> "risc"

let ctx t = match t.active with Desc.Cisc -> t.cisc_ctx | Risc -> t.risc_ctx

let desc t = (ctx t).desc

let env_of t which =
  let c = match which with Desc.Cisc -> t.cisc_ctx | Desc.Risc -> t.risc_ctx in
  {
    Exec.cpu = t.cpu;
    mem = t.memory;
    reader = t.mem_reader;
    desc = c.desc;
    core = c.core;
    icache = c.icache;
    dcache = c.dcache;
    bpred = c.bpred;
    rat = c.rat;
    os = t.os_state;
    dcode = c.dcode;
    obs = t.observ;
    ctrs = c.ctrs;
    q1 = 1. /. c.core.throughput;
    q2 = 2. /. c.core.throughput;
    qmul = float_of_int c.core.mul_latency /. c.core.throughput;
    qdiv = float_of_int c.core.div_latency /. c.core.throughput;
  }

let env t = env_of t t.active

let rat t = (ctx t).rat

let account_cycles t =
  let delta = t.cpu.perf.cycles.Cpu.c -. t.cycle_mark in
  (match t.active with
  | Desc.Cisc -> t.cisc_cycles <- t.cisc_cycles +. delta
  | Desc.Risc -> t.risc_cycles <- t.risc_cycles +. delta);
  t.cycle_mark <- t.cpu.perf.cycles.Cpu.c

let switch_core t which =
  if which <> t.active then begin
    account_cycles t;
    t.active <- which;
    t.migrations <- t.migrations + 1
  end

let migrations t = t.migrations

(* A CMP scheduler calls this when the process is scheduled onto a
   core whose microarchitectural state it does not own anymore: the
   caches and predictors it warmed up belong to whoever ran since.
   Cycle/instruction counters are untouched — only learned state
   goes. *)
let ctx_of t which = match which with Desc.Cisc -> t.cisc_ctx | Desc.Risc -> t.risc_ctx

(* Drop every predecoded block of one core's cache — the PSR VM calls
   this when it rewrites its code-cache region wholesale (flush,
   relocation-map renewal). Generations already keep stale blocks from
   executing; this models the cold start and frees the table. *)
let invalidate_decoded t which =
  match (ctx_of t which).dcode with
  | Some dc -> Decode_cache.invalidate_all dc
  | None -> ()

let decode_cache_stats t which =
  match (ctx_of t which).dcode with
  | Some dc -> Some (Decode_cache.stats dc)
  | None -> None

let context_switch_flush t =
  let cold (c : core_ctx) =
    Cache.flush c.icache;
    Cache.flush c.dcache;
    Bpred.flush c.bpred;
    match c.dcode with Some dc -> Decode_cache.invalidate_all dc | None -> ()
  in
  cold t.cisc_ctx;
  cold t.risc_ctx;
  if Obs.on t.observ then begin
    Obs.Metrics.incr t.c_ctx_flush;
    (* zero-duration span: the flush itself is free in the cycle model
       (the cost is the refill), but the profile should show when and
       where cold reschedules happened *)
    let cycle = t.cpu.perf.cycles.Cpu.c in
    let sp =
      Obs.enter_span t.observ ~name:"context_switch_flush"
        ~attrs:[ ("isa", isa_name t); ("pid", string_of_int t.owner_pid) ]
        ~cycle ()
    in
    Obs.exit_span t.observ sp ~cycle
  end

let boot t ~entry =
  let d = desc t in
  t.cpu.regs.(d.sp) <- Layout.stack_top;
  (if d.call_pushes_ret then begin
     t.cpu.regs.(d.sp) <- t.cpu.regs.(d.sp) - 4;
     Mem.write32 t.memory t.cpu.regs.(d.sp) Layout.exit_sentinel
   end
   else
     match d.lr with
     | Some lr -> t.cpu.regs.(lr) <- Layout.exit_sentinel
     | None -> assert false);
  t.cpu.pc <- entry

let step t = Exec.step (env t)

let run t ~fuel =
  let r = Exec.run (env t) ~fuel in
  account_cycles t;
  r

let cycles t = t.cpu.perf.cycles.Cpu.c

let instructions t = t.cpu.perf.instructions

let seconds t =
  account_cycles t;
  (t.cisc_cycles /. (Core_desc.x86.freq_ghz *. 1e9))
  +. (t.risc_cycles /. (Core_desc.arm.freq_ghz *. 1e9))
