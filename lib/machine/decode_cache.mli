(** Per-ISA cache of predecoded basic blocks.

    Every simulated instruction used to be re-decoded from raw bytes
    on every execution; hot loops decode the same handful of blocks
    millions of times. This cache decodes a basic block once — from
    its start address up to the first control transfer — and lets the
    interpreter re-dispatch the predecoded [Minstr.t] array on every
    revisit.

    Correctness under self-modifying code rests on {!Mem.watch}
    generations: a block records the generation of the watched region
    its bytes live in, and {!stale} is a single integer compare the
    interpreter performs before every cached instruction. Any write
    into the region — a PSR translation installed into the code
    cache, a chained-jump patch, eviction restoring trap bytes, an
    attack payload rewriting code — bumps the generation and so
    invalidates every block decoded from it, lazily. Addresses
    outside any watched region (stack or heap execution by wild
    gadget chains) are never cached and fall back to per-instruction
    decode.

    The cache is pure simulator-side memoization: it charges no
    cycles, touches no modelled structure, and produces bit-identical
    architectural and timing results to the uncached interpreter. *)

type block = {
  db_start : int;
  db_instrs : Hipstr_isa.Minstr.t array;
  db_lens : int array;
  db_end : int;  (** first address past the last decoded instruction *)
  db_bad : bool;
      (** decode fails at [db_end]: executing past the last
          instruction is a bad fetch there *)
  db_region : Mem.region;
  db_gen : int;  (** region generation the block was decoded under *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;  (** wholesale {!invalidate_all} calls *)
}

type t

val create : ?obs:Hipstr_obs.Obs.t -> isa:string -> Hipstr_isa.Desc.which -> Mem.t -> t
(** Create a cache for one ISA over one memory, watching the four
    standard code-bearing regions (both code sections and both
    code-cache regions; {!Mem.watch} dedupes across ISAs). Counters
    are registered as [machine.<isa>.decode_cache.*]. *)

val lookup : t -> int -> block option
(** The block starting at an address: a generation-valid cached entry
    (hit), or a freshly decoded and installed one (miss). [None] if
    the address is not cacheable — outside every watched region, or
    no cacheable block forms there — in which case the caller must
    single-step. *)

val stale : block -> bool
(** The block's region has been written since it was decoded. Checked
    by the interpreter before every cached instruction. *)

val drop : t -> block -> unit
(** Remove one (stale) block. *)

val invalidate_all : t -> unit
(** Drop everything: wired into context-switch flushes, relocation-map
    renewal and code-cache flushes. *)

val stats : t -> stats

val entries : t -> int
