(** Per-ISA cache of predecoded basic blocks.

    Every simulated instruction used to be re-decoded from raw bytes
    on every execution; hot loops decode the same handful of blocks
    millions of times. This cache decodes a basic block once — from
    its start address up to the first control transfer — and lets the
    interpreter re-dispatch the predecoded [Minstr.t] array on every
    revisit.

    Correctness under self-modifying code rests on {!Mem.watch}
    generations: a block records the generation of the watched region
    its bytes live in, and {!stale} is a single integer compare the
    interpreter performs before every cached instruction. Any write
    into the region — a PSR translation installed into the code
    cache, a chained-jump patch, eviction restoring trap bytes, an
    attack payload rewriting code — bumps the generation and so
    invalidates every block decoded from it, lazily. Addresses
    outside any watched region (stack or heap execution by wild
    gadget chains) are never cached and fall back to per-instruction
    decode.

    The cache is pure simulator-side memoization: it charges no
    cycles, touches no modelled structure, and produces bit-identical
    architectural and timing results to the uncached interpreter.

    {2 Chaining}

    Blocks additionally carry successor links so hot traces run
    block-to-block without the dispatcher's hashtable probe: a
    direct-terminator block holds up to two links (taken /
    fall-through), an indirect-terminator block a small inline cache
    keyed by runtime target pc (monomorphic → polymorphic → megamorphic,
    at which point it stops patching). A link is followable iff it was
    installed under the current cache {!epoch} (bumped by every
    {!invalidate_all}) and its target block is not {!stale}; both are
    integer compares, and link maintenance is as model-invisible as the
    cache itself. *)

type block = {
  db_start : int;
  db_instrs : Hipstr_isa.Minstr.t array;
  db_lens : int array;
  db_code : int array;
      (** packed flat encoding, 4 ints per instruction: {!Packed}
          meta word, two payload words, and the precomputed
          femtocycle retirement charge — what the flat dispatcher
          executes; [db_instrs] is the [--no-packed] oracle *)
  db_end : int;  (** first address past the last decoded instruction *)
  db_bad : bool;
      (** decode fails at [db_end]: executing past the last
          instruction is a bad fetch there *)
  db_region : Mem.region;
  mutable db_gen : int;
      (** region generation the block's bytes are known valid under —
          re-stamped by {!stale} when a generation bump proves to have
          missed the block's pages *)
  db_indirect : bool;
      (** terminator is an indirect transfer: links form an inline
          cache rather than a direct successor pair *)
  mutable db_succs : succ array;  (** chain links, owned by {!follow}/{!patch} *)
}

and succ = { sc_pc : int; sc_blk : block; sc_epoch : int }
(** A chain link: control left the owner for [sc_pc], where [sc_blk]
    was decoded. Valid iff [sc_epoch] is the cache's current epoch and
    [sc_blk] is not stale — validity is entirely target-side. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;  (** wholesale {!invalidate_all} calls *)
  mutable chain_follows : int;  (** direct links followed *)
  mutable chain_breaks : int;  (** dead links severed at probe time *)
  mutable chain_patches : int;  (** links installed (direct and IC) *)
  mutable ic_mono_hits : int;  (** IC hits while the cache held one entry *)
  mutable ic_poly_hits : int;  (** IC hits while the cache held several *)
  mutable ic_misses : int;  (** IC probes that fell back to {!lookup} *)
}

type t

val create :
  ?obs:Hipstr_obs.Obs.t -> isa:string -> ?chain:bool -> Hipstr_isa.Desc.which -> Mem.t -> t
(** Create a cache for one ISA over one memory, watching the four
    standard code-bearing regions (both code sections and both
    code-cache regions; {!Mem.watch} dedupes across ISAs). Counters
    are registered as [machine.<isa>.decode_cache.*],
    [machine.<isa>.chain.*] and [machine.<isa>.ic.*]. [chain]
    (default on) enables successor links; when off, {!follow} always
    misses and {!patch} is a no-op, leaving dispatch exactly as it
    was before chaining existed. *)

val lookup : t -> int -> block option
(** The block starting at an address: a generation-valid cached entry
    (hit), or a freshly decoded and installed one (miss). [None] if
    the address is not cacheable — outside every watched region, or
    no cacheable block forms there — in which case the caller must
    single-step. *)

val find : t -> int -> block
(** Exactly {!lookup}, but raising instead of optioning — the
    allocation-free probe the dispatcher uses.
    @raise Not_found when the address is not cacheable. *)

val stale : block -> bool
(** The block's bytes may have been written since it was decoded.
    Checked by the interpreter before every cached instruction, so
    the fast path is one integer compare against the region
    generation; on a mismatch the block's page span is consulted
    ({!Mem.span_clean}) and [db_gen] re-stamped if the write landed
    elsewhere in the region — a stub patch in another part of the
    code cache no longer evicts every decoded block. *)

val drop : t -> block -> unit
(** Remove one (stale) block. *)

val invalidate_all : t -> unit
(** Drop everything: wired into context-switch flushes, relocation-map
    renewal and code-cache flushes. Also bumps the epoch, killing
    every chain link installed before the call. *)

val follow : t -> block -> int -> block option
(** [follow t pred pc] probes [pred]'s links for the block at [pc].
    Dead links (old epoch, or stale target) are severed and counted
    as breaks; an indirect probe that finds no valid entry counts an
    IC miss. Always [None] when chaining is off. *)

val follow_idx : t -> block -> int -> int
(** {!follow} in index form — the allocation-free probe the
    dispatcher uses: the index [i] of a followable link (the target
    is [pred.db_succs.(i).sc_blk]), or [-1]. *)

val patch : t -> block -> pc:int -> block -> unit
(** [patch t pred ~pc b] installs [pred] --[pc]--> [b] after a follow
    miss. No-op when chaining is off or [pred] is stale; a full
    (megamorphic) IC refuses new entries. *)

val stats : t -> stats

val deposit : t -> unit
(** Deposit the counter deltas accumulated since the last deposit
    into the observability registry. Hit/miss/chain/IC events are
    counted in plain mutable ints on the hot paths ({!stats}) and
    only reach the atomic [Obs.Metrics] counters here — called at
    run exit and after out-of-run invalidations, i.e. before any
    point an export can observe the registry, so exported values are
    unchanged by the batching. *)

val chained : t -> bool

val epoch : t -> int
(** Current link epoch (test introspection). *)

val entries : t -> int
