open Hipstr_isa

(* Packed instruction encoding: one decoded [Minstr.t] flattened into
   three unboxed ints — a meta word plus two payload words — so the
   interpreter's flat dispatcher can retire instructions from a plain
   [int array] without touching boxed variant blocks.

   Meta word layout (low to high):

     bits  0..5   tag (specialized opcode, see below)
     bits  6..9   encoded length in bytes (1..12)
     bits 10..13  sub-opcode: binop code or condition code
     bits 14..15  operand-slot-1 kind (0 none, 1 reg, 2 imm, 3 mem)
     bits 16..17  operand-slot-2 kind
     bits 18..21  operand-slot-1 register
     bits 22..25  operand-slot-2 register

   Payload word 1 carries slot 1's immediate or displacement, or the
   direct transfer target (Jmp/Jcc/Call/Trap/Callrat target, Lea
   constant); payload word 2 carries slot 2's immediate or
   displacement, or Callrat's [src_ret].

   Slot discipline: two-operand forms put the destination (first
   operand) in slot 1 and the source in slot 2; one-operand forms use
   slot 1.

   Tags are specialized by operand-kind combination for the hot
   forms, so the dispatcher's jump table lands directly on e.g.
   reg<-reg moves with no kind tests; every family keeps a generic
   tag covering the remaining (including malformed, e.g.
   immediate-destination) combinations, decoded from the kind bits.
   The encoding is total — [pack] accepts every [Minstr.t] — and
   lossless: {!unpack} returns exactly the instruction and length
   packed, which the round-trip property test pins.

   The interpreter's flat dispatcher matches on literal tag values;
   the numbering here is the single source of truth and must not be
   renumbered without updating [Exec]. The packed-vs-unpacked
   differential suite catches any drift. *)

(* tag values *)
let t_nop = 0
let t_mov_rr = 1
let t_mov_ri = 2
let t_mov_rm = 3
let t_mov_mr = 4
let t_mov_mi = 5
let t_mov_g = 6
let t_lea = 7
let t_bop_rr = 8
let t_bop_ri = 9
let t_bop_g = 10
let t_cmp_rr = 11
let t_cmp_ri = 12
let t_cmp_rm = 13
let t_cmp_g = 14
let t_push_r = 15
let t_push_i = 16
let t_push_g = 17
let t_pop_r = 18
let t_pop_g = 19
let t_jmp = 20
let t_jcc = 21
let t_jmpr_r = 22
let t_jmpr_g = 23
let t_call = 24
let t_callr_r = 25
let t_callr_g = 26
let t_ret = 27
let t_retr = 28
let t_retrat_r = 29
let t_retrat_g = 30
let t_callrat = 31
let t_syscall = 32
let t_trap = 33

let binop_code : Minstr.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Divs -> 3
  | Rems -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10

let cond_code : Minstr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5
  | Ult -> 6
  | Uge -> 7

(* (kind, reg, payload) of one operand. *)
let operand_bits : Minstr.operand -> int * int * int = function
  | Reg r -> (1, r, 0)
  | Imm k -> (2, 0, k)
  | Mem { base; disp } -> (3, base, disp)

let meta ~tag ~len ~sub ~k1 ~k2 ~r1 ~r2 =
  assert (tag >= 0 && tag < 64);
  assert (len >= 1 && len < 16);
  assert (sub >= 0 && sub < 16);
  assert (r1 >= 0 && r1 < 16 && r2 >= 0 && r2 < 16);
  tag lor (len lsl 6) lor (sub lsl 10) lor (k1 lsl 14) lor (k2 lsl 16) lor (r1 lsl 18)
  lor (r2 lsl 22)

let pack (i : Minstr.t) len =
  let m2 ~tag ~sub d s =
    let k1, r1, v1 = operand_bits d in
    let k2, r2, v2 = operand_bits s in
    (meta ~tag ~len ~sub ~k1 ~k2 ~r1 ~r2, v1, v2)
  in
  let m1 ~tag s =
    let k1, r1, v1 = operand_bits s in
    (meta ~tag ~len ~sub:0 ~k1 ~k2:0 ~r1 ~r2:0, v1, 0)
  in
  match i with
  | Nop -> (meta ~tag:t_nop ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, 0, 0)
  | Mov (d, s) ->
    let tag =
      match (d, s) with
      | Reg _, Reg _ -> t_mov_rr
      | Reg _, Imm _ -> t_mov_ri
      | Reg _, Mem _ -> t_mov_rm
      | Mem _, Reg _ -> t_mov_mr
      | Mem _, Imm _ -> t_mov_mi
      | _ -> t_mov_g
    in
    m2 ~tag ~sub:0 d s
  | Lea (d, b, k) -> (meta ~tag:t_lea ~len ~sub:0 ~k1:1 ~k2:1 ~r1:d ~r2:b, k, 0)
  | Binop (op, d, s) ->
    let tag =
      match (d, s) with
      | Reg _, Reg _ -> t_bop_rr
      | Reg _, Imm _ -> t_bop_ri
      | _ -> t_bop_g
    in
    m2 ~tag ~sub:(binop_code op) d s
  | Cmp (a, b) ->
    let tag =
      match (a, b) with
      | Reg _, Reg _ -> t_cmp_rr
      | Reg _, Imm _ -> t_cmp_ri
      | Reg _, Mem _ -> t_cmp_rm
      | _ -> t_cmp_g
    in
    m2 ~tag ~sub:0 a b
  | Push s ->
    m1 ~tag:(match s with Reg _ -> t_push_r | Imm _ -> t_push_i | Mem _ -> t_push_g) s
  | Pop d -> m1 ~tag:(match d with Reg _ -> t_pop_r | _ -> t_pop_g) d
  | Jmp t -> (meta ~tag:t_jmp ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, t, 0)
  | Jcc (c, t) -> (meta ~tag:t_jcc ~len ~sub:(cond_code c) ~k1:0 ~k2:0 ~r1:0 ~r2:0, t, 0)
  | Jmpr s -> m1 ~tag:(match s with Reg _ -> t_jmpr_r | _ -> t_jmpr_g) s
  | Call t -> (meta ~tag:t_call ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, t, 0)
  | Callr s -> m1 ~tag:(match s with Reg _ -> t_callr_r | _ -> t_callr_g) s
  | Ret -> (meta ~tag:t_ret ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, 0, 0)
  | Retr r -> (meta ~tag:t_retr ~len ~sub:0 ~k1:1 ~k2:0 ~r1:r ~r2:0, 0, 0)
  | Retrat s -> m1 ~tag:(match s with Reg _ -> t_retrat_r | _ -> t_retrat_g) s
  | Callrat { target; src_ret } ->
    (meta ~tag:t_callrat ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, target, src_ret)
  | Syscall -> (meta ~tag:t_syscall ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, 0, 0)
  | Trap a -> (meta ~tag:t_trap ~len ~sub:0 ~k1:0 ~k2:0 ~r1:0 ~r2:0, a, 0)

(* meta-word field accessors *)
let tag m = m land 63
let len m = (m lsr 6) land 15
let sub m = (m lsr 10) land 15
let kind1 m = (m lsr 14) land 3
let kind2 m = (m lsr 16) land 3
let reg1 m = (m lsr 18) land 15
let reg2 m = (m lsr 22) land 15

let operand_of k r v : Minstr.operand =
  match k with
  | 1 -> Reg r
  | 2 -> Imm v
  | 3 -> Mem { base = r; disp = v }
  | _ -> invalid_arg "Packed.operand_of: empty operand slot"

let unpack m v1 v2 : Minstr.t * int =
  let op1 () = operand_of (kind1 m) (reg1 m) v1 in
  let op2 () = operand_of (kind2 m) (reg2 m) v2 in
  let i : Minstr.t =
    match tag m with
    | 0 -> Nop
    | 1 | 2 | 3 | 4 | 5 | 6 -> Mov (op1 (), op2 ())
    | 7 -> Lea (reg1 m, reg2 m, v1)
    | 8 | 9 | 10 -> Binop (Minstr.all_binops.(sub m), op1 (), op2 ())
    | 11 | 12 | 13 | 14 -> Cmp (op1 (), op2 ())
    | 15 | 16 | 17 -> Push (op1 ())
    | 18 | 19 -> Pop (op1 ())
    | 20 -> Jmp v1
    | 21 -> Jcc (Minstr.all_conds.(sub m), v1)
    | 22 | 23 -> Jmpr (op1 ())
    | 24 -> Call v1
    | 25 | 26 -> Callr (op1 ())
    | 27 -> Ret
    | 28 -> Retr (reg1 m)
    | 29 | 30 -> Retrat (op1 ())
    | 31 -> Callrat { target = v1; src_ret = v2 }
    | 32 -> Syscall
    | 33 -> Trap v1
    | t -> invalid_arg (Printf.sprintf "Packed.unpack: bad tag %d" t)
  in
  (i, len m)
