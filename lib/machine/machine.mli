(** The simulated heterogeneous-ISA chip multiprocessor.

    One process (memory, architectural register state, OS) and two
    cores — a CISC big core and a RISC little core, each with its own
    caches, branch predictor and (when PSR is enabled) Return Address
    Table. Exactly one core is active at a time; {!switch_core} models
    the hardware side of execution migration (the software side — state
    transformation — is [Hipstr_migration]).

    The register file is shared storage: the migration engine rewrites
    it during a switch, so no transfer is modelled here beyond the
    cold caches the incoming core starts with. *)

type t

val create :
  ?obs:Hipstr_obs.Obs.t ->
  ?rat_capacity:int option ->
  ?icache_kb:int ->
  ?dcache_kb:int ->
  ?decode_cache:bool ->
  ?chain:bool ->
  ?packed:bool ->
  active:Hipstr_isa.Desc.which ->
  unit ->
  t
(** [rat_capacity] defaults to [None] (native mode, no RAT);
    [Some n] enables the modified call/return macro-ops on both
    cores. [obs] (default {!Hipstr_obs.Obs.global}) receives
    per-core instruction/fault/syscall counters and is inherited by
    every component holding this machine (PSR VMs, the migration
    engine). [decode_cache] (default [true]) gives each core a
    predecoded-basic-block cache; [false] is the [--no-decode-cache]
    escape hatch forcing per-instruction decode. [chain] (default
    [true]) lets those caches chain blocks and inline-cache indirect
    targets; [false] is the [--no-chain] escape hatch. [packed]
    (default [true]) retires cached blocks from their packed flat
    int-array form; [false] is the [--no-packed] escape hatch taking
    the boxed [Minstr.t] path (the differential oracle). Results are
    bit-identical in all combinations. *)

val mem : t -> Mem.t
val cpu : t -> Cpu.t
val os : t -> Sys.t
val active : t -> Hipstr_isa.Desc.which
val desc : t -> Hipstr_isa.Desc.t
val env : t -> Exec.env
(** The execution environment of the active core. *)

val rat : t -> Rat.t option
(** The active core's RAT. *)

val obs : t -> Hipstr_obs.Obs.t
(** The observability context this machine reports into. *)

val owner : t -> int
(** The simulated-process pid this machine belongs to (0 for a
    standalone system). Span/audit records carry it so a CMP timeline
    can attribute per-process work. *)

val set_owner : t -> int -> unit

val isa_name : t -> string
(** ["cisc"] or ["risc"], for the active core. *)

val env_of : t -> Hipstr_isa.Desc.which -> Exec.env
(** Memoized: built once per core at {!create}, so calling this per
    quantum neither allocates nor recomputes charge quotients. *)

val packed : t -> bool
(** Whether cached blocks retire from their packed form. *)

val invalidate_decoded : t -> Hipstr_isa.Desc.which -> unit
(** Drop every predecoded block of one core's decode cache. The PSR
    VM calls this on code-cache flush and relocation-map renewal;
    region write generations already guarantee stale blocks never
    execute, so this only models the cold start eagerly. No-op
    without a decode cache. *)

val decode_cache_stats : t -> Hipstr_isa.Desc.which -> Decode_cache.stats option
(** Hit/miss/invalidation/flush plus chain/IC counts of one core's
    decode cache ([None] when running with [--no-decode-cache]). *)

val switch_core : t -> Hipstr_isa.Desc.which -> unit
(** Make the other core active. Counts a migration; register/flag
    reinterpretation is the migration engine's job. *)

val migrations : t -> int

val context_switch_flush : t -> unit
(** Model being context-switched back onto a core another process
    used meanwhile: flush both cores' caches, branch predictors and
    predecoded-block caches (learned state only; cycle/instruction
    counters survive). The CMP
    scheduler calls this on every cold reschedule, so context-switch
    cost shows up in the timing model rather than as a bolted-on
    constant. Counted as [machine.context_switch_flushes]. *)

val boot : t -> entry:int -> unit
(** Initialize SP to the stack top, arrange for a return from the
    entry function to reach the exit sentinel, and set the PC. *)

val step : t -> Exec.outcome

val run : t -> fuel:int -> Exec.trap option

val cycles : t -> float
(** Total cycles accumulated (across both cores). *)

val instructions : t -> int

val seconds : t -> float
(** Wall-clock seconds of simulated execution, respecting each core's
    clock frequency: cycles are converted at the frequency of the core
    they were accumulated on. *)

val quiesce : t -> unit
(** Drop the host-side decode caches of both cores — the checkpoint
    quiesce. Model-invisible (outputs, cycle floats and guest
    counters are unchanged), but it aligns the host decode-counter
    trajectory of the run that *took* a checkpoint with a run
    *restored* from it: both continue decode-cold, so their metrics
    exports stay byte-identical. Called by the snapshot layer before
    serializing. *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize the architectural state (pc, registers, flags, perf
    counters), the OS surface, both cores' cycle-visible
    microarchitecture (i/d-caches, branch predictors, RATs) and the
    per-core cycle attribution. Guest memory is NOT included — the
    snapshot layer delta-compresses it against the fat binary. *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this machine's state from a {!save} image. The machine
    must have been created with the same shape (RAT presence, cache
    geometry) as the saved one.
    @raise Hipstr_util.Wire.Corrupt on any mismatch. *)
