type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable vf : bool }

(* Flat float accumulator: see the interface note — a [mutable float]
   field here would box on every store. *)
type fcell = { mutable c : float }

type perf = {
  cycles : fcell;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable returns : int;
  mutable indirects : int;
  mutable syscalls : int;
}

type t = { mutable pc : int; regs : int array; flags : flags; perf : perf }

let fresh_perf () =
  {
    cycles = { c = 0. };
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    calls = 0;
    returns = 0;
    indirects = 0;
    syscalls = 0;
  }

let create () =
  {
    pc = 0;
    regs = Array.make 16 0;
    flags = { zf = false; sf = false; cf = false; vf = false };
    perf = fresh_perf ();
  }

let reset_perf t =
  let p = t.perf in
  p.cycles.c <- 0.;
  p.instructions <- 0;
  p.loads <- 0;
  p.stores <- 0;
  p.branches <- 0;
  p.calls <- 0;
  p.returns <- 0;
  p.indirects <- 0;
  p.syscalls <- 0

let snapshot_perf t =
  let p = t.perf in
  {
    cycles = { c = p.cycles.c };
    instructions = p.instructions;
    loads = p.loads;
    stores = p.stores;
    branches = p.branches;
    calls = p.calls;
    returns = p.returns;
    indirects = p.indirects;
    syscalls = p.syscalls;
  }

let copy_regs t = Array.copy t.regs
