type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable vf : bool }

(* Integer cycle accounting: the canonical accumulator counts
   femtocycles — fixed-point cycle units at [fc_scale] = 2^20 per
   cycle. Every charge in the simulator is an integer number of
   femtocycles (quotients and penalties are converted once, at
   machine/decode-cache creation), so accumulation is exact integer
   addition with no per-instruction float work and no allocation.

   The scale is a power of two, which makes the fold-back to the
   canonical float cycle count *exact*: [float_of_int fc / 2^20]
   only adjusts the exponent as long as [fc] fits a double's mantissa
   ([fc] < 2^53, i.e. < 2^33 ~ 8.6e9 cycles — far above any run).
   Every consumer of cycles (spans, scheduling clocks, exports,
   snapshots) reads the same fold-back of the same integer, so cycle
   floats are bit-identical across execution variants and job counts
   by construction. *)

let fc_scale = 1 lsl 20

let fc_per_cycle_f = float_of_int fc_scale

(* Femtocycles for a float cycle cost (VM service costs, migration
   charges). Round-to-nearest of the scaled value: deterministic, and
   exact whenever the cost is representable in 2^-20 cycle units. *)
let fc_of_cycles c = int_of_float (Float.round (c *. fc_per_cycle_f))

(* Exact fold-back (see above). *)
let cycles_of_fc fc = float_of_int fc /. fc_per_cycle_f

(* Femtocycles for [lat / throughput]: the per-retirement charge
   quotient, rounded once. Shared by [Machine.env_of] and the packed
   block encoder so both paths charge the same integer. *)
let fc_quotient ~lat ~throughput = fc_of_cycles (float_of_int lat /. throughput)

type perf = {
  mutable cycles_fc : int;  (** femtocycles; [cycles] folds back *)
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable returns : int;
  mutable indirects : int;
  mutable syscalls : int;
}

type t = { mutable pc : int; regs : int array; flags : flags; perf : perf }

let cycles p = cycles_of_fc p.cycles_fc

let fresh_perf () =
  {
    cycles_fc = 0;
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    calls = 0;
    returns = 0;
    indirects = 0;
    syscalls = 0;
  }

let create () =
  {
    pc = 0;
    regs = Array.make 16 0;
    flags = { zf = false; sf = false; cf = false; vf = false };
    perf = fresh_perf ();
  }

let reset_perf t =
  let p = t.perf in
  p.cycles_fc <- 0;
  p.instructions <- 0;
  p.loads <- 0;
  p.stores <- 0;
  p.branches <- 0;
  p.calls <- 0;
  p.returns <- 0;
  p.indirects <- 0;
  p.syscalls <- 0

let snapshot_perf t =
  let p = t.perf in
  {
    cycles_fc = p.cycles_fc;
    instructions = p.instructions;
    loads = p.loads;
    stores = p.stores;
    branches = p.branches;
    calls = p.calls;
    returns = p.returns;
    indirects = p.indirects;
    syscalls = p.syscalls;
  }

let copy_regs t = Array.copy t.regs
