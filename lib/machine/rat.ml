type t = {
  capacity : int;
  table : (int, int * int ref) Hashtbl.t; (* src -> translated, last-use stamp *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity = { capacity; table = Hashtbl.create 64; clock = 0; hits = 0; misses = 0 }

let capacity t = t.capacity

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun src (_, stamp) ->
      match !victim with
      | None -> victim := Some (src, !stamp)
      | Some (_, s) -> if !stamp < s then victim := Some (src, !stamp))
    t.table;
  match !victim with None -> () | Some (src, _) -> Hashtbl.remove t.table src

let insert t ~src ~translated =
  t.clock <- t.clock + 1;
  if (not (Hashtbl.mem t.table src)) && Hashtbl.length t.table >= t.capacity then evict_lru t;
  Hashtbl.replace t.table src (translated, ref t.clock)

let lookup t src =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table src with
  | Some (translated, stamp) ->
    stamp := t.clock;
    t.hits <- t.hits + 1;
    Some translated
  | None ->
    t.misses <- t.misses + 1;
    None

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t = Hashtbl.reset t.table

let remove_in_range t ~lo ~hi =
  let stale =
    Hashtbl.fold
      (fun src (translated, _) acc -> if translated >= lo && translated < hi then src :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale
