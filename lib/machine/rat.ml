(* One RAT entry. Mutable so the hot paths — [insert] on every
   [Callrat] retirement, [find_translated] on every [Retrat] — update
   translated address and LRU stamp in place instead of allocating a
   fresh tuple/ref pair (and a hashtable cons) per call. A record is
   only allocated the first time a source return address is seen. *)
type entry = { mutable e_tr : int; mutable e_stamp : int }

type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t; (* src -> translated, last-use stamp *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity = { capacity; table = Hashtbl.create 64; clock = 0; hits = 0; misses = 0 }

let capacity t = t.capacity

let evict_lru t =
  let victim_src = ref (-1) and victim_stamp = ref max_int in
  Hashtbl.iter
    (fun src e ->
      if e.e_stamp < !victim_stamp then begin
        victim_src := src;
        victim_stamp := e.e_stamp
      end)
    t.table;
  if !victim_src >= 0 then Hashtbl.remove t.table !victim_src

let insert t ~src ~translated =
  t.clock <- t.clock + 1;
  match Hashtbl.find t.table src with
  | e ->
    e.e_tr <- translated;
    e.e_stamp <- t.clock
  | exception Not_found ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    Hashtbl.add t.table src { e_tr = translated; e_stamp = t.clock }

let lookup t src =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table src with
  | Some e ->
    e.e_stamp <- t.clock;
    t.hits <- t.hits + 1;
    Some e.e_tr
  | None ->
    t.misses <- t.misses + 1;
    None

(* Allocation-free lookup for the return hot path: [-1] for a miss
   instead of an option (translated addresses are non-negative).
   [Hashtbl.find]'s [Not_found] is a constant exception, so neither
   arm allocates; [lookup] above keeps the option API for callers off
   the hot path. *)
let find_translated t src =
  t.clock <- t.clock + 1;
  match Hashtbl.find t.table src with
  | e ->
    e.e_stamp <- t.clock;
    t.hits <- t.hits + 1;
    e.e_tr
  | exception Not_found ->
    t.misses <- t.misses + 1;
    -1

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t = Hashtbl.reset t.table

let remove_in_range t ~lo ~hi =
  let stale =
    Hashtbl.fold
      (fun src e acc -> if e.e_tr >= lo && e.e_tr < hi then src :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale

(* --- snapshot ------------------------------------------------------ *)
(* The RAT is model-visible (a miss traps to the VM), so entries and
   their LRU stamps are carried exactly. Stamps are unique (the clock
   is monotone), so [evict_lru]'s iteration-order-independent victim
   choice is preserved whatever the hashtable's internal layout after
   the rebuild. Entries are written sorted by source address to keep
   the image bytes deterministic. *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "RAT";
  let entries =
    List.sort compare
      (Hashtbl.fold (fun src e acc -> (src, e.e_tr, e.e_stamp) :: acc) t.table [])
  in
  Wire.list w
    (fun w (src, tr, stamp) ->
      Wire.int w src;
      Wire.int w tr;
      Wire.int w stamp)
    entries;
  Wire.int w t.clock;
  Wire.int w t.hits;
  Wire.int w t.misses

let restore t r =
  Wire.expect_tag r "RAT";
  let entries =
    Wire.r_list r (fun r ->
        let src = Wire.r_int r in
        let tr = Wire.r_int r in
        let stamp = Wire.r_int r in
        (src, tr, stamp))
  in
  if List.length entries > t.capacity then
    Wire.corrupt "RAT image holds %d entries but capacity is %d" (List.length entries) t.capacity;
  Hashtbl.reset t.table;
  List.iter
    (fun (src, tr, stamp) -> Hashtbl.replace t.table src { e_tr = tr; e_stamp = stamp })
    entries;
  t.clock <- Wire.r_int r;
  t.hits <- Wire.r_int r;
  t.misses <- Wire.r_int r
