type t = {
  capacity : int;
  table : (int, int * int ref) Hashtbl.t; (* src -> translated, last-use stamp *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity = { capacity; table = Hashtbl.create 64; clock = 0; hits = 0; misses = 0 }

let capacity t = t.capacity

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun src (_, stamp) ->
      match !victim with
      | None -> victim := Some (src, !stamp)
      | Some (_, s) -> if !stamp < s then victim := Some (src, !stamp))
    t.table;
  match !victim with None -> () | Some (src, _) -> Hashtbl.remove t.table src

let insert t ~src ~translated =
  t.clock <- t.clock + 1;
  if (not (Hashtbl.mem t.table src)) && Hashtbl.length t.table >= t.capacity then evict_lru t;
  Hashtbl.replace t.table src (translated, ref t.clock)

let lookup t src =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table src with
  | Some (translated, stamp) ->
    stamp := t.clock;
    t.hits <- t.hits + 1;
    Some translated
  | None ->
    t.misses <- t.misses + 1;
    None

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t = Hashtbl.reset t.table

let remove_in_range t ~lo ~hi =
  let stale =
    Hashtbl.fold
      (fun src (translated, _) acc -> if translated >= lo && translated < hi then src :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale

(* --- snapshot ------------------------------------------------------ *)
(* The RAT is model-visible (a miss traps to the VM), so entries and
   their LRU stamps are carried exactly. Stamps are unique (the clock
   is monotone), so [evict_lru]'s iteration-order-independent victim
   choice is preserved whatever the hashtable's internal layout after
   the rebuild. Entries are written sorted by source address to keep
   the image bytes deterministic. *)

module Wire = Hipstr_util.Wire

let save w t =
  Wire.tag w "RAT";
  let entries =
    List.sort compare
      (Hashtbl.fold (fun src (tr, stamp) acc -> (src, tr, !stamp) :: acc) t.table [])
  in
  Wire.list w
    (fun w (src, tr, stamp) ->
      Wire.int w src;
      Wire.int w tr;
      Wire.int w stamp)
    entries;
  Wire.int w t.clock;
  Wire.int w t.hits;
  Wire.int w t.misses

let restore t r =
  Wire.expect_tag r "RAT";
  let entries =
    Wire.r_list r (fun r ->
        let src = Wire.r_int r in
        let tr = Wire.r_int r in
        let stamp = Wire.r_int r in
        (src, tr, stamp))
  in
  if List.length entries > t.capacity then
    Wire.corrupt "RAT image holds %d entries but capacity is %d" (List.length entries) t.capacity;
  Hashtbl.reset t.table;
  List.iter (fun (src, tr, stamp) -> Hashtbl.replace t.table src (tr, ref stamp)) entries;
  t.clock <- Wire.r_int r;
  t.hits <- Wire.r_int r;
  t.misses <- Wire.r_int r
