open Hipstr_isa
module Obs = Hipstr_obs.Obs

(* A predecoded basic block: the instructions starting at [db_start],
   decoded under generation [db_gen] of the watched region containing
   them, up to (and including) the first control transfer. [db_bad]
   marks a block whose decode failed at [db_end] — executing past the
   last instruction faults there, exactly as per-instruction decode
   would have.

   Validity invariant: every byte any cached decode depended on lies
   inside [db_region] (instructions are only admitted when their full
   encoding fits; a [db_bad] verdict is only cached with
   [max_decode_window] bytes of headroom). A write anywhere in the
   region bumps its generation, so [db_gen <> generation db_region]
   is a sound, complete staleness test — checked before every
   instruction, which makes cached execution bit-identical to
   per-instruction decode even for code that rewrites itself
   mid-block. *)
type block = {
  db_start : int;
  db_instrs : Minstr.t array;
  db_lens : int array;
  db_end : int;  (** first address past the last decoded instruction *)
  db_bad : bool;  (** decode failed at [db_end] *)
  db_region : Mem.region;
  db_gen : int;
  db_indirect : bool;
      (** terminator is an indirect transfer (register jump/call or
          return): successor links form an inline cache keyed by the
          runtime target pc instead of a fixed direct link *)
  mutable db_succs : succ array;
}

(* A chain link: "control left the owning block for [sc_pc], and the
   block decoded there was [sc_blk]". Validity is entirely
   target-side — the link may be followed iff it was installed under
   the current cache epoch (no wholesale invalidation since) and
   [sc_blk] is not stale (no write in its region since it was
   decoded). Nothing about the owner matters: even a stale owner's
   links are safe, because they only ever name where control goes
   next, never what the owner's bytes were. *)
and succ = { sc_pc : int; sc_blk : block; sc_epoch : int }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
  mutable chain_follows : int;
  mutable chain_breaks : int;
  mutable chain_patches : int;
  mutable ic_mono_hits : int;
  mutable ic_poly_hits : int;
  mutable ic_misses : int;
}

type counters = {
  cn_hits : Obs.Metrics.counter;
  cn_misses : Obs.Metrics.counter;
  cn_invalidations : Obs.Metrics.counter;
  cn_chain_follows : Obs.Metrics.counter;
  cn_chain_breaks : Obs.Metrics.counter;
  cn_chain_patches : Obs.Metrics.counter;
  cn_ic_mono : Obs.Metrics.counter;
  cn_ic_poly : Obs.Metrics.counter;
  cn_ic_misses : Obs.Metrics.counter;
}

type t = {
  which : Desc.which;
  mem : Mem.t;
  read : int -> int;  (** preallocated reader over [mem] *)
  blocks : (int, block) Hashtbl.t;
  chained : bool;  (** follow/patch successor links at block boundaries *)
  mutable epoch : int;
      (** bumped by every wholesale invalidation; links recorded under
          an older epoch are dead even though their target block object
          may look fresh *)
  st : stats;
  obs : Obs.t;
  ctrs : counters;
}

(* Block-size cap: a longer straight-line run simply splits into
   several blocks, so the cap bounds per-entry memory without
   changing semantics. *)
let max_block_instrs = 128

(* Upper bound on the bytes a single decode may inspect (the widest
   CISC form reads 10; RISC reads 12 for Callrat). A [None] verdict
   may have depended on that many bytes, so it is only cached with
   this much in-region headroom. *)
let max_decode_window = 16

(* Entry-count safety valve: execution only ever starts blocks at
   addresses it reaches, so this is far above any real working set;
   a pathological address walk resets the table instead of growing
   without bound. *)
let max_entries = 1 lsl 16

let create ?(obs = Obs.global) ~isa ?(chain = true) which mem =
  (* The four standard code-bearing regions; [Mem.watch] dedupes, so
     the CISC and RISC caches of one machine share region handles. *)
  ignore
    (Mem.watch mem ~lo:Layout.cisc_code_base
       ~hi:(Layout.cisc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_code_base
       ~hi:(Layout.risc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.cisc_cache_base
       ~hi:(Layout.cisc_cache_base + Layout.cache_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_cache_base
       ~hi:(Layout.risc_cache_base + Layout.cache_region_size));
  let counter ns n = Obs.Metrics.counter (Obs.metrics obs) ("machine." ^ isa ^ "." ^ ns ^ "." ^ n) in
  {
    which;
    mem;
    read = Mem.reader mem;
    blocks = Hashtbl.create 1024;
    chained = chain;
    epoch = 0;
    st =
      {
        hits = 0;
        misses = 0;
        invalidations = 0;
        flushes = 0;
        chain_follows = 0;
        chain_breaks = 0;
        chain_patches = 0;
        ic_mono_hits = 0;
        ic_poly_hits = 0;
        ic_misses = 0;
      };
    obs;
    ctrs =
      {
        cn_hits = counter "decode_cache" "hits";
        cn_misses = counter "decode_cache" "misses";
        cn_invalidations = counter "decode_cache" "invalidations";
        cn_chain_follows = counter "chain" "follows";
        cn_chain_breaks = counter "chain" "breaks";
        cn_chain_patches = counter "chain" "patches";
        cn_ic_mono = counter "ic" "mono_hits";
        cn_ic_poly = counter "ic" "poly_hits";
        cn_ic_misses = counter "ic" "misses";
      };
  }

let stats t = t.st
let chained t = t.chained
let epoch t = t.epoch

let stale b = Mem.generation b.db_region <> b.db_gen

let is_terminator (i : Minstr.t) =
  match i with
  | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _ | Ret | Retr _ | Retrat _ | Callrat _ | Trap _ ->
    true
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall -> false

(* Indirect terminators: the successor pc depends on runtime state
   (register, stack or RAT contents), so a single direct link cannot
   name it — these blocks carry an inline cache instead. [Callrat] is
   direct: its transfer target is baked into the encoding. *)
let is_indirect_terminator (i : Minstr.t) =
  match i with
  | Jmpr _ | Callr _ | Ret | Retr _ | Retrat _ -> true
  | Jmp _ | Jcc _ | Call _ | Callrat _ | Trap _ -> false
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall -> false

let decode_one t addr =
  match t.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read:t.read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read:t.read addr

(* Decode a block starting at [start] inside [region]. Returns [None]
   when nothing cacheable could be formed (first instruction does not
   fit the region, or an uncacheable [None] verdict right at the
   start) — the interpreter falls back to single-stepping. *)
let decode_block t region start =
  let hi = Mem.region_hi region in
  let gen = Mem.generation region in
  let instrs = ref [] in
  let lens = ref [] in
  let count = ref 0 in
  let pos = ref start in
  let bad = ref false in
  let stop = ref false in
  while not !stop do
    if !count >= max_block_instrs then stop := true
    else
      match decode_one t !pos with
      | None ->
        (* cache the bad verdict only when every byte the decoder may
           have looked at is inside the region *)
        if !pos + max_decode_window <= hi then bad := true;
        stop := true
      | Some (i, len) ->
        if !pos + len > hi then stop := true (* encoding crosses the region edge *)
        else begin
          instrs := i :: !instrs;
          lens := len :: !lens;
          incr count;
          pos := !pos + len;
          if is_terminator i then stop := true
        end
  done;
  if !count = 0 && not !bad then None
  else
    let indirect =
      match !instrs with last :: _ -> is_indirect_terminator last | [] -> false
    in
    Some
      {
        db_start = start;
        db_instrs = Array.of_list (List.rev !instrs);
        db_lens = Array.of_list (List.rev !lens);
        db_end = !pos;
        db_bad = !bad;
        db_region = region;
        db_gen = gen;
        db_indirect = indirect;
        db_succs = [||];
      }

(* Find (or decode and install) the block starting at [addr]. [None]
   means the address is not cacheable — not inside a watched region,
   or no cacheable block forms there — and the caller must fall back
   to plain single-step execution. Hits are generation-checked here;
   a stale entry is dropped and re-decoded under the current
   generation. *)
let lookup t addr =
  match Hashtbl.find_opt t.blocks addr with
  | Some b when not (stale b) ->
    t.st.hits <- t.st.hits + 1;
    if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_hits;
    Some b
  | found -> (
    (match found with
    | Some _ ->
      Hashtbl.remove t.blocks addr;
      t.st.invalidations <- t.st.invalidations + 1;
      if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_invalidations
    | None -> ());
    match Mem.region_of t.mem addr with
    | None -> None
    | Some region -> (
      match decode_block t region addr with
      | None -> None
      | Some b ->
        if Hashtbl.length t.blocks >= max_entries then begin
          Hashtbl.reset t.blocks;
          (* the reset unroots every block, so kill chain links into
             them too instead of letting them pin the old table alive *)
          t.epoch <- t.epoch + 1
        end;
        Hashtbl.replace t.blocks addr b;
        t.st.misses <- t.st.misses + 1;
        if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_misses;
        Some b))

(* Drop one stale block (the interpreter noticed a mid-block
   generation change). *)
let drop t (b : block) =
  if Hashtbl.mem t.blocks b.db_start then begin
    Hashtbl.remove t.blocks b.db_start;
    t.st.invalidations <- t.st.invalidations + 1;
    if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_invalidations
  end

(* Wholesale invalidation: context-switch flushes, relocation-map
   renewal and code-cache flushes all call this. Generations already
   make every write safe; dropping the table additionally models the
   cold-start and frees memory eagerly. *)
let invalidate_all t =
  let n = Hashtbl.length t.blocks in
  if n > 0 then begin
    Hashtbl.reset t.blocks;
    t.st.invalidations <- t.st.invalidations + n;
    if Obs.on t.obs then Obs.Metrics.incr ~by:n t.ctrs.cn_invalidations
  end;
  (* Epoch bump: every link installed before this point dies at its
     next probe, even when its target block object still looks fresh
     (generations only advance on writes; a flush is not a write). *)
  t.epoch <- t.epoch + 1;
  t.st.flushes <- t.st.flushes + 1

let entries t = Hashtbl.length t.blocks

(* ------------------------------------------------------------------ *)
(* Block chaining and indirect-branch inline caches.

   A direct-terminator block holds at most [max_direct_succs] links
   (a conditional branch has exactly two possible successors; every
   other direct terminator has one). An indirect-terminator block's
   links form an inline cache keyed by the runtime target pc:
   monomorphic at one entry, polymorphic up to [max_ic_succs], and
   megamorphic beyond that — it stops patching and every arrival
   takes the dispatcher's table probe, which is the semantic
   fallback at all times anyway. *)

let max_direct_succs = 2
let max_ic_succs = 4

let remove_succ (b : block) i =
  let s = b.db_succs in
  let n = Array.length s in
  if n <= 1 then b.db_succs <- [||]
  else begin
    let s' = Array.make (n - 1) s.(0) in
    Array.blit s 0 s' 0 i;
    Array.blit s (i + 1) s' i (n - 1 - i);
    b.db_succs <- s'
  end

(* Follow [b]'s link for [pc]. A matching entry is followed iff its
   epoch is current and its target is fresh (see [succ]); a dead
   entry is severed on sight so it cannot pin a dropped block, and
   the caller falls back to [lookup] (which re-decodes and then
   [patch]es the new block back in). *)
let follow t (b : block) pc =
  if not t.chained then None
  else begin
    let succs = b.db_succs in
    let n = Array.length succs in
    let st = t.st in
    let miss () =
      if b.db_indirect then begin
        st.ic_misses <- st.ic_misses + 1;
        if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_ic_misses
      end
    in
    let rec scan i =
      if i >= n then begin
        miss ();
        None
      end
      else
        let s = Array.unsafe_get succs i in
        if s.sc_pc <> pc then scan (i + 1)
        else if s.sc_epoch = t.epoch && not (stale s.sc_blk) then begin
          (if b.db_indirect then
             if n = 1 then begin
               st.ic_mono_hits <- st.ic_mono_hits + 1;
               if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_ic_mono
             end
             else begin
               st.ic_poly_hits <- st.ic_poly_hits + 1;
               if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_ic_poly
             end
           else begin
             st.chain_follows <- st.chain_follows + 1;
             if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_chain_follows
           end);
          Some s.sc_blk
        end
        else begin
          remove_succ b i;
          st.chain_breaks <- st.chain_breaks + 1;
          if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_chain_breaks;
          miss ();
          None
        end
    in
    scan 0
  end

(* Install [pred] --[pc]--> [b] after a follow miss. Dead entries are
   pruned first. A full direct set replaces its oldest slot (only
   reachable when [pred] went stale mid-trace, since a fresh block
   has at most two possible successors); a full IC goes megamorphic
   and stops patching. A stale [pred] is never patched — it is about
   to be dropped, and patching it would only delay collection. *)
let patch t (pred : block) ~pc (b : block) =
  if t.chained && not (stale pred) then begin
    let epoch = t.epoch in
    let live =
      Array.to_list pred.db_succs
      |> List.filter (fun s -> s.sc_epoch = epoch && (not (stale s.sc_blk)) && s.sc_pc <> pc)
    in
    let cap = if pred.db_indirect then max_ic_succs else max_direct_succs in
    let installed =
      let entry = { sc_pc = pc; sc_blk = b; sc_epoch = epoch } in
      if List.length live < cap then begin
        pred.db_succs <- Array.of_list (live @ [ entry ]);
        true
      end
      else if not pred.db_indirect then begin
        pred.db_succs <- Array.of_list (List.tl live @ [ entry ]);
        true
      end
      else begin
        (* megamorphic: keep the live entries, refuse the new one *)
        pred.db_succs <- Array.of_list live;
        false
      end
    in
    if installed then begin
      t.st.chain_patches <- t.st.chain_patches + 1;
      if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_chain_patches
    end
  end
