open Hipstr_isa
module Obs = Hipstr_obs.Obs

(* A predecoded basic block: the instructions starting at [db_start],
   decoded under generation [db_gen] of the watched region containing
   them, up to (and including) the first control transfer. [db_bad]
   marks a block whose decode failed at [db_end] — executing past the
   last instruction faults there, exactly as per-instruction decode
   would have.

   Alongside the boxed [db_instrs] the block carries [db_code]: the
   same instructions flattened into an unboxed int array, four words
   per instruction — {!Packed} meta word, two payload words, and the
   precomputed per-retirement femtocycle charge. The flat dispatcher
   in [Exec.run_cached] retires from [db_code] without touching a
   variant block; [db_instrs] remains the [--no-packed] escape hatch
   and the differential oracle.

   Validity invariant: every byte any cached decode depended on lies
   inside [db_region] between [db_start] and [db_end] plus
   [max_decode_window] bytes of trailing headroom (instructions are
   only admitted when their full encoding fits; a [db_bad] verdict is
   only cached with that headroom in-region). A write anywhere in the
   region bumps its generation, so [db_gen = generation db_region]
   proves freshness with one compare — checked before every
   instruction, which makes cached execution bit-identical to
   per-instruction decode even for code that rewrites itself
   mid-block. On a generation mismatch {!stale} consults the region's
   page stamps ([Mem.span_clean]): if no write actually landed on the
   block's own bytes the block re-stamps [db_gen] and lives on —
   without this, every stub patch the VM writes would flush every
   decoded block of the code-cache region. *)
type block = {
  db_start : int;
  db_instrs : Minstr.t array;
  db_lens : int array;
  db_code : int array;
      (** packed flat encoding: 4 ints per instruction
          (meta, payload1, payload2, femtocycle charge) *)
  db_end : int;  (** first address past the last decoded instruction *)
  db_bad : bool;  (** decode failed at [db_end] *)
  db_region : Mem.region;
  mutable db_gen : int;
  db_indirect : bool;
      (** terminator is an indirect transfer (register jump/call or
          return): successor links form an inline cache keyed by the
          runtime target pc instead of a fixed direct link *)
  mutable db_succs : succ array;
}

(* A chain link: "control left the owning block for [sc_pc], and the
   block decoded there was [sc_blk]". Validity is entirely
   target-side — the link may be followed iff it was installed under
   the current cache epoch (no wholesale invalidation since) and
   [sc_blk] is not stale (no write in its region since it was
   decoded). Nothing about the owner matters: even a stale owner's
   links are safe, because they only ever name where control goes
   next, never what the owner's bytes were. *)
and succ = { sc_pc : int; sc_blk : block; sc_epoch : int }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
  mutable chain_follows : int;
  mutable chain_breaks : int;
  mutable chain_patches : int;
  mutable ic_mono_hits : int;
  mutable ic_poly_hits : int;
  mutable ic_misses : int;
}

type counters = {
  cn_hits : Obs.Metrics.counter;
  cn_misses : Obs.Metrics.counter;
  cn_invalidations : Obs.Metrics.counter;
  cn_chain_follows : Obs.Metrics.counter;
  cn_chain_breaks : Obs.Metrics.counter;
  cn_chain_patches : Obs.Metrics.counter;
  cn_ic_mono : Obs.Metrics.counter;
  cn_ic_poly : Obs.Metrics.counter;
  cn_ic_misses : Obs.Metrics.counter;
}

type t = {
  which : Desc.which;
  mem : Mem.t;
  read : int -> int;  (** preallocated reader over [mem] *)
  read_unsafe : int -> int;
      (** bounds-check-free byte reader over the backing arena; only
          handed to the decoder when the whole decode window provably
          lies inside a watched region (see [decode_block]) *)
  blocks : (int, block) Hashtbl.t;
  chained : bool;  (** follow/patch successor links at block boundaries *)
  mutable epoch : int;
      (** bumped by every wholesale invalidation; links recorded under
          an older epoch are dead even though their target block object
          may look fresh *)
  (* Per-retirement femtocycle charges for this ISA's core, baked into
     [db_code] at decode time. Computed through {!Cpu.fc_quotient},
     the same function [Machine.env_of] memoizes for the unpacked
     path, so both paths charge identical integers. *)
  q1 : int;
  q2 : int;
  qmul : int;
  qdiv : int;
  st : stats;
  dep : stats;
      (** counter values already deposited into [ctrs]; [deposit]
          adds the [st] - [dep] deltas and catches [dep] up, so the
          hot paths above never touch an atomic *)
  obs : Obs.t;
  ctrs : counters;
}

(* Block-size cap: a longer straight-line run simply splits into
   several blocks, so the cap bounds per-entry memory without
   changing semantics. *)
let max_block_instrs = 128

(* Upper bound on the bytes a single decode may inspect (the widest
   CISC form reads 10; RISC reads 12 for Callrat). A [None] verdict
   may have depended on that many bytes, so it is only cached with
   this much in-region headroom. *)
let max_decode_window = 16

(* Entry-count safety valve: execution only ever starts blocks at
   addresses it reaches, so this is far above any real working set;
   a pathological address walk resets the table instead of growing
   without bound. *)
let max_entries = 1 lsl 16

let zero_stats () =
  {
    hits = 0;
    misses = 0;
    invalidations = 0;
    flushes = 0;
    chain_follows = 0;
    chain_breaks = 0;
    chain_patches = 0;
    ic_mono_hits = 0;
    ic_poly_hits = 0;
    ic_misses = 0;
  }

let create ?(obs = Obs.global) ~isa ?(chain = true) which mem =
  (* The four standard code-bearing regions; [Mem.watch] dedupes, so
     the CISC and RISC caches of one machine share region handles. *)
  ignore
    (Mem.watch mem ~lo:Layout.cisc_code_base
       ~hi:(Layout.cisc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_code_base
       ~hi:(Layout.risc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.cisc_cache_base
       ~hi:(Layout.cisc_cache_base + Layout.cache_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_cache_base
       ~hi:(Layout.risc_cache_base + Layout.cache_region_size));
  let counter ns n = Obs.Metrics.counter (Obs.metrics obs) ("machine." ^ isa ^ "." ^ ns ^ "." ^ n) in
  let core = Core_desc.for_isa which in
  {
    which;
    mem;
    read = Mem.reader mem;
    read_unsafe = (fun a -> Mem.unsafe_read8 mem a);
    blocks = Hashtbl.create 1024;
    chained = chain;
    epoch = 0;
    q1 = Cpu.fc_quotient ~lat:1 ~throughput:core.throughput;
    q2 = Cpu.fc_quotient ~lat:2 ~throughput:core.throughput;
    qmul = Cpu.fc_quotient ~lat:core.mul_latency ~throughput:core.throughput;
    qdiv = Cpu.fc_quotient ~lat:core.div_latency ~throughput:core.throughput;
    st = zero_stats ();
    dep = zero_stats ();
    obs;
    ctrs =
      {
        cn_hits = counter "decode_cache" "hits";
        cn_misses = counter "decode_cache" "misses";
        cn_invalidations = counter "decode_cache" "invalidations";
        cn_chain_follows = counter "chain" "follows";
        cn_chain_breaks = counter "chain" "breaks";
        cn_chain_patches = counter "chain" "patches";
        cn_ic_mono = counter "ic" "mono_hits";
        cn_ic_poly = counter "ic" "poly_hits";
        cn_ic_misses = counter "ic" "misses";
      };
  }

let stats t = t.st
let chained t = t.chained
let epoch t = t.epoch

(* Deposit the counter deltas accumulated (in plain mutable ints)
   since the last deposit. Called at run exit and after wholesale
   invalidations — i.e. before any point where the metrics registry
   can be exported — so exported values are identical to what
   per-event increments would have produced, without the hot paths
   ever touching an atomic. *)
let deposit t =
  let st = t.st and d = t.dep and c = t.ctrs in
  Obs.Metrics.add c.cn_hits (st.hits - d.hits);
  d.hits <- st.hits;
  Obs.Metrics.add c.cn_misses (st.misses - d.misses);
  d.misses <- st.misses;
  Obs.Metrics.add c.cn_invalidations (st.invalidations - d.invalidations);
  d.invalidations <- st.invalidations;
  Obs.Metrics.add c.cn_chain_follows (st.chain_follows - d.chain_follows);
  d.chain_follows <- st.chain_follows;
  Obs.Metrics.add c.cn_chain_breaks (st.chain_breaks - d.chain_breaks);
  d.chain_breaks <- st.chain_breaks;
  Obs.Metrics.add c.cn_chain_patches (st.chain_patches - d.chain_patches);
  d.chain_patches <- st.chain_patches;
  Obs.Metrics.add c.cn_ic_mono (st.ic_mono_hits - d.ic_mono_hits);
  d.ic_mono_hits <- st.ic_mono_hits;
  Obs.Metrics.add c.cn_ic_poly (st.ic_poly_hits - d.ic_poly_hits);
  d.ic_poly_hits <- st.ic_poly_hits;
  Obs.Metrics.add c.cn_ic_misses (st.ic_misses - d.ic_misses);
  d.ic_misses <- st.ic_misses

(* Slow path, reached only on a generation mismatch: survive if the
   block's own bytes (decode span plus trailing headroom) are
   untouched; the re-stamp restores the fast path until the region's
   next write. ([span_clean] never moves the region generation, so
   re-reading it here sees the same value the caller compared.) *)
let stale_slow b =
  if
    Mem.span_clean b.db_region ~lo:b.db_start ~hi:(b.db_end + max_decode_window)
      ~since:b.db_gen
  then begin
    b.db_gen <- Mem.generation b.db_region;
    false
  end
  else true

(* Fast path: one compare, [@inline] so the per-instruction staleness
   check in the dispatch loops is two loads and a branch rather than a
   cross-module call. *)
let[@inline] stale b = Mem.generation b.db_region <> b.db_gen && stale_slow b

let is_terminator (i : Minstr.t) =
  match i with
  | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _ | Ret | Retr _ | Retrat _ | Callrat _ | Trap _ ->
    true
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall -> false

(* Indirect terminators: the successor pc depends on runtime state
   (register, stack or RAT contents), so a single direct link cannot
   name it — these blocks carry an inline cache instead. [Callrat] is
   direct: its transfer target is baked into the encoding. *)
let is_indirect_terminator (i : Minstr.t) =
  match i with
  | Jmpr _ | Callr _ | Ret | Retr _ | Retrat _ -> true
  | Jmp _ | Jcc _ | Call _ | Callrat _ | Trap _ -> false
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall -> false

let decode_with t ~read addr =
  match t.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read addr

(* The per-retirement charge the execution engine levies for [i],
   in femtocycles — must mirror [Exec]'s charge selection exactly
   (Syscall and Trap charge nothing at retirement: the syscall fee
   is levied inside the handler, a trap stops before charging). *)
let charge_fc t (i : Minstr.t) =
  match i with
  | Syscall | Trap _ -> 0
  | Binop (Mul, _, _) -> t.qmul
  | Binop ((Divs | Rems), _, _) -> t.qdiv
  | Call _ | Callr _ | Ret | Retr _ | Retrat _ | Callrat _ -> t.q2
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Jmp _ | Jcc _ | Jmpr _ -> t.q1

(* Decode a block starting at [start] inside [region]. Returns [None]
   when nothing cacheable could be formed (first instruction does not
   fit the region, or an uncacheable [None] verdict right at the
   start) — the interpreter falls back to single-stepping. *)
let decode_block t region start =
  let hi = Mem.region_hi region in
  let gen = Mem.generation region in
  let instrs = ref [] in
  let lens = ref [] in
  let count = ref 0 in
  let pos = ref start in
  let bad = ref false in
  let stop = ref false in
  while not !stop do
    if !count >= max_block_instrs then stop := true
    else begin
      (* Block-local sequential fetch: while the whole decode window
         fits under the region top it also fits the arena ([watch]
         checked the region bounds at registration), so the per-byte
         bounds test in [probe8] is provably redundant and the
         unchecked reader is sound. Near the region edge, fall back
         to the checked reader, whose out-of-range contract ([-1],
         i.e. 0xFF bytes) the decoders rely on. *)
      let read = if !pos + max_decode_window <= hi then t.read_unsafe else t.read in
      match decode_with t ~read !pos with
      | None ->
        (* cache the bad verdict only when every byte the decoder may
           have looked at is inside the region *)
        if !pos + max_decode_window <= hi then bad := true;
        stop := true
      | Some (i, len) ->
        if !pos + len > hi then stop := true (* encoding crosses the region edge *)
        else begin
          instrs := i :: !instrs;
          lens := len :: !lens;
          incr count;
          pos := !pos + len;
          if is_terminator i then stop := true
        end
    end
  done;
  if !count = 0 && not !bad then None
  else begin
    let indirect =
      match !instrs with last :: _ -> is_indirect_terminator last | [] -> false
    in
    let instrs = Array.of_list (List.rev !instrs) in
    let lens = Array.of_list (List.rev !lens) in
    let n = Array.length instrs in
    let code = Array.make (4 * n) 0 in
    for k = 0 to n - 1 do
      let i = instrs.(k) in
      let m, v1, v2 = Packed.pack i lens.(k) in
      code.(4 * k) <- m;
      code.((4 * k) + 1) <- v1;
      code.((4 * k) + 2) <- v2;
      code.((4 * k) + 3) <- charge_fc t i
    done;
    Some
      {
        db_start = start;
        db_instrs = instrs;
        db_lens = lens;
        db_code = code;
        db_end = !pos;
        db_bad = !bad;
        db_region = region;
        db_gen = gen;
        db_indirect = indirect;
        db_succs = [||];
      }
  end

(* Decode-and-install slow path of [find].
   @raise Not_found when the address is not cacheable. *)
let decode_install t addr =
  match Mem.region_of t.mem addr with
  | None -> raise Not_found
  | Some region -> (
    match decode_block t region addr with
    | None -> raise Not_found
    | Some b ->
      if Hashtbl.length t.blocks >= max_entries then begin
        Hashtbl.reset t.blocks;
        (* the reset unroots every block, so kill chain links into
           them too instead of letting them pin the old table alive *)
        t.epoch <- t.epoch + 1
      end;
      Hashtbl.replace t.blocks addr b;
      t.st.misses <- t.st.misses + 1;
      b)

(* Find (or decode and install) the block starting at [addr] —
   the dispatcher's allocation-free probe. Hits are generation-checked
   here; a stale entry is dropped and re-decoded under the current
   generation.
   @raise Not_found when the address is not cacheable — not inside a
   watched region, or no cacheable block forms there — and the caller
   must fall back to plain single-step execution. *)
let find t addr =
  match Hashtbl.find t.blocks addr with
  | b ->
    if not (stale b) then begin
      t.st.hits <- t.st.hits + 1;
      b
    end
    else begin
      Hashtbl.remove t.blocks addr;
      t.st.invalidations <- t.st.invalidations + 1;
      decode_install t addr
    end
  | exception Not_found -> decode_install t addr

let lookup t addr = match find t addr with b -> Some b | exception Not_found -> None

(* Drop one stale block (the interpreter noticed a mid-block
   generation change). *)
let drop t (b : block) =
  if Hashtbl.mem t.blocks b.db_start then begin
    Hashtbl.remove t.blocks b.db_start;
    t.st.invalidations <- t.st.invalidations + 1
  end

(* Wholesale invalidation: context-switch flushes, relocation-map
   renewal and code-cache flushes all call this. Generations already
   make every write safe; dropping the table additionally models the
   cold-start and frees memory eagerly. Callers outside a run (the
   machine's flush paths) follow up with [deposit] so the batched
   invalidation counts are visible to the next export. *)
let invalidate_all t =
  let n = Hashtbl.length t.blocks in
  if n > 0 then begin
    Hashtbl.reset t.blocks;
    t.st.invalidations <- t.st.invalidations + n
  end;
  (* Epoch bump: every link installed before this point dies at its
     next probe, even when its target block object still looks fresh
     (generations only advance on writes; a flush is not a write). *)
  t.epoch <- t.epoch + 1;
  t.st.flushes <- t.st.flushes + 1

let entries t = Hashtbl.length t.blocks

(* ------------------------------------------------------------------ *)
(* Block chaining and indirect-branch inline caches.

   A direct-terminator block holds at most [max_direct_succs] links
   (a conditional branch has exactly two possible successors; every
   other direct terminator has one). An indirect-terminator block's
   links form an inline cache keyed by the runtime target pc:
   monomorphic at one entry, polymorphic up to [max_ic_succs], and
   megamorphic beyond that — it stops patching and every arrival
   takes the dispatcher's table probe, which is the semantic
   fallback at all times anyway. *)

let max_direct_succs = 2
let max_ic_succs = 4

let remove_succ (b : block) i =
  let s = b.db_succs in
  let n = Array.length s in
  if n <= 1 then b.db_succs <- [||]
  else begin
    let s' = Array.make (n - 1) s.(0) in
    Array.blit s 0 s' 0 i;
    Array.blit s (i + 1) s' i (n - 1 - i);
    b.db_succs <- s'
  end

(* The link scan behind [follow_idx]: a top-level function (a local
   [let rec] would allocate a closure per block dispatch). Returns
   the index of a followable link in [succs], or [-1]; stats are
   bumped exactly as the option-returning [follow] always did. *)
let rec follow_scan t (b : block) succs n pc i =
  if i >= n then begin
    if b.db_indirect then t.st.ic_misses <- t.st.ic_misses + 1;
    -1
  end
  else
    let s = Array.unsafe_get succs i in
    if s.sc_pc <> pc then follow_scan t b succs n pc (i + 1)
    else if s.sc_epoch = t.epoch && not (stale s.sc_blk) then begin
      (if b.db_indirect then
         if n = 1 then t.st.ic_mono_hits <- t.st.ic_mono_hits + 1
         else t.st.ic_poly_hits <- t.st.ic_poly_hits + 1
       else t.st.chain_follows <- t.st.chain_follows + 1);
      i
    end
    else begin
      remove_succ b i;
      t.st.chain_breaks <- t.st.chain_breaks + 1;
      if b.db_indirect then t.st.ic_misses <- t.st.ic_misses + 1;
      -1
    end

(* Probe [b]'s link for [pc]; the index form the dispatcher uses
   (the target block is [b.db_succs.(i).sc_blk]). A matching entry is
   followable iff its epoch is current and its target is fresh (see
   [succ]); a dead entry is severed on sight so it cannot pin a
   dropped block, and the caller falls back to [find] (which
   re-decodes and then [patch]es the new block back in). *)
let follow_idx t (b : block) pc =
  if not t.chained then -1
  else
    let succs = b.db_succs in
    follow_scan t b succs (Array.length succs) pc 0

let follow t (b : block) pc =
  let i = follow_idx t b pc in
  if i < 0 then None else Some (Array.unsafe_get b.db_succs i).sc_blk

(* Install [pred] --[pc]--> [b] after a follow miss. Dead entries are
   pruned first. A full direct set replaces its oldest slot (only
   reachable when [pred] went stale mid-trace, since a fresh block
   has at most two possible successors); a full IC goes megamorphic
   and stops patching. A stale [pred] is never patched — it is about
   to be dropped, and patching it would only delay collection. *)
let patch t (pred : block) ~pc (b : block) =
  if t.chained && not (stale pred) then begin
    let epoch = t.epoch in
    let live =
      Array.to_list pred.db_succs
      |> List.filter (fun s -> s.sc_epoch = epoch && (not (stale s.sc_blk)) && s.sc_pc <> pc)
    in
    let cap = if pred.db_indirect then max_ic_succs else max_direct_succs in
    let installed =
      let entry = { sc_pc = pc; sc_blk = b; sc_epoch = epoch } in
      if List.length live < cap then begin
        pred.db_succs <- Array.of_list (live @ [ entry ]);
        true
      end
      else if not pred.db_indirect then begin
        pred.db_succs <- Array.of_list (List.tl live @ [ entry ]);
        true
      end
      else begin
        (* megamorphic: keep the live entries, refuse the new one *)
        pred.db_succs <- Array.of_list live;
        false
      end
    in
    if installed then t.st.chain_patches <- t.st.chain_patches + 1
  end
