open Hipstr_isa
module Obs = Hipstr_obs.Obs

(* A predecoded basic block: the instructions starting at [db_start],
   decoded under generation [db_gen] of the watched region containing
   them, up to (and including) the first control transfer. [db_bad]
   marks a block whose decode failed at [db_end] — executing past the
   last instruction faults there, exactly as per-instruction decode
   would have.

   Validity invariant: every byte any cached decode depended on lies
   inside [db_region] (instructions are only admitted when their full
   encoding fits; a [db_bad] verdict is only cached with
   [max_decode_window] bytes of headroom). A write anywhere in the
   region bumps its generation, so [db_gen <> generation db_region]
   is a sound, complete staleness test — checked before every
   instruction, which makes cached execution bit-identical to
   per-instruction decode even for code that rewrites itself
   mid-block. *)
type block = {
  db_start : int;
  db_instrs : Minstr.t array;
  db_lens : int array;
  db_end : int;  (** first address past the last decoded instruction *)
  db_bad : bool;  (** decode failed at [db_end] *)
  db_region : Mem.region;
  db_gen : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

type counters = {
  cn_hits : Obs.Metrics.counter;
  cn_misses : Obs.Metrics.counter;
  cn_invalidations : Obs.Metrics.counter;
}

type t = {
  which : Desc.which;
  mem : Mem.t;
  read : int -> int;  (** preallocated reader over [mem] *)
  blocks : (int, block) Hashtbl.t;
  st : stats;
  obs : Obs.t;
  ctrs : counters;
}

(* Block-size cap: a longer straight-line run simply splits into
   several blocks, so the cap bounds per-entry memory without
   changing semantics. *)
let max_block_instrs = 128

(* Upper bound on the bytes a single decode may inspect (the widest
   CISC form reads 10; RISC reads 12 for Callrat). A [None] verdict
   may have depended on that many bytes, so it is only cached with
   this much in-region headroom. *)
let max_decode_window = 16

(* Entry-count safety valve: execution only ever starts blocks at
   addresses it reaches, so this is far above any real working set;
   a pathological address walk resets the table instead of growing
   without bound. *)
let max_entries = 1 lsl 16

let create ?(obs = Obs.global) ~isa which mem =
  (* The four standard code-bearing regions; [Mem.watch] dedupes, so
     the CISC and RISC caches of one machine share region handles. *)
  ignore
    (Mem.watch mem ~lo:Layout.cisc_code_base
       ~hi:(Layout.cisc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_code_base
       ~hi:(Layout.risc_code_base + Layout.code_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.cisc_cache_base
       ~hi:(Layout.cisc_cache_base + Layout.cache_region_size));
  ignore
    (Mem.watch mem ~lo:Layout.risc_cache_base
       ~hi:(Layout.risc_cache_base + Layout.cache_region_size));
  let counter n = Obs.Metrics.counter (Obs.metrics obs) ("machine." ^ isa ^ ".decode_cache." ^ n) in
  {
    which;
    mem;
    read = Mem.reader mem;
    blocks = Hashtbl.create 1024;
    st = { hits = 0; misses = 0; invalidations = 0; flushes = 0 };
    obs;
    ctrs =
      {
        cn_hits = counter "hits";
        cn_misses = counter "misses";
        cn_invalidations = counter "invalidations";
      };
  }

let stats t = t.st

let stale b = Mem.generation b.db_region <> b.db_gen

let is_terminator (i : Minstr.t) =
  match i with
  | Jmp _ | Jcc _ | Jmpr _ | Call _ | Callr _ | Ret | Retr _ | Retrat _ | Callrat _ | Trap _ ->
    true
  | Nop | Mov _ | Lea _ | Binop _ | Cmp _ | Push _ | Pop _ | Syscall -> false

let decode_one t addr =
  match t.which with
  | Desc.Cisc -> Hipstr_cisc.Isa.decode ~read:t.read addr
  | Desc.Risc -> Hipstr_risc.Isa.decode ~read:t.read addr

(* Decode a block starting at [start] inside [region]. Returns [None]
   when nothing cacheable could be formed (first instruction does not
   fit the region, or an uncacheable [None] verdict right at the
   start) — the interpreter falls back to single-stepping. *)
let decode_block t region start =
  let hi = Mem.region_hi region in
  let gen = Mem.generation region in
  let instrs = ref [] in
  let lens = ref [] in
  let count = ref 0 in
  let pos = ref start in
  let bad = ref false in
  let stop = ref false in
  while not !stop do
    if !count >= max_block_instrs then stop := true
    else
      match decode_one t !pos with
      | None ->
        (* cache the bad verdict only when every byte the decoder may
           have looked at is inside the region *)
        if !pos + max_decode_window <= hi then bad := true;
        stop := true
      | Some (i, len) ->
        if !pos + len > hi then stop := true (* encoding crosses the region edge *)
        else begin
          instrs := i :: !instrs;
          lens := len :: !lens;
          incr count;
          pos := !pos + len;
          if is_terminator i then stop := true
        end
  done;
  if !count = 0 && not !bad then None
  else
    Some
      {
        db_start = start;
        db_instrs = Array.of_list (List.rev !instrs);
        db_lens = Array.of_list (List.rev !lens);
        db_end = !pos;
        db_bad = !bad;
        db_region = region;
        db_gen = gen;
      }

(* Find (or decode and install) the block starting at [addr]. [None]
   means the address is not cacheable — not inside a watched region,
   or no cacheable block forms there — and the caller must fall back
   to plain single-step execution. Hits are generation-checked here;
   a stale entry is dropped and re-decoded under the current
   generation. *)
let lookup t addr =
  match Hashtbl.find_opt t.blocks addr with
  | Some b when not (stale b) ->
    t.st.hits <- t.st.hits + 1;
    if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_hits;
    Some b
  | found -> (
    (match found with
    | Some _ ->
      Hashtbl.remove t.blocks addr;
      t.st.invalidations <- t.st.invalidations + 1;
      if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_invalidations
    | None -> ());
    match Mem.region_of t.mem addr with
    | None -> None
    | Some region -> (
      match decode_block t region addr with
      | None -> None
      | Some b ->
        if Hashtbl.length t.blocks >= max_entries then Hashtbl.reset t.blocks;
        Hashtbl.replace t.blocks addr b;
        t.st.misses <- t.st.misses + 1;
        if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_misses;
        Some b))

(* Drop one stale block (the interpreter noticed a mid-block
   generation change). *)
let drop t (b : block) =
  if Hashtbl.mem t.blocks b.db_start then begin
    Hashtbl.remove t.blocks b.db_start;
    t.st.invalidations <- t.st.invalidations + 1;
    if Obs.on t.obs then Obs.Metrics.incr t.ctrs.cn_invalidations
  end

(* Wholesale invalidation: context-switch flushes, relocation-map
   renewal and code-cache flushes all call this. Generations already
   make every write safe; dropping the table additionally models the
   cold-start and frees memory eagerly. *)
let invalidate_all t =
  let n = Hashtbl.length t.blocks in
  if n > 0 then begin
    Hashtbl.reset t.blocks;
    t.st.invalidations <- t.st.invalidations + n;
    if Obs.on t.obs then Obs.Metrics.incr ~by:n t.ctrs.cn_invalidations
  end;
  t.st.flushes <- t.st.flushes + 1

let entries t = Hashtbl.length t.blocks
