(** Hardware Return Address Table (Section 5.1 of the paper).

    Maps *source* return addresses (what translated code stores on the
    stack) to their translated code-cache targets. The modified call
    macro-op ([Callrat]) inserts entries and the modified return
    macro-op ([Retrat]) looks them up with a 1-cycle penalty; a miss
    traps to the translator. The table has a bounded capacity with
    LRU replacement — Figure 11 sweeps this capacity. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val insert : t -> src:int -> translated:int -> unit

val lookup : t -> int -> int option
(** Looks up a source return address; updates recency and hit/miss
    statistics. *)

val find_translated : t -> int -> int
(** Exactly {!lookup}, but returns [-1] for a miss instead of an
    option — the allocation-free form the per-return hot path uses
    (translated targets are always non-negative addresses). *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val clear : t -> unit

val remove_in_range : t -> lo:int -> hi:int -> unit
(** Drop every entry whose {e translated} target lies in [\[lo, hi)] —
    used when a code-cache block is evicted, so no RAT line can send a
    return into reused cache bytes. Mid-block entries (inserted by the
    call macro-op for fall-through continuations) are covered too,
    which a source-keyed removal would miss. Does not touch hit/miss
    statistics. *)

val save : Hipstr_util.Wire.w -> t -> unit
(** Serialize entries (with LRU stamps) and counters (snapshots). *)

val restore : t -> Hipstr_util.Wire.r -> unit
(** Overwrite this RAT from a {!save} image.
    @raise Hipstr_util.Wire.Corrupt when the image holds more entries
    than this RAT's capacity or is malformed. *)
