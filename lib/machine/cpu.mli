(** Architectural CPU state and performance counters. *)

type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable vf : bool }

type fcell = { mutable c : float }
(** A float accumulator with the flat (all-float) record layout:
    updating [c] mutates in place, where a [mutable float] field of
    the mixed [perf] record would box a fresh float on every store —
    an allocation per retired instruction on the interpreter's hot
    path. *)

type perf = {
  cycles : fcell;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable returns : int;
  mutable indirects : int;
  mutable syscalls : int;
}

type t = {
  mutable pc : int;
  regs : int array;  (** 16 slots; the active ISA uses a prefix *)
  flags : flags;
  perf : perf;
}

val create : unit -> t

val reset_perf : t -> unit

val snapshot_perf : t -> perf
(** A copy of the current counters. *)

val copy_regs : t -> int array
