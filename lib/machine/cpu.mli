(** Architectural CPU state and performance counters. *)

type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable vf : bool }

val fc_scale : int
(** Femtocycles per cycle: the fixed-point scale of the cycle
    accumulator, [2^20]. A power of two, so folding the integer
    accumulator back to a float cycle count is exact (the division
    only adjusts the exponent) for any run short of [2^33] cycles. *)

val fc_of_cycles : float -> int
(** Femtocycles for a float cycle cost, rounded to nearest once.
    Service costs (VM traps, migration charges) convert through this
    at charge time, so the accumulator stays integral. *)

val cycles_of_fc : int -> float
(** The exact float fold-back of a femtocycle count. Every consumer
    of the cycle clock (spans, scheduling, exports, snapshots) reads
    this same fold-back, which makes cycle floats bit-identical
    across execution variants by construction. *)

val fc_quotient : lat:int -> throughput:float -> int
(** Femtocycles for [lat / throughput] — the per-retirement charge
    for an instruction of latency [lat] on a core of the given issue
    throughput. Memoized by {!Machine.env_of} and baked into packed
    blocks by the decode cache; both compute it through this one
    function so they charge the same integer. *)

type perf = {
  mutable cycles_fc : int;
      (** cycle accumulator in femtocycles; {!cycles} folds back *)
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable calls : int;
  mutable returns : int;
  mutable indirects : int;
  mutable syscalls : int;
}

val cycles : perf -> float
(** [cycles_of_fc p.cycles_fc]. *)

type t = {
  mutable pc : int;
  regs : int array;  (** 16 slots; the active ISA uses a prefix *)
  flags : flags;
  perf : perf;
}

val create : unit -> t

val reset_perf : t -> unit

val snapshot_perf : t -> perf
(** A copy of the current counters. *)

val copy_regs : t -> int array
