(** Packed instruction encoding for the flat-dispatch interpreter.

    A decoded {!Hipstr_isa.Minstr.t} flattens into three unboxed ints
    — a meta word (tag, length, sub-opcode, operand kinds and
    registers) plus two payload words (immediates, displacements,
    transfer targets) — stored stride-wise in a block's [db_code]
    array. The encoding is total and lossless: {!unpack} inverts
    {!pack} exactly, for every decodable instruction form (pinned by
    the round-trip property test). See the implementation header for
    the exact bit layout and tag numbering, which [Exec]'s flat
    dispatcher matches against as literal ints. *)

val pack : Hipstr_isa.Minstr.t -> int -> int * int * int
(** [pack i len] is [(meta, v1, v2)]. [len] is the encoded length in
    bytes (1..12). *)

val unpack : int -> int -> int -> Hipstr_isa.Minstr.t * int
(** [unpack meta v1 v2] recovers the packed instruction and length.
    @raise Invalid_argument on a word triple {!pack} cannot emit. *)

(** Meta-word field accessors (dispatcher and test introspection). *)

val tag : int -> int
val len : int -> int
val sub : int -> int
val kind1 : int -> int
val kind2 : int -> int
val reg1 : int -> int
val reg2 : int -> int
