module Fatbin = Hipstr_compiler.Fatbin
module Frame = Hipstr_compiler.Frame
module Ir = Hipstr_compiler.Ir
module Machine = Hipstr_machine.Machine
module Mem = Hipstr_machine.Mem
module Layout = Hipstr_machine.Layout
module Reloc_map = Hipstr_psr.Reloc_map
module Obs = Hipstr_obs.Obs
open Hipstr_isa

type mode =
  | Native
  | Psr of {
      map_from : Fatbin.func_sym -> Reloc_map.t;
      map_to : Fatbin.func_sym -> Reloc_map.t;
    }

type result = {
  r_frames : int;
  r_words : int;
  r_resume_src : int option;
  r_complete : bool;
  r_cycles : float;
}

let fixed_cycles = 3_000_000.
let per_word_cycles = 25.

(* A uniform view of one function's frame geometry under a mode. *)
type view = {
  total : int;  (** sp distance to the caller's sp *)
  ret_off : int;
  slot : int -> int;  (** original frame offset -> actual offset *)
  locals_off : int;
  out_off : int;
  arg : int -> int;  (** incoming argument j -> offset within this frame *)
}

let view_of mode side (fs : Fatbin.func_sym) =
  let f = fs.fs_frame in
  match mode with
  | Native ->
    {
      total = f.frame_bytes;
      ret_off = f.ret_off;
      slot = (fun k -> k);
      locals_off = f.locals_off;
      out_off = 0;
      arg = (fun j -> Frame.incoming_arg_off f j - f.frame_bytes + f.frame_bytes)
      (* incoming arg j of the *next* callee = this frame's outgoing
         slot j; not used natively *);
    }
  | Psr { map_from; map_to } ->
    let m = (match side with `From -> map_from | `To -> map_to) fs in
    {
      total = Reloc_map.padded_frame m;
      ret_off = Reloc_map.ret_off m;
      slot = Reloc_map.map_slot m;
      locals_off = Reloc_map.map_slot m f.locals_off;
      out_off = Reloc_map.map_slot m 0;
      arg = Reloc_map.arg_off m;
    }

(* Translate a return address across ISAs via the call-site table.
   The exit sentinel passes through unchanged. *)
let xlate_ret fb ~from_isa ~to_isa ret =
  if ret = Layout.exit_sentinel then Some ret
  else
    match Fatbin.callsite_of_ret fb from_isa ret with
    | None -> None
    | Some (fs, site) -> Fatbin.callsite_ret fs to_isa site

(* Translate a function-pointer value (a source-ISA entry address).
   Indexed scan over the function table — this runs once per
   fp-tainted slot of every frame walked, so the closure-per-function
   [Array.iter] form was a measurable allocation source. *)
let rec xlate_fp_scan funcs n to_isa v i =
  if i >= n then None
  else
    let fs = Array.unsafe_get funcs i in
    if
      (Fatbin.image fs Desc.Cisc).Fatbin.im_entry = v
      || (Fatbin.image fs Desc.Risc).Fatbin.im_entry = v
    then Some (Fatbin.image fs to_isa).Fatbin.im_entry
    else xlate_fp_scan funcs n to_isa v (i + 1)

let xlate_fp fb ~to_isa v =
  let funcs = fb.Fatbin.fb_funcs in
  xlate_fp_scan funcs (Array.length funcs) to_isa v 0

(* Transform one frame in place: read everything at from-offsets,
   then write at to-offsets. Returns (ret_src, words_moved, ret_ok).

   The from- and to-offset ranges may overlap (randomized maps), so
   the reads are staged into a pair of preallocated arrays and the
   writes replayed afterwards in the same order the old list pipeline
   produced: value slots, locals block, outgoing block, return slot.
   Two flat int arrays per frame replace several cons cells and a
   tuple per word moved. *)
let transform_frame machine fb mode ~from_isa ~to_isa (fs : Fatbin.func_sym) sp =
  let m = Machine.mem machine in
  let vf = view_of mode `From fs in
  let vt = view_of mode `To fs in
  let f = fs.fs_frame in
  let fp_tainted = fs.fs_ir.Ir.fn_fp_values in
  let nslots = Array.length f.slot_off in
  let nloc = f.locals_bytes / 4 in
  let nout = f.outgoing_words in
  let cap = nslots + nloc + nout + 1 in
  let offs = Array.make cap 0 in
  let vals = Array.make cap 0 in
  let n = ref 0 in
  (* value slots *)
  for v = 0 to nslots - 1 do
    let off = Array.unsafe_get f.slot_off v in
    if off >= 0 then begin
      let raw = Mem.read32 m (sp + vf.slot off) in
      let value =
        if List.mem v fp_tainted then
          match xlate_fp fb ~to_isa raw with Some v' -> v' | None -> raw
        else raw
      in
      offs.(!n) <- vt.slot off;
      vals.(!n) <- value;
      incr n
    end
  done;
  (* locals and outgoing regions as blocks *)
  for i = 0 to nloc - 1 do
    offs.(!n) <- vt.locals_off + (4 * i);
    vals.(!n) <- Mem.read32 m (sp + vf.locals_off + (4 * i));
    incr n
  done;
  for i = 0 to nout - 1 do
    offs.(!n) <- vt.out_off + (4 * i);
    vals.(!n) <- Mem.read32 m (sp + vf.out_off + (4 * i));
    incr n
  done;
  (* return address *)
  let ret_src = Mem.read32 m (sp + vf.ret_off) in
  let ret_to = xlate_ret fb ~from_isa ~to_isa ret_src in
  offs.(!n) <- vt.ret_off;
  vals.(!n) <- (match ret_to with Some r -> r | None -> ret_src);
  incr n;
  let words = !n in
  for i = 0 to words - 1 do
    Mem.write32 m (sp + Array.unsafe_get offs i) (Array.unsafe_get vals i)
  done;
  (ret_src, words, ret_to <> None)

(* Walk and transform the whole stack starting from the frame of
   [top_fs] at [sp]. *)
let transform_stack machine fb mode ~from_isa ~to_isa top_fs sp0 =
  let frames = ref 0 in
  let words = ref 0 in
  let complete = ref true in
  let rec walk fs sp =
    frames := !frames + 1;
    let ret_src, w, ok = transform_frame machine fb mode ~from_isa ~to_isa fs sp in
    words := !words + w;
    if not ok then complete := false
    else if ret_src <> Layout.exit_sentinel then begin
      match Fatbin.func_at fb from_isa ret_src with
      | None -> complete := false
      | Some caller_fs ->
        if !frames < 512 then walk caller_fs (sp + (view_of mode `From fs).total)
    end
  in
  walk top_fs sp0;
  (!frames, !words, !complete)

(* Transform costs are whole cycles (fixed drain + integer per-word
   copies), so the femtocycle conversion is exact. *)
let charge_destination machine cycles =
  let p = (Machine.cpu machine).Hipstr_machine.Cpu.perf in
  p.Hipstr_machine.Cpu.cycles_fc <-
    p.Hipstr_machine.Cpu.cycles_fc + Hipstr_machine.Cpu.fc_of_cycles cycles

let desc_of which =
  match which with Desc.Cisc -> Hipstr_cisc.Isa.desc | Desc.Risc -> Hipstr_risc.Isa.desc

let finish machine ~to_isa ~frames ~words ~resume ~complete =
  (* Architectural state transfer: the stack pointer lives in a
     different register on each ISA; the result register is index 0 on
     both. Everything else live is in frame slots by the equivalence-
     point discipline. *)
  let cpu = Machine.cpu machine in
  let from_sp = (desc_of (Machine.active machine)).sp in
  let to_sp = (desc_of to_isa).sp in
  let sp_value = cpu.regs.(from_sp) in
  let cycle_before = Hipstr_machine.Cpu.cycles cpu.Hipstr_machine.Cpu.perf in
  Machine.switch_core machine to_isa;
  cpu.regs.(to_sp) <- sp_value;
  let cycles = fixed_cycles +. (per_word_cycles *. float_of_int words) in
  charge_destination machine cycles;
  let obs = Machine.obs machine in
  if Obs.on obs then begin
    let m = Obs.metrics obs in
    Obs.Metrics.incr (Obs.Metrics.counter m "migration.stack_transforms");
    Obs.Metrics.observe (Obs.Metrics.histogram m "migration.frames") (float_of_int frames);
    Obs.Metrics.observe (Obs.Metrics.histogram m "migration.words") (float_of_int words);
    Obs.Metrics.observe (Obs.Metrics.histogram m "migration.cycles") cycles;
    Obs.emit obs (Obs.Trace.Stack_transform { frames; words; complete });
    (* the span covers exactly the cycles the transform charged: the
       fixed pipeline drain plus the per-word copy cost *)
    let sp =
      Obs.enter_span obs ~name:"stack_transform"
        ~attrs:
          [
            ("isa", Machine.isa_name machine);
            ("pid", string_of_int (Machine.owner machine));
            ("frames", string_of_int frames);
            ("words", string_of_int words);
          ]
        ~cycle:cycle_before ()
    in
    Obs.exit_span obs sp ~cycle:(Hipstr_machine.Cpu.cycles cpu.Hipstr_machine.Cpu.perf)
  end;
  { r_frames = frames; r_words = words; r_resume_src = resume; r_complete = complete; r_cycles = cycles }

let at_return machine fb mode ~target_src =
  let from_isa = Machine.active machine in
  let to_isa = Desc.other from_isa in
  let cpu = Machine.cpu machine in
  let sp = cpu.regs.((Machine.desc machine).sp) in
  match Fatbin.func_at fb from_isa target_src with
  | None ->
    (* attack target: nothing walkable; still switch — the payload is
       now interpreted under the other ISA's maps and dies *)
    finish machine ~to_isa ~frames:0 ~words:0 ~resume:None ~complete:false
  | Some fs ->
    let frames, words, complete = transform_stack machine fb mode ~from_isa ~to_isa fs sp in
    let resume =
      (* the return target is itself a call-site return address *)
      xlate_ret fb ~from_isa ~to_isa target_src
    in
    finish machine ~to_isa ~frames ~words ~resume ~complete

let at_call machine fb mode ~call_src ~target_src ~nargs =
  let from_isa = Machine.active machine in
  let to_isa = Desc.other from_isa in
  let cpu = Machine.cpu machine in
  let m = Machine.mem machine in
  let sp = cpu.regs.((Machine.desc machine).sp) in
  let caller = Fatbin.func_at fb from_isa call_src in
  let callee =
    match Fatbin.func_at fb from_isa target_src with
    | Some fs when (Fatbin.image fs from_isa).Fatbin.im_entry = target_src -> Some fs
    | Some _ | None -> None
  in
  match (caller, callee) with
  | Some caller_fs, Some callee_fs ->
    (* Indirect-call arguments are staged in the caller's (relocated)
       outgoing slots — the source VM would have moved them into the
       callee's randomized argument slots at call time; after a
       migration the destination callee expects them in *its* map's
       argument slots, below sp in the future callee frame. *)
    let vcaller_from = view_of mode `From caller_fs in
    let vcallee_to = view_of mode `To callee_fs in
    let arg_words = ref 0 in
    (match mode with
    | Native -> () (* the symmetric layout already matches *)
    | Psr _ ->
      let staged = List.init nargs (fun j -> Mem.read32 m (sp + vcaller_from.out_off + (4 * j))) in
      List.iteri
        (fun j v ->
          incr arg_words;
          Mem.write32 m (sp - vcallee_to.total + vcallee_to.arg j) v)
        staged);
    let frames, words, complete = transform_stack machine fb mode ~from_isa ~to_isa caller_fs sp in
    let resume = Some (Fatbin.image callee_fs to_isa).Fatbin.im_entry in
    finish machine ~to_isa ~frames ~words:(words + !arg_words) ~resume ~complete
  | Some caller_fs, None ->
    (* suspicious indirect transfer to a non-entry target: transform
       the legitimate stack, then report unmappable *)
    let frames, words, complete = transform_stack machine fb mode ~from_isa ~to_isa caller_fs sp in
    finish machine ~to_isa ~frames ~words ~resume:None ~complete
  | None, _ -> finish machine ~to_isa ~frames:0 ~words:0 ~resume:None ~complete:false
