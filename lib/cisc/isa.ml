open Hipstr_isa
module W32 = Hipstr_util.Wrap32

let desc =
  {
    Desc.which = Desc.Cisc;
    name = "cisc32";
    nregs = 8;
    sp = 7;
    lr = None;
    call_pushes_ret = true;
    scratch = 6 (* bp *);
    scratch2 = 5 (* di *);
    arg_regs = [];
    ret_reg = 0 (* ax *);
    callee_saved = [ 1; 4 ] (* bx si *);
    caller_saved = [ 0; 2; 3 ] (* ax cx dx *);
    (* callee-class registers first: long-lived values prefer them,
       which is also what keeps blocks migration-safe *)
    allocatable = [ 1; 4; 0; 2; 3 ];
    align = 1;
    freq_ghz = 3.3;
  }

let ret_opcode = 0xC3

let binop_index : Minstr.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Divs -> 3
  | Rems -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10


let cond_index : Minstr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5
  | Ult -> 6
  | Uge -> 7


let length (i : Minstr.t) =
  match i with
  | Mov (Reg _, Reg _) -> 2
  | Mov (Reg _, Imm _) -> 6
  | Mov (Reg _, Mem _) -> 6
  | Mov (Mem _, Reg _) -> 6
  | Mov (Mem _, Imm _) -> 10
  | Mov (Imm _, _) | Mov (Mem _, Mem _) -> invalid_arg "cisc: bad mov operands"
  | Lea _ -> 6
  | Binop (_, Reg _, Reg _) -> 2
  | Binop (_, Reg _, Imm _) -> 6
  | Binop (_, Reg _, Mem _) -> 6
  | Binop (_, Mem _, Reg _) -> 6
  | Binop (_, Mem _, Imm _) -> 10
  | Binop (_, Imm _, _) | Binop (_, Mem _, Mem _) -> invalid_arg "cisc: bad binop operands"
  | Cmp (Reg _, Reg _) -> 2
  | Cmp (Reg _, Imm _) -> 6
  | Cmp (Reg _, Mem _) -> 6
  | Cmp (Mem _, Imm _) -> 10
  | Cmp (Mem _, Reg _) -> 6
  | Cmp (Imm _, _) | Cmp (Mem _, Mem _) -> invalid_arg "cisc: bad cmp operands"
  | Push (Reg _) -> 2
  | Push (Imm _) -> 6
  | Push (Mem _) -> 6
  | Pop (Reg _) -> 2
  | Pop (Mem _) -> 6
  | Pop (Imm _) -> invalid_arg "cisc: pop imm"
  | Jmp _ -> 5
  | Jcc _ -> 5
  | Jmpr (Reg _) -> 2
  | Jmpr (Mem _) -> 6
  | Jmpr (Imm _) -> invalid_arg "cisc: jmpr imm"
  | Call _ -> 5
  | Callr (Reg _) -> 2
  | Callr (Mem _) -> 6
  | Callr (Imm _) -> invalid_arg "cisc: callr imm"
  | Ret -> 1
  | Retr _ -> invalid_arg "cisc: retr is RISC-only"
  | Syscall -> 1
  | Nop -> 1
  | Trap _ -> 5
  | Callrat _ -> 9
  | Retrat (Reg _) -> 2
  | Retrat (Mem _) -> 6
  | Retrat (Imm _) -> invalid_arg "cisc: retrat imm"

let check_reg r = if r < 0 || r > 7 then invalid_arg "cisc: register out of range"

(* The operand byte mimics x86's modrm: reg-reg forms carry mod=11
   (byte 0xC0..0xFF — the reason 0xC3 ret bytes pervade real x86
   code), memory forms mod=01 (0x40..0x7F). *)
let modrr a b = 0xC0 lor (a lsl 3) lor b
let modrm a b = 0x40 lor (a lsl 3) lor b

let add_i32 buf v =
  let v = W32.unsigned v in
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let add_op buf op = Buffer.add_char buf (Char.chr op)

let add_rr buf a b =
  check_reg a;
  check_reg b;
  Buffer.add_char buf (Char.chr (modrr a b))

let add_rm buf a b =
  check_reg a;
  check_reg b;
  Buffer.add_char buf (Char.chr (modrm a b))

(* Relative displacement of [target] from the end of a [len]-byte
   instruction at [at]. Top-level (not a closure over [at]): encoding
   runs per emitted instruction in [Translator.layout]. *)
let rel at target len = target - (at + len)

(* Encode into a caller-owned buffer: [layout] encodes whole units,
   and a per-instruction [Buffer.create]/[Buffer.contents] pair was a
   measurable slice of translation-time allocation. *)
let encode_into buf ~at (i : Minstr.t) =
  match i with
  | Mov (Reg d, Reg s) ->
    add_op buf 0x01;
    add_rr buf d s
  | Mov (Reg d, Imm k) ->
    add_op buf 0x02;
    add_rr buf d 0;
    add_i32 buf k
  | Mov (Reg d, Mem { base; disp }) ->
    add_op buf 0x03;
    add_rm buf d base;
    add_i32 buf disp
  | Mov (Mem { base; disp }, Reg s) ->
    add_op buf 0x04;
    add_rm buf s base;
    add_i32 buf disp
  | Mov (Mem { base; disp }, Imm k) ->
    add_op buf 0x05;
    add_rm buf 0 base;
    add_i32 buf disp;
    add_i32 buf k
  | Mov (Imm _, _) | Mov (Mem _, Mem _) -> invalid_arg "cisc: bad mov operands"
  | Lea (d, b, k) ->
    add_op buf 0x06;
    add_rm buf d b;
    add_i32 buf k
  | Binop (op, Reg d, Reg s) ->
    add_op buf (0x10 + binop_index op);
    add_rr buf d s
  | Binop (op, Reg d, Imm k) ->
    add_op buf (0x20 + binop_index op);
    add_rr buf d 0;
    add_i32 buf k
  | Binop (op, Reg d, Mem { base; disp }) ->
    add_op buf (0x30 + binop_index op);
    add_rm buf d base;
    add_i32 buf disp
  | Binop (op, Mem { base; disp }, Reg s) ->
    add_op buf (0x40 + binop_index op);
    add_rm buf s base;
    add_i32 buf disp
  | Binop (op, Mem { base; disp }, Imm k) ->
    add_op buf (0x50 + binop_index op);
    add_rm buf 0 base;
    add_i32 buf disp;
    add_i32 buf k
  | Binop (_, Imm _, _) | Binop (_, Mem _, Mem _) -> invalid_arg "cisc: bad binop operands"
  | Cmp (Reg a, Reg b) ->
    add_op buf 0x60;
    add_rr buf a b
  | Cmp (Reg a, Imm k) ->
    add_op buf 0x61;
    add_rr buf a 0;
    add_i32 buf k
  | Cmp (Reg a, Mem { base; disp }) ->
    add_op buf 0x62;
    add_rm buf a base;
    add_i32 buf disp
  | Cmp (Mem { base; disp }, Imm k) ->
    add_op buf 0x63;
    add_rm buf 0 base;
    add_i32 buf disp;
    add_i32 buf k
  | Cmp (Mem { base; disp }, Reg b) ->
    add_op buf 0x64;
    add_rm buf b base;
    add_i32 buf disp
  | Cmp (Imm _, _) | Cmp (Mem _, Mem _) -> invalid_arg "cisc: bad cmp operands"
  | Push (Reg r) ->
    add_op buf 0x70;
    add_rr buf r 0
  | Push (Imm k) ->
    add_op buf 0x71;
    add_rr buf 0 0;
    add_i32 buf k
  | Push (Mem { base; disp }) ->
    add_op buf 0x72;
    add_rm buf 0 base;
    add_i32 buf disp
  | Pop (Reg r) ->
    add_op buf 0x73;
    add_rr buf r 0
  | Pop (Mem { base; disp }) ->
    add_op buf 0x74;
    add_rm buf 0 base;
    add_i32 buf disp
  | Pop (Imm _) -> invalid_arg "cisc: pop imm"
  | Jmp t ->
    add_op buf 0x80;
    add_i32 buf (rel at t 5)
  | Jcc (c, t) ->
    add_op buf (0x81 + cond_index c);
    add_i32 buf (rel at t 5)
  | Jmpr (Reg r) ->
    add_op buf 0x90;
    add_rr buf r 0
  | Jmpr (Mem { base; disp }) ->
    add_op buf 0x91;
    add_rm buf 0 base;
    add_i32 buf disp
  | Jmpr (Imm _) -> invalid_arg "cisc: jmpr imm"
  | Call t ->
    add_op buf 0x92;
    add_i32 buf (rel at t 5)
  | Callr (Reg r) ->
    add_op buf 0x93;
    add_rr buf r 0
  | Callr (Mem { base; disp }) ->
    add_op buf 0x94;
    add_rm buf 0 base;
    add_i32 buf disp
  | Callr (Imm _) -> invalid_arg "cisc: callr imm"
  | Ret -> add_op buf ret_opcode
  | Retr _ -> invalid_arg "cisc: retr is RISC-only"
  | Syscall -> add_op buf 0xA0
  | Nop -> add_op buf 0x99
  | Trap a ->
    add_op buf 0xA1;
    add_i32 buf a
  | Callrat { target; src_ret } ->
    add_op buf 0xA2;
    add_i32 buf target;
    add_i32 buf src_ret
  | Retrat (Reg r) ->
    add_op buf 0xA3;
    add_rr buf r 0
  | Retrat (Mem { base; disp }) ->
    add_op buf 0xA4;
    add_rm buf 0 base;
    add_i32 buf disp
  | Retrat (Imm _) -> invalid_arg "cisc: retrat imm"

let encode ~at (i : Minstr.t) =
  let buf = Buffer.create 10 in
  encode_into buf ~at i;
  Buffer.contents buf

(* Decoding. Any byte sequence may be presented (Galileo decodes at
   every offset), so every field is validated and [None] returned on
   anything malformed. *)

(* Decode helpers are top-level functions fully applied at every use
   site: a local closure over [read]/[addr] would allocate per decode
   call, and decode runs per block build with the decode cache on and
   per retired instruction with it off. *)
let d_byte read addr k = read (addr + k) land 0xFF

let d_i32 read addr k =
  W32.of_bytes (d_byte read addr k)
    (d_byte read addr (k + 1))
    (d_byte read addr (k + 2))
    (d_byte read addr (k + 3))

(* Operand byte at offset [k]: the two mode bits must equal [want]
   (3 = reg/reg form, 1 = reg/mem form). Returns the low six bits
   ((first lsl 3) lor second) — an int instead of an option pair so
   the malformed case (-1) costs nothing. *)
let d_pair read addr k want =
  let b = d_byte read addr k in
  if b lsr 6 <> want then -1 else b land 0x3F

let decode ~read addr =
  let op = d_byte read addr 0 in
  match op with
  | 0x01 ->
    let x = d_pair read addr 1 3 in
    if x < 0 then None else Some (Minstr.Mov (Reg (x lsr 3), Reg (x land 7)), 2)
  | 0x02 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None
    else Some (Minstr.Mov (Reg (x lsr 3), Imm (d_i32 read addr 2)), 6)
  | 0x03 ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else Some (Minstr.Mov (Reg (x lsr 3), Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0x04 ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else Some (Minstr.Mov (Mem { base = x land 7; disp = d_i32 read addr 2 }, Reg (x lsr 3)), 6)
  | 0x05 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else
      Some
        ( Minstr.Mov (Mem { base = x land 7; disp = d_i32 read addr 2 }, Imm (d_i32 read addr 6)),
          10 )
  | 0x06 ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None else Some (Minstr.Lea (x lsr 3, x land 7, d_i32 read addr 2), 6)
  | _ when op >= 0x10 && op <= 0x1A ->
    let x = d_pair read addr 1 3 in
    if x < 0 then None
    else Some (Minstr.Binop (Minstr.all_binops.(op - 0x10), Reg (x lsr 3), Reg (x land 7)), 2)
  | _ when op >= 0x20 && op <= 0x2A ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None
    else
      Some (Minstr.Binop (Minstr.all_binops.(op - 0x20), Reg (x lsr 3), Imm (d_i32 read addr 2)), 6)
  | _ when op >= 0x30 && op <= 0x3A ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else
      Some
        ( Minstr.Binop
            (Minstr.all_binops.(op - 0x30), Reg (x lsr 3), Mem { base = x land 7; disp = d_i32 read addr 2 }),
          6 )
  | _ when op >= 0x40 && op <= 0x4A ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else
      Some
        ( Minstr.Binop
            (Minstr.all_binops.(op - 0x40), Mem { base = x land 7; disp = d_i32 read addr 2 }, Reg (x lsr 3)),
          6 )
  | _ when op >= 0x50 && op <= 0x5A ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else
      Some
        ( Minstr.Binop
            ( Minstr.all_binops.(op - 0x50),
              Mem { base = x land 7; disp = d_i32 read addr 2 },
              Imm (d_i32 read addr 6) ),
          10 )
  | 0x60 ->
    let x = d_pair read addr 1 3 in
    if x < 0 then None else Some (Minstr.Cmp (Reg (x lsr 3), Reg (x land 7)), 2)
  | 0x61 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None
    else Some (Minstr.Cmp (Reg (x lsr 3), Imm (d_i32 read addr 2)), 6)
  | 0x62 ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else Some (Minstr.Cmp (Reg (x lsr 3), Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0x63 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else
      Some
        ( Minstr.Cmp (Mem { base = x land 7; disp = d_i32 read addr 2 }, Imm (d_i32 read addr 6)),
          10 )
  | 0x64 ->
    let x = d_pair read addr 1 1 in
    if x < 0 then None
    else Some (Minstr.Cmp (Mem { base = x land 7; disp = d_i32 read addr 2 }, Reg (x lsr 3)), 6)
  | 0x70 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None else Some (Minstr.Push (Reg (x lsr 3)), 2)
  | 0x71 ->
    let x = d_pair read addr 1 3 in
    if x <> 0 then None else Some (Minstr.Push (Imm (d_i32 read addr 2)), 6)
  | 0x72 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else Some (Minstr.Push (Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0x73 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None else Some (Minstr.Pop (Reg (x lsr 3)), 2)
  | 0x74 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else Some (Minstr.Pop (Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0x80 -> Some (Minstr.Jmp (addr + 5 + d_i32 read addr 1), 5)
  | _ when op >= 0x81 && op <= 0x88 ->
    Some (Minstr.Jcc (Minstr.all_conds.(op - 0x81), addr + 5 + d_i32 read addr 1), 5)
  | 0x90 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None else Some (Minstr.Jmpr (Reg (x lsr 3)), 2)
  | 0x91 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else Some (Minstr.Jmpr (Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0x92 -> Some (Minstr.Call (addr + 5 + d_i32 read addr 1), 5)
  | 0x93 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None else Some (Minstr.Callr (Reg (x lsr 3)), 2)
  | 0x94 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else Some (Minstr.Callr (Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | 0xC3 -> Some (Minstr.Ret, 1)
  | 0xA0 -> Some (Minstr.Syscall, 1)
  | 0x99 -> Some (Minstr.Nop, 1)
  (* Decode-only aliases. Real x86 has a dense one-byte opcode map
     (58+r pop, B8+r mov imm32, C2 ret-imm16, ...) which is what makes
     unintended gadgets abundant; these compact forms are never
     emitted by the encoder but decode validly, reproducing that
     density. *)
  | _ when op >= 0xC8 && op <= 0xCF -> Some (Minstr.Pop (Reg (op - 0xC8)), 1)
  | _ when op >= 0xD0 && op <= 0xD7 -> Some (Minstr.Push (Reg (op - 0xD0)), 1)
  | _ when op >= 0xB8 && op <= 0xBF -> Some (Minstr.Mov (Reg (op - 0xB8), Imm (d_i32 read addr 1)), 5)
  | _ when op >= 0xB0 && op <= 0xB7 ->
    let v = d_byte read addr 1 in
    let v = if v land 0x80 <> 0 then v - 0x100 else v in
    Some (Minstr.Mov (Reg (op - 0xB0), Imm v), 2)
  | 0xC2 -> Some (Minstr.Ret, 3) (* ret imm16: pops shown as plain ret *)
  | _ when op >= 0x04 && op <= 0x0B ->
    let v = d_byte read addr 1 in
    let v = if v land 0x80 <> 0 then v - 0x100 else v in
    Some (Minstr.Binop (Minstr.Add, Reg (op - 0x04), Imm v), 2)
  | _ when op >= 0xE0 && op <= 0xE7 ->
    let v = d_byte read addr 1 in
    let v = if v land 0x80 <> 0 then v - 0x100 else v in
    Some (Minstr.Binop (Minstr.Xor, Reg (op - 0xE0), Imm v), 2)
  | _ when op >= 0xF0 && op <= 0xFF ->
    Some (Minstr.Mov (Reg (op land 7), Mem { base = 7; disp = d_byte read addr 1 land 0x7C }), 2)
    (* short stack load: mov r, [sp+disp7] *)
  | 0x00 -> Some (Minstr.Binop (Minstr.Add, Reg 0, Reg 0), 1)
  | _ when op >= 0x0C && op <= 0x0F ->
    Some (Minstr.Binop (Minstr.Or, Reg (op land 3), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0x1B && op <= 0x1F ->
    Some (Minstr.Binop (Minstr.Sub, Reg (op land 7), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0x2B && op <= 0x2F ->
    Some (Minstr.Binop (Minstr.And, Reg (op land 7), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0x3B && op <= 0x3F -> Some (Minstr.Cmp (Reg (op land 7), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0x4B && op <= 0x4F -> Some (Minstr.Mov (Reg (op land 7), Reg (op land 3)), 1)
  | _ when op >= 0x5B && op <= 0x5F ->
    (* like x86's one-byte 58+r pops *)
    Some (Minstr.Pop (Reg (op land 7)), 1)
  | _ when op >= 0x65 && op <= 0x6F ->
    Some (Minstr.Binop (Minstr.Xor, Reg (op land 7), Reg ((op lsr 1) land 7)), 1)
  | _ when op >= 0x75 && op <= 0x79 ->
    let rel = d_byte read addr 1 in
    let rel = if rel land 0x80 <> 0 then rel - 0x100 else rel in
    Some (Minstr.Jcc (Minstr.all_conds.(op - 0x75), addr + 2 + rel), 2)
  | _ when op >= 0x7A && op <= 0x7F ->
    Some (Minstr.Binop (Minstr.Or, Reg (op land 7), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0x89 && op <= 0x8F ->
    Some (Minstr.Mov (Reg (op land 7), Mem { base = 7; disp = d_byte read addr 1 land 0x7C }), 2)
  | _ when op >= 0x95 && op <= 0x9F && op <> 0x99 -> Some (Minstr.Push (Reg (op land 7)), 1)
  | _ when op >= 0xA5 && op <= 0xAF -> Some (Minstr.Lea (op land 7, 7, d_byte read addr 1 land 0x7C), 2)
  | 0xC0 | 0xC1 -> Some (Minstr.Nop, 1)
  | _ when op >= 0xC4 && op <= 0xC7 ->
    Some (Minstr.Binop (Minstr.Add, Reg (op land 3), Reg ((op lsr 1) land 3)), 1)
  | _ when op >= 0xD8 && op <= 0xDF ->
    Some (Minstr.Binop (Minstr.Mul, Reg (op land 7), Imm (d_byte read addr 1)), 2)
  | _ when op >= 0xE8 && op <= 0xEF ->
    Some (Minstr.Mov (Mem { base = 7; disp = d_byte read addr 1 land 0x7C }, Reg (op land 7)), 2)
  | 0xA1 -> Some (Minstr.Trap (d_i32 read addr 1), 5)
  | 0xA2 -> Some (Minstr.Callrat { target = d_i32 read addr 1; src_ret = d_i32 read addr 5 }, 9)
  | 0xA3 ->
    let x = d_pair read addr 1 3 in
    if x < 0 || x land 7 <> 0 then None else Some (Minstr.Retrat (Reg (x lsr 3)), 2)
  | 0xA4 ->
    let x = d_pair read addr 1 1 in
    if x < 0 || x lsr 3 <> 0 then None
    else Some (Minstr.Retrat (Mem { base = x land 7; disp = d_i32 read addr 2 }), 6)
  | _ -> None
