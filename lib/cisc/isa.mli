(** The CISC ("x86-like") instruction set.

    A 32-bit, 8-register machine with variable-length instructions,
    rich addressing modes (register, immediate and memory forms of
    most operations), stack-based argument passing, and a one-byte
    return opcode (0xC3). The variable-length unaligned encoding is
    deliberate: decoding may begin at any byte offset, so immediates
    and displacements give rise to *unintentional* gadgets exactly as
    on real x86 — the property the paper's attack-surface numbers
    depend on.

    Registers: 0=ax 1=bx 2=cx 3=dx 4=si 5=di 6=bp 7=sp. [bp] is the
    compiler scratch (compilation is frame-pointer-less), [ax] carries
    results and the syscall number; arguments travel on the stack. *)

val desc : Hipstr_isa.Desc.t

val length : Hipstr_isa.Minstr.t -> int
(** Encoded length in bytes. Depends only on the instruction shape,
    so layout can be computed before targets are resolved. *)

val encode : at:int -> Hipstr_isa.Minstr.t -> string
(** [encode ~at i] is the byte encoding of [i] when placed at address
    [at] (control-flow targets become PC-relative displacements).
    @raise Invalid_argument on operand shapes the ISA cannot encode. *)

val encode_into : Buffer.t -> at:int -> Hipstr_isa.Minstr.t -> unit
(** [encode] appending to a caller-owned buffer — what
    [Translator.layout] uses so encoding a unit allocates one buffer,
    not one per instruction. *)

val decode : read:(int -> int) -> int -> (Hipstr_isa.Minstr.t * int) option
(** [decode ~read addr] decodes one instruction at [addr], where
    [read a] fetches the byte at [a]. [None] if the bytes do not form
    a valid instruction. *)

val ret_opcode : int
(** The one-byte return opcode (0xC3), exposed for the Galileo gadget
    scanner. *)
