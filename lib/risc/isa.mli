(** The RISC ("ARM-like") instruction set.

    A 32-bit, 16-register load/store machine. Instructions are one or
    two 4-byte words (a second word carries a 32-bit immediate or
    branch target, literal-pool style) and must be 4-byte aligned;
    there are no memory operands on ALU operations, calls write a link
    register instead of pushing, and returns are [bx lr]. Strict
    alignment means gadget mining can only discover *intended*
    instruction boundaries — the paper measures the resulting attack
    space to be 52x smaller than x86's, and this encoding reproduces
    that asymmetry.

    Registers: r0-r11 general purpose (r0-r3 arguments, r0 result,
    r4-r11 callee-saved), r12 compiler scratch, r13=sp, r14=lr,
    r15 reserved. *)

val desc : Hipstr_isa.Desc.t

val length : Hipstr_isa.Minstr.t -> int
(** Encoded length in bytes (4, 8 or 12). Depends on immediate widths
    but not on layout: branch forms are always wide. *)

val encode : at:int -> Hipstr_isa.Minstr.t -> string
(** @raise Invalid_argument on operand shapes the ISA cannot encode
    (memory operands on ALU ops, push of immediate, etc.). *)

val encode_into : Buffer.t -> at:int -> Hipstr_isa.Minstr.t -> unit
(** [encode] appending to a caller-owned buffer — what
    [Translator.layout] uses so encoding a unit allocates one buffer,
    not one per instruction. *)

val decode : read:(int -> int) -> int -> (Hipstr_isa.Minstr.t * int) option

val encodable : Hipstr_isa.Minstr.t -> bool
(** Whether the instruction shape is directly encodable; the PSR
    translator consults this to emulate missing addressing modes with
    scratch-register sequences. *)
