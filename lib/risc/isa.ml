open Hipstr_isa
module W32 = Hipstr_util.Wrap32

let desc =
  {
    Desc.which = Desc.Risc;
    name = "risc32";
    nregs = 16;
    sp = 13;
    lr = Some 14;
    call_pushes_ret = false;
    scratch = 12;
    scratch2 = 11;
    arg_regs = [];
    ret_reg = 0;
    callee_saved = [ 4; 5; 6; 7; 8; 9; 10 ];
    caller_saved = [ 0; 1; 2; 3 ];
    (* callee-class registers first (see the CISC descriptor) *)
    allocatable = [ 4; 5; 6; 7; 8; 9; 10; 0; 1; 2; 3 ];
    align = 4;
    freq_ghz = 2.0;
  }

let lr = 14

let binop_index : Minstr.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Divs -> 3
  | Rems -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10


let cond_index : Minstr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5
  | Ult -> 6
  | Uge -> 7


let fits16 k = k >= -32768 && k <= 32767

let encodable (i : Minstr.t) =
  match i with
  | Mov (Reg _, Reg _) | Mov (Reg _, Imm _) | Mov (Reg _, Mem _) | Mov (Mem _, Reg _) -> true
  | Mov _ -> false
  | Lea _ -> true
  | Binop (_, Reg _, Reg _) | Binop (_, Reg _, Imm _) -> true
  | Binop _ -> false
  | Cmp (Reg _, Reg _) | Cmp (Reg _, Imm _) -> true
  | Cmp _ -> false
  | Push (Reg _) | Pop (Reg _) -> true
  | Push _ | Pop _ -> false
  | Jmp _ | Jcc _ -> true
  | Jmpr (Reg _) | Callr (Reg _) -> true
  | Jmpr _ | Callr _ -> false
  | Call _ -> true
  | Ret -> false (* RISC returns are [Retr lr] *)
  | Retr _ -> true
  | Syscall | Nop | Trap _ | Callrat _ -> true
  | Retrat (Reg _) -> true
  | Retrat _ -> false

let length (i : Minstr.t) =
  if not (encodable i) then invalid_arg "risc: unencodable instruction";
  match i with
  | Mov (Reg _, Reg _) -> 4
  | Mov (Reg _, Imm k) -> if fits16 k then 4 else 8
  | Mov (Reg _, Mem { disp; _ }) | Mov (Mem { disp; _ }, Reg _) -> if fits16 disp then 4 else 8
  | Lea (_, _, k) -> if fits16 k then 4 else 8
  | Binop (_, Reg _, Reg _) -> 4
  | Binop (_, Reg _, Imm k) -> if fits16 k then 4 else 8
  | Cmp (Reg _, Reg _) -> 4
  | Cmp (Reg _, Imm k) -> if fits16 k then 4 else 8
  | Push (Reg _) | Pop (Reg _) -> 4
  | Jmp _ | Jcc _ | Call _ | Trap _ -> 8
  | Jmpr (Reg _) | Callr (Reg _) | Retr _ | Retrat (Reg _) -> 4
  | Syscall | Nop -> 4
  | Callrat _ -> 12
  | Mov _ | Binop _ | Cmp _ | Push _ | Pop _ | Jmpr _ | Callr _ | Ret | Retrat _ ->
    invalid_arg "risc: unencodable instruction"

let check_reg r = if r < 0 || r > 15 then invalid_arg "risc: register out of range"

let word buf op a b imm16 =
  check_reg a;
  check_reg b;
  let imm = imm16 land 0xFFFF in
  Buffer.add_char buf (Char.chr (op land 0xFF));
  Buffer.add_char buf (Char.chr ((a lsl 4) lor b));
  Buffer.add_char buf (Char.chr (imm land 0xFF));
  Buffer.add_char buf (Char.chr ((imm lsr 8) land 0xFF))

let extra buf v =
  let v = W32.unsigned v in
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

(* Narrow/wide immediate form: [op] if it fits in imm16, else
   [op lor 0x80] with a zero imm16 field and the value in a second
   word. *)
let imm_form buf op a b k =
  if fits16 k then word buf op a b k
  else begin
    word buf (op lor 0x80) a b 0;
    extra buf k
  end

(* Encode into a caller-owned buffer: [layout] encodes whole units,
   and a per-instruction [Buffer.create]/[Buffer.contents] pair was a
   measurable slice of translation-time allocation. *)
let encode_into buf ~at:_ (i : Minstr.t) =
  match i with
  | Mov (Reg d, Reg s) -> word buf 0x01 d s 0
  | Mov (Reg d, Imm k) -> imm_form buf 0x02 d 0 k
  | Mov (Reg d, Mem { base; disp }) -> imm_form buf 0x03 d base disp
  | Mov (Mem { base; disp }, Reg s) -> imm_form buf 0x04 s base disp
  | Lea (d, b, k) -> imm_form buf 0x06 d b k
  | Binop (op, Reg d, Reg s) -> word buf (0x10 + binop_index op) d s 0
  | Binop (op, Reg d, Imm k) -> imm_form buf (0x20 + binop_index op) d 0 k
  | Cmp (Reg a, Reg b) -> word buf 0x60 a b 0
  | Cmp (Reg a, Imm k) -> imm_form buf 0x61 a 0 k
  | Push (Reg r) -> word buf 0x70 r 0 0
  | Pop (Reg r) -> word buf 0x73 r 0 0
  | Jmp t ->
    word buf 0x7B 0 0 0;
    extra buf t
  | Jcc (c, t) ->
    word buf (0x40 + cond_index c) 0 0 0;
    extra buf t
  | Call t ->
    word buf 0x48 0 0 0;
    extra buf t
  | Jmpr (Reg r) -> word buf 0x49 r 0 0
  | Callr (Reg r) -> word buf 0x4A r 0 0
  | Retr r -> word buf 0x4B r 0 0
  | Syscall -> word buf 0x4C 0 0 0
  | Nop -> word buf 0x4D 0 0 0
  | Trap a ->
    word buf 0x4E 0 0 0;
    extra buf a
  | Callrat { target; src_ret } ->
    word buf 0x4F 0 0 0;
    extra buf target;
    extra buf src_ret
  | Retrat (Reg r) -> word buf 0x51 r 0 0
  | Mov _ | Binop _ | Cmp _ | Push _ | Pop _ | Jmpr _ | Callr _ | Ret | Retrat _ ->
    invalid_arg "risc: unencodable instruction"

let encode ~at (i : Minstr.t) =
  let buf = Buffer.create 8 in
  encode_into buf ~at i;
  Buffer.contents buf

(* Decode helpers are top-level functions fully applied at every use
   site: a local closure over [read]/[addr] would allocate per decode
   call, and decode runs per block build with the decode cache on and
   per retired instruction with it off. *)
let d_byte read addr k = read (addr + k) land 0xFF

let d_i32 read addr k =
  W32.of_bytes (d_byte read addr k)
    (d_byte read addr (k + 1))
    (d_byte read addr (k + 2))
    (d_byte read addr (k + 3))

(* Narrow/wide immediate: imm16 for the narrow form, the second word
   for the wide one. *)
let d_imm read addr wide imm16 = if wide then d_i32 read addr 4 else imm16

let decode ~read addr =
  let op = d_byte read addr 0 in
  let ab = d_byte read addr 1 in
  let a = ab lsr 4 and b = ab land 0xF in
  let imm16 =
    let v = d_byte read addr 2 lor (d_byte read addr 3 lsl 8) in
    if v land 0x8000 <> 0 then v - 0x10000 else v
  in
  let wide = op land 0x80 <> 0 in
  let base_op = op land 0x7F in
  let len = if wide then 8 else 4 in
  (* Wide forms must carry a zero imm16 field; the payload is the
     second word. *)
  let ok_wide = (not wide) || imm16 = 0 in
  if not ok_wide then None
  else
    match base_op with
    | 0x01 when (not wide) && imm16 = 0 -> Some (Minstr.Mov (Reg a, Reg b), 4)
    | 0x02 when b = 0 -> Some (Minstr.Mov (Reg a, Imm (d_imm read addr wide imm16)), len)
    | 0x03 -> Some (Minstr.Mov (Reg a, Mem { base = b; disp = d_imm read addr wide imm16 }), len)
    | 0x04 -> Some (Minstr.Mov (Mem { base = b; disp = d_imm read addr wide imm16 }, Reg a), len)
    | 0x06 -> Some (Minstr.Lea (a, b, d_imm read addr wide imm16), len)
    | _ when base_op >= 0x10 && base_op <= 0x1A && (not wide) && imm16 = 0 ->
      Some (Minstr.Binop (Minstr.all_binops.(base_op - 0x10), Reg a, Reg b), 4)
    | _ when base_op >= 0x20 && base_op <= 0x2A && b = 0 ->
      Some (Minstr.Binop (Minstr.all_binops.(base_op - 0x20), Reg a, Imm (d_imm read addr wide imm16)), len)
    | 0x60 when (not wide) && imm16 = 0 -> Some (Minstr.Cmp (Reg a, Reg b), 4)
    | 0x61 when b = 0 -> Some (Minstr.Cmp (Reg a, Imm (d_imm read addr wide imm16)), len)
    | 0x70 when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Push (Reg a), 4)
    | 0x73 when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Pop (Reg a), 4)
    | 0x7B when (not wide) && a = 0 && b = 0 && imm16 = 0 -> Some (Minstr.Jmp (d_i32 read addr 4), 8)
    | _ when base_op >= 0x40 && base_op <= 0x47 && (not wide) && a = 0 && b = 0 && imm16 = 0 ->
      Some (Minstr.Jcc (Minstr.all_conds.(base_op - 0x40), d_i32 read addr 4), 8)
    | 0x48 when (not wide) && a = 0 && b = 0 && imm16 = 0 -> Some (Minstr.Call (d_i32 read addr 4), 8)
    | 0x49 when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Jmpr (Reg a), 4)
    | 0x4A when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Callr (Reg a), 4)
    | 0x4B when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Retr a, 4)
    | 0x4C when (not wide) && a = 0 && b = 0 && imm16 = 0 -> Some (Minstr.Syscall, 4)
    | 0x4D when (not wide) && a = 0 && b = 0 && imm16 = 0 -> Some (Minstr.Nop, 4)
    | 0x4E when (not wide) && a = 0 && b = 0 && imm16 = 0 -> Some (Minstr.Trap (d_i32 read addr 4), 8)
    | 0x4F when (not wide) && a = 0 && b = 0 && imm16 = 0 ->
      Some (Minstr.Callrat { target = d_i32 read addr 4; src_ret = d_i32 read addr 8 }, 12)
    | 0x51 when (not wide) && b = 0 && imm16 = 0 -> Some (Minstr.Retrat (Reg a), 4)
    | _ -> None

let _ = lr
