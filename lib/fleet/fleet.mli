(** The fleet serving harness: staged httpd connections sharded
    across a pool of heterogeneous CMPs, driven open-loop on one
    global guest-cycle clock.

    {b Model.} Shard [s] owns connection ids ≡ [s] (mod shards) and
    one {!Hipstr_cmp.Cmp.t}. Time advances in waves: every busy shard
    admits due arrivals (bounded by [fl_max_live], so overload queues
    instead of booting unbounded address spaces), runs one scheduling
    round and reaps completions; the global clock then advances by
    the maximum per-core cycle delta any shard accumulated (a
    gang-scheduled epoch). Idle fleets jump straight to the next
    arrival.

    {b Determinism contract.} Waves fan busy shards over
    {!Hipstr_cmp.Pool} domains. With stealing on, the shard tasks
    form one dynamic queue claimed by atomic fetch-and-add — an idle
    domain steals the next whole-CMP quantum in shard index order;
    with stealing off each domain walks a static stride partition.
    Every simulated decision lives inside one shard, results fold
    back in shard index order, and latencies are stamped after the
    wave barrier — so [-j N], [-j 1], stealing and no-stealing are
    bit-identical, exports included.

    {b Latency.} Request latency = wave-end clock − arrival, in guest
    cycles, admission queueing included (open-loop sojourn time);
    service cycles are recorded separately. *)

type config = {
  fl_shards : int;
  fl_cores : Hipstr_isa.Desc.which list;  (** per shard *)
  fl_policy : Hipstr_cmp.Cmp.policy;
  fl_quantum : int;
  fl_mode : Hipstr.System.mode;
  fl_cfg : Hipstr_psr.Config.t option;
  fl_seed : int;
  fl_fuel : int;  (** per-connection instruction budget *)
  fl_max_live : int;  (** admission cap per shard *)
  fl_steal : bool;
  fl_migrate_every : int;
      (** live-migration rebalance period, in waves; [0] disables it.
          Every period, one runnable process moves from the
          most-loaded shard to the least-loaded one (load gap ≥ 2,
          ties by shard index, lowest pid first) by
          {!Hipstr_snapshot.Snapshot.checkpoint_process} /
          [restore_process] — the same wire image the CLI writes to
          disk. Decided in the sequential section after the wave
          barrier, so the run stays bit-identical for any [-j]. *)
}

val default : config
(** 4 shards × the paper's core pair, round-robin, quantum 2000,
    [Hipstr] mode, 8 live connections per shard, stealing on, live
    migration off. *)

type req_record = {
  rr_id : int;
  rr_tenant : int;
  rr_kind : Traffic.kind;
  rr_shard : int;
  rr_arrival : float;
  rr_admitted : float;
  rr_finished : float;
  rr_latency : float;  (** [rr_finished - rr_arrival], guest cycles *)
  rr_service_cycles : float;
  rr_instructions : int;
  rr_outcome : Hipstr.System.outcome;
}

type result = {
  r_records : req_record list;  (** sorted by [rr_id] *)
  r_makespan : float;  (** clock when the last request finished *)
  r_waves : int;
  r_completed : int;
  r_killed : int;
  r_shell : int;
  r_out_of_fuel : int;
  r_live_migrations : int;  (** cross-shard checkpoint/restore moves *)
}

val outcome_label : Hipstr.System.outcome -> string
(** ["completed"], ["shell"], ["killed"] or ["out_of_fuel"] — the
    per-tenant counter suffixes. *)

val run :
  ?jobs:int ->
  ?obs:Hipstr_obs.Obs.t ->
  ?timeline:Hipstr_obs.Obs.Timeline.t ->
  config ->
  Traffic.conn list ->
  result
(** Serve the whole trace to completion. When [obs] is enabled, each
    completion lands in [fleet.latency_cycles] /
    [fleet.service_cycles] / [fleet.kind.<kind>.latency_cycles] and
    the per-tenant [fleet.tenant.t<k>.*] namespaces (requests,
    outcome counters, latency/service histograms); per-shard children
    are merged back in index order, and fleet totals ([fleet.waves],
    [fleet.requests], ...) are recorded at the end.

    With [timeline], every wave additionally feeds the timeline after
    its barrier at the wave-end clock: per-wave outcome counts
    ([fleet.completed] etc. via {!Hipstr_obs.Obs.Timeline.record}),
    a delta sample of the parent context (so per-window
    [fleet.latency_cycles] percentiles fall out) and one of each busy
    shard's child in shard index order (per-window psr/machine/cache
    activity). Requires an enabled [obs] to carry the latency
    histograms; deterministic across [-j]/stealing like the rest of
    the run.

    With [fl_migrate_every > 0] each live migration also records
    [fleet.live_migrations] plus the [fleet.migration.image_bytes]
    and [fleet.migration.cost_cycles] histograms (checkpoint +
    transfer under the {!Hipstr_snapshot.Snapshot} cost model).
    @raise Invalid_argument on a non-positive shard count, admission
    cap, fuel or an empty core list. *)

val latencies : result -> float list
val latency_percentile : result -> float -> float
(** Exact percentile over the raw per-request latencies
    ({!Hipstr_util.Stats.percentile}, [q] in [0, 100]).
    @raise Invalid_argument when the run served no requests — a tail
    latency over zero observations is undefined; callers must guard
    the empty case rather than read a silent 0. *)

val throughput : result -> float
(** Completed requests per million guest cycles of fleet time. *)

val by_kind : result -> (Traffic.kind * int * int * int) list
(** Per request kind: (kind, requests, completed, killed). *)

val by_tenant : result -> (int * req_record list) list
