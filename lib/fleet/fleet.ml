(* The fleet harness: hundreds–thousands of staged httpd connections
   sharded across a pool of heterogeneous CMPs, driven open-loop on
   one global guest-cycle clock.

   Model. Shard s owns every connection with cn_id ≡ s (mod shards)
   and one Cmp.t (its own cores, scheduler queue and obs child). Time
   advances in waves: each wave, every busy shard admits the arrivals
   that are due (bounded by fl_max_live so an overloaded shard queues
   instead of booting unbounded address spaces), runs one scheduling
   round, and reaps completions; the global clock then advances by
   the *maximum* per-core cycle delta any shard accumulated — a
   gang-scheduled epoch model, so shard clocks never drift apart by
   more than one round. When every shard is idle the clock jumps to
   the next pending arrival.

   Work distribution and determinism. Waves fan the busy shards over
   Pool domains. With stealing on, the shard tasks form one dynamic
   queue claimed by atomic fetch-and-add — an idle domain steals the
   next whole-CMP quantum by shard index order; with stealing off,
   each domain walks a static stride-[jobs] partition. Either way
   every simulated decision happens inside exactly one shard and
   reads only that shard's state, results are folded back in shard
   index order, and request latencies are stamped by the caller after
   the wave barrier — so -j N, -j 1, stealing and no-stealing are all
   bit-identical (the fleet determinism suite diffs the exports).

   Latency. A request's latency is wave-end clock minus arrival time,
   in guest cycles: it includes admission queueing (open-loop sojourn
   time), which is what makes the p99-vs-arrival-rate curves in
   BENCH_fleet.json hockey-stick under overload. Service cycles (the
   process's own accumulated cycles) are recorded separately. *)

module Obs = Hipstr_obs.Obs
module Stats = Hipstr_util.Stats
module Desc = Hipstr_isa.Desc
module System = Hipstr.System
module Config = Hipstr_psr.Config
module Process = Hipstr_cmp.Process
module Cmp = Hipstr_cmp.Cmp
module Pool = Hipstr_cmp.Pool
module Snapshot = Hipstr_snapshot.Snapshot

type config = {
  fl_shards : int;
  fl_cores : Desc.which list;  (* per shard *)
  fl_policy : Cmp.policy;
  fl_quantum : int;
  fl_mode : System.mode;
  fl_cfg : Config.t option;
  fl_seed : int;
  fl_fuel : int;  (* per-connection instruction budget *)
  fl_max_live : int;  (* admission cap per shard *)
  fl_steal : bool;
  fl_migrate_every : int;  (* rebalance period in waves; 0 = off *)
}

let default =
  {
    fl_shards = 4;
    fl_cores = Cmp.default_cores;
    fl_policy = Cmp.Round_robin;
    fl_quantum = 2_000;
    fl_mode = System.Hipstr;
    fl_cfg = None;
    fl_seed = 1;
    fl_fuel = Traffic.default_fuel;
    fl_max_live = 8;
    fl_steal = true;
    fl_migrate_every = 0;
  }

type req_record = {
  rr_id : int;
  rr_tenant : int;
  rr_kind : Traffic.kind;
  rr_shard : int;
  rr_arrival : float;
  rr_admitted : float;
  rr_finished : float;
  rr_latency : float;  (* rr_finished - rr_arrival, guest cycles *)
  rr_service_cycles : float;
  rr_instructions : int;
  rr_outcome : System.outcome;
}

type result = {
  r_records : req_record list;  (* by cn_id *)
  r_makespan : float;  (* clock when the last request finished *)
  r_waves : int;
  r_completed : int;
  r_killed : int;
  r_shell : int;
  r_out_of_fuel : int;
  r_live_migrations : int;  (* cross-shard checkpoint/restore moves *)
}

let outcome_label = function
  | System.Finished _ -> "completed"
  | System.Shell_spawned -> "shell"
  | System.Killed _ -> "killed"
  | System.Out_of_fuel -> "out_of_fuel"

(* --- per-shard state ----------------------------------------------- *)

type shard = {
  sh_id : int;
  sh_obs : Obs.t;
  sh_cmp : Cmp.t;
  mutable sh_pending : Traffic.conn list;  (* future arrivals, in order *)
  mutable sh_prev_cycles : float array;
  sh_live : (int, Traffic.conn * float) Hashtbl.t;  (* pid -> conn, admitted stamp *)
}

(* A completed connection as reported by a shard task, before the
   caller stamps it with the wave-end clock. *)
type completion = {
  co_conn : Traffic.conn;
  co_admitted : float;
  co_outcome : System.outcome;
  co_service : float;
  co_instructions : int;
}

let shard_wave cfg sh ~now =
  let ncores = List.length cfg.fl_cores in
  let rec admit () =
    match sh.sh_pending with
    | c :: rest when c.Traffic.cn_arrival <= now && Hashtbl.length sh.sh_live < cfg.fl_max_live ->
      sh.sh_pending <- rest;
      (* start ISA tiles the shard's core list so a pinned-mode fleet
         spreads over both ISAs deterministically *)
      let start_isa = List.nth cfg.fl_cores (c.Traffic.cn_id mod ncores) in
      let p =
        Traffic.spawn ~obs:sh.sh_obs ?cfg:cfg.fl_cfg ~seed:cfg.fl_seed ~start_isa
          ~fuel:cfg.fl_fuel ~mode:cfg.fl_mode c
      in
      Cmp.inject sh.sh_cmp p;
      Hashtbl.replace sh.sh_live (Process.pid p) (c, now);
      admit ()
    | _ -> ()
  in
  admit ();
  if Cmp.runnable_count sh.sh_cmp > 0 then ignore (Cmp.step sh.sh_cmp);
  let cycles = Cmp.core_cycles sh.sh_cmp in
  let delta = ref 0. in
  Array.iteri (fun i c -> delta := Float.max !delta (c -. sh.sh_prev_cycles.(i))) cycles;
  sh.sh_prev_cycles <- cycles;
  let completions =
    List.map
      (fun p ->
        let pid = Process.pid p in
        let conn, admitted = Hashtbl.find sh.sh_live pid in
        Hashtbl.remove sh.sh_live pid;
        {
          co_conn = conn;
          co_admitted = admitted;
          co_outcome =
            (match Process.outcome p with Some o -> o | None -> assert false);
          co_service = Process.cycles p;
          co_instructions = Process.instructions p;
        })
      (Cmp.reap sh.sh_cmp)
  in
  (!delta, completions)

(* Dynamic index-order queue (Pool's atomic counter: idle domains
   steal the next shard by index) vs a static stride partition. Both
   produce identical simulation results; the contrast is what the
   stealing-determinism test pins down. *)
let run_tasks ~jobs ~steal f items =
  let n = List.length items in
  if jobs <= 1 || n <= 1 then List.map f items
  else if steal then Pool.mapi ~jobs (fun _ sh -> f sh) items
  else begin
    let arr = Array.of_list items in
    let out = Array.make n None in
    let doms =
      List.init (min jobs n) (fun d ->
          Domain.spawn (fun () ->
              let i = ref d in
              while !i < n do
                out.(!i) <- Some (f arr.(!i));
                i := !i + jobs
              done))
    in
    List.iter Domain.join doms;
    Array.to_list (Array.map Option.get out)
  end

let run ?(jobs = 1) ?(obs = Obs.disabled) ?timeline cfg conns =
  if cfg.fl_shards < 1 then invalid_arg "Fleet.run: shards must be positive";
  if cfg.fl_max_live < 1 then invalid_arg "Fleet.run: max_live must be positive";
  if cfg.fl_fuel < 1 then invalid_arg "Fleet.run: fuel must be positive";
  if cfg.fl_cores = [] then invalid_arg "Fleet.run: need at least one core per shard";
  let shards =
    Array.init cfg.fl_shards (fun s ->
        let sh_obs = Obs.child obs in
        {
          sh_id = s;
          sh_obs;
          sh_cmp =
            Cmp.create ~obs:sh_obs ~policy:cfg.fl_policy ~quantum:cfg.fl_quantum
              ~cores:cfg.fl_cores [];
          sh_pending = List.filter (fun c -> c.Traffic.cn_id mod cfg.fl_shards = s) conns;
          sh_prev_cycles = Array.make (List.length cfg.fl_cores) 0.;
          sh_live = Hashtbl.create 16;
        })
  in
  let observing = Obs.on obs in
  let m = Obs.metrics obs in
  let observe_completion r =
    if observing then begin
      let pre = Printf.sprintf "fleet.tenant.t%d" r.rr_tenant in
      Obs.Metrics.incr (Obs.Metrics.counter m (pre ^ ".requests"));
      Obs.Metrics.incr (Obs.Metrics.counter m (pre ^ "." ^ outcome_label r.rr_outcome));
      Obs.Metrics.observe (Obs.Metrics.histogram m (pre ^ ".latency_cycles")) r.rr_latency;
      Obs.Metrics.observe (Obs.Metrics.histogram m (pre ^ ".service_cycles")) r.rr_service_cycles;
      Obs.Metrics.observe (Obs.Metrics.histogram m "fleet.latency_cycles") r.rr_latency;
      Obs.Metrics.observe (Obs.Metrics.histogram m "fleet.service_cycles") r.rr_service_cycles;
      Obs.Metrics.observe
        (Obs.Metrics.histogram m (Printf.sprintf "fleet.kind.%s.latency_cycles" (Traffic.kind_name r.rr_kind)))
        r.rr_latency
    end
  in
  let records = ref [] in
  let makespan = ref 0. in
  let clock = ref 0. in
  let waves = ref 0 in
  let live_migrations = ref 0 in
  let fb = lazy (Traffic.fatbin ()) in
  (* Cross-shard live migration: every fl_migrate_every waves, in the
     sequential section after the wave barrier, move one runnable
     process from the most-loaded shard to the least-loaded one via
     checkpoint_process/restore_process — the same wire image the CLI
     writes to disk, so "migration" and "checkpoint to a file, restore
     on another pool" are literally the same operation. Everything
     here reads only post-barrier shard state and ties break by shard
     index / lowest pid, so the rebalance schedule (and therefore the
     whole run) stays bit-identical for any -j. The migrated process
     restarts cold on the target pool (core affinity is dropped by the
     image) and its metrics deltas accrue to the target's obs child;
     the source child already holds everything up to the move, and the
     end-of-run merge folds both into the parent. *)
  let rebalance () =
    let load sh = Cmp.runnable_count sh.sh_cmp in
    let src = ref shards.(0) and tgt = ref shards.(0) in
    Array.iter
      (fun sh ->
        if load sh > load !src then src := sh;
        if load sh < load !tgt then tgt := sh)
      shards;
    let src = !src and tgt = !tgt in
    if load src - load tgt >= 2 then begin
      let cand =
        List.fold_left
          (fun acc p ->
            if Process.outcome p <> None then acc
            else
              match acc with
              | Some q when Process.pid q <= Process.pid p -> acc
              | _ -> Some p)
          None (Cmp.processes src.sh_cmp)
      in
      match cand with
      | None -> ()
      | Some p ->
        let pid = Process.pid p in
        let p = Cmp.extract src.sh_cmp pid in
        let image = Snapshot.checkpoint_process p in
        let p', _ =
          Snapshot.restore_process ~obs:tgt.sh_obs ~merge_obs:false ~fatbin:(Lazy.force fb) image
        in
        Cmp.inject tgt.sh_cmp p';
        (match Hashtbl.find_opt src.sh_live pid with
        | Some entry ->
          Hashtbl.remove src.sh_live pid;
          Hashtbl.replace tgt.sh_live pid entry
        | None -> assert false);
        incr live_migrations;
        if observing then begin
          let bytes = String.length image in
          Obs.Metrics.incr (Obs.Metrics.counter m "fleet.live_migrations");
          Obs.Metrics.observe
            (Obs.Metrics.histogram m "fleet.migration.image_bytes")
            (float_of_int bytes);
          Obs.Metrics.observe
            (Obs.Metrics.histogram m "fleet.migration.cost_cycles")
            (Snapshot.checkpoint_cycles ~bytes +. Snapshot.transfer_cycles ~bytes)
        end
    end
  in
  let shard_busy ~now sh =
    Cmp.runnable_count sh.sh_cmp > 0
    ||
    match sh.sh_pending with
    | c :: _ -> c.Traffic.cn_arrival <= now && Hashtbl.length sh.sh_live < cfg.fl_max_live
    | [] -> false
  in
  let live () =
    Array.exists (fun sh -> sh.sh_pending <> [] || Hashtbl.length sh.sh_live > 0) shards
  in
  while live () do
    let now = !clock in
    match List.filter (shard_busy ~now) (Array.to_list shards) with
    | [] ->
      (* every shard drained its live set: jump to the next arrival *)
      let next =
        Array.fold_left
          (fun acc sh ->
            match sh.sh_pending with
            | c :: _ -> Float.min acc c.Traffic.cn_arrival
            | [] -> acc)
          infinity shards
      in
      assert (next > now && next < infinity);
      clock := next
    | busy ->
      incr waves;
      let outs = run_tasks ~jobs ~steal:cfg.fl_steal (fun sh -> shard_wave cfg sh ~now) busy in
      let wave_delta = List.fold_left (fun acc (d, _) -> Float.max acc d) 0. outs in
      clock := now +. wave_delta;
      (* stamp completions at the wave-end clock, in shard index order *)
      List.iter2
        (fun sh (_, completions) ->
          List.iter
            (fun co ->
              let finished_at = !clock in
              let r =
                {
                  rr_id = co.co_conn.Traffic.cn_id;
                  rr_tenant = co.co_conn.Traffic.cn_tenant;
                  rr_kind = co.co_conn.Traffic.cn_kind;
                  rr_shard = sh.sh_id;
                  rr_arrival = co.co_conn.Traffic.cn_arrival;
                  rr_admitted = co.co_admitted;
                  rr_finished = finished_at;
                  rr_latency = finished_at -. co.co_conn.Traffic.cn_arrival;
                  rr_service_cycles = co.co_service;
                  rr_instructions = co.co_instructions;
                  rr_outcome = co.co_outcome;
                }
              in
              records := r :: !records;
              makespan := Float.max !makespan finished_at;
              observe_completion r)
            completions)
        busy outs;
      if cfg.fl_migrate_every > 0 && cfg.fl_shards > 1 && !waves mod cfg.fl_migrate_every = 0 then
        rebalance ();
      (* timeline sampling: after the wave barrier and the completion
         stamps, at the wave-end clock, in a fixed order — the parent
         (fleet.* histograms observed just above) first, then each
         busy shard's child in shard index order. Shards that sat the
         wave out have unchanged metrics, so skipping them changes
         nothing. Deterministic by the same fold-after-barrier
         argument as the end-of-run merge. *)
      (match timeline with
      | None -> ()
      | Some tl ->
        let cos = List.concat_map snd outs in
        let n f = List.length (List.filter (fun co -> f co.co_outcome) cos) in
        Obs.Timeline.record tl ~clock:!clock
          ~counters:
            [
              ("fleet.completed", n (function System.Finished _ -> true | _ -> false));
              ("fleet.killed", n (function System.Killed _ -> true | _ -> false));
              ("fleet.shell", n (fun o -> o = System.Shell_spawned));
              ("fleet.out_of_fuel", n (fun o -> o = System.Out_of_fuel));
            ];
        Obs.Timeline.sample tl ~key:"fleet" ~clock:!clock (Obs.snapshot obs);
        List.iter
          (fun sh ->
            Obs.Timeline.sample tl
              ~key:(Printf.sprintf "shard%d" sh.sh_id)
              ~clock:!clock (Obs.snapshot sh.sh_obs))
          busy)
  done;
  (* fold the shard children back in index order (byte-identical
     exports whatever the domain layout was) *)
  Array.iter (fun sh -> Obs.merge ~into:obs sh.sh_obs) shards;
  let records = List.sort (fun a b -> compare a.rr_id b.rr_id) !records in
  let count f = List.length (List.filter f records) in
  let result =
    {
      r_records = records;
      r_makespan = !makespan;
      r_waves = !waves;
      r_completed = count (fun r -> match r.rr_outcome with System.Finished _ -> true | _ -> false);
      r_killed = count (fun r -> match r.rr_outcome with System.Killed _ -> true | _ -> false);
      r_shell = count (fun r -> r.rr_outcome = System.Shell_spawned);
      r_out_of_fuel = count (fun r -> r.rr_outcome = System.Out_of_fuel);
      r_live_migrations = !live_migrations;
    }
  in
  if observing then begin
    let c name by = if by > 0 then Obs.Metrics.incr ~by (Obs.Metrics.counter m ("fleet." ^ name)) in
    c "waves" result.r_waves;
    c "requests" (List.length records);
    c "completed" result.r_completed;
    c "killed" result.r_killed;
    c "shell" result.r_shell;
    c "out_of_fuel" result.r_out_of_fuel
  end;
  result

(* --- reporting helpers --------------------------------------------- *)

let latencies r = List.map (fun x -> x.rr_latency) r.r_records

let latency_percentile r q =
  match latencies r with
  | [] -> invalid_arg "Fleet.latency_percentile: no completed requests"
  | ls -> Stats.percentile ls q

let throughput r =
  (* completed requests per million guest cycles of fleet time *)
  if r.r_makespan <= 0. then 0. else float_of_int r.r_completed *. 1e6 /. r.r_makespan

let by_kind r =
  List.map
    (fun k ->
      let mine = List.filter (fun x -> x.rr_kind = k) r.r_records in
      let n f = List.length (List.filter f mine) in
      ( k,
        List.length mine,
        n (fun x -> match x.rr_outcome with System.Finished _ -> true | _ -> false),
        n (fun x -> match x.rr_outcome with System.Killed _ -> true | _ -> false) ))
    Traffic.kinds

let by_tenant r =
  let tenants = List.sort_uniq compare (List.map (fun x -> x.rr_tenant) r.r_records) in
  List.map
    (fun t ->
      let mine = List.filter (fun x -> x.rr_tenant = t) r.r_records in
      (t, mine))
    tenants
