(** Deterministic open-loop traffic generation for the [httpd] victim.

    The serving substrate (ROADMAP item 3): connections are synthetic
    httpd processes whose network-buffer globals are staged before
    first execution, with seeded arrival times and a weighted request
    mix. One [(seed, procs, arrival, mix)] tuple names exactly one
    traffic trace — every gap, mix roll and payload word comes from a
    single {!Hipstr_util.Rng} stream — so fleet runs are replayable
    bit-for-bit. *)

(** Arrival process. Rates are requests per {e million guest cycles}
    (the simulator's only clock). [Poisson] draws i.i.d. exponential
    gaps; [Bursty] releases whole back-to-back bursts of [burst]
    connections with inter-burst gaps stretched to keep the long-run
    rate. *)
type arrival = Poisson of float | Bursty of { rate : float; burst : int }

val arrival_name : arrival -> string

val arrival_of_string : string -> (arrival, string) result
(** Parses ["poisson:RATE"] or ["bursty:RATE:BURST"]. Rejections name
    the offending field: non-positive or non-numeric rate, burst
    below 1, unknown model, wrong field count. *)

(** Request-line shapes:
    - [Valid]: in-bounds ASCII lines, served to completion;
    - [Oversized]: long enough to trample [handle_request]'s whole
      frame with unmapped words — a deterministic kill on a native
      server; under PSR/HIPStR relocation either neutralizes the
      smash or catches it as a clean wild-return kill;
    - [Malformed]: protocol violations (negative or >512-word staged
      lengths) the hardened parser answers with 400;
    - [Attack]: the overflow with a code address in the return slot. *)
type kind = Valid | Oversized | Malformed | Attack

val kinds : kind list
val kind_name : kind -> string

(** Integer mix weights; a connection's kind is a weighted draw. *)
type mix = { mx_valid : int; mx_oversized : int; mx_malformed : int; mx_attack : int }

val default_mix : mix
(** 90% valid, 4% oversized, 3% malformed, 3% attack. *)

val mix_weight : mix -> kind -> int
val mix_total : mix -> int
val mix_name : mix -> string

val mix_of_string : string -> (mix, string) result
(** Parses ["V,O,M,A"] or ["valid=V,oversized=O,malformed=M,attack=A"]
    (omitted named weights default to 0). Weights must be
    non-negative with a positive total; duplicate kind keys, unknown
    kinds, negative weights and zero-sum mixes are each rejected with
    a message naming the offending part. *)

(** One connection: the request line it will present, when it
    arrives, and how many server-loop iterations it runs. *)
type conn = {
  cn_id : int;
  cn_tenant : int;
  cn_kind : kind;
  cn_arrival : float;  (** guest cycles since the fleet epoch *)
  cn_requests : int;  (** iterations the server loop will run *)
  cn_line : int array;  (** words staged at [net_input] *)
  cn_len : int;  (** value staged at [net_len] (malformed lines lie) *)
}

val generate :
  ?tenants:int -> seed:int -> procs:int -> arrival:arrival -> mix:mix -> unit -> conn list
(** [procs] connections in arrival order, tenant [i mod tenants]
    (default 4 tenants). @raise Invalid_argument on a non-positive
    [procs]/[tenants], rate, burst or mix total. *)

val victim : Hipstr_workloads.Workloads.t
(** The [httpd] workload every connection boots. *)

val fatbin : unit -> Hipstr_compiler.Fatbin.t
(** The victim's fat binary (memoized by {!Hipstr_workloads}) — what
    {!spawn} boots against and snapshot restore re-materializes
    from. *)

val ret_index : unit -> int
(** Word index of [handle_request]'s saved return address from the
    start of its overflowed buffer — read from the fat binary's frame
    metadata, the same arithmetic the ROP harness uses. *)

val stage : conn -> Hipstr.System.t -> unit
(** Poke the connection's request line into the system's
    [net_input]/[net_len]/[requests] globals (before it first runs). *)

val default_fuel : int

val spawn :
  ?obs:Hipstr_obs.Obs.t ->
  ?cfg:Hipstr_psr.Config.t ->
  ?seed:int ->
  ?start_isa:Hipstr_isa.Desc.which ->
  ?fuel:int ->
  mode:Hipstr.System.mode ->
  conn ->
  Hipstr_cmp.Process.t
(** Materialize the connection: boot an httpd {!Hipstr_cmp.Process}
    with pid [cn_id] and a per-connection seed derived as
    [Pool.task_seed ~seed cn_id], then {!stage} its request line. *)
