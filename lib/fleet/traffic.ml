(* Deterministic open-loop traffic generation for the httpd victim.

   A connection is one httpd process: its "network buffer" globals
   (net_input / net_len) are staged before the process first runs, and
   the server's request loop re-serves that line for a per-connection
   number of iterations. The generator draws every arrival gap,
   request-mix roll and payload word from one SplitMix64 stream
   seeded by the caller, so a (seed, procs, arrival, mix) tuple names
   exactly one traffic trace — the property the fleet determinism
   suite pins down.

   The mix covers the serving spectrum the security story needs:
   - Valid: in-bounds ASCII request lines, served to completion;
   - Malformed: protocol violations (negative or >512-word lengths
     the network buffer cannot have held) that the hardened parser
     answers with 400 without copying;
   - Oversized: lines long enough to trample handle_request's whole
     frame with unmapped words — a deterministic kill on a native
     server, neutralized by state relocation under PSR/HIPStR;
   - Attack: the same overflow with a code address in the return
     slot, the shape a real redirect attempt has. *)

module Rng = Hipstr_util.Rng
module Mem = Hipstr_machine.Mem
module Machine = Hipstr_machine.Machine
module Fatbin = Hipstr_compiler.Fatbin
module Frame = Hipstr_compiler.Frame
module System = Hipstr.System
module Workloads = Hipstr_workloads.Workloads
module Process = Hipstr_cmp.Process
module Pool = Hipstr_cmp.Pool

(* --- arrival models ------------------------------------------------ *)

(* Rates are requests per million guest cycles: the only clock the
   simulator has is the simulated one, so open-loop load is expressed
   against it. *)
type arrival = Poisson of float | Bursty of { rate : float; burst : int }

let arrival_name = function
  | Poisson r -> Printf.sprintf "poisson:%g" r
  | Bursty { rate; burst } -> Printf.sprintf "bursty:%g:%d" rate burst

let arrival_of_string s =
  (* each rejection names the part that failed and what would fix it,
     so a fleet invocation dies with an actionable message instead of
     a generic usage line *)
  let rate r k =
    match float_of_string_opt r with
    | Some r when r > 0. && Float.is_finite r -> k r
    | Some _ ->
      Error
        (Printf.sprintf "%s: rate '%s' must be positive (requests per million guest cycles)" s r)
    | None -> Error (Printf.sprintf "%s: rate '%s' is not a number" s r)
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "poisson"; r ] -> rate r (fun r -> Ok (Poisson r))
  | [ "bursty"; r; b ] ->
    rate r (fun rate ->
        match int_of_string_opt b with
        | Some burst when burst >= 1 -> Ok (Bursty { rate; burst })
        | Some _ -> Error (Printf.sprintf "%s: burst '%s' must be an integer >= 1" s b)
        | None -> Error (Printf.sprintf "%s: burst '%s' is not an integer" s b))
  | "poisson" :: _ -> Error (Printf.sprintf "%s: poisson takes exactly one field, poisson:RATE" s)
  | "bursty" :: _ ->
    Error (Printf.sprintf "%s: bursty takes exactly two fields, bursty:RATE:BURST" s)
  | model :: _ ->
    Error
      (Printf.sprintf "%s: unknown arrival model '%s' (expected poisson:RATE or bursty:RATE:BURST)"
         s model)
  | [] -> Error (Printf.sprintf "%s: expected poisson:RATE or bursty:RATE:BURST" s)

(* --- request mix --------------------------------------------------- *)

type kind = Valid | Oversized | Malformed | Attack

let kinds = [ Valid; Oversized; Malformed; Attack ]

let kind_name = function
  | Valid -> "valid"
  | Oversized -> "oversized"
  | Malformed -> "malformed"
  | Attack -> "attack"

type mix = { mx_valid : int; mx_oversized : int; mx_malformed : int; mx_attack : int }

let default_mix = { mx_valid = 90; mx_oversized = 4; mx_malformed = 3; mx_attack = 3 }

let mix_weight m = function
  | Valid -> m.mx_valid
  | Oversized -> m.mx_oversized
  | Malformed -> m.mx_malformed
  | Attack -> m.mx_attack

let mix_total m = List.fold_left (fun acc k -> acc + mix_weight m k) 0 kinds

let mix_name m =
  Printf.sprintf "valid=%d,oversized=%d,malformed=%d,attack=%d" m.mx_valid m.mx_oversized
    m.mx_malformed m.mx_attack

(* The mix parser rejects every malformed shape with a message naming
   the offending part. Duplicate keys in the named form are an error
   (not first-one-wins): "valid=10,valid=0" used to silently skew the
   mix to whichever binding List.assoc found first. *)
let mix_of_string s =
  let kind_keys = List.map kind_name kinds in
  let parts = String.split_on_char ',' (String.lowercase_ascii (String.trim s)) in
  let check (v, o, m, a) =
    match List.find_opt (fun (_, w) -> w < 0)
            [ ("valid", v); ("oversized", o); ("malformed", m); ("attack", a) ]
    with
    | Some (k, w) ->
      Error (Printf.sprintf "%s: weight %s=%d is negative — mix weights must be >= 0" s k w)
    | None ->
      if v + o + m + a = 0 then
        Error
          (Printf.sprintf
             "%s: mix weights sum to zero — at least one request kind needs a positive weight" s)
      else Ok { mx_valid = v; mx_oversized = o; mx_malformed = m; mx_attack = a }
  in
  if List.exists (fun p -> String.contains p '=') parts then
    let rec go tbl = function
      | [] ->
        let get k = match List.assoc_opt k tbl with Some v -> v | None -> 0 in
        check (get "valid", get "oversized", get "malformed", get "attack")
      | p :: rest -> (
        match String.split_on_char '=' p with
        | [ k; v ] -> (
          let k = String.trim k in
          if not (List.mem k kind_keys) then
            Error
              (Printf.sprintf "%s: unknown request kind '%s' (expected %s)" s k
                 (String.concat ", " kind_keys))
          else if List.mem_assoc k tbl then
            Error
              (Printf.sprintf
                 "%s: duplicate weight for '%s' — each request kind may appear at most once" s k)
          else
            match int_of_string_opt (String.trim v) with
            | Some w -> go ((k, w) :: tbl) rest
            | None ->
              Error (Printf.sprintf "%s: weight '%s' for '%s' is not an integer" s (String.trim v) k))
        | _ ->
          Error
            (Printf.sprintf "%s: '%s' is not a KEY=WEIGHT pair (expected e.g. valid=90)" s p))
    in
    go [] parts
  else
    match List.map (fun p -> int_of_string_opt (String.trim p)) parts with
    | [ Some v; Some o; Some m; Some a ] -> check (v, o, m, a)
    | _ ->
      Error
        (Printf.sprintf
           "%s: expected four comma-separated integer weights V,O,M,A or \
            valid=V,oversized=O,malformed=M,attack=A"
           s)

(* --- connections --------------------------------------------------- *)

type conn = {
  cn_id : int;
  cn_tenant : int;
  cn_kind : kind;
  cn_arrival : float;  (* guest cycles since the fleet epoch *)
  cn_requests : int;  (* iterations the server loop will run *)
  cn_line : int array;  (* words staged at net_input *)
  cn_len : int;  (* value staged at net_len (malformed lines lie) *)
}

let victim = Workloads.httpd

let fatbin () = Workloads.fatbin victim

(* Index of the saved return address in handle_request's locals area,
   in words from &buf[0] — the same arithmetic the ROP harness uses
   (lib/attacks/rop.ml), read from the fat binary's frame metadata so
   payload shapes track the compiler. *)
let ret_index () =
  let frame = (Fatbin.find_func (fatbin ()) "handle_request").Fatbin.fs_frame in
  (frame.Frame.ret_off - frame.Frame.locals_off) / 4

(* The code address attack payloads park in the return slot: the
   entry of a handler the request was not dispatched to. Whether it
   lands (native), or the redirect is caught as a suspicious
   code-cache miss (PSR/HIPStR), is the fleet's security measurement. *)
let attack_target () = (Fatbin.find_func (fatbin ()) "serve_dynamic").Fatbin.fs_cisc.Fatbin.im_entry

let junk_word rng = 0x0BAD0000 lor Rng.int rng 0x10000

(* Overflow lines are 64+ words: long enough that the copy tramples
   handle_request's whole frame and its caller's, which on a native
   server is a deterministic kill (wild fetch/access at an unmapped
   0x0BADxxxx word). Under PSR/HIPStR the translated server's control
   state is not where the attacker's frame model says it is (program
   state relocation doing its job): depending on the payload words
   the smash is either neutralized outright — service completes
   normally — or caught as a clean "return to wild address" kill.
   Never a silent hijack. The fleet's security measurement is exactly
   this contrast. *)
let line_of rng ~ret_index kind =
  match kind with
  | Valid ->
    let n = 4 + Rng.int rng 9 in
    (Array.init n (fun _ -> 65 + Rng.int rng 26), n)
  | Oversized ->
    let n = 64 + Rng.int rng 33 in
    (Array.init n (fun _ -> junk_word rng), n)
  | Attack ->
    (* the same overflow with a code address in the return slot and
       everything above it — the shape of a redirect attempt *)
    let n = 64 in
    let target = attack_target () in
    (Array.init n (fun i -> if i >= ret_index then target else junk_word rng), n)
  | Malformed ->
    (* the staged length lies: either longer than the 512-word network
       buffer or negative — both rejected by the hardened parser *)
    let a = Array.init (4 + Rng.int rng 4) (fun _ -> Rng.int rng 1024) in
    let len = if Rng.bool rng then 513 + Rng.int rng 4096 else -1 - Rng.int rng 4096 in
    (a, len)

let generate ?(tenants = 4) ~seed ~procs ~arrival ~mix () =
  if procs < 1 then invalid_arg "Traffic.generate: procs must be positive";
  if tenants < 1 then invalid_arg "Traffic.generate: tenants must be positive";
  (match arrival with
  | Poisson r when r <= 0. -> invalid_arg "Traffic.generate: arrival rate must be positive"
  | Bursty { rate; burst } when rate <= 0. || burst < 1 ->
    invalid_arg "Traffic.generate: bursty arrivals need a positive rate and burst >= 1"
  | _ -> ());
  if mix_total mix <= 0 || List.exists (fun k -> mix_weight mix k < 0) kinds then
    invalid_arg "Traffic.generate: mix weights must be non-negative with a positive total";
  let ri = ret_index () in
  let total = mix_total mix in
  let rng = Rng.create seed in
  let clock = ref 0. in
  (* Rng.float is in [0, 1), so 1 - u is in (0, 1] and the draw is a
     finite exponential with mean 1. *)
  let exp_draw () = -.Float.log (1. -. Rng.float rng) in
  List.init procs (fun i ->
      let gap =
        match arrival with
        | Poisson rate -> exp_draw () *. (1e6 /. rate)
        | Bursty { rate; burst } ->
          (* whole bursts arrive back-to-back; inter-burst gaps are
             stretched by the burst size so the long-run rate holds *)
          if i mod burst = 0 then exp_draw () *. (1e6 /. rate) *. float_of_int burst else 0.
      in
      clock := !clock +. gap;
      let kind =
        let roll = Rng.int rng total in
        let rec pick acc = function
          | [ k ] -> k
          | k :: rest ->
            let acc = acc + mix_weight mix k in
            if roll < acc then k else pick acc rest
          | [] -> assert false
        in
        pick 0 kinds
      in
      let line, len = line_of rng ~ret_index:ri kind in
      {
        cn_id = i;
        cn_tenant = i mod tenants;
        cn_kind = kind;
        cn_arrival = !clock;
        cn_requests = 1 + Rng.int rng 3;
        cn_line = line;
        cn_len = len;
      })

(* --- materialization ----------------------------------------------- *)

let stage conn sys =
  let fb = System.fatbin sys in
  let mem = Machine.mem (System.machine sys) in
  let input = Fatbin.global_addr fb "net_input" in
  Array.iteri (fun i w -> Mem.write32 mem (input + (4 * i)) w) conn.cn_line;
  Mem.write32 mem (Fatbin.global_addr fb "net_len") conn.cn_len;
  Mem.write32 mem (Fatbin.global_addr fb "requests") conn.cn_requests

let default_fuel = 200_000

let spawn ?obs ?cfg ?(seed = 1) ?start_isa ?(fuel = default_fuel) ~mode conn =
  let p =
    Process.create ?obs ?cfg
      ~seed:(Pool.task_seed ~seed conn.cn_id)
      ?start_isa ~mode ~pid:conn.cn_id
      ~name:(Printf.sprintf "httpd.%s.%d" (kind_name conn.cn_kind) conn.cn_id)
      ~fuel (fatbin ())
  in
  stage conn (Process.sys p);
  p
