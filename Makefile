# Offline equivalent of .github/workflows/ci.yml: `make check` is the
# gate a change must pass before merging.

FUZZ_SEEDS ?= 1-25

.PHONY: all build test fuzz micro cmp-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest

fuzz:
	HIPSTR_FUZZ_SEEDS=$(FUZZ_SEEDS) dune exec test/test_fuzz.exe

micro:
	dune exec bench/main.exe -- --micro-only

# The CMP scheduler end-to-end: two workloads with suspicious
# code-cache activity time-sliced across the mixed-ISA pair under the
# security policy (forcing cross-ISA migrations), --verify demanding
# byte-equality with their standalone runs; then a parallel experiment
# sweep that must be bit-identical to serial.
cmp-smoke:
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk httpd --policy security --quantum 2000 --verify
	dune exec bin/hipstr_cli.exe -- experiment table1,fig3,ablation-pad -j 2

check: build test fuzz micro cmp-smoke

clean:
	dune clean
