# Offline equivalent of .github/workflows/ci.yml: `make check` is the
# gate a change must pass before merging.

FUZZ_SEEDS ?= 1-25

.PHONY: all build test fuzz micro check clean

all: build

build:
	dune build @all

test:
	dune runtest

fuzz:
	HIPSTR_FUZZ_SEEDS=$(FUZZ_SEEDS) dune exec test/test_fuzz.exe

micro:
	dune exec bench/main.exe -- --micro-only

check: build test fuzz micro

clean:
	dune clean
