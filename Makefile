# Offline equivalent of .github/workflows/ci.yml: `make check` is the
# gate a change must pass before merging.

FUZZ_SEEDS ?= 1-25

.PHONY: all build test fuzz micro cmp-smoke profile-smoke cache-smoke interp-smoke chain-smoke alloc-smoke fleet-smoke timeline-smoke migrate-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest

fuzz:
	HIPSTR_FUZZ_SEEDS=$(FUZZ_SEEDS) dune exec test/test_fuzz.exe

micro:
	dune exec bench/main.exe -- --micro-only

# The CMP scheduler end-to-end: two workloads with suspicious
# code-cache activity time-sliced across the mixed-ISA pair under the
# security policy (forcing cross-ISA migrations), --verify demanding
# byte-equality with their standalone runs; then a parallel experiment
# sweep that must be bit-identical to serial.
cmp-smoke:
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk httpd --policy security --quantum 2000 --verify
	dune exec bin/hipstr_cli.exe -- experiment table1,fig3,ablation-pad -j 2

# The observability exporters end-to-end: a CMP run on -j 2 emitting
# all four artifacts (Chrome trace, folded profile, metrics, audit
# log), each validated by the same JSON parser the exporters
# round-trip against, plus the bench phase-breakdown JSON.
profile-smoke:
	dune exec bin/hipstr_cli.exe -- cmp-run mcf libquantum hmmer \
	  --policy load-balance --migrate-prob 0.3 -j 2 \
	  --trace-out /tmp/hipstr-smoke-trace.json \
	  --profile-out /tmp/hipstr-smoke-profile.folded \
	  --metrics-out /tmp/hipstr-smoke-metrics.json \
	  --audit-out /tmp/hipstr-smoke-audit.jsonl
	dune exec bench/main.exe -- --obs-only
	dune exec tools/json_check.exe -- /tmp/hipstr-smoke-trace.json \
	  /tmp/hipstr-smoke-metrics.json /tmp/hipstr-smoke-audit.jsonl BENCH_obs.json

# Block-granular code-cache eviction end-to-end: a CMP run under an
# 8 KiB cache with the fifo policy (forcing real evictions and memo
# re-installs), --verify demanding byte-equality with the standalone
# runs; then the cache-churn policy sweep (BENCH_cache.json), which
# json_check validates.
cache-smoke:
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 \
	  --cc-capacity 8192 --cc-policy fifo --quantum 2000 --verify \
	  --metrics-out /tmp/hipstr-cache-metrics.json
	dune exec bench/main.exe -- --cache-only
	dune exec tools/json_check.exe -- /tmp/hipstr-cache-metrics.json BENCH_cache.json

# The predecoded-block interpreter end-to-end: the host-throughput
# sweep (BENCH_interp.json; each point also asserts the cache-on and
# cache-off runs are bit-identical), then a CMP run with the decode
# cache disabled whose --verify re-runs every process standalone with
# the cache on — an end-to-end on/off differential — with -j 1 and
# -j 4 metrics exports demanded byte-identical.
#
# The throughput sweep runs the release-profile build: the dev
# profile compiles with -opaque, which turns every cross-module call
# in the hot loop into an unknown-arity indirect call and suppresses
# the [@inline] fast paths, understating MIPS by ~30%. A separate
# build dir keeps the release artifacts from invalidating the dev
# ones used by everything else in `check`.
interp-smoke:
	dune build --build-dir=_build-release --profile release bench/main.exe
	./_build-release/default/bench/main.exe --interp-only
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-decode-cache \
	  --quantum 2000 --verify -j 1 --metrics-out /tmp/hipstr-interp-j1.json
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-decode-cache \
	  --quantum 2000 --verify -j 4 --metrics-out /tmp/hipstr-interp-j4.json
	cmp /tmp/hipstr-interp-j1.json /tmp/hipstr-interp-j4.json
	dune exec tools/json_check.exe -- BENCH_interp.json /tmp/hipstr-interp-j1.json

# Block chaining + indirect-branch ICs end-to-end: the chaining unit
# and differential suite, then CMP runs with chaining disabled whose
# --verify re-runs every process standalone with chaining *on* — an
# end-to-end chained/unchained differential — at -j 1 and -j 4 with
# metrics exports demanded byte-identical, plus one fuzz batch with
# chaining flipped off for the whole config matrix.
chain-smoke:
	dune exec test/test_chain.exe
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-chain \
	  --quantum 2000 --verify -j 1 --metrics-out /tmp/hipstr-chain-j1.json
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-chain \
	  --quantum 2000 --verify -j 4 --metrics-out /tmp/hipstr-chain-j4.json
	cmp /tmp/hipstr-chain-j1.json /tmp/hipstr-chain-j4.json
	HIPSTR_FUZZ_CHAIN=off HIPSTR_FUZZ_SEEDS=1-10 dune exec test/test_fuzz.exe

# The fleet serving subsystem end-to-end: the fleet determinism
# suite, then one seeded open-loop trace served at -j 1 and -j 4 with
# metrics and audit exports demanded byte-identical (the work-stealing
# determinism contract), and a reduced fleet sweep whose
# BENCH_fleet.json json_check validates.
fleet-smoke:
	dune exec test/test_fleet.exe
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 48 --arrival poisson:50 \
	  --mix 60,20,10,10 --policy security-first --mode psr --shards 4 -j 1 \
	  --metrics-out /tmp/hipstr-fleet-j1.json --audit-out /tmp/hipstr-fleet-j1.jsonl
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 48 --arrival poisson:50 \
	  --mix 60,20,10,10 --policy security-first --mode psr --shards 4 -j 4 \
	  --metrics-out /tmp/hipstr-fleet-j4.json --audit-out /tmp/hipstr-fleet-j4.jsonl
	cmp /tmp/hipstr-fleet-j1.json /tmp/hipstr-fleet-j4.json
	cmp /tmp/hipstr-fleet-j1.jsonl /tmp/hipstr-fleet-j4.jsonl
	dune exec bench/main.exe -- --fleet-only --fleet-procs 24 -j 2
	dune exec tools/json_check.exe -- BENCH_fleet.json /tmp/hipstr-fleet-j1.json \
	  /tmp/hipstr-fleet-j1.jsonl

# The time-resolved telemetry layer end-to-end: an attack-heavy
# bursty fleet run emitting the windowed timeline (JSON + CSV, with
# an SLO section) at -j 1 and -j 4, both artifacts demanded
# byte-identical (the deterministic-timeline contract; --hostprof is
# deliberately absent here because host allocation is not
# deterministic), json_check validating the hipstr-timeline/1 schema,
# then the bench_gate regression checker: self-compares of the
# committed interp/fleet benchmarks must pass and its --selftest must
# catch a synthetic 10% degradation.
timeline-smoke:
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 96 --arrival bursty:40:24 \
	  --mix 55,15,5,25 --policy security-first --mode hipstr --shards 4 -j 1 \
	  --timeline-window 50000 --slo-target 200000 --slo-budget 0.1 \
	  --timeline-out /tmp/hipstr-timeline-j1.json --timeline-csv /tmp/hipstr-timeline-j1.csv
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 96 --arrival bursty:40:24 \
	  --mix 55,15,5,25 --policy security-first --mode hipstr --shards 4 -j 4 \
	  --timeline-window 50000 --slo-target 200000 --slo-budget 0.1 \
	  --timeline-out /tmp/hipstr-timeline-j4.json --timeline-csv /tmp/hipstr-timeline-j4.csv
	cmp /tmp/hipstr-timeline-j1.json /tmp/hipstr-timeline-j4.json
	cmp /tmp/hipstr-timeline-j1.csv /tmp/hipstr-timeline-j4.csv
	dune exec tools/json_check.exe -- /tmp/hipstr-timeline-j1.json
	dune exec tools/bench_gate.exe -- BENCH_interp.json BENCH_interp.json
	dune exec tools/bench_gate.exe -- BENCH_fleet.json BENCH_fleet.json
	dune exec tools/bench_gate.exe -- --selftest BENCH_interp.json
	dune exec tools/bench_gate.exe -- --selftest BENCH_fleet.json

# Checkpoint/restore + live migration end-to-end: the snapshot suite,
# then a gobmk run that checkpoints once mid-flight whose full state
# dump (outcome, output, cycle bits, every counter and histogram) is
# demanded byte-identical to restoring that snapshot and running to
# completion; a fleet run rebalancing every wave at -j 1 and -j 4
# with metrics and audit exports demanded byte-identical (live
# migration rides the same post-barrier determinism contract); then
# the migration-cost decomposition (BENCH_migrate.json), which
# json_check validates and bench_gate self-compares and selftests.
migrate-smoke:
	dune exec test/test_snapshot.exe
	dune exec bin/hipstr_cli.exe -- run gobmk --mode hipstr \
	  --checkpoint-every 200000 --checkpoint-out /tmp/hipstr-migrate \
	  --state-out /tmp/hipstr-migrate-straight.dump
	dune exec bin/hipstr_cli.exe -- restore /tmp/hipstr-migrate.200000.snap \
	  --state-out /tmp/hipstr-migrate-resumed.dump
	cmp /tmp/hipstr-migrate-straight.dump /tmp/hipstr-migrate-resumed.dump
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 40 --arrival poisson:500 \
	  --mix 60,20,10,10 --mode psr --shards 4 --migrate-every 1 -j 1 \
	  --metrics-out /tmp/hipstr-migrate-j1.json --audit-out /tmp/hipstr-migrate-j1.jsonl
	dune exec bin/hipstr_cli.exe -- fleet-run --procs 40 --arrival poisson:500 \
	  --mix 60,20,10,10 --mode psr --shards 4 --migrate-every 1 -j 4 \
	  --metrics-out /tmp/hipstr-migrate-j4.json --audit-out /tmp/hipstr-migrate-j4.jsonl
	cmp /tmp/hipstr-migrate-j1.json /tmp/hipstr-migrate-j4.json
	cmp /tmp/hipstr-migrate-j1.jsonl /tmp/hipstr-migrate-j4.jsonl
	dune exec bench/main.exe -- --migrate-only
	dune exec tools/json_check.exe -- BENCH_migrate.json /tmp/hipstr-migrate-j1.json
	dune exec tools/bench_gate.exe -- --selftest BENCH_migrate.json
	dune exec tools/bench_gate.exe -- BENCH_migrate.json BENCH_migrate.json

# The allocation-free hot loop end-to-end: a gobmk/hipstr run with
# host allocation profiling on, asserting minor GC words per retired
# instruction stays below the committed threshold (the hot loop
# itself is allocation-free; the residue is boot, migration edges and
# the profiler's own bookkeeping), then CMP runs with the packed
# dispatcher disabled whose --verify re-runs every process standalone
# with packing *on* — an end-to-end packed/no-packed differential —
# at -j 1 and -j 4 with metrics exports demanded byte-identical,
# mirroring chain-smoke.
alloc-smoke:
	dune exec bin/hipstr_cli.exe -- run gobmk --mode hipstr \
	  --hostprof --assert-alloc 1.0
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-packed \
	  --quantum 2000 --verify -j 1 --metrics-out /tmp/hipstr-nopacked-j1.json
	dune exec bin/hipstr_cli.exe -- cmp-run gobmk bzip2 mcf --no-packed \
	  --quantum 2000 --verify -j 4 --metrics-out /tmp/hipstr-nopacked-j4.json
	cmp /tmp/hipstr-nopacked-j1.json /tmp/hipstr-nopacked-j4.json

check: build test fuzz micro cmp-smoke profile-smoke cache-smoke interp-smoke chain-smoke alloc-smoke fleet-smoke timeline-smoke migrate-smoke

clean:
	dune clean
