(* Validate that files parse as JSON (or JSON Lines for .jsonl) with
   the same zero-dependency parser the exporters round-trip against —
   the CI smoke step and `make profile-smoke` run this over every
   exported artifact so a serializer regression fails fast, without
   needing jq in the environment.

   Usage: json_check FILE...   (exit 1 on the first failure) *)

module Json = Hipstr_util.Json

let check_doc path s =
  match Json.parse s with
  | Ok _ -> Printf.printf "%s: ok\n" path
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 1

let check_jsonl path s =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  List.iteri
    (fun i l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "%s:%d: %s\n" path (i + 1) e;
        exit 1)
    lines;
  Printf.printf "%s: ok (%d lines)\n" path (List.length lines)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: json_check FILE...";
    exit 2
  end;
  List.iter
    (fun path ->
      let s = In_channel.with_open_bin path In_channel.input_all in
      if Filename.check_suffix path ".jsonl" then check_jsonl path s else check_doc path s)
    files
