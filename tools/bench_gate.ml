(* Benchmark regression gate: diff two BENCH_*.json files of the same
   schema and fail when a performance metric regressed past a
   threshold. The CI bench step and `make timeline-smoke` run the
   self-compare (old = new must always pass) and the --selftest mode
   (a synthetic 10% degradation must always be caught), so the gate
   itself is regression-tested by the same target that uses it.

   Schemas and the metrics extracted from them:
     hipstr-bench-interp/2  per workload x mode x variant: mips (higher is better)
     hipstr-bench-interp/3  as /2 plus the packed-dispatch variant and
                            per-variant host alloc words/instr (lower)
     hipstr-bench-fleet/1   per point: throughput_per_mcycle (higher),
                            latency p99 (lower)
     hipstr-bench-cache/1   per workload x capacity x policy:
                            retranslate_cycles (lower)
     hipstr-bench-migrate/1 per workload: image_bytes, total warm/cold
                            migration cycles (all lower is better),
                            plus the fleet-wide totals

   Usage:
     bench_gate [--max-drop PCT] [--max-rise PCT] OLD.json NEW.json
     bench_gate [--max-drop PCT] [--max-rise PCT] --selftest FILE.json

   Exit codes: 0 ok, 1 regression (or selftest failure), 2 usage or
   parse error. *)

module Json = Hipstr_util.Json

type dir = Higher_better | Lower_better

type metric = { m_key : string; m_value : float; m_dir : dir }

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("bench_gate: " ^ s);
      exit 2)
    fmt

let mem name j =
  match Json.member name j with Some v -> v | None -> fail "missing field '%s'" name

let str name j =
  match mem name j with Json.Str s -> s | _ -> fail "field '%s' is not a string" name

let num name j =
  match mem name j with Json.Num n -> n | _ -> fail "field '%s' is not a number" name

let list name j =
  match mem name j with Json.List l -> l | _ -> fail "field '%s' is not a list" name

(* ------------------------------------------------------------------ *)
(* Per-schema metric extraction. Keys are stable content-derived
   paths, so reordered points still pair up old-to-new. *)

let interp_variant_names = function
  | 2 -> [ "chained"; "no_chain"; "no_decode_cache" ]
  | _ -> [ "chained"; "no_packed"; "no_chain"; "no_decode_cache" ]

(* v3 adds the packed-dispatch variant and a per-variant [alloc]
   block; host minor words per retired instruction is gated as a
   lower-is-better metric so allocation creep in the hot loop fails
   the same --max-rise check cycle metrics do. *)
let interp_metrics ~version doc =
  List.concat_map
    (fun w ->
      let name = str "name" w in
      List.concat_map
        (fun m ->
          let mode = str "mode" m in
          let variants = mem "variants" m in
          List.concat_map
            (fun v ->
              match Json.member v variants with
              | Some var ->
                let mips =
                  {
                    m_key = Printf.sprintf "interp.%s.%s.%s.mips" name mode v;
                    m_value = num "mips" var;
                    m_dir = Higher_better;
                  }
                in
                let alloc =
                  if version < 3 then []
                  else
                    match Json.member "alloc" var with
                    | Some a -> (
                      match Json.member "minor_words_per_instr" a with
                      | Some (Json.Num wpi) ->
                        [
                          {
                            m_key =
                              Printf.sprintf "interp.%s.%s.%s.alloc_words_per_instr" name
                                mode v;
                            m_value = wpi;
                            m_dir = Lower_better;
                          };
                        ]
                      | _ -> [])
                    | None -> []
                in
                mips :: alloc
              | None -> [])
            (interp_variant_names version))
        (list "modes" w))
    (list "workloads" doc)

let fleet_metrics doc =
  List.concat_map
    (fun p ->
      let key suffix =
        Printf.sprintf "fleet.%s.%s.%s" (str "policy" p) (str "arrival" p) suffix
      in
      let lat = mem "latency_cycles" p in
      [
        {
          m_key = key "throughput_per_mcycle";
          m_value = num "throughput_per_mcycle" p;
          m_dir = Higher_better;
        };
        { m_key = key "latency_p99"; m_value = num "p99" lat; m_dir = Lower_better };
      ])
    (list "points" doc)

let cache_metrics doc =
  List.concat_map
    (fun w ->
      let name = str "name" w in
      List.concat_map
        (fun cap ->
          let capacity = int_of_float (num "capacity" cap) in
          let point policy j =
            {
              m_key =
                Printf.sprintf "cache.%s.%d.%s.retranslate_cycles" name capacity policy;
              m_value = num "retranslate_cycles" j;
              m_dir = Lower_better;
            }
          in
          point "flush" (mem "flush" cap)
          :: List.map
               (fun e ->
                 let p = mem "point" e in
                 point (str "policy" p) p)
               (list "eviction" cap))
        (list "capacities" w))
    (list "workloads" doc)

let migrate_metrics doc =
  let totals =
    List.map
      (fun field ->
        { m_key = "migrate." ^ field; m_value = num field doc; m_dir = Lower_better })
      [ "total_warm_cycles"; "total_cold_cycles" ]
  in
  totals
  @ List.concat_map
      (fun p ->
        let name = str "workload" p in
        List.map
          (fun field ->
            {
              m_key = Printf.sprintf "migrate.%s.%s" name field;
              m_value = num field p;
              m_dir = Lower_better;
            })
          [ "image_bytes"; "total_warm_cycles"; "total_cold_cycles" ])
      (list "points" doc)

let extract path doc =
  match str "schema" doc with
  | "hipstr-bench-interp/2" -> interp_metrics ~version:2 doc
  | "hipstr-bench-interp/3" -> interp_metrics ~version:3 doc
  | "hipstr-bench-fleet/1" -> fleet_metrics doc
  | "hipstr-bench-cache/1" -> cache_metrics doc
  | "hipstr-bench-migrate/1" -> migrate_metrics doc
  | s ->
    fail
      "%s: unsupported schema '%s' (expected hipstr-bench-interp/2 or /3, \
       hipstr-bench-fleet/1, hipstr-bench-cache/1 or hipstr-bench-migrate/1)"
      path s

let load path =
  let s =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e -> fail "%s" e
  in
  match Json.parse s with Ok j -> j | Error e -> fail "%s: %s" path e

(* ------------------------------------------------------------------ *)
(* Comparison: percentage change relative to the old value; a drop of
   a higher-is-better metric past --max-drop (or a rise of a
   lower-is-better one past --max-rise) is a failure. A metric that
   vanished from the new file is too — silently losing coverage must
   not read as "no regression".

   A zero or NaN baseline admits no percent-change at all: such a
   metric is reported as "new/incomparable" and excluded from the
   gate rather than crashing or — worse — passing silently (NaN
   poisons every float comparison to false, which used to read as
   "no regression"). A finite baseline going to NaN, by contrast, IS
   a failure: the metric stopped being measurable. *)

type verdict =
  | Regression of string
  | Incomparable of string  (* reported, never silent, never fatal *)

let compare_metrics ~max_drop ~max_rise olds news =
  List.filter_map
    (fun om ->
      match List.find_opt (fun nm -> nm.m_key = om.m_key) news with
      | None ->
        Some (Regression (Printf.sprintf "%s: present in old file, missing from new" om.m_key))
      | Some nm ->
        if Float.is_nan om.m_value || om.m_value = 0. then
          Some
            (Incomparable
               (Printf.sprintf "%s: baseline is %s — new/incomparable metric, not gated"
                  om.m_key
                  (if Float.is_nan om.m_value then "NaN" else "0")))
        else if Float.is_nan nm.m_value then
          Some
            (Regression
               (Printf.sprintf "%s: %.6g -> NaN (metric stopped being measurable)" om.m_key
                  om.m_value))
        else begin
          let pct = 100. *. (nm.m_value -. om.m_value) /. om.m_value in
          match om.m_dir with
          | Higher_better when pct < -.max_drop ->
            Some
              (Regression
                 (Printf.sprintf "%s: %.6g -> %.6g (%.1f%% drop, max %.1f%%)" om.m_key
                    om.m_value nm.m_value (-.pct) max_drop))
          | Lower_better when pct > max_rise ->
            Some
              (Regression
                 (Printf.sprintf "%s: %.6g -> %.6g (%.1f%% rise, max %.1f%%)" om.m_key
                    om.m_value nm.m_value pct max_rise))
          | _ -> None
        end)
    olds

let split verdicts =
  List.partition_map
    (function Regression m -> Either.Left m | Incomparable m -> Either.Right m)
    verdicts

let selftest ~max_drop ~max_rise path =
  let metrics = extract path (load path) in
  if metrics = [] then fail "%s: no metrics extracted" path;
  let comparable = List.filter (fun m -> m.m_value <> 0. && not (Float.is_nan m.m_value)) metrics in
  if comparable = [] then fail "%s: no comparable (non-zero, non-NaN) metrics" path;
  let clean, _ = split (compare_metrics ~max_drop ~max_rise metrics metrics) in
  let degraded =
    List.map
      (fun m ->
        {
          m with
          m_value =
            (match m.m_dir with
            | Higher_better -> m.m_value *. 0.9
            | Lower_better -> m.m_value *. 1.1);
        })
      comparable
  in
  let caught, _ = split (compare_metrics ~max_drop ~max_rise comparable degraded) in
  Printf.printf
    "selftest %s: %d metrics, self-compare failures=%d, 10%%-degradation failures=%d\n" path
    (List.length metrics) (List.length clean) (List.length caught);
  if clean <> [] then begin
    List.iter (fun f -> Printf.eprintf "  unexpected self-compare failure: %s\n" f) clean;
    exit 1
  end;
  if List.length caught <> List.length comparable then begin
    Printf.eprintf "  injected 10%% degradation was not detected on every comparable metric\n";
    exit 1
  end;
  (* Zero and NaN baselines must be reported as incomparable — neither a
     crash, a regression, nor (the old bug) a silent pass. *)
  let probe = List.hd comparable in
  List.iter
    (fun (what, baseline) ->
      match compare_metrics ~max_drop ~max_rise [ { probe with m_value = baseline } ] [ probe ] with
      | [ Incomparable _ ] -> ()
      | [] -> fail "selftest: %s baseline passed silently" what
      | _ -> fail "selftest: %s baseline was not reported as incomparable" what)
    [ ("zero", 0.); ("NaN", Float.nan) ];
  (* ...and a comparable metric going to NaN is a regression. *)
  (match
     compare_metrics ~max_drop ~max_rise [ probe ] [ { probe with m_value = Float.nan } ]
   with
  | [ Regression _ ] -> ()
  | _ -> fail "selftest: metric going to NaN was not reported as a regression");
  print_endline "selftest: ok"

let gate ~max_drop ~max_rise old_path new_path =
  let old_doc = load old_path and new_doc = load new_path in
  let old_schema = str "schema" old_doc and new_schema = str "schema" new_doc in
  if old_schema <> new_schema then
    fail "schema mismatch: %s is %s, %s is %s" old_path old_schema new_path new_schema;
  let olds = extract old_path old_doc and news = extract new_path new_doc in
  let failures, notes = split (compare_metrics ~max_drop ~max_rise olds news) in
  List.iter (fun n -> Printf.printf "bench_gate: note: %s\n" n) notes;
  match failures with
  | [] ->
    Printf.printf "bench_gate: ok — %d metrics within max-drop %.1f%% / max-rise %.1f%%\n"
      (List.length olds - List.length notes)
      max_drop max_rise
  | failures ->
    Printf.eprintf "bench_gate: %d regression(s) %s -> %s\n" (List.length failures) old_path
      new_path;
    List.iter (fun f -> Printf.eprintf "  %s\n" f) failures;
    exit 1

let usage () =
  prerr_endline
    "usage: bench_gate [--max-drop PCT] [--max-rise PCT] OLD.json NEW.json\n\
    \       bench_gate [--max-drop PCT] [--max-rise PCT] --selftest FILE.json";
  exit 2

let () =
  let pct what s =
    match float_of_string_opt s with
    | Some p when p >= 0. -> p
    | _ -> fail "%s must be a non-negative percentage (got '%s')" what s
  in
  let max_drop = ref 5. and max_rise = ref 5. and self = ref false in
  let files = ref [] in
  let rec go = function
    | [] -> ()
    | "--max-drop" :: v :: rest ->
      max_drop := pct "--max-drop" v;
      go rest
    | "--max-rise" :: v :: rest ->
      max_rise := pct "--max-rise" v;
      go rest
    | "--selftest" :: rest ->
      self := true;
      go rest
    | f :: _ when String.length f > 1 && f.[0] = '-' -> fail "unknown option '%s'" f
    | f :: rest ->
      files := f :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match (!self, List.rev !files) with
  | true, [ path ] -> selftest ~max_drop:!max_drop ~max_rise:!max_rise path
  | false, [ old_path; new_path ] ->
    gate ~max_drop:!max_drop ~max_rise:!max_rise old_path new_path
  | _ -> usage ()
